(* Seed replay: re-run one chaos-matrix cell at a given seed with the
   event trace enabled and pretty-print everything the simulation saw,
   so a failing (scenario, seed) pair reported by the QCheck matrix or
   the chaos bench can be replayed deterministically and read line by
   line.

     dune exec bin/replay.exe -- loss20+part+crash 17
     dune exec bin/replay.exe -- --quiet loss05 3      # verdict only

   The event log goes to stdout (one line per network event), followed
   by the outcome block: counters, the atomicity verdict, and the
   lossy-model trace-check verdict. Exit status is 0 iff the run is OK
   (live, atomic, trace-clean, no abandoned sends). *)

let usage () =
  prerr_endline "usage: replay.exe [--quiet] SCENARIO SEED";
  prerr_endline "scenarios:";
  List.iter
    (fun s -> Printf.eprintf "  %s\n" s.Harness.Chaos.name)
    Harness.Chaos.matrix;
  exit 2

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  let quiet, args =
    match args with
    | "--quiet" :: rest -> (true, rest)
    | _ -> (false, args)
  in
  let scenario_name, seed =
    match args with
    | [ name; seed ] -> (
      match int_of_string_opt seed with
      | Some s -> (name, s)
      | None ->
        Printf.eprintf "replay: seed %S is not an integer\n" seed;
        usage ())
    | _ -> usage ()
  in
  let scenario =
    match Harness.Chaos.find scenario_name with
    | Some s -> s
    | None ->
      Printf.eprintf "replay: unknown scenario %S\n" scenario_name;
      usage ()
  in
  let outcome = Harness.Chaos.run ~trace:true scenario ~seed in
  if not quiet then begin
    List.iter
      (fun e ->
        Format.printf "%a@." (Simnet.Engine.pp_event ~name:outcome.name_of) e)
      outcome.events;
    (* payload view: protocol messages and acks rendered readably —
       coalesced gossip envelopes show entry counts and tag/rid ranges,
       cumulative acks the sequence they discharge *)
    print_endline "-- deliveries --";
    List.iter print_endline outcome.message_log
  end;
  Format.printf "%a@." Harness.Chaos.pp_outcome outcome;
  exit (if Harness.Chaos.ok outcome then 0 else 1)

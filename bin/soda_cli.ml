(* Command-line driver for the SODA reproduction.

     soda_cli run     — execute a workload on an algorithm, print metrics
     soda_cli check   — run + verify liveness and atomicity (exit code)
     soda_cli sharded — multi-key keyspace over a placed fleet, print
                        message economics
     soda_cli trace   — run a small scenario and dump the message trace

   Examples:
     dune exec bin/soda_cli.exe -- run --algo soda -n 10 -f 3 --ops 4
     dune exec bin/soda_cli.exe -- run --algo soda-err -n 10 -f 2 -e 1 --seed 7
     dune exec bin/soda_cli.exe -- check --algo casgc --delta 2 --runs 20
     dune exec bin/soda_cli.exe -- sharded --keys 1000 --servers 12 --domains 3
     dune exec bin/soda_cli.exe -- trace -n 5 -f 1
*)

open Cmdliner
module Params = Protocol.Params
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

(* ------------------------------------------------------------------ *)
(* shared options *)

let n_arg =
  Arg.(value & opt int 10 & info [ "n" ] ~docv:"N" ~doc:"Number of servers.")

let f_arg =
  Arg.(
    value
    & opt int 3
    & info [ "f" ] ~docv:"F" ~doc:"Server crashes to tolerate (f <= (n-1)/2).")

let e_arg =
  Arg.(
    value
    & opt int 0
    & info [ "e" ] ~docv:"E"
        ~doc:"Error-prone servers to tolerate (SODAerr when > 0).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let writers_arg =
  Arg.(value & opt int 2 & info [ "writers" ] ~doc:"Concurrent writers.")

let readers_arg =
  Arg.(value & opt int 2 & info [ "readers" ] ~doc:"Concurrent readers.")

let ops_arg =
  Arg.(value & opt int 3 & info [ "ops" ] ~doc:"Operations per client.")

let value_len_arg =
  Arg.(value & opt int 4096 & info [ "value-len" ] ~doc:"Value size in bytes.")

let crashes_arg =
  Arg.(
    value
    & opt int 0
    & info [ "crashes" ]
        ~doc:"Crash this many servers at random times (at most f).")

let delta_arg =
  Arg.(
    value
    & opt int 2
    & info [ "delta" ] ~doc:"CASGC garbage-collection depth (delta).")

let algo_arg =
  let algo_conv =
    Arg.enum
      [ ("soda", `Soda); ("soda-err", `Soda); ("abd", `Abd); ("cas", `Cas);
        ("casgc", `Casgc)
      ]
  in
  Arg.(
    value
    & opt algo_conv `Soda
    & info [ "algo" ] ~docv:"ALGO"
        ~doc:"Algorithm: $(b,soda), $(b,soda-err), $(b,abd), $(b,cas) or \
              $(b,casgc).")

let to_runner algo delta =
  match algo with
  | `Soda -> Runner.Soda
  | `Abd -> Runner.Abd
  | `Cas -> Runner.Cas { gc_depth = None }
  | `Casgc -> Runner.Cas { gc_depth = Some delta }

let build_workload ~n ~f ~e ~seed ~writers ~readers ~ops ~value_len ~crashes =
  let params = Params.make ~n ~f ~e () in
  let w =
    Workload.concurrent ~params ~value_len ~seed ~num_writers:writers
      ~num_readers:readers ~ops_per_client:ops ()
  in
  let rng = Simnet.Rng.create (seed + 17) in
  let w =
    if crashes > 0 then begin
      let coords = Array.init n (fun i -> i) in
      Simnet.Rng.shuffle_in_place rng coords;
      Workload.with_crashes w
        (List.init (min crashes f) (fun i ->
             (coords.(i), Simnet.Rng.float rng 500.0)))
    end
    else w
  in
  if e > 0 then
    Workload.with_errors w (List.init e (fun i -> i))
  else w

(* ------------------------------------------------------------------ *)
(* run *)

let run_cmd =
  let action algo delta n f e seed writers readers ops value_len crashes =
    let w =
      build_workload ~n ~f ~e ~seed ~writers ~readers ~ops ~value_len ~crashes
    in
    let result = Runner.run (to_runner algo delta) w in
    let s = Metrics.summarize result in
    Format.printf "%a@." Metrics.pp_summary s;
    if Option.is_some result.Runner.probe then begin
      List.iter
        (fun (rid, dw, cost) ->
          Format.printf "read op%d: delta_w=%d cost=%.2f@." rid dw cost)
        (Metrics.reads_with_delta_w result)
    end;
    `Ok ()
  in
  let term =
    Term.(
      ret
        (const action $ algo_arg $ delta_arg $ n_arg $ f_arg $ e_arg
       $ seed_arg $ writers_arg $ readers_arg $ ops_arg $ value_len_arg
       $ crashes_arg))
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one workload and print measured metrics.")
    term

(* ------------------------------------------------------------------ *)
(* check *)

let runs_arg =
  Arg.(value & opt int 10 & info [ "runs" ] ~doc:"Number of seeded runs.")

let check_cmd =
  let action algo delta n f e writers readers ops value_len crashes runs =
    (* runs are independent: sweep them across domains *)
    let outcomes =
      Harness.Parallel.map
        (fun seed ->
          let w =
            build_workload ~n ~f ~e ~seed ~writers ~readers ~ops ~value_len
              ~crashes
          in
          (seed, Metrics.summarize (Runner.run (to_runner algo delta) w)))
        (List.init runs (fun i -> i + 1))
    in
    let failures = ref 0 in
    List.iter
      (fun (seed, s) ->
        let ok = s.Metrics.liveness && s.Metrics.atomic in
        Printf.printf "seed %-4d  liveness=%-5b atomic=%-5b %s\n" seed
          s.Metrics.liveness s.Metrics.atomic
          (if ok then "" else "<-- FAILURE");
        if not ok then incr failures)
      outcomes;
    if !failures = 0 then begin
      Printf.printf "all %d runs passed\n" runs;
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d/%d runs failed" !failures runs)
  in
  let term =
    Term.(
      ret
        (const action $ algo_arg $ delta_arg $ n_arg $ f_arg $ e_arg
       $ writers_arg $ readers_arg $ ops_arg $ value_len_arg $ crashes_arg
       $ runs_arg))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run many seeded workloads and verify liveness + atomicity of every \
          one; non-zero exit on any failure.")
    term

(* ------------------------------------------------------------------ *)
(* sharded *)

let keys_arg =
  Arg.(
    value & opt int 100 & info [ "keys" ] ~docv:"K" ~doc:"Logical keys.")

let servers_arg =
  Arg.(
    value
    & opt int 12
    & info [ "servers" ] ~doc:"Physical servers in the shared fleet.")

let domains_arg =
  Arg.(
    value & opt int 3 & info [ "domains" ] ~doc:"Failure domains (racks).")

let preset_arg =
  Arg.(
    value
    & opt string "4+2"
    & info [ "preset" ] ~docv:"GEOMETRY"
        ~doc:"Per-key code geometry: $(b,4+2) or $(b,10+4).")

let policy_arg =
  let policy_conv =
    Arg.enum
      [ ("consistent-hash", Soda.Placement.Consistent_hash);
        ("mod-stripe", Soda.Placement.Mod_stripe)
      ]
  in
  Arg.(
    value
    & opt policy_conv Soda.Placement.Consistent_hash
    & info [ "policy" ]
        ~doc:"Spread policy: $(b,consistent-hash) or $(b,mod-stripe).")

let plane_arg =
  let plane_conv = Arg.enum [ ("batched", `Batched); ("broadcast", `Broadcast) ] in
  Arg.(
    value
    & opt plane_conv `Batched
    & info [ "plane" ]
        ~doc:"Shared message plane: $(b,batched) coalesced gossip or \
              plain $(b,broadcast).")

let sharded_cmd =
  let action keys servers domains preset policy plane seed writers readers =
    match Soda.Placement.preset_of_string preset with
    | None ->
      `Error (false, Printf.sprintf "unknown preset %S (try 4+2 or 10+4)" preset)
    | Some p -> begin
      match
        let params = Soda.Placement.preset_params p in
        let topology = Soda.Topology.make ~servers ~domains () in
        Soda.Placement.create ~topology ~params ~policy ()
      with
      | exception Invalid_argument msg -> `Error (false, msg)
      | placement ->
        let wl =
          Workload.sharded_mixed ~keys ~seed ~num_writers:writers
            ~num_readers:readers ()
        in
        let plane =
          match plane with
          | `Batched -> Some Soda.Config.batched_plane
          | `Broadcast -> None
        in
        let r = Runner.run_sharded ?plane ~placement wl in
        Printf.printf "placement   %s over %d servers / %d domains (%s)\n"
          (Soda.Placement.preset_name p)
          servers domains
          (if Soda.Placement.domain_safe placement then "domain-safe"
           else "NOT domain-safe");
        Printf.printf "keys        %d\n" r.Runner.s_keys;
        Printf.printf "ops         %d\n" r.Runner.s_ops;
        Printf.printf "liveness    %b\n" r.Runner.s_complete;
        Printf.printf "atomic      %b\n" r.Runner.s_atomic;
        Printf.printf "messages    %d (%d data, %d meta)\n"
          r.Runner.s_messages_sent r.Runner.s_messages_data
          r.Runner.s_messages_meta;
        Printf.printf "msgs/op     %.2f\n" (Metrics.sharded_msgs_per_op r);
        Printf.printf "units/msg   %.3f\n" (Metrics.sharded_units_per_msg r);
        Printf.printf "sim time    %.1f\n" r.Runner.s_final_time;
        if r.Runner.s_complete && r.Runner.s_atomic then `Ok ()
        else `Error (false, "liveness or atomicity violated")
    end
  in
  let term =
    Term.(
      ret
        (const action $ keys_arg $ servers_arg $ domains_arg $ preset_arg
       $ policy_arg $ plane_arg $ seed_arg $ writers_arg $ readers_arg))
  in
  Cmd.v
    (Cmd.info "sharded"
       ~doc:
         "Run a multi-key workload on one shared-plane keyspace with \
          failure-domain placement; print message economics.")
    term

(* ------------------------------------------------------------------ *)
(* trace *)

let trace_cmd =
  let action n f seed =
    let params = Params.make ~n ~f () in
    let engine =
      Simnet.Engine.create ~seed ~trace:true
        ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:2.0) ()
    in
    let d =
      Soda.Deployment.deploy ~engine ~params
        ~initial_value:(Bytes.make 64 '0') ~num_writers:1 ~num_readers:1 ()
    in
    Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 64 'x');
    Soda.Deployment.read d ~reader:0 ~at:50.0 ();
    Simnet.Engine.run engine;
    let name pid = Simnet.Engine.name_of engine pid in
    List.iter
      (fun ev -> Format.printf "%a@." (Simnet.Engine.pp_event ~name) ev)
      (Simnet.Engine.trace_events engine);
    `Ok ()
  in
  let term = Term.(ret (const action $ n_arg $ f_arg $ seed_arg)) in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run a one-write-one-read scenario and dump the network trace.")
    term

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  let info =
    Cmd.info "soda_cli" ~version:"1.0.0"
      ~doc:
        "Storage-optimized data-atomic registers (SODA) — simulation driver."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info [ run_cmd; check_cmd; sharded_cmd; trace_cmd ]))

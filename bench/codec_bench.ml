(* Codec kernel throughput, reported as JSON (one object on stdout) so
   successive runs can be archived as a trajectory. Invoked as

     dune exec bench/main.exe -- codec            # full (64 KiB + 1 MiB)
     dune exec bench/main.exe -- codec --smoke    # tiny CI quota

   Unlike the Bechamel microbenchmarks (bench/micro.ml) this measures
   wall-clock MB/s of whole encode/decode calls, including framing,
   transposition and fragment allocation — the number a deployment
   actually sees per value. *)

let smoke = ref false

let value_of_size len =
  Bytes.init len (fun i -> Char.chr ((i * 31) land 0xff))

(* Repeat [f] until [min_elapsed] seconds have been spent (at least
   [min_iters] times) and return seconds per call. *)
let time_per_call ~min_elapsed ~min_iters f =
  ignore (f ());
  (* warm-up: tables, caches *)
  let t0 = Unix.gettimeofday () in
  let iters = ref 0 in
  let elapsed = ref 0.0 in
  while !iters < min_iters || !elapsed < min_elapsed do
    ignore (f ());
    incr iters;
    elapsed := Unix.gettimeofday () -. t0
  done;
  !elapsed /. float_of_int !iters

let mb_per_s ~bytes seconds = float_of_int bytes /. seconds /. 1e6

type point = {
  codec : string;
  op : string;
  size : int;
  domains : int;
  mbps : float;
  ns : float;
}

let measure ~codec ~op ~size ~domains f =
  let min_elapsed = if !smoke then 0.02 else 0.2 in
  let s = time_per_call ~min_elapsed ~min_iters:3 f in
  { codec; op; size; domains; mbps = mb_per_s ~bytes:size s; ns = s *. 1e9 }

let codec_points ~domains code size =
  let value = value_of_size size in
  let name = Erasure.Mds.name code in
  let k = Erasure.Mds.k code in
  let encode =
    measure ~codec:name ~op:"encode" ~size ~domains (fun () ->
        Erasure.Mds.encode ~domains code value)
  in
  let fragments = Array.to_list (Erasure.Mds.encode code value) in
  (* decode from the "worst" k survivors: drop the first n-k fragments,
     which for the systematic codecs forces the matrix path *)
  let survivors =
    List.filteri (fun i _ -> i >= Erasure.Mds.n code - k) fragments
  in
  let decode =
    measure ~codec:name ~op:"decode" ~size ~domains (fun () ->
        Erasure.Mds.decode ~domains code survivors)
  in
  [ encode; decode ]

let kernel_points size =
  let src = value_of_size size in
  let dst = Bytes.make size '\000' in
  let table = Galois.Gf.mul_table 0xb7 in
  let tables16 = Galois.Gf16.mul_tables 0x1b7 in
  [ measure ~codec:"kernel-gf8" ~op:"muladd_buf" ~size ~domains:1 (fun () ->
        Galois.Gf.muladd_buf table ~src ~dst ~off:0 ~len:size);
    measure ~codec:"kernel-gf16" ~op:"muladd_buf" ~size ~domains:1 (fun () ->
        Galois.Gf16.muladd_buf tables16 ~src ~dst ~off:0 ~len:(size / 2))
  ]

let emit points =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"bench\":\"codec\",";
  Buffer.add_string buf
    (Printf.sprintf "\"smoke\":%b,\"results\":[" !smoke);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"codec\":%S,\"op\":%S,\"size\":%d,\"domains\":%d,\"mb_per_s\":%.1f,\"ns_per_op\":%.0f}"
           p.codec p.op p.size p.domains p.mbps p.ns))
    points;
  Buffer.add_string buf "]}";
  print_endline (Buffer.contents buf)

let run () =
  let sizes = if !smoke then [ 16384 ] else [ 65536; 1048576 ] in
  let n = 12 and k = 8 in
  let codecs =
    [ Erasure.Mds.rs_vandermonde ~n ~k;
      Erasure.Mds.rs_systematic ~n ~k;
      Erasure.Mds.rs_bch ~n ~k;
      Erasure.Mds.rs16 ~n ~k
    ]
  in
  let points =
    List.concat_map
      (fun size ->
        kernel_points size
        @ List.concat_map (fun c -> codec_points ~domains:1 c size) codecs)
      sizes
  in
  (* Domain-parallel point: the largest size, vandermonde, sharded. *)
  let parallel =
    if !smoke then []
    else
      let size = 1048576 in
      let domains = Harness.Parallel.recommended_domains () in
      if domains < 2 then []
      else codec_points ~domains (Erasure.Mds.rs_vandermonde ~n ~k) size
  in
  emit (points @ parallel)

(* Codec kernel throughput, reported as JSON (one object on stdout) so
   successive runs can be archived as a trajectory. Invoked as

     dune exec bench/main.exe -- codec            # full (64 KiB + 1 MiB)
     dune exec bench/main.exe -- codec --smoke    # tiny CI quota

   Unlike the Bechamel microbenchmarks (bench/micro.ml) this measures
   wall-clock MB/s of whole encode/decode calls, including framing,
   transposition and fragment allocation — the number a deployment
   actually sees per value. *)

let smoke = ref false

(* [--out FILE]: also write the JSON object to FILE (stable schema, see
   BENCH_codec.json at the repo root for the committed baseline). *)
let out : string option ref = ref None

let value_of_size len =
  Bytes.init len (fun i -> Char.chr ((i * 31) land 0xff))

(* Repeat [f] until [min_elapsed] seconds have been spent (at least
   [min_iters] times) and return seconds per call. The whole window is
   repeated [trials] times and the fastest window wins: a background
   load spike inflates a window, never deflates it, so best-of is the
   low-variance estimator that keeps bench_diff's regression gate from
   tripping on scheduler noise. *)
let time_per_call ~min_elapsed ~min_iters f =
  ignore (f ());
  (* warm-up: tables, caches *)
  let window () =
    let t0 = Unix.gettimeofday () in
    let iters = ref 0 in
    let elapsed = ref 0.0 in
    while !iters < min_iters || !elapsed < min_elapsed do
      ignore (f ());
      incr iters;
      elapsed := Unix.gettimeofday () -. t0
    done;
    !elapsed /. float_of_int !iters
  in
  let trials = 3 in
  let best = ref (window ()) in
  for _ = 2 to trials do
    let s = window () in
    if s < !best then best := s
  done;
  !best

let mb_per_s ~bytes seconds = float_of_int bytes /. seconds /. 1e6

type point = {
  codec : string;
  op : string;
  size : int;
  domains : int;
  mbps : float;
  ns : float;
}

let measure ~codec ~op ~size ~domains f =
  let min_elapsed = if !smoke then 0.05 else 0.15 in
  let s = time_per_call ~min_elapsed ~min_iters:3 f in
  { codec; op; size; domains; mbps = mb_per_s ~bytes:size s; ns = s *. 1e9 }

let codec_points ~domains code size =
  let value = value_of_size size in
  let name = Erasure.Mds.name code in
  let k = Erasure.Mds.k code in
  let encode =
    measure ~codec:name ~op:"encode" ~size ~domains (fun () ->
        Erasure.Mds.encode ~domains code value)
  in
  let fragments = Erasure.Mds.encode code value in
  (* decode from the "worst" k survivors: drop the first n-k fragments,
     which for the systematic codecs forces the matrix path *)
  let survivors =
    List.filteri
      (fun i _ -> i >= Erasure.Mds.n code - k)
      (Array.to_list fragments)
  in
  let decode =
    measure ~codec:name ~op:"decode" ~size ~domains (fun () ->
        Erasure.Mds.decode ~domains code survivors)
  in
  (* incremental parity maintenance: a 4 KiB patch in the middle of the
     value; MB/s counts the patch bytes, the work the update does *)
  let patch_len = min 4096 (max 1 (size / 4)) in
  let patch = value_of_size patch_len in
  let pos = (size - patch_len) / 2 in
  let update =
    measure ~codec:name ~op:"update" ~size:patch_len ~domains (fun () ->
        Erasure.Mds.update ~domains code ~fragments ~value ~pos patch)
  in
  [ encode; decode; update ]

let kernel_points size =
  let src = value_of_size size in
  let dst = Bytes.make size '\000' in
  let table = Galois.Gf.mul_table 0xb7 in
  let tables16 = Galois.Gf16.mul_tables 0x1b7 in
  let wt = Galois.Gf.wtable 0xb7 in
  let wt16 = Galois.Gf16.wtable 0x1b7 in
  [ (* byte-at-a-time table sweeps: the pre-word-slicing kernels, kept
       as oracles — these rows are the "before" of the trajectory *)
    measure ~codec:"kernel-gf8" ~op:"muladd_buf" ~size ~domains:1 (fun () ->
        Galois.Gf.muladd_buf table ~src ~dst ~off:0 ~len:size);
    measure ~codec:"kernel-gf16" ~op:"muladd_buf" ~size ~domains:1 (fun () ->
        Galois.Gf16.muladd_buf tables16 ~src ~dst ~off:0 ~len:(size / 2));
    (* word-sliced sweeps: 64-bit loads over 16-bit chunk tables — what
       the codecs actually run *)
    measure ~codec:"kernel-gf8" ~op:"muladd_buf_w" ~size ~domains:1 (fun () ->
        Galois.Gf.muladd_buf_w wt ~src ~soff:0 ~dst ~doff:0 ~len:size);
    measure ~codec:"kernel-gf16" ~op:"muladd_buf_w" ~size ~domains:1 (fun () ->
        Galois.Gf16.muladd_buf_w wt16 ~src ~soff:0 ~dst ~doff:0 ~len:size);
    measure ~codec:"kernel" ~op:"xor_into" ~size ~domains:1 (fun () ->
        Galois.Wops.xor_into ~src ~soff:0 ~dst ~doff:0 ~len:size)
  ]

let emit points =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"bench\":\"codec\",";
  Buffer.add_string buf
    (Printf.sprintf "\"smoke\":%b,\"results\":[" !smoke);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"codec\":%S,\"op\":%S,\"size\":%d,\"domains\":%d,\"mb_per_s\":%.1f,\"ns_per_op\":%.0f}"
           p.codec p.op p.size p.domains p.mbps p.ns))
    points;
  Buffer.add_string buf "]}";
  let json = Buffer.contents buf in
  print_endline json;
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc

let run () =
  (* the smoke size is part of the full run too, so a committed
     full-run baseline always shares keys with a --smoke run in CI
     (tools/bench_diff matches points by codec/op/size/domains) *)
  let sizes = if !smoke then [ 16384 ] else [ 16384; 65536; 1048576 ] in
  let n = 12 and k = 8 in
  let codecs =
    [ Erasure.Mds.rs_vandermonde ~n ~k;
      Erasure.Mds.rs_systematic ~n ~k;
      Erasure.Mds.rs_bch ~n ~k;
      Erasure.Mds.rs16 ~n ~k
    ]
  in
  let points =
    List.concat_map
      (fun size ->
        kernel_points size
        @ List.concat_map (fun c -> codec_points ~domains:1 c size) codecs)
      sizes
  in
  (* Domain-parallel point: the largest size, vandermonde, sharded. *)
  let parallel =
    if !smoke then []
    else
      let size = 1048576 in
      let domains = Harness.Parallel.recommended_domains () in
      if domains < 2 then []
      else codec_points ~domains (Erasure.Mds.rs_vandermonde ~n ~k) size
  in
  emit (points @ parallel)

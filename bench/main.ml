(* Benchmark driver: regenerates every table/figure of the paper's
   evaluation (see DESIGN.md for the index). Run with no arguments for
   the full suite, or name experiments:

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe table1 latency  # a subset
*)

let experiments =
  [ ("table1", Experiments.table1, "Table I: ABD vs CASGC vs SODA at f = fmax");
    ( "table1-concurrent",
      Experiments.table1_concurrent,
      "Table I workloads with overlapping clients" );
    ("storage", Experiments.storage, "Thm 5.3: SODA storage vs f");
    ("write-cost", Experiments.write_cost, "Thm 5.4: write cost vs f");
    ("read-cost", Experiments.read_cost, "Thm 5.6: read cost vs delta_w");
    ("latency", Experiments.latency, "Thm 5.7: latency vs Delta");
    ("err-storage", Experiments.err_storage, "Thm 6.3(i): SODAerr storage vs e");
    ("err-read", Experiments.err_read, "Thm 6.3(ii,iii): SODAerr costs vs e");
    ("crossover", Experiments.crossover, "CASGC/SODA trade-off vs delta");
    ("repair", Experiments.repair, "repair extension: restore a crashed server");
    ( "replication",
      Experiments.replication_baselines,
      "ABD vs LDR vs SODA cost profile" );
    ("throughput", Experiments.throughput, "closed-loop throughput vs n");
    ("latency-dist", Experiments.latency_dist, "latency percentiles under random delays");
    ("overhead", Experiments.overhead, "metadata message overhead per op");
    ("ablation-md", Experiments.ablation_md, "chained vs direct dispersal");
    ( "ablation-gossip",
      Experiments.ablation_gossip,
      "READ-DISPERSE gossip vs none" );
    ("micro", Micro.run, "Bechamel microbenchmarks");
    ("codec", Codec_bench.run, "codec kernel throughput, JSON (see --smoke)");
    ("sim", Sim_bench.run, "simulator & checker events/sec, JSON (see --smoke)");
    ( "chaos",
      Chaos_bench.run,
      "chaos matrix: SODA over lossy/partitioned links, JSON (see --smoke)" );
    ( "sharded",
      Sharded_bench.run,
      "multi-key keyspace vs independent deployments, JSON (see --smoke)" )
  ]

let usage () =
  print_endline
    "usage: main.exe [--csv DIR] [--smoke] [--out FILE] [experiment...]";
  print_endline "experiments:";
  List.iter
    (fun (name, _, doc) -> Printf.printf "  %-16s %s\n" name doc)
    experiments

let () =
  let args = match Array.to_list Sys.argv with _ :: rest -> rest | [] -> [] in
  (* --csv DIR: additionally write every table as CSV into DIR;
     --smoke: shrink the codec benchmark to a CI-sized quota;
     --out FILE: write the JSON benches' output to FILE as well (meant
     for a single JSON experiment per invocation — codec or sim) *)
  let rec extract_flags acc = function
    | "--csv" :: dir :: rest ->
      Harness.Report.set_csv_dir (Some dir);
      extract_flags acc rest
    | "--smoke" :: rest ->
      Codec_bench.smoke := true;
      Sim_bench.smoke := true;
      Chaos_bench.smoke := true;
      Sharded_bench.smoke := true;
      extract_flags acc rest
    | "--out" :: path :: rest ->
      Codec_bench.out := Some path;
      Sim_bench.out := Some path;
      Experiments.overhead_out := Some path;
      Sharded_bench.out := Some path;
      extract_flags acc rest
    | x :: rest -> extract_flags (x :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_flags [] args in
  let requested =
    match args with
    | [] -> List.map (fun (name, _, _) -> name) experiments
    | _ -> args
  in
  if
    List.exists (String.equal "--help") requested
    || List.exists (String.equal "-h") requested
  then usage ()
  else
    List.iter
      (fun name ->
        match List.find_opt (fun (n, _, _) -> n = name) experiments with
        | Some (_, run, _) -> run ()
        | None ->
          Printf.printf "unknown experiment %S\n" name;
          usage ();
          exit 1)
      requested

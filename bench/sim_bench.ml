(* End-to-end simulator & checker throughput, reported as JSON (one
   object on stdout) so successive runs can be archived as a
   trajectory. Invoked as

     dune exec bench/main.exe -- sim            # full
     dune exec bench/main.exe -- sim --smoke    # tiny CI quota

   Three probes:

   - "mesh": a raw engine workload (no protocol) — P processes bounce
     messages across random links until a hop budget is exhausted.
     Every delivery is one heap push + pop + dispatch, so events/sec
     here is the ceiling any protocol simulation can reach.
   - "mesh-reliable": the same workload over the ack/retransmit channel
     substrate at loss p = 0 — the retransmit layer's pure overhead.
     Compare events_per_s and the sent/delivered inflation against
     "mesh" to price `Reliable transport on a loss-free network.
   - "soda-soak": the default soak workload (SODA at n=25, f=12 with
     concurrent clients and staggered crashes) — events/sec and ops/sec
     as an experiment actually sees them.
   - "checker": Atomicity.check_tagged on a synthetic m-operation
     history — wall milliseconds for the full Lemma 2.1 check.

   Every point also reports the engine's message accounting (sent /
   dropped / lost / retransmissions) so lossy runs can be told apart
   from crash-lossy ones at a glance. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay

let smoke = ref false

(* [--out FILE]: also write the JSON object to FILE (stable schema, see
   BENCH_sim.json at the repo root for the committed baseline). *)
let out : string option ref = ref None

type point = {
  probe : string;
  size : int;  (* events for sims, ops for the checker *)
  seconds : float;
  events_per_s : float;
  ops_per_s : float;
  sent : int;
  dropped : int;  (* messages to crashed processes *)
  lost : int;  (* messages eaten by the link fault plane *)
  retransmissions : int;
}

let no_traffic = (0, 0, 0, 0)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Repeat [f] (fresh state each call) until [min_elapsed] seconds have
   been measured and return the per-call average of (seconds, count). *)
let measure ~min_elapsed f =
  ignore (f ());
  (* warm-up *)
  let iters = ref 0 and elapsed = ref 0.0 and count = ref 0 in
  while !iters < 2 || !elapsed < min_elapsed do
    let s, c = time f in
    elapsed := !elapsed +. s;
    count := !count + c;
    incr iters
  done;
  (!elapsed /. float_of_int !iters, !count / !iters)

(* ------------------------------------------------------------------ *)
(* mesh: raw engine throughput *)

type mesh_msg = Hop of int

let mesh_events ?(transport = `Raw) ~procs ~messages ~hops () =
  let engine =
    Engine.create ~seed:42 ~transport ~delay:(Delay.uniform ~lo:0.1 ~hi:2.0) ()
  in
  let pids =
    Array.init procs (fun i -> Engine.reserve engine ~name:(string_of_int i))
  in
  Array.iter
    (fun pid ->
      Engine.set_handler engine pid (fun ctx ~src:_ (Hop i) ->
          if i > 0 then begin
            let dst = pids.(Simnet.Rng.int (Engine.rng_ctx ctx) procs) in
            Engine.send ctx ~dst (Hop (i - 1))
          end))
    pids;
  for m = 0 to messages - 1 do
    Engine.inject engine ~at:0.0 pids.(m mod procs) (fun ctx ->
        Engine.send ctx ~dst:pids.((m + 1) mod procs) (Hop hops))
  done;
  Engine.run engine;
  ( Engine.messages_delivered engine,
    ( Engine.messages_sent engine,
      Engine.messages_dropped engine,
      Engine.messages_lost engine,
      Engine.retransmissions engine ) )

let mesh_point ?(transport = `Raw) ~probe () =
  let procs = 64 in
  let messages, hops = if !smoke then (100, 50) else (1_000, 500) in
  let min_elapsed = if !smoke then 0.05 else 1.0 in
  let traffic = ref no_traffic in
  let seconds, delivered =
    measure ~min_elapsed (fun () ->
        let d, t = mesh_events ~transport ~procs ~messages ~hops () in
        traffic := t;
        d)
  in
  let sent, dropped, lost, retransmissions = !traffic in
  { probe;
    size = delivered;
    seconds;
    events_per_s = float_of_int delivered /. seconds;
    ops_per_s = 0.0;
    sent;
    dropped;
    lost;
    retransmissions
  }

(* ------------------------------------------------------------------ *)
(* soda-soak: the default soak workload end to end *)

let soak_run ~ops_per_client () =
  let params = Protocol.Params.make ~n:25 ~f:12 () in
  let w =
    Harness.Workload.concurrent ~params ~value_len:256 ~seed:1 ~num_writers:4
      ~num_readers:4 ~ops_per_client
      ~delay:(Delay.exponential ~mean:1.0 ~cap:10.0) ()
  in
  let crashes = List.init 12 (fun i -> (2 * i, float_of_int (i * 80))) in
  let r =
    Harness.Runner.run Harness.Runner.Soda
      (Harness.Workload.with_crashes w crashes)
  in
  ( r.Harness.Runner.messages_delivered,
    Harness.Workload.total_ops w,
    ( r.Harness.Runner.messages_sent,
      r.Harness.Runner.messages_dropped,
      r.Harness.Runner.messages_lost,
      0 ) )

let soak_point () =
  let ops_per_client = if !smoke then 2 else 8 in
  let min_elapsed = if !smoke then 0.05 else 1.0 in
  let ops = ref 0 in
  let traffic = ref no_traffic in
  let seconds, delivered =
    measure ~min_elapsed (fun () ->
        let d, o, t = soak_run ~ops_per_client () in
        ops := o;
        traffic := t;
        d)
  in
  let sent, dropped, lost, retransmissions = !traffic in
  { probe = "soda-soak";
    size = delivered;
    seconds;
    events_per_s = float_of_int delivered /. seconds;
    ops_per_s = float_of_int !ops /. seconds;
    sent;
    dropped;
    lost;
    retransmissions
  }

(* ------------------------------------------------------------------ *)
(* checker: Atomicity.check_tagged on a large synthetic history *)

let synthetic_history m =
  (* a sequentially consistent interleaving with random overlap — the
     same construction as the checker cross-validation tests *)
  let rng = Simnet.Rng.create 7 in
  let time = ref 0.0 in
  let last_write = ref None in
  let zc = ref 0 in
  List.init m (fun op ->
      let start = !time +. Simnet.Rng.float rng 1.0 in
      let finish = start +. Simnet.Rng.float rng 1.0 in
      time := finish;
      let mk kind tag value : Protocol.History.record =
        { Protocol.History.op;
          client = op mod 8;
          kind;
          invoked_at = start;
          responded_at = Some finish;
          tag = Some tag;
          value = Some (Bytes.of_string value)
        }
      in
      if Simnet.Rng.bool rng then begin
        incr zc;
        let tag = Protocol.Tag.make ~z:!zc ~w:(100 + op) in
        let value = Printf.sprintf "v%d" op in
        last_write := Some (tag, value);
        mk Protocol.History.Write tag value
      end
      else
        match !last_write with
        | None -> mk Protocol.History.Read Protocol.Tag.initial ""
        | Some (tag, value) -> mk Protocol.History.Read tag value)

let checker_point () =
  let m = if !smoke then 2_000 else 10_000 in
  let records = synthetic_history m in
  let min_elapsed = if !smoke then 0.05 else 0.5 in
  let seconds, _ =
    measure ~min_elapsed (fun () ->
        match Protocol.Atomicity.check_tagged records with
        | Ok () -> m
        | Error _ -> failwith "sim bench: synthetic history rejected")
  in
  let sent, dropped, lost, retransmissions = no_traffic in
  { probe = "checker";
    size = m;
    seconds;
    events_per_s = float_of_int m /. seconds;
    ops_per_s = 0.0;
    sent;
    dropped;
    lost;
    retransmissions
  }

(* ------------------------------------------------------------------ *)

let emit points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"bench\":\"sim\",";
  Buffer.add_string buf (Printf.sprintf "\"smoke\":%b,\"results\":[" !smoke);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"probe\":%S,\"size\":%d,\"seconds\":%.4f,\"events_per_s\":%.0f,\"ops_per_s\":%.1f,\"sent\":%d,\"dropped\":%d,\"lost\":%d,\"retransmissions\":%d}"
           p.probe p.size p.seconds p.events_per_s p.ops_per_s p.sent p.dropped
           p.lost p.retransmissions))
    points;
  Buffer.add_string buf "]}";
  let json = Buffer.contents buf in
  print_endline json;
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc

let run () =
  emit
    [ mesh_point ~probe:"mesh" ();
      mesh_point ~transport:(`Reliable Simnet.Channel.default)
        ~probe:"mesh-reliable" ();
      soak_point ();
      checker_point ()
    ]

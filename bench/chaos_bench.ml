(* The chaos matrix as a benchmark / CI gate, reported as JSON (one
   object on stdout). Invoked as

     dune exec bench/main.exe -- chaos            # full: 3 seeds/cell
     dune exec bench/main.exe -- chaos --smoke    # CI: 1 seed/cell

   Every cell of Harness.Chaos.matrix (loss x partitions x crashes)
   runs SODA over the reliable-channel transport and must come back
   live, atomic, trace-clean, and with zero abandoned sends. Any
   failing (cell, seed) pair makes the whole experiment exit nonzero
   and prints the replay command that reproduces it. *)

module Chaos = Harness.Chaos

let smoke = ref false

(* nearest-rank percentile on a sorted copy; 0.0 for an empty list *)
let percentile p durations =
  match List.sort Float.compare durations with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    List.nth sorted (max 0 (min (n - 1) rank))

let heal_json (o : Chaos.outcome) =
  if not o.scenario.Chaos.healing then ""
  else
    let hs = o.heal_stats in
    Printf.sprintf
      ",\"scrub_clean\":%b,\"all_live\":%b,\"heartbeats\":%d,\"suspicions\":%d,\"scrub_sweeps\":%d,\"scrub_hits\":%d,\"auto_repairs\":%d,\"scrub_repairs\":%d,\"mttd_p50\":%.1f,\"mttr_p50\":%.1f,\"mttr_p95\":%.1f,\"mttr_max\":%.1f"
      o.Chaos.scrub_clean o.Chaos.all_live hs.Soda.Config.heartbeats_sent
      hs.Soda.Config.suspicions hs.Soda.Config.scrub_sweeps
      hs.Soda.Config.scrub_hits hs.Soda.Config.auto_repairs
      hs.Soda.Config.scrub_repairs
      (percentile 0.5 o.Chaos.heal_mttd)
      (percentile 0.5 o.Chaos.heal_mttr)
      (percentile 0.95 o.Chaos.heal_mttr)
      (percentile 1.0 o.Chaos.heal_mttr)

let emit outcomes =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"bench\":\"chaos\",";
  Buffer.add_string buf (Printf.sprintf "\"smoke\":%b,\"results\":[" !smoke);
  List.iteri
    (fun i (o : Chaos.outcome) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"scenario\":%S,\"seed\":%d,\"ok\":%b,\"ops\":%d,\"sent\":%d,\"delivered\":%d,\"dropped\":%d,\"lost\":%d,\"retransmissions\":%d,\"duplicates_suppressed\":%d,\"abandoned\":%d,\"data\":%d,\"meta\":%d,\"acks\":%d,\"crashes\":%d,\"partitions\":%d,\"bitrots\":%d%s,\"final_time\":%.1f}"
           o.scenario.Chaos.name o.seed (Chaos.ok o) o.ops o.sent o.delivered
           o.dropped o.lost o.retransmissions o.duplicates_suppressed
           o.abandoned o.data o.meta o.acks o.crash_events o.partition_events
           o.bitrot_events (heal_json o) o.final_time))
    outcomes;
  Buffer.add_string buf "]}";
  print_endline (Buffer.contents buf)

let run () =
  let seeds = if !smoke then [ 1 ] else [ 1; 2; 3 ] in
  let outcomes =
    List.concat_map
      (fun scenario ->
        List.map (fun seed -> Chaos.run ~trace:true scenario ~seed) seeds)
      Chaos.matrix
  in
  emit outcomes;
  let failures = List.filter (fun o -> not (Chaos.ok o)) outcomes in
  List.iter
    (fun (o : Chaos.outcome) ->
      Printf.eprintf
        "chaos: FAIL %s seed=%d — replay with: dune exec bin/replay.exe -- %s \
         %d\n"
        o.scenario.Chaos.name o.seed o.scenario.Chaos.name o.seed)
    failures;
  if not (List.is_empty failures) then exit 1

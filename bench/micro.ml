(* Bechamel microbenchmarks of the infrastructure: GF(2^8) arithmetic
   and Reed-Solomon encode/decode throughput, including the
   errors-and-erasures decoder SODAerr relies on. *)

open Bechamel
open Toolkit

let value_of_size len =
  Bytes.init len (fun i -> Char.chr ((i * 31) land 0xff))

let gf_tests =
  let a = ref 37 and b = ref 181 in
  Test.make_grouped ~name:"gf256"
    [ Test.make ~name:"mul" (Staged.stage (fun () -> Galois.Gf.mul !a !b));
      Test.make ~name:"inv" (Staged.stage (fun () -> Galois.Gf.inv !a));
      Test.make ~name:"mul_slow"
        (Staged.stage (fun () -> Galois.Gf.mul_slow !a !b))
    ]

(* Bytes processed per run of each named benchmark, for the MB/s column
   of the report; benchmarks that aren't byte sweeps are omitted.

   Convention: codec figures count bytes of USER data — the value the
   client reads or writes, i.e. the k data symbols of every stripe
   (k·len of fragment bytes), never the n·len total the codec touches
   across all fragments. That keeps MB/s comparable across [n,k]
   presets: a [12,8] and a [10,5] encode of the same value report the
   same numerator even though the second writes more parity. *)
let bytes_per_run : (string * int) list ref = ref []

let note_bytes name bytes = bytes_per_run := (name, bytes) :: !bytes_per_run

(* The raw kernel sweeps underlying every codec — the pre-existing
   byte-at-a-time table loops next to the word-sliced chunk-table
   sweeps that replaced them on the hot paths, at a small and a large
   size. *)
let kernel_tests =
  let make_point name len =
    let src = value_of_size len in
    let dst = Bytes.make len '\000' in
    let table = Galois.Gf.mul_table 0xb7 in
    let tables16 = Galois.Gf16.mul_tables 0x1b7 in
    let wt = Galois.Gf.wtable 0xb7 in
    let wt16 = Galois.Gf16.wtable 0x1b7 in
    [ (let n = Printf.sprintf "muladd-gf8-%s" name in
       note_bytes ("micro/kernel/" ^ n) len;
       Test.make ~name:n
         (Staged.stage (fun () ->
              Galois.Gf.muladd_buf table ~src ~dst ~off:0 ~len)));
      (let n = Printf.sprintf "muladd-gf16-%s" name in
       note_bytes ("micro/kernel/" ^ n) len;
       Test.make ~name:n
         (Staged.stage (fun () ->
              Galois.Gf16.muladd_buf tables16 ~src ~dst ~off:0 ~len:(len / 2))));
      (let n = Printf.sprintf "muladd-gf8w-%s" name in
       note_bytes ("micro/kernel/" ^ n) len;
       Test.make ~name:n
         (Staged.stage (fun () ->
              Galois.Gf.muladd_buf_w wt ~src ~soff:0 ~dst ~doff:0 ~len)));
      (let n = Printf.sprintf "muladd-gf16w-%s" name in
       note_bytes ("micro/kernel/" ^ n) len;
       Test.make ~name:n
         (Staged.stage (fun () ->
              Galois.Gf16.muladd_buf_w wt16 ~src ~soff:0 ~dst ~doff:0 ~len)));
      (let n = Printf.sprintf "xor-%s" name in
       note_bytes ("micro/kernel/" ^ n) len;
       Test.make ~name:n
         (Staged.stage (fun () ->
              Galois.Wops.xor_into ~src ~soff:0 ~dst ~doff:0 ~len)))
    ]
  in
  Test.make_grouped ~name:"kernel"
    (make_point "64KiB" 65536 @ make_point "1MiB" 1048576)

(* One codec benchmark group per [n,k] preset; MB/s counts user bytes
   (see [bytes_per_run]), so rows are comparable across groups. *)
let codec_tests_for ~n ~k =
  let group = Printf.sprintf "rs[%d,%d]" n k in
  let vand = Erasure.Mds.rs_vandermonde ~n ~k in
  let sys = Erasure.Mds.rs_systematic ~n ~k in
  let bch = Erasure.Mds.rs_bch ~n ~k in
  let user_bytes name len =
    note_bytes (Printf.sprintf "micro/%s/%s" group name) len
  in
  let make_encode name code len =
    let value = value_of_size len in
    user_bytes name len;
    Test.make ~name (Staged.stage (fun () -> Erasure.Mds.encode code value))
  in
  let make_decode name code len ~corrupt ~drop =
    let value = value_of_size len in
    user_bytes name len;
    let fragments = Array.to_list (Erasure.Mds.encode code value) in
    let fragments =
      List.filteri (fun i _ -> i >= drop) fragments
      |> List.mapi (fun i f ->
             if i < corrupt then Erasure.Fragment.corrupt f ~seed:7 else f)
    in
    Test.make ~name
      (Staged.stage (fun () -> Erasure.Mds.decode code fragments))
  in
  let make_update name code len =
    (* incremental parity: a 1 KiB patch mid-value; the "user bytes" an
       update transfers are the patch bytes *)
    let value = value_of_size len in
    let patch = value_of_size 1024 in
    let pos = (len - 1024) / 2 in
    let fragments = Erasure.Mds.encode code value in
    user_bytes name 1024;
    Test.make ~name
      (Staged.stage (fun () ->
           Erasure.Mds.update code ~fragments ~value ~pos patch))
  in
  let sys_fastpath_decode =
    (* all k systematic fragments present: the copy-only path *)
    let value = value_of_size 65536 in
    let fragments =
      Array.to_list (Erasure.Mds.encode sys value)
      |> List.filteri (fun i _ -> i < k)
    in
    user_bytes "decode-sys-64KiB-fastpath" 65536;
    Test.make ~name:"decode-sys-64KiB-fastpath"
      (Staged.stage (fun () -> Erasure.Mds.decode sys fragments))
  in
  let drop = n - k in
  Test.make_grouped ~name:group
    [ make_encode "encode-vand-64KiB" vand 65536;
      make_encode "encode-sys-64KiB" sys 65536;
      make_encode "encode-bch-64KiB" bch 65536;
      make_decode
        (Printf.sprintf "decode-vand-64KiB-%derasures" drop)
        vand 65536 ~corrupt:0 ~drop;
      make_decode
        (Printf.sprintf "decode-sys-64KiB-%derasures" drop)
        sys 65536 ~corrupt:0 ~drop;
      sys_fastpath_decode;
      make_decode
        (Printf.sprintf "decode-bch-64KiB-%derasures" drop)
        bch 65536 ~corrupt:0 ~drop;
      make_decode "decode-bch-64KiB-1error" bch 65536 ~corrupt:1 ~drop:0;
      make_update "update-sys-64KiB-1KiB" sys 65536
    ]

let codec_tests = codec_tests_for ~n:12 ~k:8
let codec_tests_alt = codec_tests_for ~n:10 ~k:5

let event_queue_tests =
  (* the simulator's dominant data-structure operations, isolated from
     protocol work. [replace-top] is steady-state churn at a fixed heap
     depth: pop the minimum, push a replacement a pseudo-random offset
     later — one full sift per run. [push-pop-256] ramps a queue up and
     drains it, covering both sift directions and the inbox path. *)
  let lcg = ref 0x4F6CDD1D in
  let jitter () =
    lcg := ((!lcg * 1103515245) + 12345) land 0x3FFFFFFF;
    float_of_int (!lcg land 0xFFFF) /. 65536.0
  in
  let depth = 256 in
  let churn_q : unit Simnet.Event_queue.t = Simnet.Event_queue.create () in
  let churn_t = ref 0.0 in
  for _ = 1 to depth do
    churn_t := !churn_t +. 1.0;
    Simnet.Event_queue.push_tagged churn_q ~time:(!churn_t +. jitter ()) ~tag:3
      ()
  done;
  let drain_q : unit Simnet.Event_queue.t = Simnet.Event_queue.create () in
  Test.make_grouped ~name:"event_queue"
    [ Test.make ~name:"replace-top-d256"
        (Staged.stage (fun () ->
             ignore (Simnet.Event_queue.next_tag churn_q : int);
             Simnet.Event_queue.pop_exn churn_q;
             churn_t := !churn_t +. 1.0;
             (Simnet.Event_queue.inbox churn_q).(0) <- !churn_t +. jitter ();
             Simnet.Event_queue.push_inbox churn_q ~tag:3 ()));
      Test.make ~name:"push-pop-256"
        (Staged.stage (fun () ->
             for i = 1 to depth do
               Simnet.Event_queue.push_tagged drain_q
                 ~time:(float_of_int i +. jitter ())
                 ~tag:3 ()
             done;
             while not (Simnet.Event_queue.is_empty drain_q) do
               Simnet.Event_queue.pop_exn drain_q
             done))
    ]

let engine_tests =
  (* the engine's send + deliver path with a no-op protocol: two
     processes ping-pong a single message, so every [step] dispatches
     one delivery and enqueues one send *)
  let make name delay =
    let engine = Simnet.Engine.create ~seed:1 ~delay () in
    let a = Simnet.Engine.reserve engine ~name:"a" in
    let b = Simnet.Engine.reserve engine ~name:"b" in
    Simnet.Engine.set_handler engine a (fun ctx ~src:_ () ->
        Simnet.Engine.send ctx ~dst:b ());
    Simnet.Engine.set_handler engine b (fun ctx ~src:_ () ->
        Simnet.Engine.send ctx ~dst:a ());
    Simnet.Engine.inject engine ~at:0.0 a (fun ctx ->
        Simnet.Engine.send ctx ~dst:b ());
    ignore (Simnet.Engine.step engine : bool);
    Test.make ~name
      (Staged.stage (fun () -> ignore (Simnet.Engine.step engine : bool)))
  in
  Test.make_grouped ~name:"engine"
    [ make "send+deliver-const" (Simnet.Delay.constant 1.0);
      make "send+deliver-exp"
        (Simnet.Delay.exponential ~mean:1.0 ~cap:10.0)
    ]

let simulation_tests =
  (* a whole SODA round-trip (write + read on a 7-server cluster) as one
     macro-ish sample, to put protocol overhead in perspective *)
  let run () =
    let params = Protocol.Params.make ~n:7 ~f:2 () in
    let engine =
      Simnet.Engine.create ~seed:3 ~delay:(Simnet.Delay.constant 1.0) ()
    in
    let d =
      Soda.Deployment.deploy ~engine ~params
        ~initial_value:(value_of_size 4096) ~num_writers:1 ~num_readers:1 ()
    in
    Soda.Deployment.write d ~writer:0 ~at:0.0 (value_of_size 4096);
    Soda.Deployment.read d ~reader:0 ~at:100.0 ();
    Simnet.Engine.run engine
  in
  Test.make_grouped ~name:"simulation"
    [ Test.make ~name:"soda-write+read-n7-4KiB" (Staged.stage run) ]

let all_tests =
  Test.make_grouped ~name:"micro"
    [ gf_tests;
      kernel_tests;
      codec_tests;
      codec_tests_alt;
      event_queue_tests;
      engine_tests;
      simulation_tests
    ]

let run () =
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg [ Instance.monotonic_clock ] all_tests in
  let results =
    Analyze.all
      (Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  print_newline ();
  print_endline "== Microbenchmarks (ns per run, OLS estimate) ==";
  let rows = ref [] in
  (Hashtbl.iter
   [@lint.allow
     "D3: rows are materialized here and sorted with a dedicated \
      comparator before printing"])
    (fun name ols ->
      let ns = match Analyze.OLS.estimates ols with
        | Some [ e ] -> Some e
        | Some _ | None -> None
      in
      let estimate =
        match ns with Some e -> Printf.sprintf "%.1f" e | None -> "-"
      in
      let mbps =
        match (ns, List.assoc_opt name !bytes_per_run) with
        | Some e, Some bytes when e > 0.0 ->
          Printf.sprintf "%.0f" (float_of_int bytes *. 1000.0 /. e)
        | _ -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; estimate; mbps; r2 ] :: !rows)
    results;
  Harness.Report.table ~title:"micro"
    ~header:[ "benchmark"; "ns/run"; "MB/s"; "r^2" ]
    (List.sort (List.compare String.compare) !rows)

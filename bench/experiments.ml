(* The paper-reproduction experiments: one function per table/figure of
   the evaluation, each printing measured numbers next to the paper's
   formulas. See DESIGN.md for the experiment index and EXPERIMENTS.md
   for a captured run. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics
module Report = Harness.Report

let value_len = 4096

(* fragment-exact unit cost: what one coded element costs in value units
   once framing is accounted for *)
let unit_cost ~n ~k =
  float_of_int (n * Erasure.Splitter.fragment_size ~k ~value_len)
  /. float_of_int value_len

let summarize algo workload = Metrics.summarize (Runner.run algo workload)

(* ------------------------------------------------------------------ *)
(* Table I: ABD vs CASGC vs SODA at f = fmax *)

let table1 () =
  List.iter
    (fun n ->
      let f = Params.fmax ~n in
      let delta = 2 in
      let params = Params.make ~n ~f () in
      let seq ?(rounds = delta + 2) () =
        Workload.sequential ~params ~value_len ~seed:42 ~rounds ()
      in
      let abd = summarize Runner.Abd (seq ()) in
      let casgc = summarize (Runner.Cas { gc_depth = Some delta }) (seq ()) in
      let soda = summarize Runner.Soda (seq ()) in
      let fn = float_of_int n in
      let k_cas = float_of_int (Params.k_cas params) in
      (* steady-state storage: the paper's CASGC formula describes the
         post-GC state; the peak additionally holds the in-flight
         pre-written version *)
      let row name (s : Metrics.summary) ~w_paper ~r_paper ~s_paper =
        [ name;
          Report.f2 s.Metrics.write_cost.mean;
          w_paper;
          Report.f2 s.Metrics.read_cost.mean;
          r_paper;
          Report.f2 s.Metrics.storage_final;
          Report.f2 s.Metrics.storage_max;
          s_paper;
          (if s.Metrics.liveness && s.Metrics.atomic then "yes" else "NO")
        ]
      in
      Report.table
        ~title:
          (Printf.sprintf
             "Table I reproduction: n=%d, f=fmax=%d, delta=%d (quiescent \
              reads, delta_w=0)"
             n f delta)
        ~header:
          [ "algorithm"; "write"; "(paper)"; "read"; "(paper)"; "storage";
            "peak"; "(paper)"; "atomic+live"
          ]
        [ row "ABD" abd ~w_paper:(Report.f2 fn) ~r_paper:(Report.f2 fn)
            ~s_paper:(Report.f2 fn);
          row
            (Printf.sprintf "CASGC(%d)" delta)
            casgc
            ~w_paper:(Report.f2 (fn /. k_cas))
            ~r_paper:(Report.f2 (fn /. k_cas))
            ~s_paper:(Report.f2 (fn /. k_cas *. float_of_int (delta + 1)));
          row "SODA" soda
            ~w_paper:(Printf.sprintf "<=%.0f" (5.0 *. float_of_int (f * f)))
            ~r_paper:(Report.f2 (fn /. float_of_int (n - f)))
            ~s_paper:(Report.f2 (fn /. float_of_int (n - f)))
        ])
    [ 10; 20; 50 ]

(* ------------------------------------------------------------------ *)
(* Table I under concurrency: the elasticity argument of Section I-B *)

let table1_concurrent () =
  let n = 10 in
  let f = Params.fmax ~n in
  let delta = 2 in
  let params = Params.make ~n ~f () in
  let workload =
    Workload.concurrent ~params ~value_len ~seed:77 ~num_writers:2
      ~num_readers:2 ~ops_per_client:4 ()
  in
  let rows =
    List.map
      (fun (name, algo) ->
        let s = summarize algo workload in
        [ name;
          Report.f2 s.Metrics.write_cost.mean;
          Report.f2 s.Metrics.read_cost.mean;
          Report.f2 s.Metrics.read_cost.max;
          Report.f2 s.Metrics.storage_final;
          Report.f2 s.Metrics.storage_max;
          (if s.Metrics.liveness && s.Metrics.atomic then "yes" else "NO")
        ])
      [ ("ABD", Runner.Abd);
        (Printf.sprintf "CASGC(%d)" delta, Runner.Cas { gc_depth = Some delta });
        ("SODA", Runner.Soda)
      ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Table I under concurrency (n=%d, f=%d, 2 writers + 2 readers           overlapping): SODA's read cost is elastic — it grows only with           the overlap a read actually sees — while CASGC's storage pays           (delta+1) rigidly"
         n f)
    ~header:
      [ "algorithm"; "write mean"; "read mean"; "read max"; "storage";
        "peak"; "atomic+live"
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Theorem 5.3: storage vs f *)

let storage () =
  let n = 20 in
  let rows =
    List.map
      (fun f ->
        let params = Params.make ~n ~f () in
        let w = Workload.sequential ~params ~value_len ~seed:7 ~rounds:2 () in
        let soda = summarize Runner.Soda w in
        let k = Params.k_soda params in
        [ Report.i f;
          Report.i k;
          Report.f2 soda.Metrics.storage_max;
          Report.f2 (float_of_int n /. float_of_int (n - f));
          Report.f2 (unit_cost ~n ~k);
          Report.i n
        ])
      (List.init (Params.fmax ~n) (fun i -> i + 1))
  in
  Report.table
    ~title:(Printf.sprintf "Thm 5.3: SODA total storage vs f (n=%d)" n)
    ~header:
      [ "f"; "k"; "measured"; "n/(n-f)"; "formula+framing"; "ABD (=n)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Theorem 5.4: write cost vs f *)

let write_cost () =
  let rows =
    List.map
      (fun f ->
        let n = (2 * f) + 1 in
        let params = Params.make ~n ~f () in
        let w = Workload.sequential ~params ~value_len ~seed:7 ~rounds:2 () in
        let soda = summarize Runner.Soda w in
        let abd = summarize Runner.Abd w in
        [ Report.i f;
          Report.i n;
          Report.f2 soda.Metrics.write_cost.mean;
          Report.f2 (5.0 *. float_of_int (f * f));
          Report.f2 abd.Metrics.write_cost.mean
        ])
      (List.init 12 (fun i -> i + 1))
  in
  Report.table
    ~title:"Thm 5.4: SODA write communication cost vs f (n = 2f+1)"
    ~header:[ "f"; "n"; "SODA measured"; "bound 5f^2"; "ABD (=n)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Theorem 5.6: read cost vs delta_w *)

let read_cost () =
  let n = 10 and f = 3 in
  let params = Params.make ~n ~f () in
  let buckets = Hashtbl.create 8 in
  (* the 60 seeded storms are independent simulations: sweep them across
     domains *)
  let per_seed =
    List.init 60 (fun seed ->
        Workload.read_with_write_storm ~params ~value_len ~seed ~writers:4
          ~writes_per_writer:2 ())
    |> Runner.run_sweep Runner.Soda
    |> List.map Metrics.reads_with_delta_w
  in
  List.iter
    (List.iter (fun (_, dw, cost) ->
         let existing =
           match Hashtbl.find_opt buckets dw with
           | Some l -> l
           | None -> []
         in
         Hashtbl.replace buckets dw (cost :: existing)))
    per_seed;
  let u = unit_cost ~n ~k:(n - f) in
  let rows =
    (Hashtbl.fold
     [@lint.allow
       "D3: the fold materializes the buckets into a list that is sorted \
        by key on the next line"])
      (fun dw costs acc -> (dw, costs) :: acc)
      buckets []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
    |> List.map (fun (dw, costs) ->
           let s = Metrics.stats_of costs in
           [ Report.i dw;
             Report.i s.Metrics.count;
             Report.f2 s.Metrics.mean;
             Report.f2 s.Metrics.max;
             Report.f2 (u *. float_of_int (dw + 1))
           ])
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Thm 5.6: SODA read cost vs measured delta_w (n=%d, f=%d, 60 seeded \
          write storms)"
         n f)
    ~header:[ "delta_w"; "reads"; "mean cost"; "max cost"; "n/(n-f)*(dw+1)" ]
    rows;
  print_endline
    "note: reads whose window admits straggler deliveries of writes started\n\
     just before T1 can exceed the formula; the sound bound uses concurrent\n\
     writes (Metrics.concurrent_writes), see DESIGN.md."

(* ------------------------------------------------------------------ *)
(* Theorem 5.7: latency *)

let latency () =
  let delta = 1.0 in
  let rows =
    List.map
      (fun f ->
        let params = Params.make ~n:10 ~f () in
        let w =
          Workload.sequential ~params ~value_len ~seed:5
            ~delay:(Simnet.Delay.constant delta) ~rounds:3 ()
        in
        let soda = summarize Runner.Soda w in
        [ Report.i f;
          Report.f2 soda.Metrics.write_latency.max;
          Report.f2 (5.0 *. delta);
          Report.f2 soda.Metrics.read_latency.max;
          Report.f2 (6.0 *. delta)
        ])
      [ 1; 2; 3; 4 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Thm 5.7: SODA operation latency under constant message delay \
          Delta=%.1f (n=10)"
         delta)
    ~header:[ "f"; "write max"; "bound 5D"; "read max"; "bound 6D" ]
    rows

(* ------------------------------------------------------------------ *)
(* Theorem 6.3: SODAerr storage and read cost vs e *)

let err_storage () =
  let n = 20 and f = 3 in
  let rows =
    List.map
      (fun e ->
        let params = Params.make ~n ~f ~e () in
        let coords = List.init e (fun i -> i) in
        let w = Workload.sequential ~params ~value_len ~seed:11 ~rounds:2 () in
        let w = Workload.with_errors w coords in
        let soda = summarize Runner.Soda w in
        let k = Params.k_soda params in
        [ Report.i e;
          Report.i k;
          Report.f2 soda.Metrics.storage_max;
          Report.f2 (float_of_int n /. float_of_int (n - f - (2 * e)));
          (if soda.Metrics.liveness && soda.Metrics.atomic then "yes" else "NO")
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Thm 6.3(i): SODAerr total storage vs e (n=%d, f=%d, e corrupt \
          disks active)"
         n f)
    ~header:[ "e"; "k=n-f-2e"; "measured"; "n/(n-f-2e)"; "atomic+live" ]
    rows

let err_read () =
  let n = 20 and f = 3 in
  let rows =
    List.concat_map
      (fun e ->
        let params = Params.make ~n ~f ~e () in
        let coords = List.init e (fun i -> 2 * i) in
        let w = Workload.sequential ~params ~value_len ~seed:13 ~rounds:3 () in
        let w = Workload.with_errors w coords in
        let soda = summarize Runner.Soda w in
        [ [ Report.i e;
            Report.f2 soda.Metrics.read_cost.mean;
            Report.f2 (float_of_int n /. float_of_int (n - f - (2 * e)));
            Report.f2 soda.Metrics.write_cost.mean;
            Printf.sprintf "<=%.0f" (5.0 *. float_of_int (f * f));
            (if soda.Metrics.liveness && soda.Metrics.atomic then "yes"
             else "NO")
          ]
        ])
      [ 0; 1; 2 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Thm 6.3(ii,iii): SODAerr costs vs e (n=%d, f=%d, quiescent reads, \
          corrupt disks active)"
         n f)
    ~header:
      [ "e"; "read"; "n/(n-f-2e)"; "write"; "bound"; "atomic+live" ]
    rows

(* ------------------------------------------------------------------ *)
(* Section I-B: storage crossover between CASGC and SODA as delta grows *)

let crossover () =
  let n = 10 in
  let f = Params.fmax ~n in
  let params = Params.make ~n ~f () in
  let soda =
    summarize Runner.Soda
      (Workload.sequential ~params ~value_len ~seed:3 ~rounds:8 ())
  in
  let rows =
    List.map
      (fun delta ->
        let casgc =
          summarize
            (Runner.Cas { gc_depth = Some delta })
            (Workload.sequential ~params ~value_len ~seed:3 ~rounds:8 ())
        in
        let formula =
          float_of_int n /. float_of_int (n - (2 * f))
          *. float_of_int (delta + 1)
        in
        [ Report.i delta;
          Report.f2 casgc.Metrics.storage_max;
          Report.f2 formula;
          Report.f2 soda.Metrics.storage_max;
          Report.f2 casgc.Metrics.write_cost.mean;
          Report.f2 soda.Metrics.write_cost.mean
        ])
      [ 0; 1; 2; 3; 4; 5; 6 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Storage/communication trade-off vs delta (n=%d, f=fmax=%d): SODA \
          wins storage at every delta, CASGC wins write cost"
         n f)
    ~header:
      [ "delta"; "CASGC storage"; "formula"; "SODA storage"; "CASGC write";
        "SODA write"
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Replication baselines: ABD vs LDR vs SODA *)

let ldr_row ~f ~seed =
  let params = Params.make ~n:((2 * f) + 1) ~f () in
  let initial_value = Workload.value ~len:value_len ~seed ~index:0 in
  let engine =
    Simnet.Engine.create ~seed ~delay:(Simnet.Delay.constant 1.0) ()
  in
  let d =
    Baselines.Ldr.deploy ~engine ~params ~initial_value ~value_len
      ~num_writers:1 ~num_readers:1 ()
  in
  Baselines.Ldr.write d ~writer:0 ~at:0.0
    (Workload.value ~len:value_len ~seed ~index:1);
  Baselines.Ldr.read d ~reader:0 ~at:50.0 ();
  Simnet.Engine.run engine;
  let cost = Baselines.Ldr.cost d in
  ( Cost.comm_of_op cost ~op:0,
    Cost.comm_of_op cost ~op:1,
    Cost.max_total_storage cost )

let replication_baselines () =
  let rows =
    List.map
      (fun f ->
        let n = (2 * f) + 1 in
        let params = Params.make ~n ~f () in
        let w = Workload.sequential ~params ~value_len ~seed:3 ~rounds:2 () in
        let abd = summarize Runner.Abd w in
        let soda = summarize Runner.Soda w in
        let ldr_w, ldr_r, ldr_s = ldr_row ~f ~seed:3 in
        [ Report.i f;
          Report.f2 abd.Metrics.write_cost.mean;
          Report.f2 abd.Metrics.read_cost.mean;
          Report.f2 abd.Metrics.storage_max;
          Report.f2 ldr_w;
          Report.f2 ldr_r;
          Report.f2 ldr_s;
          Report.f2 soda.Metrics.write_cost.mean;
          Report.f2 soda.Metrics.read_cost.mean;
          Report.f2 soda.Metrics.storage_max
        ])
      [ 1; 2; 3; 4; 5 ]
  in
  Report.table
    ~title:
      "Replication baselines vs SODA (n = 2f+1 servers; LDR uses 2f+1 directories + 2f+1 replicas); quiescent ops"
    ~header:
      [ "f"; "ABD w"; "ABD r"; "ABD stor"; "LDR w"; "LDR r"; "LDR stor";
        "SODA w"; "SODA r"; "SODA stor"
      ]
    rows

(* ------------------------------------------------------------------ *)
(* Repair extension: bandwidth and duration of restoring a server *)

let repair () =
  let rows =
    List.map
      (fun f ->
        let n = (2 * f) + 2 in
        let params = Params.make ~n ~f () in
        let engine =
          Simnet.Engine.create ~seed:31 ~delay:(Simnet.Delay.constant 1.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Workload.value ~len:value_len ~seed:31 ~index:0)
            ~value_len ~num_writers:1 ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0
          (Workload.value ~len:value_len ~seed:31 ~index:1);
        Soda.Deployment.crash_server d ~coordinate:1 ~at:20.0;
        let op = Soda.Deployment.repair_server d ~coordinate:1 ~at:50.0 in
        Simnet.Engine.run engine;
        let cost = Cost.comm_of_op (Soda.Deployment.cost d) ~op in
        let duration =
          let start = ref nan and finish = ref nan in
          List.iter
            (function
              | Probe.Repair_started { server = 1; time } -> start := time
              | Probe.Repaired { server = 1; time; _ } -> finish := time
              | _ -> ())
            (Probe.events (Soda.Deployment.probe d));
          !finish -. !start
        in
        [ Report.i f;
          Report.i n;
          Report.f2 cost;
          Report.f2 (float_of_int (n - 1) /. float_of_int (n - f));
          Report.f2 duration
        ])
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Report.table
    ~title:
      "Repair extension (paper future work (ii)): cost of restoring one crashed server (n = 2f+2, Delta = 1)"
    ~header:
      [ "f"; "n"; "repair cost"; "(n-1)/(n-f)"; "duration (x Delta)" ]
    rows

(* ------------------------------------------------------------------ *)
(* Latency distributions under random delays *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(min (n - 1) (int_of_float (p *. float_of_int n)))

let latency_dist () =
  let params = Params.make ~n:10 ~f:4 () in
  let delta = 2.0 in
  let delay = Simnet.Delay.uniform ~lo:0.1 ~hi:delta in
  let algorithms =
    [ ("ABD", Runner.Abd);
      ("CASGC(2)", Runner.Cas { gc_depth = Some 2 });
      ("SODA", Runner.Soda)
    ]
  in
  let rows =
    List.concat_map
      (fun (name, algo) ->
        (* 40 seeded runs of 3 sequential rounds each: 120 writes + 120
           reads per algorithm *)
        let runs =
          List.init 40 (fun seed ->
              Workload.sequential ~params ~value_len ~seed ~delay ~rounds:3 ())
          |> Runner.run_sweep algo
        in
        let latencies kind =
          List.concat_map
            (fun r ->
              History.records r.Runner.history
              |> List.filter_map (fun o ->
                     if o.History.kind = kind then
                       Option.map
                         (fun finish -> finish -. o.History.invoked_at)
                         o.History.responded_at
                     else None))
            runs
          |> Array.of_list
        in
        List.map
          (fun (kind_name, kind, bound) ->
            let l = latencies kind in
            Array.sort compare l;
            [ name;
              kind_name;
              Report.f2 (percentile l 0.50);
              Report.f2 (percentile l 0.90);
              Report.f2 (percentile l 0.99);
              Report.f2 (if Array.length l = 0 then nan else l.(Array.length l - 1));
              bound
            ])
          [ ("write", History.Write,
             if name = "SODA" then Report.f2 (5.0 *. delta) else "-");
            ("read", History.Read,
             if name = "SODA" then Report.f2 (6.0 *. delta) else "-")
          ])
      algorithms
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Operation latency distribution, delays uniform in (0, %.1f] (n=10,           f=4, 120 ops per row)"
         delta)
    ~header:[ "algorithm"; "op"; "p50"; "p90"; "p99"; "max"; "SODA bound" ]
    rows

(* ------------------------------------------------------------------ *)
(* Metadata overhead: what the paper's cost model does not count *)

(* [--out FILE]: also write the per-algorithm message counts as JSON
   (stable schema, see BENCH_msgs.json at the repo root for the
   committed baseline gated by tools/bench_diff).

   The self-healing plane must not shift these numbers: every run here
   deploys with [healing = None] (the Runner default), under which no
   heartbeat or scrub event is ever scheduled, so the committed
   BENCH_msgs.json baseline doubles as the no-silent-regression gate
   for the plane's default-off posture. When healing IS armed, its
   traffic is metadata by construction — Heartbeat and Suspect_vote
   carry no coded data ([Messages.data_bytes] = 0), so it lands in
   [messages_meta]/[acks_sent], never [messages_data]. *)
let overhead_out : string option ref = ref None

let overhead () =
  let params = Params.make ~n:10 ~f:4 () in
  let runner_row ?plane algo () =
    let w = Workload.sequential ~params ~value_len ~seed:17 ~rounds:4 () in
    let r = Runner.run ?plane algo w in
    let ops = float_of_int (History.size r.Runner.history) in
    ( float_of_int r.Runner.messages_sent /. ops,
      Cost.total_comm r.Runner.cost /. ops )
  in
  (* LDR is not hosted by Runner (separate directory/replica topology):
     drive the same quiescent write/read alternation by hand *)
  let ldr_row () =
    let seed = 17 and rounds = 4 in
    let engine =
      Simnet.Engine.create ~seed ~delay:(Simnet.Delay.constant 1.0) ()
    in
    let initial_value = Workload.value ~len:value_len ~seed ~index:999_983 in
    let d =
      Baselines.Ldr.deploy ~engine ~params ~initial_value ~value_len
        ~num_writers:1 ~num_readers:1 ()
    in
    for i = 0 to rounds - 1 do
      Baselines.Ldr.write d ~writer:0
        ~at:(float_of_int (200 * i))
        (Workload.value ~len:value_len ~seed ~index:(i + 1));
      Baselines.Ldr.read d ~reader:0 ~at:(float_of_int ((200 * i) + 100)) ()
    done;
    Simnet.Engine.run engine;
    let ops = float_of_int (2 * rounds) in
    ( float_of_int (Simnet.Engine.messages_sent engine) /. ops,
      Cost.total_comm (Baselines.Ldr.cost d) /. ops )
  in
  let measurements =
    [ ("abd", "ABD", runner_row Runner.Abd ());
      ("cas", "CAS", runner_row (Runner.Cas { gc_depth = None }) ());
      ("casgc(2)", "CASGC(2)", runner_row (Runner.Cas { gc_depth = Some 2 }) ());
      ("ldr", "LDR", ldr_row ());
      ( "soda-unbatched",
        "SODA (broadcast)",
        runner_row Runner.Soda () );
      ( "soda",
        "SODA (batched)",
        runner_row ~plane:Soda.Config.batched_plane Runner.Soda () )
    ]
  in
  let rows =
    List.map
      (fun (_, label, (msgs, units)) ->
        [ label;
          Printf.sprintf "%.0f" msgs;
          Report.f2 units;
          Report.f2 (msgs /. Float.max 1e-9 units)
        ])
      measurements
  in
  Report.table
    ~title:
      "Message overhead per operation (n=10, f=4, quiescent): the paper's        cost model counts only data; broadcast READ-DISPERSE gossip is        O(n^2) messages per read, the batched plane coalesces it away"
    ~header:
      [ "algorithm"; "messages/op"; "data units/op"; "msgs per data unit" ]
    rows;
  match !overhead_out with
  | None -> ()
  | Some path ->
    let buf = Buffer.create 1024 in
    Buffer.add_string buf "{\"bench\":\"msgs\",\"results\":[";
    List.iteri
      (fun i (algo, _, (msgs, units)) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf
             "{\"algo\":%S,\"msgs_per_op\":%.2f,\"data_units_per_op\":%.2f,\"msgs_per_data_unit\":%.2f}"
             algo msgs units
             (msgs /. Float.max 1e-9 units)))
      measurements;
    Buffer.add_string buf "]}";
    let oc = open_out path in
    output_string oc (Buffer.contents buf);
    output_char oc '\n';
    close_out oc

(* ------------------------------------------------------------------ *)
(* Throughput under closed-loop load (simulation-level figure) *)

let throughput () =
  let rows =
    List.map
      (fun (n, f) ->
        let params = Params.make ~n ~f () in
        let r =
          Harness.Closed_loop.run_soda ~params ~value_len:1024 ~seed:9
            ~num_writers:4 ~num_readers:4 ~ops_per_client:25 ()
        in
        let ops = History.size r.Harness.Closed_loop.history in
        [ Report.i n;
          Report.i f;
          Report.i ops;
          Report.f2 r.Harness.Closed_loop.sim_duration;
          Report.f2 (Harness.Closed_loop.ops_per_time r);
          Report.i r.Harness.Closed_loop.messages;
          Printf.sprintf "%.0f" (float_of_int ops /. r.Harness.Closed_loop.wall_seconds)
        ])
      [ (5, 2); (10, 4); (15, 7); (20, 9); (30, 14) ]
  in
  Report.table
    ~title:
      "SODA closed-loop throughput (4 writers + 4 readers, 25 ops each, uniform delays in [0.2, 2])"
    ~header:
      [ "n"; "f"; "ops"; "sim time"; "ops/sim-time"; "messages"; "ops/wall-s" ]
    rows

(* ------------------------------------------------------------------ *)
(* Ablation: chained MD-VALUE vs naive direct dispersal *)

let ablation_md () =
  (* cost side: measured write cost of both modes *)
  let cost_rows =
    List.map
      (fun f ->
        let n = (2 * f) + 1 in
        let params = Params.make ~n ~f () in
        let run md_mode =
          let engine =
            Simnet.Engine.create ~seed:21
              ~delay:(Simnet.Delay.uniform ~lo:0.2 ~hi:2.0) ()
          in
          let d =
            Soda.Deployment.deploy ~engine ~params
              ~initial_value:(Workload.value ~len:value_len ~seed:21 ~index:0)
              ~value_len ~md_mode ~num_writers:1 ~num_readers:1 ()
          in
          Soda.Deployment.write d ~writer:0 ~at:0.0
            (Workload.value ~len:value_len ~seed:21 ~index:1);
          Simnet.Engine.run engine;
          Cost.comm_of_op (Soda.Deployment.cost d) ~op:0
        in
        [ Report.i f;
          Report.i n;
          Report.f2 (run `Chained);
          Report.f2 (run `Direct);
          Report.f2 (float_of_int n /. float_of_int (n - f))
        ])
      [ 1; 2; 4; 6; 8 ]
  in
  Report.table
    ~title:"Ablation: write cost, chained MD-VALUE vs naive direct dispersal"
    ~header:[ "f"; "n"; "chained (SODA)"; "direct"; "n/(n-f)" ]
    cost_rows;
  (* uniformity side: writer crash mid-dispersal, then f server crashes;
     how often do subsequent reads still complete? *)
  let trials = 60 in
  let count_ok md_mode =
    (* each trial owns its engine, so the seeds fan out across domains *)
    Harness.Parallel.map
      (fun seed ->
        let params = Params.make ~n:7 ~f:3 () in
        let engine =
          Simnet.Engine.create ~seed
            ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:2.0) ()
        in
        let d =
          Soda.Deployment.deploy ~engine ~params
            ~initial_value:(Workload.value ~len:value_len ~seed ~index:0)
            ~value_len ~md_mode ~disperse_step:0.5 ~num_writers:1
            ~num_readers:1 ()
        in
        Soda.Deployment.write d ~writer:0 ~at:0.0
          (Workload.value ~len:value_len ~seed ~index:1);
        (* writer dies mid-dispersal; then f servers die *)
        Soda.Deployment.crash_writer d ~writer:0 ~at:3.0;
        Soda.Deployment.crash_server d ~coordinate:(seed mod 7) ~at:10.0;
        Soda.Deployment.crash_server d ~coordinate:((seed + 2) mod 7) ~at:10.0;
        Soda.Deployment.crash_server d ~coordinate:((seed + 4) mod 7) ~at:10.0;
        let completed = ref false in
        Soda.Deployment.read d ~reader:0 ~at:50.0
          ~on_done:(fun _ -> completed := true)
          ();
        Simnet.Engine.run engine;
        !completed)
      (List.init trials Fun.id)
    |> List.fold_left (fun acc ok -> if ok then acc + 1 else acc) 0
  in
  Report.table
    ~title:
      (Printf.sprintf
         "Ablation: read liveness after writer crash mid-dispersal + f \
          server crashes (n=7, f=3, %d trials)"
         trials)
    ~header:[ "dispersal"; "reads completed"; "of" ]
    [ [ "chained (SODA)"; Report.i (count_ok `Chained); Report.i trials ];
      [ "direct"; Report.i (count_ok `Direct); Report.i trials ]
    ]

(* ------------------------------------------------------------------ *)
(* Ablation: READ-DISPERSE gossip vs none, with a crashed reader *)

let ablation_gossip () =
  let run gossip =
    let params = Params.make ~n:10 ~f:3 () in
    (* messages TO the reader (pid 11: 10 servers, then the writer) crawl,
       so the reader is registered everywhere long before any coded
       element reaches it — and it crashes in that window, mid-read *)
    let reader_pid = 11 in
    let delay =
      Simnet.Delay.per_link (fun ~src:_ ~dst ->
          if dst = reader_pid then Simnet.Delay.constant 50.0
          else Simnet.Delay.constant 1.0)
    in
    let engine = Simnet.Engine.create ~seed:9 ~delay () in
    let d =
      Soda.Deployment.deploy ~engine ~params
        ~initial_value:(Workload.value ~len:value_len ~seed:9 ~index:0)
        ~value_len ~gossip ~num_writers:1 ~num_readers:1 ()
    in
    (* read-get replies take 50, so registration happens around t=52;
       the first relay would reach the reader around t=103 *)
    Soda.Deployment.read d ~reader:0 ~at:0.0 ();
    Soda.Deployment.crash_reader d ~reader:0 ~at:60.0;
    (* a stream of subsequent writes; without gossip every one of them is
       relayed to the dead reader *)
    let writes = 12 in
    for i = 1 to writes do
      Soda.Deployment.write d ~writer:0 ~at:(70.0 +. (float_of_int i *. 40.0))
        (Workload.value ~len:value_len ~seed:9 ~index:i)
    done;
    Simnet.Engine.run engine;
    let relays = Probe.relays_of (Soda.Deployment.probe d) ~rid:0 in
    let still_registered =
      List.exists
        (fun c ->
          not
            (List.is_empty
               (Soda.Server.registered_reads
                  (Soda.Deployment.server d ~coordinate:c))))
        (List.init 10 Fun.id)
    in
    (relays, still_registered)
  in
  let with_gossip, reg_with = run true in
  let without_gossip, reg_without = run false in
  Report.table
    ~title:
      "Ablation: relays sent to a crashed reader across 12 subsequent writes \
       (n=10, f=3)"
    ~header:
      [ "variant"; "coded elements relayed"; "reader still registered at end" ]
    [ [ "READ-DISPERSE gossip (SODA)";
        Report.i with_gossip;
        (if reg_with then "yes" else "no")
      ];
      [ "no gossip (ORCAS-B-like)";
        Report.i without_gossip;
        (if reg_without then "YES (leaks forever)" else "no")
      ]
    ]

(* Sharded-keyspace throughput and message economics, reported as JSON
   (one object on stdout). Invoked as

     dune exec bench/main.exe -- sharded            # full: 10_000 keys
     dune exec bench/main.exe -- sharded --smoke    # CI: 500 keys

   One mixed write/read workload over every key runs three ways on the
   paper's 4+2 code over 12 servers in 3 failure domains:

     keyspace-batched    shared server plane, coalesced cross-key gossip
     keyspace-broadcast  shared plane, per-entry broadcast gossip
     independent         the pre-keyspace composition: one full
                         deployment (own n servers, own clients) per key

   All three run on the raw transport with the same delay model and
   seed, so every count is deterministic: msgs_per_op drift beyond the
   bench_diff threshold is a protocol change, not machine noise. The
   headline the committed BENCH_sharded.json gates is keyspace-batched
   beating independent on msgs/op while packing more logical payload
   units into each frame (units_per_msg > 1). Any case that loses
   liveness or per-key atomicity makes the experiment exit nonzero. *)

module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

let smoke = ref false
let out : string option ref = ref None

type case = {
  name : string;
  run : Workload.sharded -> Runner.sharded_result
}

let cases ~placement ~params =
  [ { name = "keyspace-batched";
      run = Runner.run_sharded ~plane:Soda.Config.batched_plane ~placement
    };
    { name = "keyspace-broadcast"; run = Runner.run_sharded ~placement };
    { name = "independent";
      run = Runner.run_sharded_independent ~params
    }
  ]

let emit ~keys ~topology results =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"bench\":\"sharded\",\"smoke\":%b,\"keys\":%d,"
       !smoke keys);
  Buffer.add_string buf
    (Printf.sprintf "\"servers\":%d,\"domains\":%d,\"results\":["
       (Soda.Topology.servers topology)
       (Soda.Topology.num_domains topology));
  List.iteri
    (fun i (name, (r : Runner.sharded_result)) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"case\":%S,\"ok\":%b,\"ops\":%d,\"msgs\":%d,\"data\":%d,\"meta\":%d,\"payload_units\":%d,\"msgs_per_op\":%.2f,\"units_per_msg\":%.3f,\"ops_per_sim_ktime\":%.2f,\"events\":%d,\"final_time\":%.1f}"
           name
           (r.Runner.s_complete && r.Runner.s_atomic)
           r.Runner.s_ops r.Runner.s_messages_sent r.Runner.s_messages_data
           r.Runner.s_messages_meta r.Runner.s_payload_units
           (Metrics.sharded_msgs_per_op r)
           (Metrics.sharded_units_per_msg r)
           (1000.0 *. float_of_int r.Runner.s_ops
           /. Float.max 1e-9 r.Runner.s_final_time)
           r.Runner.s_events r.Runner.s_final_time))
    results;
  Buffer.add_string buf "]}";
  let json = Buffer.contents buf in
  print_endline json;
  match !out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc json;
    output_char oc '\n';
    close_out oc

let run () =
  let keys = if !smoke then 500 else 10_000 in
  let params = Soda.Placement.preset_params `P4_2 in
  let topology = Soda.Topology.make ~servers:12 ~domains:3 () in
  let placement =
    Soda.Placement.create ~topology ~params
      ~policy:Soda.Placement.Consistent_hash ()
  in
  assert (Soda.Placement.domain_safe placement);
  let wl =
    Workload.sharded_mixed ~keys ~value_len:64 ~seed:1 ~num_writers:4
      ~num_readers:4 ~round_gap:10.0 ()
  in
  let results =
    List.map
      (fun c -> (c.name, c.run wl))
      (cases ~placement ~params)
  in
  emit ~keys ~topology results;
  let failures =
    List.filter
      (fun (_, (r : Runner.sharded_result)) ->
        not (r.Runner.s_complete && r.Runner.s_atomic))
      results
  in
  List.iter
    (fun (name, (r : Runner.sharded_result)) ->
      Printf.eprintf "sharded: FAIL %s — complete=%b atomic=%b\n" name
        r.Runner.s_complete r.Runner.s_atomic)
    failures;
  if not (List.is_empty failures) then exit 1

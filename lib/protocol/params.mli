(** System sizing parameters shared by all protocols.

    [n] servers, of which at most [f] may crash, and (for SODA{_err}) at
    most [e] may silently return corrupted coded elements from local
    storage during a read. The code dimension each algorithm uses follows
    from these: SODA picks [k = n - f - 2e] (with [e = 0] for plain
    SODA), CAS/CASGC picks [k = n - 2f], ABD replicates ([k = 1]). *)

type t = private { n : int; f : int; e : int }

val make : n:int -> f:int -> ?e:int -> unit -> t
(** @raise Invalid_argument unless [n >= 1], [0 <= f <= (n-1)/2], [e >= 0]
    and [n - f - 2e >= 1]. *)

val n : t -> int
val f : t -> int
val e : t -> int

val k_soda : t -> int
(** Code dimension used by SODA / SODA{_err}: [n - f - 2e]. *)

val k_cas : t -> int
(** Code dimension used by CAS / CASGC: [n - 2f] (requires [f <= (n-1)/2],
    guaranteed by {!make}). *)

val majority : t -> int
(** Size of a majority quorum: [n/2 + 1]. *)

val cas_quorum : t -> int
(** CAS quorum size: [ceil((n + k_cas) / 2)]. *)

val fmax : n:int -> int
(** The largest tolerable [f] for an [n]-server system: [(n-1)/2]. *)

val pp : Format.formatter -> t -> unit

type event =
  | Registered of { rid : int; server : int; time : float }
  | Unregistered of { rid : int; server : int; time : float }
  | Relayed of { rid : int; server : int; tag : Tag.t; time : float }
  | Stored of { server : int; tag : Tag.t; time : float }
  | Gc of { server : int; tag : Tag.t; time : float }
  | Repair_started of { server : int; time : float }
  | Repaired of { server : int; tag : Tag.t; time : float }
  | Crash_injected of { server : int; time : float }
  | Rot_injected of { server : int; time : float }
  | Suspected of { target : int; by : int; time : float }
  | Auto_repair of { server : int; time : float }
  | Rot_detected of { server : int; time : float }
  | Scrub_repaired of { server : int; tag : Tag.t; time : float }

type t = { mutable rev_events : event list }

let create () = { rev_events = [] }
let emit t e = t.rev_events <- e :: t.rev_events
let events t = List.rev t.rev_events

let registration_window ?(is_crashed = fun _ -> false) t ~rid =
  let t1 = ref infinity and t2 = ref neg_infinity in
  let pending = Hashtbl.create 8 in
  List.iter
    (fun e ->
      match e with
      | Registered { rid = r; server; time } when r = rid ->
        if time < !t1 then t1 := time;
        Hashtbl.replace pending server ()
      | Unregistered { rid = r; server; time } when r = rid ->
        Hashtbl.remove pending server;
        if time > !t2 then t2 := time
      | Registered _ | Unregistered _ | Relayed _ | Stored _ | Gc _
      | Repair_started _ | Repaired _ | Crash_injected _ | Rot_injected _
      | Suspected _ | Auto_repair _ | Rot_detected _ | Scrub_repaired _ ->
        ())
    (events t);
  let alive_pending =
    Hashtbl.fold
      (fun server () acc -> if is_crashed server then acc else acc + 1)
      pending 0
  in
  if !t1 = infinity then None
  else if alive_pending > 0 then Some (!t1, infinity)
  else Some (!t1, Float.max !t1 !t2)

let relays_of t ~rid =
  List.fold_left
    (fun acc e ->
      match e with
      | Relayed { rid = r; _ } when r = rid -> acc + 1
      | Registered _ | Unregistered _ | Relayed _ | Stored _ | Gc _
      | Repair_started _ | Repaired _ | Crash_injected _ | Rot_injected _
      | Suspected _ | Auto_repair _ | Rot_detected _ | Scrub_repaired _ ->
        acc)
    0 (events t)

let registrations_balanced t ~crashed =
  (* (rid, server) pairs currently registered and not yet unregistered *)
  let open_regs = Hashtbl.create 32 in
  List.iter
    (fun e ->
      match e with
      | Registered { rid; server; _ } -> Hashtbl.replace open_regs (rid, server) ()
      | Unregistered { rid; server; _ } -> Hashtbl.remove open_regs (rid, server)
      | Relayed _ | Stored _ | Gc _ | Repair_started _ | Repaired _
      | Crash_injected _ | Rot_injected _ | Suspected _ | Auto_repair _
      | Rot_detected _ | Scrub_repaired _ ->
        ())
    (events t);
  Hashtbl.fold
    (fun (_, server) () acc -> acc && crashed server)
    open_regs true

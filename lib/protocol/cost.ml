type t = {
  value_len : int;
  comm_by_op : (int, int ref) Hashtbl.t;
  storage_by_server : (int, int) Hashtbl.t;
  mutable total_comm_bytes : int;
  mutable current_storage_bytes : int;
  mutable max_storage_bytes : int
}

let create ~value_len =
  if value_len <= 0 then invalid_arg "Cost.create: value_len must be positive";
  { value_len;
    comm_by_op = Hashtbl.create 64;
    storage_by_server = Hashtbl.create 64;
    total_comm_bytes = 0;
    current_storage_bytes = 0;
    max_storage_bytes = 0
  }

let value_len t = t.value_len
let units t bytes = float_of_int bytes /. float_of_int t.value_len

let comm t ~op ~bytes =
  if bytes < 0 then invalid_arg "Cost.comm: negative size";
  (match Hashtbl.find_opt t.comm_by_op op with
  | Some r -> r := !r + bytes
  | None -> Hashtbl.add t.comm_by_op op (ref bytes));
  t.total_comm_bytes <- t.total_comm_bytes + bytes

let comm_bytes_of_op t ~op =
  match Hashtbl.find_opt t.comm_by_op op with Some r -> !r | None -> 0

let comm_of_op t ~op = units t (comm_bytes_of_op t ~op)
let total_comm t = units t t.total_comm_bytes

let storage_set t ~server ~bytes =
  if bytes < 0 then invalid_arg "Cost.storage_set: negative size";
  let previous =
    match Hashtbl.find_opt t.storage_by_server server with
    | Some b -> b
    | None -> 0
  in
  Hashtbl.replace t.storage_by_server server bytes;
  t.current_storage_bytes <- t.current_storage_bytes - previous + bytes;
  if t.current_storage_bytes > t.max_storage_bytes then
    t.max_storage_bytes <- t.current_storage_bytes

let storage_of_server t ~server =
  match Hashtbl.find_opt t.storage_by_server server with
  | Some b -> b
  | None -> 0

let storage_add t ~server ~bytes =
  let next = storage_of_server t ~server + bytes in
  if next < 0 then invalid_arg "Cost.storage_add: negative total";
  storage_set t ~server ~bytes:next

let current_total_storage t = units t t.current_storage_bytes
let max_total_storage t = units t t.max_storage_bytes

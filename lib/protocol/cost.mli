(** Storage and communication cost accounting.

    Following Section II of the paper, only {e data} — values and coded
    elements — is charged; metadata (tags, ids, acknowledgements) is
    free. Costs are recorded in bytes and normalized to "value units" on
    demand by dividing by a nominal value size, so a full value costs
    ~1 unit and a coded element ~1/k (the 4-byte framing header makes
    measured numbers marginally larger than the formulas; reports show
    both).

    Communication is attributed to operations by id: protocol code calls
    {!comm} with the responsible operation whenever a data-bearing
    message is {e sent}. Storage tracks each server's currently stored
    data bytes; the accountant maintains the running maximum of the
    total, which is the paper's worst-case total storage cost. *)

type t

val create : value_len:int -> t
(** [value_len] is the nominal value size in bytes used for
    normalization.
    @raise Invalid_argument if [value_len <= 0]. *)

val value_len : t -> int

(** {1 Communication} *)

val comm : t -> op:int -> bytes:int -> unit
(** Charge [bytes] of data communication to operation [op]. *)

val comm_of_op : t -> op:int -> float
(** Total data sent on behalf of [op], in value units. *)

val comm_bytes_of_op : t -> op:int -> int
val total_comm : t -> float
(** Total data communication of the whole execution, in value units. *)

(** {1 Storage} *)

val storage_set : t -> server:int -> bytes:int -> unit
(** Declare that [server] currently stores [bytes] bytes of data
    (replacing its previous figure). *)

val storage_add : t -> server:int -> bytes:int -> unit
(** Adjust a server's figure by a (possibly negative) delta. *)

val current_total_storage : t -> float
(** Sum over servers, in value units. *)

val max_total_storage : t -> float
(** Running maximum of {!current_total_storage} — the paper's worst-case
    total storage cost. *)

val storage_of_server : t -> server:int -> int
(** Current bytes at one server. *)

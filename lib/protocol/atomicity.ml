type violation = { what : string; culprits : int list }

let pp_violation ppf v =
  Format.fprintf ppf "%s (ops: %a)" v.what
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    v.culprits

let err what culprits = Error { what; culprits }

exception Found of violation

(* ------------------------------------------------------------------ *)
(* Tag-based check (Lemma 2.1) *)

let tag_of r = Option.get r.History.tag
let value_of r = Option.get r.History.value

(* P2: all writes carry distinct tags (including incomplete writes that
   got far enough to pick one). Returns the tag -> write map that P3
   resolves reads against. Raises [Found]. *)
module TagMap = Map.Make (struct
  type t = Tag.t

  let compare = Tag.compare
end)

let check_p2 records =
  List.fold_left
    (fun acc w ->
      if w.History.kind = History.Write && Option.is_some w.History.tag then begin
        let tag = tag_of w in
        (match TagMap.find_opt tag acc with
        | Some other ->
          raise
            (Found
               { what = "two writes share a tag (P2)";
                 culprits = [ other.History.op; w.History.op ]
               })
        | None -> ());
        TagMap.add tag w acc
      end
      else acc)
    TagMap.empty records

(* P3: a completed read's (tag, value) pair matches the write with that
   tag, or the initial state. Raises [Found]. *)
let check_p3 ~initial_value ~by_tag completed =
  List.iter
    (fun r ->
      if r.History.kind = History.Read then begin
        let tag = tag_of r in
        if Tag.equal tag Tag.initial then begin
          if not (Bytes.equal (value_of r) initial_value) then
            raise
              (Found
                 { what =
                     "read returned the initial tag with a non-initial \
                      value (P3)";
                   culprits = [ r.History.op ]
                 })
        end
        else
          match TagMap.find_opt tag by_tag with
          | None ->
            raise
              (Found
                 { what = "read returned a tag no write created (P3)";
                   culprits = [ r.History.op ]
                 })
          | Some w ->
            (match w.History.value with
            | Some wv when Bytes.equal wv (value_of r) -> ()
            | Some _ ->
              raise
                (Found
                   { what =
                       "read returned a value different from the write \
                        with its tag (P3)";
                     culprits = [ w.History.op; r.History.op ]
                   })
            | None ->
              raise
                (Found
                   { what = "tagged write has no recorded value";
                     culprits = [ w.History.op ]
                   }))
      end)
    completed

let p1_violation a b =
  let ta = tag_of a and tb = tag_of b in
  Found
    { what =
        Format.asprintf
          "real-time order violated: op%d (tag %a) finished before op%d \
           (tag %a) started (P1)"
          a.History.op Tag.pp ta b.History.op Tag.pp tb;
      culprits = [ a.History.op; b.History.op ]
    }

(* Whether the real-time-ordered pair a -> b contradicts the tag partial
   order. The requirement depends only on the later op's kind: a write
   must pick a tag strictly above every operation that preceded it,
   while a read may repeat the tag of a preceding operation but never
   go below one. *)
let p1_pair_bad ~ta b =
  match b.History.kind with
  | History.Write -> Tag.( >= ) ta (tag_of b)
  | History.Read -> Tag.( > ) ta (tag_of b)

(* P1 as the original pairwise scan: O(m^2). Kept as the oracle the
   sweep below is differentially tested against. Raises [Found]. *)
let p1_quadratic completed =
  let arr = Array.of_list completed in
  let m = Array.length arr in
  for i = 0 to m - 1 do
    for j = 0 to m - 1 do
      if i <> j then begin
        let a = arr.(i) and b = arr.(j) in
        let a_end = Option.get a.History.responded_at in
        if a_end < b.History.invoked_at && p1_pair_bad ~ta:(tag_of a) b then
          raise (p1_violation a b)
      end
    done
  done

(* P1 as a plane sweep: O(m log m).

   Process operations b in invocation order; maintain the set of
   operations that responded strictly before the current invocation
   time (advancing a pointer over a response-time ordering) reduced to
   its maximum tag and one operation attaining it. Since [p1_pair_bad]
   is monotone in [ta], pair (a, b) with [res a < inv b] is bad for
   some a iff it is bad for the frontier maximum — so checking b
   against the frontier alone decides the verdict, and a flagged
   (frontier, b) pair is itself a genuine violation to report.
   Raises [Found]. *)
let p1_sweep completed =
  let arr = Array.of_list completed in
  let m = Array.length arr in
  if m > 0 then begin
    let res i = Option.get arr.(i).History.responded_at in
    let by_inv = Array.init m (fun i -> i) in
    Array.sort
      (fun i j ->
        Float.compare arr.(i).History.invoked_at arr.(j).History.invoked_at)
      by_inv;
    let by_res = Array.init m (fun i -> i) in
    Array.sort (fun i j -> Float.compare (res i) (res j)) by_res;
    let frontier = ref (-1) in
    (* index into arr of a max-tag responded op; -1 = none yet *)
    let frontier_tag = ref Tag.initial in
    let p = ref 0 in
    Array.iter
      (fun bi ->
        let b = arr.(bi) in
        let ib = b.History.invoked_at in
        while !p < m && res by_res.(!p) < ib do
          let ai = by_res.(!p) in
          let ta = tag_of arr.(ai) in
          if !frontier < 0 || Tag.( > ) ta !frontier_tag then begin
            frontier := ai;
            frontier_tag := ta
          end;
          incr p
        done;
        if !frontier >= 0 && p1_pair_bad ~ta:!frontier_tag b then
          raise (p1_violation arr.(!frontier) b))
      by_inv
  end

let check_with ~p1 ?(initial_value = Bytes.empty) records =
  let completed =
    List.filter (fun r -> Option.is_some r.History.responded_at) records
  in
  (* Every completed operation must expose a tag and a value. *)
  let missing =
    List.find_opt
      (fun r -> Option.is_none r.History.tag || Option.is_none r.History.value)
      completed
  in
  match missing with
  | Some r -> err "completed operation lacks a tag or value" [ r.History.op ]
  | None -> (
    try
      let by_tag = check_p2 records in
      check_p3 ~initial_value ~by_tag completed;
      p1 completed;
      Ok ()
    with Found v -> Error v)

let check_tagged ?initial_value records =
  check_with ~p1:p1_sweep ?initial_value records

let check_tagged_quadratic ?initial_value records =
  check_with ~p1:p1_quadratic ?initial_value records

(* ------------------------------------------------------------------ *)
(* Wing-Gong exhaustive search on values *)

let linearizable_by_value ~initial_value records =
  let ops =
    records
    |> List.filter (fun r -> Option.is_some r.History.responded_at)
    |> Array.of_list
  in
  let m = Array.length ops in
  if m > 62 then
    invalid_arg "Atomicity.linearizable_by_value: history too large";
  if m = 0 then true
  else begin
    let inv i = ops.(i).History.invoked_at in
    let res i = Option.get ops.(i).History.responded_at in
    let value i =
      match ops.(i).History.value with
      | Some v -> v
      | None -> Bytes.empty
    in
    let is_write i = ops.(i).History.kind = History.Write in
    (* Memo of (linearized-set, index of last linearized write) states
       already proven fruitless; -1 encodes "initial value". The state
       packs into the int-keyed table without allocation: the set (at
       most 62 bits) keys the table, and the visited last-write indices
       ([current + 1], in [0, 62]) form the bitmask value. *)
    let visited = Int_tbl.Map.create ~dummy:0 1024 in
    let full = (1 lsl m) - 1 in
    let rec go set current =
      if set = full then true
      else begin
        let bit = 1 lsl (current + 1) in
        let seen = Int_tbl.Map.find visited set ~default:0 in
        if seen land bit <> 0 then false
        else begin
          Int_tbl.Map.replace visited set (seen lor bit);
          (* earliest response among pending ops bounds which ops can be
             linearized next *)
          let horizon = ref infinity in
          for i = 0 to m - 1 do
            if set land (1 lsl i) = 0 then
              if res i < !horizon then horizon := res i
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < m do
            let idx = !i in
            if set land (1 lsl idx) = 0 && inv idx <= !horizon then begin
              if is_write idx then
                ok := go (set lor (1 lsl idx)) idx
              else begin
                let current_value =
                  if current < 0 then initial_value else value current
                in
                if Bytes.equal (value idx) current_value then
                  ok := go (set lor (1 lsl idx)) current
              end
            end;
            incr i
          done;
          !ok
        end
      end
    in
    go 0 (-1)
  end

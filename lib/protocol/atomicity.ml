type violation = { what : string; culprits : int list }

let pp_violation ppf v =
  Format.fprintf ppf "%s (ops: %a)" v.what
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       Format.pp_print_int)
    v.culprits

let err what culprits = Error { what; culprits }

(* ------------------------------------------------------------------ *)
(* Tag-based check (Lemma 2.1) *)

let check_tagged ?(initial_value = Bytes.empty) records =
  let completed =
    List.filter (fun r -> r.History.responded_at <> None) records
  in
  (* Every completed operation must expose a tag and a value. *)
  let missing =
    List.find_opt
      (fun r -> r.History.tag = None || r.History.value = None)
      completed
  in
  match missing with
  | Some r ->
    err "completed operation lacks a tag or value" [ r.History.op ]
  | None ->
    let tag_of r = Option.get r.History.tag in
    let value_of r = Option.get r.History.value in
    let exception Found of violation in
    (try
       (* P2: all writes carry distinct tags (including incomplete writes
          that got far enough to pick one). *)
       let writes_with_tags =
         List.filter
           (fun r -> r.History.kind = History.Write && r.History.tag <> None)
           records
       in
       let module TagMap = Map.Make (struct
         type t = Tag.t

         let compare = Tag.compare
       end) in
       let by_tag =
         List.fold_left
           (fun acc w ->
             let tag = tag_of w in
             (match TagMap.find_opt tag acc with
             | Some other ->
               raise
                 (Found
                    { what = "two writes share a tag (P2)";
                      culprits = [ other.History.op; w.History.op ]
                    })
             | None -> ());
             TagMap.add tag w acc)
           TagMap.empty writes_with_tags
       in
       (* P3: a completed read's (tag, value) pair matches the write with
          that tag, or the initial state. *)
       List.iter
         (fun r ->
           if r.History.kind = History.Read then begin
             let tag = tag_of r in
             if Tag.equal tag Tag.initial then begin
               if not (Bytes.equal (value_of r) initial_value) then
                 raise
                   (Found
                      { what =
                          "read returned the initial tag with a \
                           non-initial value (P3)";
                        culprits = [ r.History.op ]
                      })
             end
             else
               match TagMap.find_opt tag by_tag with
               | None ->
                 raise
                   (Found
                      { what = "read returned a tag no write created (P3)";
                        culprits = [ r.History.op ]
                      })
               | Some w ->
                 (match w.History.value with
                 | Some wv when Bytes.equal wv (value_of r) -> ()
                 | Some _ ->
                   raise
                     (Found
                        { what =
                            "read returned a value different from the \
                             write with its tag (P3)";
                          culprits = [ w.History.op; r.History.op ]
                        })
                 | None ->
                   raise
                     (Found
                        { what = "tagged write has no recorded value";
                          culprits = [ w.History.op ]
                        }))
           end)
         completed;
       (* P1: the tag order never contradicts real-time precedence. *)
       let arr = Array.of_list completed in
       let m = Array.length arr in
       for i = 0 to m - 1 do
         for j = 0 to m - 1 do
           if i <> j then begin
             let a = arr.(i) and b = arr.(j) in
             let a_end = Option.get a.History.responded_at in
             if a_end < b.History.invoked_at then begin
               (* a precedes b in real time; require not (b < a) in the
                  tag partial order. *)
               let ta = tag_of a and tb = tag_of b in
               let bad =
                 match (a.History.kind, b.History.kind) with
                 | History.Write, History.Write -> Tag.( >= ) ta tb
                 | History.Write, History.Read -> Tag.( > ) ta tb
                 | History.Read, History.Write -> Tag.( >= ) ta tb
                 | History.Read, History.Read -> Tag.( > ) ta tb
               in
               if bad then
                 raise
                   (Found
                      { what =
                          Format.asprintf
                            "real-time order violated: op%d (tag %a) \
                             finished before op%d (tag %a) started (P1)"
                            a.History.op Tag.pp ta b.History.op Tag.pp tb;
                        culprits = [ a.History.op; b.History.op ]
                      })
             end
           end
         done
       done;
       Ok ()
     with Found v -> Error v)

(* ------------------------------------------------------------------ *)
(* Wing-Gong exhaustive search on values *)

let linearizable_by_value ~initial_value records =
  let ops =
    records
    |> List.filter (fun r -> r.History.responded_at <> None)
    |> Array.of_list
  in
  let m = Array.length ops in
  if m > 62 then
    invalid_arg "Atomicity.linearizable_by_value: history too large";
  if m = 0 then true
  else begin
    let inv i = ops.(i).History.invoked_at in
    let res i = Option.get ops.(i).History.responded_at in
    let value i =
      match ops.(i).History.value with
      | Some v -> v
      | None -> Bytes.empty
    in
    let is_write i = ops.(i).History.kind = History.Write in
    (* memo of (linearized-set, index of last linearized write) states
       already proven fruitless; -1 encodes "initial value". *)
    let visited = Hashtbl.create 1024 in
    let full = (1 lsl m) - 1 in
    let rec go set current =
      if set = full then true
      else begin
        let key = (set, current) in
        if Hashtbl.mem visited key then false
        else begin
          Hashtbl.add visited key ();
          (* earliest response among pending ops bounds which ops can be
             linearized next *)
          let horizon = ref infinity in
          for i = 0 to m - 1 do
            if set land (1 lsl i) = 0 then
              if res i < !horizon then horizon := res i
          done;
          let ok = ref false in
          let i = ref 0 in
          while (not !ok) && !i < m do
            let idx = !i in
            if set land (1 lsl idx) = 0 && inv idx <= !horizon then begin
              if is_write idx then
                ok := go (set lor (1 lsl idx)) idx
              else begin
                let current_value =
                  if current < 0 then initial_value else value current
                in
                if Bytes.equal (value idx) current_value then
                  ok := go (set lor (1 lsl idx)) current
              end
            end;
            incr i
          done;
          !ok
        end
      end
    in
    go 0 (-1)
  end

(** Operation histories.

    A history records the externally visible events of an execution: for
    every read/write operation, its invocation time, its response time
    (absent if the client crashed or the execution was cut short), the
    tag the protocol associated with it and the value written/returned.
    Histories are what the {!Atomicity} checker and the cost/latency
    reports consume. Operation ids are dense integers assigned at
    invocation, so they double as array indices in analysis code. *)

type kind = Write | Read

type record = {
  op : int;
  client : int;
  kind : kind;
  invoked_at : float;
  mutable responded_at : float option;
  mutable tag : Tag.t option;
      (** For a write: the tag it created. For a read: the tag whose value
          it returned. *)
  mutable value : bytes option
      (** For a write: the value written. For a read: the value returned. *)
}

type t

val create : unit -> t

val invoke : t -> client:int -> kind:kind -> at:float -> int
(** Record an invocation; returns the fresh operation id. *)

val set_tag : t -> op:int -> Tag.t -> unit
val set_value : t -> op:int -> bytes -> unit

val respond : t -> op:int -> at:float -> unit
(** Mark the operation complete.
    @raise Invalid_argument if already complete or time precedes the
    invocation. *)

val find : t -> op:int -> record
(** @raise Invalid_argument on an unknown id. *)

val records : t -> record list
(** All records in invocation order. *)

val completed : t -> record list
val incomplete : t -> record list
val size : t -> int

val all_complete : t -> bool
(** True when every invoked operation has responded — the liveness
    criterion for executions whose clients are all non-faulty. *)

val pp : Format.formatter -> t -> unit
val pp_record : Format.formatter -> record -> unit

type t = { n : int; f : int; e : int }

let make ~n ~f ?(e = 0) () =
  if n < 1 then invalid_arg "Params.make: need at least one server";
  if f < 0 || 2 * f > n - 1 then
    invalid_arg
      (Printf.sprintf "Params.make: need 0 <= f <= (n-1)/2, got n=%d f=%d" n f);
  if e < 0 then invalid_arg "Params.make: negative e";
  if n - f - (2 * e) < 1 then
    invalid_arg
      (Printf.sprintf "Params.make: n - f - 2e must be >= 1, got n=%d f=%d e=%d"
         n f e);
  { n; f; e }

let n t = t.n
let f t = t.f
let e t = t.e
let k_soda t = t.n - t.f - (2 * t.e)
let k_cas t = t.n - (2 * t.f)
let majority t = (t.n / 2) + 1
let cas_quorum t = (t.n + k_cas t + 1) / 2
let fmax ~n = (n - 1) / 2
let pp ppf t = Format.fprintf ppf "n=%d f=%d e=%d" t.n t.f t.e

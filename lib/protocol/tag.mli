(** Version tags.

    A tag is a pair [(z, w)] of a sequence number and a writer identifier
    (Section IV of the paper). Tags are totally ordered lexicographically
    — first by [z], then by [w] — and every write operation creates a tag
    strictly greater than any tag it observed, with distinct writers
    breaking ties by id; hence all writes carry distinct tags. *)

type t = { z : int; w : int }

val initial : t
(** [t0], the tag of the initial object value: [z = 0] with a writer id
    smaller than any real writer's ([-1]). *)

val make : z:int -> w:int -> t
(** @raise Invalid_argument if [z < 0]. *)

val next : t -> w:int -> t
(** [next t ~w] is the tag a writer [w] creates after observing maximum
    tag [t]: [(t.z + 1, w)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val ( < ) : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( > ) : t -> t -> bool
val ( >= ) : t -> t -> bool

val max : t -> t -> t

val pack : t -> int
(** An injective encoding of a tag as a non-negative [int], ordered like
    {!compare}; an O(1) key for int-keyed tables on hot paths. Valid for
    [z] up to 2{^41} - 1 and writer ids up to 2{^20} - 1 (the simulator's
    pid cap). @raise Invalid_argument outside that range. *)

val unpack : int -> t
(** Inverse of {!pack}. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

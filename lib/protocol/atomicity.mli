(** Atomicity (linearizability) checking for register histories.

    Two independent checkers are provided.

    {!check_tagged} verifies the sufficient condition of Lemma 2.1 in the
    paper, using the tags the protocol itself associates with operations:
    it builds the partial order "[pi < phi] iff [tag pi < tag phi], or
    tags are equal and [pi] is the write and [phi] a read" and verifies
    properties P1 (real-time order respected), P2 (writes totally
    ordered, i.e. write tags unique) and P3 (a read returns the value of
    the write whose tag it carries, or the initial value for the initial
    tag). This is exact for tag-based protocols and runs in
    O(m log m): P1 is decided by a plane sweep over the operations in
    invocation order against the maximum tag of the operations already
    responded. {!check_tagged_quadratic} is the original pairwise P1
    scan, retained as a differential-testing oracle.

    {!linearizable_by_value} is a protocol-agnostic exhaustive search in
    the style of Wing & Gong: it asks whether {e any} total order of the
    completed operations is consistent with real time and with register
    semantics, looking only at values. It assumes distinct writes write
    distinct values (the standard assumption for black-box register
    checking) and is exponential in the worst case — use it on small
    histories to cross-validate the tag checker. *)

type violation = {
  what : string;  (** Human-readable description of the failed property. *)
  culprits : int list  (** Operation ids involved. *)
}

val pp_violation : Format.formatter -> violation -> unit

val check_tagged :
  ?initial_value:bytes -> History.record list -> (unit, violation) result
(** [check_tagged records] checks Lemma 2.1 over the {e completed}
    operations in [records]; incomplete operations contribute only as
    potential writers of tags that completed reads returned.
    [initial_value] (default empty) is the register's initial value,
    associated with {!Tag.initial}. *)

val check_tagged_quadratic :
  ?initial_value:bytes -> History.record list -> (unit, violation) result
(** As {!check_tagged}, but deciding P1 with the original O(m{^2})
    pairwise scan. The two must agree on the verdict for every history
    (the reported culprit pair may differ); the differential tests
    enforce this. Prefer {!check_tagged}. *)

val linearizable_by_value : initial_value:bytes -> History.record list -> bool
(** Exhaustive linearizability check over completed operations.
    @raise Invalid_argument on histories of more than 62 completed
    operations (the search is memoized on a bitmask). *)

type kind = Write | Read

type record = {
  op : int;
  client : int;
  kind : kind;
  invoked_at : float;
  mutable responded_at : float option;
  mutable tag : Tag.t option;
  mutable value : bytes option
}

type t = { mutable rev_records : record list; mutable count : int }

let create () = { rev_records = []; count = 0 }

let invoke t ~client ~kind ~at =
  let record =
    { op = t.count;
      client;
      kind;
      invoked_at = at;
      responded_at = None;
      tag = None;
      value = None
    }
  in
  t.rev_records <- record :: t.rev_records;
  t.count <- t.count + 1;
  record.op

let find t ~op =
  match List.find_opt (fun r -> r.op = op) t.rev_records with
  | Some r -> r
  | None -> invalid_arg (Printf.sprintf "History.find: unknown op %d" op)

let set_tag t ~op tag = (find t ~op).tag <- Some tag
let set_value t ~op value = (find t ~op).value <- Some value

let respond t ~op ~at =
  let r = find t ~op in
  (match r.responded_at with
  | Some _ -> invalid_arg (Printf.sprintf "History.respond: op %d twice" op)
  | None -> ());
  if at < r.invoked_at then
    invalid_arg "History.respond: response precedes invocation";
  r.responded_at <- Some at

let records t = List.rev t.rev_records
let completed t = List.filter (fun r -> Option.is_some r.responded_at) (records t)
let incomplete t = List.filter (fun r -> Option.is_none r.responded_at) (records t)
let size t = t.count

let all_complete t =
  List.for_all (fun r -> Option.is_some r.responded_at) t.rev_records

let pp_kind ppf = function
  | Write -> Format.pp_print_string ppf "write"
  | Read -> Format.pp_print_string ppf "read"

let pp_record ppf r =
  Format.fprintf ppf "@[op%d %a client=%d [%.3f, %s] tag=%s%s@]" r.op pp_kind
    r.kind r.client r.invoked_at
    (match r.responded_at with
    | Some x -> Printf.sprintf "%.3f" x
    | None -> "…")
    (match r.tag with Some tag -> Tag.to_string tag | None -> "?")
    (match r.value with
    | Some v -> Printf.sprintf " |v|=%d" (Bytes.length v)
    | None -> "")

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun r -> Format.fprintf ppf "%a@," pp_record r) (records t);
  Format.fprintf ppf "@]"

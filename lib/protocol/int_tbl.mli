(** Open-addressing hash tables keyed by non-negative ints.

    Built for the simulator's hot paths (MD deduplication, the servers'
    H sets): linear probing over flat arrays — no per-insert allocation,
    no generic-hashing C call. Keys must be [>= 0] (packed tags, mids
    and coordinates are); individual removal is not supported — delete
    wholesale with [reset]. *)

module Set : sig
  type t

  val create : int -> t
  (** [create capacity] sizes the table for [capacity] keys without
      growing. *)

  val add : t -> int -> bool
  (** Insert; [true] iff the key was not already present.
      @raise Invalid_argument on a negative key. *)

  val mem : t -> int -> bool
  val length : t -> int

  val reset : t -> unit
  (** Remove every key, retaining capacity. *)

  val iter : (int -> unit) -> t -> unit
end

module Map : sig
  type 'a t

  val create : dummy:'a -> int -> 'a t
  (** [dummy] pads unused value slots; it is never returned for a
      present key. *)

  val replace : 'a t -> int -> 'a -> unit
  (** Insert or overwrite. @raise Invalid_argument on a negative key. *)

  val find_opt : 'a t -> int -> 'a option

  val find : 'a t -> int -> default:'a -> 'a
  (** [find t key ~default] is the value bound to [key], or [default]
      when absent — unlike {!find_opt}, allocation-free. *)

  val length : 'a t -> int
  val reset : 'a t -> unit
  val fold : (int -> 'a -> 'b -> 'b) -> 'a t -> 'b -> 'b
end

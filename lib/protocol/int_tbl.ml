(* Open-addressing hash tables keyed by non-negative ints.

   The simulator's hot paths (MD deduplication, the servers' H sets)
   perform millions of membership tests and insertions on small int
   keys. Stdlib [Hashtbl] pays a C call into the generic hasher plus a
   bucket-cons allocation per [add]; these tables use linear probing
   over flat int arrays — a multiply-and-mask plus a couple of cache
   lines per operation, and no allocation once grown.

   No removal of individual keys (that would need tombstones); callers
   that delete do so wholesale with [reset]. Capacities are powers of
   two, load factor <= 1/2. The empty slot is keyed by -1, so keys must
   be >= 0 — which packed tags, mids and coordinates are. *)

[@@@lint.allow
  "U1: the probe loops index keys/vals with h land t.mask and both \
   arrays have length t.mask + 1 — the masked index cannot escape"]

(* Fibonacci hashing: spreads consecutive keys (mids and packed tags
   are near-consecutive) across the table. *)
let[@inline] slot_of key mask = (key * 0x1fd3eca2d2b1ba6d) lsr 1 land mask

module Set = struct
  type t = { mutable keys : int array; mutable size : int; mutable mask : int }

  let create capacity =
    let cap = ref 16 in
    while !cap < 2 * capacity do
      cap := !cap * 2
    done;
    { keys = Array.make !cap (-1); size = 0; mask = !cap - 1 }

  let length t = t.size

  let rec probe keys mask i key =
    let k = Array.unsafe_get keys i in
    if k = key then i
    else if k = -1 then lnot i (* free slot where the key would go *)
    else probe keys mask ((i + 1) land mask) key

  let mem t key = probe t.keys t.mask (slot_of key t.mask) key >= 0

  let grow t =
    let old = t.keys in
    let cap = 2 * Array.length old in
    t.keys <- Array.make cap (-1);
    t.mask <- cap - 1;
    Array.iter
      (fun k ->
        if k >= 0 then begin
          let i = probe t.keys t.mask (slot_of k t.mask) k in
          t.keys.(lnot i) <- k
        end)
      old

  (* [add t key] inserts and reports whether the key was new. *)
  let add t key =
    if key < 0 then invalid_arg "Int_tbl.Set.add: negative key";
    let i = probe t.keys t.mask (slot_of key t.mask) key in
    if i >= 0 then false
    else begin
      t.keys.(lnot i) <- key;
      t.size <- t.size + 1;
      if 2 * t.size > Array.length t.keys then grow t;
      true
    end

  let reset t =
    Array.fill t.keys 0 (Array.length t.keys) (-1);
    t.size <- 0

  let iter f t = Array.iter (fun k -> if k >= 0 then f k) t.keys
end

(* Same scheme with a parallel value array. The dummy passed at
   [create] pads unused value slots (the generic interface has no other
   way to initialise them); it is never returned for a present key. *)
module Map = struct
  type 'a t = {
    mutable keys : int array;
    mutable vals : 'a array;
    dummy : 'a;
    mutable size : int;
    mutable mask : int
  }

  let create ~dummy capacity =
    let cap = ref 16 in
    while !cap < 2 * capacity do
      cap := !cap * 2
    done;
    { keys = Array.make !cap (-1);
      vals = Array.make !cap dummy;
      dummy;
      size = 0;
      mask = !cap - 1
    }

  let length t = t.size

  let rec probe keys mask i key =
    let k = Array.unsafe_get keys i in
    if k = key then i
    else if k = -1 then lnot i
    else probe keys mask ((i + 1) land mask) key

  let find_opt t key =
    let i = probe t.keys t.mask (slot_of key t.mask) key in
    if i >= 0 then Some (Array.unsafe_get t.vals i) else None

  let find t key ~default =
    let i = probe t.keys t.mask (slot_of key t.mask) key in
    if i >= 0 then Array.unsafe_get t.vals i else default

  let grow t =
    let okeys = t.keys and ovals = t.vals in
    let cap = 2 * Array.length okeys in
    t.keys <- Array.make cap (-1);
    t.vals <- Array.make cap t.dummy;
    t.mask <- cap - 1;
    Array.iteri
      (fun j k ->
        if k >= 0 then begin
          let i = lnot (probe t.keys t.mask (slot_of k t.mask) k) in
          t.keys.(i) <- k;
          t.vals.(i) <- ovals.(j)
        end)
      okeys

  let replace t key v =
    if key < 0 then invalid_arg "Int_tbl.Map.replace: negative key";
    let i = probe t.keys t.mask (slot_of key t.mask) key in
    if i >= 0 then t.vals.(i) <- v
    else begin
      let i = lnot i in
      t.keys.(i) <- key;
      t.vals.(i) <- v;
      t.size <- t.size + 1;
      if 2 * t.size > Array.length t.keys then grow t
    end

  let reset t =
    Array.fill t.keys 0 (Array.length t.keys) (-1);
    Array.fill t.vals 0 (Array.length t.vals) t.dummy;
    t.size <- 0

  let fold f t acc =
    let acc = ref acc in
    Array.iteri
      (fun i k -> if k >= 0 then acc := f k t.vals.(i) !acc)
      t.keys;
    !acc
end

type t = { z : int; w : int }

let initial = { z = 0; w = -1 }

let make ~z ~w =
  if z < 0 then invalid_arg "Tag.make: negative sequence number";
  { z; w }

let next t ~w = { z = t.z + 1; w }

let compare a b =
  match Int.compare a.z b.z with 0 -> Int.compare a.w b.w | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = if a >= b then a else b
let pp ppf t = Format.fprintf ppf "(%d,%d)" t.z t.w
let to_string t = Format.asprintf "%a" pp t

type t = { z : int; w : int }

let initial = { z = 0; w = -1 }

let make ~z ~w =
  if z < 0 then invalid_arg "Tag.make: negative sequence number";
  { z; w }

let next t ~w = { z = t.z + 1; w }

let compare a b =
  match Int.compare a.z b.z with 0 -> Int.compare a.w b.w | c -> c

let equal a b = compare a b = 0
let ( < ) a b = compare a b < 0
let ( <= ) a b = compare a b <= 0
let ( > ) a b = compare a b > 0
let ( >= ) a b = compare a b >= 0
let max a b = if a >= b then a else b

(* Writer ids are process ids, capped at 2^20 - 1 by the simulator
   (see Simnet.Engine.reserve), so w + 1 fits 21 bits and z gets the
   remaining 41 — enough for ~2 trillion writes. *)
let max_packed_z = 0x1FF_FFFF_FFFF
let max_packed_w = 0xFFFFF

let pack t =
  if
    Stdlib.( > ) t.z max_packed_z
    || Stdlib.( < ) t.w (-1)
    || Stdlib.( > ) t.w max_packed_w
  then invalid_arg "Tag.pack: tag out of packing range";
  (t.z lsl 21) lor (t.w + 1)

let unpack key =
  { z = key lsr 21; w = (key land 0x1FFFFF) - 1 }
let pp ppf t = Format.fprintf ppf "(%d,%d)" t.z t.w
let to_string t = Format.asprintf "%a" pp t

(** Instrumentation events emitted by protocol automata.

    The harness uses these to measure quantities that appear in the
    paper's analysis but are not part of any message: when a reader was
    first registered by some server and when the last non-faulty server
    unregistered it (the window [T1, T2] that defines δ{_w}, Section V),
    and how many relays each read triggered. Probes are append-only and
    cheap; analysis folds over them after the run. *)

type event =
  | Registered of { rid : int; server : int; time : float }
      (** Server [server] added read [rid] to its registered set. *)
  | Unregistered of { rid : int; server : int; time : float }
      (** Server [server] removed read [rid] (completion or k-threshold). *)
  | Relayed of { rid : int; server : int; tag : Tag.t; time : float }
      (** Server sent a coded element to the reader of [rid]. *)
  | Stored of { server : int; tag : Tag.t; time : float }
      (** Server replaced its stored (tag, coded element). *)
  | Gc of { server : int; tag : Tag.t; time : float }
      (** (CASGC) server garbage-collected the element of [tag]. *)
  | Repair_started of { server : int; time : float }
      (** (repair extension) a restored server began rebuilding its
          coded element. *)
  | Repaired of { server : int; tag : Tag.t; time : float }
      (** (repair extension) the server holds a fresh element again and
          resumed answering quorum queries. *)
  | Crash_injected of { server : int; time : float }
      (** (healing plane) the harness crashed [server] — the start point
          of a crash MTTD/MTTR episode. Only emitted when healing is
          armed, so unhealed deployments stay probe-identical. *)
  | Rot_injected of { server : int; time : float }
      (** (healing plane) the harness silently corrupted [server]'s
          stored fragment — the start point of a rot episode. *)
  | Suspected of { target : int; by : int; time : float }
      (** (healing plane) [by]'s failure detector cast a suspicion vote
          against [target]; the first one after a [Crash_injected] marks
          detection (MTTD). *)
  | Auto_repair of { server : int; time : float }
      (** (healing plane) the deployment launched a detector-triggered
          crash-repair of [server]. *)
  | Rot_detected of { server : int; time : float }
      (** (healing plane) a checksum verification (scrub sweep or read
          path) caught the corruption on [server]; the fragment is now
          quarantined. *)
  | Scrub_repaired of { server : int; tag : Tag.t; time : float }
      (** (healing plane) the scrubber restored [server]'s quarantined
          fragment from peer fragments (the end of a rot episode — the
          other terminator is a plain [Stored] from a newer write). *)

type t

val create : unit -> t
val emit : t -> event -> unit
val events : t -> event list
(** In emission order. *)

val registration_window :
  ?is_crashed:(int -> bool) -> t -> rid:int -> (float * float) option
(** [(T1, T2)]: first registration and last unregistration of read [rid];
    [None] if it was never registered. [T2] is [infinity] when some
    registration at a server for which [is_crashed] (default: nobody) is
    false was never matched by an unregistration — crashed servers are
    exempt, as in the paper's definition of the window. *)

val relays_of : t -> rid:int -> int
(** Number of coded-element relays sent to the reader of [rid]. *)

val registrations_balanced : t -> crashed:(int -> bool) -> bool
(** Theorem 5.5 check: every registration at a server that did not crash
    is eventually matched by an unregistration at that server. *)

module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Tag = Protocol.Tag
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment

module Messages = struct
  type t =
    | Query of { op : int } [@lint.msg "cas -> cas"]
    | Query_reply of { op : int; tag : Tag.t } [@lint.msg "cas -> cas"]
    | Pre of { op : int; tag : Tag.t; fragment : Fragment.t } [@lint.msg "cas -> cas"]
    | Pre_ack of { op : int; tag : Tag.t } [@lint.msg "cas -> cas"]
    | Fin of { op : int; tag : Tag.t } [@lint.msg "cas -> cas"]
    | Fin_ack of { op : int; tag : Tag.t } [@lint.msg "cas -> cas"]
    | Read_fin of { rid : int; tag : Tag.t } [@lint.msg "cas -> cas"]
    | Read_fin_reply of { rid : int; tag : Tag.t; fragment : Fragment.t option } [@lint.msg "cas -> cas"]
  [@@lint.protocol]

  let data_bytes = function
    | Query _ | Query_reply _ | Pre_ack _ | Fin _ | Fin_ack _ | Read_fin _
    | Read_fin_reply { fragment = None; _ } ->
      0
    | Pre { fragment; _ } -> Fragment.size fragment
    | Read_fin_reply { fragment = Some fragment; _ } -> Fragment.size fragment
end

type config = {
  params : Params.t;
  code : Mds.t;
  gc_depth : int option;
  servers : int array;
  cost : Cost.t;
  probe : Probe.t;
  history : History.t;
  initial_value : bytes;
  mutable restarts : int
}

let quorum config = Params.cas_quorum config.params

(* ------------------------------------------------------------------ *)
(* Server *)

module Server = struct
  type label = Pre_label | Fin_label

  type entry = { mutable fragment : Fragment.t option; mutable label : label }

  module TagMap = Map.Make (struct
    type t = Tag.t

    let compare = Tag.compare
  end)

  type t = {
    config : config;
    coordinate : int;
    mutable store : entry TagMap.t;
    mutable gc_floor : Tag.t option
        (* tags at or below this have been garbage-collected: their coded
           elements must not be (re-)stored *)
  }

  let stored_bytes t =
    TagMap.fold
      (fun _ e acc ->
        match e.fragment with Some f -> acc + Fragment.size f | None -> acc)
      t.store 0

  let sync_storage t =
    Cost.storage_set t.config.cost ~server:t.coordinate ~bytes:(stored_bytes t)

  let create config ~coordinate =
    let fragments = Mds.encode config.code config.initial_value in
    let store =
      TagMap.singleton Tag.initial
        { fragment = Some fragments.(coordinate); label = Fin_label }
    in
    let t = { config; coordinate; store; gc_floor = None } in
    sync_storage t;
    t

  (* Strictly below: the cutoff tag itself is the newest retained
     version, so its element may still be stored if the pre-write trails
     the finalize. *)
  let below_floor t tag =
    match t.gc_floor with Some fl -> Tag.( < ) tag fl | None -> false

  (* CASGC: keep coded elements only for the newest (delta + 1) finalized
     tags; anything older loses its element (labels stay, so queries and
     quorum intersection reasoning still see the tag). *)
  let garbage_collect t ctx =
    match t.config.gc_depth with
    | None -> ()
    | Some delta ->
      let finalized =
        TagMap.fold
          (fun tag e acc ->
            match e.label with Fin_label -> tag :: acc | Pre_label -> acc)
          t.store []
        (* TagMap folds ascending, so [acc] ends up descending *)
      in
      (match List.nth_opt finalized delta with
      | None -> ()
      | Some cutoff ->
        t.gc_floor <-
          Some
            (match t.gc_floor with
            | Some fl -> Tag.max fl cutoff
            | None -> cutoff);
        TagMap.iter
          (fun tag e ->
            if Tag.( < ) tag cutoff && Option.is_some e.fragment then begin
              e.fragment <- None;
              Probe.emit t.config.probe
                (Probe.Gc
                   { server = t.coordinate; tag; time = Engine.now_ctx ctx })
            end)
          t.store;
        sync_storage t)

  let max_finalized t =
    TagMap.fold
      (fun tag e acc ->
        match e.label with
        | Fin_label -> Tag.max tag acc
        | Pre_label -> acc)
      t.store Tag.initial

  let find_or_insert t tag =
    match TagMap.find_opt tag t.store with
    | Some e -> e
    | None ->
      let e = { fragment = None; label = Pre_label } in
      t.store <- TagMap.add tag e t.store;
      e

  let handler t ctx ~src msg =
    match msg with
    | Messages.Query { op } ->
      Engine.send ctx ~dst:src
        (Messages.Query_reply { op; tag = max_finalized t })
    | Messages.Pre { op; tag; fragment } ->
      if not (below_floor t tag) then begin
        let e = find_or_insert t tag in
        if Option.is_none e.fragment then begin
          e.fragment <- Some fragment;
          sync_storage t
        end
      end;
      Engine.send ctx ~dst:src (Messages.Pre_ack { op; tag })
    | Messages.Fin { op; tag } ->
      let e = find_or_insert t tag in
      e.label <- Fin_label;
      garbage_collect t ctx;
      Engine.send ctx ~dst:src (Messages.Fin_ack { op; tag })
    | Messages.Read_fin { rid; tag } ->
      let e = find_or_insert t tag in
      e.label <- Fin_label;
      garbage_collect t ctx;
      let fragment = if below_floor t tag then None else e.fragment in
      (match fragment with
      | Some f -> Cost.comm t.config.cost ~op:rid ~bytes:(Fragment.size f)
      | None -> ());
      Engine.send ctx ~dst:src (Messages.Read_fin_reply { rid; tag; fragment })
    | Messages.Query_reply _ | Messages.Pre_ack _ | Messages.Fin_ack _
    | Messages.Read_fin_reply _ ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Writer *)

module Writer = struct
  type phase =
    | Idle
    | Query of {
        op : int;
        value : bytes;
        replies : (int, unit) Hashtbl.t;
        mutable best : Tag.t
      }
    | Pre of { op : int; tag : Tag.t; acks : (int, unit) Hashtbl.t }
    | Fin of { op : int; tag : Tag.t; acks : (int, unit) Hashtbl.t }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (unit -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let invoke t ctx ~value ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Pre _ | Fin _ -> invalid_arg "Cas.Writer.invoke: busy");
    let op =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Write ~at:(Engine.now_ctx ctx)
    in
    History.set_value t.config.history ~op value;
    t.on_done <- on_done;
    t.phase <-
      Query { op; value; replies = Hashtbl.create 8; best = Tag.initial };
    Array.iter
      (fun s -> Engine.send ctx ~dst:s (Messages.Query { op }))
      t.config.servers;
    op

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Query_reply { op; tag }, Query q when q.op = op ->
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then q.best <- tag;
      if Hashtbl.length q.replies >= quorum t.config then begin
        let tw = Tag.next q.best ~w:(Engine.self ctx) in
        History.set_tag t.config.history ~op tw;
        let fragments = Mds.encode t.config.code q.value in
        t.phase <- Pre { op; tag = tw; acks = Hashtbl.create 8 };
        Array.iteri
          (fun i s ->
            Cost.comm t.config.cost ~op
              ~bytes:(Fragment.size fragments.(i));
            Engine.send ctx ~dst:s
              (Messages.Pre { op; tag = tw; fragment = fragments.(i) }))
          t.config.servers
      end
    | Messages.Pre_ack { op; tag }, Pre p when p.op = op && Tag.equal tag p.tag
      ->
      Hashtbl.replace p.acks src ();
      if Hashtbl.length p.acks >= quorum t.config then begin
        t.phase <- Fin { op; tag = p.tag; acks = Hashtbl.create 8 };
        Array.iter
          (fun s -> Engine.send ctx ~dst:s (Messages.Fin { op; tag = p.tag }))
          t.config.servers
      end
    | Messages.Fin_ack { op; tag }, Fin f when f.op = op && Tag.equal tag f.tag
      ->
      Hashtbl.replace f.acks src ();
      if Hashtbl.length f.acks >= quorum t.config then begin
        History.respond t.config.history ~op ~at:(Engine.now_ctx ctx);
        t.phase <- Idle;
        match t.on_done with
        | Some callback ->
          t.on_done <- None;
          callback ()
        | None -> ()
      end
    | ( ( Messages.Query _ | Messages.Query_reply _ | Messages.Pre _
        | Messages.Pre_ack _ | Messages.Fin _ | Messages.Fin_ack _
        | Messages.Read_fin _ | Messages.Read_fin_reply _ ),
        (Idle | Query _ | Pre _ | Fin _) ) ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Reader *)

module Reader = struct
  type phase =
    | Idle
    | Query of { rid : int; replies : (int, unit) Hashtbl.t; mutable best : Tag.t }
    | Collect of {
        rid : int;
        tag : Tag.t;
        replies : (int, unit) Hashtbl.t;
        fragments : (int, Fragment.t) Hashtbl.t
      }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (bytes -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let start_query t ctx ~rid =
    t.phase <- Query { rid; replies = Hashtbl.create 8; best = Tag.initial };
    Array.iter
      (fun s -> Engine.send ctx ~dst:s (Messages.Query { op = rid }))
      t.config.servers

  let invoke t ctx ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Collect _ -> invalid_arg "Cas.Reader.invoke: busy");
    let rid =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Read ~at:(Engine.now_ctx ctx)
    in
    t.on_done <- on_done;
    start_query t ctx ~rid;
    rid

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Query_reply { op; tag }, Query q when q.rid = op ->
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then q.best <- tag;
      if Hashtbl.length q.replies >= quorum t.config then begin
        t.phase <-
          Collect
            { rid = q.rid;
              tag = q.best;
              replies = Hashtbl.create 8;
              fragments = Hashtbl.create 8
            };
        Array.iter
          (fun s ->
            Engine.send ctx ~dst:s
              (Messages.Read_fin { rid = q.rid; tag = q.best }))
          t.config.servers
      end
    | Messages.Read_fin_reply { rid; tag; fragment }, Collect c
      when c.rid = rid && Tag.equal tag c.tag ->
      Hashtbl.replace c.replies src ();
      (match fragment with
      | Some f -> Hashtbl.replace c.fragments (Fragment.index f) f
      | None -> ());
      let k = Mds.k t.config.code in
      if
        Hashtbl.length c.replies >= quorum t.config
        && Hashtbl.length c.fragments >= k
      then begin
        let[@lint.allow
             "D3: materialized sorted by fragment index so the decoder \
              input order is schedule-independent"] frags =
          Hashtbl.fold (fun i f acc -> (i, f) :: acc) c.fragments []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
        in
        let value = Mds.decode t.config.code frags in
        History.set_tag t.config.history ~op:rid c.tag;
        History.set_value t.config.history ~op:rid value;
        History.respond t.config.history ~op:rid ~at:(Engine.now_ctx ctx);
        t.phase <- Idle;
        match t.on_done with
        | Some callback ->
          t.on_done <- None;
          callback value
        | None -> ()
      end
      else if
        Hashtbl.length c.replies >= Params.n t.config.params
        && Hashtbl.length c.fragments < k
      then begin
        (* Garbage collection outran this read (possible only beyond the
           δ concurrency bound): restart it, per the CASGC liveness
           escape hatch. *)
        t.config.restarts <- t.config.restarts + 1;
        start_query t ctx ~rid
      end
    | ( ( Messages.Query _ | Messages.Query_reply _ | Messages.Pre _
        | Messages.Pre_ack _ | Messages.Fin _ | Messages.Fin_ack _
        | Messages.Read_fin _ | Messages.Read_fin_reply _ ),
        (Idle | Query _ | Collect _) ) ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Deployment *)

type t = {
  engine : Messages.t Engine.t;
  config : config;
  writers : Writer.t array;
  writer_pids : int array;
  readers : Reader.t array;
  reader_pids : int array
}

let deploy ~engine ~params ?gc_depth ?(initial_value = Bytes.empty) ?value_len
    ~num_writers ~num_readers () =
  (match gc_depth with
  | Some d when d < 0 -> invalid_arg "Cas.deploy: negative gc_depth"
  | Some _ | None -> ());
  let n = Params.n params in
  let k = Params.k_cas params in
  let value_len =
    match value_len with
    | Some l -> l
    | None ->
      let l = Bytes.length initial_value in
      if l > 0 then l else 1024
  in
  let server_pids =
    Array.init n (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "cas-server%d" i))
  in
  let config =
    { params;
      code = Mds.rs_vandermonde ~n ~k;
      gc_depth;
      servers = server_pids;
      cost = Cost.create ~value_len;
      probe = Probe.create ();
      history = History.create ();
      initial_value;
      restarts = 0
    }
  in
  Array.iteri
    (fun i pid ->
      Engine.set_handler engine pid
        (Server.handler (Server.create config ~coordinate:i)))
    server_pids;
  let writer_pids =
    Array.init num_writers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "cas-writer%d" i))
  in
  let writers = Array.init num_writers (fun _ -> Writer.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Writer.handler writers.(i)))
    writer_pids;
  let reader_pids =
    Array.init num_readers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "cas-reader%d" i))
  in
  let readers = Array.init num_readers (fun _ -> Reader.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Reader.handler readers.(i)))
    reader_pids;
  { engine; config; writers; writer_pids; readers; reader_pids }

let write t ~writer ~at ?on_done value =
  Engine.inject t.engine ~at t.writer_pids.(writer) (fun ctx ->
      ignore (Writer.invoke t.writers.(writer) ctx ~value ?on_done ()))

let read t ~reader ~at ?on_done () =
  Engine.inject t.engine ~at t.reader_pids.(reader) (fun ctx ->
      ignore (Reader.invoke t.readers.(reader) ctx ?on_done ()))

let crash_server t ~coordinate ~at =
  Engine.crash_at t.engine t.config.servers.(coordinate) at

let history t = t.config.history
let cost t = t.config.cost
let probe t = t.config.probe
let initial_value t = t.config.initial_value
let read_restarts t = t.config.restarts

module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Tag = Protocol.Tag

module Messages = struct
  type t =
    | Dir_query of { op : int } [@lint.msg "ldr -> ldr"]
    | Dir_query_reply of { op : int; tag : Tag.t; locations : int list } [@lint.msg "ldr -> ldr"]
    | Dir_update of { op : int; tag : Tag.t; locations : int list } [@lint.msg "ldr -> ldr"]
    | Dir_update_ack of { op : int; tag : Tag.t } [@lint.msg "ldr -> ldr"]
    | Store of { op : int; tag : Tag.t; value : bytes } [@lint.msg "ldr -> ldr"]
    | Store_ack of { op : int; tag : Tag.t } [@lint.msg "ldr -> ldr"]
    | Fetch of { rid : int; tag : Tag.t } [@lint.msg "ldr -> ldr"]
    | Fetch_reply of { rid : int; tag : Tag.t; value : bytes } [@lint.msg "ldr -> ldr"]
  [@@lint.protocol]

  let data_bytes = function
    | Dir_query _ | Dir_query_reply _ | Dir_update _ | Dir_update_ack _
    | Store_ack _ | Fetch _ ->
      0
    | Store { value; _ } | Fetch_reply { value; _ } -> Bytes.length value
end

type config = {
  f : int;
  directories : int array;  (* pids, 2f+1 of them *)
  replicas : int array;  (* pids, 2f+1 of them *)
  cost : Cost.t;
  history : History.t;
  initial_value : bytes
}

let dir_majority config = (Array.length config.directories / 2) + 1
let store_quorum config = config.f + 1

(* ------------------------------------------------------------------ *)
(* Directory server: (tag, locations) metadata, monotone in tag *)

module Directory = struct
  type t = {
    mutable tag : Tag.t;
    mutable locations : int list
  }

  let create config =
    { tag = Tag.initial;
      locations = Array.to_list config.replicas
    }

  let handler t ctx ~src msg =
    match msg with
    | Messages.Dir_query { op } ->
      Engine.send ctx ~dst:src
        (Messages.Dir_query_reply { op; tag = t.tag; locations = t.locations })
    | Messages.Dir_update { op; tag; locations } ->
      if Tag.( > ) tag t.tag then begin
        t.tag <- tag;
        t.locations <- locations
      end;
      Engine.send ctx ~dst:src (Messages.Dir_update_ack { op; tag })
    | Messages.Dir_query_reply _ | Messages.Dir_update_ack _
    | Messages.Store _ | Messages.Store_ack _ | Messages.Fetch _
    | Messages.Fetch_reply _ ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Replica server: the full latest value; tags are monotone, so a
   replica recorded as a location always holds a tag at least as new *)

module Replica = struct
  type t = {
    config : config;
    index : int;  (* replica coordinate, also the storage account *)
    mutable tag : Tag.t;
    mutable value : bytes
  }

  let create config ~index =
    Cost.storage_set config.cost ~server:index
      ~bytes:(Bytes.length config.initial_value);
    { config; index; tag = Tag.initial; value = config.initial_value }

  let handler t ctx ~src msg =
    match msg with
    | Messages.Store { op; tag; value } ->
      if Tag.( > ) tag t.tag then begin
        t.tag <- tag;
        t.value <- value;
        Cost.storage_set t.config.cost ~server:t.index
          ~bytes:(Bytes.length value)
      end;
      Engine.send ctx ~dst:src (Messages.Store_ack { op; tag })
    | Messages.Fetch { rid; tag = _ } ->
      (* monotonicity: if this replica is a recorded location of the
         requested tag, its current tag can only be newer *)
      Cost.comm t.config.cost ~op:rid ~bytes:(Bytes.length t.value);
      Engine.send ctx ~dst:src
        (Messages.Fetch_reply { rid; tag = t.tag; value = t.value })
    | Messages.Dir_query _ | Messages.Dir_query_reply _ | Messages.Dir_update _
    | Messages.Dir_update_ack _ | Messages.Store_ack _
    | Messages.Fetch_reply _ ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Writer: dir-query -> store at replicas -> dir-update *)

module Writer = struct
  type phase =
    | Idle
    | Query of {
        op : int;
        value : bytes;
        replies : (int, unit) Hashtbl.t;
        mutable best : Tag.t
      }
    | Store of {
        op : int;
        tag : Tag.t;
        mutable ackers : int list;
        acks : (int, unit) Hashtbl.t
      }
    | Update of { op : int; tag : Tag.t; acks : (int, unit) Hashtbl.t }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (unit -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let invoke t ctx ~value ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Store _ | Update _ -> invalid_arg "Ldr.Writer.invoke: busy");
    let op =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Write ~at:(Engine.now_ctx ctx)
    in
    History.set_value t.config.history ~op value;
    t.on_done <- on_done;
    t.phase <-
      Query { op; value; replies = Hashtbl.create 8; best = Tag.initial };
    Array.iter
      (fun d -> Engine.send ctx ~dst:d (Messages.Dir_query { op }))
      t.config.directories;
    op

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Dir_query_reply { op; tag; locations = _ }, Query q
      when q.op = op ->
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then q.best <- tag;
      if Hashtbl.length q.replies >= dir_majority t.config then begin
        let tw = Tag.next q.best ~w:(Engine.self ctx) in
        History.set_tag t.config.history ~op tw;
        t.phase <- Store { op; tag = tw; ackers = []; acks = Hashtbl.create 8 };
        Array.iter
          (fun r ->
            Cost.comm t.config.cost ~op ~bytes:(Bytes.length q.value);
            Engine.send ctx ~dst:r
              (Messages.Store { op; tag = tw; value = q.value }))
          t.config.replicas
      end
    | Messages.Store_ack { op; tag }, Store s
      when s.op = op && Tag.equal tag s.tag ->
      if not (Hashtbl.mem s.acks src) then begin
        Hashtbl.replace s.acks src ();
        s.ackers <- src :: s.ackers;
        if Hashtbl.length s.acks >= store_quorum t.config then begin
          t.phase <- Update { op; tag = s.tag; acks = Hashtbl.create 8 };
          Array.iter
            (fun d ->
              Engine.send ctx ~dst:d
                (Messages.Dir_update { op; tag = s.tag; locations = s.ackers }))
            t.config.directories
        end
      end
    | Messages.Dir_update_ack { op; tag }, Update u
      when u.op = op && Tag.equal tag u.tag ->
      Hashtbl.replace u.acks src ();
      if Hashtbl.length u.acks >= dir_majority t.config then begin
        History.respond t.config.history ~op ~at:(Engine.now_ctx ctx);
        t.phase <- Idle;
        match t.on_done with
        | Some callback ->
          t.on_done <- None;
          callback ()
        | None -> ()
      end
    | ( ( Messages.Dir_query _ | Messages.Dir_query_reply _
        | Messages.Dir_update _ | Messages.Dir_update_ack _ | Messages.Store _
        | Messages.Store_ack _ | Messages.Fetch _ | Messages.Fetch_reply _ ),
        (Idle | Query _ | Store _ | Update _) ) ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Reader: dir-query -> fetch from locations -> dir write-back *)

module Reader = struct
  type phase =
    | Idle
    | Query of {
        rid : int;
        replies : (int, unit) Hashtbl.t;
        mutable best : Tag.t;
        mutable locations : int list
      }
    | Fetch of { rid : int; dir_tag : Tag.t; locations : int list }
    | Store_back of {
        rid : int;
        tag : Tag.t;
        value : bytes;
        mutable ackers : int list;
        acks : (int, unit) Hashtbl.t
      }
    | Write_back of {
        rid : int;
        tag : Tag.t;
        value : bytes;
        acks : (int, unit) Hashtbl.t
      }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (bytes -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let invoke t ctx ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Fetch _ | Store_back _ | Write_back _ ->
      invalid_arg "Ldr.Reader.invoke: busy");
    let rid =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Read ~at:(Engine.now_ctx ctx)
    in
    t.on_done <- on_done;
    t.phase <-
      Query
        { rid;
          replies = Hashtbl.create 8;
          best = Tag.initial;
          locations = Array.to_list t.config.replicas
        };
    Array.iter
      (fun d -> Engine.send ctx ~dst:d (Messages.Dir_query { op = rid }))
      t.config.directories;
    rid

  (* final phase: record (tag, locations) at a majority of directories
     so later readers cannot miss this read's tag *)
  let start_dir_write_back t ctx ~rid ~tag ~value ~locations =
    t.phase <- Write_back { rid; tag; value; acks = Hashtbl.create 8 };
    Array.iter
      (fun d ->
        Engine.send ctx ~dst:d (Messages.Dir_update { op = rid; tag; locations }))
      t.config.directories

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Dir_query_reply { op; tag; locations }, Query q when q.rid = op
      ->
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then begin
        q.best <- tag;
        q.locations <- locations
      end;
      if Hashtbl.length q.replies >= dir_majority t.config then begin
        t.phase <-
          Fetch { rid = q.rid; dir_tag = q.best; locations = q.locations };
        (* at most f of the f+1 recorded locations can be crashed *)
        List.iter
          (fun r ->
            Engine.send ctx ~dst:r (Messages.Fetch { rid = q.rid; tag = q.best }))
          q.locations
      end
    | Messages.Fetch_reply { rid; tag; value }, Fetch f when f.rid = rid ->
      (* replica tags are monotone, so tag >= f.dir_tag; first reply
         wins *)
      History.set_tag t.config.history ~op:rid tag;
      History.set_value t.config.history ~op:rid value;
      if Tag.equal tag f.dir_tag then
        (* the directory's locations are still valid for this tag *)
        start_dir_write_back t ctx ~rid ~tag ~value ~locations:f.locations
      else begin
        (* a newer value surfaced: install it at f+1 replicas first so
           the directory entry we leave behind has live locations *)
        t.phase <-
          Store_back { rid; tag; value; ackers = []; acks = Hashtbl.create 8 };
        Array.iter
          (fun r ->
            Cost.comm t.config.cost ~op:rid ~bytes:(Bytes.length value);
            Engine.send ctx ~dst:r (Messages.Store { op = rid; tag; value }))
          t.config.replicas
      end
    | Messages.Store_ack { op; tag }, Store_back sb
      when sb.rid = op && Tag.equal tag sb.tag ->
      if not (Hashtbl.mem sb.acks src) then begin
        Hashtbl.replace sb.acks src ();
        sb.ackers <- src :: sb.ackers;
        if Hashtbl.length sb.acks >= store_quorum t.config then
          start_dir_write_back t ctx ~rid:sb.rid ~tag:sb.tag ~value:sb.value
            ~locations:sb.ackers
      end
    | Messages.Dir_update_ack { op; tag }, Write_back w
      when w.rid = op && Tag.equal tag w.tag ->
      Hashtbl.replace w.acks src ();
      if Hashtbl.length w.acks >= dir_majority t.config then begin
        History.respond t.config.history ~op ~at:(Engine.now_ctx ctx);
        t.phase <- Idle;
        match t.on_done with
        | Some callback ->
          t.on_done <- None;
          callback w.value
        | None -> ()
      end
    | ( ( Messages.Dir_query _ | Messages.Dir_query_reply _
        | Messages.Dir_update _ | Messages.Dir_update_ack _ | Messages.Store _
        | Messages.Store_ack _ | Messages.Fetch _ | Messages.Fetch_reply _ ),
        (Idle | Query _ | Fetch _ | Store_back _ | Write_back _) ) ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Deployment *)

type t = {
  engine : Messages.t Engine.t;
  config : config;
  writers : Writer.t array;
  writer_pids : int array;
  readers : Reader.t array;
  reader_pids : int array
}

let deploy ~engine ~params ?(initial_value = Bytes.empty) ?value_len
    ~num_writers ~num_readers () =
  let f = Params.f params in
  let group = (2 * f) + 1 in
  let value_len =
    match value_len with
    | Some l -> l
    | None ->
      let l = Bytes.length initial_value in
      if l > 0 then l else 1024
  in
  let directories =
    Array.init group (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "ldr-dir%d" i))
  in
  let replicas =
    Array.init group (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "ldr-replica%d" i))
  in
  let config =
    { f;
      directories;
      replicas;
      cost = Cost.create ~value_len;
      history = History.create ();
      initial_value
    }
  in
  Array.iter
    (fun pid ->
      Engine.set_handler engine pid (Directory.handler (Directory.create config)))
    directories;
  Array.iteri
    (fun i pid ->
      Engine.set_handler engine pid
        (Replica.handler (Replica.create config ~index:i)))
    replicas;
  let writer_pids =
    Array.init num_writers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "ldr-writer%d" i))
  in
  let writers = Array.init num_writers (fun _ -> Writer.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Writer.handler writers.(i)))
    writer_pids;
  let reader_pids =
    Array.init num_readers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "ldr-reader%d" i))
  in
  let readers = Array.init num_readers (fun _ -> Reader.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Reader.handler readers.(i)))
    reader_pids;
  { engine; config; writers; writer_pids; readers; reader_pids }

let write t ~writer ~at ?on_done value =
  Engine.inject t.engine ~at t.writer_pids.(writer) (fun ctx ->
      ignore (Writer.invoke t.writers.(writer) ctx ~value ?on_done ()))

let read t ~reader ~at ?on_done () =
  Engine.inject t.engine ~at t.reader_pids.(reader) (fun ctx ->
      ignore (Reader.invoke t.readers.(reader) ctx ?on_done ()))

let crash_directory t ~index ~at =
  Engine.crash_at t.engine t.config.directories.(index) at

let crash_replica t ~index ~at =
  Engine.crash_at t.engine t.config.replicas.(index) at

let history t = t.config.history
let cost t = t.config.cost
let initial_value t = t.config.initial_value
let directories t = Array.length t.config.directories
let replicas t = Array.length t.config.replicas

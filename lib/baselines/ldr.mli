(** The LDR algorithm (Fan & Lynch, "Efficient replication of large data
    objects") — the other replication-based baseline the paper cites.

    LDR splits the server role in two: {e directories} (metadata only:
    the highest known tag and the set of replicas holding its value) and
    {e replicas} (full values). Quorums are majorities of the [2f+1]
    directories; values are written to all [2f+1] replicas but only
    [f+1] acknowledgements are awaited, and the ackers are recorded in
    the directories as the value's {e locations}.

    - Write: query directories (majority) for the max tag; store
      [(tag, value)] at replicas (await [f+1], remember who); update
      directories with [(tag, locations)] (majority).
    - Read: query directories (majority) for the max [(tag, locations)];
      fetch from the [f+1] locations (at least one is alive, and replica
      tags are monotonic so every reply carries a tag at least as large);
      write the winning [(tag, locations)] metadata back to a majority of
      directories; return.

    Costs relative to a 1-unit value: storage [2f+1] (replicas only —
    directories store metadata), write [2f+1], read at most [f+1]
    (replies from the locations). LDR's point versus ABD is that only
    replicas pay for the data and reads touch [f+1 <= majority] of them;
    SODA's Table I point stands against both: replication pays Θ(f)
    storage where SODA pays [n/(n-f) < 2]. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Tag = Protocol.Tag

module Messages : sig
  type t =
    | Dir_query of { op : int }
    | Dir_query_reply of { op : int; tag : Tag.t; locations : int list }
    | Dir_update of { op : int; tag : Tag.t; locations : int list }
    | Dir_update_ack of { op : int; tag : Tag.t }
    | Store of { op : int; tag : Tag.t; value : bytes }
    | Store_ack of { op : int; tag : Tag.t }
    | Fetch of { rid : int; tag : Tag.t }
    | Fetch_reply of { rid : int; tag : Tag.t; value : bytes }

  val data_bytes : t -> int
end

type t

val deploy :
  engine:Messages.t Simnet.Engine.t ->
  params:Params.t ->
  ?initial_value:bytes ->
  ?value_len:int ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t
(** Registers [2f+1] directory processes, [2f+1] replica processes and
    the clients. Only [f] of {e each} group may crash (the two groups
    fail independently); [Params.n] is ignored except through [f]. *)

val write :
  t -> writer:int -> at:float -> ?on_done:(unit -> unit) -> bytes -> unit

val read : t -> reader:int -> at:float -> ?on_done:(bytes -> unit) -> unit -> unit

val crash_directory : t -> index:int -> at:float -> unit
val crash_replica : t -> index:int -> at:float -> unit
val history : t -> History.t
val cost : t -> Cost.t
val initial_value : t -> bytes
val directories : t -> int
val replicas : t -> int

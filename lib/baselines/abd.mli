(** The ABD algorithm (Attiya, Bar-Noy, Dolev), multi-writer multi-reader
    variant — the replication baseline of Table I.

    Every server stores a full [(tag, value)] copy; quorums are simple
    majorities. A write queries a majority for tags, forms a higher tag
    and stores the full value at a majority. A read queries a majority
    for [(tag, value)] pairs, picks the largest, and — only when the
    replies disagree, an optimization that keeps the quiescent read cost
    at [n] as in Table I — writes the winning pair back to a majority
    before returning it.

    Costs (in value units): write [n], read [n] quiescent / up to [2n]
    under concurrency, storage [n]. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Tag = Protocol.Tag

module Messages : sig
  type t =
    | Query_tag of { op : int }  (** write phase 1 (metadata) *)
    | Query_tag_reply of { op : int; tag : Tag.t }
    | Query_full of { rid : int }  (** read phase 1 *)
    | Query_full_reply of { rid : int; tag : Tag.t; value : bytes }
    | Store of { op : int; tag : Tag.t; value : bytes }
        (** phase 2 of writes, write-back of reads *)
    | Store_ack of { op : int; tag : Tag.t }

  val data_bytes : t -> int
end

type t

val deploy :
  engine:Messages.t Simnet.Engine.t ->
  params:Params.t ->
  ?initial_value:bytes ->
  ?value_len:int ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t

val write :
  t -> writer:int -> at:float -> ?on_done:(unit -> unit) -> bytes -> unit

val read : t -> reader:int -> at:float -> ?on_done:(bytes -> unit) -> unit -> unit

val crash_server : t -> coordinate:int -> at:float -> unit
val history : t -> History.t
val cost : t -> Cost.t
val initial_value : t -> bytes

(** The CAS and CASGC algorithms (Cadambe, Lynch, Médard, Musial — "A
    coded shared atomic memory algorithm for message passing
    architectures"), the erasure-coded comparators of Table I.

    Both use an [n, k] MDS code with [k = n - 2f] and quorums of size
    [⌈(n+k)/2⌉ = n - f]; any two quorums intersect in at least [k]
    servers, which is what makes a finalized version decodable. A write
    runs {e query} (max finalized tag) → {e pre-write} (store coded
    elements at a quorum, label [pre]) → {e finalize} (label [fin] at a
    quorum). A read runs {e query} → {e finalize}: servers respond to the
    read's finalize with their coded element for the requested tag if
    they hold it, and the quorum-intersection argument guarantees at
    least [k] of them do.

    CASGC adds garbage collection with concurrency bound [delta]: a
    server keeps coded elements only for the latest [delta + 1] finalized
    tags (older elements are replaced by a [fin] label with no data),
    bounding storage at [n(delta+1)/(n-2f)] at the price of liveness
    holding only when no read overlaps more than [delta] writes; a reader
    that finds fewer than [k] elements restarts its read. CAS is the
    [gc_depth = None] instance. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Tag = Protocol.Tag
module Fragment = Erasure.Fragment

module Messages : sig
  type t =
    | Query of { op : int }
    | Query_reply of { op : int; tag : Tag.t }
    | Pre of { op : int; tag : Tag.t; fragment : Fragment.t }
    | Pre_ack of { op : int; tag : Tag.t }
    | Fin of { op : int; tag : Tag.t }
    | Fin_ack of { op : int; tag : Tag.t }
    | Read_fin of { rid : int; tag : Tag.t }
    | Read_fin_reply of { rid : int; tag : Tag.t; fragment : Fragment.t option }

  val data_bytes : t -> int
end

type t

val deploy :
  engine:Messages.t Simnet.Engine.t ->
  params:Params.t ->
  ?gc_depth:int ->
  ?initial_value:bytes ->
  ?value_len:int ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t
(** [gc_depth] is CASGC's δ; omit it for plain CAS (no garbage
    collection). *)

val write :
  t -> writer:int -> at:float -> ?on_done:(unit -> unit) -> bytes -> unit

val read : t -> reader:int -> at:float -> ?on_done:(bytes -> unit) -> unit -> unit

val crash_server : t -> coordinate:int -> at:float -> unit
val history : t -> History.t
val cost : t -> Cost.t
val probe : t -> Probe.t
val initial_value : t -> bytes

val read_restarts : t -> int
(** Number of times a reader had to restart because garbage collection
    left it fewer than [k] elements (always 0 within the δ bound). *)

module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Tag = Protocol.Tag

module Messages = struct
  type t =
    | Query_tag of { op : int } [@lint.msg "abd -> abd"]
    | Query_tag_reply of { op : int; tag : Tag.t } [@lint.msg "abd -> abd"]
    | Query_full of { rid : int } [@lint.msg "abd -> abd"]
    | Query_full_reply of { rid : int; tag : Tag.t; value : bytes } [@lint.msg "abd -> abd"]
    | Store of { op : int; tag : Tag.t; value : bytes } [@lint.msg "abd -> abd"]
    | Store_ack of { op : int; tag : Tag.t } [@lint.msg "abd -> abd"]
  [@@lint.protocol]

  let data_bytes = function
    | Query_tag _ | Query_tag_reply _ | Query_full _ | Store_ack _ -> 0
    | Query_full_reply { value; _ } | Store { value; _ } -> Bytes.length value
end

type config = {
  params : Params.t;
  servers : int array;
  cost : Cost.t;
  history : History.t;
  initial_value : bytes
}

(* ------------------------------------------------------------------ *)
(* Server *)

module Server = struct
  type t = {
    config : config;
    coordinate : int;
    mutable tag : Tag.t;
    mutable value : bytes
  }

  let create config ~coordinate =
    Cost.storage_set config.cost ~server:coordinate
      ~bytes:(Bytes.length config.initial_value);
    { config; coordinate; tag = Tag.initial; value = config.initial_value }

  let handler t ctx ~src msg =
    match msg with
    | Messages.Query_tag { op } ->
      Engine.send ctx ~dst:src (Messages.Query_tag_reply { op; tag = t.tag })
    | Messages.Query_full { rid } ->
      Cost.comm t.config.cost ~op:rid ~bytes:(Bytes.length t.value);
      Engine.send ctx ~dst:src
        (Messages.Query_full_reply { rid; tag = t.tag; value = t.value })
    | Messages.Store { op; tag; value } ->
      if Tag.( > ) tag t.tag then begin
        t.tag <- tag;
        t.value <- value;
        Cost.storage_set t.config.cost ~server:t.coordinate
          ~bytes:(Bytes.length value)
      end;
      Engine.send ctx ~dst:src (Messages.Store_ack { op; tag })
    | Messages.Query_tag_reply _ | Messages.Query_full_reply _
    | Messages.Store_ack _ ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Clients *)

module Writer = struct
  type phase =
    | Idle
    | Query of {
        op : int;
        value : bytes;
        replies : (int, unit) Hashtbl.t;
        mutable best : Tag.t
      }
    | Store of { op : int; acks : (int, unit) Hashtbl.t }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (unit -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let invoke t ctx ~value ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Store _ -> invalid_arg "Abd.Writer.invoke: busy");
    let op =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Write ~at:(Engine.now_ctx ctx)
    in
    History.set_value t.config.history ~op value;
    t.on_done <- on_done;
    t.phase <- Query { op; value; replies = Hashtbl.create 8; best = Tag.initial };
    Array.iter
      (fun s -> Engine.send ctx ~dst:s (Messages.Query_tag { op }))
      t.config.servers;
    op

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Query_tag_reply { op; tag }, Query q when q.op = op ->
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then q.best <- tag;
      if Hashtbl.length q.replies >= Params.majority t.config.params then begin
        let tw = Tag.next q.best ~w:(Engine.self ctx) in
        History.set_tag t.config.history ~op tw;
        t.phase <- Store { op; acks = Hashtbl.create 8 };
        Array.iter
          (fun s ->
            Cost.comm t.config.cost ~op ~bytes:(Bytes.length q.value);
            Engine.send ctx ~dst:s
              (Messages.Store { op; tag = tw; value = q.value }))
          t.config.servers
      end
    | Messages.Store_ack { op; tag = _ }, Store s when s.op = op ->
      Hashtbl.replace s.acks src ();
      if Hashtbl.length s.acks >= Params.majority t.config.params then begin
        History.respond t.config.history ~op ~at:(Engine.now_ctx ctx);
        t.phase <- Idle;
        match t.on_done with
        | Some callback ->
          t.on_done <- None;
          callback ()
        | None -> ()
      end
    | ( ( Messages.Query_tag _ | Messages.Query_tag_reply _
        | Messages.Query_full _ | Messages.Query_full_reply _
        | Messages.Store _ | Messages.Store_ack _ ),
        (Idle | Query _ | Store _) ) ->
      ()
end

module Reader = struct
  type phase =
    | Idle
    | Query of {
        rid : int;
        replies : (int, unit) Hashtbl.t;
        mutable best : Tag.t;
        mutable best_value : bytes;
        mutable all_agree : bool
      }
    | Write_back of { rid : int; value : bytes; acks : (int, unit) Hashtbl.t }

  type t = {
    config : config;
    mutable phase : phase;
    mutable on_done : (bytes -> unit) option
  }

  let create config = { config; phase = Idle; on_done = None }

  let invoke t ctx ?on_done () =
    (match t.phase with
    | Idle -> ()
    | Query _ | Write_back _ -> invalid_arg "Abd.Reader.invoke: busy");
    let rid =
      History.invoke t.config.history ~client:(Engine.self ctx)
        ~kind:History.Read ~at:(Engine.now_ctx ctx)
    in
    t.on_done <- on_done;
    t.phase <-
      Query
        { rid;
          replies = Hashtbl.create 8;
          best = Tag.initial;
          best_value = t.config.initial_value;
          all_agree = true
        };
    Array.iter
      (fun s -> Engine.send ctx ~dst:s (Messages.Query_full { rid }))
      t.config.servers;
    rid

  let finish t ~rid value =
    t.phase <- Idle;
    match t.on_done with
    | Some callback ->
      t.on_done <- None;
      callback value
    | None -> ignore rid

  let handler t ctx ~src msg =
    match (msg, t.phase) with
    | Messages.Query_full_reply { rid; tag; value }, Query q when q.rid = rid
      ->
      if Hashtbl.length q.replies > 0 && not (Tag.equal tag q.best) then
        q.all_agree <- false;
      Hashtbl.replace q.replies src ();
      if Tag.( > ) tag q.best then begin
        q.best <- tag;
        q.best_value <- value
      end;
      if Hashtbl.length q.replies >= Params.majority t.config.params then begin
        History.set_tag t.config.history ~op:rid q.best;
        History.set_value t.config.history ~op:rid q.best_value;
        if q.all_agree then begin
          (* Every majority member already holds the winning pair: the
             write-back is unnecessary and skipping it keeps the
             quiescent read cost at n, as Table I accounts it. *)
          History.respond t.config.history ~op:rid ~at:(Engine.now_ctx ctx);
          finish t ~rid q.best_value
        end
        else begin
          t.phase <-
            Write_back { rid; value = q.best_value; acks = Hashtbl.create 8 };
          Array.iter
            (fun s ->
              Cost.comm t.config.cost ~op:rid
                ~bytes:(Bytes.length q.best_value);
              Engine.send ctx ~dst:s
                (Messages.Store { op = rid; tag = q.best; value = q.best_value }))
            t.config.servers
        end
      end
    | Messages.Store_ack { op; tag = _ }, Write_back w when w.rid = op ->
      Hashtbl.replace w.acks src ();
      if Hashtbl.length w.acks >= Params.majority t.config.params then begin
        History.respond t.config.history ~op ~at:(Engine.now_ctx ctx);
        finish t ~rid:op w.value
      end
    | ( ( Messages.Query_tag _ | Messages.Query_tag_reply _
        | Messages.Query_full _ | Messages.Query_full_reply _
        | Messages.Store _ | Messages.Store_ack _ ),
        (Idle | Query _ | Write_back _) ) ->
      ()
end

(* ------------------------------------------------------------------ *)
(* Deployment *)

type t = {
  engine : Messages.t Engine.t;
  config : config;
  writers : Writer.t array;
  writer_pids : int array;
  readers : Reader.t array;
  reader_pids : int array
}

let deploy ~engine ~params ?(initial_value = Bytes.empty) ?value_len
    ~num_writers ~num_readers () =
  let n = Params.n params in
  let value_len =
    match value_len with
    | Some l -> l
    | None ->
      let l = Bytes.length initial_value in
      if l > 0 then l else 1024
  in
  let server_pids =
    Array.init n (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "abd-server%d" i))
  in
  let config =
    { params;
      servers = server_pids;
      cost = Cost.create ~value_len;
      history = History.create ();
      initial_value
    }
  in
  Array.iteri
    (fun i pid ->
      Engine.set_handler engine pid
        (Server.handler (Server.create config ~coordinate:i)))
    server_pids;
  let writer_pids =
    Array.init num_writers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "abd-writer%d" i))
  in
  let writers = Array.init num_writers (fun _ -> Writer.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Writer.handler writers.(i)))
    writer_pids;
  let reader_pids =
    Array.init num_readers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "abd-reader%d" i))
  in
  let readers = Array.init num_readers (fun _ -> Reader.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Reader.handler readers.(i)))
    reader_pids;
  { engine; config; writers; writer_pids; readers; reader_pids }

let write t ~writer ~at ?on_done value =
  Engine.inject t.engine ~at t.writer_pids.(writer) (fun ctx ->
      ignore (Writer.invoke t.writers.(writer) ctx ~value ?on_done ()))

let read t ~reader ~at ?on_done () =
  Engine.inject t.engine ~at t.reader_pids.(reader) (fun ctx ->
      ignore (Reader.invoke t.readers.(reader) ctx ?on_done ()))

let crash_server t ~coordinate ~at =
  Engine.crash_at t.engine t.config.servers.(coordinate) at

let history t = t.config.history
let cost t = t.config.cost
let initial_value t = t.config.initial_value

(** A server's checksummed fragment store.

    One [(tag, coded element)] pair — SODA's whole per-server storage —
    guarded by a content checksum computed at {!store} time and verified
    on every {!read}. Bit-rot (a payload silently changing under the
    checksum, injected by {!rot} / [Deployment.corrupt_server]) is
    therefore detected at the first subsequent access, and the store
    flips to {e quarantined}: reads keep failing until fresh bytes are
    written through {!store} (a newer write adopted by the server, a
    crash-repair, or the scrubber's targeted fragment repair), which
    recomputes the checksum and lifts the quarantine.

    Checksumming is pure local arithmetic (no messages, no randomness),
    so it is always on — with healing disabled a deployment's traces
    stay bit-identical, it just never rots. *)

module Fragment = Erasure.Fragment
module Tag = Protocol.Tag

type t

val create : tag:Tag.t -> fragment:Fragment.t -> t

val store : t -> tag:Tag.t -> fragment:Fragment.t -> unit
(** Replace the stored pair, recompute the checksum, clear any
    quarantine — every legitimate write path heals rot by overwrite. *)

val tag : t -> Tag.t
(** The stored tag. Tags are metadata kept outside the checksummed
    payload; rot does not invalidate them, so a quarantined server still
    answers tag queries. *)

val read : t -> [ `Ok of Fragment.t | `Corrupt ]
(** Verify-then-read. [`Corrupt] marks the store quarantined (sticky
    until the next {!store}). *)

val fragment_unchecked : t -> Fragment.t
(** The raw stored fragment, bypassing verification — for tests and
    repair-reply accounting only. *)

val quarantined : t -> bool

val verify : t -> bool
(** Non-mutating checksum check ([true] = payload matches). *)

val rot : t -> seed:int -> unit
(** Fault injection: deterministically garble the stored payload
    {e without} updating the checksum (see {!Fragment.corrupt}). *)

val checksum : Fragment.t -> int
(** The FNV-1a payload checksum, exposed for tests. *)

module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe

type t = {
  engine : Messages.t Engine.t;
  config : Config.t;
  servers : Server.t array;
  writers : Writer.t array;
  writer_pids : int array;
  readers : Reader.t array;
  reader_pids : int array;
  (* repair traffic is charged to synthetic op ids scoped to this
     deployment (one deployment = one register = one ledger), so id
     streams are reproducible regardless of what other deployments the
     process hosts — keyspaces scope theirs per key the same way *)
  repair_seq : int ref
}

let repair_op_base = 1_000_000

let repair_server t ~coordinate ~at =
  let pid = t.config.Config.servers.(coordinate) in
  let op = repair_op_base + !(t.repair_seq) in
  incr t.repair_seq;
  Engine.restore_at t.engine pid at;
  (* the injection is pushed after the restore event at the same
     timestamp, so it runs on the freshly restored process *)
  Engine.inject t.engine ~at pid (fun ctx ->
      Server.begin_repair t.servers.(coordinate) ctx ~op);
  op

let deploy ~engine ~params ?initial_value ?value_len ?error_prone
    ?disperse_step ?md_mode ?gossip ?plane ?healing ?systematic ~num_writers
    ~num_readers () =
  if num_writers < 0 || num_readers < 0 then
    invalid_arg "Deployment.deploy: negative client count";
  let n = Params.n params in
  let server_pids =
    Array.init n (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "server%d" i))
  in
  (* client retries are armed exactly when sends are retransmitted: over
     the raw transport they could not mask losses anyway, and leaving
     them off keeps raw runs identical to the paper's retry-free
     clients *)
  let client_retry =
    if Engine.reliable_transport engine then
      Some Config.default_client_retry_interval
    else None
  in
  let config =
    Config.make ~params ~servers:server_pids ?initial_value ?value_len
      ?error_prone ?disperse_step ?md_mode ?gossip ?plane ?client_retry
      ?healing ?systematic ()
  in
  let servers =
    Array.init n (fun coordinate -> Server.create config ~coordinate)
  in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Server.handler servers.(i)))
    server_pids;
  let writer_pids =
    Array.init num_writers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "writer%d" i))
  in
  let writers = Array.init num_writers (fun _ -> Writer.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Writer.handler writers.(i)))
    writer_pids;
  let reader_pids =
    Array.init num_readers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "reader%d" i))
  in
  let readers = Array.init num_readers (fun _ -> Reader.create config) in
  Array.iteri
    (fun i pid -> Engine.set_handler engine pid (Reader.handler readers.(i)))
    reader_pids;
  let t =
    { engine; config; servers; writers; writer_pids; readers; reader_pids;
      repair_seq = ref 0 }
  in
  (match config.Config.healing with
  | None -> ()
  | Some _ ->
    (* Autonomous crash-repair hook, pulled by any server whose detector
       collects an f+1 suspicion quorum. Guards: the suspect must really
       be crashed (a partitioned server must not have its state wiped),
       and at most one launch per crash episode — the hook can be pulled
       by several servers at the same timestamp, before the restore event
       has dispatched, so "strictly later than the last launch" is the
       dedup (any strictly-later call for a still-crashed server is a new
       crash: the gated nemesis never crashes a repairing server). *)
    let launch_at =
      Array.make (Array.length server_pids) Float.neg_infinity
    in
    config.Config.auto_repair <-
      Some
        (fun coordinate ->
          if Engine.is_crashed engine server_pids.(coordinate) then begin
            let now = Engine.now engine in
            if now > launch_at.(coordinate) then begin
              launch_at.(coordinate) <- now;
              let stats = config.Config.heal_stats in
              stats.Config.auto_repairs <- stats.Config.auto_repairs + 1;
              Engine.mark_auto_repair engine server_pids.(coordinate);
              Probe.emit config.Config.probe
                (Probe.Auto_repair { server = coordinate; time = now });
              ignore (repair_server t ~coordinate ~at:now : int)
            end
          end);
    (* arm every server's detector and scrubber at time zero *)
    Array.iteri
      (fun i pid ->
        Engine.inject engine ~at:0.0 pid (fun ctx ->
            Server.start_healing servers.(i) ctx))
      server_pids);
  t

let write t ~writer ~at ?on_done value =
  Engine.inject t.engine ~at t.writer_pids.(writer) (fun ctx ->
      ignore (Writer.invoke t.writers.(writer) ctx ~value ?on_done ()))

let read t ~reader ~at ?on_done () =
  Engine.inject t.engine ~at t.reader_pids.(reader) (fun ctx ->
      ignore (Reader.invoke t.readers.(reader) ctx ?on_done ()))

let crash_server t ~coordinate ~at =
  (* the episode-start probe is emitted synchronously (never via an
     injected action) and only when healing is armed, so unhealed
     deployments keep both their event schedule and their probe stream
     unchanged *)
  (match t.config.Config.healing with
  | Some _ ->
    Probe.emit t.config.Config.probe
      (Probe.Crash_injected { server = coordinate; time = at })
  | None -> ());
  Engine.crash_at t.engine t.config.Config.servers.(coordinate) at

let corrupt_server t ~coordinate ~at =
  let pid = t.config.Config.servers.(coordinate) in
  (* seeded from the schedule so the injected garbage is replayable;
     the probe is emitted inside the action (a rot on a crashed server
     is discarded along with the injection) *)
  let seed = (coordinate * 65_537) + int_of_float (at *. 1024.0) in
  Engine.inject t.engine ~at pid (fun ctx ->
      Probe.emit t.config.Config.probe
        (Probe.Rot_injected { server = coordinate; time = Engine.now_ctx ctx });
      Server.corrupt_disk t.servers.(coordinate) ~seed)

let set_error_window t ~coordinate window =
  Server.set_error_window t.servers.(coordinate) window

let scrub_clean t = Array.for_all Server.disk_ok t.servers

let all_live t =
  Array.for_all
    (fun pid -> not (Engine.is_crashed t.engine pid))
    t.config.Config.servers

(* All links between the isolated servers and every other process of
   the deployment, both directions, in a deterministic order (so
   partition and heal name the same link-set and traces satisfy the
   alternation axiom). *)
let isolation_links t ~coordinates =
  let isolated = Array.make (Array.length t.config.Config.servers) false in
  List.iter
    (fun c ->
      if c < 0 || c >= Array.length isolated then
        invalid_arg "Deployment: partition coordinate out of range";
      isolated.(c) <- true)
    coordinates;
  let inside =
    List.map (fun c -> t.config.Config.servers.(c)) (List.sort_uniq compare coordinates)
  in
  let outside = ref [] in
  Array.iteri
    (fun c pid -> if not isolated.(c) then outside := pid :: !outside)
    t.config.Config.servers;
  Array.iter (fun pid -> outside := pid :: !outside) t.writer_pids;
  Array.iter (fun pid -> outside := pid :: !outside) t.reader_pids;
  let outside = List.rev !outside in
  List.concat_map
    (fun inner -> List.concat_map (fun outer -> [ (inner, outer); (outer, inner) ]) outside)
    inside

let partition_servers t ~coordinates ~at =
  Engine.partition_at t.engine ~links:(isolation_links t ~coordinates) ~at

let heal_servers t ~coordinates ~at =
  Engine.heal_at t.engine ~links:(isolation_links t ~coordinates) ~at

let crash_writer t ~writer ~at = Engine.crash_at t.engine t.writer_pids.(writer) at
let crash_reader t ~reader ~at = Engine.crash_at t.engine t.reader_pids.(reader) at
let engine t = t.engine

let repairing t =
  Array.exists (fun s -> Server.repairing s) t.servers

let history t = t.config.Config.history
let cost t = t.config.Config.cost
let probe t = t.config.Config.probe
let config t = t.config
let params t = t.config.Config.params
let server_pid t ~coordinate = t.config.Config.servers.(coordinate)
let writer_pid t ~writer = t.writer_pids.(writer)
let reader_pid t ~reader = t.reader_pids.(reader)
let server t ~coordinate = t.servers.(coordinate)
let initial_value t = t.config.Config.initial_value

(* ------------------------------------------------------------------ *)
(* The keyspace-first front door: a deployment is described by its
   physical topology plus a placement over it, and yields a sharded
   multi-object keyspace. [deploy] above remains the single-register
   shim (equivalently, [Keyspace.create ~mode:`Single]). *)

let create ~engine ~topology ~placement ?mode ?initial_value ?value_len
    ?error_prone ?disperse_step ?md_mode ?gossip ?plane ?systematic
    ~num_writers ~num_readers () =
  if not (Topology.equal topology (Placement.topology placement)) then
    invalid_arg "Deployment.create: placement was built over a different topology";
  Keyspace.create ~engine ~placement ?mode ?initial_value ?value_len
    ?error_prone ?disperse_step ?md_mode ?gossip ?plane ?systematic
    ~num_writers ~num_readers ()

(** Wire messages of the SODA / SODA{_err} protocol.

    Three families, mirroring Section IV of the paper:
    - client phase messages ([WRITE-GET], [READ-GET] and their replies,
      write acknowledgements) — metadata only;
    - the message-disperse traffic ([Md_full], [Md_coded] for MD-VALUE
      and [Md_meta] for MD-META);
    - server-to-reader relays of coded elements ([Relay]) — the data
      traffic that makes up the read cost;
    - the repair extension's traffic ([Repair_get] / [Repair_reply]):
      a restored server fetching the coded elements it needs to rebuild
      its own (see {!Server.begin_repair}).

    Every MD message carries a {!mid} (origin process and per-origin
    sequence number) used by servers to deliver each dispersal exactly
    once. *)

module Tag = Protocol.Tag
module Fragment = Erasure.Fragment

type mid = private int
(** Origin process and per-origin sequence number, packed into one
    immediate (origin in the low 20 bits — the simulator's pid cap) so
    the servers' deduplication tables key on a plain [int]. *)

val mid : origin:int -> seq:int -> mid
val mid_origin : mid -> int
val mid_seq : mid -> int

(** Payloads delivered by the MD-META primitive. [rid] is the unique id
    of the read operation (the paper's reader id extended with a
    per-operation counter, cf. "Additional notes on SODA" (3)). *)
type meta =
  | Read_value of { rid : int; reader : int; tr : Tag.t }
  | Read_complete of { rid : int; reader : int; tr : Tag.t }
  | Read_disperse of { tag : Tag.t; server_index : int; rid : int }

type gossip_entry = { tag : Tag.t; server_index : int; rid : int }
(** One deferred READ-DISPERSE announcement. Under the coalesced plane
    ({!Config.plane}) servers accumulate these in a per-destination
    outbox instead of broadcasting each as a standalone MD-META round,
    and ship them either piggybacked on the next server-to-server
    message ([Envelope]) or in a standalone [Gossip] once the
    bounded-staleness timer fires. Applying an entry is the same
    monotone [h]-set insertion as a standalone READ-DISPERSE, so
    duplicates (retransmissions included) are harmless. *)

type keyed_entry = { ke_key : int; ke_entry : gossip_entry }
(** A gossip entry qualified by the logical key it belongs to. The
    shared server plane of a {!Keyspace} accumulates these across every
    key instance a physical server hosts, so one [Keyed_gossip] (or one
    [Keyed_envelope] piggyback) flushes the deferred READ-DISPERSE
    traffic of many keys to a peer at once. *)

type t =
  | Write_get of { op : int }
  | Write_get_reply of { op : int; tag : Tag.t }
  | Write_ack of { op : int; tag : Tag.t }
  | Read_get of { rid : int }
  | Read_get_reply of { rid : int; tag : Tag.t }
  | Relay of { rid : int; tag : Tag.t; fragment : Fragment.t }
  | Md_full of { mid : mid; op : int; tag : Tag.t; value : bytes }
  | Md_coded of { mid : mid; op : int; tag : Tag.t; fragment : Fragment.t }
  | Md_meta of { mid : mid; meta : meta }
  | Repair_get of { op : int }
  | Repair_reply of { op : int; tag : Tag.t; fragment : Fragment.t }
  | Gossip of { entries : gossip_entry list }
      (** Standalone flush of a gossip outbox (bounded-staleness timer). *)
  | Envelope of { entries : gossip_entry list; msg : t }
      (** [msg] with the destination's pending gossip piggybacked on it.
          Never nested: [msg] is itself neither [Envelope] nor [Gossip]. *)
  | Relay_batch of { rid : int; items : (Tag.t * Fragment.t) list }
      (** Relays to one registered reader across consecutive writes,
          framed as a single message (one header, many zero-copy
          fragment views). *)
  | Heartbeat of { coordinate : int }
      (** Failure-detector liveness beacon, broadcast server-to-server
          every [healing.heartbeat_period] (see {!Config.healing}).
          Pure metadata. *)
  | Suspect_vote of { target : int; voter : int }
      (** [voter]'s declaration that coordinate [target] has been silent
          past the suspicion timeout. A server that collects [f + 1]
          distinct voters (itself included) for [target] triggers the
          deployment's auto-repair hook. Pure metadata. *)
  | Keyed of { key : int; msg : t }
      (** [msg] of logical key [key]'s SODA instance, travelling the
          shared plane of a {!Keyspace}. The plane handler unwraps it
          and dispatches to that key's per-server automaton (or to the
          client's per-key lane). Never nested. *)
  | Keyed_gossip of { kentries : keyed_entry list }
      (** Standalone cross-key flush of a shared-plane server's gossip
          outbox (bounded-staleness timer), covering every key it hosts. *)
  | Keyed_envelope of { kentries : keyed_entry list; key : int; msg : t }
      (** [Keyed { key; msg }] with the destination server's pending
          cross-key gossip piggybacked on it. [msg] is the inner
          (un-keyed) protocol message; never nested. *)
  | Keyed_batch of { kitems : (int * t) list }
      (** Relays to one client process across {e different} keys, framed
          as a single message — the cross-key analogue of
          [Relay_batch], produced by the shared plane's per-destination
          relay window. *)

val data_bytes : t -> int
(** Bytes of {e data} (value or coded element) the message carries; zero
    for pure metadata. This is what {!Cost} charges. *)

val logical_units : t -> int
(** How many standalone messages the frame replaces: 1 for a plain
    message, the entry count for gossip, entries + inner for envelopes,
    the item sum for batches. Pass as [Engine.create ~weigh] to measure
    a plane's coalescing factor via [Engine.payload_units]. *)

val pp : Format.formatter -> t -> unit

(** The physical shape of a server fleet: server count plus a failure
    domain (rack, zone) for each server.

    Replaces the positional-optional soup that [Deployment.deploy] grew
    over the PRs: a keyspace-first deployment is described by a
    topology (this module), a {!Placement} (geometry preset + spread
    policy over the topology) and the client counts — see
    [Deployment.create]. The topology is purely descriptive; fault
    {e correlation} comes from the chaos harness partitioning or
    crashing a whole domain at once, and fault {e tolerance} from
    {!Placement} spreading each key's [n] fragments across domains. *)

type t

val make : servers:int -> domains:int -> unit -> t
(** [servers] processes assigned round-robin to [domains] failure
    domains (server [i] lands in domain [i mod domains]), so domain
    sizes differ by at most one.
    @raise Invalid_argument unless [1 <= domains <= servers]. *)

val custom : int array -> t
(** Explicit assignment: entry [i] is server [i]'s domain id. Ids must
    be dense in [0, max). The array is copied.
    @raise Invalid_argument on an empty array, a negative id or a gap
    in the id range. *)

val servers : t -> int
val num_domains : t -> int

val domain_of : t -> int -> int
(** Domain id of one server. @raise Invalid_argument out of range. *)

val domain_members : t -> int -> int list
(** Servers of one domain, ascending.
    @raise Invalid_argument out of range. *)

val min_domain_size : t -> int
(** Size of the smallest domain — the binding constraint on how many
    fragments per domain a placement may need (see [Placement.create]). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

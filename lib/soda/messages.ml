module Tag = Protocol.Tag
module Fragment = Erasure.Fragment

(* Packed as an immediate so MD deduplication tables hash an int rather
   than a record: origin pid in the low 20 bits (the simulator's pid
   cap), per-origin sequence number above. *)
type mid = int

let mid ~origin ~seq = (seq lsl 20) lor origin
let mid_origin mid = mid land 0xFFFFF
let mid_seq mid = mid lsr 20

type meta =
  | Read_value of { rid : int; reader : int; tr : Tag.t }
  | Read_complete of { rid : int; reader : int; tr : Tag.t }
  | Read_disperse of { tag : Tag.t; server_index : int; rid : int }

type t =
  | Write_get of { op : int }
  | Write_get_reply of { op : int; tag : Tag.t }
  | Write_ack of { op : int; tag : Tag.t }
  | Read_get of { rid : int }
  | Read_get_reply of { rid : int; tag : Tag.t }
  | Relay of { rid : int; tag : Tag.t; fragment : Fragment.t }
  | Md_full of { mid : mid; op : int; tag : Tag.t; value : bytes }
  | Md_coded of { mid : mid; op : int; tag : Tag.t; fragment : Fragment.t }
  | Md_meta of { mid : mid; meta : meta }
  | Repair_get of { op : int }
  | Repair_reply of { op : int; tag : Tag.t; fragment : Fragment.t }

let data_bytes = function
  | Write_get _ | Write_get_reply _ | Write_ack _ | Read_get _
  | Read_get_reply _ | Md_meta _ | Repair_get _ ->
    0
  | Relay { fragment; _ } | Md_coded { fragment; _ }
  | Repair_reply { fragment; _ } ->
    Fragment.size fragment
  | Md_full { value; _ } -> Bytes.length value

let pp_meta ppf = function
  | Read_value { rid; reader; tr } ->
    Format.fprintf ppf "READ-VALUE(rid=%d r=%d tr=%a)" rid reader Tag.pp tr
  | Read_complete { rid; reader; tr } ->
    Format.fprintf ppf "READ-COMPLETE(rid=%d r=%d tr=%a)" rid reader Tag.pp tr
  | Read_disperse { tag; server_index; rid } ->
    Format.fprintf ppf "READ-DISPERSE(t=%a s=%d rid=%d)" Tag.pp tag
      server_index rid

let pp ppf = function
  | Write_get { op } -> Format.fprintf ppf "WRITE-GET(op=%d)" op
  | Write_get_reply { op; tag } ->
    Format.fprintf ppf "WRITE-GET-REPLY(op=%d t=%a)" op Tag.pp tag
  | Write_ack { op; tag } ->
    Format.fprintf ppf "WRITE-ACK(op=%d t=%a)" op Tag.pp tag
  | Read_get { rid } -> Format.fprintf ppf "READ-GET(rid=%d)" rid
  | Read_get_reply { rid; tag } ->
    Format.fprintf ppf "READ-GET-REPLY(rid=%d t=%a)" rid Tag.pp tag
  | Relay { rid; tag; fragment } ->
    Format.fprintf ppf "RELAY(rid=%d t=%a %a)" rid Tag.pp tag Fragment.pp
      fragment
  | Md_full { mid; op; tag; value } ->
    Format.fprintf ppf "MD-FULL(mid=%d.%d op=%d t=%a |v|=%d)" (mid_origin mid)
      (mid_seq mid) op Tag.pp tag (Bytes.length value)
  | Md_coded { mid; op; tag; fragment } ->
    Format.fprintf ppf "MD-CODED(mid=%d.%d op=%d t=%a %a)" (mid_origin mid)
      (mid_seq mid) op Tag.pp tag Fragment.pp fragment
  | Md_meta { mid; meta } ->
    Format.fprintf ppf "MD-META(mid=%d.%d %a)" (mid_origin mid) (mid_seq mid)
      pp_meta meta
  | Repair_get { op } -> Format.fprintf ppf "REPAIR-GET(op=%d)" op
  | Repair_reply { op; tag; fragment } ->
    Format.fprintf ppf "REPAIR-REPLY(op=%d t=%a %a)" op Tag.pp tag Fragment.pp
      fragment

module Tag = Protocol.Tag
module Fragment = Erasure.Fragment

(* Packed as an immediate so MD deduplication tables hash an int rather
   than a record: origin pid in the low 20 bits (the simulator's pid
   cap), per-origin sequence number above. *)
type mid = int

let mid ~origin ~seq = (seq lsl 20) lor origin
let mid_origin mid = mid land 0xFFFFF
let mid_seq mid = mid lsr 20

(* The MD-relayed metadata alphabet. Routes below name role source
   files in this directory; soda-lint's M-pass checks every declared
   handler binds the payload somewhere and every declared sender
   constructs the message (see DESIGN.md, "Static analysis v2"). *)
type meta =
  | Read_value of { rid : int; reader : int; tr : Tag.t }
      [@lint.msg "reader -> server"]
  | Read_complete of { rid : int; reader : int; tr : Tag.t }
      [@lint.msg "reader -> server"]
  | Read_disperse of { tag : Tag.t; server_index : int; rid : int }
      [@lint.msg "server -> server"]
[@@lint.protocol]

(* One deferred READ-DISPERSE announcement, accumulated in a server's
   per-destination outbox instead of being broadcast standalone. *)
type gossip_entry = { tag : Tag.t; server_index : int; rid : int }

(* A gossip entry qualified by the key instance it belongs to — the
   cross-key analogue of [gossip_entry], accumulated in a shared-plane
   server's per-destination outbox across all keys it hosts. *)
type keyed_entry = { ke_key : int; ke_entry : gossip_entry }

(* The SODA wire alphabet with its declared routes ("sender ->
   handler", comma-separated for multi-route constructors). The M-pass
   cross-checks these against observed emissions (Texp_construct in a
   role file) and handlers (a match arm binding the payload); a
   wildcard [C _] arm is an explicit ignore, not a handler. *)
type t =
  | Write_get of { op : int } [@lint.msg "writer -> server"]
  | Write_get_reply of { op : int; tag : Tag.t }
      [@lint.msg "server -> writer"]
  | Write_ack of { op : int; tag : Tag.t } [@lint.msg "server -> writer"]
  | Read_get of { rid : int } [@lint.msg "reader -> server"]
  | Read_get_reply of { rid : int; tag : Tag.t }
      [@lint.msg "server -> reader"]
  | Relay of { rid : int; tag : Tag.t; fragment : Fragment.t }
      [@lint.msg "server -> reader"]
  | Md_full of { mid : mid; op : int; tag : Tag.t; value : bytes }
      [@lint.msg "md server -> server"]
      [@lint.allow
        "M3: the server leg forwards the incoming Md_full value down the \
         chain as-is (server.ml on_md_full) — a variable send the static \
         emission check cannot see"]
  | Md_coded of { mid : mid; op : int; tag : Tag.t; fragment : Fragment.t }
      [@lint.msg "md server -> server"]
  | Md_meta of { mid : mid; meta : meta } [@lint.msg "md -> server"]
  | Repair_get of { op : int } [@lint.msg "server -> server"]
  | Repair_reply of { op : int; tag : Tag.t; fragment : Fragment.t }
      [@lint.msg "server -> server"]
  | Gossip of { entries : gossip_entry list } [@lint.msg "server -> server"]
  | Envelope of { entries : gossip_entry list; msg : t }
      [@lint.msg "server -> server"] [@lint.envelope]
  | Relay_batch of { rid : int; items : (Tag.t * Fragment.t) list }
      [@lint.msg "server -> reader"]
  | Heartbeat of { coordinate : int } [@lint.msg "server -> server"]
  | Suspect_vote of { target : int; voter : int }
      [@lint.msg "server -> server"]
  | Keyed of { key : int; msg : t }
      [@lint.msg "keyspace -> keyspace"] [@lint.envelope]
  | Keyed_gossip of { kentries : keyed_entry list }
      [@lint.msg "keyspace -> keyspace"]
  | Keyed_envelope of { kentries : keyed_entry list; key : int; msg : t }
      [@lint.msg "keyspace -> keyspace"] [@lint.envelope]
  | Keyed_batch of { kitems : (int * t) list }
      [@lint.msg "keyspace -> keyspace"]
[@@lint.protocol]

let rec data_bytes = function
  | Write_get _ | Write_get_reply _ | Write_ack _ | Read_get _
  | Read_get_reply _ | Md_meta _ | Repair_get _ | Gossip _ | Heartbeat _
  | Suspect_vote _ ->
    0
  | Relay { fragment; _ } | Md_coded { fragment; _ }
  | Repair_reply { fragment; _ } ->
    Fragment.size fragment
  | Md_full { value; _ } -> Bytes.length value
  | Envelope { msg; _ } -> data_bytes msg
  | Relay_batch { items; _ } ->
    List.fold_left (fun acc (_, fr) -> acc + Fragment.size fr) 0 items
  | Keyed { msg; _ } | Keyed_envelope { msg; _ } -> data_bytes msg
  | Keyed_gossip _ -> 0
  | Keyed_batch { kitems } ->
    List.fold_left (fun acc (_, m) -> acc + data_bytes m) 0 kitems

(* How many standalone messages one wire frame replaces: each
   piggybacked gossip entry and each batched item counts for the
   message it would have been on the unbatched plane. Feeds the
   engine's [payload_units] counter ([Engine.create ?weigh]). *)
let rec logical_units = function
  | Write_get _ | Write_get_reply _ | Write_ack _ | Read_get _
  | Read_get_reply _ | Relay _ | Md_full _ | Md_coded _ | Md_meta _
  | Repair_get _ | Repair_reply _ | Heartbeat _ | Suspect_vote _ ->
    1
  | Gossip { entries } -> List.length entries
  | Envelope { entries; msg } -> List.length entries + logical_units msg
  | Relay_batch { items; _ } -> List.length items
  | Keyed { msg; _ } -> logical_units msg
  | Keyed_gossip { kentries } -> List.length kentries
  | Keyed_envelope { kentries; msg; _ } ->
    List.length kentries + logical_units msg
  | Keyed_batch { kitems } ->
    List.fold_left (fun acc (_, m) -> acc + logical_units m) 0 kitems

let pp_meta ppf = function
  | Read_value { rid; reader; tr } ->
    Format.fprintf ppf "READ-VALUE(rid=%d r=%d tr=%a)" rid reader Tag.pp tr
  | Read_complete { rid; reader; tr } ->
    Format.fprintf ppf "READ-COMPLETE(rid=%d r=%d tr=%a)" rid reader Tag.pp tr
  | Read_disperse { tag; server_index; rid } ->
    Format.fprintf ppf "READ-DISPERSE(t=%a s=%d rid=%d)" Tag.pp tag
      server_index rid

(* Entry counts plus tag/rid ranges — enough to diff two replay traces
   by eye without dumping every element of a long envelope. *)
let pp_entries ppf entries =
  match entries with
  | [] -> Format.fprintf ppf "#0"
  | { tag; server_index; rid } :: rest ->
    let lo_t, hi_t, lo_r, hi_r, servers =
      List.fold_left
        (fun (lo_t, hi_t, lo_r, hi_r, servers) e ->
          ( (if Tag.( > ) lo_t e.tag then e.tag else lo_t),
            (if Tag.( > ) e.tag hi_t then e.tag else hi_t),
            min lo_r e.rid,
            max hi_r e.rid,
            servers + 1 ))
        (tag, tag, rid, rid, 1)
        rest
    in
    ignore (server_index : int);
    if Tag.compare lo_t hi_t = 0 && lo_r = hi_r then
      Format.fprintf ppf "#%d t=%a rid=%d" servers Tag.pp lo_t lo_r
    else
      Format.fprintf ppf "#%d t=%a..%a rid=%d..%d" servers Tag.pp lo_t Tag.pp
        hi_t lo_r hi_r

(* Cross-key envelopes: entry count and distinct-key count — per-key
   detail is recoverable from the per-key histories, not the trace. *)
let pp_kentries ppf = function
  | [] -> Format.fprintf ppf "#0"
  | kentries ->
    let keys =
      List.sort_uniq Int.compare (List.map (fun ke -> ke.ke_key) kentries)
    in
    Format.fprintf ppf "#%d keys=%d" (List.length kentries) (List.length keys)

let rec pp ppf = function
  | Write_get { op } -> Format.fprintf ppf "WRITE-GET(op=%d)" op
  | Write_get_reply { op; tag } ->
    Format.fprintf ppf "WRITE-GET-REPLY(op=%d t=%a)" op Tag.pp tag
  | Write_ack { op; tag } ->
    Format.fprintf ppf "WRITE-ACK(op=%d t=%a)" op Tag.pp tag
  | Read_get { rid } -> Format.fprintf ppf "READ-GET(rid=%d)" rid
  | Read_get_reply { rid; tag } ->
    Format.fprintf ppf "READ-GET-REPLY(rid=%d t=%a)" rid Tag.pp tag
  | Relay { rid; tag; fragment } ->
    Format.fprintf ppf "RELAY(rid=%d t=%a %a)" rid Tag.pp tag Fragment.pp
      fragment
  | Md_full { mid; op; tag; value } ->
    Format.fprintf ppf "MD-FULL(mid=%d.%d op=%d t=%a |v|=%d)" (mid_origin mid)
      (mid_seq mid) op Tag.pp tag (Bytes.length value)
  | Md_coded { mid; op; tag; fragment } ->
    Format.fprintf ppf "MD-CODED(mid=%d.%d op=%d t=%a %a)" (mid_origin mid)
      (mid_seq mid) op Tag.pp tag Fragment.pp fragment
  | Md_meta { mid; meta } ->
    Format.fprintf ppf "MD-META(mid=%d.%d %a)" (mid_origin mid) (mid_seq mid)
      pp_meta meta
  | Repair_get { op } -> Format.fprintf ppf "REPAIR-GET(op=%d)" op
  | Repair_reply { op; tag; fragment } ->
    Format.fprintf ppf "REPAIR-REPLY(op=%d t=%a %a)" op Tag.pp tag Fragment.pp
      fragment
  | Gossip { entries } -> Format.fprintf ppf "GOSSIP(%a)" pp_entries entries
  | Envelope { entries; msg } ->
    Format.fprintf ppf "ENVELOPE(%a | %a)" pp_entries entries pp msg
  | Relay_batch { rid; items } ->
    Format.fprintf ppf "RELAY-BATCH(rid=%d #%d %dB)" rid (List.length items)
      (List.fold_left (fun acc (_, fr) -> acc + Fragment.size fr) 0 items)
  | Heartbeat { coordinate } -> Format.fprintf ppf "HEARTBEAT(c=%d)" coordinate
  | Suspect_vote { target; voter } ->
    Format.fprintf ppf "SUSPECT-VOTE(target=%d by=%d)" target voter
  | Keyed { key; msg } -> Format.fprintf ppf "KEYED(k=%d %a)" key pp msg
  | Keyed_gossip { kentries } ->
    Format.fprintf ppf "KEYED-GOSSIP(%a)" pp_kentries kentries
  | Keyed_envelope { kentries; key; msg } ->
    Format.fprintf ppf "KEYED-ENVELOPE(%a | k=%d %a)" pp_kentries kentries key
      pp msg
  | Keyed_batch { kitems } ->
    Format.fprintf ppf "KEYED-BATCH(#%d %dB)" (List.length kitems)
      (List.fold_left (fun acc (_, m) -> acc + data_bytes m) 0 kitems)

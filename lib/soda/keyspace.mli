(** A sharded multi-object keyspace: many independent per-key SODA
    instances multiplexed over one shared plane of server processes.

    The paper's algorithm manages a single atomic register. Real
    deployments manage millions of objects, and giving each its own
    [n] processes would waste both processes and messages. A keyspace
    instead registers one fixed fleet of server processes (a
    {!Topology}) and runs each logical key as an independent [n,k]
    SODA instance {e on} that fleet: a {!Placement} maps the key to
    the [n] physical servers holding its fragments, and every
    protocol message crosses the wire wrapped in a key envelope
    ({!Messages.Keyed} and friends) so one process can host thousands
    of per-key server automata.

    Sharing the plane is what makes the multiplexing pay: READ-DISPERSE
    gossip from {e different} keys headed to the same peer coalesces
    into one {!Messages.Keyed_gossip} frame (or piggybacks on the next
    keyed send as a {!Messages.Keyed_envelope}), and client-bound
    relays share {!Messages.Keyed_batch} frames under the plane's
    relay window — so total messages per operation {e drops} as the
    key count grows, where independent deployments would stay flat.
    Atomicity remains per key: instances share wires but no protocol
    state.

    Instances materialize lazily on first use. Placement is a pure
    function of the key, so a keyspace built on the same engine with
    the same arguments reproduces the same traffic — all the
    determinism guarantees of {!Simnet.Engine} carry over. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity

type t

val create :
  engine:Messages.t Simnet.Engine.t ->
  placement:Placement.t ->
  ?mode:[ `Sharded | `Single ] ->
  ?initial_value:bytes ->
  ?value_len:int ->
  ?error_prone:int list ->
  ?disperse_step:float ->
  ?md_mode:[ `Chained | `Direct ] ->
  ?gossip:bool ->
  ?plane:Config.plane ->
  ?systematic:bool ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t
(** Register the fleet: one process per topology server (reserved
    first, in index order), then the writer and reader client
    processes. The optional arguments parameterize the shared
    configuration template exactly as in {!Config.make}; every key's
    instance derives from it ({!Config.derive}).

    [mode] (default [`Sharded]) selects the wire format. [`Sharded]
    wraps all traffic in key envelopes and coalesces across keys.
    [`Single] is the compatibility shim behind [Deployment.deploy]:
    it requires the topology to have exactly [n] servers, serves only
    key [0], wires handlers directly to that instance and sends bare
    (un-keyed) messages — traces are bit-identical to a PR-9
    deployment on the same engine.

    Clients are multi-lane: one protocol lane per (client, key) pair,
    so a client process may have operations in flight on many keys at
    once, but scheduling a second operation on the {e same} key of a
    busy lane is still a well-formedness violation.
    @raise Invalid_argument on negative client counts, or in
    [`Single] mode when the topology is not exactly [n] servers. *)

(** {1 Operations} *)

val write :
  t -> key:int -> writer:int -> at:float -> ?on_done:(unit -> unit) -> bytes -> unit
(** Schedule writer [writer]'s lane for [key] to invoke a write at
    simulated time [at], materializing the key's instance if needed.
    The operation lands in {!history}[ ~key]. *)

val read :
  t -> key:int -> reader:int -> at:float -> ?on_done:(bytes -> unit) -> unit -> unit

val materialize : t -> key:int -> unit
(** Force the key's instance into existence now (operations do this
    implicitly). Useful when fault injection or storage accounting
    must cover a key before its first operation.
    @raise Invalid_argument on a negative key, or in [`Single] mode on
    any key but [0]. *)

(** {1 Fault injection}

    Faults are machine-level: they hit a {e physical} server process
    and therefore every key instance it hosts. As long as each key
    sees at most [f] of its [n] placed servers crashed or isolated at
    once, atomicity and liveness survive per key — with a
    {!Placement.domain_safe} placement that budget covers the loss of
    any whole failure domain. *)

val crash_server : t -> server:int -> at:float -> unit
(** Crash the physical server with the given topology index.
    @raise Invalid_argument out of range. *)

val repair_server : t -> server:int -> at:float -> unit
(** Restore the process at [at] and start the repair protocol on every
    key instance it hosts (ascending key order). Each instance's
    repair gets its own key-scoped accounting op id
    ([1_000_000 + seq] within that instance), so repair traffic is
    charged to the right key's ledger. Pending cross-key outboxes and
    relay buffers are volatile and lost with the crash. *)

val corrupt_server : t -> server:int -> at:float -> unit
(** Silently garble the stored coded element of every hosted key
    instance (deterministically seeded per key and schedule), emitting
    a [Rot_injected] probe per instance. *)

val partition_servers : t -> servers:int list -> at:float -> unit
(** Blackhole every link between the listed physical servers and the
    rest of the keyspace (other servers and all clients), both
    directions. Heal with {!heal_servers} and the same list. *)

val heal_servers : t -> servers:int list -> at:float -> unit

val crash_domain : t -> domain:int -> at:float -> unit
(** {!crash_server} for every member of the failure domain. *)

val repair_domain : t -> domain:int -> at:float -> unit
val partition_domain : t -> domain:int -> at:float -> unit
val heal_domain : t -> domain:int -> at:float -> unit

val shutdown : t -> at:float -> unit
(** Crash every process of the keyspace (servers and clients) at
    [at] — the end-of-test quiesce. *)

(** {1 Observation} *)

val keys : t -> int list
(** Keys with materialized instances, ascending. *)

val engine : t -> Messages.t Simnet.Engine.t
val placement : t -> Placement.t
val topology : t -> Topology.t
val params : t -> Params.t
val initial_value : t -> bytes
val num_servers : t -> int
val num_writers : t -> int
val num_readers : t -> int
val server_pid : t -> server:int -> int
val writer_pid : t -> writer:int -> int
val reader_pid : t -> reader:int -> int

val config : t -> key:int -> Config.t
(** The key's derived instance configuration.
    @raise Invalid_argument if the key has no instance yet. *)

val history : t -> key:int -> History.t
val cost : t -> key:int -> Cost.t
val probe : t -> key:int -> Probe.t

val placement_of : t -> key:int -> int array
(** The physical server index of each coordinate of the key's
    instance (a copy). Placement is a pure function of the key, so
    this answers without materializing the instance.
    @raise Invalid_argument on a negative key, or in [`Single] mode on
    any key but [0]. *)

val all_complete : t -> bool
(** Every invoked operation on every key completed. *)

val check_atomicity : t -> (unit, int * Atomicity.violation) result
(** Check every key's history independently against its own initial
    value; [Error (key, v)] names the first offending key (ascending
    order). *)

val repairing : t -> bool
(** Some instance somewhere is mid-repair. *)

val scrub_clean : t -> bool
(** No instance holds a corrupted element. *)

val total_storage : t -> float
(** Sum over keys of the instance's maximum concurrent total storage,
    in value units — the multi-object analogue of the paper's
    [n/(n-f)] bound per register. *)

val all_live : t -> bool
(** No physical server process is currently crashed. *)

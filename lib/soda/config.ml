module Params = Protocol.Params
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module History = Protocol.History
module Mds = Erasure.Mds

type plane = {
  gossip_mode : [ `Broadcast | `Coalesced | `Off ];
  gossip_staleness : float;
  relay_batch : float option;
  meta_stagger : float option
}

let default_plane =
  { gossip_mode = `Broadcast;
    gossip_staleness = 25.0;
    relay_batch = None;
    meta_stagger = None
  }

let batched_plane =
  { gossip_mode = `Coalesced;
    gossip_staleness = 25.0;
    relay_batch = Some 0.25;
    meta_stagger = Some 4.0
  }

type healing = {
  heartbeat_period : float;
  suspicion_timeout : float;
  scrub_period : float
}

let default_healing =
  { heartbeat_period = 10.0; suspicion_timeout = 35.0; scrub_period = 50.0 }

type heal_stats = {
  mutable heartbeats_sent : int;
  mutable suspicions : int;
  mutable scrub_sweeps : int;
  mutable scrub_hits : int;
  mutable auto_repairs : int;
  mutable scrub_repairs : int
}

let heal_stats_create () =
  { heartbeats_sent = 0;
    suspicions = 0;
    scrub_sweeps = 0;
    scrub_hits = 0;
    auto_repairs = 0;
    scrub_repairs = 0
  }

(* Pluggable message plane: a keyspace re-routes an instance's sends
   through the shared plane (key envelopes, cross-key batching) by
   installing a wire after [derive]. [wire_send] replaces every
   protocol-level [Engine.send]; [wire_gossip], when present, may claim
   a deferred READ-DISPERSE entry for cross-key coalescing (returning
   false falls back to the instance's own per-destination outbox). *)
type wire = {
  wire_send : Messages.t Simnet.Engine.context -> dst:int -> Messages.t -> unit;
  wire_gossip :
    (Messages.t Simnet.Engine.context -> Messages.gossip_entry -> bool) option
}

type t = {
  params : Params.t;
  code : Mds.t;
  decode_threshold : int;
  servers : int array;
  initial_value : bytes;
  error_prone : bool array;
  disperse_step : float;
  md_mode : [ `Chained | `Direct ];
  plane : plane;
  client_retry : float option;
  healing : healing option;
  heal_stats : heal_stats;
  (* Slot the deployment fills in after construction: servers call it
     (coordinate of the suspect) when the failure detector reaches a
     vote quorum, and the deployment decides whether an autonomous
     crash-repair is warranted (crashed? budget? already pending?). *)
  mutable auto_repair : (int -> unit) option;
  cost : Cost.t;
  probe : Probe.t;
  history : History.t;
  (* One-entry encode cache, keyed by physical equality of the value.
     Under chained MD-VALUE dispersal every member of D encodes the same
     value (the simulator shares the bytes across deliveries), so the
     cache turns d encodes per write into one. Safe because values are
     never mutated after a write invokes, and fragments are themselves
     treated as immutable (corruption copies — see Fragment.corrupt). *)
  mutable encode_cache : (bytes * Erasure.Fragment.t array) option;
  (* [None] (bare deployment): sends go straight to the engine,
     bit-identical to pre-keyspace builds. *)
  mutable wire : wire option
}

let send t ctx ~dst msg =
  match t.wire with
  | None -> Simnet.Engine.send ctx ~dst msg
  | Some w -> w.wire_send ctx ~dst msg

let gossip_hook t =
  match t.wire with None -> None | Some w -> w.wire_gossip

let set_wire t wire =
  match t.wire with
  | Some _ -> invalid_arg "Config.set_wire: wire already installed"
  | None -> t.wire <- Some wire

let encode t value =
  match t.encode_cache with
  (* P1: physical equality is the cache key by design (see the field
     comment above) — structural comparison of the payload bytes would
     defeat the point. *)
  | Some (v, fragments)
    when ((v == value)
          [@lint.allow
            "P1: physical equality is the cache key by design — structural \
             comparison of the payload bytes would defeat the point"]) ->
    fragments
  | Some _ | None ->
    let fragments = Mds.encode t.code value in
    t.encode_cache <- Some (value, fragments);
    fragments

let make ~params ~servers ?(initial_value = Bytes.empty) ?value_len
    ?(error_prone = []) ?(disperse_step = 0.001) ?(md_mode = `Chained) ?(gossip = true)
    ?plane ?client_retry ?healing ?(systematic = false) () =
  (* [?plane] wins over the legacy [?gossip] bool, which survives as
     shorthand for `Broadcast vs `Off (the ablation-gossip knob). *)
  let plane =
    match plane with
    | Some p -> p
    | None ->
      if gossip then default_plane else { default_plane with gossip_mode = `Off }
  in
  let n = Params.n params in
  if Array.length servers <> n then
    invalid_arg "Config.make: need exactly n server pids";
  let e = Params.e params in
  let k = Params.k_soda params in
  (* codecs are chosen by fault model and scale: erasures-only
     Vandermonde for plain SODA, errors-and-erasures BCH for SODAerr,
     each with a GF(2^16) variant once n exceeds 255 fragments *)
  let code =
    match (e = 0, n <= 255) with
    | true, true ->
      if systematic then Mds.rs_systematic ~n ~k else Mds.rs_vandermonde ~n ~k
    | true, false -> Mds.rs16 ~n ~k
    | false, true -> Mds.rs_bch ~n ~k
    | false, false -> Mds.rs_bch16 ~n ~k
  in
  let error_flags = Array.make n false in
  List.iter
    (fun c ->
      if c < 0 || c >= n then
        invalid_arg "Config.make: error_prone coordinate out of range";
      error_flags.(c) <- true)
    error_prone;
  let flagged = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 error_flags in
  if flagged > e then
    invalid_arg
      (Printf.sprintf
         "Config.make: %d error-prone servers but the system tolerates e=%d"
         flagged e);
  let value_len =
    match value_len with
    | Some l -> l
    | None ->
      let l = Bytes.length initial_value in
      if l > 0 then l else 1024
  in
  { params;
    code;
    decode_threshold = k + (2 * e);
    servers;
    initial_value;
    error_prone = error_flags;
    disperse_step;
    md_mode;
    plane;
    client_retry;
    healing;
    heal_stats = heal_stats_create ();
    auto_repair = None;
    cost = Cost.create ~value_len;
    probe = Probe.create ();
    history = History.create ();
    encode_cache = None;
    wire = None
  }

(* Per-key instance configuration of a keyspace: same protocol
   parameters, codec and plane as the template (the encode cache rides
   along, so the shared initial value is encoded once across all keys),
   but fresh instrumentation ledgers and its own server pids. Healing
   and auto-repair stay off — the keyspace owns fault handling. *)
let derive t ~servers =
  if Array.length servers <> Params.n t.params then
    invalid_arg "Config.derive: need exactly n server pids";
  { t with
    servers;
    healing = None;
    heal_stats = heal_stats_create ();
    auto_repair = None;
    cost = Cost.create ~value_len:(Cost.value_len t.cost);
    probe = Probe.create ();
    history = History.create ();
    wire = None
  }

let default_client_retry_interval = 80.0

let coordinate_of t ~pid =
  let found = ref (-1) in
  Array.iteri (fun i p -> if p = pid then found := i) t.servers;
  if !found < 0 then raise Not_found else !found

let d_size t = Params.f t.params + 1

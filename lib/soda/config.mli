(** Static configuration of one SODA deployment.

    Shared read-only by every automaton of the deployment; also carries
    the (mutable) instrumentation sinks. *)

module Params = Protocol.Params
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module History = Protocol.History
module Mds = Erasure.Mds

(** Message-plane tuning: how READ-DISPERSE gossip, relays and MD-META
    forwards are put on the wire. Purely an optimization layer — every
    mode delivers the same protocol events, so safety (atomicity) is
    untouched; see "Batched message plane" in DESIGN.md. *)
type plane = {
  gossip_mode : [ `Broadcast | `Coalesced | `Off ];
      (** [`Broadcast] (the paper, and the default): every relay
          triggers a standalone READ-DISPERSE MD-META round — O(n²)
          messages per read. [`Coalesced]: entries accumulate in a
          per-destination outbox and ride on the next server-to-server
          message (or a bounded-staleness flush). [`Off]: the
          ablation-gossip mode — no announcements at all. *)
  gossip_staleness : float;
      (** Coalesced mode: upper bound on how long a queued gossip entry
          may wait for a piggyback before a standalone {!Messages.Gossip}
          flush is forced (unregistration liveness). *)
  relay_batch : float option;
      (** [Some w]: buffer relays to each registered reader for up to
          [w] time units and ship them as one {!Messages.Relay_batch}.
          [None] (default): one [Relay] per coded element. *)
  meta_stagger : float option
      (** [Some sigma]: server at coordinate [i > 0] delays its MD-META
          forwards by [i * sigma] and cancels them when a copy of the
          same [mid] arrives from a lower coordinate (whose forward set
          is a superset of its own). Cuts the MD-META forward storm from
          O(f·n) to O(n) on the failure-free path, at the price of a
          wider crash-vulnerability window — see DESIGN.md. [None]
          (default): forward immediately, as in the paper. *)
}

val default_plane : plane
(** [`Broadcast], staleness 25.0, no relay batching, no stagger — wire
    behaviour bit-identical to the pre-plane code. *)

val batched_plane : plane
(** [`Coalesced], staleness 25.0, relay window 0.25, stagger 4.0 (the
    worst-case forward-arrival lag under the uniform(0.2, 2.0) delay
    model is 3.8). The configuration the overhead bench and the
    batched chaos cell run. *)

(** Self-healing plane cadences, all in sim time (see "Self-healing
    plane" in DESIGN.md). Opt-in: with [healing = None] (the default)
    no heartbeats, suspicions or scrubs ever happen and traces are
    bit-identical to a pre-healing deployment. *)
type healing = {
  heartbeat_period : float;
      (** Every server broadcasts a {!Messages.Heartbeat} to its peers
          on this cadence, and checks its peers' last-heard times. *)
  suspicion_timeout : float;
      (** A peer silent for longer than this is suspected: the detector
          emits a [Suspect_vote] to the other survivors. When [f + 1]
          distinct voters agree on a coordinate, the deployment's
          {!field-auto_repair} hook fires. Must comfortably exceed
          [heartbeat_period] plus the worst-case delivery delay or live
          servers get suspected under loss. *)
  scrub_period : float
      (** Anti-entropy sweep cadence: every [scrub_period] a server
          verifies its local fragment checksum; a mismatch quarantines
          the fragment and launches a targeted fragment-repair round. *)
}

val default_healing : healing
(** heartbeat 10.0, suspicion timeout 35.0, scrub 50.0 — tuned so that
    under the uniform(0.2, 2.0) delay model with retransmission, three
    consecutive lost heartbeats are needed for a false suspicion. *)

(** Mutable counters for the healing plane, aggregated per deployment
    (all servers bump the same record). Always allocated; all-zero when
    [healing = None]. *)
type heal_stats = {
  mutable heartbeats_sent : int;
  mutable suspicions : int;  (** suspicion episodes (votes cast). *)
  mutable scrub_sweeps : int;
  mutable scrub_hits : int;  (** sweeps that found a checksum mismatch. *)
  mutable auto_repairs : int;
      (** detector-triggered crash-repairs actually launched. *)
  mutable scrub_repairs : int
      (** quarantined fragments restored from peer fragments. *)
}

val heal_stats_create : unit -> heal_stats

(** Pluggable message plane. A {!Keyspace} re-routes a key instance's
    traffic through the shared plane — wrapping messages in key
    envelopes, draining cross-key gossip outboxes, batching relays per
    destination — by installing a wire on the instance's configuration
    (see {!set_wire}). Automata never call [Simnet.Engine.send]
    directly; they go through {!send}, which falls through to the
    engine when no wire is installed, keeping bare deployments
    bit-identical to pre-keyspace builds. *)
type wire = {
  wire_send : Messages.t Simnet.Engine.context -> dst:int -> Messages.t -> unit;
      (** Replacement for every protocol-level send of the instance. *)
  wire_gossip :
    (Messages.t Simnet.Engine.context -> Messages.gossip_entry -> bool) option
      (** Offered each deferred READ-DISPERSE entry under the coalesced
          plane. Returning [true] claims it for cross-key batching;
          [false] (or [None]) keeps the instance's own per-destination
          outbox. *)
}

type t = {
  params : Params.t;
  code : Mds.t;
      (** [rs-vand[n, n-f]] for SODA, [rs-bch[n, n-f-2e]] for SODA{_err}. *)
  decode_threshold : int;
      (** Coded elements a reader needs before decoding: [k] for SODA,
          [k + 2e] for SODA{_err}; also the server-side unregistration
          threshold (Fig. 6). *)
  servers : int array;  (** pid of server coordinate [i] at index [i]. *)
  initial_value : bytes;
  error_prone : bool array;
      (** Coordinates whose local disk reads return corrupted elements
          (SODA{_err} fault model); all-false for plain SODA. *)
  disperse_step : float;
      (** Delay between a sender's successive MD sends, letting crash
          events interleave with a dispersal (the writer-crash scenarios
          of Section III). *)
  md_mode : [ `Chained | `Direct ];
      (** [`Chained] (default) is the paper's MD-VALUE primitive: the
          full value goes to the first f+1 servers, which fan out coded
          elements — uniform under sender crashes, at O(f^2) write cost.
          [`Direct] is the naive ablation: the writer sends each coded
          element straight to its server at cost n/k, but a writer crash
          mid-dispersal can leave a partial write that no server can
          complete, losing uniformity (and, combined with f server
          crashes, read liveness). Used by the [ablation-md] benchmark. *)
  plane : plane;
      (** How gossip/relays/forwards hit the wire. [gossip_mode =
          `Broadcast] is the paper's algorithm: servers announce every
          relay with READ-DISPERSE and unregister readers at the
          k-element threshold. [`Off] — an ablation mirroring ORCAS-B's
          behaviour — sends no announcements, so only READ-COMPLETE
          unregisters and a crashed reader is relayed to forever. Used
          by the [ablation-gossip] benchmark. *)
  client_retry : float option;
      (** When [Some interval], clients re-issue the pending phase of a
          stalled operation every [interval] time units: a writer/reader
          in its get phase re-polls the servers, a reader in its collect
          phase re-broadcasts READ-VALUE. Needed under crash-repair
          chaos, where [Server.begin_repair] wipes reader registrations
          (the crash lost them) — without re-registration a long-lived
          read could permanently fall below the decode threshold.
          Retries assume the reliable transport (re-sends are deduped by
          receivers and all replies are idempotent, but over a raw
          lossy network they would be pointless); [Deployment.deploy]
          arms them exactly when the engine's transport is reliable.
          [None] (the default) leaves the paper's retry-free clients. *)
  healing : healing option;
      (** [Some h] arms the self-healing plane (failure detector +
          scrubber) on every server; [None] (default) disables it
          entirely — not a single extra event is scheduled, keeping
          traces bit-identical to pre-healing builds. *)
  heal_stats : heal_stats;
  mutable auto_repair : (int -> unit) option;
      (** Filled in by [Deployment.deploy] when healing is armed: called
          with a coordinate when a quorum of survivors suspects it. The
          deployment checks the suspect really is crashed (a partitioned
          server must not be wiped) and that no auto-repair is already
          pending before spawning [Server.begin_repair]. Not for direct
          use. *)
  cost : Cost.t;
  probe : Probe.t;
  history : History.t;
  mutable encode_cache : (bytes * Erasure.Fragment.t array) option;
      (** One-entry cache for {!encode}, keyed by physical equality.
          Not for direct use. *)
  mutable wire : wire option
      (** Message-plane override; [None] sends straight to the engine.
          Install with {!set_wire}; read through {!send} /
          {!gossip_hook}. *)
}

val send : t -> Messages.t Simnet.Engine.context -> dst:int -> Messages.t -> unit
(** The one send primitive of every automaton: [Engine.send] when no
    wire is installed, the wire's [wire_send] otherwise. *)

val gossip_hook :
  t -> (Messages.t Simnet.Engine.context -> Messages.gossip_entry -> bool) option
(** The installed wire's [wire_gossip], if any. *)

val set_wire : t -> wire -> unit
(** Install the message-plane override (once, after {!derive}).
    @raise Invalid_argument if a wire is already installed. *)

val encode : t -> bytes -> Erasure.Fragment.t array
(** [Mds.encode t.code value] behind a one-entry physical-equality
    cache. Under chained MD-VALUE dispersal every member of D encodes
    the same value object, so the cache turns [d] encodes per write
    into one. Callers must treat the returned fragments (shared across
    servers) as immutable — which fragments are: corruption copies. *)

val make :
  params:Params.t ->
  servers:int array ->
  ?initial_value:bytes ->
  ?value_len:int ->
  ?error_prone:int list ->
  ?disperse_step:float ->
  ?md_mode:[ `Chained | `Direct ] ->
  ?gossip:bool ->
  ?plane:plane ->
  ?client_retry:float ->
  ?healing:healing ->
  ?systematic:bool ->
  unit ->
  t
(** Builds the configuration, choosing the codec from [params] ([e = 0]:
    Vandermonde RS with [k = n-f], or the systematic variant when
    [systematic] is set — what a production deployment would pick, since
    its first [k] fragments are raw data; [e > 0]: BCH RS with
    [k = n-f-2e]; either switches to its GF(2¹⁶) form beyond 255
    servers).
    [value_len] (default: length of [initial_value], or 1024 if that is
    empty) sets the cost normalization base.
    [gossip] (default true) is legacy shorthand for the plane's
    [`Broadcast] vs [`Off]; an explicit [plane] wins over it.
    @raise Invalid_argument if [servers] does not have [n] entries or an
    [error_prone] coordinate is out of range or they number more than
    [e]. *)

val derive : t -> servers:int array -> t
(** Per-key instance configuration of a keyspace: shares the template's
    protocol parameters, codec, plane tuning, client-retry policy and
    encode cache (so a shared initial value is encoded once across all
    keys), with fresh cost/probe/history ledgers, the given server
    pids, no healing and no wire.
    @raise Invalid_argument if [servers] does not have [n] entries. *)

val default_client_retry_interval : float
(** Client retry cadence (80.0) armed by [Deployment.deploy] and
    [Keyspace.create] exactly when the engine's transport is reliable;
    see {!field-client_retry}. *)

val coordinate_of : t -> pid:int -> int
(** Inverse of [servers].
    @raise Not_found for a pid that is not a server. *)

val d_size : t -> int
(** Size of the distinguished first set D of the MD primitives:
    [f + 1]. *)

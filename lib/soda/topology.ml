(* The physical shape of a server fleet: how many server processes
   exist and which failure domain (rack, zone) each belongs to. Purely
   descriptive — fault correlation comes from the chaos harness
   partitioning/crashing a whole domain, and placement quality from
   [Placement] spreading each key's fragments across domains. *)

type t = {
  (* server index -> failure-domain id, dense in [0, num_domains) *)
  assignment : int array;
  num_domains : int
}

let make ~servers ~domains () =
  if servers <= 0 then invalid_arg "Topology.make: need at least one server";
  if domains <= 0 || domains > servers then
    invalid_arg "Topology.make: need 1 <= domains <= servers";
  { assignment = Array.init servers (fun i -> i mod domains);
    num_domains = domains
  }

let custom assignment =
  let m = Array.length assignment in
  if m = 0 then invalid_arg "Topology.custom: need at least one server";
  let top = Array.fold_left max (-1) assignment in
  Array.iter
    (fun d ->
      if d < 0 || d > top then
        invalid_arg "Topology.custom: negative domain id")
    assignment;
  let seen = Array.make (top + 1) false in
  Array.iter (fun d -> seen.(d) <- true) assignment;
  Array.iteri
    (fun d present ->
      if not present then
        invalid_arg
          (Printf.sprintf "Topology.custom: domain ids not dense (%d unused)" d))
    seen;
  { assignment = Array.copy assignment; num_domains = top + 1 }

let servers t = Array.length t.assignment
let num_domains t = t.num_domains

let domain_of t server =
  if server < 0 || server >= Array.length t.assignment then
    invalid_arg "Topology.domain_of: server index out of range";
  t.assignment.(server)

(* Members of one domain, ascending. *)
let domain_members t domain =
  if domain < 0 || domain >= t.num_domains then
    invalid_arg "Topology.domain_members: domain id out of range";
  let out = ref [] in
  for i = Array.length t.assignment - 1 downto 0 do
    if t.assignment.(i) = domain then out := i :: !out
  done;
  !out

let min_domain_size t =
  let counts = Array.make t.num_domains 0 in
  Array.iter (fun d -> counts.(d) <- counts.(d) + 1) t.assignment;
  Array.fold_left min max_int counts

let equal a b =
  a.num_domains = b.num_domains
  && Array.length a.assignment = Array.length b.assignment
  && begin
       let same = ref true in
       Array.iteri
         (fun i d -> if b.assignment.(i) <> d then same := false)
         a.assignment;
       !same
     end

let pp ppf t =
  Format.fprintf ppf "%d servers / %d domains" (Array.length t.assignment)
    t.num_domains

module Params = Protocol.Params

(* Spread policy: how a key's n coordinates are chosen among the
   topology's servers. Both policies give every key n distinct servers,
   span min(domains, n) failure domains, and put at most
   ceil(n / min(domains, n)) fragments in any one domain. *)
type policy = Mod_stripe | Consistent_hash

type t = {
  topology : Topology.t;
  params : Params.t;
  policy : policy;
  (* domain -> member servers, ascending *)
  by_domain : int array array;
  (* Consistent_hash: (point, server) vnodes sorted by point; empty
     for Mod_stripe *)
  ring : (int * int) array
}

(* Geometry presets in the "data+parity" notation of storage-placement
   ADRs: k data fragments plus (n - k) parity. SODA's code dimension is
   k = n - f, so "4+2" is a 6-server instance tolerating f = 2 crashes
   and "10+4" a 14-server instance tolerating f = 4. *)
type preset = [ `P4_2 | `P10_4 ]

let preset_params = function
  | `P4_2 -> Params.make ~n:6 ~f:2 ()
  | `P10_4 -> Params.make ~n:14 ~f:4 ()

let preset_of_string = function
  | "4+2" -> Some `P4_2
  | "10+4" -> Some `P10_4
  | _ -> None

let preset_name = function `P4_2 -> "4+2" | `P10_4 -> "10+4"

(* Deterministic integer mix (xorshift-multiply finalizer, same family
   as Workload's value generator) — the simulator bans wall-clock and
   [Random] nondeterminism, and placement must be a pure function of
   the key anyway so clients and tests agree on it. *)
let mix k =
  let h = ref ((k + 1) * 0x9E3779B9) in
  h := !h lxor (!h lsr 16);
  h := !h * 0x85EBCA6B;
  h := !h lxor (!h lsr 13);
  h := !h * 0xC2B2AE35;
  h := !h lxor (!h lsr 16);
  !h land 0x3FFFFFFF

let vnodes_per_server = 8

let create ~topology ~params ?(policy = Mod_stripe) () =
  let n = Params.n params in
  let m = Topology.servers topology in
  if n > m then
    invalid_arg
      (Printf.sprintf "Placement.create: n = %d fragments but only %d servers"
         n m);
  let dcount = Topology.num_domains topology in
  let dused = min dcount n in
  let cap = (n + dused - 1) / dused in
  if dcount <= n && Topology.min_domain_size topology < cap then
    invalid_arg
      (Printf.sprintf
         "Placement.create: smallest domain has %d servers but balanced \
          placement needs %d per domain"
         (Topology.min_domain_size topology) cap);
  let by_domain =
    Array.init dcount (fun d ->
        Array.of_list (Topology.domain_members topology d))
  in
  let ring =
    match policy with
    | Mod_stripe -> [||]
    | Consistent_hash ->
      let points =
        Array.init (m * vnodes_per_server) (fun i ->
            let s = i / vnodes_per_server in
            let v = i mod vnodes_per_server in
            (mix ((s * 0x10001) + (v * 7919) + 0x2545), s))
      in
      (* ties broken by (point, server, position): compare the pairs *)
      Array.sort
        (fun (p1, s1) (p2, s2) ->
          if p1 <> p2 then Int.compare p1 p2 else Int.compare s1 s2)
        points;
      points
  in
  { topology; params; policy; by_domain; ring }

let params t = t.params
let topology t = t.topology
let policy t = t.policy

(* Striping: domain of coordinate i rotates with (key + i), the
   within-domain slot advances every full rotation — n distinct
   servers, consecutive coordinates in distinct domains (so the MD
   primitives' first set D spans min(f+1, domains) domains), at most
   [cap] per domain. *)
let stripe t ~key n =
  let dcount = Topology.num_domains t.topology in
  Array.init n (fun i ->
      let d = (key + i) mod dcount in
      let members = t.by_domain.(d) in
      let len = Array.length members in
      members.(((key / dcount) + (i / dcount)) mod len))

(* Consistent hashing: walk the vnode ring from the key's point. Phase
   one takes at most one server per domain until min(domains, n)
   domains hold a fragment (the spread guarantee); phase two fills up
   to n under the per-domain cap (the balance guarantee). The picked
   servers are then emitted round-robin across domains in
   first-appearance order, so consecutive coordinates span domains just
   like striping. *)
let ring_walk t ~key n =
  let dcount = Topology.num_domains t.topology in
  let dused = min dcount n in
  let cap = (n + dused - 1) / dused in
  let ring = t.ring in
  let len = Array.length ring in
  let p = mix key in
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst ring.(mid) < p then lo := mid + 1 else hi := mid
  done;
  let start = if !lo >= len then 0 else !lo in
  let taken = Array.make (Topology.servers t.topology) false in
  let per_domain = Array.make dcount 0 in
  let by_d = Array.make dcount [] in
  let dorder = ref [] in
  let picked = ref 0 in
  let take s =
    let d = Topology.domain_of t.topology s in
    taken.(s) <- true;
    if per_domain.(d) = 0 then dorder := d :: !dorder;
    per_domain.(d) <- per_domain.(d) + 1;
    by_d.(d) <- s :: by_d.(d);
    incr picked
  in
  (* phase one: spread *)
  let i = ref 0 in
  let spread = ref 0 in
  while !spread < dused && !i < len do
    let s = snd ring.((start + !i) mod len) in
    let d = Topology.domain_of t.topology s in
    if (not taken.(s)) && per_domain.(d) = 0 then begin
      take s;
      incr spread
    end;
    incr i
  done;
  (* phase two: fill under the cap *)
  let i = ref 0 in
  while !picked < n && !i < len do
    let s = snd ring.((start + !i) mod len) in
    let d = Topology.domain_of t.topology s in
    if (not taken.(s)) && per_domain.(d) < cap then take s;
    incr i
  done;
  assert (!picked = n);
  let queues =
    Array.of_list
      (List.rev_map (fun d -> Array.of_list (List.rev by_d.(d))) !dorder)
  in
  let out = Array.make n (-1) in
  let idx = ref 0 in
  let round = ref 0 in
  while !idx < n do
    Array.iter
      (fun q ->
        if !idx < n && !round < Array.length q then begin
          out.(!idx) <- q.(!round);
          incr idx
        end)
      queues;
    incr round
  done;
  out

let servers_of t ~key =
  if key < 0 then invalid_arg "Placement.servers_of: negative key";
  let n = Params.n t.params in
  match t.policy with
  | Mod_stripe -> stripe t ~key n
  | Consistent_hash -> ring_walk t ~key n

let domains_spanned t ~key =
  let coords = servers_of t ~key in
  let seen = Array.make (Topology.num_domains t.topology) false in
  Array.iter (fun s -> seen.(Topology.domain_of t.topology s) <- true) coords;
  Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 seen

let max_per_domain t ~key =
  let coords = servers_of t ~key in
  let counts = Array.make (Topology.num_domains t.topology) 0 in
  Array.iter
    (fun s ->
      let d = Topology.domain_of t.topology s in
      counts.(d) <- counts.(d) + 1)
    coords;
  Array.fold_left max 0 counts

(* A whole-domain failure stays within every key's crash budget iff the
   per-domain cap is at most f. *)
let domain_safe t =
  let n = Params.n t.params in
  let dused = min (Topology.num_domains t.topology) n in
  (n + dused - 1) / dused <= Params.f t.params

let pp ppf t =
  Format.fprintf ppf "%d+%d over %a (%s)"
    (Params.k_soda t.params)
    (Params.n t.params - Params.k_soda t.params)
    Topology.pp t.topology
    (match t.policy with
    | Mod_stripe -> "mod-stripe"
    | Consistent_hash -> "consistent-hash")

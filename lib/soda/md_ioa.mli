(** An executable rendering of the MD-VALUE IO Automata (Figs. 1 and 2
    of the paper), at the IOA's own step granularity.

    The production SODA path ({!Server}) folds the primitive's relay
    logic into atomic message handlers — sound, because the IOA performs
    all of a dispersal's relays before its local delivery, and a crash
    between the relays only truncates a suffix. This module instead
    implements the automata {e literally}: the sender's [send_buff] and
    each server's per-dispersal [outQueue], [status] and [content] maps
    are explicit state, and {e every} output action ([send],
    [md-value-deliver], [md-value-send-ack]) executes as its own
    simulation step, so crash events can interleave between any two
    actions exactly as IOA semantics allow.

    It exists to validate the primitive itself:
    - {e Theorem 3.1} (validity and uniformity): every delivered element
      is the coded element of the dispersed value, and if any server
      delivers, every non-crashed server eventually does — even when the
      sender and up to [f] servers crash at arbitrary steps.
    - {e Theorem 3.2} (no state bloat): once a dispersal is delivered at
      a server, none of that automaton's state variables retain the
      value or any coded element — observable here through
      {!server_retained_payloads}. *)

module Tag = Protocol.Tag
module Fragment = Erasure.Fragment

type msg
(** Wire messages of the standalone primitive ("full" and "coded"). *)

type t
(** A deployment of one MD-VALUE-SENDER and [n] MD-VALUE-SERVER
    automata. *)

type delivery = { server : int; tag : Tag.t; fragment : Fragment.t }

val deploy :
  engine:msg Simnet.Engine.t ->
  params:Protocol.Params.t ->
  ?step:float ->
  unit ->
  t
(** [step] (default 0.5) is the simulated time between an automaton's
    successive output actions — the interleaving window for crashes. *)

val send : t -> at:float -> tag:Tag.t -> value:bytes -> unit
(** Schedule an [md-value-send(t, v)] input action at the sender. *)

val crash_sender : t -> at:float -> unit
val crash_server : t -> index:int -> at:float -> unit

(** {1 Observations (after running the engine)} *)

val deliveries : t -> delivery list
(** All [md-value-deliver] output actions, in order. *)

val acked : t -> Tag.t list
(** Tags whose [md-value-send-ack] fired at the sender. *)

val server_retained_payloads : t -> index:int -> int
(** Bytes of value/coded-element payload still referenced by the
    server's [content] map and [outQueue]s — Theorem 3.2 says this is 0
    for every delivered dispersal once the system quiesces. *)

val sender_retained_payloads : t -> int
(** Same for the sender's [send_buff]. *)

module Engine = Simnet.Engine
module Tag = Protocol.Tag
module Params = Protocol.Params
module History = Protocol.History
module Mds = Erasure.Mds
module Int_tbl = Protocol.Int_tbl

type phase =
  | Idle
  | Get of {
      op : int;
      value : bytes;
      replies : Int_tbl.Set.t;  (* coordinates heard from *)
      mutable best : Tag.t
    }
  | Put of { op : int; acks : Int_tbl.Set.t }

type t = {
  config : Config.t;
  mutable phase : phase;
  seq : int ref;
  mutable on_done : (unit -> unit) option
}

let create config = { config; phase = Idle; seq = ref 0; on_done = None }
let busy t = match t.phase with Idle -> false | _ -> true

(* Re-poll the servers while the write is stuck in its get phase (armed
   only when [Config.client_retry] is set, i.e. over the reliable
   transport). The put phase needs no retry: the MD dispersal is
   retransmitted by the channel and every server acknowledges on
   delivery, so the k acks always arrive. Re-sent Write_gets are
   idempotent at both ends — servers answer statelessly and replies are
   folded through a coordinate set and a max-tag update. *)
let rec schedule_retry t ctx ~op =
  match t.config.Config.client_retry with
  | None -> ()
  | Some interval ->
    Engine.schedule_local ctx ~delay:interval (fun () ->
        match t.phase with
        | Get g when g.op = op ->
          Array.iter
            (fun server ->
              Config.send t.config ctx ~dst:server (Messages.Write_get { op }))
            t.config.Config.servers;
          schedule_retry t ctx ~op
        | Idle | Get _ | Put _ -> ())

let invoke t ctx ~value ?on_done () =
  (match t.phase with
  | Idle -> ()
  | Get _ | Put _ ->
    invalid_arg "Writer.invoke: operation already in flight (well-formedness)");
  let history = t.config.Config.history in
  let op =
    History.invoke history ~client:(Engine.self ctx) ~kind:History.Write
      ~at:(Engine.now_ctx ctx)
  in
  History.set_value history ~op value;
  t.on_done <- on_done;
  t.phase <-
    Get { op; value; replies = Int_tbl.Set.create 8; best = Tag.initial };
  Array.iter
    (fun server -> Config.send t.config ctx ~dst:server (Messages.Write_get { op }))
    t.config.Config.servers;
  schedule_retry t ctx ~op;
  op

let handler t ctx ~src msg =
  match (msg, t.phase) with
  | Messages.Write_get_reply { op; tag }, Get g when g.op = op ->
    ignore (Int_tbl.Set.add g.replies src : bool);
    if Tag.( > ) tag g.best then g.best <- tag;
    if Int_tbl.Set.length g.replies >= Params.majority t.config.Config.params
    then begin
      let tw = Tag.next g.best ~w:(Engine.self ctx) in
      History.set_tag t.config.Config.history ~op tw;
      t.phase <- Put { op; acks = Int_tbl.Set.create 8 };
      Md.value_send ctx t.config ~seq:t.seq ~op ~tag:tw ~value:g.value
    end
  | Messages.Write_ack { op; tag = _ }, Put p when p.op = op ->
    ignore (Int_tbl.Set.add p.acks src : bool);
    if Int_tbl.Set.length p.acks >= Mds.k t.config.Config.code then begin
      History.respond t.config.Config.history ~op ~at:(Engine.now_ctx ctx);
      t.phase <- Idle;
      match t.on_done with
      | Some callback ->
        t.on_done <- None;
        callback ()
      | None -> ()
    end
  | ( ( Messages.Write_get_reply _ | Messages.Write_ack _
      | Messages.Write_get _ | Messages.Read_get _ | Messages.Read_get_reply _
      | Messages.Relay _ | Messages.Relay_batch _ | Messages.Md_full _
      | Messages.Md_coded _ | Messages.Md_meta _ | Messages.Repair_get _
      | Messages.Repair_reply _ | Messages.Gossip _ | Messages.Envelope _
      | Messages.Heartbeat _ | Messages.Suspect_vote _ | Messages.Keyed _
      | Messages.Keyed_gossip _ | Messages.Keyed_envelope _
      | Messages.Keyed_batch _ ),
      (Idle | Get _ | Put _) ) ->
    (* stale replies from earlier phases or foreign traffic *)
    ()

(** A multi-object atomic store composed of SODA registers.

    Section II of the paper: "A shared atomic memory can be emulated by
    composing individual atomic objects. Therefore, we aim to implement
    only one atomic read/write memory object." This module is that
    composition: a named collection of independent SODA (or SODA{_err})
    registers sharing one simulation, one physical server fleet and one
    fault schedule.

    Each object is its own register emulation — per-object tags, quorums
    and registered-reader sets, exactly as composing n single-object
    automata prescribes — while machine-level faults apply across all of
    them: {!crash_server} takes down coordinate [i]'s processes for
    every object, and {!repair_server} brings them all back through the
    repair protocol. Clients are single-lane per object, so one client
    may operate on different objects concurrently (well-formedness is a
    per-object notion).

    Atomicity of the composition follows from atomicity per object:
    operations on distinct registers commute. {!check_atomicity} checks
    every object's history.

    Since the keyspace redesign, the store is a thin naming layer over
    {!Keyspace}: object number [i] (creation order) is logical key [i]
    of a sharded keyspace on an [n]-server single-domain topology, so
    objects share the fleet's message plane and their gossip and relays
    coalesce across objects. The exception is [?healing]: the
    self-healing plane is per-register state that keyspace instances do
    not carry, so healed stores keep the original
    one-deployment-per-object composition. *)

module Params = Protocol.Params
module History = Protocol.History

type t

val create :
  engine:Messages.t Simnet.Engine.t ->
  params:Params.t ->
  objects:string list ->
  ?value_len:int ->
  ?error_prone:int list ->
  ?healing:Config.healing ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t
(** One register per (distinct) name in [objects], all with the given
    parameters. Each object starts holding the empty value. Every
    object's fragment stores are checksummed ({!Disk}); [healing] arms
    the self-healing plane on each register (see {!Deployment.deploy}).
    @raise Invalid_argument on an empty or duplicated object list. *)

val objects : t -> string list

val write :
  t -> obj:string -> writer:int -> at:float -> ?on_done:(unit -> unit) ->
  bytes -> unit
(** @raise Invalid_argument on an unknown object name. *)

val read :
  t -> obj:string -> reader:int -> at:float -> ?on_done:(bytes -> unit) ->
  unit -> unit

(** {1 Machine-level faults (apply to every object's processes)} *)

val crash_server : t -> coordinate:int -> at:float -> unit
val repair_server : t -> coordinate:int -> at:float -> unit

val corrupt_server : t -> coordinate:int -> at:float -> unit
(** Bit-rot the coordinate's stored element for every object (a machine
    fault hits all registers on the machine); see
    {!Deployment.corrupt_server}. *)

(** {1 Observation} *)

val repairing : t -> bool
(** [true] while any server of any object is mid-repair (machine-level:
    see {!Deployment.repairing}). *)

val scrub_clean : t -> bool
(** [true] iff every register's every fragment store passes its checksum
    (see {!Deployment.scrub_clean}). *)

val history : t -> obj:string -> History.t

val total_storage : t -> float
(** Sum over objects of each register's worst-case total storage, in
    value units: [#objects * n/(n-f-2e)] when values share a size. *)

val check_atomicity : t -> (unit, string * Protocol.Atomicity.violation) result
(** Run the Lemma 2.1 checker on every object's history; the error names
    the first offending object. *)

val all_complete : t -> bool

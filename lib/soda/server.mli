(** The SODA server automaton (Fig. 5 of the paper, plus the server side
    of the message-disperse primitives of Section III).

    Each server stores exactly one [(tag, coded element)] pair — this is
    what gives SODA its [n/(n-f)] total storage cost — plus metadata: the
    set [Rc] of registered reads it is currently serving and the history
    set [H] of [(tag, server, read)] relay announcements, which lets it
    unregister a reader (even a crashed one) once [k] distinct coded
    elements of one tag are known to have been sent (Theorem 5.5). With
    [decode_threshold = k + 2e] the same automaton implements SODA{_err}
    (Fig. 6); coordinates flagged [error_prone] corrupt the element they
    read from local storage when serving a registration, modelling silent
    disk read errors. *)

type t

val create : Config.t -> coordinate:int -> t
(** A server at the given coordinate, holding the coded element of the
    initial value under {!Protocol.Tag.initial}. Registers its initial
    storage with the configuration's cost accountant. *)

val handler : t -> Messages.t Simnet.Engine.context -> src:int -> Messages.t -> unit
(** Message handler to install with {!Simnet.Engine.set_handler}. *)

(** {1 Shared-plane hooks (see {!Keyspace})} *)

val apply_gossip_entry :
  t -> Messages.t Simnet.Engine.context -> Messages.gossip_entry -> unit
(** Apply one READ-DISPERSE announcement delivered over a keyspace's
    cross-key gossip channel — the same monotone [H] insertion as a
    standalone READ-DISPERSE, so duplicates are harmless. *)

val gossip_live : t -> Messages.gossip_entry -> bool
(** [false] once the entry's read has completed at this server, letting
    a cross-key outbox drop it instead of burning wire on it — the
    cross-key analogue of the per-instance outbox filter. *)

(** {1 Inspection (tests and reports)} *)

val stored_tag : t -> Protocol.Tag.t

val stored_fragment : t -> Erasure.Fragment.t
(** The raw stored coded element, bypassing checksum verification —
    for tests (e.g. byte-identical restoration after a scrub repair). *)

val registered_reads : t -> int list
(** Currently registered read-operation ids. *)

val history_entries : t -> int
(** Total number of tuples in [H]. *)

(** {1 Self-healing plane (see {!Config.healing})} *)

val start_healing : t -> Messages.t Simnet.Engine.context -> unit
(** Arm the failure detector and scrubber tick chains on this server.
    Injected once per server by [Deployment.deploy]; a no-op when the
    configuration has [healing = None]. *)

val corrupt_disk : t -> seed:int -> unit
(** Fault injection: deterministically garble the stored coded element
    without touching its checksum (see {!Disk.rot}). The corruption is
    silent until the next verified read or scrub sweep. *)

val quarantined : t -> bool
(** [true] while the stored element failed its checksum and has not yet
    been restored (by a scrub repair, a crash-repair or a newer write). *)

val disk_ok : t -> bool
(** [true] iff the store is not quarantined and its checksum verifies —
    the per-server "all corruption healed" quiescence predicate. *)

val set_error_window : t -> (float * float) option -> unit
(** SODAerr: restrict this server's error-prone fault to the sim-time
    window [[start, stop)]. [None] (default) keeps the static always-on
    model of {!Config.t.error_prone}. *)

(** {1 Repair extension (the paper's future work (ii))} *)

val begin_repair : t -> Messages.t Simnet.Engine.context -> op:int -> unit
(** To be invoked (via {!Simnet.Engine.inject}) right after the server's
    process is restored with {!Simnet.Engine.restore_at}: volatile state
    is discarded, the stored element reverts to the initial state, and
    the server broadcasts [REPAIR-GET], refusing quorum duties until it
    again holds an element for the highest tag reported by [n - 1 - f]
    peers. [op] is the accounting id the repair traffic is charged to.
    Safety requires [n >= 2f + 2e + 1]; see [Deployment.repair_server]. *)

val repairing : t -> bool

module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity

(* One logical key's [n,k] SODA instance: a derived configuration, the
   per-coordinate server automata, and the physical placement. *)
type instance = {
  key : int;
  iconfig : Config.t;
  iservers : Server.t array;  (* coordinate -> automaton *)
  iphys : int array;  (* coordinate -> physical server index *)
  (* key-scoped repair labels: repair_op_base + sequence, independent
     of every other key and of deployment creation order *)
  repair_seq : int ref
}

(* Pending cross-key gossip for one destination pid of one physical
   server: (enqueue time, entry), newest first, plus the
   staleness-timer armed flag. Enqueue times let the flush distinguish
   entries that have genuinely aged out from young riders — see
   [flush_outbox]. *)
type outbox = {
  mutable entries : (float * Messages.keyed_entry) list;
  mutable armed : bool
}

(* Buffered client-bound relays for one destination pid. *)
type relay_box = { mutable items : (int * Messages.t) list; mutable rarmed : bool }

(* The shared-plane state of one physical server process. *)
type plane = {
  p_pid : int;
  (* key -> this server's automaton for that key's instance *)
  p_states : (int, Server.t) Hashtbl.t;
  (* dst pid -> pending cross-key gossip *)
  p_outbox : (int, outbox) Hashtbl.t;
  (* dst client pid -> buffered relays across keys *)
  p_relay : (int, relay_box) Hashtbl.t
}

(* A client process: one pid, one protocol lane per key it has touched.
   Lanes are independent SODA clients, so one process can have
   operations in flight on many keys at once — well-formedness is per
   (client, key). *)
type 'lane client = { c_pid : int; c_lanes : (int, 'lane) Hashtbl.t }

type t = {
  engine : Messages.t Engine.t;
  placement : Placement.t;
  template : Config.t;
  server_pids : int array;
  planes : plane array;
  plane_of_pid : (int, plane) Hashtbl.t;
  writer_clients : Writer.t client array;
  reader_clients : Reader.t client array;
  instances : (int, instance) Hashtbl.t;
  mutable keys_rev : int list;  (* creation order, newest first *)
  (* false: single-key compatibility shim — no key envelopes, handlers
     wired straight to the instance, traces bit-identical to
     [Deployment.deploy] *)
  keyed : bool
}

let repair_op_base = 1_000_000

(* ------------------------------------------------------------------ *)
(* Shared-plane outboxes *)

let outbox_for plane ~dst =
  match Hashtbl.find_opt plane.p_outbox dst with
  | Some box -> box
  | None ->
    let box = { entries = []; armed = false } in
    Hashtbl.replace plane.p_outbox dst box;
    box

let entry_live plane ((_, ke) : float * Messages.keyed_entry) =
  match Hashtbl.find_opt plane.p_states ke.Messages.ke_key with
  | Some state -> Server.gossip_live state ke.Messages.ke_entry
  | None -> true

(* Drain [dst]'s cross-key outbox, dropping entries whose read has
   already completed at the enqueuing instance's local server, in
   enqueue order. *)
let take_outbox plane ~dst =
  match Hashtbl.find_opt plane.p_outbox dst with
  | None -> []
  | Some box ->
    (match box.entries with
    | [] -> []
    | pending ->
      box.entries <- [];
      List.rev_map snd (List.filter (entry_live plane) pending) |> List.rev)

(* Bounded-staleness flush of one destination's cross-key outbox. The
   pooled box holds entries of many ages, so the timer only forces a
   frame once the {e oldest} live entry has waited the full staleness
   bound — younger entries coalesce into that frame (or into envelope
   piggybacks) for free, but never cause frames of their own earlier
   than a per-key outbox would have. Most entries die (their read
   completes) before aging out, exactly as in a single-register plane. *)
let rec flush_outbox ~staleness plane ctx ~dst =
  match Hashtbl.find_opt plane.p_outbox dst with
  | None -> ()
  | Some box -> (
    box.armed <- false;
    let live = List.filter (entry_live plane) box.entries in
    box.entries <- live;
    match List.rev live with
    | [] -> ()
    | (oldest, _) :: _ as in_order ->
      let now = Engine.now_ctx ctx in
      if now -. oldest +. 1e-9 >= staleness then begin
        box.entries <- [];
        Engine.send ctx ~dst
          (Messages.Keyed_gossip { kentries = List.map snd in_order })
      end
      else begin
        box.armed <- true;
        Engine.schedule_local ctx
          ~delay:(oldest +. staleness -. now)
          (fun () -> flush_outbox ~staleness plane ctx ~dst)
      end)

let flush_relays plane ctx ~dst =
  match Hashtbl.find_opt plane.p_relay dst with
  | None -> ()
  | Some box -> (
    box.rarmed <- false;
    match List.rev box.items with
    | [] -> ()
    | [ (key, msg) ] ->
      box.items <- [];
      Engine.send ctx ~dst (Messages.Keyed { key; msg })
    | kitems ->
      box.items <- [];
      Engine.send ctx ~dst (Messages.Keyed_batch { kitems }))

let is_client_relay = function
  | Messages.Relay _ | Messages.Relay_batch _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* The wire: an instance's sends re-routed over the shared plane *)

let wire t inst =
  let key = inst.key in
  let staleness = t.template.Config.plane.Config.gossip_staleness in
  let relay_window = t.template.Config.plane.Config.relay_batch in
  let wire_send ctx ~dst msg =
    let src = Engine.self ctx in
    match Hashtbl.find_opt t.plane_of_pid src with
    | Some plane when Hashtbl.mem t.plane_of_pid dst -> (
      (* server -> server: piggyback whatever cross-key gossip is
         pending for the destination *)
      match take_outbox plane ~dst with
      | [] -> Engine.send ctx ~dst (Messages.Keyed { key; msg })
      | kentries ->
        Engine.send ctx ~dst (Messages.Keyed_envelope { kentries; key; msg }))
    | Some plane when is_client_relay msg && Option.is_some relay_window ->
      (* server -> reader data: hold for the cross-key relay window *)
      let box =
        match Hashtbl.find_opt plane.p_relay dst with
        | Some box -> box
        | None ->
          let box = { items = []; rarmed = false } in
          Hashtbl.replace plane.p_relay dst box;
          box
      in
      box.items <- (key, msg) :: box.items;
      if not box.rarmed then begin
        box.rarmed <- true;
        match relay_window with
        | Some w ->
          Engine.schedule_local ctx ~delay:w (fun () ->
              flush_relays plane ctx ~dst)
        | None -> ()
      end
    | Some _ | None -> Engine.send ctx ~dst (Messages.Keyed { key; msg })
  in
  let wire_gossip ctx (entry : Messages.gossip_entry) =
    let src = Engine.self ctx in
    match Hashtbl.find_opt t.plane_of_pid src with
    | None -> false  (* not a shared-plane process: keep the per-key outbox *)
    | Some plane ->
      let ke = { Messages.ke_key = key; ke_entry = entry } in
      let now = Engine.now_ctx ctx in
      Array.iter
        (fun dst ->
          if dst <> src then begin
            let box = outbox_for plane ~dst in
            box.entries <- (now, ke) :: box.entries;
            if not box.armed then begin
              box.armed <- true;
              Engine.schedule_local ctx ~delay:staleness (fun () ->
                  flush_outbox ~staleness plane ctx ~dst)
            end
          end)
        inst.iconfig.Config.servers;
      true
  in
  { Config.wire_send; wire_gossip = Some wire_gossip }

(* ------------------------------------------------------------------ *)
(* Instances *)

let instance t key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
    if key < 0 then invalid_arg "Keyspace: negative key";
    if (not t.keyed) && key <> 0 then
      invalid_arg "Keyspace: the single-key shim serves only key 0";
    let iphys =
      if t.keyed then Placement.servers_of t.placement ~key
      else Array.init (Array.length t.server_pids) (fun i -> i)
    in
    let pids = Array.map (fun s -> t.server_pids.(s)) iphys in
    let iconfig = Config.derive t.template ~servers:pids in
    (* keyed instances relay through the shared plane, which batches
       client-bound frames across keys under the template's relay
       window — so the instance itself must not also hold them back
       (double-buffering would compound the delay, stretch registration
       windows and generate extra traffic, not less) *)
    let iconfig =
      if t.keyed then
        { iconfig with
          Config.plane =
            { iconfig.Config.plane with Config.relay_batch = None }
        }
      else iconfig
    in
    let iservers =
      Array.init (Array.length pids) (fun c -> Server.create iconfig ~coordinate:c)
    in
    let inst = { key; iconfig; iservers; iphys; repair_seq = ref 0 } in
    if t.keyed then Config.set_wire iconfig (wire t inst)
    else
      (* shim: handlers go straight to the per-key automata, exactly as
         [Deployment.deploy] wires them *)
      Array.iteri
        (fun c pid -> Engine.set_handler t.engine pid (Server.handler iservers.(c)))
        pids;
    Array.iteri
      (fun c s -> Hashtbl.replace t.planes.(iphys.(c)).p_states key s)
      iservers;
    Hashtbl.replace t.instances key inst;
    t.keys_rev <- key :: t.keys_rev;
    inst

let materialize t ~key = ignore (instance t key : instance)

let find_instance t key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> inst
  | None -> invalid_arg (Printf.sprintf "Keyspace: unknown key %d" key)

(* ------------------------------------------------------------------ *)
(* Shared-plane handlers (keyed mode only) *)

let apply_kentries plane ctx kentries =
  List.iter
    (fun (ke : Messages.keyed_entry) ->
      match Hashtbl.find_opt plane.p_states ke.Messages.ke_key with
      | Some state -> Server.apply_gossip_entry state ctx ke.Messages.ke_entry
      | None -> ())
    kentries

let deliver_to_server t plane ctx ~src ~key msg =
  let state =
    match Hashtbl.find_opt plane.p_states key with
    | Some state -> state
    | None ->
      (* first frame for a key this keyspace has not materialized yet
         (a client computed the placement independently) *)
      ignore (instance t key : instance);
      Hashtbl.find plane.p_states key
  in
  Server.handler state ctx ~src msg

let plane_handler t plane ctx ~src msg =
  match msg with
  | Messages.Keyed { key; msg } -> deliver_to_server t plane ctx ~src ~key msg
  | Messages.Keyed_envelope { kentries; key; msg } ->
    apply_kentries plane ctx kentries;
    deliver_to_server t plane ctx ~src ~key msg
  | Messages.Keyed_gossip { kentries } -> apply_kentries plane ctx kentries
  | _ -> ()  (* un-keyed traffic never reaches a shared-plane server *)

let client_handler lanes_handler client ctx ~src msg =
  let route key m =
    match Hashtbl.find_opt client.c_lanes key with
    | Some lane -> lanes_handler lane ctx ~src m
    | None -> ()  (* reply for a lane this client never opened: stale *)
  in
  match msg with
  | Messages.Keyed { key; msg } -> route key msg
  | Messages.Keyed_batch { kitems } ->
    List.iter (fun (key, m) -> route key m) kitems
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Construction *)

let create ~engine ~placement ?(mode = `Sharded) ?initial_value ?value_len
    ?error_prone ?disperse_step ?md_mode ?gossip ?plane:plane_tuning
    ?systematic ~num_writers ~num_readers () =
  if num_writers < 0 || num_readers < 0 then
    invalid_arg "Keyspace.create: negative client count";
  let topology = Placement.topology placement in
  let params = Placement.params placement in
  let m = Topology.servers topology in
  (match mode with
  | `Single ->
    if m <> Params.n params then
      invalid_arg "Keyspace.create: the single-key shim needs exactly n servers"
  | `Sharded -> ());
  let server_pids =
    Array.init m (fun i -> Engine.reserve engine ~name:(Printf.sprintf "server%d" i))
  in
  let writer_pids =
    Array.init num_writers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "writer%d" i))
  in
  let reader_pids =
    Array.init num_readers (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "reader%d" i))
  in
  (* client retries are armed exactly when sends are retransmitted,
     same rule as [Deployment.deploy] *)
  let client_retry =
    if Engine.reliable_transport engine then
      Some Config.default_client_retry_interval
    else None
  in
  let template =
    Config.make ~params
      ~servers:(Array.sub server_pids 0 (Params.n params))
      ?initial_value ?value_len ?error_prone ?disperse_step ?md_mode ?gossip
      ?plane:plane_tuning ?client_retry ?systematic ()
  in
  (* encode the shared initial value once; every derived instance
     inherits the cache entry *)
  ignore (Config.encode template template.Config.initial_value
          : Erasure.Fragment.t array);
  let planes =
    Array.init m (fun i ->
        { p_pid = server_pids.(i);
          p_states = Hashtbl.create 16;
          p_outbox = Hashtbl.create 8;
          p_relay = Hashtbl.create 8
        })
  in
  let plane_of_pid = Hashtbl.create (2 * m) in
  Array.iter (fun p -> Hashtbl.replace plane_of_pid p.p_pid p) planes;
  let t =
    { engine;
      placement;
      template;
      server_pids;
      planes;
      plane_of_pid;
      writer_clients =
        Array.map (fun pid -> { c_pid = pid; c_lanes = Hashtbl.create 8 }) writer_pids;
      reader_clients =
        Array.map (fun pid -> { c_pid = pid; c_lanes = Hashtbl.create 8 }) reader_pids;
      instances = Hashtbl.create 64;
      keys_rev = [];
      keyed = (match mode with `Sharded -> true | `Single -> false)
    }
  in
  (match mode with
  | `Sharded ->
    Array.iter
      (fun plane ->
        Engine.set_handler engine plane.p_pid (plane_handler t plane))
      planes;
    Array.iter
      (fun client ->
        Engine.set_handler engine client.c_pid
          (client_handler Writer.handler client))
      t.writer_clients;
    Array.iter
      (fun client ->
        Engine.set_handler engine client.c_pid
          (client_handler Reader.handler client))
      t.reader_clients
  | `Single ->
    (* eager instance + one lane per client, wired directly: the same
       construction [Deployment.deploy] performs *)
    let inst = instance t 0 in
    Array.iter
      (fun client ->
        let lane = Writer.create inst.iconfig in
        Hashtbl.replace client.c_lanes 0 lane;
        Engine.set_handler engine client.c_pid (Writer.handler lane))
      t.writer_clients;
    Array.iter
      (fun client ->
        let lane = Reader.create inst.iconfig in
        Hashtbl.replace client.c_lanes 0 lane;
        Engine.set_handler engine client.c_pid (Reader.handler lane))
      t.reader_clients);
  t

(* ------------------------------------------------------------------ *)
(* Operations *)

let writer_lane t client key =
  match Hashtbl.find_opt client.c_lanes key with
  | Some lane -> lane
  | None ->
    let inst = instance t key in
    let lane = Writer.create inst.iconfig in
    Hashtbl.replace client.c_lanes key lane;
    lane

let reader_lane t client key =
  match Hashtbl.find_opt client.c_lanes key with
  | Some lane -> lane
  | None ->
    let inst = instance t key in
    let lane = Reader.create inst.iconfig in
    Hashtbl.replace client.c_lanes key lane;
    lane

let write t ~key ~writer ~at ?on_done value =
  let client = t.writer_clients.(writer) in
  let lane = writer_lane t client key in
  Engine.inject t.engine ~at client.c_pid (fun ctx ->
      ignore (Writer.invoke lane ctx ~value ?on_done () : int))

let read t ~key ~reader ~at ?on_done () =
  let client = t.reader_clients.(reader) in
  let lane = reader_lane t client key in
  Engine.inject t.engine ~at client.c_pid (fun ctx ->
      ignore (Reader.invoke lane ctx ?on_done () : int))

(* ------------------------------------------------------------------ *)
(* Observation *)

let keys t = List.sort Int.compare t.keys_rev
let engine t = t.engine
let placement t = t.placement
let topology t = Placement.topology t.placement
let params t = t.template.Config.params
let initial_value t = t.template.Config.initial_value
let num_servers t = Array.length t.server_pids
let num_writers t = Array.length t.writer_clients
let num_readers t = Array.length t.reader_clients
let server_pid t ~server = t.server_pids.(server)
let writer_pid t ~writer = t.writer_clients.(writer).c_pid
let reader_pid t ~reader = t.reader_clients.(reader).c_pid
let config t ~key = (find_instance t key).iconfig
let history t ~key = (find_instance t key).iconfig.Config.history
let cost t ~key = (find_instance t key).iconfig.Config.cost
let probe t ~key = (find_instance t key).iconfig.Config.probe
(* placement is a pure function of the key, so answer without
   materializing the instance *)
let placement_of t ~key =
  match Hashtbl.find_opt t.instances key with
  | Some inst -> Array.copy inst.iphys
  | None ->
    if key < 0 then invalid_arg "Keyspace: negative key";
    if t.keyed then Placement.servers_of t.placement ~key
    else if key = 0 then
      Array.init (Array.length t.server_pids) (fun i -> i)
    else invalid_arg "Keyspace: the single-key shim serves only key 0"

let fold_instances t f acc =
  List.fold_left (fun acc key -> f acc (Hashtbl.find t.instances key)) acc (keys t)

let all_complete t =
  fold_instances t
    (fun acc inst -> acc && History.all_complete inst.iconfig.Config.history)
    true

let check_atomicity t =
  let rec go = function
    | [] -> Ok ()
    | key :: rest -> (
      let inst = Hashtbl.find t.instances key in
      match
        Atomicity.check_tagged
          ~initial_value:inst.iconfig.Config.initial_value
          (History.records inst.iconfig.Config.history)
      with
      | Ok () -> go rest
      | Error v -> Error (key, v))
  in
  go (keys t)

let repairing t =
  fold_instances t
    (fun acc inst -> acc || Array.exists Server.repairing inst.iservers)
    false

let scrub_clean t =
  fold_instances t
    (fun acc inst -> acc && Array.for_all Server.disk_ok inst.iservers)
    true

let total_storage t =
  fold_instances t
    (fun acc inst -> acc +. Cost.max_total_storage inst.iconfig.Config.cost)
    0.

let all_live t =
  Array.for_all (fun pid -> not (Engine.is_crashed t.engine pid)) t.server_pids

(* ------------------------------------------------------------------ *)
(* Fault injection — machine-level: faults hit a physical server and
   with it every key instance it hosts *)

let check_server t server ~where =
  if server < 0 || server >= Array.length t.server_pids then
    invalid_arg (Printf.sprintf "Keyspace.%s: server index out of range" where)

let crash_server t ~server ~at =
  check_server t server ~where:"crash_server";
  Engine.crash_at t.engine t.server_pids.(server) at

(* Keys hosted by one physical server, ascending — the deterministic
   order repairs and corruptions sweep in. *)
let[@lint.allow
     "D3: the fold's arbitrary order is erased by the sort before the \
      list can reach a caller"] hosted_keys t ~server =
  let keys = Hashtbl.fold (fun key _ acc -> key :: acc) t.planes.(server).p_states [] in
  List.sort Int.compare keys

let coordinate_on inst ~server =
  let found = ref (-1) in
  Array.iteri (fun c s -> if s = server then found := c) inst.iphys;
  assert (!found >= 0);
  !found

let repair_server t ~server ~at =
  check_server t server ~where:"repair_server";
  let pid = t.server_pids.(server) in
  Engine.restore_at t.engine pid at;
  (* the injection is pushed after the restore event at the same
     timestamp, so it runs on the freshly restored process *)
  Engine.inject t.engine ~at pid (fun ctx ->
      (* the crash lost every armed flush timer with its closures;
         pending outbox/relay state is volatile and starts empty *)
      let plane = t.planes.(server) in
      Hashtbl.reset plane.p_outbox;
      Hashtbl.reset plane.p_relay;
      List.iter
        (fun key ->
          let inst = Hashtbl.find t.instances key in
          let c = coordinate_on inst ~server in
          let op = repair_op_base + !(inst.repair_seq) in
          incr inst.repair_seq;
          Server.begin_repair inst.iservers.(c) ctx ~op)
        (hosted_keys t ~server))

let corrupt_server t ~server ~at =
  check_server t server ~where:"corrupt_server";
  let pid = t.server_pids.(server) in
  Engine.inject t.engine ~at pid (fun ctx ->
      List.iter
        (fun key ->
          let inst = Hashtbl.find t.instances key in
          let c = coordinate_on inst ~server in
          (* seeded from the schedule and the key so the injected
             garbage is replayable and differs across instances *)
          let seed =
            (key * 514_229) + (c * 65_537) + int_of_float (at *. 1024.0)
          in
          Probe.emit inst.iconfig.Config.probe
            (Probe.Rot_injected { server = c; time = Engine.now_ctx ctx });
          Server.corrupt_disk inst.iservers.(c) ~seed)
        (hosted_keys t ~server))

(* All links between a server group and every other process of the
   keyspace, both directions, in a deterministic order (so partition
   and heal name the same link-set). *)
let isolation_links t ~servers =
  let m = Array.length t.server_pids in
  let isolated = Array.make m false in
  List.iter
    (fun s ->
      check_server t s ~where:"partition";
      isolated.(s) <- true)
    servers;
  let inside =
    List.map (fun s -> t.server_pids.(s)) (List.sort_uniq Int.compare servers)
  in
  let outside = ref [] in
  Array.iteri
    (fun s pid -> if not isolated.(s) then outside := pid :: !outside)
    t.server_pids;
  Array.iter (fun c -> outside := c.c_pid :: !outside) t.writer_clients;
  Array.iter (fun c -> outside := c.c_pid :: !outside) t.reader_clients;
  let outside = List.rev !outside in
  List.concat_map
    (fun inner ->
      List.concat_map (fun outer -> [ (inner, outer); (outer, inner) ]) outside)
    inside

let partition_servers t ~servers ~at =
  Engine.partition_at t.engine ~links:(isolation_links t ~servers) ~at

let heal_servers t ~servers ~at =
  Engine.heal_at t.engine ~links:(isolation_links t ~servers) ~at

let domain_servers t ~domain = Topology.domain_members (topology t) domain

let crash_domain t ~domain ~at =
  List.iter (fun s -> crash_server t ~server:s ~at) (domain_servers t ~domain)

let repair_domain t ~domain ~at =
  List.iter (fun s -> repair_server t ~server:s ~at) (domain_servers t ~domain)

let partition_domain t ~domain ~at =
  partition_servers t ~servers:(domain_servers t ~domain) ~at

let heal_domain t ~domain ~at =
  heal_servers t ~servers:(domain_servers t ~domain) ~at

let shutdown t ~at =
  Array.iter (fun pid -> Engine.crash_at t.engine pid at) t.server_pids;
  Array.iter (fun c -> Engine.crash_at t.engine c.c_pid at) t.writer_clients;
  Array.iter (fun c -> Engine.crash_at t.engine c.c_pid at) t.reader_clients

module Engine = Simnet.Engine
module Tag = Protocol.Tag
module Params = Protocol.Params
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Fragment = Erasure.Fragment
module Int_tbl = Protocol.Int_tbl

type registration = { reader : int; tr : Tag.t }

(* In-flight repair of a restored server (the paper's future work (ii)).
   The server refuses quorum duties until it holds an element whose tag
   is at least the maximum it has seen in replies from n-1-f distinct
   peers — which covers every write that completed before the repair
   started (see the safety note on [Deployment.repair_server]). *)
type repair_state = {
  op : int;
  mutable max_seen : Tag.t;
  repliers : (int, unit) Hashtbl.t; (* coordinates heard from *)
  collected : (Tag.t * int, Fragment.t) Hashtbl.t;
  mutable attempts : int;
  mutable deferred : (int * Messages.t) list
      (* quorum queries (Write_get / Read_get / Repair_get) that arrived
         mid-repair, newest first. Over the reliable transport the
         channel has already acked them, so silently ignoring them would
         lose them forever — they are answered in [finish_repair]. *)
}

(* Relays to one reader buffered during a [relay_batch] window, shipped
   as a single Relay_batch frame when the window closes. *)
type relay_buffer = {
  reader : int;
  mutable items : (Tag.t * Fragment.t) list (* newest first *)
}

(* In-flight targeted fragment repair of a quarantined store: the
   scrubber (or a read-path detection) broadcast Repair_get under a
   dedicated op id and collects peer (tag, fragment) pairs until some
   tag at least as fresh as the stored one has decode_threshold distinct
   coordinates. Unlike a crash-repair the server keeps all its volatile
   state and keeps answering tag queries — only the payload is
   untrusted. *)
type scrub_repair = {
  sop : int;
  s_collected : (Tag.t * int, Fragment.t) Hashtbl.t
}

(* Failure-detector and scrubber state, allocated iff [Config.healing]
   is armed. All cadences run on sim-time local actions; [hgen] guards
   the tick chains — a pre-crash tick firing after a restore would
   otherwise duplicate the chain restarted by [begin_repair]. *)
type heal_state = {
  hcfg : Config.healing;
  last_heard : float array; (* per coordinate; own slot unused *)
  suspected : bool array; (* suspicion voiced this silence episode *)
  votes : (int, unit) Hashtbl.t array; (* per target: voters heard *)
  fired : bool array; (* auto-repair hook already pulled for target *)
  mutable hgen : int;
  mutable scrub : scrub_repair option;
  mutable scrub_count : int (* scrub-repair rounds started, for op ids *)
}

type t = {
  config : Config.t;
  coordinate : int;
  disk : Disk.t;
  registered : (int, registration) Hashtbl.t; (* rid -> Rc entry *)
  h : (int, Int_tbl.Set.t Int_tbl.Map.t) Hashtbl.t;
      (* The paper's H — the set of (tag, coordinate) dispersals seen per
         read — stored as rid -> Tag.pack tag -> coordinate set, so the
         unregistration test (how many distinct coordinates dispersed
         this tag?) is a table length instead of a fold over the set. *)
  md_delivered : Int_tbl.Set.t;
  completed : Int_tbl.Set.t;
      (* rids whose READ-COMPLETE was delivered locally. (H's tombstone
         rows can't serve here: a relay of the initial value writes the
         same (rid, t0, self) triple.) Used to prune dead gossip. *)
  seq : int ref;
  outbox : Messages.gossip_entry list array;
      (* Coalesced plane: pending READ-DISPERSE entries per destination
         coordinate, newest first; own slot unused. *)
  outbox_armed : bool array; (* a staleness flush is scheduled for slot i *)
  relay_buf : (int, relay_buffer) Hashtbl.t; (* rid -> open batch window *)
  pending_meta : (int, unit) Hashtbl.t;
      (* mids whose MD-META forward is sitting out a stagger delay *)
  mutable repair : repair_state option;
  mutable heal : heal_state option;
  mutable err_window : (float * float) option
      (* SODAerr: when set, the error-prone fault is active only inside
         [start, stop) — outside it local disk reads are clean. [None]
         keeps the static always-on model. *)
}

let create config ~coordinate =
  let fragments = Config.encode config config.Config.initial_value in
  let fragment = fragments.(coordinate) in
  Cost.storage_set config.Config.cost ~server:coordinate
    ~bytes:(Fragment.size fragment);
  let n = Params.n config.Config.params in
  { config;
    coordinate;
    disk = Disk.create ~tag:Tag.initial ~fragment;
    registered = Hashtbl.create 8;
    h = Hashtbl.create 8;
    md_delivered = Int_tbl.Set.create 64;
    completed = Int_tbl.Set.create 16;
    seq = ref 0;
    outbox = Array.make n [];
    outbox_armed = Array.make n false;
    relay_buf = Hashtbl.create 4;
    pending_meta = Hashtbl.create 4;
    repair = None;
    heal = None;
    err_window = None
  }

let stored_tag t = Disk.tag t.disk
let stored_fragment t = Disk.fragment_unchecked t.disk
let repairing t = Option.is_some t.repair
let quarantined t = Disk.quarantined t.disk
let disk_ok t = (not (Disk.quarantined t.disk)) && Disk.verify t.disk
let corrupt_disk t ~seed = Disk.rot t.disk ~seed
let set_error_window t w = t.err_window <- w

let[@lint.allow
     "D3: the fold's arbitrary order is erased by the sort before the \
      list can reach a caller"] registered_reads t =
  List.sort Int.compare
    (Hashtbl.fold (fun rid _ acc -> rid :: acc) t.registered [])

let[@lint.allow
     "D3: commutative integer sum — iteration order cannot change the \
      result"] history_entries t =
  Hashtbl.fold
    (fun _ tags acc ->
      Int_tbl.Map.fold
        (fun _ coords acc -> acc + Int_tbl.Set.length coords)
        tags acc)
    t.h 0

(* Registered reads in ascending rid order. Relays (and the READ-DISPERSE
   gossip they trigger) are message sends, so their emission order is part
   of the trace: iterating the registration table directly would make
   traces — and under the reliable transport, retransmission schedules —
   depend on Hashtbl's nondeterministic iteration order (D3). *)
let[@lint.allow
     "D3: materialized and sorted by rid before any send can observe the \
      order"] registered_sorted t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun rid reg acc -> (rid, reg) :: acc) t.registered [])

let h_tags t rid =
  match Hashtbl.find_opt t.h rid with
  | Some tags -> tags
  | None ->
    let tags = Int_tbl.Map.create ~dummy:(Int_tbl.Set.create 1) 8 in
    Hashtbl.add t.h rid tags;
    tags

let h_add t rid ~tag ~coordinate =
  let tags = h_tags t rid in
  let key = Tag.pack tag in
  let coords =
    match Int_tbl.Map.find_opt tags key with
    | Some coords -> coords
    | None ->
      let coords = Int_tbl.Set.create 4 in
      Int_tbl.Map.replace tags key coords;
      coords
  in
  ignore (Int_tbl.Set.add coords coordinate : bool)

let h_mem t rid ~tag ~coordinate =
  match Hashtbl.find_opt t.h rid with
  | None -> false
  | Some tags -> (
    match Int_tbl.Map.find_opt tags (Tag.pack tag) with
    | None -> false
    | Some coords -> Int_tbl.Set.mem coords coordinate)

let h_count_tag t rid tag =
  match Hashtbl.find_opt t.h rid with
  | None -> 0
  | Some tags -> (
    match Int_tbl.Map.find_opt tags (Tag.pack tag) with
    | None -> 0
    | Some coords -> Int_tbl.Set.length coords)

let unregister t ctx rid =
  Hashtbl.remove t.registered rid;
  Hashtbl.remove t.h rid;
  Probe.emit t.config.Config.probe
    (Probe.Unregistered
       { rid; server = t.coordinate; time = Engine.now_ctx ctx })

(* ------------------------------------------------------------------ *)
(* Batched message plane (see "Batched message plane" in DESIGN.md) *)

(* A read whose READ-COMPLETE already reached this server needs no more
   gossip from it: every peer unregisters through its own READ-COMPLETE
   delivery, so the queued entry would only burn a message. *)
let entry_live t (e : Messages.gossip_entry) =
  not (Int_tbl.Set.mem t.completed e.Messages.rid)

(* Drain destination [j]'s outbox, dropping entries for completed reads,
   in enqueue order. *)
let take_outbox t j =
  match t.outbox.(j) with
  | [] -> []
  | pending ->
    t.outbox.(j) <- [];
    List.rev (List.filter (entry_live t) pending)

(* Bounded-staleness flush: whatever could not hitch a ride on regular
   traffic within [gossip_staleness] goes out as a standalone Gossip, so
   unregistration of crashed readers cannot stall behind a quiet link. *)
let flush_gossip t ctx j =
  t.outbox_armed.(j) <- false;
  match take_outbox t j with
  | [] -> ()
  | entries ->
    Config.send t.config ctx ~dst:t.config.Config.servers.(j)
      (Messages.Gossip { entries })

let gossip_enqueue t ctx (entry : Messages.gossip_entry) =
  let n = Params.n t.config.Config.params in
  let staleness = t.config.Config.plane.Config.gossip_staleness in
  for j = 0 to n - 1 do
    if j <> t.coordinate then begin
      t.outbox.(j) <- entry :: t.outbox.(j);
      if not t.outbox_armed.(j) then begin
        t.outbox_armed.(j) <- true;
        Engine.schedule_local ctx ~delay:staleness (fun () ->
            flush_gossip t ctx j)
      end
    end
  done

(* Every server->server send flushes the destination's pending gossip by
   wrapping the message in an envelope — piggybacking costs nothing, the
   envelope is still one message. In `Broadcast / `Off modes the outbox
   is never fed, and this is exactly [Engine.send]. *)
let send_to_coordinate t ctx ~coordinate:j msg =
  let msg =
    match t.config.Config.plane.Config.gossip_mode with
    | `Broadcast | `Off -> msg
    | `Coalesced -> (
      match take_outbox t j with
      | [] -> msg
      | entries -> Messages.Envelope { entries; msg })
  in
  Config.send t.config ctx ~dst:t.config.Config.servers.(j) msg

(* Same, for destinations addressed by pid (repair replies): a pid that
   is not a server coordinate gets a plain send. *)
let send_to_pid t ctx ~dst msg =
  match t.config.Config.plane.Config.gossip_mode with
  | `Broadcast | `Off -> Config.send t.config ctx ~dst msg
  | `Coalesced -> (
    match Config.coordinate_of t.config ~pid:dst with
    | j -> send_to_coordinate t ctx ~coordinate:j msg
    | exception Not_found -> Config.send t.config ctx ~dst msg)

(* Close the [relay_batch] window for [rid]: everything buffered since
   it opened leaves as one framed message. Registration state is not
   consulted — the buffered elements were already counted in H (and
   gossiped), so they must reach the reader even if the read was
   unregistered meanwhile. *)
let flush_relays t ctx rid =
  match Hashtbl.find_opt t.relay_buf rid with
  | None -> ()
  | Some buf -> (
    Hashtbl.remove t.relay_buf rid;
    match buf.items with
    | [] -> ()
    | [ (tag, fragment) ] ->
      Config.send t.config ctx ~dst:buf.reader (Messages.Relay { rid; tag; fragment })
    | items ->
      Config.send t.config ctx ~dst:buf.reader
        (Messages.Relay_batch { rid; items = List.rev items }))

(* ------------------------------------------------------------------ *)

(* Send one coded element to a registered reader and announce it to the
   other servers via READ-DISPERSE, so that everyone can count towards
   the unregistration threshold. Under the batched plane the element is
   buffered for the relay window and the announcement queued in the
   outbox, but H, the cost ledger and the probe stream see the relay at
   decision time either way. *)
let relay_to_reader t ctx ~rid ~(reg : registration) ~tag ~fragment =
  (match t.config.Config.plane.Config.relay_batch with
  | None ->
    Config.send t.config ctx ~dst:reg.reader (Messages.Relay { rid; tag; fragment })
  | Some window -> (
    match Hashtbl.find_opt t.relay_buf rid with
    | Some buf -> buf.items <- (tag, fragment) :: buf.items
    | None ->
      Hashtbl.replace t.relay_buf rid
        { reader = reg.reader; items = [ (tag, fragment) ] };
      Engine.schedule_local ctx ~delay:window (fun () ->
          flush_relays t ctx rid)));
  Cost.comm t.config.Config.cost ~op:rid ~bytes:(Fragment.size fragment);
  Probe.emit t.config.Config.probe
    (Probe.Relayed
       { rid; server = t.coordinate; tag; time = Engine.now_ctx ctx });
  h_add t rid ~tag ~coordinate:t.coordinate;
  match t.config.Config.plane.Config.gossip_mode with
  | `Broadcast ->
    Md.meta_send ctx t.config ~seq:t.seq
      (Messages.Read_disperse { tag; server_index = t.coordinate; rid })
  | `Coalesced -> (
    let entry = { Messages.tag; server_index = t.coordinate; rid } in
    (* a keyspace wire may claim the entry for cross-key coalescing;
       otherwise it queues in this instance's own outbox *)
    match Config.gossip_hook t.config with
    | Some hook when hook ctx entry -> ()
    | Some _ | None -> gossip_enqueue t ctx entry)
  | `Off -> ()

(* Fresh detection of bit-rot: the checksum just failed for the first
   time this episode (Disk.read has flipped the store to quarantined).
   Instrumentation only — launching the recovery is the caller's job,
   so the scrub path and the read path share one entry point. *)
let detect_corruption t ctx =
  (match t.config.Config.healing with
  | None -> ()
  | Some _ ->
    t.config.Config.heal_stats.Config.scrub_hits <-
      t.config.Config.heal_stats.Config.scrub_hits + 1);
  Engine.mark_scrub_hit ctx;
  Probe.emit t.config.Config.probe
    (Probe.Rot_detected { server = t.coordinate; time = Engine.now_ctx ctx })

(* Verified read of the stored coded element: [None] means the checksum
   does not match (now or earlier) and the fragment is quarantined —
   callers degrade gracefully by not shipping it anywhere. *)
let disk_read t ctx =
  let was_quarantined = Disk.quarantined t.disk in
  match Disk.read t.disk with
  | `Ok fragment -> Some fragment
  | `Corrupt ->
    if not was_quarantined then detect_corruption t ctx;
    None

(* SODAerr: is the error-prone fault currently active on this server? *)
let err_active t ctx =
  t.config.Config.error_prone.(t.coordinate)
  &&
  match t.err_window with
  | None -> true
  | Some (start, stop) ->
    let now = Engine.now_ctx ctx in
    now >= start && now < stop

(* Local disk read of the stored coded element; error-prone coordinates
   return a silently corrupted copy (the SODAerr fault model). The seed
   mixes the read id so different reads see independent corruption.
   [None] when the element is quarantined (checksum mismatch) — unlike
   the SODAerr model, detected corruption is withheld, not shipped. *)
let local_disk_read t ctx ~rid =
  match disk_read t ctx with
  | None -> None
  | Some fragment ->
    if err_active t ctx then
      Some (Fragment.corrupt fragment ~seed:(rid + (t.coordinate * 7919)))
    else Some fragment

(* ------------------------------------------------------------------ *)
(* Repair extension (paper's future work (ii)) *)

let repair_retry_interval = 40.0

(* Generous: repair rounds are cheap and a server that exhausts its
   budget is mute forever (its [repair] state never clears), so the cap
   exists only to let the simulation quiesce in degenerate schedules. *)
let repair_max_attempts = 50

let broadcast_repair_get t ctx ~op =
  Array.iteri
    (fun c _pid ->
      if c <> t.coordinate then
        send_to_coordinate t ctx ~coordinate:c (Messages.Repair_get { op }))
    t.config.Config.servers

(* ------------------------------------------------------------------ *)
(* Anti-entropy scrub: targeted fragment repair of a quarantined store.
   Reuses the crash-repair wire protocol (Repair_get / Repair_reply)
   under a dedicated op-id range, but unlike a crash-repair the server
   keeps its volatile state and keeps answering tag queries — only the
   payload is untrusted until enough peer fragments decode. *)

(* Crash-repair ops live at 1_000_000+ (see Deployment); scrub ops get
   their own range, keyed by coordinate so concurrent scrubs on
   different servers never collide. *)
let scrub_op_base = 2_000_000

let start_scrub_repair t ctx hs =
  hs.scrub_count <- hs.scrub_count + 1;
  let sop = scrub_op_base + (t.coordinate * 10_000) + hs.scrub_count in
  hs.scrub <- Some { sop; s_collected = Hashtbl.create 16 };
  broadcast_repair_get t ctx ~op:sop

(* Read-path detections kick the recovery immediately instead of waiting
   out the scrub cadence. No-op while a crash-repair is in flight (it
   will rebuild the whole store anyway) or when healing is off (plain
   degradation: the quarantined element is simply never shipped). *)
let ensure_scrub_repair t ctx =
  match t.heal with
  | None -> ()
  | Some hs ->
    if Option.is_none t.repair && Option.is_none hs.scrub then
      start_scrub_repair t ctx hs

let cancel_scrub t =
  match t.heal with
  | None -> ()
  | Some hs -> hs.scrub <- None

let maybe_finish_scrub t ctx =
  match t.heal with
  | None -> ()
  | Some hs -> (
    match hs.scrub with
    | None -> ()
    | Some sr ->
      let threshold = t.config.Config.decode_threshold in
      let[@lint.allow
           "D3: materialized and sorted (tag descending, coordinate \
            ascending) before any decision, so the decode input is \
            schedule-independent"] pairs =
        Hashtbl.fold
          (fun (tag, coordinate) fragment acc ->
            ((tag, coordinate), fragment) :: acc)
          sr.s_collected []
        |> List.sort (fun ((t1, c1), _) ((t2, c2), _) ->
               match Tag.compare t2 t1 with
               | 0 -> Int.compare c1 c2
               | cmp -> cmp)
      in
      (* Never regress the stored tag: it is metadata, intact under rot,
         and this server may have acked queries with it. Only a peer tag
         at least as fresh, held by decode_threshold distinct
         coordinates, may replace the payload. *)
      let own = Disk.tag t.disk in
      let rec scan = function
        | [] -> ()
        | ((tag, _), _) :: _ when Tag.( > ) own tag ->
          () (* sorted descending: nothing fresh enough remains *)
        | ((tag, _), _) :: _ as l -> (
          let same, rest =
            List.partition (fun ((t', _), _) -> Tag.equal t' tag) l
          in
          if List.length same < threshold then scan rest
          else
            match Erasure.Mds.decode t.config.Config.code (List.map snd same) with
            | value ->
              let fragments = Config.encode t.config value in
              let fragment = fragments.(t.coordinate) in
              hs.scrub <- None;
              Disk.store t.disk ~tag ~fragment;
              Cost.storage_set t.config.Config.cost ~server:t.coordinate
                ~bytes:(Fragment.size fragment);
              let stats = t.config.Config.heal_stats in
              stats.Config.scrub_repairs <- stats.Config.scrub_repairs + 1;
              Probe.emit t.config.Config.probe
                (Probe.Scrub_repaired
                   { server = t.coordinate; tag; time = Engine.now_ctx ctx });
              Engine.mark_healed ctx;
              (* registered readers whose local relay was withheld while
                 the store was quarantined get it now; H filters the ones
                 already served before the rot *)
              List.iter
                (fun (rid, reg) ->
                  if
                    Tag.( >= ) tag reg.tr
                    && not (h_mem t rid ~tag ~coordinate:t.coordinate)
                  then
                    match local_disk_read t ctx ~rid with
                    | Some fragment ->
                      relay_to_reader t ctx ~rid ~reg ~tag ~fragment
                    | None -> ())
                (registered_sorted t)
            | exception Erasure.Mds.Decode_failure _ ->
              (* SODAerr: too many error-prone replies at this tag for
                 now — retries on the scrub cadence will refresh them *)
              scan rest)
      in
      scan pairs)

let on_scrub_reply t ctx ~src ~op ~tag ~fragment =
  match t.heal with
  | None -> ()
  | Some hs -> (
    match hs.scrub with
    | Some sr when sr.sop = op -> (
      match Config.coordinate_of t.config ~pid:src with
      | coordinate ->
        Hashtbl.replace sr.s_collected (tag, coordinate) fragment;
        maybe_finish_scrub t ctx
      | exception Not_found -> ())
    | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* Heartbeat failure detector *)

let note_vote t ~target ~voter =
  match t.heal with
  | None -> ()
  | Some hs ->
    if target >= 0 && target < Array.length hs.fired && target <> t.coordinate
    then begin
      Hashtbl.replace hs.votes.(target) voter ();
      if
        (not hs.fired.(target))
        && Hashtbl.length hs.votes.(target)
           >= Params.f t.config.Config.params + 1
      then begin
        hs.fired.(target) <- true;
        match t.config.Config.auto_repair with
        | Some hook -> hook target
        | None -> ()
      end
    end

let on_heartbeat t ctx ~coordinate:c =
  match t.heal with
  | None -> ()
  | Some hs ->
    if c >= 0 && c < Array.length hs.last_heard && c <> t.coordinate
    then begin
      hs.last_heard.(c) <- Engine.now_ctx ctx;
      (* the silence episode is over: forgive the suspicion so a healed
         partition (a false positive) does not leave the target
         permanently voted against *)
      hs.suspected.(c) <- false;
      hs.fired.(c) <- false;
      Hashtbl.reset hs.votes.(c)
    end

let suspect t ctx hs ~target =
  hs.suspected.(target) <- true;
  let stats = t.config.Config.heal_stats in
  stats.Config.suspicions <- stats.Config.suspicions + 1;
  Engine.mark_suspect ctx ~target:t.config.Config.servers.(target);
  Probe.emit t.config.Config.probe
    (Probe.Suspected
       { target; by = t.coordinate; time = Engine.now_ctx ctx });
  note_vote t ~target ~voter:t.coordinate;
  Array.iteri
    (fun c _pid ->
      if c <> t.coordinate && c <> target then
        send_to_coordinate t ctx ~coordinate:c
          (Messages.Suspect_vote { target; voter = t.coordinate }))
    t.config.Config.servers

(* The two tick chains. [gen] kills stale chains: local actions queued
   before a crash are discarded only while the owner is down — one
   firing after the restore would duplicate the chain restarted by
   [begin_repair] if it were not generation-guarded. *)
let rec heartbeat_tick t ctx gen =
  match t.heal with
  | None -> ()
  | Some hs ->
    if gen = hs.hgen then begin
      Array.iteri
        (fun c _pid ->
          if c <> t.coordinate then
            send_to_coordinate t ctx ~coordinate:c
              (Messages.Heartbeat { coordinate = t.coordinate }))
        t.config.Config.servers;
      let stats = t.config.Config.heal_stats in
      stats.Config.heartbeats_sent <-
        stats.Config.heartbeats_sent
        + Array.length t.config.Config.servers
        - 1;
      let now = Engine.now_ctx ctx in
      for c = 0 to Array.length hs.last_heard - 1 do
        if
          c <> t.coordinate
          && (not hs.suspected.(c))
          && now -. hs.last_heard.(c) > hs.hcfg.Config.suspicion_timeout
        then suspect t ctx hs ~target:c
      done;
      Engine.schedule_local ctx ~delay:hs.hcfg.Config.heartbeat_period
        (fun () -> heartbeat_tick t ctx gen)
    end

let rec scrub_tick t ctx gen =
  match t.heal with
  | None -> ()
  | Some hs ->
    if gen = hs.hgen then begin
      let stats = t.config.Config.heal_stats in
      stats.Config.scrub_sweeps <- stats.Config.scrub_sweeps + 1;
      (if Option.is_none t.repair then
         match disk_read t ctx with
         | Some _ -> () (* checksum clean *)
         | None -> (
           (* quarantined: make sure a fragment repair is in flight; the
              sweep cadence doubles as its retry timer *)
           match hs.scrub with
           | Some sr -> broadcast_repair_get t ctx ~op:sr.sop
           | None -> start_scrub_repair t ctx hs));
      Engine.schedule_local ctx ~delay:hs.hcfg.Config.scrub_period (fun () ->
          scrub_tick t ctx gen)
    end

(* Arm the healing plane on this server; injected by the deployment at
   deploy time (and a no-op when [Config.healing] is [None], so unhealed
   deployments schedule not a single extra event). *)
let start_healing t ctx =
  match t.config.Config.healing with
  | None -> ()
  | Some hcfg ->
    let n = Params.n t.config.Config.params in
    let hs =
      { hcfg;
        last_heard = Array.make n (Engine.now_ctx ctx);
        suspected = Array.make n false;
        votes = Array.init n (fun _ -> Hashtbl.create 4);
        fired = Array.make n false;
        hgen = 0;
        scrub = None;
        scrub_count = 0
      }
    in
    t.heal <- Some hs;
    heartbeat_tick t ctx 0;
    scrub_tick t ctx 0

(* ------------------------------------------------------------------ *)

let answer_query t ctx ~src = function
  | Messages.Write_get { op } ->
    Config.send t.config ctx ~dst:src
      (Messages.Write_get_reply { op; tag = Disk.tag t.disk })
  | Messages.Read_get { rid } ->
    Config.send t.config ctx ~dst:src
      (Messages.Read_get_reply { rid; tag = Disk.tag t.disk })
  | Messages.Repair_get { op } -> (
    match local_disk_read t ctx ~rid:op with
    | None ->
      (* quarantined: shipping a garbage element into a peer's decode
         would be worse than silence — the requester's retry cadence
         re-asks once this store heals *)
      ensure_scrub_repair t ctx
    | Some fragment ->
      Cost.comm t.config.Config.cost ~op ~bytes:(Fragment.size fragment);
      send_to_pid t ctx ~dst:src
        (Messages.Repair_reply { op; tag = Disk.tag t.disk; fragment }))
  | _ -> ()

let finish_repair t ctx =
  match t.repair with
  | None -> ()
  | Some r ->
    t.repair <- None;
    Probe.emit t.config.Config.probe
      (Probe.Repaired
         { server = t.coordinate;
           tag = Disk.tag t.disk;
           time = Engine.now_ctx ctx
         });
    (* gated on healing so unhealed deployments trace bit-identically *)
    (match t.config.Config.healing with
    | Some _ -> Engine.mark_healed ctx
    | None -> ());
    (* Reads that registered while the repair was in flight had their
       local relay withheld (the stored element was untrusted, see
       [on_read_value]); send it now, or a reader counting on this
       server for its kth element would wait forever. *)
    let tag = Disk.tag t.disk in
    List.iter
      (fun (rid, reg) ->
        if Tag.( >= ) tag reg.tr then
          match local_disk_read t ctx ~rid with
          | Some fragment -> relay_to_reader t ctx ~rid ~reg ~tag ~fragment
          | None -> ())
      (registered_sorted t);
    (* Answer the quorum queries that were deferred mid-repair, in
       arrival order, with the freshly recovered tag. *)
    List.iter (fun (src, msg) -> answer_query t ctx ~src msg)
      (List.rev r.deferred)

(* Repair completes once n-1-f peers have answered and the server holds
   (or can decode) an element for the highest tag among the replies. *)
let maybe_finish_repair t ctx =
  match t.repair with
  | None -> ()
  | Some r ->
    let needed_repliers =
      Params.n t.config.Config.params - 1 - Params.f t.config.Config.params
    in
    if Hashtbl.length r.repliers >= needed_repliers then begin
      if Tag.( >= ) (Disk.tag t.disk) r.max_seen then finish_repair t ctx
      else begin
        let[@lint.allow
             "D3: materialized as (coordinate, fragment) pairs and sorted, \
              so the decoder sees replies in a schedule-independent order"]
            frags =
          Hashtbl.fold
            (fun (tag, coordinate) fragment acc ->
              if Tag.equal tag r.max_seen then (coordinate, fragment) :: acc
              else acc)
            r.collected []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
        in
        if List.length frags >= t.config.Config.decode_threshold then begin
          match Erasure.Mds.decode t.config.Config.code frags with
          | value ->
            let fragments = Config.encode t.config value in
            let fragment = fragments.(t.coordinate) in
            Disk.store t.disk ~tag:r.max_seen ~fragment;
            Cost.storage_set t.config.Config.cost ~server:t.coordinate
              ~bytes:(Fragment.size fragment);
            Probe.emit t.config.Config.probe
              (Probe.Stored
                 { server = t.coordinate;
                   tag = r.max_seen;
                   time = Engine.now_ctx ctx
                 });
            finish_repair t ctx
          | exception Erasure.Mds.Decode_failure _ ->
            (* too many corrupted replies for this tag yet; more replies
               or a retry round will help *)
            ()
        end
      end
    end

let rec schedule_repair_retry t ctx =
  Engine.schedule_local ctx ~delay:repair_retry_interval (fun () ->
      match t.repair with
      | None -> ()
      | Some r ->
        if r.attempts < repair_max_attempts then begin
          r.attempts <- r.attempts + 1;
          broadcast_repair_get t ctx ~op:r.op;
          schedule_repair_retry t ctx
        end)

(* Called right after [Engine.restore_at] fires: volatile state is gone
   (the crash lost it), the element reverts to the initial state, and
   the server starts fetching the current one. Until repair finishes it
   answers no quorum queries. *)
let begin_repair t ctx ~op =
  let fragments = Config.encode t.config t.config.Config.initial_value in
  let fragment = fragments.(t.coordinate) in
  Disk.store t.disk ~tag:Tag.initial ~fragment;
  Cost.storage_set t.config.Config.cost ~server:t.coordinate
    ~bytes:(Fragment.size fragment);
  Hashtbl.reset t.registered;
  Hashtbl.reset t.h;
  Int_tbl.Set.reset t.md_delivered;
  Int_tbl.Set.reset t.completed;
  Array.fill t.outbox 0 (Array.length t.outbox) [];
  Array.fill t.outbox_armed 0 (Array.length t.outbox_armed) false;
  Hashtbl.reset t.relay_buf;
  Hashtbl.reset t.pending_meta;
  t.repair <-
    Some
      { op;
        max_seen = Tag.initial;
        repliers = Hashtbl.create 8;
        collected = Hashtbl.create 16;
        attempts = 0;
        deferred = []
      };
  (* the crash lost the detector's and scrubber's timers too: reset
     their state (a freshly restored server has heard everyone "now" —
     it must re-earn its suspicions) and restart the tick chains under a
     new generation, killing any pre-crash chain that survived in the
     event queue *)
  (match t.heal with
  | None -> ()
  | Some hs ->
    let now = Engine.now_ctx ctx in
    Array.fill hs.last_heard 0 (Array.length hs.last_heard) now;
    Array.fill hs.suspected 0 (Array.length hs.suspected) false;
    Array.iter Hashtbl.reset hs.votes;
    Array.fill hs.fired 0 (Array.length hs.fired) false;
    hs.scrub <- None;
    hs.hgen <- hs.hgen + 1;
    heartbeat_tick t ctx hs.hgen;
    scrub_tick t ctx hs.hgen);
  Probe.emit t.config.Config.probe
    (Probe.Repair_started { server = t.coordinate; time = Engine.now_ctx ctx });
  broadcast_repair_get t ctx ~op;
  schedule_repair_retry t ctx

let on_repair_reply t ctx ~src ~op ~tag ~fragment =
  match t.repair with
  | Some r when r.op = op -> begin
    match Config.coordinate_of t.config ~pid:src with
    | coordinate ->
      Hashtbl.replace r.repliers coordinate ();
      if Tag.( > ) tag r.max_seen then r.max_seen <- tag;
      Hashtbl.replace r.collected (tag, coordinate) fragment;
      maybe_finish_repair t ctx
    | exception Not_found -> ()
  end
  | Some _ | None ->
    (* not a crash-repair reply — maybe a scrub's (same wire protocol,
       disjoint op ranges) *)
    on_scrub_reply t ctx ~src ~op ~tag ~fragment

(* Fig. 5, "On md-value-deliver(tw, c's)": relay to registered readers,
   adopt the element if its tag is newer, acknowledge the writer. *)
let md_value_deliver t ctx ~op ~tag:tw ~fragment =
  List.iter
    (fun (rid, reg) ->
      if Tag.( >= ) tw reg.tr then
        relay_to_reader t ctx ~rid ~reg ~tag:tw ~fragment)
    (registered_sorted t);
  if Tag.( > ) tw (Disk.tag t.disk) then begin
    (* adopting a fresh element also heals a quarantined store by
       overwrite (the checksum is recomputed), making an in-flight
       scrub repair moot *)
    Disk.store t.disk ~tag:tw ~fragment;
    cancel_scrub t;
    Cost.storage_set t.config.Config.cost ~server:t.coordinate
      ~bytes:(Fragment.size fragment);
    Probe.emit t.config.Config.probe
      (Probe.Stored
         { server = t.coordinate; tag = tw; time = Engine.now_ctx ctx });
    (* a delivery can complete an in-flight repair by itself *)
    maybe_finish_repair t ctx
  end;
  (* The writer's id is part of the tag, so the acknowledgement needs no
     extra routing state. *)
  if tw.Tag.w >= 0 then
    Config.send t.config ctx ~dst:tw.Tag.w (Messages.Write_ack { op; tag = tw })

(* Fig. 5, "On md-meta-deliver(READ-VALUE, (r, tr))". *)
let on_read_value t ctx ~rid ~reader ~tr =
  (* The tombstone left by a READ-COMPLETE that raced ahead is kept (not
     consumed): clients over the reliable transport re-broadcast
     READ-VALUE until the read returns, and a spent tombstone would let
     a late retry re-register a finished read as a ghost. *)
  let already_complete = h_mem t rid ~tag:Tag.initial ~coordinate:t.coordinate in
  if not already_complete then begin
    let reg = { reader; tr } in
    Hashtbl.replace t.registered rid reg;
    Probe.emit t.config.Config.probe
      (Probe.Registered
         { rid; server = t.coordinate; time = Engine.now_ctx ctx });
    (* a repairing server's stored element may be stale (reset to the
       initial state): relaying it could let a reader assemble k old
       elements, so the local relay is withheld until repair finishes;
       concurrent writes still relay normally. A quarantined element is
       withheld the same way (shipping garbage into a plain-SODA decode
       at exactly k fragments would silently corrupt the read) — the
       detection kicks a targeted repair, whose completion relays. *)
    let tag = Disk.tag t.disk in
    if Option.is_none t.repair && Tag.( >= ) tag tr then
      match local_disk_read t ctx ~rid with
      | Some fragment -> relay_to_reader t ctx ~rid ~reg ~tag ~fragment
      | None -> ensure_scrub_repair t ctx
  end

(* Fig. 5, "On md-meta-deliver(READ-COMPLETE, (r, tr))". *)
let on_read_complete t ctx ~rid =
  if Hashtbl.mem t.registered rid then unregister t ctx rid;
  (* leave a tombstone either way — whether completion raced ahead of
     the registration or a READ-VALUE retry is still in flight, a copy
     arriving after this point must not (re-)register the read *)
  h_add t rid ~tag:Tag.initial ~coordinate:t.coordinate;
  ignore (Int_tbl.Set.add t.completed rid : bool)

(* Fig. 5, "On md-meta-deliver(READ-DISPERSE, (t, s', r))"; the
   unregistration threshold is k for SODA and k + 2e for SODAerr
   (Fig. 6). *)
let on_read_disperse t ctx ~tag ~server_index ~rid =
  h_add t rid ~tag ~coordinate:server_index;
  if Hashtbl.mem t.registered rid then
    if h_count_tag t rid tag >= t.config.Config.decode_threshold then
      unregister t ctx rid

let deliver_meta t ctx = function
  | Messages.Read_value { rid; reader; tr } -> on_read_value t ctx ~rid ~reader ~tr
  | Messages.Read_complete { rid; reader = _; tr = _ } ->
    on_read_complete t ctx ~rid
  | Messages.Read_disperse { tag; server_index; rid } ->
    on_read_disperse t ctx ~tag ~server_index ~rid

(* Server side of MD-VALUE: a member of D forwards the full value down
   the chain and coded elements to everyone outside D, then delivers its
   own element; the ordering (relays before local delivery) is what makes
   the primitive uniform under crashes. *)
let on_md_full t ctx ~msg ~(mid : Messages.mid) ~op ~tag ~value =
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    let config = t.config in
    let d = Config.d_size config in
    let fragments = Config.encode config value in
    if t.coordinate < d then begin
      for j = t.coordinate + 1 to d - 1 do
        (* forward the incoming message as-is: contents are identical *)
        send_to_coordinate t ctx ~coordinate:j msg;
        Cost.comm config.Config.cost ~op ~bytes:(Bytes.length value)
      done;
      for j = d to Params.n config.Config.params - 1 do
        send_to_coordinate t ctx ~coordinate:j
          (Messages.Md_coded { mid; op; tag; fragment = fragments.(j) });
        Cost.comm config.Config.cost ~op
          ~bytes:(Fragment.size fragments.(j))
      done
    end;
    md_value_deliver t ctx ~op ~tag ~fragment:fragments.(t.coordinate)
  end

let on_md_coded t ctx ~(mid : Messages.mid) ~op ~tag ~fragment =
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    md_value_deliver t ctx ~op ~tag ~fragment
  end

(* Server side of MD-META: members of D forward the payload to the rest
   of D and to everyone outside D, then deliver.

   With [meta_stagger = Some sigma], coordinate i > 0 sits on its
   forwards for i*sigma and cancels them when a duplicate of the mid
   arrives from a lower coordinate — whose forward set (everything above
   its own coordinate) is a superset of ours, so the cancelled sends are
   provably redundant. Coordinate 0 always forwards immediately, keeping
   the primitive's uniformity anchored: the forward storm collapses from
   O(f*n) to O(n) whenever the lowest live member of D gets its copy. *)
let on_md_meta t ctx ~src ~msg ~(mid : Messages.mid) ~meta =
  let config = t.config in
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    let d = Config.d_size config in
    if t.coordinate < d then begin
      let forward () =
        for j = t.coordinate + 1 to Params.n config.Config.params - 1 do
          send_to_coordinate t ctx ~coordinate:j msg
        done
      in
      match config.Config.plane.Config.meta_stagger with
      | None -> forward ()
      | Some _ when t.coordinate = 0 -> forward ()
      | Some sigma ->
        Hashtbl.replace t.pending_meta (mid :> int) ();
        Engine.schedule_local ctx
          ~delay:(float_of_int t.coordinate *. sigma) (fun () ->
            if Hashtbl.mem t.pending_meta (mid :> int) then begin
              Hashtbl.remove t.pending_meta (mid :> int);
              forward ()
            end)
    end;
    deliver_meta t ctx meta
  end
  else if Hashtbl.mem t.pending_meta (mid :> int) then
    (* duplicate copy: a lower-coordinate server's forward covers a
       superset of our pending one — cancel it *)
    match Config.coordinate_of config ~pid:src with
    | c when c < t.coordinate -> Hashtbl.remove t.pending_meta (mid :> int)
    | _ -> ()
    | exception Not_found -> ()

let rec handler t ctx ~src msg =
  match msg with
  | Messages.Write_get _ | Messages.Read_get _ | Messages.Repair_get _ -> (
    (* a repairing server may hold a stale tag, so it must not answer
       quorum queries with it. It cannot silently drop them either: over
       the reliable transport the channel has already acked the query,
       so the sender will never retransmit — the query is deferred and
       answered when the repair completes. *)
    match t.repair with
    | None -> answer_query t ctx ~src msg
    | Some r -> r.deferred <- (src, msg) :: r.deferred)
  | Messages.Repair_reply { op; tag; fragment } ->
    on_repair_reply t ctx ~src ~op ~tag ~fragment
  | Messages.Md_full { mid; op; tag; value } ->
    on_md_full t ctx ~msg ~mid ~op ~tag ~value
  | Messages.Md_coded { mid; op; tag; fragment } ->
    on_md_coded t ctx ~mid ~op ~tag ~fragment
  | Messages.Md_meta { mid; meta } -> on_md_meta t ctx ~src ~msg ~mid ~meta
  | Messages.Heartbeat { coordinate } ->
    (* processed even mid-repair: a repairing server is live and must
       neither be suspected nor suspend its own detector *)
    on_heartbeat t ctx ~coordinate
  | Messages.Suspect_vote { target; voter } -> note_vote t ~target ~voter
  | Messages.Gossip { entries } ->
    List.iter
      (fun { Messages.tag; server_index; rid } ->
        on_read_disperse t ctx ~tag ~server_index ~rid)
      entries
  | Messages.Envelope { entries; msg } ->
    (* apply the piggybacked gossip (monotone H insertions — safe during
       repair, on the freshly wiped H), then handle the message itself *)
    List.iter
      (fun { Messages.tag; server_index; rid } ->
        on_read_disperse t ctx ~tag ~server_index ~rid)
      entries;
    handler t ctx ~src msg
  | Messages.Write_get_reply _ | Messages.Write_ack _
  | Messages.Read_get_reply _ | Messages.Relay _ | Messages.Relay_batch _ ->
    (* client-bound messages; a server never receives these *)
    ()
  | Messages.Keyed _ | Messages.Keyed_gossip _ | Messages.Keyed_envelope _
  | Messages.Keyed_batch _ ->
    (* keyspace frames are unwrapped by the shared plane before the
       per-key automaton sees them; a bare deployment never gets any *)
    ()

(* Shared-plane entry points: the keyspace applies cross-key gossip
   entries directly (same monotone H insertion as a standalone
   READ-DISPERSE) and filters queued entries by this instance's
   completion state when draining a cross-key outbox. *)
let apply_gossip_entry t ctx ({ Messages.tag; server_index; rid } : Messages.gossip_entry) =
  on_read_disperse t ctx ~tag ~server_index ~rid

let gossip_live = entry_live

module Engine = Simnet.Engine
module Tag = Protocol.Tag
module Params = Protocol.Params
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Fragment = Erasure.Fragment
module Int_tbl = Protocol.Int_tbl

type registration = { reader : int; tr : Tag.t }

(* In-flight repair of a restored server (the paper's future work (ii)).
   The server refuses quorum duties until it holds an element whose tag
   is at least the maximum it has seen in replies from n-1-f distinct
   peers — which covers every write that completed before the repair
   started (see the safety note on [Deployment.repair_server]). *)
type repair_state = {
  op : int;
  mutable max_seen : Tag.t;
  repliers : (int, unit) Hashtbl.t; (* coordinates heard from *)
  collected : (Tag.t * int, Fragment.t) Hashtbl.t;
  mutable attempts : int;
  mutable deferred : (int * Messages.t) list
      (* quorum queries (Write_get / Read_get / Repair_get) that arrived
         mid-repair, newest first. Over the reliable transport the
         channel has already acked them, so silently ignoring them would
         lose them forever — they are answered in [finish_repair]. *)
}

(* Relays to one reader buffered during a [relay_batch] window, shipped
   as a single Relay_batch frame when the window closes. *)
type relay_buffer = {
  reader : int;
  mutable items : (Tag.t * Fragment.t) list (* newest first *)
}

type t = {
  config : Config.t;
  coordinate : int;
  mutable tag : Tag.t;
  mutable fragment : Fragment.t;
  registered : (int, registration) Hashtbl.t; (* rid -> Rc entry *)
  h : (int, Int_tbl.Set.t Int_tbl.Map.t) Hashtbl.t;
      (* The paper's H — the set of (tag, coordinate) dispersals seen per
         read — stored as rid -> Tag.pack tag -> coordinate set, so the
         unregistration test (how many distinct coordinates dispersed
         this tag?) is a table length instead of a fold over the set. *)
  md_delivered : Int_tbl.Set.t;
  completed : Int_tbl.Set.t;
      (* rids whose READ-COMPLETE was delivered locally. (H's tombstone
         rows can't serve here: a relay of the initial value writes the
         same (rid, t0, self) triple.) Used to prune dead gossip. *)
  seq : int ref;
  outbox : Messages.gossip_entry list array;
      (* Coalesced plane: pending READ-DISPERSE entries per destination
         coordinate, newest first; own slot unused. *)
  outbox_armed : bool array; (* a staleness flush is scheduled for slot i *)
  relay_buf : (int, relay_buffer) Hashtbl.t; (* rid -> open batch window *)
  pending_meta : (int, unit) Hashtbl.t;
      (* mids whose MD-META forward is sitting out a stagger delay *)
  mutable repair : repair_state option
}

let create config ~coordinate =
  let fragments = Config.encode config config.Config.initial_value in
  let fragment = fragments.(coordinate) in
  Cost.storage_set config.Config.cost ~server:coordinate
    ~bytes:(Fragment.size fragment);
  let n = Params.n config.Config.params in
  { config;
    coordinate;
    tag = Tag.initial;
    fragment;
    registered = Hashtbl.create 8;
    h = Hashtbl.create 8;
    md_delivered = Int_tbl.Set.create 64;
    completed = Int_tbl.Set.create 16;
    seq = ref 0;
    outbox = Array.make n [];
    outbox_armed = Array.make n false;
    relay_buf = Hashtbl.create 4;
    pending_meta = Hashtbl.create 4;
    repair = None
  }

let stored_tag t = t.tag
let repairing t = Option.is_some t.repair

(* D3: the fold's arbitrary order is erased by the sort before the list
   can reach a caller. *)
let[@lint.allow "D3"] registered_reads t =
  List.sort Int.compare
    (Hashtbl.fold (fun rid _ acc -> rid :: acc) t.registered [])

(* D3: commutative integer sum — iteration order cannot change the
   result. *)
let[@lint.allow "D3"] history_entries t =
  Hashtbl.fold
    (fun _ tags acc ->
      Int_tbl.Map.fold
        (fun _ coords acc -> acc + Int_tbl.Set.length coords)
        tags acc)
    t.h 0

(* Registered reads in ascending rid order. Relays (and the READ-DISPERSE
   gossip they trigger) are message sends, so their emission order is part
   of the trace: iterating the registration table directly would make
   traces — and under the reliable transport, retransmission schedules —
   depend on Hashtbl's nondeterministic iteration order (D3). *)
let[@lint.allow "D3"] registered_sorted t =
  List.sort
    (fun (a, _) (b, _) -> Int.compare a b)
    (Hashtbl.fold (fun rid reg acc -> (rid, reg) :: acc) t.registered [])

let h_tags t rid =
  match Hashtbl.find_opt t.h rid with
  | Some tags -> tags
  | None ->
    let tags = Int_tbl.Map.create ~dummy:(Int_tbl.Set.create 1) 8 in
    Hashtbl.add t.h rid tags;
    tags

let h_add t rid ~tag ~coordinate =
  let tags = h_tags t rid in
  let key = Tag.pack tag in
  let coords =
    match Int_tbl.Map.find_opt tags key with
    | Some coords -> coords
    | None ->
      let coords = Int_tbl.Set.create 4 in
      Int_tbl.Map.replace tags key coords;
      coords
  in
  ignore (Int_tbl.Set.add coords coordinate : bool)

let h_mem t rid ~tag ~coordinate =
  match Hashtbl.find_opt t.h rid with
  | None -> false
  | Some tags -> (
    match Int_tbl.Map.find_opt tags (Tag.pack tag) with
    | None -> false
    | Some coords -> Int_tbl.Set.mem coords coordinate)

let h_count_tag t rid tag =
  match Hashtbl.find_opt t.h rid with
  | None -> 0
  | Some tags -> (
    match Int_tbl.Map.find_opt tags (Tag.pack tag) with
    | None -> 0
    | Some coords -> Int_tbl.Set.length coords)

let unregister t ctx rid =
  Hashtbl.remove t.registered rid;
  Hashtbl.remove t.h rid;
  Probe.emit t.config.Config.probe
    (Probe.Unregistered
       { rid; server = t.coordinate; time = Engine.now_ctx ctx })

(* ------------------------------------------------------------------ *)
(* Batched message plane (see "Batched message plane" in DESIGN.md) *)

(* A read whose READ-COMPLETE already reached this server needs no more
   gossip from it: every peer unregisters through its own READ-COMPLETE
   delivery, so the queued entry would only burn a message. *)
let entry_live t (e : Messages.gossip_entry) =
  not (Int_tbl.Set.mem t.completed e.Messages.rid)

(* Drain destination [j]'s outbox, dropping entries for completed reads,
   in enqueue order. *)
let take_outbox t j =
  match t.outbox.(j) with
  | [] -> []
  | pending ->
    t.outbox.(j) <- [];
    List.rev (List.filter (entry_live t) pending)

(* Bounded-staleness flush: whatever could not hitch a ride on regular
   traffic within [gossip_staleness] goes out as a standalone Gossip, so
   unregistration of crashed readers cannot stall behind a quiet link. *)
let flush_gossip t ctx j =
  t.outbox_armed.(j) <- false;
  match take_outbox t j with
  | [] -> ()
  | entries ->
    Engine.send ctx ~dst:t.config.Config.servers.(j)
      (Messages.Gossip { entries })

let gossip_enqueue t ctx (entry : Messages.gossip_entry) =
  let n = Params.n t.config.Config.params in
  let staleness = t.config.Config.plane.Config.gossip_staleness in
  for j = 0 to n - 1 do
    if j <> t.coordinate then begin
      t.outbox.(j) <- entry :: t.outbox.(j);
      if not t.outbox_armed.(j) then begin
        t.outbox_armed.(j) <- true;
        Engine.schedule_local ctx ~delay:staleness (fun () ->
            flush_gossip t ctx j)
      end
    end
  done

(* Every server->server send flushes the destination's pending gossip by
   wrapping the message in an envelope — piggybacking costs nothing, the
   envelope is still one message. In `Broadcast / `Off modes the outbox
   is never fed, and this is exactly [Engine.send]. *)
let send_to_coordinate t ctx ~coordinate:j msg =
  let msg =
    match t.config.Config.plane.Config.gossip_mode with
    | `Broadcast | `Off -> msg
    | `Coalesced -> (
      match take_outbox t j with
      | [] -> msg
      | entries -> Messages.Envelope { entries; msg })
  in
  Engine.send ctx ~dst:t.config.Config.servers.(j) msg

(* Same, for destinations addressed by pid (repair replies): a pid that
   is not a server coordinate gets a plain send. *)
let send_to_pid t ctx ~dst msg =
  match t.config.Config.plane.Config.gossip_mode with
  | `Broadcast | `Off -> Engine.send ctx ~dst msg
  | `Coalesced -> (
    match Config.coordinate_of t.config ~pid:dst with
    | j -> send_to_coordinate t ctx ~coordinate:j msg
    | exception Not_found -> Engine.send ctx ~dst msg)

(* Close the [relay_batch] window for [rid]: everything buffered since
   it opened leaves as one framed message. Registration state is not
   consulted — the buffered elements were already counted in H (and
   gossiped), so they must reach the reader even if the read was
   unregistered meanwhile. *)
let flush_relays t ctx rid =
  match Hashtbl.find_opt t.relay_buf rid with
  | None -> ()
  | Some buf -> (
    Hashtbl.remove t.relay_buf rid;
    match buf.items with
    | [] -> ()
    | [ (tag, fragment) ] ->
      Engine.send ctx ~dst:buf.reader (Messages.Relay { rid; tag; fragment })
    | items ->
      Engine.send ctx ~dst:buf.reader
        (Messages.Relay_batch { rid; items = List.rev items }))

(* ------------------------------------------------------------------ *)

(* Send one coded element to a registered reader and announce it to the
   other servers via READ-DISPERSE, so that everyone can count towards
   the unregistration threshold. Under the batched plane the element is
   buffered for the relay window and the announcement queued in the
   outbox, but H, the cost ledger and the probe stream see the relay at
   decision time either way. *)
let relay_to_reader t ctx ~rid ~(reg : registration) ~tag ~fragment =
  (match t.config.Config.plane.Config.relay_batch with
  | None ->
    Engine.send ctx ~dst:reg.reader (Messages.Relay { rid; tag; fragment })
  | Some window -> (
    match Hashtbl.find_opt t.relay_buf rid with
    | Some buf -> buf.items <- (tag, fragment) :: buf.items
    | None ->
      Hashtbl.replace t.relay_buf rid
        { reader = reg.reader; items = [ (tag, fragment) ] };
      Engine.schedule_local ctx ~delay:window (fun () ->
          flush_relays t ctx rid)));
  Cost.comm t.config.Config.cost ~op:rid ~bytes:(Fragment.size fragment);
  Probe.emit t.config.Config.probe
    (Probe.Relayed
       { rid; server = t.coordinate; tag; time = Engine.now_ctx ctx });
  h_add t rid ~tag ~coordinate:t.coordinate;
  match t.config.Config.plane.Config.gossip_mode with
  | `Broadcast ->
    Md.meta_send ctx t.config ~seq:t.seq
      (Messages.Read_disperse { tag; server_index = t.coordinate; rid })
  | `Coalesced ->
    gossip_enqueue t ctx
      { Messages.tag; server_index = t.coordinate; rid }
  | `Off -> ()

(* Local disk read of the stored coded element; error-prone coordinates
   return a silently corrupted copy (the SODAerr fault model). The seed
   mixes the read id so different reads see independent corruption. *)
let local_disk_read t ~rid =
  if t.config.Config.error_prone.(t.coordinate) then
    Fragment.corrupt t.fragment ~seed:(rid + (t.coordinate * 7919))
  else t.fragment

(* ------------------------------------------------------------------ *)
(* Repair extension (paper's future work (ii)) *)

let repair_retry_interval = 40.0

(* Generous: repair rounds are cheap and a server that exhausts its
   budget is mute forever (its [repair] state never clears), so the cap
   exists only to let the simulation quiesce in degenerate schedules. *)
let repair_max_attempts = 50

let answer_query t ctx ~src = function
  | Messages.Write_get { op } ->
    Engine.send ctx ~dst:src (Messages.Write_get_reply { op; tag = t.tag })
  | Messages.Read_get { rid } ->
    Engine.send ctx ~dst:src (Messages.Read_get_reply { rid; tag = t.tag })
  | Messages.Repair_get { op } ->
    let fragment = local_disk_read t ~rid:op in
    Cost.comm t.config.Config.cost ~op ~bytes:(Fragment.size fragment);
    send_to_pid t ctx ~dst:src
      (Messages.Repair_reply { op; tag = t.tag; fragment })
  | _ -> ()

let finish_repair t ctx =
  match t.repair with
  | None -> ()
  | Some r ->
    t.repair <- None;
    Probe.emit t.config.Config.probe
      (Probe.Repaired
         { server = t.coordinate; tag = t.tag; time = Engine.now_ctx ctx });
    (* Reads that registered while the repair was in flight had their
       local relay withheld (the stored element was untrusted, see
       [on_read_value]); send it now, or a reader counting on this
       server for its kth element would wait forever. *)
    List.iter
      (fun (rid, reg) ->
        if Tag.( >= ) t.tag reg.tr then
          relay_to_reader t ctx ~rid ~reg ~tag:t.tag
            ~fragment:(local_disk_read t ~rid))
      (registered_sorted t);
    (* Answer the quorum queries that were deferred mid-repair, in
       arrival order, with the freshly recovered tag. *)
    List.iter (fun (src, msg) -> answer_query t ctx ~src msg)
      (List.rev r.deferred)

(* Repair completes once n-1-f peers have answered and the server holds
   (or can decode) an element for the highest tag among the replies. *)
let maybe_finish_repair t ctx =
  match t.repair with
  | None -> ()
  | Some r ->
    let needed_repliers =
      Params.n t.config.Config.params - 1 - Params.f t.config.Config.params
    in
    if Hashtbl.length r.repliers >= needed_repliers then begin
      if Tag.( >= ) t.tag r.max_seen then finish_repair t ctx
      else begin
        (* D3: materialized as (coordinate, fragment) pairs and sorted, so
           the decoder sees replies in a schedule-independent order. *)
        let[@lint.allow "D3"] frags =
          Hashtbl.fold
            (fun (tag, coordinate) fragment acc ->
              if Tag.equal tag r.max_seen then (coordinate, fragment) :: acc
              else acc)
            r.collected []
          |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          |> List.map snd
        in
        if List.length frags >= t.config.Config.decode_threshold then begin
          match Erasure.Mds.decode t.config.Config.code frags with
          | value ->
            let fragments = Config.encode t.config value in
            t.tag <- r.max_seen;
            t.fragment <- fragments.(t.coordinate);
            Cost.storage_set t.config.Config.cost ~server:t.coordinate
              ~bytes:(Fragment.size t.fragment);
            Probe.emit t.config.Config.probe
              (Probe.Stored
                 { server = t.coordinate;
                   tag = t.tag;
                   time = Engine.now_ctx ctx
                 });
            finish_repair t ctx
          | exception Erasure.Mds.Decode_failure _ ->
            (* too many corrupted replies for this tag yet; more replies
               or a retry round will help *)
            ()
        end
      end
    end

let broadcast_repair_get t ctx ~op =
  Array.iteri
    (fun c _pid ->
      if c <> t.coordinate then
        send_to_coordinate t ctx ~coordinate:c (Messages.Repair_get { op }))
    t.config.Config.servers

let rec schedule_repair_retry t ctx =
  Engine.schedule_local ctx ~delay:repair_retry_interval (fun () ->
      match t.repair with
      | None -> ()
      | Some r ->
        if r.attempts < repair_max_attempts then begin
          r.attempts <- r.attempts + 1;
          broadcast_repair_get t ctx ~op:r.op;
          schedule_repair_retry t ctx
        end)

(* Called right after [Engine.restore_at] fires: volatile state is gone
   (the crash lost it), the element reverts to the initial state, and
   the server starts fetching the current one. Until repair finishes it
   answers no quorum queries. *)
let begin_repair t ctx ~op =
  let fragments = Config.encode t.config t.config.Config.initial_value in
  t.tag <- Tag.initial;
  t.fragment <- fragments.(t.coordinate);
  Cost.storage_set t.config.Config.cost ~server:t.coordinate
    ~bytes:(Fragment.size t.fragment);
  Hashtbl.reset t.registered;
  Hashtbl.reset t.h;
  Int_tbl.Set.reset t.md_delivered;
  Int_tbl.Set.reset t.completed;
  Array.fill t.outbox 0 (Array.length t.outbox) [];
  Array.fill t.outbox_armed 0 (Array.length t.outbox_armed) false;
  Hashtbl.reset t.relay_buf;
  Hashtbl.reset t.pending_meta;
  t.repair <-
    Some
      { op;
        max_seen = Tag.initial;
        repliers = Hashtbl.create 8;
        collected = Hashtbl.create 16;
        attempts = 0;
        deferred = []
      };
  Probe.emit t.config.Config.probe
    (Probe.Repair_started { server = t.coordinate; time = Engine.now_ctx ctx });
  broadcast_repair_get t ctx ~op;
  schedule_repair_retry t ctx

let on_repair_reply t ctx ~src ~op ~tag ~fragment =
  match t.repair with
  | Some r when r.op = op -> begin
    match Config.coordinate_of t.config ~pid:src with
    | coordinate ->
      Hashtbl.replace r.repliers coordinate ();
      if Tag.( > ) tag r.max_seen then r.max_seen <- tag;
      Hashtbl.replace r.collected (tag, coordinate) fragment;
      maybe_finish_repair t ctx
    | exception Not_found -> ()
  end
  | Some _ | None -> ()

(* Fig. 5, "On md-value-deliver(tw, c's)": relay to registered readers,
   adopt the element if its tag is newer, acknowledge the writer. *)
let md_value_deliver t ctx ~op ~tag:tw ~fragment =
  List.iter
    (fun (rid, reg) ->
      if Tag.( >= ) tw reg.tr then
        relay_to_reader t ctx ~rid ~reg ~tag:tw ~fragment)
    (registered_sorted t);
  if Tag.( > ) tw t.tag then begin
    t.tag <- tw;
    t.fragment <- fragment;
    Cost.storage_set t.config.Config.cost ~server:t.coordinate
      ~bytes:(Fragment.size fragment);
    Probe.emit t.config.Config.probe
      (Probe.Stored
         { server = t.coordinate; tag = tw; time = Engine.now_ctx ctx });
    (* a delivery can complete an in-flight repair by itself *)
    maybe_finish_repair t ctx
  end;
  (* The writer's id is part of the tag, so the acknowledgement needs no
     extra routing state. *)
  if tw.Tag.w >= 0 then
    Engine.send ctx ~dst:tw.Tag.w (Messages.Write_ack { op; tag = tw })

(* Fig. 5, "On md-meta-deliver(READ-VALUE, (r, tr))". *)
let on_read_value t ctx ~rid ~reader ~tr =
  (* The tombstone left by a READ-COMPLETE that raced ahead is kept (not
     consumed): clients over the reliable transport re-broadcast
     READ-VALUE until the read returns, and a spent tombstone would let
     a late retry re-register a finished read as a ghost. *)
  let already_complete = h_mem t rid ~tag:Tag.initial ~coordinate:t.coordinate in
  if not already_complete then begin
    let reg = { reader; tr } in
    Hashtbl.replace t.registered rid reg;
    Probe.emit t.config.Config.probe
      (Probe.Registered
         { rid; server = t.coordinate; time = Engine.now_ctx ctx });
    (* a repairing server's stored element may be stale (reset to the
       initial state): relaying it could let a reader assemble k old
       elements, so the local relay is withheld until repair finishes;
       concurrent writes still relay normally *)
    if Option.is_none t.repair && Tag.( >= ) t.tag tr then
      relay_to_reader t ctx ~rid ~reg ~tag:t.tag
        ~fragment:(local_disk_read t ~rid)
  end

(* Fig. 5, "On md-meta-deliver(READ-COMPLETE, (r, tr))". *)
let on_read_complete t ctx ~rid =
  if Hashtbl.mem t.registered rid then unregister t ctx rid;
  (* leave a tombstone either way — whether completion raced ahead of
     the registration or a READ-VALUE retry is still in flight, a copy
     arriving after this point must not (re-)register the read *)
  h_add t rid ~tag:Tag.initial ~coordinate:t.coordinate;
  ignore (Int_tbl.Set.add t.completed rid : bool)

(* Fig. 5, "On md-meta-deliver(READ-DISPERSE, (t, s', r))"; the
   unregistration threshold is k for SODA and k + 2e for SODAerr
   (Fig. 6). *)
let on_read_disperse t ctx ~tag ~server_index ~rid =
  h_add t rid ~tag ~coordinate:server_index;
  if Hashtbl.mem t.registered rid then
    if h_count_tag t rid tag >= t.config.Config.decode_threshold then
      unregister t ctx rid

let deliver_meta t ctx = function
  | Messages.Read_value { rid; reader; tr } -> on_read_value t ctx ~rid ~reader ~tr
  | Messages.Read_complete { rid; reader = _; tr = _ } ->
    on_read_complete t ctx ~rid
  | Messages.Read_disperse { tag; server_index; rid } ->
    on_read_disperse t ctx ~tag ~server_index ~rid

(* Server side of MD-VALUE: a member of D forwards the full value down
   the chain and coded elements to everyone outside D, then delivers its
   own element; the ordering (relays before local delivery) is what makes
   the primitive uniform under crashes. *)
let on_md_full t ctx ~msg ~(mid : Messages.mid) ~op ~tag ~value =
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    let config = t.config in
    let d = Config.d_size config in
    let fragments = Config.encode config value in
    if t.coordinate < d then begin
      for j = t.coordinate + 1 to d - 1 do
        (* forward the incoming message as-is: contents are identical *)
        send_to_coordinate t ctx ~coordinate:j msg;
        Cost.comm config.Config.cost ~op ~bytes:(Bytes.length value)
      done;
      for j = d to Params.n config.Config.params - 1 do
        send_to_coordinate t ctx ~coordinate:j
          (Messages.Md_coded { mid; op; tag; fragment = fragments.(j) });
        Cost.comm config.Config.cost ~op
          ~bytes:(Fragment.size fragments.(j))
      done
    end;
    md_value_deliver t ctx ~op ~tag ~fragment:fragments.(t.coordinate)
  end

let on_md_coded t ctx ~(mid : Messages.mid) ~op ~tag ~fragment =
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    md_value_deliver t ctx ~op ~tag ~fragment
  end

(* Server side of MD-META: members of D forward the payload to the rest
   of D and to everyone outside D, then deliver.

   With [meta_stagger = Some sigma], coordinate i > 0 sits on its
   forwards for i*sigma and cancels them when a duplicate of the mid
   arrives from a lower coordinate — whose forward set (everything above
   its own coordinate) is a superset of ours, so the cancelled sends are
   provably redundant. Coordinate 0 always forwards immediately, keeping
   the primitive's uniformity anchored: the forward storm collapses from
   O(f*n) to O(n) whenever the lowest live member of D gets its copy. *)
let on_md_meta t ctx ~src ~msg ~(mid : Messages.mid) ~meta =
  let config = t.config in
  if Int_tbl.Set.add t.md_delivered (mid :> int) then begin
    let d = Config.d_size config in
    if t.coordinate < d then begin
      let forward () =
        for j = t.coordinate + 1 to Params.n config.Config.params - 1 do
          send_to_coordinate t ctx ~coordinate:j msg
        done
      in
      match config.Config.plane.Config.meta_stagger with
      | None -> forward ()
      | Some _ when t.coordinate = 0 -> forward ()
      | Some sigma ->
        Hashtbl.replace t.pending_meta (mid :> int) ();
        Engine.schedule_local ctx
          ~delay:(float_of_int t.coordinate *. sigma) (fun () ->
            if Hashtbl.mem t.pending_meta (mid :> int) then begin
              Hashtbl.remove t.pending_meta (mid :> int);
              forward ()
            end)
    end;
    deliver_meta t ctx meta
  end
  else if Hashtbl.mem t.pending_meta (mid :> int) then
    (* duplicate copy: a lower-coordinate server's forward covers a
       superset of our pending one — cancel it *)
    match Config.coordinate_of config ~pid:src with
    | c when c < t.coordinate -> Hashtbl.remove t.pending_meta (mid :> int)
    | _ -> ()
    | exception Not_found -> ()

let rec handler t ctx ~src msg =
  match msg with
  | Messages.Write_get _ | Messages.Read_get _ | Messages.Repair_get _ -> (
    (* a repairing server may hold a stale tag, so it must not answer
       quorum queries with it. It cannot silently drop them either: over
       the reliable transport the channel has already acked the query,
       so the sender will never retransmit — the query is deferred and
       answered when the repair completes. *)
    match t.repair with
    | None -> answer_query t ctx ~src msg
    | Some r -> r.deferred <- (src, msg) :: r.deferred)
  | Messages.Repair_reply { op; tag; fragment } ->
    on_repair_reply t ctx ~src ~op ~tag ~fragment
  | Messages.Md_full { mid; op; tag; value } ->
    on_md_full t ctx ~msg ~mid ~op ~tag ~value
  | Messages.Md_coded { mid; op; tag; fragment } ->
    on_md_coded t ctx ~mid ~op ~tag ~fragment
  | Messages.Md_meta { mid; meta } -> on_md_meta t ctx ~src ~msg ~mid ~meta
  | Messages.Gossip { entries } ->
    List.iter
      (fun { Messages.tag; server_index; rid } ->
        on_read_disperse t ctx ~tag ~server_index ~rid)
      entries
  | Messages.Envelope { entries; msg } ->
    (* apply the piggybacked gossip (monotone H insertions — safe during
       repair, on the freshly wiped H), then handle the message itself *)
    List.iter
      (fun { Messages.tag; server_index; rid } ->
        on_read_disperse t ctx ~tag ~server_index ~rid)
      entries;
    handler t ctx ~src msg
  | Messages.Write_get_reply _ | Messages.Write_ack _
  | Messages.Read_get_reply _ | Messages.Relay _ | Messages.Relay_batch _ ->
    (* client-bound messages; a server never receives these *)
    ()

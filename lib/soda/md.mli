(** Sender side of the message-disperse primitives (Section III).

    Both primitives target the distinguished set [D] of the first [f+1]
    server coordinates, one message per {!Config.disperse_step} so that a
    crash of the sender can cut the dispersal short — the failure case
    the primitives are designed to survive. Relaying and delivery happen
    on the server side (see {!Server}), which guarantees: if any server
    delivers the dispersal, every non-faulty server eventually does
    (uniformity), even when the original sender crashes mid-stream. *)

type ctx = Messages.t Simnet.Engine.context

val fresh_mid : ctx -> seq:int ref -> Messages.mid
(** A unique message-dispersal id for the calling process. *)

val value_send :
  ctx -> Config.t -> seq:int ref -> op:int -> tag:Protocol.Tag.t ->
  value:bytes -> unit
(** MD-VALUE: disperse [(tag, value)]; every non-faulty server eventually
    delivers its own coded element. Data cost of the full-value sends is
    charged to [op]. *)

val meta_send : ctx -> Config.t -> seq:int ref -> Messages.meta -> unit
(** MD-META: disperse a metadata payload to all servers (cost-free). *)

(** Deploying and driving a SODA / SODA{_err} system on a simulation
    engine.

    A deployment registers [n] server processes plus the requested writer
    and reader client processes on an engine supplied by the caller (who
    therefore controls the delay model, the seed and crash scheduling),
    and exposes asynchronous [write]/[read] operations recorded in a
    {!Protocol.History}. Setting [e > 0] in the parameters selects
    SODA{_err}: the BCH codec with [k = n - f - 2e], the [k + 2e]
    decode/unregistration threshold, and the [error_prone] fault model. *)

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe

type t

val deploy :
  engine:Messages.t Simnet.Engine.t ->
  params:Params.t ->
  ?initial_value:bytes ->
  ?value_len:int ->
  ?error_prone:int list ->
  ?disperse_step:float ->
  ?md_mode:[ `Chained | `Direct ] ->
  ?gossip:bool ->
  ?plane:Config.plane ->
  ?healing:Config.healing ->
  ?systematic:bool ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  t
(** Register all processes — the single-register path, kept as a thin
    shim over the keyspace machinery (see {!create} for the
    multi-object front door; a [`Single]-mode keyspace on the same
    engine produces bit-identical traces). See {!Config.make} for the
    optional arguments.

    [healing] arms the self-healing plane: every server runs
    {!Server.start_healing} (heartbeat failure detector + anti-entropy
    scrubber) from time zero, and the deployment installs the
    auto-repair hook — when a quorum of [f + 1] survivors suspects a
    coordinate that really is crashed, {!repair_server} is launched
    autonomously at the current sim time (at most once per crash
    episode), so a [Crash] with no scheduled [Repair] heals itself. A
    merely partitioned server is suspected too but never wiped: the
    hook checks the engine's crash state. With the default [None], no
    extra event is ever scheduled and traces are bit-identical to an
    unhealed deployment.
    @raise Invalid_argument on non-positive client counts. *)

val write :
  t -> writer:int -> at:float -> ?on_done:(unit -> unit) -> bytes -> unit
(** Schedule writer number [writer] (0-based) to invoke a write at
    simulated time [at]. The operation appears in {!history} when the
    invocation executes. Clients are single-lane: scheduling a second
    operation on a client whose previous one is still in flight is a
    well-formedness violation and raises (inside the engine run). *)

val read : t -> reader:int -> at:float -> ?on_done:(bytes -> unit) -> unit -> unit

(** {1 Fault injection} *)

val crash_server : t -> coordinate:int -> at:float -> unit
val crash_writer : t -> writer:int -> at:float -> unit
val crash_reader : t -> reader:int -> at:float -> unit

val corrupt_server : t -> coordinate:int -> at:float -> unit
(** Schedule silent bit-rot of the server's stored coded element at time
    [at]: the payload is deterministically garbled under its checksum
    (seeded from the schedule, so replays corrupt identically). Nothing
    is detected until the next verified read or scrub sweep. Discarded
    if the server is crashed at [at]. *)

val set_error_window : t -> coordinate:int -> (float * float) option -> unit
(** SODAerr: restrict the coordinate's error-prone fault to a sim-time
    window; see {!Server.set_error_window}. *)

val repair_server : t -> coordinate:int -> at:float -> int
(** Restore a crashed server at time [at] and start the repair protocol
    (the paper's future-work item (ii)): the server comes back with no
    volatile state and its element reset, abstains from quorum duties,
    and fetches coded elements from its peers until it can decode and
    re-encode the element for the highest tag reported by [n-1-f] of
    them — which covers every write completed before the repair, so
    atomicity is preserved. Returns the accounting operation id of the
    repair traffic (roughly [k * 1/k = 1] value unit).

    Safety of rejoin requires [n >= 2f + 2e + 1] (any completed write's
    [k] element holders must intersect the [n-1-f] repliers); with the
    paper's [f <= (n-1)/2] this always holds for plain SODA, and for
    SODA{_err} whenever [e] additional servers exist. Liveness of the
    repair itself assumes writes quiesce long enough for some tag to
    accumulate [decode_threshold] elements (bounded retries give up
    otherwise, leaving the server silently degraded but safe). *)

val partition_servers : t -> coordinates:int list -> at:float -> unit
(** Blackhole, from time [at], every link between the named servers and
    the rest of the deployment (other servers and all clients), in both
    directions — the isolated group keeps its state but neither hears
    nor is heard until the matching {!heal_servers}. Under the raw
    transport messages into the cut are lost; under the reliable
    transport ([Engine.create ~transport:(`Reliable _)]) they are
    retransmitted and arrive after the heal. As long as at most [f]
    servers are crashed or isolated at once, SODA's quorums never need
    the cut links, so liveness and atomicity must survive (the chaos
    suite checks exactly this).
    @raise Invalid_argument on an out-of-range coordinate. *)

val heal_servers : t -> coordinates:int list -> at:float -> unit
(** Schedule the heal of a {!partition_servers} with the same
    coordinate set. Partition/heal pairs must alternate per set (the
    trace checker enforces this). *)

(** {1 Observation} *)

val engine : t -> Messages.t Simnet.Engine.t
(** The engine the deployment was built on. *)

val repairing : t -> bool
(** [true] while any server of the deployment is mid-repair (its element
    has been wiped and not yet recovered). A nemesis must not take
    another server down while this holds: with [k = n - f], wiping more
    than [f] elements at once can destroy committed data beyond what any
    algorithm could recover (see {!Harness.Nemesis.apply_gated}). *)

val scrub_clean : t -> bool
(** [true] iff every server's stored element passes its checksum and
    none is quarantined — the "all corruption healed by quiescence"
    predicate of the bit-rot chaos cells. *)

val all_live : t -> bool
(** [true] iff no server process is currently crashed — the
    convergence predicate of the detector chaos cell. *)

val history : t -> History.t
val cost : t -> Cost.t
val probe : t -> Probe.t
val config : t -> Config.t
val params : t -> Params.t

val server_pid : t -> coordinate:int -> int
val writer_pid : t -> writer:int -> int
val reader_pid : t -> reader:int -> int

val server : t -> coordinate:int -> Server.t
(** Direct access to a server automaton's state, for tests. *)

val initial_value : t -> bytes

(** {1 Keyspace-first deployment}

    The multi-object front door: describe the fleet with a
    {!Topology}, the per-key geometry and spread with a {!Placement},
    and get a sharded {!Keyspace} — per-key SODA instances behind a
    shared server plane. {!deploy} above remains the single-register
    path (it {e is} [Keyspace.create ~mode:`Single] up to the
    handler-object identities, and its traces are bit-identical). *)

val create :
  engine:Messages.t Simnet.Engine.t ->
  topology:Topology.t ->
  placement:Placement.t ->
  ?mode:[ `Sharded | `Single ] ->
  ?initial_value:bytes ->
  ?value_len:int ->
  ?error_prone:int list ->
  ?disperse_step:float ->
  ?md_mode:[ `Chained | `Direct ] ->
  ?gossip:bool ->
  ?plane:Config.plane ->
  ?systematic:bool ->
  num_writers:int ->
  num_readers:int ->
  unit ->
  Keyspace.t
(** See {!Keyspace.create} for the argument semantics. [placement]
    must have been built over [topology] (checked with
    {!Topology.equal}); passing both keeps call sites honest about
    which fleet shape the placement assumes.
    @raise Invalid_argument if they disagree. *)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Tag = Protocol.Tag
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment

(* the fields are never projected individually: a [mid] is an identity,
   compared and hashed structurally as a Hashtbl key *)
type mid = { origin : int; seq : int } [@@warning "-69"]

type payload =
  | Full of Tag.t * bytes
  | Coded of Tag.t * Fragment.t

type msg = { mid : mid; payload : payload }

let payload_bytes = function
  | Full (_, v) -> Bytes.length v
  | Coded (_, c) -> Fragment.size c

type status = Sending | Ready | Delivered

(* MD-VALUE-SERVER_s state (Fig. 2). [outQueue] and [content] are per
   message-id, as in the figure. *)
type server_state = {
  index : int;
  status : (mid, status) Hashtbl.t;
  content : (mid, Tag.t * Fragment.t) Hashtbl.t;
  out_queue : (mid, (int * payload) Queue.t) Hashtbl.t
}

(* MD-VALUE-SENDER_p state (Fig. 1). *)
type sender_state = {
  mutable active : bool;
  mutable m_count : int;
  mutable curr_tag : Tag.t option;
  send_buff : (int * msg) Queue.t (* (destination server index, message) *)
}

type delivery = { server : int; tag : Tag.t; fragment : Fragment.t }

type t = {
  engine : msg Engine.t;
  params : Params.t;
  code : Mds.t;
  step : float;
  sender_pid : int;
  server_pids : int array;
  sender : sender_state;
  servers : server_state array;
  mutable deliveries_rev : delivery list;
  mutable acked_rev : Tag.t list
}

let d_size t = Params.f t.params + 1

(* ------------------------------------------------------------------ *)
(* Sender (Fig. 1) *)

(* Output action send((mID, (t, v), "full"))_{p,s}: emit the head of
   send_buff; one action per [step]. *)
let rec sender_pump t ctx =
  if Queue.is_empty t.sender.send_buff then begin
    (* Output md-value-send-ack: precondition active && send_buff = [] *)
    if t.sender.active then begin
      t.sender.active <- false;
      (match t.sender.curr_tag with
      | Some tag -> t.acked_rev <- tag :: t.acked_rev
      | None -> ());
      t.sender.curr_tag <- None
    end
  end
  else begin
    let dst_index, message = Queue.pop t.sender.send_buff in
    Engine.send ctx ~dst:t.server_pids.(dst_index) message;
    Engine.schedule_local ctx ~delay:t.step (fun () -> sender_pump t ctx)
  end

(* Input action md-value-send(t, v)_p. *)
let sender_input t ctx ~tag ~value =
  t.sender.m_count <- t.sender.m_count + 1;
  let mid = { origin = Engine.self ctx; seq = t.sender.m_count } in
  for i = 0 to d_size t - 1 do
    Queue.push (i, { mid; payload = Full (tag, value) }) t.sender.send_buff
  done;
  t.sender.active <- true;
  t.sender.curr_tag <- Some tag;
  sender_pump t ctx

(* ------------------------------------------------------------------ *)
(* Server (Fig. 2) *)

let server_status s mid =
  Hashtbl.find_opt s.status mid

(* Output md-value-deliver(t, c)_s: precondition status(mID) = ready.
   Effect: status <- delivered; content(mID) <- bottom. *)
let try_deliver t s mid =
  match server_status s mid with
  | Some Ready ->
    (match Hashtbl.find_opt s.content mid with
    | Some (tag, fragment) ->
      Hashtbl.replace s.status mid Delivered;
      Hashtbl.remove s.content mid;
      t.deliveries_rev <- { server = s.index; tag; fragment } :: t.deliveries_rev
    | None -> ())
  | Some (Sending | Delivered) | None -> ()

(* Output send((mID, (t, u)))_{s,s'}: emit the head of outQueue(mID);
   when the queue empties, status(mID) <- ready (Fig. 2, lines 33-40). *)
let rec server_pump t s ctx mid =
  match Hashtbl.find_opt s.out_queue mid with
  | None -> ()
  | Some queue ->
    if Queue.is_empty queue then begin
      Hashtbl.remove s.out_queue mid;
      (match server_status s mid with
      | Some Sending -> Hashtbl.replace s.status mid Ready
      | Some (Ready | Delivered) | None -> ());
      try_deliver t s mid
    end
    else begin
      let dst_index, payload = Queue.pop queue in
      Engine.send ctx ~dst:t.server_pids.(dst_index) { mid; payload };
      Engine.schedule_local ctx ~delay:t.step (fun () -> server_pump t s ctx mid)
    end

(* Input recv((mID, (t, v), "full"))_{r,s} (Fig. 2, lines 16-26). *)
let server_recv_full t s ctx mid tag value =
  if Option.is_none (server_status s mid) then begin
    let fragments = Mds.encode t.code value in
    let queue = Queue.create () in
    (* forward the full value to the rest of D *)
    for j = s.index + 1 to d_size t - 1 do
      Queue.push (j, Full (tag, value)) queue
    done;
    (* coded elements to everyone outside D *)
    for j = d_size t to Params.n t.params - 1 do
      Queue.push (j, Coded (tag, fragments.(j))) queue
    done;
    Hashtbl.replace s.out_queue mid queue;
    Hashtbl.replace s.status mid Sending;
    Hashtbl.replace s.content mid (tag, fragments.(s.index));
    server_pump t s ctx mid
  end

(* Input recv((mID, (t, c), "coded"))_{r,s} (Fig. 2, lines 27-32). *)
let server_recv_coded t s _ctx mid tag fragment =
  match server_status s mid with
  | Some Delivered -> ()
  | Some (Sending | Ready) | None ->
    Hashtbl.replace s.status mid Ready;
    Hashtbl.replace s.content mid (tag, fragment);
    try_deliver t s mid

(* ------------------------------------------------------------------ *)
(* Deployment *)

let deploy ~engine ~params ?(step = 0.5) () =
  let n = Params.n params in
  let sender_pid = Engine.reserve engine ~name:"md-sender" in
  let server_pids =
    Array.init n (fun i ->
        Engine.reserve engine ~name:(Printf.sprintf "md-server%d" i))
  in
  let t =
    { engine;
      params;
      code = Mds.rs_vandermonde ~n ~k:(Params.k_soda params);
      step;
      sender_pid;
      server_pids;
      sender =
        { active = false;
          m_count = 0;
          curr_tag = None;
          send_buff = Queue.create ()
        };
      servers =
        Array.init n (fun index ->
            { index;
              status = Hashtbl.create 8;
              content = Hashtbl.create 8;
              out_queue = Hashtbl.create 8
            });
      deliveries_rev = [];
      acked_rev = []
    }
  in
  (* the sender receives nothing in this standalone primitive *)
  Engine.set_handler engine sender_pid (fun _ ~src:_ _ -> ());
  Array.iteri
    (fun i pid ->
      let s = t.servers.(i) in
      Engine.set_handler engine pid (fun ctx ~src:_ { mid; payload } ->
          match payload with
          | Full (tag, value) -> server_recv_full t s ctx mid tag value
          | Coded (tag, fragment) -> server_recv_coded t s ctx mid tag fragment))
    server_pids;
  t

let send t ~at ~tag ~value =
  Engine.inject t.engine ~at t.sender_pid (fun ctx ->
      sender_input t ctx ~tag ~value)

let crash_sender t ~at = Engine.crash_at t.engine t.sender_pid at
let crash_server t ~index ~at = Engine.crash_at t.engine t.server_pids.(index) at
let deliveries t = List.rev t.deliveries_rev
let acked t = List.rev t.acked_rev

let[@lint.allow
     "D3: both folds are commutative byte sums — iteration order cannot \
      change the result"] server_retained_payloads t ~index =
  let s = t.servers.(index) in
  let in_content =
    Hashtbl.fold (fun _ (_, c) acc -> acc + Fragment.size c) s.content 0
  in
  let in_queues =
    Hashtbl.fold
      (fun _ queue acc ->
        Queue.fold (fun acc (_, p) -> acc + payload_bytes p) acc queue)
      s.out_queue 0
  in
  in_content + in_queues

let sender_retained_payloads t =
  Queue.fold
    (fun acc (_, { payload; _ }) -> acc + payload_bytes payload)
    0 t.sender.send_buff

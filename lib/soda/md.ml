module Engine = Simnet.Engine
module Cost = Protocol.Cost

type ctx = Messages.t Engine.context

let fresh_mid ctx ~seq =
  let mid = Messages.mid ~origin:(Engine.self ctx) ~seq:!seq in
  incr seq;
  mid

(* Send [msg] to the first f+1 coordinates, one per [disperse_step] of
   simulated time, so a crash of this process can truncate the
   sequence. Every hop sends the same message, so one allocation (and
   one rescheduled closure) covers the whole dispersal. *)
let stepped_send_to_d ctx (config : Config.t) msg =
  let d = Config.d_size config in
  let step = config.disperse_step in
  (* full-value hops are the data traffic of a write; metas are free *)
  let[@lint.allow
       "M1: dispersal cost accounting reads the payload size — this is \
        bookkeeping on a message in flight, not a protocol handler"]
      (op, bytes) =
    match msg with
    | Messages.Md_full { op; _ } -> (op, Messages.data_bytes msg)
    | Messages.Md_coded _ | Messages.Md_meta _ | Messages.Write_get _
    | Messages.Write_get_reply _ | Messages.Write_ack _ | Messages.Read_get _
    | Messages.Read_get_reply _ | Messages.Relay _ | Messages.Repair_get _
    | Messages.Repair_reply _ | Messages.Gossip _ | Messages.Envelope _
    | Messages.Relay_batch _ | Messages.Heartbeat _ | Messages.Suspect_vote _
    | Messages.Keyed _ | Messages.Keyed_gossip _ | Messages.Keyed_envelope _
    | Messages.Keyed_batch _ ->
      (0, 0)
  in
  let i = ref 0 in
  let rec go () =
    let j = !i in
    if j < d then begin
      if bytes > 0 then Cost.comm config.cost ~op ~bytes;
      Config.send config ctx ~dst:config.servers.(j) msg;
      i := j + 1;
      if j + 1 < d then Engine.schedule_local ctx ~delay:step go
    end
  in
  go ()

(* The naive ablation: encode locally and send each server its coded
   element directly. Costs n/k instead of O(f^2), but nobody else holds
   the full value, so a sender crash strands a partial dispersal. *)
let direct_value_send ctx (config : Config.t) ~mid ~op ~tag ~value =
  let fragments = Config.encode config value in
  let n = Array.length config.servers in
  let step = config.disperse_step in
  let rec go i =
    if i < n then begin
      let msg = Messages.Md_coded { mid; op; tag; fragment = fragments.(i) } in
      Cost.comm config.cost ~op ~bytes:(Messages.data_bytes msg);
      Config.send config ctx ~dst:config.servers.(i) msg;
      if i + 1 < n then Engine.schedule_local ctx ~delay:step (fun () -> go (i + 1))
    end
  in
  go 0

let value_send ctx (config : Config.t) ~seq ~op ~tag ~value =
  let mid = fresh_mid ctx ~seq in
  match config.md_mode with
  | `Chained ->
    stepped_send_to_d ctx config (Messages.Md_full { mid; op; tag; value })
  | `Direct -> direct_value_send ctx config ~mid ~op ~tag ~value

let meta_send ctx config ~seq meta =
  let mid = fresh_mid ctx ~seq in
  stepped_send_to_d ctx config (Messages.Md_meta { mid; meta })

module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost

type t = { registers : (string * Deployment.t) list (* in creation order *) }

let create ~engine ~params ~objects ?value_len ?error_prone ?healing
    ~num_writers ~num_readers () =
  if List.is_empty objects then invalid_arg "Store.create: no objects";
  let sorted = List.sort_uniq String.compare objects in
  if List.length sorted <> List.length objects then
    invalid_arg "Store.create: duplicate object names";
  let registers =
    List.map
      (fun name ->
        ( name,
          Deployment.deploy ~engine ~params ?value_len ?error_prone ?healing
            ~num_writers ~num_readers () ))
      objects
  in
  { registers }

let objects t = List.map fst t.registers

let find t ~obj =
  match List.assoc_opt obj t.registers with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Store: unknown object %S" obj)

let write t ~obj ~writer ~at ?on_done value =
  Deployment.write (find t ~obj) ~writer ~at ?on_done value

let read t ~obj ~reader ~at ?on_done () =
  Deployment.read (find t ~obj) ~reader ~at ?on_done ()

let crash_server t ~coordinate ~at =
  List.iter
    (fun (_, d) -> Deployment.crash_server d ~coordinate ~at)
    t.registers

let repair_server t ~coordinate ~at =
  List.iter
    (fun (_, d) -> ignore (Deployment.repair_server d ~coordinate ~at))
    t.registers

let corrupt_server t ~coordinate ~at =
  List.iter
    (fun (_, d) -> Deployment.corrupt_server d ~coordinate ~at)
    t.registers

let repairing t = List.exists (fun (_, d) -> Deployment.repairing d) t.registers
let scrub_clean t = List.for_all (fun (_, d) -> Deployment.scrub_clean d) t.registers

let history t ~obj = Deployment.history (find t ~obj)

let total_storage t =
  List.fold_left
    (fun acc (_, d) -> acc +. Cost.max_total_storage (Deployment.cost d))
    0. t.registers

let check_atomicity t =
  let rec go = function
    | [] -> Ok ()
    | (name, d) :: rest -> (
      match
        Protocol.Atomicity.check_tagged
          ~initial_value:(Deployment.initial_value d)
          (History.records (Deployment.history d))
      with
      | Ok () -> go rest
      | Error v -> Error (name, v))
  in
  go t.registers

let all_complete t =
  List.for_all
    (fun (_, d) -> History.all_complete (Deployment.history d))
    t.registers

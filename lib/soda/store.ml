module Params = Protocol.Params
module History = Protocol.History
module Cost = Protocol.Cost

(* The multi-object composition now rides the keyspace: object number i
   (in creation order) is logical key i of one shared-plane keyspace
   over an n-server single-domain topology, so the named-object store
   inherits cross-key message coalescing for free. The self-healing
   plane is per-register state ([Config.healing] hooks), which the
   keyspace's derived configurations do not carry — stores created with
   [?healing] keep the original one-deployment-per-object composition. *)
type backend =
  | Keyed of { ks : Keyspace.t; names : string array }
  | Legacy of { registers : (string * Deployment.t) list (* creation order *) }

type t = { backend : backend }

let key_of names obj =
  let rec go i =
    if i >= Array.length names then
      invalid_arg (Printf.sprintf "Store: unknown object %S" obj)
    else if String.equal names.(i) obj then i
    else go (i + 1)
  in
  go 0

let create ~engine ~params ~objects ?value_len ?error_prone ?healing
    ~num_writers ~num_readers () =
  if List.is_empty objects then invalid_arg "Store.create: no objects";
  let sorted = List.sort_uniq String.compare objects in
  if List.length sorted <> List.length objects then
    invalid_arg "Store.create: duplicate object names";
  match healing with
  | Some _ ->
    let registers =
      List.map
        (fun name ->
          ( name,
            Deployment.deploy ~engine ~params ?value_len ?error_prone ?healing
              ~num_writers ~num_readers () ))
        objects
    in
    { backend = Legacy { registers } }
  | None ->
    let n = Params.n params in
    let topology = Topology.make ~servers:n ~domains:1 () in
    let placement = Placement.create ~topology ~params () in
    let ks =
      Keyspace.create ~engine ~placement ?value_len ?error_prone ~num_writers
        ~num_readers ()
    in
    let names = Array.of_list objects in
    (* eager instances, in creation order: machine faults and storage
       accounting must cover every object from time zero, not from its
       first operation *)
    Array.iteri (fun key _ -> Keyspace.materialize ks ~key) names;
    { backend = Keyed { ks; names } }

let objects t =
  match t.backend with
  | Keyed { names; _ } -> Array.to_list names
  | Legacy { registers } -> List.map fst registers

let find registers ~obj =
  match List.assoc_opt obj registers with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Store: unknown object %S" obj)

let write t ~obj ~writer ~at ?on_done value =
  match t.backend with
  | Keyed { ks; names } ->
    Keyspace.write ks ~key:(key_of names obj) ~writer ~at ?on_done value
  | Legacy { registers } ->
    Deployment.write (find registers ~obj) ~writer ~at ?on_done value

let read t ~obj ~reader ~at ?on_done () =
  match t.backend with
  | Keyed { ks; names } ->
    Keyspace.read ks ~key:(key_of names obj) ~reader ~at ?on_done ()
  | Legacy { registers } ->
    Deployment.read (find registers ~obj) ~reader ~at ?on_done ()

let crash_server t ~coordinate ~at =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.crash_server ks ~server:coordinate ~at
  | Legacy { registers } ->
    List.iter
      (fun (_, d) -> Deployment.crash_server d ~coordinate ~at)
      registers

let repair_server t ~coordinate ~at =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.repair_server ks ~server:coordinate ~at
  | Legacy { registers } ->
    List.iter
      (fun (_, d) -> ignore (Deployment.repair_server d ~coordinate ~at : int))
      registers

let corrupt_server t ~coordinate ~at =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.corrupt_server ks ~server:coordinate ~at
  | Legacy { registers } ->
    List.iter
      (fun (_, d) -> Deployment.corrupt_server d ~coordinate ~at)
      registers

let repairing t =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.repairing ks
  | Legacy { registers } ->
    List.exists (fun (_, d) -> Deployment.repairing d) registers

let scrub_clean t =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.scrub_clean ks
  | Legacy { registers } ->
    List.for_all (fun (_, d) -> Deployment.scrub_clean d) registers

let history t ~obj =
  match t.backend with
  | Keyed { ks; names } -> Keyspace.history ks ~key:(key_of names obj)
  | Legacy { registers } -> Deployment.history (find registers ~obj)

let total_storage t =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.total_storage ks
  | Legacy { registers } ->
    List.fold_left
      (fun acc (_, d) -> acc +. Cost.max_total_storage (Deployment.cost d))
      0. registers

let check_atomicity t =
  match t.backend with
  | Keyed { ks; names } -> (
    match Keyspace.check_atomicity ks with
    | Ok () -> Ok ()
    | Error (key, v) -> Error (names.(key), v))
  | Legacy { registers } ->
    let rec go = function
      | [] -> Ok ()
      | (name, d) :: rest -> (
        match
          Protocol.Atomicity.check_tagged
            ~initial_value:(Deployment.initial_value d)
            (History.records (Deployment.history d))
        with
        | Ok () -> go rest
        | Error v -> Error (name, v))
    in
    go registers

let all_complete t =
  match t.backend with
  | Keyed { ks; _ } -> Keyspace.all_complete ks
  | Legacy { registers } ->
    List.for_all
      (fun (_, d) -> History.all_complete (Deployment.history d))
      registers

(** The SODA / SODA{_err} reader automaton (Fig. 4 / Fig. 6).

    A read proceeds in three phases: {e read-get} polls all servers and
    takes the maximum tag [tr] of a majority of replies; {e read-value}
    registers [(r, tr)] at every server with MD-META and accumulates
    relayed coded elements until it holds [decode_threshold] elements of
    a single tag ([k] for SODA, [k + 2e] for SODA{_err}, in which case
    decoding also corrects up to [e] corrupted elements); {e
    read-complete} disperses READ-COMPLETE so servers unregister it, and
    returns the decoded value. *)

type t

val create : Config.t -> t

val invoke :
  t -> Messages.t Simnet.Engine.context -> ?on_done:(bytes -> unit) ->
  unit -> int
(** Start a read; returns the operation id.
    @raise Invalid_argument if an operation is already in flight. *)

val handler : t -> Messages.t Simnet.Engine.context -> src:int -> Messages.t -> unit

val busy : t -> bool

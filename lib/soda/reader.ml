module Engine = Simnet.Engine
module Tag = Protocol.Tag
module Params = Protocol.Params
module History = Protocol.History
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment
module Int_tbl = Protocol.Int_tbl

module TagMap = Map.Make (struct
  type t = Tag.t

  let compare = Tag.compare
end)

type phase =
  | Idle
  | Get of { rid : int; replies : Int_tbl.Set.t; mutable best : Tag.t }
  | Collect of {
      rid : int;
      tr : Tag.t;
      mutable acc : (int, Fragment.t) Hashtbl.t TagMap.t
          (* per candidate tag: fragments indexed by coordinate *)
    }

type t = {
  config : Config.t;
  mutable phase : phase;
  seq : int ref;
  mutable on_done : (bytes -> unit) option
}

let create config = { config; phase = Idle; seq = ref 0; on_done = None }
let busy t = match t.phase with Idle -> false | Get _ | Collect _ -> true

(* Re-issue the pending phase of a stalled read (armed only when
   [Config.client_retry] is set, i.e. over the reliable transport). The
   get phase re-polls the servers; the collect phase re-broadcasts
   READ-VALUE, which re-registers the read at servers whose crash-repair
   cycle wiped the registration — without that, every wiped server is
   one relay source lost forever and a long-lived read can permanently
   fall below the decode threshold. All re-sends are idempotent at the
   receivers: replies are folded through sets and max-tag updates, and
   duplicate registrations are [Hashtbl.replace]. *)
let rec schedule_retry t ctx ~rid =
  match t.config.Config.client_retry with
  | None -> ()
  | Some interval ->
    Engine.schedule_local ctx ~delay:interval (fun () ->
        match t.phase with
        | Get g when g.rid = rid ->
          Array.iter
            (fun server ->
              Config.send t.config ctx ~dst:server (Messages.Read_get { rid }))
            t.config.Config.servers;
          schedule_retry t ctx ~rid
        | Collect c when c.rid = rid ->
          Md.meta_send ctx t.config ~seq:t.seq
            (Messages.Read_value { rid; reader = Engine.self ctx; tr = c.tr });
          schedule_retry t ctx ~rid
        | Idle | Get _ | Collect _ ->
          (* the read completed (or a newer one started): stop *)
          ())

let invoke t ctx ?on_done () =
  (match t.phase with
  | Idle -> ()
  | Get _ | Collect _ ->
    invalid_arg "Reader.invoke: operation already in flight (well-formedness)");
  let rid =
    History.invoke t.config.Config.history ~client:(Engine.self ctx)
      ~kind:History.Read ~at:(Engine.now_ctx ctx)
  in
  t.on_done <- on_done;
  t.phase <- Get { rid; replies = Int_tbl.Set.create 8; best = Tag.initial };
  Array.iter
    (fun server -> Config.send t.config ctx ~dst:server (Messages.Read_get { rid }))
    t.config.Config.servers;
  schedule_retry t ctx ~rid;
  rid

let complete t ctx ~rid ~tr ~tag ~value =
  let history = t.config.Config.history in
  History.set_tag history ~op:rid tag;
  History.set_value history ~op:rid value;
  Md.meta_send ctx t.config ~seq:t.seq
    (Messages.Read_complete { rid; reader = Engine.self ctx; tr });
  History.respond history ~op:rid ~at:(Engine.now_ctx ctx);
  t.phase <- Idle;
  match t.on_done with
  | Some callback ->
    t.on_done <- None;
    callback value
  | None -> ()

(* Try to decode tag [tag] from the accumulated fragments; on success the
   read completes. SODAerr note: decoding can only be attempted — and is
   only guaranteed — once [k + 2e] elements are present, and up to [e] of
   them may be corrupt; [Mds.Decode_failure] leaves the read waiting for
   further relays (more elements can only help the decoder). *)
let try_decode t ctx ~rid ~tr ~tag fragments =
  if Hashtbl.length fragments >= t.config.Config.decode_threshold then begin
    let[@lint.allow
         "D3: materialized sorted by fragment index so the decoder input \
          order is schedule-independent (bit-identical replay)"] frags =
      Hashtbl.fold (fun c f acc -> (c, f) :: acc) fragments []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map snd
    in
    match Mds.decode t.config.Config.code frags with
    | value -> complete t ctx ~rid ~tr ~tag ~value
    | exception Mds.Decode_failure _ -> ()
  end

(* Fold one relayed element into the collect phase. Re-checks the phase
   so a batch whose earlier element completed the read (decode success
   flips the phase to Idle) stops consuming the rest. *)
let add_relay t ctx ~rid ~tag ~fragment =
  match t.phase with
  | Collect c when c.rid = rid ->
    let fragments =
      match TagMap.find_opt tag c.acc with
      | Some fragments -> fragments
      | None ->
        let fragments = Hashtbl.create 8 in
        c.acc <- TagMap.add tag fragments c.acc;
        fragments
    in
    Hashtbl.replace fragments (Fragment.index fragment) fragment;
    try_decode t ctx ~rid ~tr:c.tr ~tag fragments
  | Idle | Get _ | Collect _ -> ()

let handler t ctx ~src msg =
  match (msg, t.phase) with
  | Messages.Read_get_reply { rid; tag }, Get g when g.rid = rid ->
    ignore (Int_tbl.Set.add g.replies src : bool);
    if Tag.( > ) tag g.best then g.best <- tag;
    if Int_tbl.Set.length g.replies >= Params.majority t.config.Config.params
    then begin
      let tr = g.best in
      t.phase <- Collect { rid; tr; acc = TagMap.empty };
      Md.meta_send ctx t.config ~seq:t.seq
        (Messages.Read_value { rid; reader = Engine.self ctx; tr })
    end
  | Messages.Relay { rid; tag; fragment }, Collect c when c.rid = rid ->
    add_relay t ctx ~rid ~tag ~fragment
  | Messages.Relay_batch { rid; items }, Collect c when c.rid = rid ->
    List.iter (fun (tag, fragment) -> add_relay t ctx ~rid ~tag ~fragment) items
  | ( ( Messages.Read_get_reply _ | Messages.Relay _ | Messages.Relay_batch _
      | Messages.Write_get _ | Messages.Write_get_reply _ | Messages.Write_ack _
      | Messages.Read_get _ | Messages.Md_full _ | Messages.Md_coded _
      | Messages.Md_meta _ | Messages.Repair_get _ | Messages.Repair_reply _
      | Messages.Gossip _ | Messages.Envelope _ | Messages.Heartbeat _
      | Messages.Suspect_vote _ | Messages.Keyed _ | Messages.Keyed_gossip _
      | Messages.Keyed_envelope _ | Messages.Keyed_batch _ ),
      (Idle | Get _ | Collect _) ) ->
    (* stale relays for finished reads, or foreign traffic *)
    ()

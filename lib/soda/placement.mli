(** Failure-domain-aware placement: which [n] servers hold a key's
    fragments.

    A placement binds a geometry ({!Protocol.Params}, typically from a
    {!preset}) to a {!Topology} and a spread {!policy}. For every key
    it yields [n] {e distinct} physical servers such that

    - the fragments span [min(domains, n)] failure domains,
    - no domain holds more than [ceil(n / min(domains, n))] of them,
    - consecutive coordinates land in distinct domains, so the MD
      primitives' distinguished first set [D] (the [f + 1] servers a
      writer contacts first) itself spans [min(f + 1, domains)] domains.

    When {!domain_safe} holds, a whole failure domain crashing or
    partitioning stays within each key's [f]-crash budget — the
    property the per-domain chaos cells exercise. Placement is a pure
    function of the key: clients, servers and tests compute it
    independently and agree. *)

module Params = Protocol.Params

(** [Mod_stripe] rotates coordinates arithmetically (key [i] starts at
    domain [i mod domains]) — perfectly balanced aggregate load, but
    adjacent keys share server sets shifted by one. [Consistent_hash]
    walks a deterministic vnode ring from the key's hash point —
    unrelated keys get unrelated server sets and fleet growth moves a
    minimal fraction of keys, the production default of the placement
    ADRs this module follows. *)
type policy = Mod_stripe | Consistent_hash

type t

(** Geometry presets in the storage-ADR "data+parity" notation. SODA's
    code dimension is [k = n - f], so ["4+2"] is [n = 6, f = 2] and
    ["10+4"] is [n = 14, f = 4]. *)
type preset = [ `P4_2 | `P10_4 ]

val preset_params : preset -> Params.t
val preset_of_string : string -> preset option
val preset_name : preset -> string

val create : topology:Topology.t -> params:Params.t -> ?policy:policy -> unit -> t
(** [policy] defaults to [Mod_stripe].
    @raise Invalid_argument if the topology has fewer than [n] servers,
    or its smallest domain cannot hold the balanced per-domain share
    [ceil(n / min(domains, n))]. *)

val servers_of : t -> key:int -> int array
(** The [n] physical server indices holding [key]'s fragments,
    coordinate order (index [i] is the server of coordinate [i]).
    Deterministic; satisfies the distinctness/spread/balance invariants
    above. @raise Invalid_argument on a negative key. *)

val params : t -> Params.t
val topology : t -> Topology.t
val policy : t -> policy

val domains_spanned : t -> key:int -> int
(** Distinct failure domains among [servers_of ~key] — always
    [min(domains, n)]. *)

val max_per_domain : t -> key:int -> int
(** Largest fragment count any one domain holds for [key] — at most
    [ceil(n / min(domains, n))]. *)

val domain_safe : t -> bool
(** [true] iff the per-domain share is at most [f], i.e. losing any
    whole domain keeps every key inside its crash budget. *)

val pp : Format.formatter -> t -> unit

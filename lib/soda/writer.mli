(** The SODA writer automaton (Fig. 3 of the paper).

    A write proceeds in two phases: {e write-get} queries all servers for
    their stored tags and picks the maximum among a majority of replies;
    {e write-put} creates the new tag [(z_max + 1, w)] and disperses the
    value with MD-VALUE, completing once [k] servers have acknowledged
    their coded element. The automaton handles one operation at a time
    (well-formedness); operations are recorded in the deployment's
    {!Protocol.History}. *)

type t

val create : Config.t -> t

val invoke :
  t -> Messages.t Simnet.Engine.context -> value:bytes ->
  ?on_done:(unit -> unit) -> unit -> int
(** Start a write; returns the operation id under which it is recorded.
    [on_done] fires at completion (k acknowledgements).
    @raise Invalid_argument if an operation is already in flight. *)

val handler : t -> Messages.t Simnet.Engine.context -> src:int -> Messages.t -> unit

val busy : t -> bool

module Fragment = Erasure.Fragment
module Tag = Protocol.Tag

(* FNV-1a (32-bit) over the payload view, mixed with the fragment index
   so a fragment swapped for another coordinate's bytes also fails
   verification. Pure integer arithmetic: checksumming draws no
   randomness and sends nothing, so enabling it never perturbs a
   simulation trace. *)
let fnv_prime = 0x01000193
let fnv_basis = 0x811c9dc5
let mask = 0xFFFFFFFF

let checksum fragment =
  let buf = Fragment.buf fragment
  and off = Fragment.off fragment
  and len = Fragment.size fragment in
  let h = ref ((fnv_basis lxor Fragment.index fragment) land mask) in
  for i = off to off + len - 1 do
    h := (!h lxor Char.code (Bytes.get buf i)) * fnv_prime land mask
  done;
  !h

type t = {
  mutable tag : Tag.t;
  mutable fragment : Fragment.t;
  mutable sum : int;
  mutable quarantined : bool
}

let create ~tag ~fragment =
  { tag; fragment; sum = checksum fragment; quarantined = false }

let store t ~tag ~fragment =
  t.tag <- tag;
  t.fragment <- fragment;
  t.sum <- checksum fragment;
  t.quarantined <- false

let tag t = t.tag
let fragment_unchecked t = t.fragment
let quarantined t = t.quarantined
let verify t = checksum t.fragment = t.sum

let read t =
  if t.quarantined then `Corrupt
  else if verify t then `Ok t.fragment
  else begin
    t.quarantined <- true;
    `Corrupt
  end

let rot t ~seed = t.fragment <- Fragment.corrupt t.fragment ~seed

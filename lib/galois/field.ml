(** The field interface shared by GF(2{^8}) and GF(2{^16}).

    Elements are small non-negative [int]s (the representation both
    implementations use), which lets generic code over either field — in
    particular {!Matrix_gen} — stay allocation-free. *)

module type S = sig
  type t = int

  val order : int
  val zero : t
  val one : t
  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val div : t -> t -> t
  val inv : t -> t
  val is_zero : t -> bool
  val equal : t -> t -> bool
  val alpha_pow : int -> t
  (** Powers of a fixed primitive element; defined for any integer
      exponent. *)

  val pp : Format.formatter -> t -> unit
end

(* The GF(2^8) instantiation of the generic polynomial code; see
   poly.mli for documentation and Poly_gen for the implementation. *)
include Poly_gen.Make (Gf)

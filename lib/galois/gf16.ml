type t = int

let order = 65536
let field_mask = 0xffff
let group_order = 65535
let primitive_poly = 0x1100b
let zero = 0
let one = 1
let alpha = 0x02

let of_int i =
  if i < 0 || i > field_mask then
    invalid_arg (Printf.sprintf "Gf16.of_int: %d out of range [0, 65535]" i)
  else i

let mul_slow a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x10000 <> 0 then a lxor primitive_poly else a in
      loop a (b lsr 1) acc
  in
  loop a b 0

(* exp_table.(i) = alpha^i for i in [0, 2*65535 - 1]; doubled so mul can
   index [log a + log b] without a modulo. *)
let exp_table, log_table =
  let exp_table = Array.make (2 * group_order) 0 in
  let log_table = Array.make order (-1) in
  let x = ref 1 in
  for i = 0 to group_order - 1 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x alpha
  done;
  assert (!x = 1);
  for i = group_order to (2 * group_order) - 1 do
    exp_table.(i) <- exp_table.(i - group_order)
  done;
  (exp_table, log_table)

let add a b = a lxor b
let sub = add
let is_zero a = a = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let log a =
  if a = 0 then invalid_arg "Gf16.log: log of zero" else log_table.(a)

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(group_order - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + group_order - log_table.(b))

let alpha_pow e = exp_table.(((e mod group_order) + group_order) mod group_order)

let pow a e =
  if a = 0 then
    if e = 0 then 1 else if e > 0 then 0 else raise Division_by_zero
  else alpha_pow (log_table.(a) * e)

let pp ppf a = Format.fprintf ppf "0x%04x" a

type t = int

let order = 65536
let field_mask = 0xffff
let group_order = 65535
let primitive_poly = 0x1100b
let zero = 0
let one = 1
let alpha = 0x02

let of_int i =
  if i < 0 || i > field_mask then
    invalid_arg (Printf.sprintf "Gf16.of_int: %d out of range [0, 65535]" i)
  else i

let mul_slow a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x10000 <> 0 then a lxor primitive_poly else a in
      loop a (b lsr 1) acc
  in
  loop a b 0

(* exp_table.(i) = alpha^i for i in [0, 2*65535 - 1]; doubled so mul can
   index [log a + log b] without a modulo. *)
let[@lint.allow
     "R1: filled once at module initialization, read-only afterwards — \
      safe to read from any domain"] (exp_table, log_table) =
  let exp_table = Array.make (2 * group_order) 0 in
  let log_table = Array.make order (-1) in
  let x = ref 1 in
  for i = 0 to group_order - 1 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x alpha
  done;
  assert (!x = 1);
  for i = group_order to (2 * group_order) - 1 do
    exp_table.(i) <- exp_table.(i - group_order)
  done;
  (exp_table, log_table)

let add a b = a lxor b
let sub = add
let is_zero a = a = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let log a =
  if a = 0 then invalid_arg "Gf16.log: log of zero" else log_table.(a)

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(group_order - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + group_order - log_table.(b))

let alpha_pow e = exp_table.(((e mod group_order) + group_order) mod group_order)

let pow a e =
  if a = 0 then
    if e = 0 then 1 else if e > 0 then 0 else raise Division_by_zero
  else alpha_pow (log_table.(a) * e)

let pp ppf a = Format.fprintf ppf "0x%04x" a

(* ------------------------------------------------------------------ *)
(* Buffer-level kernels.

   A full 65536-entry product table per coefficient would cost 128 KiB
   each, so we use the classical split-table scheme instead: for a
   coefficient [c],

     c * x = c * (hi(x) << 8)  xor  c * lo(x)
           = hi_table.(hi(x)) xor lo_table.(lo(x))

   by linearity of GF(2^16) multiplication over XOR. Two 256-entry int
   arrays per coefficient, one load each per symbol.

   Tables are cached per coefficient on first use. A mutex serializes
   the check-and-fill so concurrent first-time requests from multiple
   domains are safe; table construction is setup cost (once per
   coefficient), never part of the per-symbol inner loop, so the lock
   is off the hot path. *)

type mul_tables = { lo : int array; hi : int array }

let build_tables c =
  { lo = Array.init 256 (fun x -> mul c x);
    hi = Array.init 256 (fun x -> mul c (x lsl 8))
  }

let[@lint.allow
     "R1: all reads and writes happen under tables_mutex below"]
    tables_cache : mul_tables option array =
  Array.make order None

let[@lint.allow "R1: the mutex guarding tables_cache is itself domain-safe"]
    tables_mutex = Mutex.create ()

let mul_tables c =
  if c < 0 || c > field_mask then
    invalid_arg (Printf.sprintf "Gf16.mul_tables: %d out of range [0, 65535]" c)
  else begin
    Mutex.lock tables_mutex;
    let t =
      match tables_cache.(c) with
      | Some t -> t
      | None ->
        let t = build_tables c in
        tables_cache.(c) <- Some t;
        t
    in
    Mutex.unlock tables_mutex;
    t
  end

(* [off] and [len] count 16-bit symbols; buffers hold big-endian symbols
   as the codecs lay them out. *)
let check_buf_args ~fname ~src ~dst ~off ~len =
  if
    off < 0 || len < 0
    || (len > 0
       && (2 * (off + len) > Bytes.length src
          || 2 * (off + len) > Bytes.length dst))
  then
    invalid_arg
      (Printf.sprintf
         "%s: symbol range [%d, %d) outside buffers (src %d, dst %d bytes)"
         fname off (off + len) (Bytes.length src) (Bytes.length dst))

(* U1 audit: unsafe accesses below are covered by [check_buf_args];
   table indices are single bytes into 256-entry arrays. The chunk-table
   sweeps go through [Wops], whose [debug_checks] (soda-debug profile /
   SODA_DEBUG env) re-asserts each range. *)
[@@@lint.allow
  "U1: entry checks put every offset inside both buffers and table \
   indices are single bytes into 256-entry arrays; Wops debug_checks \
   re-asserts each range"]

let mul_buf t ~src ~dst ~off ~len =
  check_buf_args ~fname:"Gf16.mul_buf" ~src ~dst ~off ~len;
  let { lo; hi } = t in
  for s = off to off + len - 1 do
    let i = 2 * s in
    let xh = Char.code (Bytes.unsafe_get src i) in
    let xl = Char.code (Bytes.unsafe_get src (i + 1)) in
    let p = Array.unsafe_get hi xh lxor Array.unsafe_get lo xl in
    Bytes.unsafe_set dst i (Char.unsafe_chr (p lsr 8));
    Bytes.unsafe_set dst (i + 1) (Char.unsafe_chr (p land 0xff))
  done

let muladd_buf t ~src ~dst ~off ~len =
  check_buf_args ~fname:"Gf16.muladd_buf" ~src ~dst ~off ~len;
  let { lo; hi } = t in
  for s = off to off + len - 1 do
    let i = 2 * s in
    let xh = Char.code (Bytes.unsafe_get src i) in
    let xl = Char.code (Bytes.unsafe_get src (i + 1)) in
    let p = Array.unsafe_get hi xh lxor Array.unsafe_get lo xl in
    let dh = Char.code (Bytes.unsafe_get dst i) in
    let dl = Char.code (Bytes.unsafe_get dst (i + 1)) in
    Bytes.unsafe_set dst i (Char.unsafe_chr ((p lsr 8) lxor dh));
    Bytes.unsafe_set dst (i + 1) (Char.unsafe_chr ((p land 0xff) lxor dl))
  done

(* ------------------------------------------------------------------ *)
(* Word-sliced sweeps.

   A full 65536-entry chunk table per coefficient (128 KiB) maps one
   big-endian symbol — i.e. one 16-bit memory chunk — straight to its
   product, so the shared [Wops] 64-bit loop handles two symbols per
   load. Heavier to build than the split tables above (one [mul] per
   field element), so cached separately and only on demand from the
   codec hot paths; the split-table sweeps remain the oracles. *)

type wtable = Wops.chunk_table

let[@lint.allow "R1: all reads and writes happen under wtables_mutex"]
    wtables : (t, wtable) Hashtbl.t =
  Hashtbl.create 64

let[@lint.allow "R1: the mutex guarding wtables is itself domain-safe"]
    wtables_mutex = Mutex.create ()

let wtable c =
  if c < 0 || c > field_mask then
    invalid_arg (Printf.sprintf "Gf16.wtable: %d out of range [0, 65535]" c)
  else begin
    Mutex.lock wtables_mutex;
    let t =
      match Hashtbl.find_opt wtables c with
      | Some t -> t
      | None ->
        let t = Wops.make_chunk_table_symbolwise (fun x -> mul c x) in
        Hashtbl.add wtables c t;
        t
    in
    Mutex.unlock wtables_mutex;
    t
  end

(* Byte offsets and lengths (unlike the symbol-counted oracles above):
   the callers sweep views into shared backing buffers and already
   track byte positions. [len] must be even. *)

let mul_buf_w wt ~src ~soff ~dst ~doff ~len =
  Wops.mul_chunks wt ~src ~soff ~dst ~doff ~len

let muladd_buf_w wt ~src ~soff ~dst ~doff ~len =
  Wops.muladd_chunks wt ~src ~soff ~dst ~doff ~len

(* Split-table sweeps over views, for paths where a 128 KiB chunk table
   per coefficient doesn't amortize (decode submatrices have arbitrary
   coefficients, so small decodes would spend longer building tables
   than sweeping). Same inner loop as the oracles above, with separate
   src/dst byte offsets. *)

let check_v_args ~fname ~src ~soff ~dst ~doff ~len =
  if
    soff < 0 || doff < 0 || len < 0 || len land 1 <> 0
    || (len > 0
       && (soff + len > Bytes.length src || doff + len > Bytes.length dst))
  then
    invalid_arg
      (Printf.sprintf "%s: bad byte range (soff %d doff %d len %d)" fname soff
         doff len)

let mul_buf_v t ~src ~soff ~dst ~doff ~len =
  check_v_args ~fname:"Gf16.mul_buf_v" ~src ~soff ~dst ~doff ~len;
  let { lo; hi } = t in
  let symbols = len / 2 in
  for s = 0 to symbols - 1 do
    let i = soff + (2 * s) and o = doff + (2 * s) in
    let xh = Char.code (Bytes.unsafe_get src i) in
    let xl = Char.code (Bytes.unsafe_get src (i + 1)) in
    let p = Array.unsafe_get hi xh lxor Array.unsafe_get lo xl in
    Bytes.unsafe_set dst o (Char.unsafe_chr (p lsr 8));
    Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr (p land 0xff))
  done

let muladd_buf_v t ~src ~soff ~dst ~doff ~len =
  check_v_args ~fname:"Gf16.muladd_buf_v" ~src ~soff ~dst ~doff ~len;
  let { lo; hi } = t in
  let symbols = len / 2 in
  for s = 0 to symbols - 1 do
    let i = soff + (2 * s) and o = doff + (2 * s) in
    let xh = Char.code (Bytes.unsafe_get src i) in
    let xl = Char.code (Bytes.unsafe_get src (i + 1)) in
    let p = Array.unsafe_get hi xh lxor Array.unsafe_get lo xl in
    let dh = Char.code (Bytes.unsafe_get dst o) in
    let dl = Char.code (Bytes.unsafe_get dst (o + 1)) in
    Bytes.unsafe_set dst o (Char.unsafe_chr ((p lsr 8) lxor dh));
    Bytes.unsafe_set dst (o + 1) (Char.unsafe_chr ((p land 0xff) lxor dl))
  done

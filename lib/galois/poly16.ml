(* Polynomials over GF(2^16); same interface as {!Poly} (see poly.mli),
   used by the large-n errors-and-erasures decoder. *)
include Poly_gen.Make (Gf16)

(* The GF(2^8) instantiation of the generic matrix code; see matrix.mli
   for documentation and Matrix_gen for the implementation. *)
include Matrix_gen.Make (Gf)

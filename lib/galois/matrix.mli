(** Dense matrices over GF(2{^8}).

    Row-major, immutable from the outside (constructors copy, accessors
    return fresh data). Sized for erasure-coding uses: dimensions up to a
    few hundred, where Gauss-Jordan elimination is entirely adequate. *)

type t

exception Singular
(** Raised by {!invert} and {!solve} when the matrix is not invertible. *)

val create : rows:int -> cols:int -> (int -> int -> Gf.t) -> t
(** [create ~rows ~cols f] builds the matrix with entry [f i j] at row [i],
    column [j].
    @raise Invalid_argument if either dimension is non-positive. *)

val of_rows : Gf.t array array -> t
(** Builds from row arrays, which must be non-empty and rectangular; the
    arrays are copied.
    @raise Invalid_argument on a ragged or empty input. *)

val identity : int -> t
val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> Gf.t
(** [get m i j] is the entry at row [i], column [j]; bounds-checked. *)

val row : t -> int -> Gf.t array
(** A copy of row [i]. *)

val equal : t -> t -> bool

val mul : t -> t -> t
(** Matrix product.
    @raise Invalid_argument on mismatched inner dimensions. *)

val mul_vec : t -> Gf.t array -> Gf.t array
(** [mul_vec m v] is the matrix-vector product [m v].
    @raise Invalid_argument when [Array.length v <> cols m]. *)

val transpose : t -> t

val select_rows : t -> int array -> t
(** [select_rows m idx] stacks rows [idx.(0)], [idx.(1)], ... of [m]. *)

val invert : t -> t
(** Inverse of a square matrix by Gauss-Jordan elimination with partial
    pivoting (any non-zero pivot works in a field).
    @raise Singular when not invertible.
    @raise Invalid_argument when not square. *)

val solve : t -> Gf.t array -> Gf.t array
(** [solve a b] returns the [x] with [a x = b] for square [a].
    @raise Singular when [a] is not invertible. *)

val vandermonde : rows:int -> cols:int -> t
(** [vandermonde ~rows ~cols] has entry [alpha_pow (i * j)] at [(i, j)] —
    row [i] evaluates a degree-[cols-1] polynomial at the point
    [alpha{^i}]. Any [cols] rows with distinct evaluation points are
    linearly independent provided [rows <= 255]. *)

val rank : t -> int
(** Rank by elimination on a scratch copy. *)

val pp : Format.formatter -> t -> unit

(* Word-sliced buffer sweeps shared by the GF(2^8) and GF(2^16) kernels.

   The per-byte product-table loops top out around 800 MB/s: every byte
   pays a load from src, a table load, a load from dst and a store. The
   sweeps here move 8 bytes per memory operation instead. A coefficient
   is represented by a "chunk table" — 65536 16-bit entries mapping a
   16-bit chunk of the source stream directly to the corresponding
   16-bit chunk of the product stream — so one 64-bit load from src
   costs four table lookups, one 64-bit load from dst and one 64-bit
   store. For GF(2^8) both bytes of a chunk are independent products;
   for GF(2^16) a chunk is one big-endian symbol and the table is its
   full product table. Either way the inner loop is identical, which is
   why it lives here, field-agnostically.

   The int64 chains below compile to straight register arithmetic even
   without flambda (the backend's local unboxing covers load/logxor/
   store chains), measured at ~2.3 GB/s muladd and ~9 GB/s xor against
   0.8 GB/s for the byte loops on the reference machine.

   Endianness: chunk tables are built through [chunk_of_pair] /
   [pair_of_chunk] below, i.e. through the same native-endian 16-bit
   primitives the sweeps read with, so the scheme is self-consistent on
   both little- and big-endian targets.

   Bounds discipline: every public sweep validates the full byte ranges
   of src and dst once at entry ([check_range]); all interior indices
   are derived from those ranges, and the per-block [assert]s (compiled
   out under a [-noassert] profile, see DESIGN.md "Word-sliced
   kernels") re-state the invariant next to each unsafe access. *)

(* U1: unchecked word primitives — every use below is inside a sweep
   whose entry check covers the full range it touches. *)
external get16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
  [@@lint.allow
    "U1: unchecked word primitive — every use is inside a sweep whose \
     entry check covers the full range it touches"]

external set16 : Bytes.t -> int -> int -> unit = "%caml_bytes_set16u"
  [@@lint.allow
    "U1: unchecked word primitive — every use is inside a sweep whose \
     entry check covers the full range it touches"]

external get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
  [@@lint.allow
    "U1: unchecked word primitive — every use is inside a sweep whose \
     entry check covers the full range it touches"]

external set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64u"
  [@@lint.allow
    "U1: unchecked word primitive — every use is inside a sweep whose \
     entry check covers the full range it touches"]

type chunk_table = Bytes.t

let chunk_table_bytes = 131072 (* 65536 entries * 2 bytes *)

(* Expensive per-block re-validation, for soak runs: SODA_DEBUG=1 in
   the environment — or building with [--profile soda-debug], which
   compiles the checks in unconditionally — turns every 8/2-byte block
   access into a checked one. Read once at load; the hot loops test an
   immutable bool. *)
let debug_checks =
  Build_profile.soda_debug
  ||
  match Sys.getenv_opt "SODA_DEBUG" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* [chunk_of_pair b0 b1] is the 16-bit chunk value [get16] returns for
   two consecutive memory bytes [b0, b1]; [pair_of_chunk] inverts it.
   Computed once against the real primitives so table construction
   matches the sweeps' byte order exactly. *)
let little_endian =
  let probe = Bytes.create 2 in
  Bytes.set probe 0 '\x01';
  Bytes.set probe 1 '\x00';
  get16 probe 0 = 1

let chunk_of_pair b0 b1 = if little_endian then b0 lor (b1 lsl 8) else b1 lor (b0 lsl 8)

(* [make_chunk_table f] builds the table for the bytewise product map
   [f]: for every chunk, each byte maps independently. Used by GF(2^8),
   where multiplication acts on single bytes. *)
let make_chunk_table_bytewise f =
  let t = Bytes.create chunk_table_bytes in
  for b0 = 0 to 255 do
    let p0 = f b0 in
    for b1 = 0 to 255 do
      set16 t (2 * chunk_of_pair b0 b1) (chunk_of_pair p0 (f b1))
    done
  done;
  t

(* [make_chunk_table_symbolwise f] builds the table for a 16-bit-symbol
   product map [f] over big-endian symbols: a chunk is one symbol, read
   high byte first. Used by GF(2^16). *)
let make_chunk_table_symbolwise f =
  let t = Bytes.create chunk_table_bytes in
  for x = 0 to 65535 do
    let p = f x in
    set16 t
      (2 * chunk_of_pair (x lsr 8) (x land 0xff))
      (chunk_of_pair (p lsr 8) (p land 0xff))
  done;
  t

let check_range ~fname buf ~off ~len =
  (* len = 0 touches no byte and is accepted at any offset — callers
     routinely pass tail offsets of empty values. *)
  if off < 0 || len < 0 || (len > 0 && off + len > Bytes.length buf) then
    invalid_arg
      (Printf.sprintf "%s: range [%d, %d) outside buffer of %d bytes" fname off
         (off + len) (Bytes.length buf))

let check_table ~fname t =
  if Bytes.length t <> chunk_table_bytes then
    invalid_arg (fname ^ ": not a chunk table")

(* dst[doff+i] ^= src[soff+i] for i in [0, len). src and dst may be the
   same buffer only when soff = doff (each word is read before it is
   written); partially overlapping ranges are unsupported. *)
let xor_into ~src ~soff ~dst ~doff ~len =
  check_range ~fname:"Wops.xor_into" src ~off:soff ~len;
  check_range ~fname:"Wops.xor_into" dst ~off:doff ~len;
  let i = ref 0 in
  while len - !i >= 8 do
    let j = !i in
    if debug_checks then
      assert (soff + j + 8 <= Bytes.length src && doff + j + 8 <= Bytes.length dst);
    set64 dst (doff + j) (Int64.logxor (get64 src (soff + j)) (get64 dst (doff + j)));
    i := j + 8
  done;
  while !i < len do
    let j = !i in
    let s = Char.code (Bytes.get src (soff + j)) in
    let d = Char.code (Bytes.get dst (doff + j)) in
    Bytes.set dst (doff + j) (Char.unsafe_chr (s lxor d));
    incr i
  done

(* The shared 64-bit product step: one word of src through four chunk
   lookups. [muladd] xors into dst, [mul] overwrites. Unrolled x2 —
   measured the knee of the curve; x4 gained nothing. *)

let muladd_chunks t ~src ~soff ~dst ~doff ~len =
  check_table ~fname:"Wops.muladd_chunks" t;
  check_range ~fname:"Wops.muladd_chunks" src ~off:soff ~len;
  check_range ~fname:"Wops.muladd_chunks" dst ~off:doff ~len;
  if len land 1 <> 0 then invalid_arg "Wops.muladd_chunks: odd length";
  let i = ref 0 in
  while len - !i >= 16 do
    let j = !i in
    if debug_checks then
      assert (soff + j + 16 <= Bytes.length src && doff + j + 16 <= Bytes.length dst);
    let x = get64 src (soff + j) in
    let lo = Int64.to_int x land 0xffffffff in
    let hi = Int64.to_int (Int64.shift_right_logical x 32) in
    let plo = get16 t (2 * (lo land 0xffff)) lor (get16 t (2 * (lo lsr 16)) lsl 16) in
    let phi = get16 t (2 * (hi land 0xffff)) lor (get16 t (2 * (hi lsr 16)) lsl 16) in
    let p = Int64.logor (Int64.of_int plo) (Int64.shift_left (Int64.of_int phi) 32) in
    set64 dst (doff + j) (Int64.logxor p (get64 dst (doff + j)));
    let j = j + 8 in
    let x = get64 src (soff + j) in
    let lo = Int64.to_int x land 0xffffffff in
    let hi = Int64.to_int (Int64.shift_right_logical x 32) in
    let plo = get16 t (2 * (lo land 0xffff)) lor (get16 t (2 * (lo lsr 16)) lsl 16) in
    let phi = get16 t (2 * (hi land 0xffff)) lor (get16 t (2 * (hi lsr 16)) lsl 16) in
    let p = Int64.logor (Int64.of_int plo) (Int64.shift_left (Int64.of_int phi) 32) in
    set64 dst (doff + j) (Int64.logxor p (get64 dst (doff + j)));
    i := j + 8
  done;
  while !i < len do
    let j = !i in
    if debug_checks then
      assert (soff + j + 2 <= Bytes.length src && doff + j + 2 <= Bytes.length dst);
    set16 dst (doff + j)
      (get16 t (2 * get16 src (soff + j)) lxor get16 dst (doff + j));
    i := j + 2
  done

let mul_chunks t ~src ~soff ~dst ~doff ~len =
  check_table ~fname:"Wops.mul_chunks" t;
  check_range ~fname:"Wops.mul_chunks" src ~off:soff ~len;
  check_range ~fname:"Wops.mul_chunks" dst ~off:doff ~len;
  if len land 1 <> 0 then invalid_arg "Wops.mul_chunks: odd length";
  let i = ref 0 in
  while len - !i >= 16 do
    let j = !i in
    if debug_checks then
      assert (soff + j + 16 <= Bytes.length src && doff + j + 16 <= Bytes.length dst);
    let x = get64 src (soff + j) in
    let lo = Int64.to_int x land 0xffffffff in
    let hi = Int64.to_int (Int64.shift_right_logical x 32) in
    let plo = get16 t (2 * (lo land 0xffff)) lor (get16 t (2 * (lo lsr 16)) lsl 16) in
    let phi = get16 t (2 * (hi land 0xffff)) lor (get16 t (2 * (hi lsr 16)) lsl 16) in
    set64 dst (doff + j)
      (Int64.logor (Int64.of_int plo) (Int64.shift_left (Int64.of_int phi) 32));
    let j = j + 8 in
    let x = get64 src (soff + j) in
    let lo = Int64.to_int x land 0xffffffff in
    let hi = Int64.to_int (Int64.shift_right_logical x 32) in
    let plo = get16 t (2 * (lo land 0xffff)) lor (get16 t (2 * (lo lsr 16)) lsl 16) in
    let phi = get16 t (2 * (hi land 0xffff)) lor (get16 t (2 * (hi lsr 16)) lsl 16) in
    set64 dst (doff + j)
      (Int64.logor (Int64.of_int plo) (Int64.shift_left (Int64.of_int phi) 32));
    i := j + 8
  done;
  while !i < len do
    let j = !i in
    if debug_checks then
      assert (soff + j + 2 <= Bytes.length src && doff + j + 2 <= Bytes.length dst);
    set16 dst (doff + j) (get16 t (2 * get16 src (soff + j)));
    i := j + 2
  done

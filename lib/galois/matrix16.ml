(* Dense matrices over GF(2^16); same interface as {!Matrix} (see
   matrix.mli), used by the large-n Reed-Solomon codec. *)
include Matrix_gen.Make (Gf16)

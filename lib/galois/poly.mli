(** Polynomials over GF(2{^8}).

    A polynomial is stored as an array of coefficients in ascending degree
    order: index [i] holds the coefficient of [x{^i}]. The representation
    is kept normalized (the highest-index coefficient is non-zero), with
    the zero polynomial represented by an empty coefficient array and
    degree [-1]. Values are immutable from the outside: constructors copy
    their input and accessors never expose the underlying array. *)

type t

val zero : t
(** The zero polynomial; [degree zero = -1]. *)

val one : t
(** The constant polynomial 1. *)

val constant : Gf.t -> Gf.t
(** Identity on field elements, provided for symmetry in callers. *)

val of_coeffs : Gf.t array -> t
(** [of_coeffs [|a0; a1; ...|]] builds [a0 + a1 x + ...]; trailing zero
    coefficients are trimmed. The array is copied. *)

val of_list : Gf.t list -> t
(** List version of {!of_coeffs}. *)

val to_coeffs : t -> Gf.t array
(** Coefficients in ascending degree order (a fresh array). *)

val monomial : int -> Gf.t -> t
(** [monomial d c] is [c x{^d}].
    @raise Invalid_argument if [d < 0]. *)

val degree : t -> int
(** Degree of the polynomial; [-1] for the zero polynomial. *)

val coeff : t -> int -> Gf.t
(** [coeff p i] is the coefficient of [x{^i}], zero when [i] exceeds the
    degree.
    @raise Invalid_argument if [i < 0]. *)

val is_zero : t -> bool
val equal : t -> t -> bool

val add : t -> t -> t
(** Coefficient-wise sum (= difference in characteristic 2). *)

val sub : t -> t -> t
val scale : Gf.t -> t -> t
(** [scale c p] multiplies every coefficient by [c]. *)

val mul : t -> t -> t
(** Schoolbook product; O(deg p * deg q). *)

val shift : int -> t -> t
(** [shift d p] is [x{^d} * p].
    @raise Invalid_argument if [d < 0]. *)

val div_mod : t -> t -> t * t
(** [div_mod num den] is the unique [(q, r)] with [num = q*den + r] and
    [degree r < degree den].
    @raise Division_by_zero if [den] is the zero polynomial. *)

val rem : t -> t -> t
(** Remainder of {!div_mod}. *)

val eval : t -> Gf.t -> Gf.t
(** Horner evaluation. *)

val derivative : t -> t
(** Formal derivative. In characteristic 2 all even-degree terms vanish. *)

val interpolate : (Gf.t * Gf.t) array -> t
(** Lagrange interpolation: the unique polynomial of degree below the
    number of points passing through all of them. In characteristic 2,
    [x - xj] is [x + xj], so the basis numerators are [of_list [xj; 1]].
    @raise Invalid_argument on an empty array or duplicate abscissae. *)

val truncate : int -> t -> t
(** [truncate d p] drops all terms of degree >= [d] (i.e. reduces modulo
    [x{^d}]).
    @raise Invalid_argument if [d < 0]. *)

val pp : Format.formatter -> t -> unit
(** Human-readable form such as [0x03·x^2 + 0x01]. *)

val to_string : t -> string

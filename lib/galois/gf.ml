type t = int

let order = 256
let field_mask = 0xff
let primitive_poly = 0x11d
let zero = 0
let one = 1
let alpha = 0x02

let of_int i =
  if i < 0 || i > field_mask then
    invalid_arg (Printf.sprintf "Gf.of_int: %d out of range [0, 255]" i)
  else i

(* Reference multiplication by shift-and-add modulo the primitive
   polynomial; also used to build the tables below. *)
let mul_slow a b =
  let rec loop a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = a lsl 1 in
      let a = if a land 0x100 <> 0 then a lxor primitive_poly else a in
      loop a (b lsr 1) acc
  in
  loop a b 0

(* exp_table.(i) = alpha^i for i in [0, 509]; doubled so that
   mul can index [log a + log b] without a modulo. *)
let[@lint.allow
     "R1: filled once at module initialization, read-only afterwards — \
      safe to read from any domain"] (exp_table, log_table) =
  let exp_table = Array.make 510 0 in
  let log_table = Array.make 256 (-1) in
  let x = ref 1 in
  for i = 0 to 254 do
    exp_table.(i) <- !x;
    log_table.(!x) <- i;
    x := mul_slow !x alpha
  done;
  assert (!x = 1);
  for i = 255 to 509 do
    exp_table.(i) <- exp_table.(i - 255)
  done;
  (exp_table, log_table)

let add a b = a lxor b
let sub = add
let is_zero a = a = 0
let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let log a =
  if a = 0 then invalid_arg "Gf.log: log of zero" else log_table.(a)

let mul a b =
  if a = 0 || b = 0 then 0 else exp_table.(log_table.(a) + log_table.(b))

let inv a =
  if a = 0 then raise Division_by_zero
  else exp_table.(255 - log_table.(a))

let div a b =
  if b = 0 then raise Division_by_zero
  else if a = 0 then 0
  else exp_table.(log_table.(a) + 255 - log_table.(b))

let alpha_pow e =
  (* ((e mod 255) + 255) mod 255 keeps the exponent non-negative. *)
  exp_table.(((e mod 255) + 255) mod 255)

let pow a e =
  if a = 0 then
    if e = 0 then 1 else if e > 0 then 0 else raise Division_by_zero
  else alpha_pow (log_table.(a) * e)

let pp ppf a = Format.fprintf ppf "0x%02x" a
let to_string a = Format.asprintf "%a" pp a

(* ------------------------------------------------------------------ *)
(* Buffer-level kernels.

   One 256-entry product table per coefficient turns a field multiply
   into a single byte-indexed load, with no zero branches and no
   log/exp indirection, which is what lets the Reed-Solomon codecs
   stream whole fragments. All 256 tables together are only 64 KiB, so
   they are built eagerly at module initialization: [mul_table] is a
   pure array read and therefore safe to call from any domain. *)

let[@lint.allow
     "R1: built eagerly at module initialization and never written again"]
    all_tables =
  Array.init order (fun c -> Bytes.init order (fun x -> Char.chr (mul c x)))

let mul_table c =
  if c < 0 || c > field_mask then
    invalid_arg (Printf.sprintf "Gf.mul_table: %d out of range [0, 255]" c)
  else all_tables.(c)

let check_buf_args ~fname table ~src ~dst ~off ~len =
  if Bytes.length table <> order then
    invalid_arg (fname ^ ": table must have 256 entries");
  if off < 0 || len < 0
     || (len > 0
        && (off + len > Bytes.length src || off + len > Bytes.length dst))
  then
    invalid_arg
      (Printf.sprintf "%s: range [%d, %d) outside buffers (src %d, dst %d)"
         fname off (off + len) (Bytes.length src) (Bytes.length dst))

(* U1 audit: the [unsafe_get]/[unsafe_set] in the loops below are
   justified by [check_buf_args]: every index is in [off, off+len),
   inside both buffers, and every table index is a byte. The word
   sweeps additionally go through [Wops], whose [debug_checks]
   (soda-debug profile / SODA_DEBUG env) re-asserts each range. *)
[@@@lint.allow
  "U1: entry checks put every offset inside both buffers and every table \
   index is a byte; Wops debug_checks re-asserts each range"]

let mul_buf table ~src ~dst ~off ~len =
  check_buf_args ~fname:"Gf.mul_buf" table ~src ~dst ~off ~len;
  for i = off to off + len - 1 do
    let x = Char.code (Bytes.unsafe_get src i) in
    Bytes.unsafe_set dst i (Bytes.unsafe_get table x)
  done

let muladd_buf table ~src ~dst ~off ~len =
  check_buf_args ~fname:"Gf.muladd_buf" table ~src ~dst ~off ~len;
  for i = off to off + len - 1 do
    let x = Char.code (Bytes.unsafe_get src i) in
    let p = Char.code (Bytes.unsafe_get table x) in
    let d = Char.code (Bytes.unsafe_get dst i) in
    Bytes.unsafe_set dst i (Char.unsafe_chr (p lxor d))
  done

(* ------------------------------------------------------------------ *)
(* Word-sliced sweeps.

   The byte loops above stay as the oracle implementations; the hot
   paths use [Wops] chunk tables — 65536 16-bit entries per coefficient
   mapping a 16-bit slice of the source stream straight to the product
   stream, swept 8 bytes per load. A chunk table costs 128 KiB, so
   unlike [all_tables] they are built lazily per coefficient and cached
   under a mutex (construction is setup cost, never inner-loop). *)

type wtable = { chunks : Wops.chunk_table; byte : Bytes.t }

let[@lint.allow
     "R1: all reads and writes happen under wtables_mutex"] wtables :
    wtable option array =
  Array.make order None

let[@lint.allow "R1: the mutex guarding wtables is itself domain-safe"]
    wtables_mutex = Mutex.create ()

let wtable c =
  if c < 0 || c > field_mask then
    invalid_arg (Printf.sprintf "Gf.wtable: %d out of range [0, 255]" c)
  else begin
    Mutex.lock wtables_mutex;
    let t =
      match wtables.(c) with
      | Some t -> t
      | None ->
        let byte = all_tables.(c) in
        let chunks =
          Wops.make_chunk_table_bytewise (fun x -> Char.code (Bytes.get byte x))
        in
        let t = { chunks; byte } in
        wtables.(c) <- Some t;
        t
    in
    Mutex.unlock wtables_mutex;
    t
  end

(* Word sweeps take separate src/dst offsets so the codecs can run over
   views into shared backing buffers. Chunk tables work in 2-byte
   steps; an odd trailing byte goes through the 256-entry byte table. *)

let muladd_buf_w wt ~src ~soff ~dst ~doff ~len =
  if len < 0 then invalid_arg "Gf.muladd_buf_w: negative length";
  let even = len land lnot 1 in
  Wops.muladd_chunks wt.chunks ~src ~soff ~dst ~doff ~len:even;
  if len land 1 = 1 then begin
    if soff + len > Bytes.length src || doff + len > Bytes.length dst then
      invalid_arg "Gf.muladd_buf_w: range outside buffers";
    let x = Char.code (Bytes.get src (soff + even)) in
    let p = Char.code (Bytes.get wt.byte x) in
    let d = Char.code (Bytes.get dst (doff + even)) in
    Bytes.set dst (doff + even) (Char.chr (p lxor d))
  end

let mul_buf_w wt ~src ~soff ~dst ~doff ~len =
  if len < 0 then invalid_arg "Gf.mul_buf_w: negative length";
  let even = len land lnot 1 in
  Wops.mul_chunks wt.chunks ~src ~soff ~dst ~doff ~len:even;
  if len land 1 = 1 then begin
    if soff + len > Bytes.length src || doff + len > Bytes.length dst then
      invalid_arg "Gf.mul_buf_w: range outside buffers";
    let x = Char.code (Bytes.get src (soff + even)) in
    Bytes.set dst (doff + even) (Bytes.get wt.byte x)
  end

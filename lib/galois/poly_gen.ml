(* Polynomials over an arbitrary field of the {!Field.S} shape; [Poly]
   instantiates this at GF(2^8), [Poly16] at GF(2^16). Documented in
   poly.mli. *)

module Make (F : Field.S) = struct
  type t = F.t array
  (* Invariant: either empty (zero polynomial) or the last element is
     non-zero. All construction goes through [normalize]. *)

  let normalize (a : F.t array) : t =
    let d = ref (Array.length a - 1) in
    while !d >= 0 && F.is_zero a.(!d) do
      decr d
    done;
    Array.sub a 0 (!d + 1)

  (* R1: arrays, but treated as immutable values — every operation
     allocates fresh output and never mutates its inputs. *)
  let[@lint.allow "R1: physically immutable constant — never written"] zero :
      t =
    [||]

  let[@lint.allow "R1: physically immutable constant — never written"] one :
      t =
    [| F.one |]
  let constant (c : F.t) = c
  let of_coeffs a = normalize a
  let of_list l = normalize (Array.of_list l)
  let to_coeffs (p : t) = Array.copy p
  let degree (p : t) = Array.length p - 1
  let is_zero (p : t) = Array.length p = 0

  let monomial d c =
    if d < 0 then invalid_arg "Poly.monomial: negative degree";
    if F.is_zero c then zero
    else begin
      let a = Array.make (d + 1) F.zero in
      a.(d) <- c;
      a
    end

  let coeff (p : t) i =
    if i < 0 then invalid_arg "Poly.coeff: negative index";
    if i >= Array.length p then F.zero else p.(i)

  let equal (p : t) (q : t) =
    Array.length p = Array.length q && Array.for_all2 F.equal p q

  let add (p : t) (q : t) : t =
    let n = max (Array.length p) (Array.length q) in
    normalize (Array.init n (fun i -> F.add (coeff p i) (coeff q i)))

  let sub = add

  let scale c (p : t) : t =
    if F.is_zero c then zero else normalize (Array.map (F.mul c) p)

  let mul (p : t) (q : t) : t =
    if is_zero p || is_zero q then zero
    else begin
      let r = Array.make (Array.length p + Array.length q - 1) F.zero in
      Array.iteri
        (fun i pi ->
          if not (F.is_zero pi) then
            Array.iteri
              (fun j qj -> r.(i + j) <- F.add r.(i + j) (F.mul pi qj))
              q)
        p;
      normalize r
    end

  let shift d (p : t) : t =
    if d < 0 then invalid_arg "Poly.shift: negative degree";
    if is_zero p then zero
    else begin
      let r = Array.make (Array.length p + d) F.zero in
      Array.blit p 0 r d (Array.length p);
      r
    end

  let div_mod (num : t) (den : t) : t * t =
    if is_zero den then raise Division_by_zero;
    let dd = degree den in
    let lead_inv = F.inv den.(dd) in
    let r = Array.copy num in
    let qlen = degree num - dd + 1 in
    if qlen <= 0 then (zero, normalize r)
    else begin
      let q = Array.make qlen F.zero in
      for i = qlen - 1 downto 0 do
        let c = F.mul r.(i + dd) lead_inv in
        if not (F.is_zero c) then begin
          q.(i) <- c;
          for j = 0 to dd do
            r.(i + j) <- F.sub r.(i + j) (F.mul c den.(j))
          done
        end
      done;
      (normalize q, normalize r)
    end

  let rem num den = snd (div_mod num den)

  let eval (p : t) (x : F.t) : F.t =
    let acc = ref F.zero in
    for i = Array.length p - 1 downto 0 do
      acc := F.add (F.mul !acc x) p.(i)
    done;
    !acc

  let derivative (p : t) : t =
    if Array.length p <= 1 then zero
    else
      normalize
        (Array.init
           (Array.length p - 1)
           (fun i -> if i land 1 = 0 then p.(i + 1) else F.zero))

  let truncate d (p : t) : t =
    if d < 0 then invalid_arg "Poly.truncate: negative degree";
    if Array.length p <= d then p else normalize (Array.sub p 0 d)

  (* Lagrange interpolation: the unique polynomial of degree < n through
     n points with distinct abscissae. *)
  let interpolate points =
    let n = Array.length points in
    if n = 0 then invalid_arg "Poly.interpolate: no points";
    Array.iteri
      (fun i (xi, _) ->
        Array.iteri
          (fun j (xj, _) ->
            if i < j && F.equal xi xj then
              invalid_arg "Poly.interpolate: duplicate abscissa")
          points)
      points;
    let acc = ref zero in
    Array.iteri
      (fun i (xi, yi) ->
        (* basis_i(x) = prod_{j<>i} (x - xj) / (xi - xj) *)
        let num = ref one in
        let den = ref F.one in
        Array.iteri
          (fun j (xj, _) ->
            if j <> i then begin
              num := mul !num (of_list [ xj; F.one ]);
              den := F.mul !den (F.sub xi xj)
            end)
          points;
        acc := add !acc (scale (F.div yi !den) !num))
      points;
    !acc

  let pp ppf (p : t) =
    if is_zero p then Format.pp_print_string ppf "0"
    else begin
      let first = ref true in
      for i = Array.length p - 1 downto 0 do
        if not (F.is_zero p.(i)) then begin
          if not !first then Format.pp_print_string ppf " + ";
          first := false;
          match i with
          | 0 -> F.pp ppf p.(i)
          | 1 -> Format.fprintf ppf "%a·x" F.pp p.(i)
          | _ -> Format.fprintf ppf "%a·x^%d" F.pp p.(i) i
        end
      done
    end

  let to_string p = Format.asprintf "%a" pp p

end

(** Arithmetic in the finite field GF(2{^8}).

    The field is realized as GF(2)[x]/(x{^8} + x{^4} + x{^3} + x{^2} + 1),
    i.e. the primitive polynomial [0x11d] used by most Reed-Solomon
    deployments (QR codes, many storage systems). Elements are represented
    as [int] values in the range [0, 255]. The generator [alpha = 0x02] is
    primitive, so every non-zero element is a power of [alpha]; we exploit
    this with log/antilog tables for O(1) multiplication, division and
    inversion.

    All operations are total on valid elements; functions raise
    [Invalid_argument] when given an [int] outside [0, 255] or on division
    by zero. *)

type t = int
(** A field element, in the range [0, 255]. *)

val order : int
(** Number of elements in the field: 256. *)

val zero : t
(** Additive identity. *)

val one : t
(** Multiplicative identity. *)

val alpha : t
(** A fixed primitive element (0x02); generates the multiplicative group. *)

val of_int : int -> t
(** [of_int i] checks that [i] is in [0, 255] and returns it.
    @raise Invalid_argument otherwise. *)

val add : t -> t -> t
(** Field addition (XOR). Addition and subtraction coincide in GF(2{^8}). *)

val sub : t -> t -> t
(** Field subtraction; identical to {!add}. *)

val mul : t -> t -> t
(** Field multiplication via log/antilog tables. *)

val div : t -> t -> t
(** [div a b] is [a * b{^-1}].
    @raise Division_by_zero if [b = 0]. *)

val inv : t -> t
(** Multiplicative inverse.
    @raise Division_by_zero on [inv 0]. *)

val pow : t -> int -> t
(** [pow a e] raises [a] to the (possibly negative or zero) power [e],
    using the discrete-log tables. [pow 0 0] is defined as [1] and
    [pow 0 e] for [e > 0] is [0].
    @raise Division_by_zero if [a = 0] and [e < 0]. *)

val alpha_pow : int -> t
(** [alpha_pow e] is [pow alpha e] for any integer [e] (negative allowed);
    faster than the generic {!pow}. *)

val log : t -> int
(** Discrete logarithm base [alpha], in [0, 254].
    @raise Invalid_argument on [log 0]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val pp : Format.formatter -> t -> unit
(** Prints as [0xNN]. *)

val to_string : t -> string

val mul_slow : t -> t -> t
(** Reference carry-less ("Russian peasant") multiplication, used by the
    test suite to validate the table-driven {!mul}. *)

(** {1 Buffer-level kernels}

    The Reed-Solomon hot loops multiply long byte buffers by a handful of
    fixed coefficients. A per-coefficient 256-entry product table turns
    each multiply into one byte-indexed load — no log/exp indirection and
    no zero branches — and the buffer sweeps below amortize the bounds
    checks over whole fragments. *)

val mul_table : t -> Bytes.t
(** [mul_table c] is the 256-byte table [t] with [t.[x] = c * x]. All
    tables are precomputed at module initialization, so this is an O(1)
    array read, safe from any domain, and callers may share the result
    freely (but must not mutate it).
    @raise Invalid_argument outside [0, 255]. *)

val mul_buf : Bytes.t -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [mul_buf table ~src ~dst ~off ~len] sets
    [dst.[i] <- table.[src.[i]]] for [i] in [off, off+len): a whole-buffer
    [dst := c * src] when [table = mul_table c]. [src] and [dst] may be
    the same buffer.
    @raise Invalid_argument if the range exceeds either buffer or the
    table is not 256 bytes. *)

val muladd_buf :
  Bytes.t -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [muladd_buf table ~src ~dst ~off ~len] performs
    [dst.[i] <- dst.[i] xor table.[src.[i]]] over the range: the fused
    [dst += c * src] sweep at the heart of row-major encode/decode.
    @raise Invalid_argument as {!mul_buf}. *)

(** {1 Word-sliced sweeps}

    The byte-table sweeps above process one byte per table load; the
    word-sliced sweeps below move 8 bytes per load through a 128 KiB
    {!Wops} chunk table (see DESIGN.md, "Word-sliced kernels") and are
    ~3x faster. They take separate source and destination offsets so
    the codecs can sweep views into shared backing buffers. The byte
    sweeps remain the differential-testing oracles. *)

type wtable
(** Chunk table (plus byte-table tail) for one fixed coefficient. *)

val wtable : t -> wtable
(** [wtable c] returns the word-sweep tables for [c], building and
    caching them on first use (mutex-guarded: safe to race from several
    domains, but fetch tables before sharding work to keep construction
    out of the measured region).
    @raise Invalid_argument outside [0, 255]. *)

val mul_buf_w :
  wtable -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [mul_buf_w t ~src ~soff ~dst ~doff ~len]:
    [dst.[doff+i] <- c * src.[soff+i]] for [i] in [0, len). [src] and
    [dst] may alias only with [soff = doff].
    @raise Invalid_argument if either range exceeds its buffer. *)

val muladd_buf_w :
  wtable -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [muladd_buf_w t ~src ~soff ~dst ~doff ~len]:
    [dst.[doff+i] <- dst.[doff+i] xor c * src.[soff+i]] — the fused
    [dst += c * src] word sweep.
    @raise Invalid_argument as {!mul_buf_w}. *)

(** Word-sliced buffer sweeps shared by the {!Gf} and {!Gf16} kernels.

    A {e chunk table} represents multiplication by one fixed coefficient
    as a map from 16-bit chunks of the source byte stream to 16-bit
    chunks of the product stream (65536 entries, 128 KiB). Because the
    map is per-chunk, the inner loops can process 8 source bytes per
    64-bit load — four table lookups, one xor, one store — instead of
    one table lookup per byte, which is where the >2 GB/s muladd
    throughput comes from (see DESIGN.md, "Word-sliced kernels").

    Chunk tables are built through the same native-endian 16-bit
    primitives the sweeps read with, so the scheme is self-consistent
    regardless of target byte order. {!Gf.wtable} and {!Gf16.wtable}
    build and cache them per coefficient; this module only defines the
    representation and the field-agnostic sweeps.

    All sweeps validate the full byte ranges at entry. Setting
    [SODA_DEBUG=1] in the environment additionally re-checks every
    interior block access (for soak runs; see DESIGN.md). [src] and
    [dst] may alias only as the {e same} buffer with [soff = doff];
    partially overlapping ranges are unsupported. *)

type chunk_table = Bytes.t
(** 65536 16-bit entries: chunk of source bytes -> chunk of product
    bytes, in native byte order. *)

val chunk_table_bytes : int
(** Byte size of a chunk table: 131072. *)

val little_endian : bool
(** Byte order of the 16-bit primitives on this target. *)

val make_chunk_table_bytewise : (int -> int) -> chunk_table
(** [make_chunk_table_bytewise f] builds the chunk table for a product
    map acting on each byte independently ([f] on [0, 255]) — the
    GF(2{^8}) case. *)

val make_chunk_table_symbolwise : (int -> int) -> chunk_table
(** [make_chunk_table_symbolwise f] builds the chunk table for a product
    map acting on 16-bit big-endian symbols ([f] on [0, 65535]) — the
    GF(2{^16}) case. *)

val xor_into : src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [xor_into ~src ~soff ~dst ~doff ~len]:
    [dst.[doff+i] <- dst.[doff+i] xor src.[soff+i]] for [i] in
    [0, len), 8 bytes at a time. Any [len >= 0].
    @raise Invalid_argument if either range exceeds its buffer. *)

val muladd_chunks :
  chunk_table -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [muladd_chunks t ~src ~soff ~dst ~doff ~len]: [dst += c * src] over
    [len] bytes (must be even — chunk granularity; the GF(2{^8}) caller
    handles its possible odd tail byte, GF(2{^16}) data is always
    even).
    @raise Invalid_argument on a bad range, odd [len], or a table of the
    wrong size. *)

val mul_chunks :
  chunk_table -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [mul_chunks t ~src ~soff ~dst ~doff ~len]: [dst <- c * src] over
    [len] bytes (even, as {!muladd_chunks}). *)

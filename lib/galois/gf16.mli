(** Arithmetic in the finite field GF(2{^16}).

    Same design as {!Gf} one size up: the field is
    GF(2)[x]/(x{^16} + x{^12} + x{^3} + x + 1) (the primitive polynomial
    [0x1100B]), elements are [int]s in [0, 65535], and multiplication
    uses log/antilog tables over the primitive element [alpha = 0x02]
    (128 KiB of tables, built once at load).

    GF(2{^16}) symbols let Reed-Solomon codes reach lengths up to 65535,
    removing GF(2{^8})'s n <= 255 cap — needed for systems with several
    hundred servers, which the paper's introduction motivates. Satisfies
    {!Field.S}, so the generic matrix code works over it unchanged. *)

type t = int
(** A field element, in the range [0, 65535]. *)

val order : int
(** 65536. *)

val zero : t
val one : t

val alpha : t
(** A fixed primitive element (0x02). *)

val of_int : int -> t
(** @raise Invalid_argument outside [0, 65535]. *)

val add : t -> t -> t
(** XOR; addition and subtraction coincide. *)

val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is 0. *)

val inv : t -> t
(** @raise Division_by_zero on [inv 0]. *)

val pow : t -> int -> t
(** General exponentiation; [pow 0 0 = 1].
    @raise Division_by_zero if the base is 0 and the exponent negative. *)

val alpha_pow : int -> t
(** [alpha{^e}] for any integer [e]. *)

val log : t -> int
(** Discrete logarithm base [alpha], in [0, 65534].
    @raise Invalid_argument on [log 0]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val mul_slow : t -> t -> t
(** Reference shift-and-add multiplication, for validating {!mul}. *)

(** Arithmetic in the finite field GF(2{^16}).

    Same design as {!Gf} one size up: the field is
    GF(2)[x]/(x{^16} + x{^12} + x{^3} + x + 1) (the primitive polynomial
    [0x1100B]), elements are [int]s in [0, 65535], and multiplication
    uses log/antilog tables over the primitive element [alpha = 0x02]
    (128 KiB of tables, built once at load).

    GF(2{^16}) symbols let Reed-Solomon codes reach lengths up to 65535,
    removing GF(2{^8})'s n <= 255 cap — needed for systems with several
    hundred servers, which the paper's introduction motivates. Satisfies
    {!Field.S}, so the generic matrix code works over it unchanged. *)

type t = int
(** A field element, in the range [0, 65535]. *)

val order : int
(** 65536. *)

val zero : t
val one : t

val alpha : t
(** A fixed primitive element (0x02). *)

val of_int : int -> t
(** @raise Invalid_argument outside [0, 65535]. *)

val add : t -> t -> t
(** XOR; addition and subtraction coincide. *)

val sub : t -> t -> t
val mul : t -> t -> t

val div : t -> t -> t
(** @raise Division_by_zero if the divisor is 0. *)

val inv : t -> t
(** @raise Division_by_zero on [inv 0]. *)

val pow : t -> int -> t
(** General exponentiation; [pow 0 0 = 1].
    @raise Division_by_zero if the base is 0 and the exponent negative. *)

val alpha_pow : int -> t
(** [alpha{^e}] for any integer [e]. *)

val log : t -> int
(** Discrete logarithm base [alpha], in [0, 65534].
    @raise Invalid_argument on [log 0]. *)

val is_zero : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val mul_slow : t -> t -> t
(** Reference shift-and-add multiplication, for validating {!mul}. *)

(** {1 Buffer-level kernels}

    GF(2{^16}) analogue of {!Gf.mul_table}/{!Gf.muladd_buf}. A full
    per-coefficient product table would be 128 KiB, so each coefficient
    gets the classical {e split} tables — 256 entries for the low source
    byte and 256 for the high — combined by XOR-linearity:
    [c * x = hi.(x lsr 8) lxor lo.(x land 0xff)]. *)

type mul_tables
(** Split product tables for one fixed coefficient. *)

val mul_tables : t -> mul_tables
(** [mul_tables c] returns (building and caching on first use) the split
    tables for [c]. First-time construction is not safe to race from
    several domains: fetch the tables you need before sharding work.
    @raise Invalid_argument outside [0, 65535]. *)

val mul_buf : mul_tables -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [mul_buf t ~src ~dst ~off ~len] sets symbols [off, off+len) of [dst]
    to [c] times the corresponding symbols of [src]; symbols are 16-bit
    big-endian, and [off]/[len] count symbols, not bytes.
    @raise Invalid_argument if the symbol range exceeds either buffer. *)

val muladd_buf :
  mul_tables -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [muladd_buf t ~src ~dst ~off ~len]: [dst += c * src] over the symbol
    range, the fused sweep used by the row-major codec paths.
    @raise Invalid_argument as {!mul_buf}. *)

(** {1 Word-sliced sweeps}

    A full 65536-entry {!Wops} chunk table per coefficient maps one
    big-endian symbol straight to its product, letting the shared
    64-bit loop process two symbols per load (~3x the split-table
    sweeps, which remain the oracles). Unlike the symbol-counted
    oracles, offsets and lengths below are in {e bytes} ([len] must be
    even), matching the byte positions the codec view paths track. *)

type wtable = Wops.chunk_table
(** Chunk table for one fixed coefficient. *)

val wtable : t -> wtable
(** [wtable c] builds (cached, mutex-guarded) the chunk table for [c].
    Construction costs one field multiply per element — fetch tables
    before the measured region and before sharding across domains.
    @raise Invalid_argument outside [0, 65535]. *)

val mul_buf_w :
  wtable -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [dst.[doff..] <- c * src.[soff..]] over [len] bytes.
    @raise Invalid_argument on a bad range or odd [len]. *)

val muladd_buf_w :
  wtable -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** [dst.[doff..] += c * src.[soff..]] over [len] bytes.
    @raise Invalid_argument as {!mul_buf_w}. *)

val mul_buf_v :
  mul_tables -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** Split-table [dst <- c * src] over views ([len] bytes, even), for
    sweeps too short to amortize a chunk-table build — decode
    submatrices carry arbitrary coefficients, so small decodes stay on
    split tables (512 multiplies to build vs 65536 per chunk table).
    @raise Invalid_argument on a bad range or odd [len]. *)

val muladd_buf_v :
  mul_tables -> src:Bytes.t -> soff:int -> dst:Bytes.t -> doff:int -> len:int -> unit
(** Split-table [dst += c * src] over views; as {!mul_buf_v}. *)

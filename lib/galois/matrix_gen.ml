(* Dense matrices over an arbitrary field of the {!Field.S} shape.
   [Matrix] instantiates this functor at GF(2^8); GF(2^16) callers (the
   large-n Reed-Solomon codec) instantiate it at {!Gf16}. The
   implementation is documented in matrix.mli. *)

module Make (F : Field.S) = struct
  type t = { rows : int; cols : int; data : F.t array }

  exception Singular

  let create ~rows ~cols f =
    if rows <= 0 || cols <= 0 then
      invalid_arg "Matrix.create: non-positive dimension";
    let data = Array.make (rows * cols) F.zero in
    for i = 0 to rows - 1 do
      for j = 0 to cols - 1 do
        data.((i * cols) + j) <- f i j
      done
    done;
    { rows; cols; data }

  let of_rows r =
    let rows = Array.length r in
    if rows = 0 then invalid_arg "Matrix.of_rows: empty";
    let cols = Array.length r.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> cols then invalid_arg "Matrix.of_rows: ragged")
      r;
    create ~rows ~cols (fun i j -> r.(i).(j))

  let identity n =
    create ~rows:n ~cols:n (fun i j -> if i = j then F.one else F.zero)

  let rows m = m.rows
  let cols m = m.cols

  let get m i j =
    if i < 0 || i >= m.rows || j < 0 || j >= m.cols then
      invalid_arg "Matrix.get: out of bounds";
    m.data.((i * m.cols) + j)

  let row m i =
    if i < 0 || i >= m.rows then invalid_arg "Matrix.row: out of bounds";
    Array.sub m.data (i * m.cols) m.cols

  let equal a b =
    a.rows = b.rows && a.cols = b.cols
    && Array.for_all2 F.equal a.data b.data

  let mul a b =
    if a.cols <> b.rows then invalid_arg "Matrix.mul: dimension mismatch";
    create ~rows:a.rows ~cols:b.cols (fun i j ->
        let acc = ref F.zero in
        for l = 0 to a.cols - 1 do
          acc :=
            F.add !acc
              (F.mul a.data.((i * a.cols) + l) b.data.((l * b.cols) + j))
        done;
        !acc)

  let mul_vec m v =
    if Array.length v <> m.cols then
      invalid_arg "Matrix.mul_vec: dimension mismatch";
    Array.init m.rows (fun i ->
        let acc = ref F.zero in
        for j = 0 to m.cols - 1 do
          acc := F.add !acc (F.mul m.data.((i * m.cols) + j) v.(j))
        done;
        !acc)

  let transpose m = create ~rows:m.cols ~cols:m.rows (fun i j -> get m j i)

  let select_rows m idx =
    create ~rows:(Array.length idx) ~cols:m.cols (fun i j -> get m idx.(i) j)

  (* Gauss-Jordan elimination over the scratch array [a] of [rows] rows
     and [width] columns, reducing the left [rows] columns to the
     identity. Raises [Singular] when a pivot cannot be found. *)
  let eliminate a rows width =
    for col = 0 to rows - 1 do
      let pivot = ref (-1) in
      let r = ref col in
      while !pivot < 0 && !r < rows do
        if not (F.is_zero a.((!r * width) + col)) then pivot := !r;
        incr r
      done;
      if !pivot < 0 then raise Singular;
      if !pivot <> col then
        for j = 0 to width - 1 do
          let tmp = a.((col * width) + j) in
          a.((col * width) + j) <- a.((!pivot * width) + j);
          a.((!pivot * width) + j) <- tmp
        done;
      let inv = F.inv a.((col * width) + col) in
      for j = 0 to width - 1 do
        a.((col * width) + j) <- F.mul inv a.((col * width) + j)
      done;
      for i = 0 to rows - 1 do
        if i <> col then begin
          let factor = a.((i * width) + col) in
          if not (F.is_zero factor) then
            for j = 0 to width - 1 do
              a.((i * width) + j) <-
                F.sub a.((i * width) + j) (F.mul factor a.((col * width) + j))
            done
        end
      done
    done

  let invert m =
    if m.rows <> m.cols then invalid_arg "Matrix.invert: not square";
    let n = m.rows in
    let width = 2 * n in
    let a = Array.make (n * width) F.zero in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        a.((i * width) + j) <- get m i j
      done;
      a.((i * width) + n + i) <- F.one
    done;
    eliminate a n width;
    create ~rows:n ~cols:n (fun i j -> a.((i * width) + n + j))

  let solve m b =
    if m.rows <> m.cols then invalid_arg "Matrix.solve: not square";
    if Array.length b <> m.rows then invalid_arg "Matrix.solve: bad vector";
    let n = m.rows in
    let width = n + 1 in
    let a = Array.make (n * width) F.zero in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        a.((i * width) + j) <- get m i j
      done;
      a.((i * width) + n) <- b.(i)
    done;
    eliminate a n width;
    Array.init n (fun i -> a.((i * width) + n))

  let vandermonde ~rows ~cols =
    create ~rows ~cols (fun i j -> F.alpha_pow (i * j))

  let rank m =
    let a = Array.copy m.data in
    let rank = ref 0 in
    let pivot_row = ref 0 in
    (try
       for col = 0 to m.cols - 1 do
         if !pivot_row >= m.rows then raise Exit;
         let pivot = ref (-1) in
         for i = !pivot_row to m.rows - 1 do
           if !pivot < 0 && not (F.is_zero a.((i * m.cols) + col)) then
             pivot := i
         done;
         if !pivot >= 0 then begin
           if !pivot <> !pivot_row then
             for j = 0 to m.cols - 1 do
               let tmp = a.((!pivot_row * m.cols) + j) in
               a.((!pivot_row * m.cols) + j) <- a.((!pivot * m.cols) + j);
               a.((!pivot * m.cols) + j) <- tmp
             done;
           let inv = F.inv a.((!pivot_row * m.cols) + col) in
           for j = 0 to m.cols - 1 do
             a.((!pivot_row * m.cols) + j) <-
               F.mul inv a.((!pivot_row * m.cols) + j)
           done;
           for i = !pivot_row + 1 to m.rows - 1 do
             let factor = a.((i * m.cols) + col) in
             if not (F.is_zero factor) then
               for j = 0 to m.cols - 1 do
                 a.((i * m.cols) + j) <-
                   F.sub
                     a.((i * m.cols) + j)
                     (F.mul factor a.((!pivot_row * m.cols) + j))
               done
           done;
           incr rank;
           incr pivot_row
         end
       done
     with Exit -> ());
    !rank

  let pp ppf m =
    Format.fprintf ppf "@[<v>";
    for i = 0 to m.rows - 1 do
      Format.fprintf ppf "@[<h>";
      for j = 0 to m.cols - 1 do
        if j > 0 then Format.pp_print_space ppf ();
        F.pp ppf (get m i j)
      done;
      Format.fprintf ppf "@]";
      if i < m.rows - 1 then Format.pp_print_cut ppf ()
    done;
    Format.fprintf ppf "@]"
end

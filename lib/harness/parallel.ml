(* T2: the worker count only partitions the index space; [map] and
   [iter_ranges] are order-preserving, so results are machine-
   independent even though the parallelism degree is not. *)
let[@lint.allow
     "D2: domain count picks the worker pool size only; outputs are \
      order-preserving and machine-independent"] recommended_domains () =
  let n = Domain.recommended_domain_count () in
  max 1 (min 8 n)

let iter_ranges ?domains ?min_chunk ~n f =
  let domains =
    match domains with Some d -> d | None -> recommended_domains ()
  in
  Erasure.Kernel.parallel_rows ~domains ?min_chunk ~n f

type 'b outcome = Value of 'b | Raised of exn

let map ?domains f inputs =
  let domains =
    match domains with Some d -> max 1 d | None -> recommended_domains ()
  in
  match inputs with
  | [] -> []
  | _ when domains <= 1 -> List.map f inputs
  | _ ->
    let items = Array.of_list inputs in
    let n = Array.length items in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* one-item work stealing: each worker repeatedly claims the next
       unprocessed index *)
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else begin
          let[@lint.allow
               "E1: the catch-all transports the exception to the joining \
                domain, where reraise rethrows it — nothing is swallowed"]
              outcome =
            match f items.(i) with
            | value -> Value value
            | exception e -> Raised e
          in
          results.(i) <- Some outcome
        end
      done
    in
    let spawned =
      List.init (min (domains - 1) (n - 1)) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Some (Value v) -> v
         | Some (Raised e) -> raise e
         | None -> assert false)

module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity

type stats = { count : int; mean : float; max : float; min : float }

let stats_of = function
  | [] -> { count = 0; mean = 0.; max = 0.; min = 0. }
  | values ->
    let count = List.length values in
    let sum = List.fold_left ( +. ) 0. values in
    { count;
      mean = sum /. float_of_int count;
      max = List.fold_left Float.max neg_infinity values;
      min = List.fold_left Float.min infinity values
    }

type summary = {
  algorithm : string;
  ops_total : int;
  ops_complete : int;
  liveness : bool;
  atomic : bool;
  write_cost : stats;
  read_cost : stats;
  storage_max : float;
  storage_final : float;
  write_latency : stats;
  read_latency : stats;
  messages_sent : int;
  messages_data : int;
  messages_meta : int;
  acks_sent : int;
  retransmissions : int
}

let summarize (r : Runner.result) =
  let records = History.records r.Runner.history in
  let completed = List.filter (fun o -> Option.is_some o.History.responded_at) records in
  let of_kind kind =
    List.filter (fun o -> o.History.kind = kind) completed
  in
  let cost_of o = Cost.comm_of_op r.Runner.cost ~op:o.History.op in
  let latency_of o = Option.get o.History.responded_at -. o.History.invoked_at in
  let writes = of_kind History.Write and reads = of_kind History.Read in
  { algorithm = r.Runner.algorithm;
    ops_total = List.length records;
    ops_complete = List.length completed;
    liveness = History.all_complete r.Runner.history;
    atomic =
      (match
         Atomicity.check_tagged ~initial_value:r.Runner.initial_value records
       with
      | Ok () -> true
      | Error _ -> false);
    write_cost = stats_of (List.map cost_of writes);
    read_cost = stats_of (List.map cost_of reads);
    storage_max = Cost.max_total_storage r.Runner.cost;
    storage_final = Cost.current_total_storage r.Runner.cost;
    write_latency = stats_of (List.map latency_of writes);
    read_latency = stats_of (List.map latency_of reads);
    messages_sent = r.Runner.messages_sent;
    messages_data = r.Runner.messages_data;
    messages_meta = r.Runner.messages_meta;
    acks_sent = r.Runner.acks_sent;
    retransmissions = r.Runner.retransmissions
  }

let delta_w (r : Runner.result) ~rid =
  match r.Runner.probe with
  | None -> None
  | Some probe ->
    (match
       Probe.registration_window ~is_crashed:r.Runner.crashed probe ~rid
     with
    | None -> None
    | Some (t1, t2) ->
      let count =
        List.fold_left
          (fun acc o ->
            if
              o.History.kind = History.Write
              && o.History.invoked_at >= t1
              && o.History.invoked_at <= t2
            then acc + 1
            else acc)
          0
          (History.records r.Runner.history)
      in
      Some count)

let concurrent_writes (r : Runner.result) ~rid ~slack =
  match r.Runner.probe with
  | None -> None
  | Some probe ->
    (match
       Probe.registration_window ~is_crashed:r.Runner.crashed probe ~rid
     with
    | None -> None
    | Some (t1, t2) ->
      let count =
        List.fold_left
          (fun acc o ->
            if
              o.History.kind = History.Write
              && o.History.invoked_at <= t2
              && (match o.History.responded_at with
                 | None -> true
                 | Some res -> res +. slack >= t1)
            then acc + 1
            else acc)
          0
          (History.records r.Runner.history)
      in
      Some count)

let reads_with_delta_w (r : Runner.result) =
  match r.Runner.probe with
  | None -> []
  | Some _ ->
    History.records r.Runner.history
    |> List.filter_map (fun o ->
           if o.History.kind = History.Read && Option.is_some o.History.responded_at
           then
             match delta_w r ~rid:o.History.op with
             | Some dw ->
               Some (o.History.op, dw, Cost.comm_of_op r.Runner.cost ~op:o.History.op)
             | None -> None
           else None)

let pp_stats ppf s =
  if s.count = 0 then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "mean %.3f max %.3f" s.mean s.max

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d/%d ops complete, liveness=%b atomic=%b@,\
     write cost: %a@,read cost: %a@,storage max: %.3f@,\
     write latency: %a@,read latency: %a@,\
     messages: %d (data %d, meta %d, acks %d, rexmit %d)@]"
    s.algorithm s.ops_complete s.ops_total s.liveness s.atomic pp_stats
    s.write_cost pp_stats s.read_cost s.storage_max pp_stats s.write_latency
    pp_stats s.read_latency s.messages_sent s.messages_data s.messages_meta
    s.acks_sent s.retransmissions

module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe
module Atomicity = Protocol.Atomicity

type stats = { count : int; mean : float; max : float; min : float }

let stats_of = function
  | [] -> { count = 0; mean = 0.; max = 0.; min = 0. }
  | values ->
    let count = List.length values in
    let sum = List.fold_left ( +. ) 0. values in
    { count;
      mean = sum /. float_of_int count;
      max = List.fold_left Float.max neg_infinity values;
      min = List.fold_left Float.min infinity values
    }

type summary = {
  algorithm : string;
  ops_total : int;
  ops_complete : int;
  liveness : bool;
  atomic : bool;
  write_cost : stats;
  read_cost : stats;
  storage_max : float;
  storage_final : float;
  write_latency : stats;
  read_latency : stats;
  messages_sent : int;
  messages_data : int;
  messages_meta : int;
  acks_sent : int;
  retransmissions : int;
  read_restarts : int
}

let summarize (r : Runner.result) =
  let records = History.records r.Runner.history in
  let completed = List.filter (fun o -> Option.is_some o.History.responded_at) records in
  let of_kind kind =
    List.filter (fun o -> o.History.kind = kind) completed
  in
  let cost_of o = Cost.comm_of_op r.Runner.cost ~op:o.History.op in
  let latency_of o = Option.get o.History.responded_at -. o.History.invoked_at in
  let writes = of_kind History.Write and reads = of_kind History.Read in
  { algorithm = r.Runner.algorithm;
    ops_total = List.length records;
    ops_complete = List.length completed;
    liveness = History.all_complete r.Runner.history;
    atomic =
      (match
         Atomicity.check_tagged ~initial_value:r.Runner.initial_value records
       with
      | Ok () -> true
      | Error _ -> false);
    write_cost = stats_of (List.map cost_of writes);
    read_cost = stats_of (List.map cost_of reads);
    storage_max = Cost.max_total_storage r.Runner.cost;
    storage_final = Cost.current_total_storage r.Runner.cost;
    write_latency = stats_of (List.map latency_of writes);
    read_latency = stats_of (List.map latency_of reads);
    messages_sent = r.Runner.messages_sent;
    messages_data = r.Runner.messages_data;
    messages_meta = r.Runner.messages_meta;
    acks_sent = r.Runner.acks_sent;
    retransmissions = r.Runner.retransmissions;
    read_restarts = r.Runner.read_restarts
  }

(* {2 Self-healing episodes}

   A fault's lifecycle is reconstructed from the probe stream, which is
   chronological by construction (probes are appended as the simulation
   executes). Crash episodes run Crash_injected -> first Suspected ->
   Repaired; rot episodes run Rot_injected -> first Rot_detected ->
   first restoration, which is either a targeted scrub repair
   (Scrub_repaired) or an overwriting write (Stored recomputes the
   checksum, healing the rot as a side effect). *)

type heal_episode = {
  server : int;
  fault : [ `Crash | `Rot ];
  injected_at : float;
  detected_at : float option;
  healed_at : float option
}

let heal_episodes probe =
  let open_crash = Hashtbl.create 8 and open_rot = Hashtbl.create 8 in
  let closed = ref [] in
  let close tbl server healed_at =
    match Hashtbl.find_opt tbl server with
    | None -> ()
    | Some ep ->
      Hashtbl.remove tbl server;
      closed := { ep with healed_at = Some healed_at } :: !closed
  in
  let detect tbl server time =
    match Hashtbl.find_opt tbl server with
    | Some ({ detected_at = None; _ } as ep) ->
      Hashtbl.replace tbl server { ep with detected_at = Some time }
    | Some _ | None -> ()
  in
  List.iter
    (fun e ->
      match e with
      | Probe.Crash_injected { server; time } ->
        Hashtbl.replace open_crash server
          { server; fault = `Crash; injected_at = time; detected_at = None;
            healed_at = None }
      | Probe.Rot_injected { server; time } ->
        Hashtbl.replace open_rot server
          { server; fault = `Rot; injected_at = time; detected_at = None;
            healed_at = None }
      | Probe.Suspected { target; time; _ } -> detect open_crash target time
      | Probe.Rot_detected { server; time } -> detect open_rot server time
      | Probe.Repaired { server; time; _ } -> close open_crash server time
      | Probe.Scrub_repaired { server; time; _ }
      | Probe.Stored { server; time; _ } ->
        close open_rot server time
      | Probe.Registered _ | Probe.Unregistered _ | Probe.Relayed _
      | Probe.Gc _ | Probe.Repair_started _ | Probe.Auto_repair _ ->
        ())
    (Probe.events probe);
  let[@lint.allow
       "D3: the fold's arbitrary order is erased by the total sort on \
        (injected_at, server, fault) before the list reaches a caller"]
      still_open tbl =
    Hashtbl.fold (fun _ ep acc -> ep :: acc) tbl []
  in
  let fault_rank = function `Crash -> 0 | `Rot -> 1 in
  List.sort
    (fun a b ->
      match Float.compare a.injected_at b.injected_at with
      | 0 -> (
        match Int.compare a.server b.server with
        | 0 -> Int.compare (fault_rank a.fault) (fault_rank b.fault)
        | c -> c)
      | c -> c)
    (!closed @ still_open open_crash @ still_open open_rot)

let heal_mttd episodes =
  List.filter_map
    (fun ep ->
      Option.map (fun d -> d -. ep.injected_at) ep.detected_at)
    episodes

let heal_mttr episodes =
  List.filter_map
    (fun ep -> Option.map (fun h -> h -. ep.injected_at) ep.healed_at)
    episodes

let delta_w (r : Runner.result) ~rid =
  match r.Runner.probe with
  | None -> None
  | Some probe ->
    (match
       Probe.registration_window ~is_crashed:r.Runner.crashed probe ~rid
     with
    | None -> None
    | Some (t1, t2) ->
      let count =
        List.fold_left
          (fun acc o ->
            if
              o.History.kind = History.Write
              && o.History.invoked_at >= t1
              && o.History.invoked_at <= t2
            then acc + 1
            else acc)
          0
          (History.records r.Runner.history)
      in
      Some count)

let concurrent_writes (r : Runner.result) ~rid ~slack =
  match r.Runner.probe with
  | None -> None
  | Some probe ->
    (match
       Probe.registration_window ~is_crashed:r.Runner.crashed probe ~rid
     with
    | None -> None
    | Some (t1, t2) ->
      let count =
        List.fold_left
          (fun acc o ->
            if
              o.History.kind = History.Write
              && o.History.invoked_at <= t2
              && (match o.History.responded_at with
                 | None -> true
                 | Some res -> res +. slack >= t1)
            then acc + 1
            else acc)
          0
          (History.records r.Runner.history)
      in
      Some count)

let reads_with_delta_w (r : Runner.result) =
  match r.Runner.probe with
  | None -> []
  | Some _ ->
    History.records r.Runner.history
    |> List.filter_map (fun o ->
           if o.History.kind = History.Read && Option.is_some o.History.responded_at
           then
             match delta_w r ~rid:o.History.op with
             | Some dw ->
               Some (o.History.op, dw, Cost.comm_of_op r.Runner.cost ~op:o.History.op)
             | None -> None
           else None)

let pp_stats ppf s =
  if s.count = 0 then Format.pp_print_string ppf "-"
  else Format.fprintf ppf "mean %.3f max %.3f" s.mean s.max

let pp_summary ppf s =
  Format.fprintf ppf
    "@[<v>%s: %d/%d ops complete, liveness=%b atomic=%b@,\
     write cost: %a@,read cost: %a@,storage max: %.3f@,\
     write latency: %a@,read latency: %a@,\
     messages: %d (data %d, meta %d, acks %d, rexmit %d)@]"
    s.algorithm s.ops_complete s.ops_total s.liveness s.atomic pp_stats
    s.write_cost pp_stats s.read_cost s.storage_max pp_stats s.write_latency
    pp_stats s.read_latency s.messages_sent s.messages_data s.messages_meta
    s.acks_sent s.retransmissions

(* ------------------------------------------------------------------ *)
(* Sharded-run economics *)

let sharded_msgs_per_op (r : Runner.sharded_result) =
  if r.Runner.s_ops = 0 then 0.
  else float_of_int r.Runner.s_messages_sent /. float_of_int r.Runner.s_ops

let sharded_units_per_msg (r : Runner.sharded_result) =
  if r.Runner.s_messages_sent = 0 then 0.
  else
    float_of_int r.Runner.s_payload_units
    /. float_of_int r.Runner.s_messages_sent

module Engine = Simnet.Engine
module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe

type algorithm = Soda | Abd | Cas of { gc_depth : int option }

let algorithm_name = function
  | Soda -> "soda"
  | Abd -> "abd"
  | Cas { gc_depth = None } -> "cas"
  | Cas { gc_depth = Some d } -> Printf.sprintf "casgc(%d)" d

type result = {
  algorithm : string;
  workload : Workload.t;
  history : History.t;
  cost : Cost.t;
  probe : Probe.t option;
  initial_value : bytes;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
  messages_lost : int;
  messages_data : int;
  messages_meta : int;
  acks_sent : int;
  retransmissions : int;
  events_executed : int;
  final_time : float;
  crashed : int -> bool;
  read_restarts : int
}

let initial_value_of (w : Workload.t) =
  Workload.value ~len:w.Workload.value_len ~seed:w.Workload.seed ~index:999_983

let run_soda ~max_events ~transport ?plane (w : Workload.t) =
  let engine =
    Engine.create ~seed:w.Workload.seed ~transport ~delay:w.Workload.delay
      ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
      ()
  in
  let initial_value = initial_value_of w in
  let d =
    Soda.Deployment.deploy ~engine ~params:w.Workload.params ~initial_value
      ~value_len:w.Workload.value_len ~error_prone:w.Workload.error_prone
      ?plane ~num_writers:w.Workload.num_writers
      ~num_readers:w.Workload.num_readers ()
  in
  List.iter
    (fun (coordinate, at) -> Soda.Deployment.crash_server d ~coordinate ~at)
    w.Workload.server_crashes;
  List.iter
    (function
      | Workload.Write { writer; at; value } ->
        Soda.Deployment.write d ~writer ~at value
      | Workload.Read { reader; at } -> Soda.Deployment.read d ~reader ~at ())
    w.Workload.ops;
  Engine.run ~max_events engine;
  let crashed c =
    Engine.is_crashed engine (Soda.Deployment.server_pid d ~coordinate:c)
  in
  { algorithm =
      (if Protocol.Params.e w.Workload.params > 0 then "soda-err" else "soda");
    workload = w;
    history = Soda.Deployment.history d;
    cost = Soda.Deployment.cost d;
    probe = Some (Soda.Deployment.probe d);
    initial_value;
    messages_sent = Engine.messages_sent engine;
    messages_delivered = Engine.messages_delivered engine;
    messages_dropped = Engine.messages_dropped engine;
    messages_lost = Engine.messages_lost engine;
    messages_data = Engine.messages_data engine;
    messages_meta = Engine.messages_meta engine;
    acks_sent = Engine.acks_sent engine;
    retransmissions = Engine.retransmissions engine;
    events_executed = Engine.events_executed engine;
    final_time = Engine.now engine;
    crashed;
    read_restarts = 0
  }

let run_abd ~max_events ~transport (w : Workload.t) =
  let engine =
    Engine.create ~seed:w.Workload.seed ~transport ~delay:w.Workload.delay
      ~classify:(fun m -> Baselines.Abd.Messages.data_bytes m > 0)
      ()
  in
  let initial_value = initial_value_of w in
  let d =
    Baselines.Abd.deploy ~engine ~params:w.Workload.params ~initial_value
      ~value_len:w.Workload.value_len ~num_writers:w.Workload.num_writers
      ~num_readers:w.Workload.num_readers ()
  in
  List.iter
    (fun (coordinate, at) -> Baselines.Abd.crash_server d ~coordinate ~at)
    w.Workload.server_crashes;
  List.iter
    (function
      | Workload.Write { writer; at; value } ->
        Baselines.Abd.write d ~writer ~at value
      | Workload.Read { reader; at } -> Baselines.Abd.read d ~reader ~at ())
    w.Workload.ops;
  Engine.run ~max_events engine;
  { algorithm = "abd";
    workload = w;
    history = Baselines.Abd.history d;
    cost = Baselines.Abd.cost d;
    probe = None;
    initial_value;
    messages_sent = Engine.messages_sent engine;
    messages_delivered = Engine.messages_delivered engine;
    messages_dropped = Engine.messages_dropped engine;
    messages_lost = Engine.messages_lost engine;
    messages_data = Engine.messages_data engine;
    messages_meta = Engine.messages_meta engine;
    acks_sent = Engine.acks_sent engine;
    retransmissions = Engine.retransmissions engine;
    events_executed = Engine.events_executed engine;
    final_time = Engine.now engine;
    crashed = (fun c -> Engine.is_crashed engine c);
    read_restarts = 0
  }

let run_cas ~max_events ~transport ~gc_depth (w : Workload.t) =
  let engine =
    Engine.create ~seed:w.Workload.seed ~transport ~delay:w.Workload.delay
      ~classify:(fun m -> Baselines.Cas.Messages.data_bytes m > 0)
      ()
  in
  let initial_value = initial_value_of w in
  let d =
    Baselines.Cas.deploy ~engine ~params:w.Workload.params ?gc_depth
      ~initial_value ~value_len:w.Workload.value_len
      ~num_writers:w.Workload.num_writers ~num_readers:w.Workload.num_readers
      ()
  in
  List.iter
    (fun (coordinate, at) -> Baselines.Cas.crash_server d ~coordinate ~at)
    w.Workload.server_crashes;
  List.iter
    (function
      | Workload.Write { writer; at; value } ->
        Baselines.Cas.write d ~writer ~at value
      | Workload.Read { reader; at } -> Baselines.Cas.read d ~reader ~at ())
    w.Workload.ops;
  Engine.run ~max_events engine;
  { algorithm = algorithm_name (Cas { gc_depth });
    workload = w;
    history = Baselines.Cas.history d;
    cost = Baselines.Cas.cost d;
    probe = Some (Baselines.Cas.probe d);
    initial_value;
    messages_sent = Engine.messages_sent engine;
    messages_delivered = Engine.messages_delivered engine;
    messages_dropped = Engine.messages_dropped engine;
    messages_lost = Engine.messages_lost engine;
    messages_data = Engine.messages_data engine;
    messages_meta = Engine.messages_meta engine;
    acks_sent = Engine.acks_sent engine;
    retransmissions = Engine.retransmissions engine;
    events_executed = Engine.events_executed engine;
    final_time = Engine.now engine;
    crashed = (fun c -> Engine.is_crashed engine c);
    read_restarts = Baselines.Cas.read_restarts d
  }

let run ?(max_events = 20_000_000) ?(transport = `Raw) ?plane algorithm workload =
  match algorithm with
  | Soda -> run_soda ~max_events ~transport ?plane workload
  | Abd -> run_abd ~max_events ~transport workload
  | Cas { gc_depth } -> run_cas ~max_events ~transport ~gc_depth workload

let run_sweep ?max_events ?transport ?plane ?domains algorithm workloads =
  Parallel.map ?domains
    (fun w -> run ?max_events ?transport ?plane algorithm w)
    workloads

(* ------------------------------------------------------------------ *)
(* Sharded runs: one multi-key workload against either a shared-plane
   keyspace or the one-deployment-per-key composition it replaces. Both
   run on one engine with the same classify/weigh instrumentation, so
   their message economics are directly comparable. *)

type sharded_result = {
  s_algorithm : string;
  s_keys : int;
  s_ops : int;
  s_complete : bool;
  s_atomic : bool;
  s_messages_sent : int;
  s_messages_data : int;
  s_messages_meta : int;
  s_payload_units : int;
  s_events : int;
  s_final_time : float
}

let sharded_engine ~transport (s : Workload.sharded) =
  Engine.create ~seed:s.Workload.sh_seed ~transport ~delay:s.Workload.sh_delay
    ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
    ~weigh:Soda.Messages.logical_units ()

let sharded_value (s : Workload.sharded) ~index =
  Workload.value ~len:s.Workload.sh_value_len ~seed:s.Workload.sh_seed ~index

let run_sharded ?(max_events = 200_000_000) ?(transport = `Raw) ?plane
    ~placement (s : Workload.sharded) =
  let engine = sharded_engine ~transport s in
  let ks =
    Soda.Keyspace.create ~engine ~placement ?plane
      ~value_len:s.Workload.sh_value_len
      ~num_writers:s.Workload.sh_num_writers
      ~num_readers:s.Workload.sh_num_readers ()
  in
  List.iter
    (function
      | Workload.KWrite { key; writer; at; index } ->
        Soda.Keyspace.write ks ~key ~writer ~at (sharded_value s ~index)
      | Workload.KRead { key; reader; at } ->
        Soda.Keyspace.read ks ~key ~reader ~at ())
    s.Workload.sh_kops;
  Engine.run ~max_events engine;
  { s_algorithm = "keyspace";
    s_keys = List.length (Soda.Keyspace.keys ks);
    s_ops = Workload.sharded_ops s;
    s_complete = Soda.Keyspace.all_complete ks;
    s_atomic = Result.is_ok (Soda.Keyspace.check_atomicity ks);
    s_messages_sent = Engine.messages_sent engine;
    s_messages_data = Engine.messages_data engine;
    s_messages_meta = Engine.messages_meta engine;
    s_payload_units = Engine.payload_units engine;
    s_events = Engine.events_executed engine;
    s_final_time = Engine.now engine
  }

let run_sharded_independent ?(max_events = 200_000_000) ?(transport = `Raw)
    ?plane ~params (s : Workload.sharded) =
  let engine = sharded_engine ~transport s in
  (* the pre-keyspace composition: every key is a full deployment with
     its own n servers and its own single-lane clients *)
  let deployments =
    Array.init s.Workload.sh_keys (fun _ ->
        Soda.Deployment.deploy ~engine ~params
          ~value_len:s.Workload.sh_value_len ?plane ~num_writers:1
          ~num_readers:1 ())
  in
  List.iter
    (function
      | Workload.KWrite { key; at; index; _ } ->
        Soda.Deployment.write deployments.(key) ~writer:0 ~at
          (sharded_value s ~index)
      | Workload.KRead { key; at; _ } ->
        Soda.Deployment.read deployments.(key) ~reader:0 ~at ())
    s.Workload.sh_kops;
  Engine.run ~max_events engine;
  let all_complete =
    Array.for_all
      (fun d -> History.all_complete (Soda.Deployment.history d))
      deployments
  in
  let atomic =
    Array.for_all
      (fun d ->
        match
          Protocol.Atomicity.check_tagged
            ~initial_value:(Soda.Deployment.initial_value d)
            (History.records (Soda.Deployment.history d))
        with
        | Ok () -> true
        | Error _ -> false)
      deployments
  in
  { s_algorithm = "independent";
    s_keys = s.Workload.sh_keys;
    s_ops = Workload.sharded_ops s;
    s_complete = all_complete;
    s_atomic = atomic;
    s_messages_sent = Engine.messages_sent engine;
    s_messages_data = Engine.messages_data engine;
    s_messages_meta = Engine.messages_meta engine;
    s_payload_units = Engine.payload_units engine;
    s_events = Engine.events_executed engine;
    s_final_time = Engine.now engine
  }

(** Multicore sweeps over independent simulations.

    Experiments routinely run dozens of seeded simulations that share
    nothing — every engine owns all of its state — so they parallelize
    trivially across OCaml 5 domains. [map] chunks the inputs over a
    bounded pool of domains (work-stealing granularity of one item) and
    preserves input order in the output, so a parallel sweep is a drop-in
    replacement for [List.map]. *)

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count], clamped to [1, 8]. *)

val iter_ranges :
  ?domains:int -> ?min_chunk:int -> n:int -> (lo:int -> len:int -> unit) -> unit
(** [iter_ranges ~n f] covers [0, n) with disjoint [f ~lo ~len] calls
    sharded over domains (default {!recommended_domains}) — the
    index-range counterpart of {!map} for flat loops over buffers or
    arrays. A thin front for {!Erasure.Kernel.parallel_rows}, which the
    erasure codecs also use for stripe sharding: small ranges (under
    [min_chunk] rows per domain, default 4096) run inline. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f inputs] applies [f] to every input, using up to [domains]
    (default {!recommended_domains}) additional domains. Results are in
    input order. If any application raises, the first exception (in
    input order) is re-raised after all domains have finished — no work
    is silently lost. With [domains <= 1] this is [List.map]. *)

module Params = Protocol.Params
module Rng = Simnet.Rng

type event =
  | Crash of { coordinate : int; at : float }
  | Repair of { coordinate : int; at : float }
  | Partition of { coordinates : int list; at : float }
  | Heal of { coordinates : int list; at : float }
  | BitRot of { coordinate : int; at : float }

type t = event list

let time_of = function
  | Crash { at; _ } | Repair { at; _ } | Partition { at; _ } | Heal { at; _ }
  | BitRot { at; _ } ->
    at

(* Both generators share the interval machinery: per server, random
   exponential uptime/downtime windows; a sweep accepts an interval only
   while fewer than f accepted intervals overlap its start, enforcing
   the <= f budget at every instant. [kind_of] then decides what fault
   an accepted interval materialises as. *)
let generate_intervals ~params ~seed ~horizon ?mean_uptime ?mean_downtime
    ?(min_downtime = 1.0) ~kind_of () =
  if horizon <= 0. then invalid_arg "Nemesis.generate: non-positive horizon";
  let n = Params.n params and f = Params.f params in
  let mean_uptime =
    match mean_uptime with Some u -> u | None -> horizon /. 3.0
  in
  let mean_downtime =
    match mean_downtime with Some d -> d | None -> horizon /. 10.0
  in
  let rng = Rng.create seed in
  let candidates = ref [] in
  for coordinate = 0 to n - 1 do
    let t = ref (Rng.exponential rng ~mean:mean_uptime) in
    while !t < horizon do
      let down = min_downtime +. Rng.exponential rng ~mean:mean_downtime in
      candidates := (coordinate, !t, !t +. down) :: !candidates;
      t := !t +. down +. 1.0 +. Rng.exponential rng ~mean:mean_uptime
    done
  done;
  let by_start (_, s1, _) (_, s2, _) = Float.compare s1 s2 in
  let sorted = List.sort by_start !candidates in
  (* accept an interval only if fewer than f accepted intervals overlap
     its start *)
  let accepted = ref [] in
  List.iter
    (fun (coordinate, start, stop) ->
      let down_at_start =
        List.length
          (List.filter (fun (_, s, e) -> s <= start && start < e) !accepted)
      in
      if down_at_start < f then accepted := (coordinate, start, stop) :: !accepted)
    sorted;
  let events =
    List.concat_map
      (fun (coordinate, start, stop) -> kind_of ~coordinate ~start ~stop)
      !accepted
  in
  List.sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let generate ~params ~seed ~horizon ?mean_uptime ?mean_downtime () =
  generate_intervals ~params ~seed ~horizon ?mean_uptime ?mean_downtime
    ~kind_of:(fun ~coordinate ~start ~stop ->
      [ Crash { coordinate; at = start }; Repair { coordinate; at = stop } ])
    ()

let generate_mixed ~params ~seed ~horizon ?mean_uptime ?mean_downtime
    ?(partition_fraction = 0.5) () =
  if partition_fraction < 0.0 || partition_fraction > 1.0 then
    invalid_arg "Nemesis.generate_mixed: partition_fraction outside [0, 1]";
  (* a dedicated stream for the crash-vs-partition coin so the interval
     layout matches [generate] at the same seed *)
  let coin = Rng.create (seed lxor 0x5DEECE66D) in
  generate_intervals ~params ~seed ~horizon ?mean_uptime ?mean_downtime
    ~kind_of:(fun ~coordinate ~start ~stop ->
      if Rng.float coin 1.0 < partition_fraction then
        [ Partition { coordinates = [ coordinate ]; at = start };
          Heal { coordinates = [ coordinate ]; at = stop }
        ]
      else [ Crash { coordinate; at = start }; Repair { coordinate; at = stop } ])
    ()

(* Crashes with no matching Repair: the detector/auto-repair plane is
   expected to bring the victim back on its own. The interval still
   reserves fault budget for the whole assumed-down window, which must
   cover suspicion (35) + a heartbeat period (10) + repair under load —
   hence the high minimum downtime; a second crash of the same server
   inside one window would race its own autonomous repair. *)
let generate_crash_only ~params ~seed ~horizon ?mean_uptime
    ?(mean_downtime = 60.0) ?(min_downtime = 90.0) () =
  generate_intervals ~params ~seed ~horizon ?mean_uptime ~mean_downtime
    ~min_downtime
    ~kind_of:(fun ~coordinate ~start ~stop:_ ->
      [ Crash { coordinate; at = start } ])
    ()

(* Silent corruption events. A rotted element is unavailable exactly
   like a crashed one until the scrubber heals it (the server withholds
   the quarantined fragment rather than relay garbage), so rot windows
   draw on the same <= f budget: the interval models the assumed
   detect-and-heal window (scrub period 50 + targeted repair slack). *)
let generate_bitrot ~params ~seed ~horizon ?mean_uptime
    ?(mean_downtime = 40.0) ?(min_downtime = 120.0) () =
  generate_intervals ~params ~seed ~horizon ?mean_uptime ~mean_downtime
    ~min_downtime
    ~kind_of:(fun ~coordinate ~start ~stop:_ ->
      [ BitRot { coordinate; at = start } ])
    ()

let apply t deployment =
  List.iter
    (function
      | Crash { coordinate; at } ->
        Soda.Deployment.crash_server deployment ~coordinate ~at
      | Repair { coordinate; at } ->
        ignore (Soda.Deployment.repair_server deployment ~coordinate ~at)
      | Partition { coordinates; at } ->
        Soda.Deployment.partition_servers deployment ~coordinates ~at
      | Heal { coordinates; at } ->
        Soda.Deployment.heal_servers deployment ~coordinates ~at
      | BitRot { coordinate; at } ->
        Soda.Deployment.corrupt_server deployment ~coordinate ~at)
    t

(* Applying a schedule at its literal timestamps can silently exceed the
   fault budget: the schedule's Repair event only restores the process,
   while the protocol-level repair (the state transfer rebuilding the
   wiped element) takes longer under load and loss — and a server is as
   good as faulty until it completes. Crash the next victim while a
   previous one is still rebuilding and more than f elements can be
   empty at once; with k = n - f that destroys committed data beyond
   what any algorithm could recover (it is not a protocol bug, it is
   budget-exceeding data loss). So the gated driver walks the schedule
   as an event chain, shifting everything by the accumulated delay, and
   holds each Crash back (re-checking every [poll] time units) until the
   system reports no repair in flight — the discipline a real operator,
   or a Jepsen-style nemesis, follows before taking the next machine
   down. Fully deterministic: the gate reads simulation state only. *)
let drive_gated ?(poll = 7.0) ~engine ~repairing ~apply t =
  let module Engine = Simnet.Engine in
  let pid = Engine.reserve engine ~name:"nemesis" in
  let rec schedule ~shift = function
    | [] -> ()
    | ev :: rest ->
      let at = Float.max (time_of ev +. shift) (Engine.now engine) in
      Engine.inject engine ~at pid (fun _ctx -> attempt ~shift ev rest)
  and attempt ~shift ev rest =
    match ev with
    | Crash _ when repairing () ->
      Engine.inject engine
        ~at:(Engine.now engine +. poll)
        pid
        (fun _ctx -> attempt ~shift:(shift +. poll) ev rest)
    | Crash _ | Repair _ | Partition _ | Heal _ | BitRot _ ->
      (* BitRot is never gated: rot does not wipe an element (the data
         is still decodable from the other n-1 stores), so it cannot
         push the effective erasure count past the budget by itself *)
      apply ~at:(Engine.now engine) ev;
      schedule ~shift rest
  in
  schedule ~shift:0.0 t

let apply_gated ?poll t deployment =
  drive_gated ?poll
    ~engine:(Soda.Deployment.engine deployment)
    ~repairing:(fun () -> Soda.Deployment.repairing deployment)
    ~apply:(fun ~at -> function
      | Crash { coordinate; _ } ->
        Soda.Deployment.crash_server deployment ~coordinate ~at
      | Repair { coordinate; _ } ->
        ignore (Soda.Deployment.repair_server deployment ~coordinate ~at)
      | Partition { coordinates; _ } ->
        Soda.Deployment.partition_servers deployment ~coordinates ~at
      | Heal { coordinates; _ } ->
        Soda.Deployment.heal_servers deployment ~coordinates ~at
      | BitRot { coordinate; _ } ->
        Soda.Deployment.corrupt_server deployment ~coordinate ~at)
    t

let max_simultaneous_down t =
  let down = Hashtbl.create 8 in
  List.fold_left
    (fun acc event ->
      (match event with
      | Crash { coordinate; _ } -> Hashtbl.replace down coordinate ()
      | Repair { coordinate; _ } -> Hashtbl.remove down coordinate
      | Partition { coordinates; _ } ->
        List.iter (fun c -> Hashtbl.replace down c ()) coordinates
      | Heal { coordinates; _ } ->
        List.iter (fun c -> Hashtbl.remove down c) coordinates
      (* a rotted server still answers (tags stay intact and newer
         writes overwrite the rot), so rot does not count as "down"
         here — its budget is enforced at generation time instead *)
      | BitRot _ -> ());
      max acc (Hashtbl.length down))
    0 t

let crash_count t =
  List.length (List.filter (function Crash _ -> true | _ -> false) t)

let partition_count t =
  List.length (List.filter (function Partition _ -> true | _ -> false) t)

let bitrot_count t =
  List.length (List.filter (function BitRot _ -> true | _ -> false) t)

let pp_coords ppf coordinates =
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf ppf ",";
      Format.fprintf ppf "%d" c)
    coordinates

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      match e with
      | Crash { coordinate; at } ->
        Format.fprintf ppf "%.1f crash server %d@," at coordinate
      | Repair { coordinate; at } ->
        Format.fprintf ppf "%.1f repair server %d@," at coordinate
      | Partition { coordinates; at } ->
        Format.fprintf ppf "%.1f partition servers {%a}@," at pp_coords
          coordinates
      | Heal { coordinates; at } ->
        Format.fprintf ppf "%.1f heal servers {%a}@," at pp_coords coordinates
      | BitRot { coordinate; at } ->
        Format.fprintf ppf "%.1f bit-rot server %d@," at coordinate)
    t;
  Format.fprintf ppf "@]"

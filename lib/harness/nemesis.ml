module Params = Protocol.Params
module Rng = Simnet.Rng

type event =
  | Crash of { coordinate : int; at : float }
  | Repair of { coordinate : int; at : float }

type t = event list

let time_of = function Crash { at; _ } | Repair { at; _ } -> at

let generate ~params ~seed ~horizon ?mean_uptime ?mean_downtime () =
  if horizon <= 0. then invalid_arg "Nemesis.generate: non-positive horizon";
  let n = Params.n params and f = Params.f params in
  let mean_uptime =
    match mean_uptime with Some u -> u | None -> horizon /. 3.0
  in
  let mean_downtime =
    match mean_downtime with Some d -> d | None -> horizon /. 10.0
  in
  let rng = Rng.create seed in
  (* walk time forward per server, merging candidate crash intervals;
     enforce the global <= f budget with a sweep over interval overlaps *)
  let candidates = ref [] in
  for coordinate = 0 to n - 1 do
    let t = ref (Rng.exponential rng ~mean:mean_uptime) in
    while !t < horizon do
      let down = 1.0 +. Rng.exponential rng ~mean:mean_downtime in
      candidates := (coordinate, !t, !t +. down) :: !candidates;
      t := !t +. down +. 1.0 +. Rng.exponential rng ~mean:mean_uptime
    done
  done;
  let by_start (_, s1, _) (_, s2, _) = Float.compare s1 s2 in
  let sorted = List.sort by_start !candidates in
  (* accept an interval only if fewer than f accepted intervals overlap
     its start *)
  let accepted = ref [] in
  List.iter
    (fun (coordinate, start, stop) ->
      let down_at_start =
        List.length
          (List.filter (fun (_, s, e) -> s <= start && start < e) !accepted)
      in
      if down_at_start < f then accepted := (coordinate, start, stop) :: !accepted)
    sorted;
  let events =
    List.concat_map
      (fun (coordinate, start, stop) ->
        [ Crash { coordinate; at = start }; Repair { coordinate; at = stop } ])
      !accepted
  in
  List.sort (fun a b -> Float.compare (time_of a) (time_of b)) events

let apply t deployment =
  List.iter
    (function
      | Crash { coordinate; at } ->
        Soda.Deployment.crash_server deployment ~coordinate ~at
      | Repair { coordinate; at } ->
        ignore (Soda.Deployment.repair_server deployment ~coordinate ~at))
    t

let max_simultaneous_down t =
  let down = Hashtbl.create 8 in
  List.fold_left
    (fun acc event ->
      (match event with
      | Crash { coordinate; _ } -> Hashtbl.replace down coordinate ()
      | Repair { coordinate; _ } -> Hashtbl.remove down coordinate);
      max acc (Hashtbl.length down))
    0 t

let crash_count t =
  List.length (List.filter (function Crash _ -> true | Repair _ -> false) t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun e ->
      match e with
      | Crash { coordinate; at } ->
        Format.fprintf ppf "%.1f crash server %d@," at coordinate
      | Repair { coordinate; at } ->
        Format.fprintf ppf "%.1f repair server %d@," at coordinate)
    t;
  Format.fprintf ppf "@]"

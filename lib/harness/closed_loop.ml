module Engine = Simnet.Engine
module Params = Protocol.Params
module History = Protocol.History

type result = {
  history : History.t;
  cost : Protocol.Cost.t;
  probe : Protocol.Probe.t;
  initial_value : bytes;
  sim_duration : float;
  wall_seconds : float;
  messages : int
}

let ops_per_time r =
  if r.sim_duration <= 0. then 0.
  else float_of_int (History.size r.history) /. r.sim_duration

let run_soda ~params ?(value_len = 1024) ?(seed = 1) ?(think_time = 1.0)
    ?(delay = Simnet.Delay.uniform ~lo:0.2 ~hi:2.0) ~num_writers ~num_readers
    ~ops_per_client () =
  let initial_value = Workload.value ~len:value_len ~seed ~index:999_983 in
  let engine = Engine.create ~seed ~delay () in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value ~value_len
      ~num_writers ~num_readers ()
  in
  let value_counter = ref 0 in
  (* each client re-arms itself from its completion callback *)
  let rec writer_loop w remaining () =
    if remaining > 0 then begin
      let index = !value_counter in
      incr value_counter;
      Soda.Deployment.write d ~writer:w
        ~at:(Engine.now engine +. think_time)
        ~on_done:(writer_loop w (remaining - 1))
        (Workload.value ~len:value_len ~seed ~index)
    end
  in
  let rec reader_loop r remaining () =
    if remaining > 0 then
      Soda.Deployment.read d ~reader:r
        ~at:(Engine.now engine +. think_time)
        ~on_done:(fun _ -> reader_loop r (remaining - 1) ())
        ()
  in
  for w = 0 to num_writers - 1 do
    writer_loop w ops_per_client ()
  done;
  for r = 0 to num_readers - 1 do
    reader_loop r ops_per_client ()
  done;
  let[@lint.allow
       "D1: measures host throughput for reporting only; never feeds \
        simulated time or protocol decisions"] t0 = Unix.gettimeofday () in
  Engine.run engine;
  let[@lint.allow
       "D1: measures host throughput for reporting only; never feeds \
        simulated time or protocol decisions"] wall_seconds =
    Unix.gettimeofday () -. t0
  in
  { history = Soda.Deployment.history d;
    cost = Soda.Deployment.cost d;
    probe = Soda.Deployment.probe d;
    initial_value;
    sim_duration = Engine.now engine;
    wall_seconds;
    messages = Engine.messages_sent engine
  }

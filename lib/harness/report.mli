(** Plain-text table rendering for experiment reports. *)

val table :
  ?out:Format.formatter -> title:string -> header:string list ->
  string list list -> unit
(** Renders an aligned ASCII table. Ragged rows are padded with empty
    cells. If a CSV directory is set ({!set_csv_dir}), the table is also
    written there as [<slug-of-title>.csv]. *)

val set_csv_dir : string option -> unit
(** When set, every subsequent {!table} call also writes a CSV file into
    the directory (created if missing). Used by [bench/main.exe --csv]. *)

val kv : ?out:Format.formatter -> title:string -> (string * string) list -> unit
(** A two-column key/value block. *)

val f2 : float -> string
(** Fixed two-decimal rendering ("1.53"). *)

val f1 : float -> string
val i : int -> string
val ratio : measured:float -> bound:float -> string
(** "measured/bound (xx%)" — for comparing against paper formulas. *)

module Params = Protocol.Params
module Rng = Simnet.Rng

type op =
  | Write of { writer : int; at : float; value : bytes }
  | Read of { reader : int; at : float }

type t = {
  params : Params.t;
  value_len : int;
  num_writers : int;
  num_readers : int;
  ops : op list;
  delay : Simnet.Delay.t;
  seed : int;
  server_crashes : (int * float) list;
  error_prone : int list
}

let value ~len ~seed ~index =
  let rng = Rng.create ((seed * 0x9e3779b9) lxor (index * 0x85ebca6b) lxor 0x5bd1e995) in
  Bytes.init len (fun _ -> Char.chr (Rng.int rng 256))

let default_delay = Simnet.Delay.uniform ~lo:0.2 ~hi:2.0

let sequential ~params ?(value_len = 256) ?(seed = 1) ?(delay = default_delay)
    ~rounds () =
  if rounds < 0 then invalid_arg "Workload.sequential: negative rounds";
  (* Generous spacing guarantees quiescence between operations under the
     default bounded delay models. *)
  let gap = 1000.0 in
  let ops = ref [] in
  for r = 0 to rounds - 1 do
    let base = float_of_int r *. (2.0 *. gap) in
    ops :=
      Read { reader = 0; at = base +. gap }
      :: Write
           { writer = 0; at = base; value = value ~len:value_len ~seed ~index:r }
      :: !ops
  done;
  { params;
    value_len;
    num_writers = 1;
    num_readers = 1;
    ops = List.rev !ops;
    delay;
    seed;
    server_crashes = [];
    error_prone = []
  }

let concurrent ~params ?(value_len = 256) ?(seed = 1) ?(delay = default_delay)
    ?(num_writers = 2) ?(num_readers = 2) ~ops_per_client ?(spacing = 1.0) ()
    =
  if num_writers < 1 || num_readers < 1 then
    invalid_arg "Workload.concurrent: need at least one client of each kind";
  let rng = Rng.create seed in
  let ops = ref [] in
  let index = ref 0 in
  (* Interleave client schedules; jitter keeps invocations from aligning.
     Clients are single-lane, so successive ops of one client must be
     spaced beyond the worst-case operation latency; concurrency comes
     from different clients overlapping. *)
  let client_gap = 400.0 in
  for o = 0 to ops_per_client - 1 do
    let base = float_of_int o *. client_gap in
    for w = 0 to num_writers - 1 do
      let at = base +. (float_of_int w *. spacing) +. Rng.float rng spacing in
      ops :=
        Write
          { writer = w; at; value = value ~len:value_len ~seed ~index:!index }
        :: !ops;
      incr index
    done;
    for r = 0 to num_readers - 1 do
      let at =
        base +. (float_of_int r *. spacing) +. Rng.float rng (3.0 *. spacing)
      in
      ops := Read { reader = r; at } :: !ops
    done
  done;
  let by_time a b =
    let at = function Write { at; _ } | Read { at; _ } -> at in
    Float.compare (at a) (at b)
  in
  { params;
    value_len;
    num_writers;
    num_readers;
    ops = List.sort by_time !ops;
    delay;
    seed;
    server_crashes = [];
    error_prone = []
  }

let read_with_write_storm ~params ?(value_len = 256) ?(seed = 1) ~writers
    ~writes_per_writer () =
  if writers < 1 then invalid_arg "Workload.read_with_write_storm: no writers";
  (* One read in the middle of a storm of writes under high-variance
     delays. Mixed stored tags and straggling READ-DISPERSE announcements
     keep servers registered across several write dispersals, so the
     measured δ_w (writes initiated inside the read's registration
     window, computed from probes) spans a useful range across seeds.
     This is the δ_w experiment of Theorem 5.6: read cost vs
     n/(n-f) * (δ_w + 1). *)
  let delay = Simnet.Delay.exponential ~mean:1.5 ~cap:12.0 in
  let warmup =
    Write
      { writer = 0; at = 0.0; value = value ~len:value_len ~seed ~index:1000 }
  in
  let read = Read { reader = 0; at = 30.0 } in
  let ops = ref [ read; warmup ] in
  let index = ref 0 in
  for w = 0 to writers - 1 do
    for j = 0 to writes_per_writer - 1 do
      (* per-writer spacing of 80 keeps each client well-formed even at
         the delay cap; overlap with the read comes from distinct writers
         staggered across the read's registration window (which typically
         opens a few time units after the read's invocation at t=30) *)
      let at = 28.0 +. (float_of_int j *. 80.0) +. (float_of_int w *. 3.0) in
      ops :=
        Write { writer = w; at; value = value ~len:value_len ~seed ~index:!index }
        :: !ops;
      incr index
    done
  done;
  let by_time a b =
    let at = function Write { at; _ } | Read { at; _ } -> at in
    Float.compare (at a) (at b)
  in
  { params;
    value_len;
    num_writers = writers;
    num_readers = 1;
    ops = List.sort by_time !ops;
    delay;
    seed;
    server_crashes = [];
    error_prone = []
  }

(* ------------------------------------------------------------------ *)
(* Sharded (multi-key) workloads: operations name a logical key of a
   keyspace instead of implying the one register. Values are carried as
   indices into [value] rather than materialized bytes, so a
   100k-operation schedule stays cheap to build and thread across
   domains. *)

type kop =
  | KWrite of { key : int; writer : int; at : float; index : int }
  | KRead of { key : int; reader : int; at : float }

type sharded = {
  sh_keys : int;
  sh_value_len : int;
  sh_num_writers : int;
  sh_num_readers : int;
  sh_kops : kop list;
  sh_delay : Simnet.Delay.t;
  sh_seed : int
}

let sharded_mixed ~keys ?(value_len = 256) ?(seed = 1) ?(delay = default_delay)
    ?(num_writers = 4) ?(num_readers = 4) ?(read_lag = 15.0)
    ?(round_gap = 30.0) () =
  if keys < 1 then invalid_arg "Workload.sharded_mixed: need at least one key";
  if num_writers < 1 || num_readers < 1 then
    invalid_arg "Workload.sharded_mixed: need at least one client of each kind";
  (* Key k is written once by writer [k mod W] and read once by reader
     [k mod R]. Keys assigned to the same writer are on distinct lanes
     (well-formedness is per client *and* key), so rounds only need
     spacing to bound in-flight concurrency, not to serialize: each
     round starts [round_gap] after the previous, comfortably past the
     fault-free operation latency. *)
  let ops = ref [] in
  for k = keys - 1 downto 0 do
    let w = k mod num_writers in
    let r = k mod num_readers in
    let round = k / num_writers in
    let wat = (float_of_int round *. round_gap) +. (float_of_int w *. 1.3) in
    ops :=
      KWrite { key = k; writer = w; at = wat; index = k }
      :: KRead { key = k; reader = r; at = wat +. read_lag }
      :: !ops
  done;
  let by_time a b =
    let at = function KWrite { at; _ } | KRead { at; _ } -> at in
    Float.compare (at a) (at b)
  in
  { sh_keys = keys;
    sh_value_len = value_len;
    sh_num_writers = num_writers;
    sh_num_readers = num_readers;
    sh_kops = List.stable_sort by_time !ops;
    sh_delay = delay;
    sh_seed = seed
  }

let sharded_ops s = List.length s.sh_kops

let with_crashes t crashes = { t with server_crashes = t.server_crashes @ crashes }
let with_errors t coords = { t with error_prone = t.error_prone @ coords }
let total_ops t = List.length t.ops

let writes t =
  List.length (List.filter (function Write _ -> true | Read _ -> false) t.ops)

let reads t = total_ops t - writes t

(** Workload specifications for experiments.

    A workload fixes everything that defines an execution — system
    parameters, clients, the operation schedule, the delay model, crash
    and disk-error injection, and the seed — so that any run is
    reproducible from its workload alone. Constructors build the
    schedules used by the paper's experiments; the record is public so
    tests can build bespoke schedules directly. *)

module Params = Protocol.Params

type op =
  | Write of { writer : int; at : float; value : bytes }
  | Read of { reader : int; at : float }

type t = {
  params : Params.t;
  value_len : int;
  num_writers : int;
  num_readers : int;
  ops : op list;
  delay : Simnet.Delay.t;
  seed : int;
  server_crashes : (int * float) list;  (** (coordinate, time) *)
  error_prone : int list  (** coordinates with corrupting disks (SODA{_err}) *)
}

val value : len:int -> seed:int -> index:int -> bytes
(** Deterministic pseudo-random value, distinct for distinct [index]
    (the operation number is mixed into every block), as required by the
    value-based atomicity checker. *)

val sequential :
  params:Params.t -> ?value_len:int -> ?seed:int -> ?delay:Simnet.Delay.t ->
  rounds:int -> unit -> t
(** One writer and one reader alternating: write, quiesce, read, quiesce.
    No overlap between operations (δ{_w} = 0 for every read). *)

val concurrent :
  params:Params.t -> ?value_len:int -> ?seed:int -> ?delay:Simnet.Delay.t ->
  ?num_writers:int -> ?num_readers:int -> ops_per_client:int ->
  ?spacing:float -> unit -> t
(** Every client issues [ops_per_client] operations with starts staggered
    by [spacing] (default 1.0), giving heavy read/write overlap. *)

val read_with_write_storm :
  params:Params.t -> ?value_len:int -> ?seed:int -> writers:int ->
  writes_per_writer:int -> unit -> t
(** The δ{_w} experiment of Theorem 5.6: a single read inside a storm of
    writes under high-variance (exponential) delays, so that the read's
    registration window overlaps a seed-dependent number of writes. The
    harness measures δ{_w} from probes and compares the read's data cost
    against [n/(n-f) * (δ_w + 1)]. *)

val with_crashes : t -> (int * float) list -> t
(** Adds server crash events (coordinate, time). *)

val with_errors : t -> int list -> t
(** Flags server coordinates as error-prone (SODA{_err} runs only). *)

val total_ops : t -> int
val writes : t -> int
val reads : t -> int

(** Workload specifications for experiments.

    A workload fixes everything that defines an execution — system
    parameters, clients, the operation schedule, the delay model, crash
    and disk-error injection, and the seed — so that any run is
    reproducible from its workload alone. Constructors build the
    schedules used by the paper's experiments; the record is public so
    tests can build bespoke schedules directly. *)

module Params = Protocol.Params

type op =
  | Write of { writer : int; at : float; value : bytes }
  | Read of { reader : int; at : float }

type t = {
  params : Params.t;
  value_len : int;
  num_writers : int;
  num_readers : int;
  ops : op list;
  delay : Simnet.Delay.t;
  seed : int;
  server_crashes : (int * float) list;  (** (coordinate, time) *)
  error_prone : int list  (** coordinates with corrupting disks (SODA{_err}) *)
}

val value : len:int -> seed:int -> index:int -> bytes
(** Deterministic pseudo-random value, distinct for distinct [index]
    (the operation number is mixed into every block), as required by the
    value-based atomicity checker. *)

val sequential :
  params:Params.t -> ?value_len:int -> ?seed:int -> ?delay:Simnet.Delay.t ->
  rounds:int -> unit -> t
(** One writer and one reader alternating: write, quiesce, read, quiesce.
    No overlap between operations (δ{_w} = 0 for every read). *)

val concurrent :
  params:Params.t -> ?value_len:int -> ?seed:int -> ?delay:Simnet.Delay.t ->
  ?num_writers:int -> ?num_readers:int -> ops_per_client:int ->
  ?spacing:float -> unit -> t
(** Every client issues [ops_per_client] operations with starts staggered
    by [spacing] (default 1.0), giving heavy read/write overlap. *)

val read_with_write_storm :
  params:Params.t -> ?value_len:int -> ?seed:int -> writers:int ->
  writes_per_writer:int -> unit -> t
(** The δ{_w} experiment of Theorem 5.6: a single read inside a storm of
    writes under high-variance (exponential) delays, so that the read's
    registration window overlaps a seed-dependent number of writes. The
    harness measures δ{_w} from probes and compares the read's data cost
    against [n/(n-f) * (δ_w + 1)]. *)

(** {1 Sharded (multi-key) workloads}

    Operation schedules over a {!Soda.Keyspace}: each operation names
    a logical key. Writes carry a value {e index} (resolved through
    {!value} at execution time) instead of materialized bytes, so huge
    schedules stay cheap. *)

type kop =
  | KWrite of { key : int; writer : int; at : float; index : int }
  | KRead of { key : int; reader : int; at : float }

type sharded = {
  sh_keys : int;  (** keys are [0 .. sh_keys - 1] *)
  sh_value_len : int;
  sh_num_writers : int;
  sh_num_readers : int;
  sh_kops : kop list;  (** ascending [at] *)
  sh_delay : Simnet.Delay.t;
  sh_seed : int
}

val sharded_mixed :
  keys:int -> ?value_len:int -> ?seed:int -> ?delay:Simnet.Delay.t ->
  ?num_writers:int -> ?num_readers:int -> ?read_lag:float ->
  ?round_gap:float -> unit -> sharded
(** One write then one read per key: key [k] is written by writer
    [k mod num_writers] (default 4 writers) and read [read_lag]
    (default 15.0) later by reader [k mod num_readers]. Writers sweep
    their keys in rounds [round_gap] (default 30.0) apart with a small
    per-writer stagger, so many keys are in flight at once — the
    mixed workload of the sharded-throughput bench. *)

val sharded_ops : sharded -> int

val with_crashes : t -> (int * float) list -> t
(** Adds server crash events (coordinate, time). *)

val with_errors : t -> int list -> t
(** Flags server coordinates as error-prone (SODA{_err} runs only). *)

val total_ops : t -> int
val writes : t -> int
val reads : t -> int

(** Randomized fault schedules ("nemesis") with the fault budget
    respected at every instant.

    The paper's model allows up to [f] servers to be crashed; with the
    repair extension a server can return, freeing budget for the next
    failure. A nemesis schedule is a random sequence of fault events over
    a time horizon such that at no point are more than [f] servers
    simultaneously {e unavailable} — crashed, or cut off by a network
    partition — the strongest fault pressure under which SODA must still
    be live and atomic. Partitioned servers keep their state (no repair
    is needed after a heal); clients are never isolated, so every client
    always reaches the [n - f] available servers its quorums need. *)

type event =
  | Crash of { coordinate : int; at : float }
  | Repair of { coordinate : int; at : float }
  | Partition of { coordinates : int list; at : float }
      (** Cut the named servers off from every other process (see
          {!Soda.Deployment.partition_servers}). *)
  | Heal of { coordinates : int list; at : float }
  | BitRot of { coordinate : int; at : float }
      (** Silently garble the server's stored coded element (see
          {!Soda.Deployment.corrupt_server}). No paired heal event: the
          self-healing plane's scrubber — or an overwriting write — is
          expected to repair it. *)

type t = event list
(** Chronological. *)

val time_of : event -> float

val generate :
  params:Protocol.Params.t -> seed:int -> horizon:float ->
  ?mean_uptime:float -> ?mean_downtime:float -> unit -> t
(** Crash/repair schedules only (the historical generator).
    Exponentially distributed uptimes and downtimes per server (means
    default to [horizon/3] and [horizon/10]), clipped so that at most
    [f] servers are ever down at once: a crash that would exceed the
    budget is skipped. Repairs are spaced at least a small recovery gap
    after their crash. *)

val generate_mixed :
  params:Protocol.Params.t -> seed:int -> horizon:float ->
  ?mean_uptime:float -> ?mean_downtime:float ->
  ?partition_fraction:float -> unit -> t
(** As {!generate}, but each accepted fault window becomes a network
    partition (isolating that server) with probability
    [partition_fraction] (default 0.5) and a crash/repair pair
    otherwise. Crashed and isolated servers share the single [f]
    budget, so no instant ever has more than [f] servers unavailable to
    a client — the combined schedule never cuts more than [f] servers
    off a client majority.
    @raise Invalid_argument on a fraction outside [0, 1]. *)

val generate_crash_only :
  params:Protocol.Params.t -> seed:int -> horizon:float ->
  ?mean_uptime:float -> ?mean_downtime:float -> ?min_downtime:float ->
  unit -> t
(** Crashes with {e no} matching [Repair] events — for exercising the
    self-healing plane, whose failure detector must notice each crash
    and launch the repair autonomously. Every accepted fault window
    still reserves the [<= f] budget for its whole assumed-down span;
    [min_downtime] (default 90.0, far above the default suspicion
    timeout plus repair slack) keeps a server's next crash from racing
    its own autonomous repair. Only meaningful against a deployment
    with {!Soda.Config.healing} armed: without it the victims stay down
    forever. *)

val generate_bitrot :
  params:Protocol.Params.t -> seed:int -> horizon:float ->
  ?mean_uptime:float -> ?mean_downtime:float -> ?min_downtime:float ->
  unit -> t
(** Silent-corruption schedules: each accepted fault window becomes one
    [BitRot] at its start. A rotted element is withheld from reads
    (quarantine) exactly like an erased one until the scrubber heals
    it, so rot windows draw on the same [<= f] budget; [min_downtime]
    (default 120.0) sizes the assumed detect-and-heal window (a scrub
    period plus targeted-repair slack at the default cadence). *)

val apply : t -> Soda.Deployment.t -> unit
(** Schedule every event on a deployment at its literal timestamp.
    Sufficient when nothing delays protocol-level repairs (no message
    loss, light load); under heavier chaos prefer {!apply_gated}. *)

val apply_gated : ?poll:float -> t -> Soda.Deployment.t -> unit
(** Drive the schedule with the repair gate: every event fires at its
    scheduled time shifted by the accumulated gating delay, and a
    [Crash] is additionally held back (re-checked every [poll] time
    units, default 7.0) until {!Soda.Deployment.repairing} is false.

    Why the gate is necessary and not a kindness: the schedule's
    [Repair] only restores the {e process}; the protocol-level repair —
    rebuilding the wiped element from the others — takes longer under
    load and loss, and the server is as good as faulty until it
    completes. A literal-time [Crash] landing in that window can leave
    more than [f] elements wiped at once, and with [k = n - f] that is
    unrecoverable data loss no algorithm could prevent. The gate keeps
    the {e effective} fault count (crashed + still-rebuilding) within
    the budget the generators promise. Deterministic: the gate reads
    simulation state only. *)

val drive_gated :
  ?poll:float ->
  engine:'msg Simnet.Engine.t ->
  repairing:(unit -> bool) ->
  apply:(at:float -> event -> unit) ->
  t ->
  unit
(** The gated driver behind {!apply_gated}, with the target abstracted:
    [repairing] is the gate predicate and [apply] materialises one event
    at the (shifted) time it fires. Use it to drive schedules into other
    targets — e.g. machine-level faults on a {!Soda.Store} with
    [repairing := Soda.Store.repairing]. *)

val max_simultaneous_down : t -> int
(** For tests: the largest number of servers simultaneously crashed or
    isolated at any instant. [BitRot] events are ignored — a rotted
    server keeps answering (tags are intact, newer writes overwrite the
    rot), so its budget is enforced at generation time
    ({!generate_bitrot}) rather than by this counter. *)

val crash_count : t -> int
val partition_count : t -> int
val bitrot_count : t -> int
val pp : Format.formatter -> t -> unit

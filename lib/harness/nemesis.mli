(** Randomized fault schedules ("nemesis") with the crash budget
    respected at every instant.

    The paper's model allows up to [f] servers to be crashed; with the
    repair extension a server can return, freeing budget for the next
    failure. A nemesis schedule is a random sequence of crash/repair
    events over a time horizon such that at no point are more than [f]
    servers simultaneously down — the strongest fault pressure under
    which SODA must still be live and atomic. *)

type event = Crash of { coordinate : int; at : float } | Repair of { coordinate : int; at : float }

type t = event list
(** Chronological. *)

val generate :
  params:Protocol.Params.t -> seed:int -> horizon:float ->
  ?mean_uptime:float -> ?mean_downtime:float -> unit -> t
(** Exponentially distributed uptimes and downtimes per server (means
    default to [horizon/3] and [horizon/10]), clipped so that at most
    [f] servers are ever down at once: a crash that would exceed the
    budget is skipped. Repairs are spaced at least a small recovery gap
    after their crash. *)

val apply : t -> Soda.Deployment.t -> unit
(** Schedule every event on a deployment. *)

val max_simultaneous_down : t -> int
(** For tests: the largest number of servers down at any instant. *)

val crash_count : t -> int
val pp : Format.formatter -> t -> unit

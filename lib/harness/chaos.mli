(** The chaos matrix: SODA over an adversarial network, end to end.

    Each scenario drives a SODA deployment with closed-loop client
    traffic over the reliable-channel transport
    ({!Simnet.Engine.create}[ ~transport]) while the fault plane loses
    messages (drop probability [loss] on every link) and a nemesis
    schedule injects partitions and/or crash-repair cycles, never
    exceeding the [f] budget of simultaneously unavailable servers. The
    run must retain {e liveness} (every invoked operation completes once
    the network quiesces) and {e atomicity} (Lemma 2.1 over the
    recorded history) — the paper's Thms 5.1–5.2 transported to a lossy
    network via the retransmitting substrate.

    The same scenarios back three entry points: the QCheck matrix in
    [test/test_chaos.ml], the [bench/main.exe chaos] smoke/bench, and
    the single-seed replay tool ([soda_replay]) for debugging a failing
    seed with a full event trace. *)

type scenario = {
  name : string;  (** e.g. ["loss20+part+crash"] — unique within {!matrix} *)
  loss : float;  (** per-transmission drop probability on every link *)
  partitions : bool;
  crashes : bool;
  batched : bool
      (** run SODA on {!Soda.Config.batched_plane} over cumulative acks
          ([`Cumulative 0.5]) instead of the broadcast plane with
          per-message acks *)
}

val matrix : scenario list
(** Loss p ∈ {0.05, 0.2, 0.4} × partitions on/off × crashes on/off
    (12 cells), plus ["batched20+part"]: the batched message plane under
    20% loss and partitions. *)

val find : string -> scenario option
(** Look up a {!matrix} cell by name. *)

type outcome = {
  scenario : scenario;
  seed : int;
  complete : bool;  (** liveness: every invoked operation responded *)
  atomic : (unit, string) result;
  trace_ok : (unit, string) result;
      (** lossy-model trace axioms ({!Simnet.Trace_check.check});
          trivially [Ok] when the run was not traced *)
  ops : int;
  sent : int;
  delivered : int;
  dropped : int;
  lost : int;
  retransmissions : int;
  duplicates_suppressed : int;
  abandoned : int;  (** sends that hit the retry cap — must be 0 *)
  data : int;  (** logical sends carrying coded data *)
  meta : int;  (** logical metadata-only sends *)
  acks : int;  (** standalone ack transmissions *)
  crash_events : int;
  partition_events : int;
  final_time : float;
  events : Simnet.Engine.event list;  (** [[]] unless traced *)
  message_log : string list;
      (** payload-level delivery/ack log ([[]] unless traced):
          protocol messages rendered through [Soda.Messages.pp] — so
          coalesced gossip envelopes show entry counts and tag/rid
          ranges — and cumulative acks their acknowledged sequence *)
  name_of : int -> string
}

val ok : outcome -> bool
(** Liveness, atomicity, trace axioms, and no abandoned sends. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line verdict + counters (no event log). *)

val run :
  ?trace:bool -> ?n:int -> ?f:int -> ?horizon:float -> ?value_len:int ->
  ?channel:Simnet.Channel.config -> scenario -> seed:int -> outcome
(** Execute one cell at one seed. Defaults: [n = 5], [f = 1],
    [horizon = 600], [value_len = 64], [channel = Channel.default];
    2 writers and 2 readers in closed loop. A [batched] scenario
    overrides the channel's ack mode to [`Cumulative 0.5] and deploys
    SODA on {!Soda.Config.batched_plane}. Deterministic: equal
    arguments give bit-identical outcomes. *)

(** The chaos matrix: SODA over an adversarial network, end to end.

    Each scenario drives a SODA deployment with closed-loop client
    traffic over the reliable-channel transport
    ({!Simnet.Engine.create}[ ~transport]) while the fault plane loses
    messages (drop probability [loss] on every link) and a nemesis
    schedule injects partitions and/or crash-repair cycles, never
    exceeding the [f] budget of simultaneously unavailable servers. The
    run must retain {e liveness} (every invoked operation completes once
    the network quiesces) and {e atomicity} (Lemma 2.1 over the
    recorded history) — the paper's Thms 5.1–5.2 transported to a lossy
    network via the retransmitting substrate.

    The same scenarios back three entry points: the QCheck matrix in
    [test/test_chaos.ml], the [bench/main.exe chaos] smoke/bench, and
    the single-seed replay tool ([soda_replay]) for debugging a failing
    seed with a full event trace. *)

type scenario = {
  name : string;  (** e.g. ["loss20+part+crash"] — unique within {!matrix} *)
  loss : float;  (** per-transmission drop probability on every link *)
  partitions : bool;
  crashes : bool;
  batched : bool;
      (** run SODA on {!Soda.Config.batched_plane} over cumulative acks
          ([`Cumulative 0.5]) instead of the broadcast plane with
          per-message acks *)
  healing : bool;
      (** deploy with {!Soda.Config.default_healing}: heartbeat failure
          detector, checksum scrubber and autonomous crash-repair *)
  bitrot : bool;
      (** merge a {!Nemesis.generate_bitrot} corruption stream over the
          base schedule *)
  crash_noheal : bool
      (** replace the base schedule with {!Nemesis.generate_crash_only}:
          crashes with no nemesis [Repair] — only the failure detector
          can bring the victims back *)
}

val matrix : scenario list
(** Loss p ∈ {0.05, 0.2, 0.4} × partitions on/off × crashes on/off
    (12 cells), plus ["batched20+part"] (the batched message plane under
    20% loss and partitions) and three self-healing cells:
    ["bitrot+scrub"] (silent corruption under 5% loss, healed by the
    scrubber), ["crash-noheal"] (crashes only the failure detector
    repairs) and ["bitrot+loss20+part"] (corruption under 20% loss and
    partitions). *)

val find : string -> scenario option
(** Look up a {!matrix} cell by name. *)

type outcome = {
  scenario : scenario;
  seed : int;
  complete : bool;  (** liveness: every invoked operation responded *)
  atomic : (unit, string) result;
  trace_ok : (unit, string) result;
      (** lossy-model trace axioms ({!Simnet.Trace_check.check});
          trivially [Ok] when the run was not traced *)
  ops : int;
  sent : int;
  delivered : int;
  dropped : int;
  lost : int;
  retransmissions : int;
  duplicates_suppressed : int;
  abandoned : int;  (** sends that hit the retry cap — must be 0 *)
  data : int;  (** logical sends carrying coded data *)
  meta : int;  (** logical metadata-only sends *)
  acks : int;  (** standalone ack transmissions *)
  crash_events : int;
  partition_events : int;
  bitrot_events : int;
  scrub_clean : bool;
      (** every server's element passes its checksum at quiescence —
          trivially true in cells without bit-rot *)
  all_live : bool;
      (** no server process crashed at quiescence — the convergence
          predicate of the ["crash-noheal"] cell *)
  heal_stats : Soda.Config.heal_stats;
      (** heartbeat/suspicion/scrub/repair counters (all zero without
          healing) *)
  heal_mttd : float list;
      (** per detected fault episode: injection-to-detection time *)
  heal_mttr : float list;
      (** per healed fault episode: injection-to-restoration time *)
  final_time : float;
  events : Simnet.Engine.event list;  (** [[]] unless traced *)
  message_log : string list;
      (** payload-level delivery/ack log ([[]] unless traced):
          protocol messages rendered through [Soda.Messages.pp] — so
          coalesced gossip envelopes show entry counts and tag/rid
          ranges — and cumulative acks their acknowledged sequence *)
  name_of : int -> string
}

val ok : outcome -> bool
(** Liveness, atomicity, trace axioms, no abandoned sends, all
    corruption healed at quiescence ([scrub_clean]) and — in healing
    cells — every server back up ([all_live]). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** One-line verdict + counters (no event log). *)

val run :
  ?trace:bool -> ?n:int -> ?f:int -> ?horizon:float -> ?value_len:int ->
  ?channel:Simnet.Channel.config -> scenario -> seed:int -> outcome
(** Execute one cell at one seed. Defaults: [n = 5], [f = 1],
    [horizon = 600], [value_len = 64], [channel = Channel.default];
    2 writers and 2 readers in closed loop. A [batched] scenario
    overrides the channel's ack mode to [`Cumulative 0.5] and deploys
    SODA on {!Soda.Config.batched_plane}. A [healing] scenario runs the
    engine to a fixed quiescence horizon ([horizon + 600]) instead of
    draining the queue — the heartbeat and scrub tick chains never
    stop; unhealed cells keep the drain-the-queue termination and
    their bit-identical traces. Deterministic: equal arguments give
    bit-identical outcomes. *)

(** {1 Failure-domain cells (keyspace chaos)}

    Whole-domain faults against a sharded {!Soda.Keyspace}: 12 servers
    in 3 failure domains, each key a ["4+2"] instance placed by
    consistent hashing (per-domain cap [2 = f], so the placement is
    {!Soda.Placement.domain_safe}), closed-loop clients cycling over
    the keys, 5% loss over the cumulative-ack reliable transport on
    the batched plane. Domain 1 fails in its entirety mid-run and is
    healed/repaired late; every key must stay atomic and every
    operation must complete. *)

type domain_outcome = {
  d_name : string;
  d_seed : int;
  d_keys : int;
  d_ops : int;  (** recorded operations summed over keys *)
  d_complete : bool;
  d_atomic : (unit, string) result;  (** first offending key, if any *)
  d_abandoned : int;
  d_sent : int;
  d_final_time : float
}

val domain_matrix : string list
(** [["domain-part"; "domain-crash"]]. *)

val domain_ok : domain_outcome -> bool
(** Liveness, per-key atomicity, and no abandoned sends. *)

val pp_domain_outcome : Format.formatter -> domain_outcome -> unit

val run_domain :
  ?keys:int -> ?horizon:float -> ?value_len:int ->
  fault:[ `Partition | `Crash ] -> seed:int -> unit -> domain_outcome
(** Execute one whole-domain cell ([`Partition] blackholes domain 1
    from t=150 to t=380; [`Crash] crashes it at t=150 and runs the
    repair protocol on every hosted instance at t=380). Defaults:
    [keys = 12], [horizon = 600], [value_len = 64]. Deterministic in
    all arguments. *)

(** Extracting the paper's metrics from a run. *)

module History = Protocol.History

type stats = { count : int; mean : float; max : float; min : float }

val stats_of : float list -> stats
(** All-zero stats for an empty list. *)

type summary = {
  algorithm : string;
  ops_total : int;
  ops_complete : int;
  liveness : bool;  (** every invoked operation completed *)
  atomic : bool;  (** tag-based Lemma 2.1 check passed *)
  write_cost : stats;  (** per completed write, value units *)
  read_cost : stats;  (** per completed read, value units *)
  storage_max : float;  (** worst-case total storage, value units *)
  storage_final : float;
      (** total storage at quiescence — CASGC's steady state after
          garbage collection, which is what the paper's formula
          n/(n-2f)(δ+1) describes (the peak additionally includes the
          in-flight pre-written version) *)
  write_latency : stats;
  read_latency : stats;
  messages_sent : int;
      (** physical transmissions, incl. duplicates / retransmits / acks *)
  messages_data : int;  (** logical sends carrying coded data *)
  messages_meta : int;  (** logical sends carrying metadata only *)
  acks_sent : int;  (** standalone ack transmissions (reliable transport) *)
  retransmissions : int;  (** reliable-transport retransmissions *)
  read_restarts : int
      (** CASGC reader restarts (see {!Runner.result.read_restarts}) *)
}

val summarize : Runner.result -> summary

val delta_w : Runner.result -> rid:int -> int option
(** Number of writes initiated during read [rid]'s registration window
    [T1, T2] (Section V of the paper); [None] when the run has no probes
    or the read was never registered. Reads whose window never closed at
    a non-crashed server count every write from T1 on. *)

val reads_with_delta_w : Runner.result -> (int * int * float) list
(** For every completed read: (rid, δ{_w}, data cost in value units).
    Empty for runs without probes. *)

val concurrent_writes : Runner.result -> rid:int -> slack:float -> int option
(** Writes that could have delivered a coded element inside read [rid]'s
    registration window [T1, T2]: invoked no later than [T2] and either
    incomplete or responding within [slack] before [T1] (a completed
    write's last straggler delivery trails its response by at most two
    maximum message delays, so pass [slack = 2 * delay cap]). This is the
    sound variant of δ{_w} — the paper's Theorem 5.6 bound
    [n/(n-f) * (count + 1)] provably holds for it, whereas δ{_w} as
    literally defined (initiations inside [T1, T2]) misses writes that
    start just before T1 and deliver inside the window. *)

val pp_summary : Format.formatter -> summary -> unit

(** {1 Self-healing episodes (MTTD / MTTR)} *)

type heal_episode = {
  server : int;
  fault : [ `Crash | `Rot ];
  injected_at : float;
  detected_at : float option;
      (** first [Suspected] (crash) / [Rot_detected] (rot) after the
          injection; [None] if healed before any detection (e.g. a rot
          overwritten by a write before a scrub sweep saw it) *)
  healed_at : float option
      (** [Repaired] for a crash; first [Scrub_repaired] or [Stored]
          (an overwriting write recomputes the checksum) for a rot.
          [None] if the fault was still open at the end of the run. *)
}

val heal_episodes : Protocol.Probe.t -> heal_episode list
(** Reconstruct every fault's detect/heal lifecycle from a deployment's
    probe stream, in injection order. Requires the healing-armed probes
    ([Crash_injected] is only emitted when {!Soda.Config.healing} is
    armed); on an unhealed run the list contains only rot episodes. *)

val heal_mttd : heal_episode list -> float list
(** Time-to-detect for every detected episode, in injection order. *)

val heal_mttr : heal_episode list -> float list
(** Time-to-repair for every healed episode, in injection order. *)

(** {1 Sharded-run economics} *)

val sharded_msgs_per_op : Runner.sharded_result -> float
(** Physical sends per scheduled operation — the headline number the
    shared plane drives down as the key count grows. *)

val sharded_units_per_msg : Runner.sharded_result -> float
(** Mean {!Soda.Messages.logical_units} per physical send: the frame
    coalescing factor (1.0 means no sharing, higher means gossip
    entries and relays from many keys rode the same frame). *)

(** Closed-loop clients: each client issues its next operation as soon
    as the previous one completes (plus think time), instead of at
    pre-scheduled instants. This measures {e throughput} — operations
    per unit of simulated time — under sustained, self-paced load, the
    way storage systems are usually benchmarked, and drives far more
    concurrency through the protocol than timed workloads can without
    violating well-formedness. *)

module Params = Protocol.Params
module History = Protocol.History

type result = {
  history : History.t;
  cost : Protocol.Cost.t;
  probe : Protocol.Probe.t;
  initial_value : bytes;
  sim_duration : float;  (** simulated time to complete all operations *)
  wall_seconds : float;  (** host time the simulation took *)
  messages : int
}

val ops_per_time : result -> float
(** Completed operations per unit of simulated time. *)

val run_soda :
  params:Params.t ->
  ?value_len:int ->
  ?seed:int ->
  ?think_time:float ->
  ?delay:Simnet.Delay.t ->
  num_writers:int ->
  num_readers:int ->
  ops_per_client:int ->
  unit ->
  result
(** Every client performs [ops_per_client] back-to-back operations
    (writers write fresh values, readers read), with [think_time]
    (default 1.0) of idleness between its own operations. *)

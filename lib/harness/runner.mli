(** Executing a workload against one of the algorithms.

    Each run creates a fresh engine (seeded from the workload), deploys
    the chosen algorithm, schedules the workload's operations and crash
    events, runs the simulation to quiescence, and packages everything an
    analysis needs. The same workload executed twice yields bitwise
    identical results. *)

module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe

type algorithm =
  | Soda  (** SODA, or SODA{_err} when the workload's params have e > 0. *)
  | Abd
  | Cas of { gc_depth : int option }
      (** [None] = plain CAS; [Some delta] = CASGC(delta). *)

val algorithm_name : algorithm -> string

type result = {
  algorithm : string;
  workload : Workload.t;
  history : History.t;
  cost : Cost.t;
  probe : Probe.t option;  (** SODA and CAS deployments emit probes. *)
  initial_value : bytes;
  messages_sent : int;
  messages_delivered : int;
  messages_dropped : int;
      (** Messages addressed to a crashed process (crash semantics, not
          link faults). *)
  messages_lost : int;
      (** Transmissions eaten by the engine's fault plane; 0 unless the
          workload ran over lossy links. *)
  messages_data : int;
      (** Logical protocol sends carrying coded data (the algorithm's
          [Messages.data_bytes] > 0). *)
  messages_meta : int;  (** Logical protocol sends carrying metadata only. *)
  acks_sent : int;
      (** Standalone ack transmissions; 0 on the raw transport. *)
  retransmissions : int;
      (** Reliable-transport retransmissions; 0 on the raw transport. *)
  events_executed : int;
      (** Every event the engine dispatched: deliveries, drops, local
          actions (e.g. dispersal steps), injections, crash/restores. *)
  final_time : float;
  crashed : int -> bool;  (** by server coordinate *)
  read_restarts : int
      (** Reader restarts forced by garbage collection. Non-zero only
          for CASGC (the other algorithms never restart a read);
          surfaced in [Metrics.summary] so chaos/bench reports can
          assert it stays within the δ bound. *)
}

val run :
  ?max_events:int ->
  ?transport:[ `Raw | `Reliable of Simnet.Channel.config ] ->
  ?plane:Soda.Config.plane ->
  algorithm -> Workload.t -> result
(** [transport] (default [`Raw]) selects the engine's channel substrate
    — [`Reliable config] mounts the ack/retransmit layer so the same
    workloads (for any of the algorithms, which all assume reliable
    channels) can be driven over a lossy fault plane. [plane] (SODA only,
    ignored by the baselines) selects the message-plane configuration —
    pass {!Soda.Config.batched_plane} for coalesced gossip, relay
    batching and staggered metadata forwarding.
    @raise Simnet.Engine.Event_limit_exceeded if the protocol fails to
    quiesce within [max_events] (default 20 million). *)

(** {1 Sharded (multi-key) runs} *)

type sharded_result = {
  s_algorithm : string;  (** ["keyspace"] or ["independent"] *)
  s_keys : int;
  s_ops : int;
  s_complete : bool;  (** liveness: every scheduled operation responded *)
  s_atomic : bool;  (** per-key Lemma 2.1 over every key's history *)
  s_messages_sent : int;
  s_messages_data : int;
  s_messages_meta : int;
  s_payload_units : int;
      (** sum of {!Soda.Messages.logical_units} over every send — what
          the per-key message count {e would} have been without frame
          sharing, so [s_payload_units / s_messages_sent] is the
          coalescing factor *)
  s_events : int;
  s_final_time : float
}

val run_sharded :
  ?max_events:int ->
  ?transport:[ `Raw | `Reliable of Simnet.Channel.config ] ->
  ?plane:Soda.Config.plane ->
  placement:Soda.Placement.t ->
  Workload.sharded -> sharded_result
(** Execute a sharded workload on one shared-plane {!Soda.Keyspace}
    over the placement's topology. The engine counts data/meta logical
    sends and payload units, so keyspace and independent runs of the
    same workload are directly comparable. *)

val run_sharded_independent :
  ?max_events:int ->
  ?transport:[ `Raw | `Reliable of Simnet.Channel.config ] ->
  ?plane:Soda.Config.plane ->
  params:Protocol.Params.t ->
  Workload.sharded -> sharded_result
(** The pre-keyspace composition baseline: every key is its own
    {!Soda.Deployment.deploy} (own [n] server processes, own clients)
    on one engine. Same workload, same instrumentation — the msgs/op
    denominator the sharded bench gates against. *)

val run_sweep :
  ?max_events:int ->
  ?transport:[ `Raw | `Reliable of Simnet.Channel.config ] ->
  ?plane:Soda.Config.plane ->
  ?domains:int -> algorithm -> Workload.t list -> result list
(** [run_sweep algorithm workloads] runs each workload independently,
    fanned out across OCaml 5 domains with {!Parallel.map} ([domains]
    defaults to {!Parallel.recommended_domains}). Each run owns a fresh
    engine and is a pure function of its workload, so the result list is
    in input order and identical to [List.map (run algorithm) workloads]
    — only wall-clock time changes.
    @raise Simnet.Engine.Event_limit_exceeded as {!run} does, re-raised
    after all runs finish. *)

(** Executing a workload against one of the algorithms.

    Each run creates a fresh engine (seeded from the workload), deploys
    the chosen algorithm, schedules the workload's operations and crash
    events, runs the simulation to quiescence, and packages everything an
    analysis needs. The same workload executed twice yields bitwise
    identical results. *)

module History = Protocol.History
module Cost = Protocol.Cost
module Probe = Protocol.Probe

type algorithm =
  | Soda  (** SODA, or SODA{_err} when the workload's params have e > 0. *)
  | Abd
  | Cas of { gc_depth : int option }
      (** [None] = plain CAS; [Some delta] = CASGC(delta). *)

val algorithm_name : algorithm -> string

type result = {
  algorithm : string;
  workload : Workload.t;
  history : History.t;
  cost : Cost.t;
  probe : Probe.t option;  (** SODA and CAS deployments emit probes. *)
  initial_value : bytes;
  messages_sent : int;
  messages_delivered : int;
  final_time : float;
  crashed : int -> bool;  (** by server coordinate *)
  read_restarts : int  (** CASGC only; 0 elsewhere *)
}

val run : ?max_events:int -> algorithm -> Workload.t -> result
(** @raise Simnet.Engine.Event_limit_exceeded if the protocol fails to
    quiesce within [max_events] (default 20 million). *)

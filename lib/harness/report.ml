let[@lint.allow
     "P2: Report is the sanctioned output sink — every other module \
      routes human-readable output through it"] default_out =
  Format.std_formatter

let pad cell width = cell ^ String.make (max 0 (width - String.length cell)) ' '

(* collapse accidental runs of spaces from wrapped OCaml string
   literals *)
let normalize_title title =
  String.split_on_char ' ' title
  |> List.filter (fun s -> s <> "")
  |> String.concat " "

let[@lint.allow
     "R1: set once from the CLI before any domain is spawned, read-only \
      afterwards"] csv_dir = ref None

let set_csv_dir dir = csv_dir := dir

let slug title =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '-')
    title
  |> String.split_on_char '-'
  |> List.filter (fun s -> s <> "")
  |> fun parts ->
  let joined = String.concat "-" parts in
  if String.length joined > 60 then String.sub joined 0 60 else joined

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header rows =
  match !csv_dir with
  | None -> ()
  | Some dir ->
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let path = Filename.concat dir (slug title ^ ".csv") in
    let oc = open_out path in
    let line cells =
      output_string oc (String.concat "," (List.map csv_escape cells));
      output_char oc '\n'
    in
    line header;
    List.iter line rows;
    close_out oc

let table ?(out = default_out) ~title ~header rows =
  let title = normalize_title title in
  write_csv ~title ~header rows;
  let columns = List.length header in
  let rows =
    List.map
      (fun row ->
        let len = List.length row in
        if len < columns then row @ List.init (columns - len) (fun _ -> "")
        else row)
      rows
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun acc row ->
            match List.nth_opt row i with
            | Some cell -> max acc (String.length cell)
            | None -> acc)
          (String.length h) rows)
      header
  in
  let render_row cells =
    String.concat "  " (List.map2 pad cells widths)
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  Format.fprintf out "@.== %s ==@." title;
  Format.fprintf out "%s@." (render_row header);
  Format.fprintf out "%s@." rule;
  List.iter (fun row -> Format.fprintf out "%s@." (render_row row)) rows;
  Format.pp_print_flush out ()

let kv ?(out = default_out) ~title pairs =
  Format.fprintf out "@.== %s ==@." (normalize_title title);
  let width =
    List.fold_left (fun acc (k, _) -> max acc (String.length k)) 0 pairs
  in
  List.iter
    (fun (key, value) -> Format.fprintf out "%s  %s@." (pad key width) value)
    pairs;
  Format.pp_print_flush out ()

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let i = string_of_int

let ratio ~measured ~bound =
  if bound = 0. then Printf.sprintf "%.2f/0" measured
  else Printf.sprintf "%.2f/%.2f (%.0f%%)" measured bound (100. *. measured /. bound)

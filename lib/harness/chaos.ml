module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module History = Protocol.History
module Atomicity = Protocol.Atomicity

type scenario = {
  name : string;
  loss : float;
  partitions : bool;
  crashes : bool;
  batched : bool;
  healing : bool;
  bitrot : bool;
  crash_noheal : bool
}

let matrix =
  List.concat_map
    (fun loss ->
      List.concat_map
        (fun partitions ->
          List.map
            (fun crashes ->
              let name =
                Printf.sprintf "loss%02d%s%s"
                  (int_of_float ((loss *. 100.) +. 0.5))
                  (if partitions then "+part" else "")
                  (if crashes then "+crash" else "")
              in
              { name; loss; partitions; crashes; batched = false;
                healing = false; bitrot = false; crash_noheal = false })
            [ false; true ])
        [ false; true ])
    [ 0.05; 0.2; 0.4 ]
  @ [ (* the batched message plane (coalesced gossip, relay batching,
         staggered metadata) over cumulative acks must survive the same
         adversary as the broadcast plane *)
      { name = "batched20+part";
        loss = 0.2;
        partitions = true;
        crashes = false;
        batched = true;
        healing = false;
        bitrot = false;
        crash_noheal = false
      };
      (* self-healing plane cells: the scrubber must find and repair
         silent bit-rot; the failure detector must bring back crashes
         that no nemesis Repair ever restores; and both must hold up
         when loss and partitions delay every heartbeat and fragment *)
      { name = "bitrot+scrub";
        loss = 0.05;
        partitions = false;
        crashes = false;
        batched = false;
        healing = true;
        bitrot = true;
        crash_noheal = false
      };
      { name = "crash-noheal";
        loss = 0.05;
        partitions = false;
        crashes = false;
        batched = false;
        healing = true;
        bitrot = false;
        crash_noheal = true
      };
      { name = "bitrot+loss20+part";
        loss = 0.2;
        partitions = true;
        crashes = false;
        batched = false;
        healing = true;
        bitrot = true;
        crash_noheal = false
      }
    ]

let find name = List.find_opt (fun s -> s.name = name) matrix

type outcome = {
  scenario : scenario;
  seed : int;
  complete : bool;
  atomic : (unit, string) result;
  trace_ok : (unit, string) result;
  ops : int;
  sent : int;
  delivered : int;
  dropped : int;
  lost : int;
  retransmissions : int;
  duplicates_suppressed : int;
  abandoned : int;
  data : int;
  meta : int;
  acks : int;
  crash_events : int;
  partition_events : int;
  bitrot_events : int;
  scrub_clean : bool;
  all_live : bool;
  heal_stats : Soda.Config.heal_stats;
  heal_mttd : float list;
  heal_mttr : float list;
  final_time : float;
  events : Engine.event list;
  message_log : string list;
  name_of : int -> string
}

let ok o =
  o.complete && Result.is_ok o.atomic && Result.is_ok o.trace_ok
  && o.abandoned = 0 && o.scrub_clean
  && ((not o.scenario.healing) || o.all_live)

let run ?(trace = false) ?(n = 5) ?(f = 1) ?(horizon = 600.0) ?(value_len = 64)
    ?(channel = Simnet.Channel.default) scenario ~seed =
  let params = Params.make ~n ~f () in
  (* a batched cell exercises the coalesced plane over cumulative acks;
     quiet window 0.5 < rto so acks always beat the retransmission timer *)
  let channel =
    if scenario.batched then { channel with Simnet.Channel.ack = `Cumulative 0.5 }
    else channel
  in
  let plane = if scenario.batched then Some Soda.Config.batched_plane else None in
  let engine =
    Engine.create ~seed ~trace ~transport:(`Reliable channel)
      ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
      ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  if scenario.loss > 0.0 then Engine.set_loss engine scenario.loss;
  (* payload-level log for replay: rendered through Soda.Messages.pp so
     coalesced envelopes and cumulative acks stay human-diffable *)
  let msg_log = ref [] in
  if trace then begin
    let name pid = Engine.name_of engine pid in
    Engine.set_tap engine
      { Engine.tap_deliver =
          (fun ~time ~src ~dst msg ->
            msg_log :=
              Format.asprintf "%8.2f  %s -> %s  %a" time (name src) (name dst)
                Soda.Messages.pp msg
              :: !msg_log);
        Engine.tap_ack =
          (fun ~time ~src ~dst ~cumulative ~seq ->
            (* acks travel against the data direction *)
            msg_log :=
              Printf.sprintf "%8.2f  %s -> %s  %s%d" time (name dst) (name src)
                (if cumulative then "ACK cum<=" else "ack ")
                seq
              :: !msg_log)
      }
  end;
  let initial_value = Workload.value ~len:value_len ~seed ~index:999 in
  let healing =
    if scenario.healing then Some Soda.Config.default_healing else None
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value ?plane ?healing
      ~num_writers:2 ~num_readers:2 ()
  in
  let schedule =
    if scenario.crash_noheal then
      (* crashes with no Repair events: only the failure detector's
         autonomous crash-repair can bring the victims back *)
      Nemesis.generate_crash_only ~params ~seed ~horizon ()
    else
      match (scenario.crashes, scenario.partitions) with
      | false, false -> []
      | true, false -> Nemesis.generate ~params ~seed ~horizon ()
      | false, true when scenario.bitrot ->
        (* shorter partition windows when rot rides along: a partition
           concurrent with an unhealed rot leaves only k - 1 reachable
           intact elements, so bound how long that overlap can last *)
        Nemesis.generate_mixed ~params ~seed ~horizon ~partition_fraction:1.0
          ~mean_downtime:40.0 ()
      | false, true ->
        Nemesis.generate_mixed ~params ~seed ~horizon ~partition_fraction:1.0 ()
      | true, true -> Nemesis.generate_mixed ~params ~seed ~horizon ()
  in
  let schedule =
    if not scenario.bitrot then schedule
    else
      (* an independent corruption stream merged over the base schedule;
         its own <= f budget caps concurrent unhealed rot, so combined
         with a partition at most two elements are unavailable at an
         instant — reads stall at worst until a write or scrub heals the
         rot, which the quiescence tail absorbs *)
      let rot =
        Nemesis.generate_bitrot ~params ~seed:(seed lxor 0x2FA7) ~horizon ()
      in
      List.sort
        (fun a b -> Float.compare (Nemesis.time_of a) (Nemesis.time_of b))
        (schedule @ rot)
  in
  (* gated: a crash waits until no server is still rebuilding, keeping
     the effective fault count within the budget (see Nemesis.apply_gated) *)
  Nemesis.apply_gated schedule d;
  (* closed-loop clients: chaos can stall any single operation (e.g. a
     partition eats the fast path until retransmissions cross the heal),
     so each client issues its next operation only from the previous
     one's completion callback *)
  let value_index = ref 0 in
  let rec write_loop w () =
    if Engine.now engine < horizon then begin
      let index = !value_index in
      incr value_index;
      Soda.Deployment.write d ~writer:w
        ~at:(Engine.now engine +. 30.0)
        ~on_done:(write_loop w)
        (Workload.value ~len:value_len ~seed ~index)
    end
  in
  let rec read_loop r () =
    if Engine.now engine < horizon then
      Soda.Deployment.read d ~reader:r
        ~at:(Engine.now engine +. 30.0)
        ~on_done:(fun _ -> read_loop r ())
        ()
  in
  write_loop 0 ();
  write_loop 1 ();
  read_loop 0 ();
  read_loop 1 ();
  (* the healing plane's heartbeat/scrub tick chains reschedule forever,
     so a healed run needs an explicit horizon: a long quiescence tail
     after the last client operation. Unhealed runs keep the drain-the-
     queue termination (and their bit-identical traces). *)
  if scenario.healing then Engine.run engine ~until:(horizon +. 600.0)
  else Engine.run engine;
  let history = Soda.Deployment.history d in
  let records = History.records history in
  let atomic =
    match Atomicity.check_tagged ~initial_value records with
    | Ok () -> Ok ()
    | Error v -> Error (Format.asprintf "%a" Atomicity.pp_violation v)
  in
  let events = Engine.trace_events engine in
  let episodes = Metrics.heal_episodes (Soda.Deployment.probe d) in
  let trace_ok =
    if not trace then Ok ()
    else
      let faults = Engine.faults engine in
      match
        Simnet.Trace_check.check
          ~lossy:(fun ~src ~dst -> Simnet.Link_faults.lossy faults ~src ~dst)
          events
      with
      | Ok () -> Ok ()
      | Error v -> Error (Format.asprintf "%a" Simnet.Trace_check.pp_violation v)
  in
  { scenario;
    seed;
    complete = History.all_complete history;
    atomic;
    trace_ok;
    ops = List.length records;
    sent = Engine.messages_sent engine;
    delivered = Engine.messages_delivered engine;
    dropped = Engine.messages_dropped engine;
    lost = Engine.messages_lost engine;
    retransmissions = Engine.retransmissions engine;
    duplicates_suppressed = Engine.duplicates_suppressed engine;
    abandoned = Engine.sends_abandoned engine;
    data = Engine.messages_data engine;
    meta = Engine.messages_meta engine;
    acks = Engine.acks_sent engine;
    crash_events = Nemesis.crash_count schedule;
    partition_events = Nemesis.partition_count schedule;
    bitrot_events = Nemesis.bitrot_count schedule;
    scrub_clean = Soda.Deployment.scrub_clean d;
    all_live = Soda.Deployment.all_live d;
    heal_stats = (Soda.Deployment.config d).Soda.Config.heal_stats;
    heal_mttd = Metrics.heal_mttd episodes;
    heal_mttr = Metrics.heal_mttr episodes;
    final_time = Engine.now engine;
    events;
    message_log = List.rev !msg_log;
    name_of = Engine.name_of engine
  }

let pp_outcome ppf o =
  Format.fprintf ppf
    "@[<v>%s seed=%d: %s@,\
     ops=%d complete=%b atomic=%s trace=%s@,\
     sent=%d delivered=%d dropped=%d lost=%d retransmitted=%d deduped=%d \
     abandoned=%d@,\
     data=%d meta=%d acks=%d crashes=%d partitions=%d rots=%d \
     final_time=%.1f"
    o.scenario.name o.seed
    (if ok o then "OK" else "FAIL")
    o.ops o.complete
    (match o.atomic with Ok () -> "ok" | Error e -> e)
    (match o.trace_ok with Ok () -> "ok" | Error e -> e)
    o.sent o.delivered o.dropped o.lost o.retransmissions
    o.duplicates_suppressed o.abandoned o.data o.meta o.acks o.crash_events
    o.partition_events o.bitrot_events o.final_time;
  if o.scenario.healing then begin
    let hs = o.heal_stats in
    Format.fprintf ppf
      "@,heal: clean=%b live=%b heartbeats=%d suspicions=%d sweeps=%d \
       hits=%d auto_repairs=%d scrub_repairs=%d"
      o.scrub_clean o.all_live hs.Soda.Config.heartbeats_sent
      hs.Soda.Config.suspicions hs.Soda.Config.scrub_sweeps
      hs.Soda.Config.scrub_hits hs.Soda.Config.auto_repairs
      hs.Soda.Config.scrub_repairs;
    let pp_durations label = function
      | [] -> ()
      | ds ->
        Format.fprintf ppf "@,%s:" label;
        List.iter (fun d -> Format.fprintf ppf " %.1f" d) ds
    in
    pp_durations "mttd" o.heal_mttd;
    pp_durations "mttr" o.heal_mttr
  end;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Failure-domain cells: a keyspace spread across failure domains loses
   a whole domain at once. With a [Placement.domain_safe] placement the
   per-key damage stays within each instance's f budget, so per-key
   atomicity and (after the heal/repair) liveness must both survive —
   the correlated-failure scenario the topology/placement layer exists
   for. *)

type domain_outcome = {
  d_name : string;
  d_seed : int;
  d_keys : int;
  d_ops : int;
  d_complete : bool;
  d_atomic : (unit, string) result;
  d_abandoned : int;
  d_sent : int;
  d_final_time : float
}

let domain_matrix = [ "domain-part"; "domain-crash" ]

let domain_ok o =
  o.d_complete && Result.is_ok o.d_atomic && o.d_abandoned = 0

let pp_domain_outcome ppf o =
  Format.fprintf ppf
    "%s seed=%d: %s keys=%d ops=%d complete=%b atomic=%s abandoned=%d \
     sent=%d final_time=%.1f"
    o.d_name o.d_seed
    (if domain_ok o then "OK" else "FAIL")
    o.d_keys o.d_ops o.d_complete
    (match o.d_atomic with Ok () -> "ok" | Error e -> e)
    o.d_abandoned o.d_sent o.d_final_time

let run_domain ?(keys = 12) ?(horizon = 600.0) ?(value_len = 64) ~fault ~seed
    () =
  let name =
    match fault with `Partition -> "domain-part" | `Crash -> "domain-crash"
  in
  (* 12 servers in 3 failure domains, each key a 4+2 instance spread by
     consistent hashing: per-domain cap 2 = f, so losing any whole
     domain stays inside every key's crash budget *)
  let topology = Soda.Topology.make ~servers:12 ~domains:3 () in
  let placement =
    Soda.Placement.create ~topology
      ~params:(Soda.Placement.preset_params `P4_2)
      ~policy:Soda.Placement.Consistent_hash ()
  in
  assert (Soda.Placement.domain_safe placement);
  let channel =
    { Simnet.Channel.default with Simnet.Channel.ack = `Cumulative 0.5 }
  in
  let engine =
    Engine.create ~seed ~transport:(`Reliable channel)
      ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
      ~delay:(Delay.uniform ~lo:0.2 ~hi:2.0) ()
  in
  Engine.set_loss engine 0.05;
  let ks =
    Soda.Keyspace.create ~engine ~placement ~value_len
      ~plane:Soda.Config.batched_plane ~num_writers:2 ~num_readers:2 ()
  in
  (* the whole of domain 1 fails mid-run and comes back late *)
  (match fault with
  | `Partition ->
    Soda.Keyspace.partition_domain ks ~domain:1 ~at:150.0;
    Soda.Keyspace.heal_domain ks ~domain:1 ~at:380.0
  | `Crash ->
    Soda.Keyspace.crash_domain ks ~domain:1 ~at:150.0;
    Soda.Keyspace.repair_domain ks ~domain:1 ~at:380.0);
  (* closed-loop clients cycling over the keyspace: each completion
     schedules the next operation on the next key, so every key sees
     traffic before, during and after the domain outage *)
  let value_index = ref 0 in
  let rec write_loop w key () =
    if Engine.now engine < horizon then begin
      let index = !value_index in
      incr value_index;
      Soda.Keyspace.write ks ~key ~writer:w
        ~at:(Engine.now engine +. 30.0)
        ~on_done:(write_loop w ((key + 1) mod keys))
        (Workload.value ~len:value_len ~seed ~index)
    end
  in
  let rec read_loop r key () =
    if Engine.now engine < horizon then
      Soda.Keyspace.read ks ~key ~reader:r
        ~at:(Engine.now engine +. 30.0)
        ~on_done:(fun _ -> read_loop r ((key + 1) mod keys) ())
        ()
  in
  write_loop 0 0 ();
  write_loop 1 (keys / 2) ();
  read_loop 0 0 ();
  read_loop 1 (keys / 2) ();
  Engine.run engine;
  let atomic =
    match Soda.Keyspace.check_atomicity ks with
    | Ok () -> Ok ()
    | Error (key, v) ->
      Error
        (Format.asprintf "key %d: %a" key Atomicity.pp_violation v)
  in
  { d_name = name;
    d_seed = seed;
    d_keys = List.length (Soda.Keyspace.keys ks);
    d_ops =
      List.fold_left
        (fun acc key ->
          acc + List.length (History.records (Soda.Keyspace.history ks ~key)))
        0 (Soda.Keyspace.keys ks);
    d_complete = Soda.Keyspace.all_complete ks;
    d_atomic = atomic;
    d_abandoned = Engine.sends_abandoned engine;
    d_sent = Engine.messages_sent engine;
    d_final_time = Engine.now engine
  }

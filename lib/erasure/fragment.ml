type t = { index : int; data : bytes }

let make ~index ~data =
  if index < 0 then invalid_arg "Fragment.make: negative index";
  { index; data }

let index f = f.index
let data f = f.data
let size f = Bytes.length f.data
let equal a b = a.index = b.index && Bytes.equal a.data b.data

let corrupt f ~seed =
  (* splitmix64-style mixing; mask forced non-zero so that every byte is
     guaranteed to change. *)
  let mix state =
    let state = Int64.add state 0x9e3779b97f4a7c15L in
    let z = state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    (state, Int64.logxor z (Int64.shift_right_logical z 31))
  in
  let data = Bytes.copy f.data in
  let state = ref (Int64.of_int ((seed * 0x1000193) lxor f.index)) in
  for i = 0 to Bytes.length data - 1 do
    let state', z = mix !state in
    state := state';
    let mask = Int64.to_int z land 0xff in
    let mask = if mask = 0 then 0x5a else mask in
    Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor mask))
  done;
  { f with data }

let pp ppf f =
  Format.fprintf ppf "fragment[%d](%d bytes)" f.index (Bytes.length f.data)

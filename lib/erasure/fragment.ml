(* A fragment is a view: [len] payload bytes starting at [off] in
   [buf]. Codecs encode all n fragments into one backing buffer and
   hand out views, so an encode allocates one payload buffer instead of
   n, and nothing between the encoder and the decoder copies payload
   bytes (messages and server stores hold the fragment itself). The
   price is that [data] on a proper sub-view must copy — the kernel
   paths avoid it by reading [buf]/[off]/[len] directly. *)

type t = { index : int; buf : bytes; off : int; len : int }

let make ~index ~data =
  if index < 0 then invalid_arg "Fragment.make: negative index";
  { index; buf = data; off = 0; len = Bytes.length data }

let view ~index ~buf ~off ~len =
  if index < 0 then invalid_arg "Fragment.view: negative index";
  if off < 0 || len < 0 || off + len > Bytes.length buf then
    invalid_arg
      (Printf.sprintf "Fragment.view: range [%d, %d) outside %d-byte buffer"
         off (off + len) (Bytes.length buf));
  { index; buf; off; len }

let index f = f.index
let buf f = f.buf
let off f = f.off
let size f = f.len

(* Whole-buffer views return the backing buffer itself — replication
   relies on this to share one framed buffer across all n fragments. *)
let data f =
  if f.off = 0 && f.len = Bytes.length f.buf then f.buf
  else Bytes.sub f.buf f.off f.len

let equal a b =
  a.index = b.index && a.len = b.len
  &&
  let rec eq i =
    i >= a.len
    || Bytes.get a.buf (a.off + i) = Bytes.get b.buf (b.off + i) && eq (i + 1)
  in
  eq 0

let corrupt f ~seed =
  (* splitmix64-style mixing; mask forced non-zero so that every byte is
     guaranteed to change. *)
  let mix state =
    let state = Int64.add state 0x9e3779b97f4a7c15L in
    let z = state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
    (state, Int64.logxor z (Int64.shift_right_logical z 31))
  in
  let data = Bytes.sub f.buf f.off f.len in
  let state = ref (Int64.of_int ((seed * 0x1000193) lxor f.index)) in
  for i = 0 to Bytes.length data - 1 do
    let state', z = mix !state in
    state := state';
    let mask = Int64.to_int z land 0xff in
    let mask = if mask = 0 then 0x5a else mask in
    Bytes.set data i (Char.chr (Char.code (Bytes.get data i) lxor mask))
  done;
  { index = f.index; buf = data; off = 0; len = Bytes.length data }

let pp ppf f = Format.fprintf ppf "fragment[%d](%d bytes)" f.index f.len

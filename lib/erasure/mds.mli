(** Unified interface over the concrete codecs.

    The protocol layers (SODA, SODA{_err}, CAS/CASGC, ABD) are written
    against this type so that the choice of codec is a configuration
    datum, not a compile-time commitment. An [(n, k)] code splits a value
    into [n] fragments of [1/k] the (framed) size; any [k] fragments
    reconstruct the value; codecs built with {!rs_bch} additionally
    tolerate silent fragment corruption during decode. *)

type t

exception Insufficient_fragments of { needed : int; got : int }
(** Raised by {!decode} when fewer than [k] distinct fragments are
    supplied. *)

exception Decode_failure of string
(** Raised by {!decode} when corruption is detected beyond the codec's
    correction radius. *)

val rs_vandermonde : n:int -> k:int -> t
(** Evaluation-form Reed-Solomon; erasures only. *)

val rs_systematic : n:int -> k:int -> t
(** Systematic Vandermonde Reed-Solomon: the first [k] fragments carry
    the (framed) value verbatim; erasures only, with copy-only fast
    paths for encoding the data fragments and decoding from them. *)

val rs_bch : n:int -> k:int -> t
(** Systematic BCH-form Reed-Solomon with errors-and-erasures decoding:
    tolerates any [errors], [erasures] with
    [2*errors + erasures <= n - k]. *)

val rs16 : n:int -> k:int -> t
(** Evaluation-form Reed-Solomon over GF(2{^16}): code lengths up to
    65535 for systems beyond 255 servers; erasures only. *)

val rs_bch16 : n:int -> k:int -> t
(** Errors-and-erasures Reed-Solomon over GF(2{^16}): SODA{_err} beyond
    255 servers. *)

val replication : n:int -> t
(** The [n, 1] repetition code. *)

val n : t -> int
(** Number of fragments produced. *)

val k : t -> int
(** Number of fragments needed to reconstruct. *)

val name : t -> string
(** Short human-readable codec name, e.g. ["rs-bch[12,7]"]. *)

val encode : ?domains:int -> t -> bytes -> Fragment.t array
(** Encode a value into [n] fragments, indices [0 .. n-1]. [?domains]
    (default 1: deterministic, single-domain) lets the Reed-Solomon
    codecs shard the stripe range of large values across OCaml domains;
    replication ignores it. The fragments are identical either way. *)

val decode : ?domains:int -> t -> Fragment.t list -> bytes
(** Reconstruct the value from fragments. [?domains] as in {!encode}.
    @raise Insufficient_fragments
    @raise Decode_failure *)

val update :
  ?domains:int ->
  t ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** [update t ~fragments ~value ~pos patch] returns the value with
    [patch] written at [pos] together with fragments identical to
    [encode] of that patched value. [fragments] must be all [n]
    fragments of [value] (any order, distinct indices). The linear
    codecs (Vandermonde, systematic, GF(2{^16}), replication) maintain
    parity incrementally — work proportional to the patch, not the
    value; the BCH-form codecs fall back to a full re-encode. Inputs are
    never mutated.
    @raise Invalid_argument if the patch leaves the value's bounds or
    the fragment set is malformed. *)

val fragment_size : t -> value_len:int -> int
(** Size in bytes of each fragment for a value of [value_len] bytes. *)

val storage_overhead : t -> float
(** Total storage across all [n] fragments relative to the value size:
    [n / k]. This is the paper's normalized "total storage cost". *)

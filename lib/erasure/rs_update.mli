(** Incremental parity maintenance for the linear Reed-Solomon codecs.

    Reed-Solomon encoding is linear over the framed bytes:
    [enc(new) = enc(old) xor enc(delta)]. When a write replaces a byte
    range of an already-encoded value, only the stripes covering that
    range change, so every fragment can be patched with a sweep
    proportional to the patch size instead of re-encoding the whole
    value. See DESIGN.md, "Word-sliced kernels & zero-copy framing". *)

val update :
  ?domains:int ->
  n:int ->
  k:int ->
  rows:Galois.Gf.t array array ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** [update ~n ~k ~rows ~fragments ~value ~pos patch] returns
    [(new_value, new_fragments)] where [new_value] is [value] with
    [patch] written at [pos] and [new_fragments] equals a fresh
    [encode new_value] under the generator whose rows are [rows]
    (GF(2{^8}), one byte per symbol). [fragments] must be all [n]
    fragments of [value] with distinct indices; inputs are not
    mutated — the result fragments are views into one fresh backing
    buffer, ordered by index.
    @raise Invalid_argument if the patch leaves [value]'s bounds or the
    fragment set is malformed. *)

val update16 :
  ?domains:int ->
  n:int ->
  k:int ->
  rows:Galois.Gf16.t array array ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** GF(2{^16}) variant of {!update}: symbols are 2 bytes, fragments
    [2 * stripes] bytes. Patch sweeps use the split-table kernels (short
    spans don't amortize chunk tables). *)

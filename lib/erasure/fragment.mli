(** Coded fragments.

    A fragment is one server's share of an encoded value: the fragment
    [index] identifies which of the [n] code coordinates it carries, and
    [data] holds one code symbol (byte) per stripe. *)

type t = { index : int; data : bytes }

val make : index:int -> data:bytes -> t
(** @raise Invalid_argument on a negative index. *)

val index : t -> int
val data : t -> bytes

val size : t -> int
(** Length of the payload in bytes. *)

val equal : t -> t -> bool

val corrupt : t -> seed:int -> t
(** [corrupt f ~seed] returns a fragment at the same index whose payload
    is deterministically garbled (every byte XORed with a non-zero
    pseudo-random mask derived from [seed]), guaranteed to differ from
    the original in every byte. Used by fault injection to model silent
    disk read errors. *)

val pp : Format.formatter -> t -> unit

(** Coded fragments.

    A fragment is one server's share of an encoded value: the fragment
    [index] identifies which of the [n] code coordinates it carries, and
    its payload holds one code symbol per stripe.

    Since the zero-copy rework (DESIGN.md, "Word-sliced kernels &
    zero-copy framing") a fragment is a {e view} — [size] payload bytes
    at offset [off] within a backing buffer [buf]. Codecs encode a whole
    codeword into one backing buffer and return [n] views into it, and
    the simulated network and server stores carry the views themselves,
    so no payload bytes are copied between encode and decode. Consumers
    on the hot path read [buf]/[off]/[size] directly; {!data} remains
    for convenience and copies only when the view is a proper slice. *)

type t

val make : index:int -> data:bytes -> t
(** [make ~index ~data] is a fragment whose payload is all of [data]
    (the buffer is used as-is, not copied).
    @raise Invalid_argument on a negative index. *)

val view : index:int -> buf:bytes -> off:int -> len:int -> t
(** [view ~index ~buf ~off ~len] is a fragment whose payload is bytes
    [off, off+len) of [buf], shared with the caller — the zero-copy
    constructor used by the codecs.
    @raise Invalid_argument on a negative index or a range outside
    [buf]. *)

val index : t -> int

val buf : t -> bytes
(** The backing buffer. Payload bytes are [off t, off t + size t);
    callers must not mutate them. *)

val off : t -> int
(** Payload offset within {!buf}. *)

val size : t -> int
(** Length of the payload in bytes. *)

val data : t -> bytes
(** The payload as a standalone buffer. Returns the backing buffer
    itself when the view covers all of it (replication's fragments
    share one framed buffer this way); otherwise allocates a copy —
    avoid on hot paths, read through {!buf}/{!off} instead. *)

val equal : t -> t -> bool
(** Same index and identical payload bytes (view-position agnostic). *)

val corrupt : t -> seed:int -> t
(** [corrupt f ~seed] returns a fragment at the same index whose payload
    is deterministically garbled (every byte XORed with a non-zero
    pseudo-random mask derived from [seed]), guaranteed to differ from
    the original in every byte. The result owns a fresh buffer. Used by
    fault injection to model silent disk read errors. *)

val pp : Format.formatter -> t -> unit

(** Byte-level framing shared by all codecs.

    A value of arbitrary length is framed as a 4-byte big-endian length
    prefix followed by the payload, padded with zeros to a multiple of
    [k]. The framed buffer is processed stripe by stripe: stripe [s]
    consists of bytes [s*k .. s*k + k - 1], and each stripe independently
    becomes one symbol of every fragment, so that fragment [i] holds
    symbol [i] of every stripe. *)

val header_len : int
(** Length of the frame header (4 bytes). *)

val frame : k:int -> bytes -> bytes
(** [frame ~k v] prepends the length header and zero-pads to a multiple
    of [k]. The result is non-empty even for an empty [v].
    @raise Invalid_argument if [k <= 0] or the value exceeds 2{^31}-1
    bytes. *)

val unframe : bytes -> bytes
(** Inverse of {!frame}; validates the header.
    @raise Invalid_argument on a malformed frame. *)

val extract :
  k:int ->
  bps:int ->
  bufs:Bytes.t array ->
  offs:int array ->
  col_len:int ->
  bytes
(** [extract ~k ~bps ~bufs ~offs ~col_len] reads a framed value directly
    out of [k] decoded column views (column [j] is the [col_len]-byte
    range of [bufs.(j)] at [offs.(j)]; see {!Kernel.merge_cols_sub}):
    parses and validates the length header, then interleaves exactly the
    value bytes into a fresh buffer. Equivalent to
    [unframe (merge_cols cols)] without materializing the framed buffer.
    @raise Invalid_argument on a malformed frame or ragged views. *)

val stripe_count : k:int -> value_len:int -> int
(** Number of stripes (= fragment length in bytes) used to encode a value
    of [value_len] bytes with message dimension [k]. *)

val fragment_size : k:int -> value_len:int -> int
(** Size in bytes of each fragment; equal to [stripe_count]. *)

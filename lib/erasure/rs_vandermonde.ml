type t = { n : int; k : int; generator : Galois.Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_vandermonde.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Galois.Matrix.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

let encode t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  let outputs = Array.init t.n (fun _ -> Bytes.create stripes) in
  (* Row i of the generator, hoisted out of the per-stripe loop. *)
  let rows = Array.init t.n (Galois.Matrix.row t.generator) in
  for s = 0 to stripes - 1 do
    let base = s * t.k in
    for i = 0 to t.n - 1 do
      let row = rows.(i) in
      let acc = ref Galois.Gf.zero in
      for j = 0 to t.k - 1 do
        acc :=
          Galois.Gf.add !acc
            (Galois.Gf.mul row.(j) (Char.code (Bytes.get framed (base + j))))
      done;
      Bytes.set outputs.(i) s (Char.chr !acc)
    done
  done;
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

(* Pick the first [k] fragments with distinct, in-range indices and a
   common size. *)
let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_vandermonde.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_vandermonde.decode: fragment sizes differ")
    selected;
  selected

let decode t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let indices = Array.map Fragment.index selected in
  let sub = Galois.Matrix.select_rows t.generator indices in
  let inverse = Galois.Matrix.invert sub in
  let inv_rows = Array.init t.k (Galois.Matrix.row inverse) in
  let datas = Array.map Fragment.data selected in
  let framed = Bytes.create (stripes * t.k) in
  for s = 0 to stripes - 1 do
    for j = 0 to t.k - 1 do
      let row = inv_rows.(j) in
      let acc = ref Galois.Gf.zero in
      for l = 0 to t.k - 1 do
        acc :=
          Galois.Gf.add !acc
            (Galois.Gf.mul row.(l) (Char.code (Bytes.get datas.(l) s)))
      done;
      Bytes.set framed ((s * t.k) + j) (Char.chr !acc)
    done
  done;
  Splitter.unframe framed

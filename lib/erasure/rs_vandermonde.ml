type t = { n : int; k : int; generator : Galois.Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_vandermonde.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Galois.Matrix.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

(* Row-major encode: transpose the framed value into k column-contiguous
   buffers, then produce each coded fragment with one table-driven
   muladd sweep per non-zero generator coefficient (see Kernel and
   DESIGN.md "Codec kernel"). Large values shard the stripe range
   across domains. *)
let encode ?domains t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  let cols = Kernel.split_cols ~k:t.k ~bps:1 framed in
  let outputs = Array.init t.n (fun _ -> Bytes.create stripes) in
  let rows = Array.init t.n (Galois.Matrix.row t.generator) in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for i = 0 to t.n - 1 do
        Kernel.apply_row ~coeffs:rows.(i) ~srcs:cols ~dst:outputs.(i) ~off:lo
          ~len
      done);
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

(* Pick the first [k] fragments with distinct, in-range indices and a
   common size. *)
let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_vandermonde.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_vandermonde.decode: fragment sizes differ")
    selected;
  selected

let decode ?domains t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let indices = Array.map Fragment.index selected in
  let sub = Galois.Matrix.select_rows t.generator indices in
  let inverse = Galois.Matrix.invert sub in
  let inv_rows = Array.init t.k (Galois.Matrix.row inverse) in
  let datas = Array.map Fragment.data selected in
  (* Fragments are already column-contiguous; sweep the inverse matrix
     row-major into fresh columns and re-interleave at the end. *)
  let cols = Array.init t.k (fun _ -> Bytes.create stripes) in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for j = 0 to t.k - 1 do
        Kernel.apply_row ~coeffs:inv_rows.(j) ~srcs:datas ~dst:cols.(j) ~off:lo
          ~len
      done);
  Splitter.unframe (Kernel.merge_cols ~k:t.k ~bps:1 cols)

type t = { n : int; k : int; generator : Galois.Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_vandermonde.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Galois.Matrix.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

(* Row-major encode into a single backing buffer: the framed value is
   transposed into k column-contiguous scratch columns at the front of
   nothing — columns live in their own buffer since every output row
   reads all of them — and each coded fragment is one table-driven
   word-sliced sweep per non-zero generator coefficient, written
   directly into its slice of the shared backing. Fragments are views
   into the backing, so an encode allocates one payload buffer total
   (see DESIGN.md "Word-sliced kernels & zero-copy framing"). Large
   values shard the stripe range across domains. *)
let encode ?domains t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  let cols_buf = Bytes.create (t.k * stripes) in
  Kernel.split_cols_into ~k:t.k ~bps:1 framed ~dst:cols_buf ~doff:0;
  let srcs = Array.make t.k cols_buf in
  let soffs = Array.init t.k (fun j -> j * stripes) in
  let backing = Bytes.create (t.n * stripes) in
  let rows = Array.init t.n (Galois.Matrix.row t.generator) in
  let wtables = Array.map Kernel.row_wtables rows in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for i = 0 to t.n - 1 do
        Kernel.apply_row_v ~coeffs:rows.(i) ~wtables:wtables.(i) ~srcs ~soffs
          ~dst:backing ~doff:(i * stripes) ~off:lo ~len
      done);
  Array.init t.n (fun i ->
      Fragment.view ~index:i ~buf:backing ~off:(i * stripes) ~len:stripes)

(* Pick the first [k] fragments with distinct, in-range indices and a
   common size. *)
let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_vandermonde.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_vandermonde.decode: fragment sizes differ")
    selected;
  selected

(* Decode k data columns from the selected fragment views, then
   interleave header and value ranges straight out of the columns:
   no merged framed buffer, no unframe copy. *)
let decode ?domains t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let indices = Array.map Fragment.index selected in
  let sub = Galois.Matrix.select_rows t.generator indices in
  let inverse = Galois.Matrix.invert sub in
  let inv_rows = Array.init t.k (Galois.Matrix.row inverse) in
  let wtables = Array.map Kernel.row_wtables inv_rows in
  let srcs = Array.map Fragment.buf selected in
  let soffs = Array.map Fragment.off selected in
  (* Fragment payloads are already column-contiguous views; sweep the
     inverse matrix row-major into fresh columns. *)
  let cols_buf = Bytes.create (t.k * stripes) in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for j = 0 to t.k - 1 do
        Kernel.apply_row_v ~coeffs:inv_rows.(j) ~wtables:wtables.(j) ~srcs
          ~soffs ~dst:cols_buf ~doff:(j * stripes) ~off:lo ~len
      done);
  let bufs = Array.make t.k cols_buf in
  let offs = Array.init t.k (fun j -> j * stripes) in
  Splitter.extract ~k:t.k ~bps:1 ~bufs ~offs ~col_len:stripes

(* Incremental parity update: encoding is linear over the framed bytes,
   so enc(new) = enc(old) xor enc(delta) where delta is zero outside
   the edited stripes. Only the stripes covering the patch see any
   field arithmetic; everything else is one backing blit. *)
let update ?domains t ~fragments ~value ~pos patch =
  Rs_update.update ?domains ~n:t.n ~k:t.k
    ~rows:(Array.init t.n (Galois.Matrix.row t.generator))
    ~fragments ~value ~pos patch

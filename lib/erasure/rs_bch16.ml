(* Errors-and-erasures Reed-Solomon over GF(2^16) (two-byte symbols):
   the SODAerr codec for systems beyond 255 servers. Same interface as
   {!Rs_bch} (see rs_bch.mli); code lengths up to 65535. *)
include Rs_bch_gen.Make (Symbol.Wide)

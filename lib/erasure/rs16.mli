(** Reed-Solomon codes over GF(2{^16}) — for systems beyond 255 servers.

    Same evaluation-form construction as {!Rs_vandermonde}, but symbols
    are 16-bit, so the code length can reach [n <= 65535]: the scale the
    paper's introduction motivates ("several hundreds of servers") is no
    longer capped by the byte-oriented codecs. Values are framed to a
    multiple of [2k] bytes and each stripe of [k] 16-bit symbols encodes
    independently; fragments carry two bytes per stripe (big-endian).
    Erasures only. *)

type t

val make : n:int -> k:int -> t
(** @raise Invalid_argument unless [1 <= k <= n <= 65535]. *)

val n : t -> int
val k : t -> int

val encode : ?domains:int -> t -> bytes -> Fragment.t array
(** [?domains] (default 1) shards the stripe range of large values
    across OCaml domains. *)

exception Insufficient_fragments of { needed : int; got : int }

val decode : ?domains:int -> t -> Fragment.t list -> bytes
(** Reconstructs from any [k] distinct-index fragments. [?domains] as in
    {!encode}.
    @raise Insufficient_fragments with fewer than [k]. *)

val update :
  ?domains:int ->
  t ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** Incremental re-encode of a patched value; see
    {!Rs_update.update16}. *)

(** Reed-Solomon codes in evaluation (Vandermonde) form.

    The value is framed ({!Splitter}), cut into stripes of [k] message
    bytes, and each stripe is encoded independently: coded symbol [i] of a
    stripe is the evaluation of the stripe's degree-(k-1) message
    polynomial at the point [alpha{^i}]. Equivalently, the coded stripe is
    [V m] for the [n x k] Vandermonde matrix [V].

    Any [k] of the [n] coded symbols determine the stripe (the
    corresponding [k x k] sub-Vandermonde matrix is invertible), so the
    code is MDS: it tolerates up to [n - k] erasures. This codec handles
    {e erasures only}; for silent corruption use {!Rs_bch}. *)

type t

val make : n:int -> k:int -> t
(** [make ~n ~k] builds an [n, k] code.
    @raise Invalid_argument unless [1 <= k <= n <= 255]. *)

val n : t -> int
val k : t -> int

val encode : ?domains:int -> t -> bytes -> Fragment.t array
(** [encode code v] produces the [n] fragments of [v], at indices
    [0 .. n-1]. Each has size [Splitter.fragment_size ~k ~value_len].
    [?domains] (default 1: deterministic, single-domain) shards the
    stripe range of large values across OCaml domains; the output is
    identical regardless. *)

exception Insufficient_fragments of { needed : int; got : int }

val decode : ?domains:int -> t -> Fragment.t list -> bytes
(** [decode code frags] reconstructs the original value from any [k]
    distinct-index fragments ([frags] may contain more; the first [k]
    distinct indices are used). [?domains] as in {!encode}.
    @raise Insufficient_fragments with fewer than [k] distinct indices.
    @raise Invalid_argument on an out-of-range index or mismatched
    fragment sizes. *)

val update :
  ?domains:int ->
  t ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** [update code ~fragments ~value ~pos patch] incrementally re-encodes:
    given the current [value] and all [n] of its [fragments], returns the
    patched value and fragments identical to [encode] of it, touching
    only the stripes the patch covers. See {!Rs_update.update}. *)

type t = { n : int }

exception Insufficient_fragments

let make ~n =
  if n < 1 || n > 255 then invalid_arg "Replication.make: invalid n";
  { n }

let n t = t.n

(* All n fragments carry the same bytes, and nothing downstream mutates
   a fragment's payload in place ([Fragment.corrupt] copies), so the one
   framed buffer is shared: encoding is O(|value|) regardless of n
   instead of n copies. *)
let encode t value =
  let framed = Splitter.frame ~k:1 value in
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:framed)

(* "Incremental" update degenerates to copy-and-blit: there is no parity
   to maintain, and encode is already one framed copy shared by all n
   fragments. *)
let update t ~fragments ~value ~pos patch =
  if pos < 0 || pos + Bytes.length patch > Bytes.length value then
    invalid_arg "Replication.update: patch outside value";
  if Array.length fragments <> t.n then
    invalid_arg "Replication.update: expected n fragments";
  let new_value = Bytes.copy value in
  Bytes.blit patch 0 new_value pos (Bytes.length patch);
  let framed = Splitter.frame ~k:1 new_value in
  (new_value, Array.init t.n (fun i -> Fragment.make ~index:i ~data:framed))

let decode t frags =
  match frags with
  | [] -> raise Insufficient_fragments
  | f :: _ ->
    if Fragment.index f >= t.n then
      invalid_arg "Replication.decode: index out of range";
    Splitter.unframe (Fragment.data f)

type t = { n : int }

exception Insufficient_fragments

let make ~n =
  if n < 1 || n > 255 then invalid_arg "Replication.make: invalid n";
  { n }

let n t = t.n

(* All n fragments carry the same bytes, and nothing downstream mutates
   a fragment's payload in place ([Fragment.corrupt] copies), so the one
   framed buffer is shared: encoding is O(|value|) regardless of n
   instead of n copies. *)
let encode t value =
  let framed = Splitter.frame ~k:1 value in
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:framed)

let decode t frags =
  match frags with
  | [] -> raise Insufficient_fragments
  | f :: _ ->
    if Fragment.index f >= t.n then
      invalid_arg "Replication.decode: index out of range";
    Splitter.unframe (Fragment.data f)

(** Systematic Reed-Solomon codes in Vandermonde form.

    The generator matrix is [G = V · (V_k)^{-1}], where [V] is the
    [n x k] Vandermonde matrix and [V_k] its top [k x k] block: the first
    [k] rows of [G] form the identity, so fragments [0 .. k-1] carry the
    framed value verbatim and only the [n - k] parity fragments require
    field arithmetic. Multiplying on the right by an invertible matrix
    preserves the rank of every row subset, so the code remains MDS.

    Compared to {!Rs_vandermonde} this trades nothing for two fast
    paths: encoding touches only the parity rows, and decoding from the
    [k] systematic fragments is a plain reassembly. Storage systems
    overwhelmingly prefer systematic codes for exactly this reason; the
    [micro] benchmark quantifies the difference. Erasures only — for
    silent corruption use {!Rs_bch}. *)

type t

val make : n:int -> k:int -> t
(** @raise Invalid_argument unless [1 <= k <= n <= 255]. *)

val n : t -> int
val k : t -> int

val encode : ?domains:int -> t -> bytes -> Fragment.t array
(** Fragments [0 .. k-1] are the framed value's stripes verbatim;
    [k .. n-1] are parity. [?domains] (default 1) shards the stripe
    range of large values across OCaml domains. *)

exception Insufficient_fragments of { needed : int; got : int }

val decode : ?domains:int -> t -> Fragment.t list -> bytes
(** Reconstructs from any [k] distinct-index fragments; all-systematic
    inputs take the copy-only fast path. [?domains] as in {!encode}.
    @raise Insufficient_fragments with fewer than [k] distinct indices. *)

val update :
  ?domains:int ->
  t ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** Incremental re-encode of a patched value; see {!Rs_update.update}. *)

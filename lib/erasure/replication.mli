(** The trivial [n, 1] MDS code: full replication.

    Every fragment is a complete copy of the (framed) value, so any single
    fragment suffices to decode. Used as the storage scheme of the ABD
    baseline, and as the degenerate point of cost comparisons. *)

type t

val make : n:int -> t
(** @raise Invalid_argument unless [1 <= n <= 255]. *)

val n : t -> int

val encode : t -> bytes -> Fragment.t array
(** All [n] fragments share one framed payload buffer (one copy of the
    value total, not [n]); treat fragment data as immutable, as every
    codec does — {!Fragment.corrupt} already copies. *)

val update :
  t ->
  fragments:Fragment.t array ->
  value:bytes ->
  pos:int ->
  bytes ->
  bytes * Fragment.t array
(** Patched-value re-encode (replication has no parity to maintain, so
    this is one copy-and-blit); same contract as
    {!Rs_vandermonde.update}. *)

exception Insufficient_fragments

val decode : t -> Fragment.t list -> bytes
(** Decodes from the first fragment.
    @raise Insufficient_fragments on an empty list. *)

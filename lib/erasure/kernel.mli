(** Buffer-level Reed-Solomon kernel.

    The codecs in this library are all, on their hot path, the same
    computation: a small matrix of field coefficients applied to long
    byte buffers. This module packages the three ingredients of the
    table-driven, row-major formulation they share:

    - {b product-table sweeps} ({!mul_buf}/{!muladd_buf}, re-exported
      from {!Galois.Gf}; the GF(2{^16}) versions live in
      {!Galois.Gf16}): one 256-entry table per coefficient turns a
      field multiply into a single byte-indexed load;
    - {b stripe transposition} ({!split_cols}/{!merge_cols}) between the
      stripe-major framed value and the column-contiguous buffers the
      sweeps want;
    - {b domain striping} ({!parallel_rows}): sharding the stripe range
      of one encode/decode across OCaml domains for large values.

    See DESIGN.md, section "Codec kernel". *)

type table = Bytes.t
(** A 256-entry GF(2{^8}) product table; see {!Galois.Gf.mul_table}. *)

type table16 = Galois.Gf16.mul_tables
(** Split product tables for one GF(2{^16}) coefficient. *)

val mul_table : Galois.Gf.t -> table
(** [mul_table c] is the cached table with [t.[x] = c * x]; O(1), safe
    from any domain. *)

val mul_buf : table -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [dst.[i] <- c * src.[i]] over [off, off+len). *)

val muladd_buf :
  table -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [dst.[i] <- dst.[i] xor c * src.[i]] over [off, off+len). *)

val row_tables : Galois.Gf.t array -> table array
(** Tables for every coefficient of a matrix row. *)

val row_tables16 : Galois.Gf16.t array -> table16 array
(** GF(2{^16}) row tables. Builds (and caches) each coefficient's split
    tables; call in the coordinating domain before {!parallel_rows} —
    first-time construction must not race. *)

type wtable = Galois.Gf.wtable
(** Word-sweep (chunk) tables for one GF(2{^8}) coefficient; see
    {!Galois.Wops}. *)

type wtable16 = Galois.Gf16.wtable
(** Word-sweep tables for one GF(2{^16}) coefficient. *)

val row_wtables : Galois.Gf.t array -> wtable array
(** Chunk tables for every coefficient of a row (cached globally,
    mutex-guarded — build in the coordinating domain to keep
    construction out of the sharded region). Zero coefficients get a
    table too (never read: the row loops skip them). *)

val row_wtables16 : Galois.Gf16.t array -> wtable16 array
(** GF(2{^16}) chunk tables for a row. Each first-time build costs one
    field multiply per element — reserve for coefficient sets that are
    reused (generator rows) or sweeps long enough to amortize. *)

val split_cols : k:int -> bps:int -> Bytes.t -> Bytes.t array
(** [split_cols ~k ~bps framed] transposes a stripe-major framed buffer
    (each stripe = [k] symbols of [bps] bytes) into [k] column-contiguous
    buffers of one symbol per stripe. Column [j] is exactly systematic
    fragment [j]'s payload.
    @raise Invalid_argument if the buffer is not a whole number of
    stripes. *)

val merge_cols : k:int -> bps:int -> Bytes.t array -> Bytes.t
(** Inverse of {!split_cols}: interleave [k] equal-length column buffers
    back into one stripe-major buffer.
    @raise Invalid_argument on ragged or miscounted columns. *)

val split_cols_into : k:int -> bps:int -> Bytes.t -> dst:Bytes.t -> doff:int -> unit
(** [split_cols_into ~k ~bps framed ~dst ~doff] is {!split_cols}
    transposing into a caller-supplied backing buffer: column [j]
    occupies [doff + j*stripes*bps, doff + (j+1)*stripes*bps) of [dst].
    The zero-copy encode path points fragment views at these ranges.
    @raise Invalid_argument if the framed buffer is not a whole number
    of stripes or the columns exceed [dst]. *)

val merge_cols_sub :
  k:int ->
  bps:int ->
  bufs:Bytes.t array ->
  offs:int array ->
  col_len:int ->
  lo:int ->
  len:int ->
  dst:Bytes.t ->
  doff:int ->
  unit
(** [merge_cols_sub ~k ~bps ~bufs ~offs ~col_len ~lo ~len ~dst ~doff]
    interleaves byte range [lo, lo+len) of the virtual stripe-major
    layout — whose column [j] is the [col_len]-byte view at
    [offs.(j)] of [bufs.(j)] — directly into [dst] at [doff]. Decode
    uses it to extract the value (skipping header and padding) without
    materializing the framed buffer.
    @raise Invalid_argument on ragged views or out-of-range spans. *)

val apply_row :
  coeffs:Galois.Gf.t array ->
  srcs:Bytes.t array ->
  dst:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** [apply_row ~coeffs ~srcs ~dst ~off ~len] computes one output row over
    the given stripe range: [dst = sum_j coeffs.(j) * srcs.(j)]. Zero
    coefficients are skipped entirely, a leading unit coefficient is a
    [Bytes.blit], and the range is zero-filled if every coefficient is
    zero (so [dst] may be a fresh [Bytes.create]). *)

val apply_row_v :
  coeffs:Galois.Gf.t array ->
  wtables:wtable array ->
  srcs:Bytes.t array ->
  soffs:int array ->
  dst:Bytes.t ->
  doff:int ->
  off:int ->
  len:int ->
  unit
(** View-aware word-sliced row application:
    [dst.[doff+off+i] <- sum_j coeffs.(j) * srcs.(j).[soffs.(j)+off+i]]
    for [i] in [0, len). [wtables] must be [row_wtables coeffs]
    (prebuilt by the caller, keeping table construction out of
    {!parallel_rows} shards). Zero coefficients are skipped, a leading
    unit is a blit, a trailing unit an 8-byte-wide xor, and an all-zero
    row zero-fills. This is {!apply_row} generalized to views over
    shared backing buffers. *)

val apply_row16 :
  coeffs:Galois.Gf16.t array ->
  tables:table16 array ->
  srcs:Bytes.t array ->
  dst:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** GF(2{^16}) row application; [off]/[len] count 16-bit symbols and
    [tables] must be [row_tables16 coeffs] (precomputed by the caller so
    the sweep itself is domain-safe). *)

val apply_row16_v :
  coeffs:Galois.Gf16.t array ->
  tables:table16 array ->
  srcs:Bytes.t array ->
  soffs:int array ->
  dst:Bytes.t ->
  doff:int ->
  off:int ->
  len:int ->
  unit
(** View-aware GF(2{^16}) row application on {e split} tables; all
    offsets and [len] are in bytes ([len] even). For one-shot
    coefficient sets (decode submatrices over small fragments) where
    building chunk tables would cost more than the sweep. *)

val apply_row16_w :
  coeffs:Galois.Gf16.t array ->
  wtables:wtable16 array ->
  srcs:Bytes.t array ->
  soffs:int array ->
  dst:Bytes.t ->
  doff:int ->
  off:int ->
  len:int ->
  unit
(** View-aware GF(2{^16}) row application on chunk tables (8 bytes per
    load); offsets and [len] in bytes ([len] even). For reused
    coefficient sets (generator rows) and long sweeps. *)

val parallel_rows :
  ?domains:int -> ?min_chunk:int -> n:int -> (lo:int -> len:int -> unit) -> unit
(** [parallel_rows ~domains ~n f] covers the range [0, n) with disjoint
    calls [f ~lo ~len], sharded over up to [domains] OCaml domains
    (contiguous chunks, one per domain). With [domains <= 1] — the
    default, keeping the deterministic simulator single-domain — or when
    [n < 2 * min_chunk] (default [min_chunk] 4096, so spawning is never
    cheaper than the work), [f] runs inline as a single chunk. [f] must
    be safe to run concurrently on disjoint ranges. If any chunk raises,
    the lowest-indexed exception is re-raised after all domains join. *)

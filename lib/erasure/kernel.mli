(** Buffer-level Reed-Solomon kernel.

    The codecs in this library are all, on their hot path, the same
    computation: a small matrix of field coefficients applied to long
    byte buffers. This module packages the three ingredients of the
    table-driven, row-major formulation they share:

    - {b product-table sweeps} ({!mul_buf}/{!muladd_buf}, re-exported
      from {!Galois.Gf}; the GF(2{^16}) versions live in
      {!Galois.Gf16}): one 256-entry table per coefficient turns a
      field multiply into a single byte-indexed load;
    - {b stripe transposition} ({!split_cols}/{!merge_cols}) between the
      stripe-major framed value and the column-contiguous buffers the
      sweeps want;
    - {b domain striping} ({!parallel_rows}): sharding the stripe range
      of one encode/decode across OCaml domains for large values.

    See DESIGN.md, section "Codec kernel". *)

type table = Bytes.t
(** A 256-entry GF(2{^8}) product table; see {!Galois.Gf.mul_table}. *)

type table16 = Galois.Gf16.mul_tables
(** Split product tables for one GF(2{^16}) coefficient. *)

val mul_table : Galois.Gf.t -> table
(** [mul_table c] is the cached table with [t.[x] = c * x]; O(1), safe
    from any domain. *)

val mul_buf : table -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [dst.[i] <- c * src.[i]] over [off, off+len). *)

val muladd_buf :
  table -> src:Bytes.t -> dst:Bytes.t -> off:int -> len:int -> unit
(** [dst.[i] <- dst.[i] xor c * src.[i]] over [off, off+len). *)

val row_tables : Galois.Gf.t array -> table array
(** Tables for every coefficient of a matrix row. *)

val row_tables16 : Galois.Gf16.t array -> table16 array
(** GF(2{^16}) row tables. Builds (and caches) each coefficient's split
    tables; call in the coordinating domain before {!parallel_rows} —
    first-time construction must not race. *)

val split_cols : k:int -> bps:int -> Bytes.t -> Bytes.t array
(** [split_cols ~k ~bps framed] transposes a stripe-major framed buffer
    (each stripe = [k] symbols of [bps] bytes) into [k] column-contiguous
    buffers of one symbol per stripe. Column [j] is exactly systematic
    fragment [j]'s payload.
    @raise Invalid_argument if the buffer is not a whole number of
    stripes. *)

val merge_cols : k:int -> bps:int -> Bytes.t array -> Bytes.t
(** Inverse of {!split_cols}: interleave [k] equal-length column buffers
    back into one stripe-major buffer.
    @raise Invalid_argument on ragged or miscounted columns. *)

val apply_row :
  coeffs:Galois.Gf.t array ->
  srcs:Bytes.t array ->
  dst:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** [apply_row ~coeffs ~srcs ~dst ~off ~len] computes one output row over
    the given stripe range: [dst = sum_j coeffs.(j) * srcs.(j)]. Zero
    coefficients are skipped entirely, a leading unit coefficient is a
    [Bytes.blit], and the range is zero-filled if every coefficient is
    zero (so [dst] may be a fresh [Bytes.create]). *)

val apply_row16 :
  coeffs:Galois.Gf16.t array ->
  tables:table16 array ->
  srcs:Bytes.t array ->
  dst:Bytes.t ->
  off:int ->
  len:int ->
  unit
(** GF(2{^16}) row application; [off]/[len] count 16-bit symbols and
    [tables] must be [row_tables16 coeffs] (precomputed by the caller so
    the sweep itself is domain-safe). *)

val parallel_rows :
  ?domains:int -> ?min_chunk:int -> n:int -> (lo:int -> len:int -> unit) -> unit
(** [parallel_rows ~domains ~n f] covers the range [0, n) with disjoint
    calls [f ~lo ~len], sharded over up to [domains] OCaml domains
    (contiguous chunks, one per domain). With [domains <= 1] — the
    default, keeping the deterministic simulator single-domain — or when
    [n < 2 * min_chunk] (default [min_chunk] 4096, so spawning is never
    cheaper than the work), [f] runs inline as a single chunk. [f] must
    be safe to run concurrently on disjoint ranges. If any chunk raises,
    the lowest-indexed exception is re-raised after all domains join. *)

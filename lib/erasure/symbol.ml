(** Symbol I/O abstraction shared by the field-generic codecs.

    A symbol module fixes the field the code works over and how one code
    symbol is laid out in a byte buffer; the generic codecs
    ({!Rs_bch_gen}) are functors over this. Besides single-symbol get/set
    it now also exposes the buffer-level product-table sweeps of the
    codec kernel (see {!Kernel} and DESIGN.md "Codec kernel"), so the
    functors can run row-major over whole fragments. *)

module type S = sig
  module F : Galois.Field.S

  val bytes_per_symbol : int

  val max_n : int
  (** Longest supported code: [F.order - 1]. *)

  val get : bytes -> int -> F.t
  (** [get buf i] reads symbol number [i]. *)

  val set : bytes -> int -> F.t -> unit

  type mul_table
  (** Product table(s) for one fixed coefficient. *)

  val mul_table : F.t -> mul_table
  (** Build (or fetch from cache) the table for a coefficient. Call in
      the coordinating domain before sharding work across domains. *)

  val mul_buf : mul_table -> src:bytes -> dst:bytes -> off:int -> len:int -> unit
  (** [dst = c * src] over symbols [off, off+len) ([off]/[len] count
      symbols, not bytes). *)

  val muladd_buf :
    mul_table -> src:bytes -> dst:bytes -> off:int -> len:int -> unit
  (** [dst += c * src] over symbols [off, off+len). *)
end

(** One byte per symbol, GF(2{^8}): codes up to length 255. *)
module Byte : S with module F = Galois.Gf = struct
  module F = Galois.Gf

  let bytes_per_symbol = 1
  let max_n = 255
  let get buf i = Char.code (Bytes.get buf i)
  let set buf i v = Bytes.set buf i (Char.chr v)

  type mul_table = Bytes.t

  let mul_table = F.mul_table
  let mul_buf t ~src ~dst ~off ~len = F.mul_buf t ~src ~dst ~off ~len
  let muladd_buf t ~src ~dst ~off ~len = F.muladd_buf t ~src ~dst ~off ~len
end

(** Two bytes (big-endian) per symbol, GF(2{^16}): codes up to 65535. *)
module Wide : S with module F = Galois.Gf16 = struct
  module F = Galois.Gf16

  let bytes_per_symbol = 2
  let max_n = 65535
  let get buf i = Bytes.get_uint16_be buf (2 * i)
  let set buf i v = Bytes.set_uint16_be buf (2 * i) v

  type mul_table = F.mul_tables

  let mul_table = F.mul_tables
  let mul_buf t ~src ~dst ~off ~len = F.mul_buf t ~src ~dst ~off ~len
  let muladd_buf t ~src ~dst ~off ~len = F.muladd_buf t ~src ~dst ~off ~len
end

(** Symbol I/O abstraction shared by the field-generic codecs.

    A symbol module fixes the field the code works over and how one code
    symbol is laid out in a byte buffer; the generic codecs
    ({!Rs_bch_gen}) are functors over this. *)

module type S = sig
  module F : Galois.Field.S

  val bytes_per_symbol : int

  val max_n : int
  (** Longest supported code: [F.order - 1]. *)

  val get : bytes -> int -> F.t
  (** [get buf i] reads symbol number [i]. *)

  val set : bytes -> int -> F.t -> unit
end

(** One byte per symbol, GF(2{^8}): codes up to length 255. *)
module Byte : S with module F = Galois.Gf = struct
  module F = Galois.Gf

  let bytes_per_symbol = 1
  let max_n = 255
  let get buf i = Char.code (Bytes.get buf i)
  let set buf i v = Bytes.set buf i (Char.chr v)
end

(** Two bytes (big-endian) per symbol, GF(2{^16}): codes up to 65535. *)
module Wide : S with module F = Galois.Gf16 = struct
  module F = Galois.Gf16

  let bytes_per_symbol = 2
  let max_n = 65535
  let get buf i = Bytes.get_uint16_be buf (2 * i)
  let set buf i v = Bytes.set_uint16_be buf (2 * i) v
end

module Matrix16 = Galois.Matrix16

type t = { n : int; k : int; generator : Matrix16.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 65535 then
    invalid_arg (Printf.sprintf "Rs16.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Matrix16.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

(* one stripe = k 16-bit symbols = 2k bytes; Splitter's framing at
   "dimension 2k" gives exactly the padding we need. Encode/decode run
   row-major with the split-table GF(2^16) kernel; split tables are
   built in this domain, before any parallel sharding. *)

let encode ?domains t value =
  let framed = Splitter.frame ~k:(2 * t.k) value in
  let stripes = Bytes.length framed / (2 * t.k) in
  let cols = Kernel.split_cols ~k:t.k ~bps:2 framed in
  let outputs = Array.init t.n (fun _ -> Bytes.create (2 * stripes)) in
  let rows = Array.init t.n (Matrix16.row t.generator) in
  let tables = Array.map Kernel.row_tables16 rows in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for i = 0 to t.n - 1 do
        Kernel.apply_row16 ~coeffs:rows.(i) ~tables:tables.(i) ~srcs:cols
          ~dst:outputs.(i) ~off:lo ~len
      done);
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

let select_distinct t frags =
  let seen = Hashtbl.create 64 in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg (Printf.sprintf "Rs16.decode: index %d out of range" i);
      if !count < t.k && not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  if size mod 2 <> 0 then invalid_arg "Rs16.decode: odd fragment size";
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs16.decode: fragment sizes differ")
    selected;
  selected

let decode ?domains t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) / 2 in
  let indices = Array.map Fragment.index selected in
  let sub = Matrix16.select_rows t.generator indices in
  let inverse = Matrix16.invert sub in
  let inv_rows = Array.init t.k (Matrix16.row inverse) in
  let tables = Array.map Kernel.row_tables16 inv_rows in
  let datas = Array.map Fragment.data selected in
  let cols = Array.init t.k (fun _ -> Bytes.create (2 * stripes)) in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for j = 0 to t.k - 1 do
        Kernel.apply_row16 ~coeffs:inv_rows.(j) ~tables:tables.(j) ~srcs:datas
          ~dst:cols.(j) ~off:lo ~len
      done);
  Splitter.unframe (Kernel.merge_cols ~k:t.k ~bps:2 cols)

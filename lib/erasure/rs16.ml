module Gf16 = Galois.Gf16
module Matrix16 = Galois.Matrix16

type t = { n : int; k : int; generator : Matrix16.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 65535 then
    invalid_arg (Printf.sprintf "Rs16.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Matrix16.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

(* one stripe = k 16-bit symbols = 2k bytes; Splitter's framing at
   "dimension 2k" gives exactly the padding we need *)
let symbol_get buf i = Bytes.get_uint16_be buf (2 * i)
let symbol_set buf i v = Bytes.set_uint16_be buf (2 * i) v

let encode t value =
  let framed = Splitter.frame ~k:(2 * t.k) value in
  let stripes = Bytes.length framed / (2 * t.k) in
  let outputs = Array.init t.n (fun _ -> Bytes.create (2 * stripes)) in
  let rows = Array.init t.n (Matrix16.row t.generator) in
  for s = 0 to stripes - 1 do
    let base = s * t.k in
    for i = 0 to t.n - 1 do
      let row = rows.(i) in
      let acc = ref Gf16.zero in
      for j = 0 to t.k - 1 do
        acc := Gf16.add !acc (Gf16.mul row.(j) (symbol_get framed (base + j)))
      done;
      symbol_set outputs.(i) s !acc
    done
  done;
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

let select_distinct t frags =
  let seen = Hashtbl.create 64 in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i >= t.n then
        invalid_arg (Printf.sprintf "Rs16.decode: index %d out of range" i);
      if !count < t.k && not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  if size mod 2 <> 0 then invalid_arg "Rs16.decode: odd fragment size";
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs16.decode: fragment sizes differ")
    selected;
  selected

let decode t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) / 2 in
  let indices = Array.map Fragment.index selected in
  let sub = Matrix16.select_rows t.generator indices in
  let inverse = Matrix16.invert sub in
  let inv_rows = Array.init t.k (Matrix16.row inverse) in
  let datas = Array.map Fragment.data selected in
  let framed = Bytes.create (stripes * 2 * t.k) in
  for s = 0 to stripes - 1 do
    for j = 0 to t.k - 1 do
      let row = inv_rows.(j) in
      let acc = ref Gf16.zero in
      for l = 0 to t.k - 1 do
        acc := Gf16.add !acc (Gf16.mul row.(l) (symbol_get datas.(l) s))
      done;
      symbol_set framed ((s * t.k) + j) !acc
    done
  done;
  Splitter.unframe framed

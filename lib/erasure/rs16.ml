module Matrix16 = Galois.Matrix16

type t = { n : int; k : int; generator : Matrix16.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 65535 then
    invalid_arg (Printf.sprintf "Rs16.make: invalid parameters n=%d k=%d" n k);
  { n; k; generator = Matrix16.vandermonde ~rows:n ~cols:k }

let n t = t.n
let k t = t.k

(* one stripe = k 16-bit symbols = 2k bytes; Splitter's framing at
   "dimension 2k" gives exactly the padding we need. Encode runs
   row-major on the word-sliced chunk-table kernel into a single
   backing buffer (generator coefficients recur across calls, so their
   chunk tables amortize and are prebuilt here, before any parallel
   sharding); fragments are views into the backing. *)

let encode ?domains t value =
  let framed = Splitter.frame ~k:(2 * t.k) value in
  let stripes = Bytes.length framed / (2 * t.k) in
  let frag_bytes = 2 * stripes in
  let cols_buf = Bytes.create (t.k * frag_bytes) in
  Kernel.split_cols_into ~k:t.k ~bps:2 framed ~dst:cols_buf ~doff:0;
  let srcs = Array.make t.k cols_buf in
  let soffs = Array.init t.k (fun j -> j * frag_bytes) in
  let backing = Bytes.create (t.n * frag_bytes) in
  let rows = Array.init t.n (Matrix16.row t.generator) in
  let wtables = Array.map Kernel.row_wtables16 rows in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      for i = 0 to t.n - 1 do
        Kernel.apply_row16_w ~coeffs:rows.(i) ~wtables:wtables.(i) ~srcs ~soffs
          ~dst:backing ~doff:(i * frag_bytes) ~off:(2 * lo) ~len:(2 * len)
      done);
  Array.init t.n (fun i ->
      Fragment.view ~index:i ~buf:backing ~off:(i * frag_bytes) ~len:frag_bytes)

let select_distinct t frags =
  let seen = Hashtbl.create 64 in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg (Printf.sprintf "Rs16.decode: index %d out of range" i);
      if !count < t.k && not (Hashtbl.mem seen i) then begin
        Hashtbl.add seen i ();
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  if size mod 2 <> 0 then invalid_arg "Rs16.decode: odd fragment size";
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs16.decode: fragment sizes differ")
    selected;
  selected

(* Decode submatrix coefficients are arbitrary 16-bit values, so a
   128 KiB chunk table per coefficient (65536 field multiplies to
   build) only pays off on long sweeps; below this fragment size the
   split-table kernel wins and, just as important, the chunk-table
   cache can't be flooded by small randomized decodes. *)
let wtable_threshold = 1 lsl 20

let decode ?domains t frags =
  let selected = select_distinct t frags in
  let frag_bytes = Fragment.size selected.(0) in
  let stripes = frag_bytes / 2 in
  let indices = Array.map Fragment.index selected in
  let sub = Matrix16.select_rows t.generator indices in
  let inverse = Matrix16.invert sub in
  let inv_rows = Array.init t.k (Matrix16.row inverse) in
  let srcs = Array.map Fragment.buf selected in
  let soffs = Array.map Fragment.off selected in
  let cols_buf = Bytes.create (t.k * frag_bytes) in
  if frag_bytes >= wtable_threshold then begin
    let wtables = Array.map Kernel.row_wtables16 inv_rows in
    Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
        for j = 0 to t.k - 1 do
          Kernel.apply_row16_w ~coeffs:inv_rows.(j) ~wtables:wtables.(j) ~srcs
            ~soffs ~dst:cols_buf ~doff:(j * frag_bytes) ~off:(2 * lo)
            ~len:(2 * len)
        done)
  end
  else begin
    let tables = Array.map Kernel.row_tables16 inv_rows in
    Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
        for j = 0 to t.k - 1 do
          Kernel.apply_row16_v ~coeffs:inv_rows.(j) ~tables:tables.(j) ~srcs
            ~soffs ~dst:cols_buf ~doff:(j * frag_bytes) ~off:(2 * lo)
            ~len:(2 * len)
        done)
  end;
  let bufs = Array.make t.k cols_buf in
  let offs = Array.init t.k (fun j -> j * frag_bytes) in
  Splitter.extract ~k:t.k ~bps:2 ~bufs ~offs ~col_len:frag_bytes

let update ?domains t ~fragments ~value ~pos patch =
  Rs_update.update16 ?domains ~n:t.n ~k:t.k
    ~rows:(Array.init t.n (Matrix16.row t.generator))
    ~fragments ~value ~pos patch

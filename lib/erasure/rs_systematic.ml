module Matrix = Galois.Matrix

type t = { n : int; k : int; generator : Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_systematic.make: invalid parameters n=%d k=%d" n k);
  let vandermonde = Matrix.vandermonde ~rows:n ~cols:k in
  let top = Matrix.select_rows vandermonde (Array.init k (fun i -> i)) in
  (* top is square Vandermonde with distinct points: always invertible *)
  let generator = Matrix.mul vandermonde (Matrix.invert top) in
  { n; k; generator }

let n t = t.n
let k t = t.k

(* Single-backing encode: the top k generator rows are the identity, so
   transposing the framed value straight into the front of the backing
   buffer yields the k systematic fragments in place; only the parity
   rows sweep, reading the data columns out of the same backing. All n
   fragments are views into it. *)
let encode ?domains t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  let backing = Bytes.create (t.n * stripes) in
  Kernel.split_cols_into ~k:t.k ~bps:1 framed ~dst:backing ~doff:0;
  let srcs = Array.make t.k backing in
  let soffs = Array.init t.k (fun j -> j * stripes) in
  let parity_rows =
    Array.init (t.n - t.k) (fun i -> Matrix.row t.generator (t.k + i))
  in
  let wtables = Array.map Kernel.row_wtables parity_rows in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      Array.iteri
        (fun i coeffs ->
          Kernel.apply_row_v ~coeffs ~wtables:wtables.(i) ~srcs ~soffs
            ~dst:backing
            ~doff:((t.k + i) * stripes)
            ~off:lo ~len)
        parity_rows);
  Array.init t.n (fun i ->
      Fragment.view ~index:i ~buf:backing ~off:(i * stripes) ~len:stripes)

let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_systematic.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_systematic.decode: fragment sizes differ")
    selected;
  selected

let decode ?domains t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let all_systematic =
    Array.for_all (fun f -> Fragment.index f < t.k) selected
  in
  if all_systematic then begin
    (* Fast path: the fragment views ARE the data columns — extract the
       value straight out of them, no decode sweep and no framed
       buffer. *)
    let bufs = Array.make t.k Bytes.empty in
    let offs = Array.make t.k 0 in
    Array.iter
      (fun f ->
        bufs.(Fragment.index f) <- Fragment.buf f;
        offs.(Fragment.index f) <- Fragment.off f)
      selected;
    Splitter.extract ~k:t.k ~bps:1 ~bufs ~offs ~col_len:stripes
  end
  else begin
    let indices = Array.map Fragment.index selected in
    let sub = Matrix.select_rows t.generator indices in
    let inverse = Matrix.invert sub in
    let inv_rows = Array.init t.k (Matrix.row inverse) in
    let wtables = Array.map Kernel.row_wtables inv_rows in
    let srcs = Array.map Fragment.buf selected in
    let soffs = Array.map Fragment.off selected in
    let cols_buf = Bytes.create (t.k * stripes) in
    Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
        for j = 0 to t.k - 1 do
          Kernel.apply_row_v ~coeffs:inv_rows.(j) ~wtables:wtables.(j) ~srcs
            ~soffs ~dst:cols_buf ~doff:(j * stripes) ~off:lo ~len
        done);
    let bufs = Array.make t.k cols_buf in
    let offs = Array.init t.k (fun j -> j * stripes) in
    Splitter.extract ~k:t.k ~bps:1 ~bufs ~offs ~col_len:stripes
  end

let update ?domains t ~fragments ~value ~pos patch =
  Rs_update.update ?domains ~n:t.n ~k:t.k
    ~rows:(Array.init t.n (Matrix.row t.generator))
    ~fragments ~value ~pos patch

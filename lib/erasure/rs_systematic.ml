module Gf = Galois.Gf
module Matrix = Galois.Matrix

type t = { n : int; k : int; generator : Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_systematic.make: invalid parameters n=%d k=%d" n k);
  let vandermonde = Matrix.vandermonde ~rows:n ~cols:k in
  let top = Matrix.select_rows vandermonde (Array.init k (fun i -> i)) in
  (* top is square Vandermonde with distinct points: always invertible *)
  let generator = Matrix.mul vandermonde (Matrix.invert top) in
  { n; k; generator }

let n t = t.n
let k t = t.k

let encode t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  let outputs = Array.init t.n (fun _ -> Bytes.create stripes) in
  (* systematic fragments: pure byte shuffling *)
  for j = 0 to t.k - 1 do
    for s = 0 to stripes - 1 do
      Bytes.set outputs.(j) s (Bytes.get framed ((s * t.k) + j))
    done
  done;
  (* parity fragments: one generator row each *)
  for i = t.k to t.n - 1 do
    let row = Matrix.row t.generator i in
    for s = 0 to stripes - 1 do
      let base = s * t.k in
      let acc = ref Gf.zero in
      for j = 0 to t.k - 1 do
        acc :=
          Gf.add !acc (Gf.mul row.(j) (Char.code (Bytes.get framed (base + j))))
      done;
      Bytes.set outputs.(i) s (Char.chr !acc)
    done
  done;
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_systematic.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_systematic.decode: fragment sizes differ")
    selected;
  selected

let decode t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let all_systematic =
    Array.for_all (fun f -> Fragment.index f < t.k) selected
  in
  let framed = Bytes.create (stripes * t.k) in
  if all_systematic then
    (* fast path: place each systematic fragment back into its column *)
    Array.iter
      (fun f ->
        let j = Fragment.index f in
        let data = Fragment.data f in
        for s = 0 to stripes - 1 do
          Bytes.set framed ((s * t.k) + j) (Bytes.get data s)
        done)
      selected
  else begin
    let indices = Array.map Fragment.index selected in
    let sub = Matrix.select_rows t.generator indices in
    let inverse = Matrix.invert sub in
    let inv_rows = Array.init t.k (Matrix.row inverse) in
    let datas = Array.map Fragment.data selected in
    for s = 0 to stripes - 1 do
      for j = 0 to t.k - 1 do
        let row = inv_rows.(j) in
        let acc = ref Gf.zero in
        for l = 0 to t.k - 1 do
          acc :=
            Gf.add !acc
              (Gf.mul row.(l) (Char.code (Bytes.get datas.(l) s)))
        done;
        Bytes.set framed ((s * t.k) + j) (Char.chr !acc)
      done
    done
  end;
  Splitter.unframe framed

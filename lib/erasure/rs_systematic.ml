module Matrix = Galois.Matrix

type t = { n : int; k : int; generator : Matrix.t }

exception Insufficient_fragments of { needed : int; got : int }

let make ~n ~k =
  if k < 1 || k > n || n > 255 then
    invalid_arg
      (Printf.sprintf "Rs_systematic.make: invalid parameters n=%d k=%d" n k);
  let vandermonde = Matrix.vandermonde ~rows:n ~cols:k in
  let top = Matrix.select_rows vandermonde (Array.init k (fun i -> i)) in
  (* top is square Vandermonde with distinct points: always invertible *)
  let generator = Matrix.mul vandermonde (Matrix.invert top) in
  { n; k; generator }

let n t = t.n
let k t = t.k

let encode ?domains t value =
  let framed = Splitter.frame ~k:t.k value in
  let stripes = Bytes.length framed / t.k in
  (* The top k generator rows are the identity, so the k transposed
     columns ARE the systematic fragments — no further copying. *)
  let cols = Kernel.split_cols ~k:t.k ~bps:1 framed in
  let outputs =
    Array.init t.n (fun i -> if i < t.k then cols.(i) else Bytes.create stripes)
  in
  let parity_rows =
    Array.init (t.n - t.k) (fun i -> Matrix.row t.generator (t.k + i))
  in
  Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
      Array.iteri
        (fun i coeffs ->
          Kernel.apply_row ~coeffs ~srcs:cols ~dst:outputs.(t.k + i) ~off:lo
            ~len)
        parity_rows);
  Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

let select_distinct t frags =
  let seen = Array.make t.n false in
  let selected = ref [] in
  let count = ref 0 in
  List.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= t.n then
        invalid_arg
          (Printf.sprintf "Rs_systematic.decode: index %d out of range" i);
      if !count < t.k && not seen.(i) then begin
        seen.(i) <- true;
        selected := f :: !selected;
        incr count
      end)
    frags;
  if !count < t.k then
    raise (Insufficient_fragments { needed = t.k; got = !count });
  let selected = Array.of_list (List.rev !selected) in
  let size = Fragment.size selected.(0) in
  Array.iter
    (fun f ->
      if Fragment.size f <> size then
        invalid_arg "Rs_systematic.decode: fragment sizes differ")
    selected;
  selected

let decode ?domains t frags =
  let selected = select_distinct t frags in
  let stripes = Fragment.size selected.(0) in
  let all_systematic =
    Array.for_all (fun f -> Fragment.index f < t.k) selected
  in
  let framed =
    if all_systematic then begin
      (* fast path: the fragments are the columns, merely re-interleave *)
      let cols = Array.make t.k Bytes.empty in
      Array.iter
        (fun f -> cols.(Fragment.index f) <- Fragment.data f)
        selected;
      Kernel.merge_cols ~k:t.k ~bps:1 cols
    end
    else begin
      let indices = Array.map Fragment.index selected in
      let sub = Matrix.select_rows t.generator indices in
      let inverse = Matrix.invert sub in
      let inv_rows = Array.init t.k (Matrix.row inverse) in
      let datas = Array.map Fragment.data selected in
      let cols = Array.init t.k (fun _ -> Bytes.create stripes) in
      Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
          for j = 0 to t.k - 1 do
            Kernel.apply_row ~coeffs:inv_rows.(j) ~srcs:datas ~dst:cols.(j)
              ~off:lo ~len
          done);
      Kernel.merge_cols ~k:t.k ~bps:1 cols
    end
  in
  Splitter.unframe framed

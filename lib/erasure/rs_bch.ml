(* The GF(2^8), one-byte-symbol instantiation of the generic
   errors-and-erasures Reed-Solomon codec; see rs_bch.mli for
   documentation and Rs_bch_gen for the implementation. *)
include Rs_bch_gen.Make (Symbol.Byte)

(** Systematic Reed-Solomon codes with errors-and-erasures decoding.

    This is the codec SODA{_err} needs: with [k = n - f - 2e] it corrects
    any pattern of up to [f] erasures (missing fragments) {e and} up to
    [e] silent corruptions among the fragments that are present, per
    stripe, as long as [2*errors + erasures <= n - k].

    Construction is the classical BCH view of RS codes: the generator
    polynomial is [g(x) = (x - alpha)(x - alpha^2)...(x - alpha^(n-k))]
    and a codeword is [c(x) = x^(n-k) M(x) + (x^(n-k) M(x) mod g)], so
    the message occupies coordinates [n-k .. n-1] (systematic part).
    Decoding computes syndromes, forms the erasure locator, finds the
    error locator with the Sugiyama (extended-Euclid) algorithm on the
    modified syndrome polynomial, locates errors by Chien search and
    recovers magnitudes with Forney's formula. *)

type t

val make : n:int -> k:int -> t
(** @raise Invalid_argument unless [1 <= k <= n <= 255]. *)

val n : t -> int
val k : t -> int

val encode : ?domains:int -> t -> bytes -> Fragment.t array
(** Encode into [n] fragments at indices [0 .. n-1]; fragment [n-k+j]
    carries the systematic message byte [j] of every stripe. [?domains]
    (default 1) shards the stripe range of large values across OCaml
    domains. *)

exception Insufficient_fragments of { needed : int; got : int }

exception Decode_failure of string
(** Raised when the received word is not within the guaranteed correction
    radius (e.g. too many corrupt fragments): the locator has the wrong
    number of roots in range, or correction does not yield a codeword. *)

val decode : ?domains:int -> t -> Fragment.t list -> bytes
(** [decode code frags] reconstructs the value; stripes are corrected
    independently, so [?domains] shards them too. Fragments whose indices
    are absent are treated as erasures; present fragments may be
    corrupted. Reconstruction is guaranteed whenever
    [2*corruptions + erasures <= n - k].
    @raise Insufficient_fragments when fewer than [k] distinct indices
    are present.
    @raise Decode_failure when the error pattern is detectably beyond the
    correction radius.
    @raise Invalid_argument on out-of-range indices or ragged sizes. *)

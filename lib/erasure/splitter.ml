let header_len = 4

let frame ~k v =
  if k <= 0 then invalid_arg "Splitter.frame: k must be positive";
  let len = Bytes.length v in
  if len > 0x7fffffff then invalid_arg "Splitter.frame: value too large";
  let total = header_len + len in
  let padded = (total + k - 1) / k * k in
  let out = Bytes.make padded '\000' in
  Bytes.set_int32_be out 0 (Int32.of_int len);
  Bytes.blit v 0 out header_len len;
  out

let unframe framed =
  if Bytes.length framed < header_len then
    invalid_arg "Splitter.unframe: buffer shorter than header";
  let len = Int32.to_int (Bytes.get_int32_be framed 0) in
  if len < 0 || header_len + len > Bytes.length framed then
    invalid_arg "Splitter.unframe: corrupt length header";
  Bytes.sub framed header_len len

(* Decode counterpart of [unframe] for the zero-copy path: the framed
   buffer is never materialized; header and value bytes are interleaved
   straight out of the k decoded column views. *)
let extract ~k ~bps ~bufs ~offs ~col_len =
  let total = k * col_len in
  if total < header_len then
    invalid_arg "Splitter.extract: columns shorter than header";
  let hdr = Bytes.create header_len in
  Kernel.merge_cols_sub ~k ~bps ~bufs ~offs ~col_len ~lo:0 ~len:header_len
    ~dst:hdr ~doff:0;
  let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
  if len < 0 || header_len + len > total then
    invalid_arg "Splitter.extract: corrupt length header";
  let out = Bytes.create len in
  Kernel.merge_cols_sub ~k ~bps ~bufs ~offs ~col_len ~lo:header_len ~len
    ~dst:out ~doff:0;
  out

let stripe_count ~k ~value_len =
  if k <= 0 then invalid_arg "Splitter.stripe_count: k must be positive";
  if value_len < 0 then invalid_arg "Splitter.stripe_count: negative length";
  (header_len + value_len + k - 1) / k

let fragment_size = stripe_count

(* Incremental parity maintenance shared by the linear Reed-Solomon
   codecs.

   Encoding is linear over the framed bytes, so
   [enc(new) = enc(old) xor enc(delta)], and a patch that rewrites value
   bytes [pos, pos + |patch|) produces a delta that is zero outside the
   stripes covering framed range
   [header + pos, header + pos + |patch|) — the length header is
   unchanged because the patch stays inside the value. An update
   therefore sweeps only the |patch|-sized span of every fragment
   instead of re-encoding the whole value. *)

let check_patch ~fname ~value ~pos patch =
  if pos < 0 || pos + Bytes.length patch > Bytes.length value then
    invalid_arg
      (Printf.sprintf "%s: patch range [%d, %d) outside value of %d bytes"
         fname pos
         (pos + Bytes.length patch)
         (Bytes.length value))

let check_fragments ~fname ~n ~frag_bytes fragments =
  if Array.length fragments <> n then
    invalid_arg
      (Printf.sprintf "%s: expected %d fragments, got %d" fname n
         (Array.length fragments));
  let seen = Array.make n false in
  Array.iter
    (fun f ->
      let i = Fragment.index f in
      if i < 0 || i >= n || seen.(i) then
        invalid_arg (Printf.sprintf "%s: bad or duplicate index %d" fname i);
      seen.(i) <- true;
      if Fragment.size f <> frag_bytes then
        invalid_arg
          (Printf.sprintf "%s: fragment size %d, expected %d" fname
             (Fragment.size f) frag_bytes))
    fragments

let patched_value ~value ~pos patch =
  let v = Bytes.copy value in
  Bytes.blit patch 0 v pos (Bytes.length patch);
  v

(* Copy every current fragment payload into one fresh backing buffer
   (fragment [i] at [i * frag_bytes]) so the delta sweeps mutate private
   storage and the inputs stay valid. *)
let gather_backing ~n ~frag_bytes fragments =
  let backing = Bytes.create (n * frag_bytes) in
  Array.iter
    (fun f ->
      Bytes.blit (Fragment.buf f) (Fragment.off f) backing
        (Fragment.index f * frag_bytes)
        frag_bytes)
    fragments;
  backing

let views ~n ~frag_bytes backing =
  Array.init n (fun i ->
      Fragment.view ~index:i ~buf:backing ~off:(i * frag_bytes) ~len:frag_bytes)

(* Stripe-major delta over stripes [s0, s1): old value xor patch inside
   the patched range, zero elsewhere (header and padding unchanged). *)
let build_delta ~row_bytes ~s0 ~s1 ~f0 ~value ~pos patch =
  let delta = Bytes.make ((s1 - s0) * row_bytes) '\000' in
  for i = 0 to Bytes.length patch - 1 do
    Bytes.set delta
      (f0 + i - (s0 * row_bytes))
      (Char.chr
         (Char.code (Bytes.get value (pos + i))
         lxor Char.code (Bytes.get patch i)))
  done;
  delta

let update ?domains ~n ~k ~rows ~fragments ~value ~pos patch =
  let fname = "Rs_update.update" in
  check_patch ~fname ~value ~pos patch;
  let stripes = Splitter.stripe_count ~k ~value_len:(Bytes.length value) in
  check_fragments ~fname ~n ~frag_bytes:stripes fragments;
  let new_value = patched_value ~value ~pos patch in
  let plen = Bytes.length patch in
  if plen = 0 then (new_value, fragments)
  else begin
    let f0 = Splitter.header_len + pos in
    let s0 = f0 / k and s1 = ((f0 + plen) + k - 1) / k in
    let m = s1 - s0 in
    let delta = build_delta ~row_bytes:k ~s0 ~s1 ~f0 ~value ~pos patch in
    let dcols = Bytes.create (k * m) in
    Kernel.split_cols_into ~k ~bps:1 delta ~dst:dcols ~doff:0;
    let backing = gather_backing ~n ~frag_bytes:stripes fragments in
    let wtables = Array.map Kernel.row_wtables rows in
    Kernel.parallel_rows ?domains ~n:m (fun ~lo ~len ->
        for i = 0 to n - 1 do
          let coeffs = rows.(i) in
          let doff = (i * stripes) + s0 + lo in
          for j = 0 to k - 1 do
            let c = coeffs.(j) in
            if not (Galois.Gf.is_zero c) then
              if Galois.Gf.equal c Galois.Gf.one then
                Galois.Wops.xor_into ~src:dcols ~soff:((j * m) + lo)
                  ~dst:backing ~doff ~len
              else
                Galois.Gf.muladd_buf_w
                  wtables.(i).(j)
                  ~src:dcols ~soff:((j * m) + lo) ~dst:backing ~doff ~len
          done
        done);
    (new_value, views ~n ~frag_bytes:stripes backing)
  end

(* GF(2^16) variant: one stripe is [k] two-byte symbols. Patch sweeps
   are short, so the split-table kernels win over building 128 KiB
   chunk tables per decode-arbitrary coefficient. *)
let update16 ?domains ~n ~k ~rows ~fragments ~value ~pos patch =
  let fname = "Rs_update.update16" in
  check_patch ~fname ~value ~pos patch;
  let row_bytes = 2 * k in
  let stripes =
    Splitter.stripe_count ~k:row_bytes ~value_len:(Bytes.length value)
  in
  let frag_bytes = 2 * stripes in
  check_fragments ~fname ~n ~frag_bytes fragments;
  let new_value = patched_value ~value ~pos patch in
  let plen = Bytes.length patch in
  if plen = 0 then (new_value, fragments)
  else begin
    let f0 = Splitter.header_len + pos in
    let s0 = f0 / row_bytes and s1 = ((f0 + plen) + row_bytes - 1) / row_bytes in
    let m = s1 - s0 in
    let delta = build_delta ~row_bytes ~s0 ~s1 ~f0 ~value ~pos patch in
    let dcols = Bytes.create (k * m * 2) in
    Kernel.split_cols_into ~k ~bps:2 delta ~dst:dcols ~doff:0;
    let backing = gather_backing ~n ~frag_bytes fragments in
    let tables = Array.map Kernel.row_tables16 rows in
    Kernel.parallel_rows ?domains ~n:m (fun ~lo ~len ->
        for i = 0 to n - 1 do
          let coeffs = rows.(i) in
          let doff = (i * frag_bytes) + (2 * (s0 + lo)) in
          for j = 0 to k - 1 do
            let c = coeffs.(j) in
            if not (Galois.Gf16.is_zero c) then
              if Galois.Gf16.equal c Galois.Gf16.one then
                Galois.Wops.xor_into ~src:dcols
                  ~soff:((j * m * 2) + (2 * lo))
                  ~dst:backing ~doff ~len:(2 * len)
              else
                Galois.Gf16.muladd_buf_v
                  tables.(i).(j)
                  ~src:dcols
                  ~soff:((j * m * 2) + (2 * lo))
                  ~dst:backing ~doff ~len:(2 * len)
          done
        done);
    (new_value, views ~n ~frag_bytes backing)
  end

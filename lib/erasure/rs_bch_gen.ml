(* Field-generic systematic Reed-Solomon with errors-and-erasures
   decoding; documented in rs_bch.mli. [Rs_bch] instantiates this at
   GF(2^8) (one-byte symbols), [Rs_bch16] at GF(2^16) (two-byte
   symbols, for code lengths beyond 255). *)

module Make (Sym : Symbol.S) = struct
  module F = Sym.F
  module Poly = Galois.Poly_gen.Make (F)

  type t = { n : int; k : int; parity_rows : F.t array array }

  exception Insufficient_fragments of { needed : int; got : int }
  exception Decode_failure of string

  (* g(x) = prod_{j=1}^{n-k} (x - alpha^j); narrow-sense BCH roots. *)
  let generator_poly ~n ~k =
    let g = ref Poly.one in
    for j = 1 to n - k do
      g := Poly.mul !g (Poly.of_list [ F.alpha_pow j; F.one ])
    done;
    !g

  (* Systematic encoding — message symbol j at coefficient x^(n-k+j),
     parity at coefficients 0 .. n-k-1 — is linear in the message, so
     parity symbol i is a fixed row of coefficients over the message:
     parity_rows.(i).(j) = coeff i of (x^(n-k+j) mod g). Precomputing
     the matrix turns per-stripe polynomial division into table-driven
     buffer sweeps. *)
  let parity_matrix ~n ~k g =
    let parity_len = n - k in
    let rems =
      Array.init k (fun j ->
          Poly.rem (Poly.monomial (parity_len + j) F.one) g)
    in
    Array.init parity_len (fun i ->
        Array.init k (fun j -> Poly.coeff rems.(j) i))

  let make ~n ~k =
    if k < 1 || k > n || n > Sym.max_n then
      invalid_arg
        (Printf.sprintf "Rs_bch.make: invalid parameters n=%d k=%d" n k);
    let generator = generator_poly ~n ~k in
    { n; k; parity_rows = parity_matrix ~n ~k generator }

  let n t = t.n
  let k t = t.k
  let bps = Sym.bytes_per_symbol

  (* dst[off, off+len) = sum_j coeffs.(j) * srcs.(j), offsets in
     symbols; tables are precomputed by the caller (required for the
     GF(2^16) instantiation, whose table cache must not be raced). *)
  let apply_row ~coeffs ~tables ~srcs ~dst ~off ~len =
    let first = ref true in
    Array.iteri
      (fun j c ->
        if not (F.is_zero c) then begin
          if !first then
            if F.equal c F.one then
              Bytes.blit srcs.(j) (bps * off) dst (bps * off) (bps * len)
            else Sym.mul_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len
          else Sym.muladd_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len;
          first := false
        end)
      coeffs;
    if !first then Bytes.fill dst (bps * off) (bps * len) '\000'

  let encode ?domains t value =
    let framed = Splitter.frame ~k:(bps * t.k) value in
    let stripes = Bytes.length framed / (bps * t.k) in
    let parity_len = t.n - t.k in
    let cols = Kernel.split_cols ~k:t.k ~bps framed in
    (* fragment parity_len + j is exactly message column j *)
    let outputs =
      Array.init t.n (fun i ->
          if i < parity_len then Bytes.create (bps * stripes)
          else cols.(i - parity_len))
    in
    let tables = Array.map (Array.map Sym.mul_table) t.parity_rows in
    Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
        for i = 0 to parity_len - 1 do
          apply_row ~coeffs:t.parity_rows.(i) ~tables:tables.(i) ~srcs:cols
            ~dst:outputs.(i) ~off:lo ~len
        done);
    Array.init t.n (fun i -> Fragment.make ~index:i ~data:outputs.(i))

  let syndromes t (received : int array) =
    let parity_len = t.n - t.k in
    Array.init parity_len (fun j ->
        (* S_{j+1} = r(alpha^{j+1}) *)
        let x = F.alpha_pow (j + 1) in
        let acc = ref F.zero in
        for i = t.n - 1 downto 0 do
          acc := F.add (F.mul !acc x) received.(i)
        done;
        !acc)

  (* Sugiyama's extended-Euclid algorithm on (x^{2t}, modified syndrome),
     stopping when 2*deg(remainder) < 2t + num_erasures. Returns
     (error locator Lambda, evaluator Omega). *)
  let sugiyama ~two_t ~num_erasures tpoly =
    let r_prev = ref (Poly.monomial two_t F.one) in
    let r_cur = ref tpoly in
    let v_prev = ref Poly.zero in
    let v_cur = ref Poly.one in
    while 2 * Poly.degree !r_cur >= two_t + num_erasures do
      let q, rem = Poly.div_mod !r_prev !r_cur in
      let v_next = Poly.sub !v_prev (Poly.mul q !v_cur) in
      r_prev := !r_cur;
      r_cur := rem;
      v_prev := !v_cur;
      v_cur := v_next
    done;
    (!v_cur, !r_cur)

  (* Correct one stripe in place. [received] has n symbols with erased
     positions set to 0. The erasure locator [gamma] and [num_erasures]
     depend only on which fragments are present, so the caller computes
     them once for all stripes. *)
  let correct_stripe t ~gamma ~num_erasures (received : int array) =
    let two_t = t.n - t.k in
    let synd = syndromes t received in
    let s_poly = Poly.of_coeffs synd in
    if not (Poly.is_zero s_poly) || num_erasures > 0 then begin
      let t_poly = Poly.truncate two_t (Poly.mul s_poly gamma) in
      let lambda, omega = sugiyama ~two_t ~num_erasures t_poly in
      if Poly.is_zero lambda || F.is_zero (Poly.coeff lambda 0) then
        raise (Decode_failure "degenerate error locator");
      let xi = Poly.mul lambda gamma in
      let xi' = Poly.derivative xi in
      (* Chien search over the code's positions; every root of Xi must
         land on a valid position, exactly deg(Xi) of them. *)
      let found = ref 0 in
      for i = 0 to t.n - 1 do
        let x_inv = F.alpha_pow (-i) in
        if F.is_zero (Poly.eval xi x_inv) then begin
          incr found;
          let denom = Poly.eval xi' x_inv in
          if F.is_zero denom then
            raise (Decode_failure "Forney denominator vanished");
          let magnitude = F.div (Poly.eval omega x_inv) denom in
          received.(i) <- F.add received.(i) magnitude
        end
      done;
      if !found <> Poly.degree xi then
        raise (Decode_failure "error locator has roots outside the code");
      (* Defensive re-check: the corrected word must be a codeword. *)
      let check = syndromes t received in
      if Array.exists (fun s -> not (F.is_zero s)) check then
        raise (Decode_failure "correction did not produce a codeword")
    end

  let decode ?domains t frags =
    let present = Array.make t.n false in
    let datas = Array.make t.n Bytes.empty in
    let count = ref 0 in
    let size = ref (-1) in
    List.iter
      (fun f ->
        let i = Fragment.index f in
        if i < 0 || i >= t.n then
          invalid_arg (Printf.sprintf "Rs_bch.decode: index %d out of range" i);
        if not present.(i) then begin
          present.(i) <- true;
          datas.(i) <- Fragment.data f;
          incr count;
          if !size < 0 then size := Bytes.length datas.(i)
          else if Bytes.length datas.(i) <> !size then
            invalid_arg "Rs_bch.decode: fragment sizes differ"
        end)
      frags;
    if !count < t.k then
      raise (Insufficient_fragments { needed = t.k; got = !count });
    if !size mod bps <> 0 then
      invalid_arg "Rs_bch.decode: fragment size not a whole symbol count";
    let stripes = !size / bps in
    let num_erasures = ref 0 in
    let gamma = ref Poly.one in
    for i = 0 to t.n - 1 do
      if not present.(i) then begin
        incr num_erasures;
        (* (1 - alpha^i x); subtraction = addition in characteristic 2. *)
        gamma := Poly.mul !gamma (Poly.of_list [ F.one; F.alpha_pow i ])
      end
    done;
    if !num_erasures > t.n - t.k then
      raise (Decode_failure "more erasures than parity symbols");
    let gamma = !gamma and num_erasures = !num_erasures in
    let framed = Bytes.create (stripes * bps * t.k) in
    (* Stripes are corrected independently, so the stripe range shards
       across domains like the matrix codecs' sweeps; each chunk owns
       its scratch word. *)
    Kernel.parallel_rows ?domains ~n:stripes (fun ~lo ~len ->
        let received = Array.make t.n 0 in
        for s = lo to lo + len - 1 do
          for i = 0 to t.n - 1 do
            received.(i) <- (if present.(i) then Sym.get datas.(i) s else 0)
          done;
          correct_stripe t ~gamma ~num_erasures received;
          for j = 0 to t.k - 1 do
            Sym.set framed ((s * t.k) + j) received.(t.n - t.k + j)
          done
        done);
    Splitter.unframe framed
end

type impl =
  | Vandermonde of Rs_vandermonde.t
  | Systematic of Rs_systematic.t
  | Bch of Rs_bch.t
  | Rs16 of Rs16.t
  | Bch16 of Rs_bch16.t
  | Replication of Replication.t

type t = { impl : impl; n : int; k : int; name : string }

exception Insufficient_fragments of { needed : int; got : int }
exception Decode_failure of string

let rs_vandermonde ~n ~k =
  { impl = Vandermonde (Rs_vandermonde.make ~n ~k);
    n;
    k;
    name = Printf.sprintf "rs-vand[%d,%d]" n k
  }

let rs_systematic ~n ~k =
  { impl = Systematic (Rs_systematic.make ~n ~k);
    n;
    k;
    name = Printf.sprintf "rs-sys[%d,%d]" n k
  }

let rs_bch ~n ~k =
  { impl = Bch (Rs_bch.make ~n ~k);
    n;
    k;
    name = Printf.sprintf "rs-bch[%d,%d]" n k
  }

let rs16 ~n ~k =
  { impl = Rs16 (Rs16.make ~n ~k); n; k; name = Printf.sprintf "rs16[%d,%d]" n k }

let rs_bch16 ~n ~k =
  { impl = Bch16 (Rs_bch16.make ~n ~k);
    n;
    k;
    name = Printf.sprintf "rs-bch16[%d,%d]" n k
  }

let replication ~n =
  { impl = Replication (Replication.make ~n);
    n;
    k = 1;
    name = Printf.sprintf "replication[%d]" n
  }

let n t = t.n
let k t = t.k
let name t = t.name

let encode ?domains t value =
  match t.impl with
  | Vandermonde c -> Rs_vandermonde.encode ?domains c value
  | Systematic c -> Rs_systematic.encode ?domains c value
  | Bch c -> Rs_bch.encode ?domains c value
  | Rs16 c -> Rs16.encode ?domains c value
  | Bch16 c -> Rs_bch16.encode ?domains c value
  | Replication c -> Replication.encode c value

let decode ?domains t frags =
  match t.impl with
  | Vandermonde c -> begin
    try Rs_vandermonde.decode ?domains c frags with
    | Rs_vandermonde.Insufficient_fragments { needed; got } ->
      raise (Insufficient_fragments { needed; got })
  end
  | Systematic c -> begin
    try Rs_systematic.decode ?domains c frags with
    | Rs_systematic.Insufficient_fragments { needed; got } ->
      raise (Insufficient_fragments { needed; got })
  end
  | Bch c -> begin
    try Rs_bch.decode ?domains c frags with
    | Rs_bch.Insufficient_fragments { needed; got } ->
      raise (Insufficient_fragments { needed; got })
    | Rs_bch.Decode_failure msg -> raise (Decode_failure msg)
  end
  | Rs16 c -> begin
    try Rs16.decode ?domains c frags with
    | Rs16.Insufficient_fragments { needed; got } ->
      raise (Insufficient_fragments { needed; got })
  end
  | Bch16 c -> begin
    try Rs_bch16.decode ?domains c frags with
    | Rs_bch16.Insufficient_fragments { needed; got } ->
      raise (Insufficient_fragments { needed; got })
    | Rs_bch16.Decode_failure msg -> raise (Decode_failure msg)
  end
  | Replication c -> begin
    try Replication.decode c frags with
    | Replication.Insufficient_fragments ->
      raise (Insufficient_fragments { needed = 1; got = 0 })
  end

let update ?domains t ~fragments ~value ~pos patch =
  match t.impl with
  | Vandermonde c ->
    Rs_vandermonde.update ?domains c ~fragments ~value ~pos patch
  | Systematic c -> Rs_systematic.update ?domains c ~fragments ~value ~pos patch
  | Rs16 c -> Rs16.update ?domains c ~fragments ~value ~pos patch
  | Replication c -> Replication.update c ~fragments ~value ~pos patch
  | Bch _ | Bch16 _ ->
    (* The BCH-form codecs run a syndrome pipeline over whole fragments;
       patching parity in place is not linear in the same sense, so fall
       back to a full re-encode of the patched value. *)
    if pos < 0 || pos + Bytes.length patch > Bytes.length value then
      invalid_arg "Mds.update: patch outside value";
    if Array.length fragments <> t.n then
      invalid_arg "Mds.update: expected n fragments";
    let new_value = Bytes.copy value in
    Bytes.blit patch 0 new_value pos (Bytes.length patch);
    (new_value, encode ?domains t new_value)

let fragment_size t ~value_len =
  match t.impl with
  | Rs16 _ | Bch16 _ ->
    (* 2-byte symbols: stripes = framed/(2k), fragment = 2 bytes/stripe *)
    2 * Splitter.fragment_size ~k:(2 * t.k) ~value_len
  | Vandermonde _ | Systematic _ | Bch _ | Replication _ ->
    Splitter.fragment_size ~k:t.k ~value_len
let storage_overhead t = float_of_int t.n /. float_of_int t.k

(* Buffer-level Reed-Solomon kernel; see kernel.mli. *)

module Gf = Galois.Gf
module Gf16 = Galois.Gf16

type table = Bytes.t
type table16 = Gf16.mul_tables

let mul_table = Gf.mul_table
let mul_buf = Gf.mul_buf
let muladd_buf = Gf.muladd_buf
let row_tables coeffs = Array.map Gf.mul_table coeffs
let row_tables16 coeffs = Array.map Gf16.mul_tables coeffs

(* ------------------------------------------------------------------ *)
(* Stripe-major <-> row-major transposition.

   The framed value interleaves the k code columns byte by byte
   (stripe s occupies framed[s*k*bps, (s+1)*k*bps)); the kernel sweeps
   want each column contiguous. bps = 1 and 2 (the two symbol widths in
   use) get dedicated loops; unsafe accesses are covered by the length
   checks at entry. *)

let split_cols ~k ~bps framed =
  if k <= 0 || bps <= 0 then invalid_arg "Kernel.split_cols: bad dimensions";
  let row_bytes = k * bps in
  let len = Bytes.length framed in
  if len mod row_bytes <> 0 then
    invalid_arg "Kernel.split_cols: buffer not a whole number of stripes";
  let stripes = len / row_bytes in
  Array.init k (fun j ->
      let col = Bytes.create (stripes * bps) in
      (match bps with
      | 1 ->
        for s = 0 to stripes - 1 do
          Bytes.unsafe_set col s (Bytes.unsafe_get framed ((s * k) + j))
        done
      | 2 ->
        for s = 0 to stripes - 1 do
          let src = 2 * ((s * k) + j) in
          Bytes.unsafe_set col (2 * s) (Bytes.unsafe_get framed src);
          Bytes.unsafe_set col ((2 * s) + 1) (Bytes.unsafe_get framed (src + 1))
        done
      | _ ->
        for s = 0 to stripes - 1 do
          Bytes.blit framed (bps * ((s * k) + j)) col (s * bps) bps
        done);
      col)

let merge_cols ~k ~bps cols =
  if k <= 0 || bps <= 0 then invalid_arg "Kernel.merge_cols: bad dimensions";
  if Array.length cols <> k then
    invalid_arg "Kernel.merge_cols: expected k column buffers";
  let col_len = Bytes.length cols.(0) in
  Array.iter
    (fun c ->
      if Bytes.length c <> col_len then
        invalid_arg "Kernel.merge_cols: ragged columns")
    cols;
  if col_len mod bps <> 0 then
    invalid_arg "Kernel.merge_cols: column not a whole number of symbols";
  let stripes = col_len / bps in
  let framed = Bytes.create (stripes * k * bps) in
  for j = 0 to k - 1 do
    let col = cols.(j) in
    match bps with
    | 1 ->
      for s = 0 to stripes - 1 do
        Bytes.unsafe_set framed ((s * k) + j) (Bytes.unsafe_get col s)
      done
    | 2 ->
      for s = 0 to stripes - 1 do
        let dst = 2 * ((s * k) + j) in
        Bytes.unsafe_set framed dst (Bytes.unsafe_get col (2 * s));
        Bytes.unsafe_set framed (dst + 1) (Bytes.unsafe_get col ((2 * s) + 1))
      done
    | _ ->
      for s = 0 to stripes - 1 do
        Bytes.blit col (s * bps) framed (bps * ((s * k) + j)) bps
      done
  done;
  framed

(* ------------------------------------------------------------------ *)
(* Row application: dst[off, off+len) = sum_j coeffs.(j) * srcs.(j).

   The naive formulation is one muladd_buf sweep per non-zero
   coefficient, but every sweep after the first re-reads and re-writes
   dst for each byte. Fusing the terms four (then two) at a time keeps
   the running XOR in a register, so an (n-k)-term row costs roughly
   one dst write per byte instead of n-k read-modify-writes. Bounds are
   validated once in [apply_row]; tables come from [Gf.mul_table] and
   are always 256 bytes. *)

let quad4 ~acc t0 s0 t1 s1 t2 s2 t3 s3 dst ~off ~len =
  for i = off to off + len - 1 do
    let p =
      Char.code (Bytes.unsafe_get t0 (Char.code (Bytes.unsafe_get s0 i)))
      lxor Char.code (Bytes.unsafe_get t1 (Char.code (Bytes.unsafe_get s1 i)))
      lxor Char.code (Bytes.unsafe_get t2 (Char.code (Bytes.unsafe_get s2 i)))
      lxor Char.code (Bytes.unsafe_get t3 (Char.code (Bytes.unsafe_get s3 i)))
    in
    let p = if acc then p lxor Char.code (Bytes.unsafe_get dst i) else p in
    Bytes.unsafe_set dst i (Char.unsafe_chr p)
  done

let dual2 ~acc t0 s0 t1 s1 dst ~off ~len =
  for i = off to off + len - 1 do
    let p =
      Char.code (Bytes.unsafe_get t0 (Char.code (Bytes.unsafe_get s0 i)))
      lxor Char.code (Bytes.unsafe_get t1 (Char.code (Bytes.unsafe_get s1 i)))
    in
    let p = if acc then p lxor Char.code (Bytes.unsafe_get dst i) else p in
    Bytes.unsafe_set dst i (Char.unsafe_chr p)
  done

let apply_row ~coeffs ~srcs ~dst ~off ~len =
  let terms = Array.length coeffs in
  if Array.length srcs <> terms then
    invalid_arg "Kernel.apply_row: coefficient/source count mismatch";
  if off < 0 || len < 0 || off + len > Bytes.length dst then
    invalid_arg "Kernel.apply_row: range outside dst";
  (* Gather the non-zero terms; their tables and bounds. *)
  let tabs = Array.make terms Bytes.empty in
  let bufs = Array.make terms Bytes.empty in
  let live = ref 0 in
  for j = 0 to terms - 1 do
    if coeffs.(j) <> Gf.zero then begin
      if off + len > Bytes.length srcs.(j) then
        invalid_arg "Kernel.apply_row: range outside src";
      tabs.(!live) <- Gf.mul_table coeffs.(j);
      bufs.(!live) <- srcs.(j);
      incr live
    end
  done;
  let live = !live in
  let j = ref 0 in
  while live - !j >= 4 do
    let b = !j in
    quad4 ~acc:(b > 0) tabs.(b) bufs.(b) tabs.(b + 1)
      bufs.(b + 1)
      tabs.(b + 2)
      bufs.(b + 2)
      tabs.(b + 3)
      bufs.(b + 3)
      dst ~off ~len;
    j := b + 4
  done;
  if live - !j >= 2 then begin
    let b = !j in
    dual2 ~acc:(b > 0) tabs.(b) bufs.(b) tabs.(b + 1) bufs.(b + 1) dst ~off
      ~len;
    j := b + 2
  end;
  if live - !j = 1 then begin
    let b = !j in
    if b > 0 then Gf.muladd_buf tabs.(b) ~src:bufs.(b) ~dst ~off ~len
    else Gf.mul_buf tabs.(b) ~src:bufs.(b) ~dst ~off ~len
  end;
  (* An all-zero row still must define the output range: dst buffers come
     from Bytes.create, whose contents are unspecified. *)
  if live = 0 then Bytes.fill dst off len '\000'

let apply_row16 ~coeffs ~tables ~srcs ~dst ~off ~len =
  let terms = Array.length coeffs in
  if Array.length srcs <> terms || Array.length tables <> terms then
    invalid_arg "Kernel.apply_row16: coefficient/table/source count mismatch";
  let first = ref true in
  for j = 0 to terms - 1 do
    let c = coeffs.(j) in
    if c <> Gf16.zero then begin
      if !first then
        if c = Gf16.one then Bytes.blit srcs.(j) (2 * off) dst (2 * off) (2 * len)
        else Gf16.mul_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len
      else Gf16.muladd_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len;
      first := false
    end
  done;
  if !first then Bytes.fill dst (2 * off) (2 * len) '\000'

(* ------------------------------------------------------------------ *)
(* Domain-parallel striping. *)

let default_min_chunk = 4096

let parallel_rows ?(domains = 1) ?(min_chunk = default_min_chunk) ~n f =
  if n < 0 then invalid_arg "Kernel.parallel_rows: negative range";
  let min_chunk = max 1 min_chunk in
  (* Never spawn a domain for less than [min_chunk] rows of work. *)
  let domains = max 1 (min domains (n / min_chunk)) in
  if n = 0 then ()
  else if domains = 1 then f ~lo:0 ~len:n
  else begin
    let chunk = (n + domains - 1) / domains in
    let failures = Array.make domains None in
    (* E1: each domain's exception is captured in [failures] and
       re-raised after the join below — nothing is swallowed. *)
    let[@lint.allow "E1"] worker d () =
      let lo = d * chunk in
      let len = min chunk (n - lo) in
      if len > 0 then
        try f ~lo ~len with e -> failures.(d) <- Some e
    in
    let spawned =
      List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) failures
  end

(* Buffer-level Reed-Solomon kernel; see kernel.mli. *)

(* U1 audit: the unchecked byte accesses in the transpose/merge loops
   run over index ranges validated once per call at the function head
   (every loop bound is derived from [k * col_len = stripes * row_bytes]
   after the explicit length checks). Build with the [soda-debug]
   profile to compile in the corresponding [assert]s; release strips
   them with [-noassert]. *)
[@@@lint.allow
  "U1: every loop bound derives from k * col_len = stripes * row_bytes \
   after the explicit length checks; soda-debug compiles in the asserts"]

module Gf = Galois.Gf
module Gf16 = Galois.Gf16

type table = Bytes.t
type table16 = Gf16.mul_tables

let mul_table = Gf.mul_table
let mul_buf = Gf.mul_buf
let muladd_buf = Gf.muladd_buf
let row_tables coeffs = Array.map Gf.mul_table coeffs
let row_tables16 coeffs = Array.map Gf16.mul_tables coeffs

type wtable = Gf.wtable
type wtable16 = Gf16.wtable

(* Zero coefficients are skipped by the row loops, so their table slot
   is never read; [wtable 0] keeps the arrays dense and is built (once,
   globally) only if a matrix actually contains a zero. *)
let row_wtables coeffs = Array.map Gf.wtable coeffs
let row_wtables16 coeffs = Array.map Gf16.wtable coeffs

(* ------------------------------------------------------------------ *)
(* Stripe-major <-> row-major transposition.

   The framed value interleaves the k code columns byte by byte
   (stripe s occupies framed[s*k*bps, (s+1)*k*bps)); the kernel sweeps
   want each column contiguous. bps = 1 and 2 (the two symbol widths in
   use) get dedicated loops; unsafe accesses are covered by the length
   checks at entry. *)

let split_cols ~k ~bps framed =
  if k <= 0 || bps <= 0 then invalid_arg "Kernel.split_cols: bad dimensions";
  let row_bytes = k * bps in
  let len = Bytes.length framed in
  if len mod row_bytes <> 0 then
    invalid_arg "Kernel.split_cols: buffer not a whole number of stripes";
  let stripes = len / row_bytes in
  Array.init k (fun j ->
      let col = Bytes.create (stripes * bps) in
      (match bps with
      | 1 ->
        for s = 0 to stripes - 1 do
          Bytes.unsafe_set col s (Bytes.unsafe_get framed ((s * k) + j))
        done
      | 2 ->
        for s = 0 to stripes - 1 do
          let src = 2 * ((s * k) + j) in
          Bytes.unsafe_set col (2 * s) (Bytes.unsafe_get framed src);
          Bytes.unsafe_set col ((2 * s) + 1) (Bytes.unsafe_get framed (src + 1))
        done
      | _ ->
        for s = 0 to stripes - 1 do
          Bytes.blit framed (bps * ((s * k) + j)) col (s * bps) bps
        done);
      col)

let merge_cols ~k ~bps cols =
  if k <= 0 || bps <= 0 then invalid_arg "Kernel.merge_cols: bad dimensions";
  if Array.length cols <> k then
    invalid_arg "Kernel.merge_cols: expected k column buffers";
  let col_len = Bytes.length cols.(0) in
  Array.iter
    (fun c ->
      if Bytes.length c <> col_len then
        invalid_arg "Kernel.merge_cols: ragged columns")
    cols;
  if col_len mod bps <> 0 then
    invalid_arg "Kernel.merge_cols: column not a whole number of symbols";
  let stripes = col_len / bps in
  let framed = Bytes.create (stripes * k * bps) in
  for j = 0 to k - 1 do
    let col = cols.(j) in
    match bps with
    | 1 ->
      for s = 0 to stripes - 1 do
        Bytes.unsafe_set framed ((s * k) + j) (Bytes.unsafe_get col s)
      done
    | 2 ->
      for s = 0 to stripes - 1 do
        let dst = 2 * ((s * k) + j) in
        Bytes.unsafe_set framed dst (Bytes.unsafe_get col (2 * s));
        Bytes.unsafe_set framed (dst + 1) (Bytes.unsafe_get col ((2 * s) + 1))
      done
    | _ ->
      for s = 0 to stripes - 1 do
        Bytes.blit col (s * bps) framed (bps * ((s * k) + j)) bps
      done
  done;
  framed

(* ------------------------------------------------------------------ *)
(* View-aware transposition: the zero-copy encode path writes all n
   fragment payloads into one backing buffer and the decode path reads
   fragment payloads in place, so the transposes below take explicit
   destination/source offsets. *)

(* Transpose [framed] into [k] columns laid out contiguously in [dst]:
   column [j] occupies [doff + j*stripes*bps, doff + (j+1)*stripes*bps).
   The systematic codecs point fragment views straight at these
   columns. *)
let split_cols_into ~k ~bps framed ~dst ~doff =
  if k <= 0 || bps <= 0 then
    invalid_arg "Kernel.split_cols_into: bad dimensions";
  let row_bytes = k * bps in
  let len = Bytes.length framed in
  if len mod row_bytes <> 0 then
    invalid_arg "Kernel.split_cols_into: buffer not a whole number of stripes";
  let stripes = len / row_bytes in
  if doff < 0 || doff + len > Bytes.length dst then
    invalid_arg "Kernel.split_cols_into: columns exceed destination";
  let col_bytes = stripes * bps in
  for j = 0 to k - 1 do
    let base = doff + (j * col_bytes) in
    match bps with
    | 1 ->
      for s = 0 to stripes - 1 do
        Bytes.unsafe_set dst (base + s) (Bytes.unsafe_get framed ((s * k) + j))
      done
    | 2 ->
      for s = 0 to stripes - 1 do
        let src = 2 * ((s * k) + j) in
        Bytes.unsafe_set dst (base + (2 * s)) (Bytes.unsafe_get framed src);
        Bytes.unsafe_set dst
          (base + (2 * s) + 1)
          (Bytes.unsafe_get framed (src + 1))
      done
    | _ ->
      for s = 0 to stripes - 1 do
        Bytes.blit framed (bps * ((s * k) + j)) dst (base + (s * bps)) bps
      done
  done

(* Interleave byte range [lo, lo + len) of the (virtual) stripe-major
   framed layout from k column views straight into [dst] at [doff]: the
   decode path uses it to materialize the value without building the
   whole framed buffer first ([lo] skips the length header, [len] stops
   before the padding). Column [j] of stripe [s] lives at byte
   [offs.(j) + s*bps .. +bps) of [bufs.(j)]. *)
let merge_cols_sub ~k ~bps ~bufs ~offs ~col_len ~lo ~len ~dst ~doff =
  if k <= 0 || bps <= 0 then invalid_arg "Kernel.merge_cols_sub: bad dimensions";
  if Array.length bufs <> k || Array.length offs <> k then
    invalid_arg "Kernel.merge_cols_sub: expected k column views";
  if col_len mod bps <> 0 then
    invalid_arg "Kernel.merge_cols_sub: column not a whole number of symbols";
  let row_bytes = k * bps in
  let total = col_len / bps * row_bytes in
  if lo < 0 || len < 0 || lo + len > total then
    invalid_arg "Kernel.merge_cols_sub: range outside the framed layout";
  if doff < 0 || doff + len > Bytes.length dst then
    invalid_arg "Kernel.merge_cols_sub: range outside dst";
  Array.iteri
    (fun j buf ->
      if offs.(j) < 0 || offs.(j) + col_len > Bytes.length buf then
        invalid_arg "Kernel.merge_cols_sub: column view outside its buffer")
    bufs;
  (* Iterate per column so each source streams sequentially. Byte [b] of
     column [j]'s stripe [s] sits at framed position
     [s*row_bytes + j*bps + b]. *)
  for j = 0 to k - 1 do
    let buf = bufs.(j) and base = offs.(j) in
    for b = 0 to bps - 1 do
      let rem = (j * bps) + b in
      (* positions p = s*row_bytes + rem within [lo, lo+len) *)
      let s0 = if lo <= rem then 0 else (lo - rem + row_bytes - 1) / row_bytes in
      let s1 =
        let hi = lo + len in
        if hi <= rem then 0 else (hi - rem + row_bytes - 1) / row_bytes
      in
      for s = s0 to s1 - 1 do
        Bytes.unsafe_set dst
          (doff + (s * row_bytes) + rem - lo)
          (Bytes.unsafe_get buf (base + (s * bps) + b))
      done
    done
  done

(* ------------------------------------------------------------------ *)
(* Row application: dst[off, off+len) = sum_j coeffs.(j) * srcs.(j).

   One word-sliced sweep per non-zero coefficient: the chunk-table
   kernels move 8 bytes per load (see Wops), which beats the old fused
   byte-table loops by ~3x even though each additional term re-reads
   dst — the sweep is memory-shaped, not table-lookup-shaped. Unit
   coefficients degrade to a blit (first term) or an 8-byte-wide xor.
   Bounds are validated by the Gf sweeps themselves. *)

let apply_row_v ~coeffs ~wtables ~srcs ~soffs ~dst ~doff ~off ~len =
  let terms = Array.length coeffs in
  if
    Array.length srcs <> terms
    || Array.length wtables <> terms
    || Array.length soffs <> terms
  then invalid_arg "Kernel.apply_row_v: coefficient/source count mismatch";
  let first = ref true in
  for j = 0 to terms - 1 do
    let c = coeffs.(j) in
    if c <> Gf.zero then begin
      let src = srcs.(j) and soff = soffs.(j) + off in
      let doff = doff + off in
      if soff + len > Bytes.length src || doff + len > Bytes.length dst then
        invalid_arg "Kernel.apply_row_v: range outside buffers";
      (if !first then
         if c = Gf.one then Bytes.blit src soff dst doff len
         else Gf.mul_buf_w wtables.(j) ~src ~soff ~dst ~doff ~len
       else if c = Gf.one then Galois.Wops.xor_into ~src ~soff ~dst ~doff ~len
       else Gf.muladd_buf_w wtables.(j) ~src ~soff ~dst ~doff ~len);
      first := false
    end
  done;
  (* An all-zero row still must define the output range: dst buffers come
     from Bytes.create, whose contents are unspecified. *)
  if !first then Bytes.fill dst (doff + off) len '\000'

(* Compatibility wrapper over the word sweeps: common offset, columns in
   separate buffers. *)
let apply_row ~coeffs ~srcs ~dst ~off ~len =
  let terms = Array.length coeffs in
  if Array.length srcs <> terms then
    invalid_arg "Kernel.apply_row: coefficient/source count mismatch";
  if off < 0 || len < 0 || off + len > Bytes.length dst then
    invalid_arg "Kernel.apply_row: range outside dst";
  let wtables = row_wtables coeffs in
  let soffs = Array.make terms 0 in
  apply_row_v ~coeffs ~wtables ~srcs ~soffs ~dst ~doff:0 ~off ~len

let apply_row16 ~coeffs ~tables ~srcs ~dst ~off ~len =
  let terms = Array.length coeffs in
  if Array.length srcs <> terms || Array.length tables <> terms then
    invalid_arg "Kernel.apply_row16: coefficient/table/source count mismatch";
  let first = ref true in
  for j = 0 to terms - 1 do
    let c = coeffs.(j) in
    if c <> Gf16.zero then begin
      if !first then
        if c = Gf16.one then Bytes.blit srcs.(j) (2 * off) dst (2 * off) (2 * len)
        else Gf16.mul_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len
      else Gf16.muladd_buf tables.(j) ~src:srcs.(j) ~dst ~off ~len;
      first := false
    end
  done;
  if !first then Bytes.fill dst (2 * off) (2 * len) '\000'

(* GF(2^16) view row application, split-table flavour: byte offsets and
   lengths (even), arbitrary per-source and destination offsets. Used
   where coefficients are one-shot (decode submatrices on small
   fragments) so a chunk-table build would not amortize. *)
let apply_row16_v ~coeffs ~tables ~srcs ~soffs ~dst ~doff ~off ~len =
  let terms = Array.length coeffs in
  if
    Array.length srcs <> terms
    || Array.length tables <> terms
    || Array.length soffs <> terms
  then invalid_arg "Kernel.apply_row16_v: coefficient/source count mismatch";
  let first = ref true in
  for j = 0 to terms - 1 do
    let c = coeffs.(j) in
    if c <> Gf16.zero then begin
      let src = srcs.(j) and soff = soffs.(j) + off in
      let doff = doff + off in
      if !first then
        if c = Gf16.one then begin
          if
            soff < 0 || len < 0
            || soff + len > Bytes.length src
            || doff + len > Bytes.length dst
          then invalid_arg "Kernel.apply_row16_v: range outside buffers";
          Bytes.blit src soff dst doff len
        end
        else Gf16.mul_buf_v tables.(j) ~src ~soff ~dst ~doff ~len
      else if c = Gf16.one then Galois.Wops.xor_into ~src ~soff ~dst ~doff ~len
      else Gf16.muladd_buf_v tables.(j) ~src ~soff ~dst ~doff ~len;
      first := false
    end
  done;
  if !first then Bytes.fill dst (doff + off) len '\000'

(* Word-sliced flavour of the same: chunk tables, 8 bytes per load.
   Used where coefficients are reused across many sweeps (generator
   rows, big decodes). *)
let apply_row16_w ~coeffs ~wtables ~srcs ~soffs ~dst ~doff ~off ~len =
  let terms = Array.length coeffs in
  if
    Array.length srcs <> terms
    || Array.length wtables <> terms
    || Array.length soffs <> terms
  then invalid_arg "Kernel.apply_row16_w: coefficient/source count mismatch";
  let first = ref true in
  for j = 0 to terms - 1 do
    let c = coeffs.(j) in
    if c <> Gf16.zero then begin
      let src = srcs.(j) and soff = soffs.(j) + off in
      let doff = doff + off in
      if !first then
        if c = Gf16.one then begin
          if
            soff < 0 || len < 0
            || soff + len > Bytes.length src
            || doff + len > Bytes.length dst
          then invalid_arg "Kernel.apply_row16_w: range outside buffers";
          Bytes.blit src soff dst doff len
        end
        else Gf16.mul_buf_w wtables.(j) ~src ~soff ~dst ~doff ~len
      else if c = Gf16.one then Galois.Wops.xor_into ~src ~soff ~dst ~doff ~len
      else Gf16.muladd_buf_w wtables.(j) ~src ~soff ~dst ~doff ~len;
      first := false
    end
  done;
  if !first then Bytes.fill dst (doff + off) len '\000'

(* ------------------------------------------------------------------ *)
(* Domain-parallel striping. *)

let default_min_chunk = 4096

let parallel_rows ?(domains = 1) ?(min_chunk = default_min_chunk) ~n f =
  if n < 0 then invalid_arg "Kernel.parallel_rows: negative range";
  let min_chunk = max 1 min_chunk in
  (* Never spawn a domain for less than [min_chunk] rows of work. *)
  let domains = max 1 (min domains (n / min_chunk)) in
  if n = 0 then ()
  else if domains = 1 then f ~lo:0 ~len:n
  else begin
    let chunk = (n + domains - 1) / domains in
    let failures = Array.make domains None in
    (* E1: each domain's exception is captured in [failures] and
       re-raised after the join below — nothing is swallowed. *)
    let[@lint.allow
         "E1: the catch-all transports the exception to the joining \
          domain, where it is rethrown — nothing is swallowed"] worker d () =
      let lo = d * chunk in
      let len = min chunk (n - lo) in
      if len > 0 then
        try f ~lo ~len with e -> failures.(d) <- Some e
    in
    let spawned =
      List.init (domains - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join spawned;
    Array.iter (function Some e -> raise e | None -> ()) failures
  end

type pid = int

(* ------------------------------------------------------------------ *)
(* Queue representation.

   The hot path of a simulation is send -> push -> pop -> dispatch, so
   queued events are not represented as a variant (the previous
   [Deliver of {src; dst; msg}] cost one 4-word block per send). The
   event kind and the endpoint pids are packed into the event queue's
   unboxed tag word, and the queue's payload slot carries the message
   (or the local action's closure) directly:

     bits 0-3   kind (k_* below)
     bits 4-23  src pid (deliver/data/ack/rexmit) / owner pid (local,
                injected, control)
     bits 24-43 dst pid (deliver/data/ack/rexmit only)
     bits 44-62 channel sequence number (data/ack/rexmit only)

   The payload is an [Obj.t] whose real type is determined by the kind:

     k_deliver / k_data -> 'msg
     k_data_cum -> cum_box (mutable piggybacked cumulative ack + 'msg)
     k_local    -> unit -> unit
     k_injected -> 'msg context -> unit
     k_control  -> unit -> unit (fault-plane transitions)
     k_crash / k_restore / k_ack / k_rexmit / k_ack_timer
                -> unit (a dummy immediate)

   The packing caps pids at 2^20 - 1 ([reserve] enforces it) and
   reliable-channel sequence numbers at 2^19 - 1 per directed link
   ([Channel.alloc_seq] enforces it). Pushes and pops are consistent by
   construction ([dispatch] is the only reader), so the [Obj.obj] casts
   below never see a payload of the wrong type. *)

let k_deliver = 0
let k_local = 1
let k_injected = 2
let k_crash = 3
let k_restore = 4
let k_control = 5
let k_data = 6
let k_ack = 7
let k_rexmit = 8
let k_data_cum = 9
let k_ack_timer = 10

let max_pid = 0xFFFFF

let pack ~kind ~a ~b = kind lor (a lsl 4) lor (b lsl 24)
let pack_seq ~kind ~a ~b ~seq = pack ~kind ~a ~b lor (seq lsl 44)
let tag_kind tag = tag land 15
let tag_a tag = (tag lsr 4) land max_pid
let tag_b tag = (tag lsr 24) land max_pid
let tag_seq tag = (tag lsr 44) land Channel.max_seq

let obj_unit = Obj.repr 0

let dk_constant = 0
let dk_uniform = 1
let dk_exponential = 2
let dk_dynamic = 3

(* Cumulative-ack mode ships data packets in a mutable box so the
   piggybacked cumulative ack can be refreshed at every physical
   transmission (first copy, duplicate, retransmission) without
   re-registering the pending entry. *)
type cum_box = { mutable bx_cum : int; bx_msg : Obj.t }

(* Observation-only tap for payload-aware trace tooling (bin/replay):
   called at protocol deliveries and ack transmissions. Installing one
   draws no randomness and schedules nothing, so it cannot perturb the
   execution it observes. *)
type 'msg tap = {
  tap_deliver : time:float -> src:pid -> dst:pid -> 'msg -> unit;
  tap_ack :
    time:float -> src:pid -> dst:pid -> cumulative:bool -> seq:int -> unit
}

type 'msg process_slot = {
  name : string;
  mutable handler : ('msg context -> src:pid -> 'msg -> unit) option;
  mutable crashed : bool;
  (* one context per process, allocated at registration, so dispatch
     reuses it instead of allocating one per delivered event *)
  mutable ctx : 'msg context option
}

and 'msg t = {
  mutable processes : 'msg process_slot array;
  mutable nprocs : int;
  queue : Obj.t Event_queue.t;
  root_rng : Rng.t;
  net_rng : Rng.t;
  delay : Delay.t;
  (* the delay distribution, pre-classified so [send] can sample with
     local float arithmetic instead of calling [Delay.draw] (which,
     without flambda, boxes every intermediate float on the hottest
     path of the simulator) *)
  delay_kind : int;  (* dk_* below *)
  delay_a : float;  (* constant value / lo / mean *)
  delay_b : float;  (* hi / cap *)
  duplication : float;
  faults : Link_faults.t;
  (* the reliable-channel substrate, or [None] for the raw transport;
     classified once at creation so the send hot path pays a single
     immediate comparison *)
  channel : Channel.t option;
  (* cumulative-ack quiet window when the channel config asks for
     `Cumulative, or -1.0 for immediate acks / raw transport; a float
     comparison keeps the mode test off the allocation paths *)
  ack_quiet : float;
  (* protocol-supplied data/metadata discriminator; when absent the
     data/meta counters stay at zero *)
  classify : ('msg -> bool) option;
  (* protocol-supplied logical-units weigher: how many standalone
     messages one wire frame replaces (batches, envelopes); when absent
     the payload-units counter stays at zero *)
  weigh : ('msg -> int) option;
  (* simulated time, in a one-slot float array so per-event clock
     updates store unboxed (a [mutable float] field of this mixed
     record would box on every store) *)
  clock : float array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable executed : int;
  mutable data_sent : int;
  mutable meta_sent : int;
  mutable payload_units : int;
  mutable acks_sent : int;
  mutable tap : 'msg tap option;
  trace_enabled : bool;
  mutable trace : event array;
  mutable trace_len : int
}

and 'msg context = { engine : 'msg t; ctx_self : pid }

and event =
  | Sent of { time : float; src : pid; dst : pid }
  | Delivered of { time : float; src : pid; dst : pid }
  | Dropped of { time : float; src : pid; dst : pid }
  | Lost of { time : float; src : pid; dst : pid }
  | Crashed of { time : float; pid : pid }
  | Restored of { time : float; pid : pid }
  | PartitionStart of { time : float; links : (pid * pid) list }
  | PartitionHeal of { time : float; links : (pid * pid) list }
  | Suspect of { time : float; by : pid; target : pid }
  | ScrubHit of { time : float; pid : pid }
  | AutoRepairStart of { time : float; pid : pid }
  | Healed of { time : float; pid : pid }

exception Event_limit_exceeded of int

let create ?(seed = 0) ?(trace = false) ?(duplication = 0.0)
    ?(transport = `Raw) ?classify ?weigh ~delay () =
  if duplication < 0.0 || duplication >= 1.0 then
    invalid_arg "Engine.create: duplication must be in [0, 1)";
  let root_rng = Rng.create seed in
  let delay_kind, delay_a, delay_b =
    match Delay.shape delay with
    | Delay.Constant_delay d -> (dk_constant, Float.max Delay.epsilon d, 0.0)
    | Delay.Uniform_delay { lo; hi } -> (dk_uniform, lo, hi)
    | Delay.Exponential_delay { mean; cap } -> (dk_exponential, mean, cap)
    | Delay.Dynamic_delay -> (dk_dynamic, 0.0, 0.0)
  in
  let channel =
    match transport with
    | `Raw -> None
    | `Reliable config -> Some (Channel.create config)
  in
  let ack_quiet =
    match transport with
    | `Reliable { Channel.ack = `Cumulative quiet; _ } -> quiet
    | `Reliable _ | `Raw -> -1.0
  in
  { processes = [||];
    nprocs = 0;
    queue = Event_queue.create ();
    net_rng = Rng.split root_rng;
    root_rng;
    delay;
    delay_kind;
    delay_a;
    delay_b;
    duplication;
    faults = Link_faults.create ();
    channel;
    ack_quiet;
    classify;
    weigh;
    clock = [| 0.0 |];
    sent = 0;
    delivered = 0;
    dropped = 0;
    lost = 0;
    duplicated = 0;
    executed = 0;
    data_sent = 0;
    meta_sent = 0;
    payload_units = 0;
    acks_sent = 0;
    tap = None;
    trace_enabled = trace;
    trace = [||];
    trace_len = 0
  }

let record t ev =
  if t.trace_enabled then begin
    if t.trace_len >= Array.length t.trace then begin
      let cap = max 256 (2 * Array.length t.trace) in
      let fresh = Array.make cap ev in
      Array.blit t.trace 0 fresh 0 t.trace_len;
      t.trace <- fresh
    end;
    t.trace.(t.trace_len) <- ev;
    t.trace_len <- t.trace_len + 1
  end

let check_pid t pid ~where =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "%s: unknown pid %d" where pid)

let reserve t ~name =
  if t.nprocs > max_pid then invalid_arg "Engine.reserve: too many processes";
  if t.nprocs >= Array.length t.processes then begin
    let cap = max 8 (2 * Array.length t.processes) in
    let slot = { name = ""; handler = None; crashed = false; ctx = None } in
    let fresh = Array.make cap slot in
    Array.blit t.processes 0 fresh 0 t.nprocs;
    t.processes <- fresh
  end;
  let pid = t.nprocs in
  let slot = { name; handler = None; crashed = false; ctx = None } in
  slot.ctx <- Some { engine = t; ctx_self = pid };
  t.processes.(pid) <- slot;
  t.nprocs <- t.nprocs + 1;
  pid

let ctx_of slot =
  match slot.ctx with Some ctx -> ctx | None -> assert false

let set_handler t pid handler =
  check_pid t pid ~where:"Engine.set_handler";
  match t.processes.(pid).handler with
  | Some _ -> invalid_arg "Engine.set_handler: handler already installed"
  | None -> t.processes.(pid).handler <- Some handler

let set_tap t tap = t.tap <- Some tap

let process_count t = t.nprocs

let name_of t pid =
  check_pid t pid ~where:"Engine.name_of";
  t.processes.(pid).name

let self ctx = ctx.ctx_self
let now t = t.clock.(0)
let now_ctx ctx = ctx.engine.clock.(0)
let rng t = t.root_rng
let rng_ctx ctx = ctx.engine.root_rng

(* Healing-plane trace marks. Pure observations: they only append to the
   trace (when tracing is on), never schedule or perturb events, so a
   protocol layer may call them freely without affecting determinism. *)
let mark_suspect ctx ~target =
  let t = ctx.engine in
  record t (Suspect { time = t.clock.(0); by = ctx.ctx_self; target })

let mark_scrub_hit ctx =
  let t = ctx.engine in
  record t (ScrubHit { time = t.clock.(0); pid = ctx.ctx_self })

let mark_healed ctx =
  let t = ctx.engine in
  record t (Healed { time = t.clock.(0); pid = ctx.ctx_self })

let mark_auto_repair t pid =
  record t (AutoRepairStart { time = t.clock.(0); pid })

(* ------------------------------------------------------------------ *)
(* Fault plane *)

let faults t = t.faults

let set_loss t p = Link_faults.set_default_drop t.faults p

let set_link_loss t ~src ~dst p =
  check_pid t src ~where:"Engine.set_link_loss";
  check_pid t dst ~where:"Engine.set_link_loss";
  Link_faults.set_drop t.faults ~src ~dst p

let check_links t links ~where =
  List.iter
    (fun (a, b) ->
      check_pid t a ~where;
      check_pid t b ~where)
    links

let push_control t ~at action =
  Event_queue.push_tagged t.queue ~time:(Float.max at t.clock.(0))
    ~tag:(pack ~kind:k_control ~a:0 ~b:0)
    (Obj.repr (action : unit -> unit))

let partition_at t ~links ~at =
  check_links t links ~where:"Engine.partition_at";
  push_control t ~at (fun () ->
      Link_faults.cut_links t.faults links;
      record t (PartitionStart { time = t.clock.(0); links }))

let heal_at t ~links ~at =
  check_links t links ~where:"Engine.heal_at";
  push_control t ~at (fun () ->
      Link_faults.heal_links t.faults links;
      record t (PartitionHeal { time = t.clock.(0); links }))

let delay_spike t ~links ~factor ~from_ ~until_ =
  check_links t links ~where:"Engine.delay_spike";
  if not (factor > 0.0) then
    invalid_arg "Engine.delay_spike: non-positive factor";
  if until_ < from_ then invalid_arg "Engine.delay_spike: until_ < from_";
  push_control t ~at:from_ (fun () ->
      Link_faults.spike_links t.faults links ~factor);
  push_control t ~at:until_ (fun () ->
      Link_faults.unspike_links t.faults links ~factor)

(* Loss verdict for one physical transmission entering link src->dst.
   Only meaningful when the plane is armed; the caller guards, so the
   unarmed hot path never touches the hashtables (or the rng). *)
let faults_lose t ~src ~dst =
  Link_faults.partitioned t.faults ~src ~dst
  ||
  let p = Link_faults.drop_p t.faults ~src ~dst in
  p > 0.0 && Rng.float t.net_rng 1.0 < p

(* ------------------------------------------------------------------ *)
(* Send paths *)

(* Raw transport over an armed fault plane: the cold variant of the
   inline fast path below, sharing its counters and trace discipline. *)
let send_raw_faulty t ~src ~dst msg =
  t.sent <- t.sent + 1;
  if t.trace_enabled then record t (Sent { time = t.clock.(0); src; dst });
  if faults_lose t ~src ~dst then begin
    t.lost <- t.lost + 1;
    if t.trace_enabled then record t (Lost { time = t.clock.(0); src; dst })
  end
  else begin
    let transit =
      Delay.draw t.delay t.net_rng ~src ~dst
      *. Link_faults.delay_factor t.faults ~src ~dst
    in
    (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit;
    Event_queue.push_inbox t.queue
      ~tag:(pack ~kind:k_deliver ~a:src ~b:dst)
      (Obj.repr msg)
  end

(* One physical transmission of a reliable-channel data packet (first
   copy, duplicate, or retransmission): subject to the fault plane like
   any raw send, and traced as an ordinary [Sent]. [kind] is [k_data]
   (immediate acks) or [k_data_cum] (payload is a {!cum_box}). *)
let transmit_data t ~kind ~src ~dst ~seq payload =
  t.sent <- t.sent + 1;
  if t.trace_enabled then record t (Sent { time = t.clock.(0); src; dst });
  if Link_faults.armed t.faults && faults_lose t ~src ~dst then begin
    t.lost <- t.lost + 1;
    if t.trace_enabled then record t (Lost { time = t.clock.(0); src; dst })
  end
  else begin
    let transit =
      Delay.draw t.delay t.net_rng ~src ~dst
      *. Link_faults.delay_factor t.faults ~src ~dst
    in
    (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit;
    Event_queue.push_inbox t.queue ~tag:(pack_seq ~kind ~a:src ~b:dst ~seq)
      payload
  end

(* Acks travel dst -> src but their tag keeps the data direction so the
   sender side can find its pending entry without unpacking a payload. *)
let transmit_ack t ~src ~dst ~seq =
  t.sent <- t.sent + 1;
  t.acks_sent <- t.acks_sent + 1;
  (match t.tap with
  | Some tap ->
    tap.tap_ack ~time:t.clock.(0) ~src ~dst
      ~cumulative:(t.ack_quiet >= 0.0) ~seq
  | None -> ());
  if t.trace_enabled then
    record t (Sent { time = t.clock.(0); src = dst; dst = src });
  if Link_faults.armed t.faults && faults_lose t ~src:dst ~dst:src then begin
    t.lost <- t.lost + 1;
    if t.trace_enabled then
      record t (Lost { time = t.clock.(0); src = dst; dst = src })
  end
  else begin
    let transit =
      Delay.draw t.delay t.net_rng ~src:dst ~dst:src
      *. Link_faults.delay_factor t.faults ~src:dst ~dst:src
    in
    (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit;
    Event_queue.push_inbox t.queue
      ~tag:(pack_seq ~kind:k_ack ~a:src ~b:dst ~seq)
      obj_unit
  end

let schedule_rexmit t ch ~src ~dst ~seq ~rto =
  let cfg = Channel.config ch in
  let jitter =
    if cfg.Channel.jitter > 0.0 then
      rto *. cfg.Channel.jitter *. Rng.float t.net_rng 1.0
    else 0.0
  in
  Event_queue.push_tagged t.queue
    ~time:(t.clock.(0) +. rto +. jitter)
    ~tag:(pack_seq ~kind:k_rexmit ~a:src ~b:dst ~seq)
    obj_unit

let send_reliable t ch ~src ~dst msg =
  let seq = Channel.alloc_seq ch ~src ~dst in
  if t.ack_quiet >= 0.0 then begin
    (* cumulative mode: box the message so every physical copy of this
       packet carries the freshest ack for the reverse link *)
    let box = { bx_cum = -1; bx_msg = Obj.repr msg } in
    let payload = Obj.repr box in
    let rto = Channel.register ch ~src ~dst ~seq payload in
    box.bx_cum <- Channel.piggyback_ack ch ~src:dst ~dst:src;
    transmit_data t ~kind:k_data_cum ~src ~dst ~seq payload;
    if t.duplication > 0.0 && Rng.float t.net_rng 1.0 < t.duplication then begin
      t.duplicated <- t.duplicated + 1;
      transmit_data t ~kind:k_data_cum ~src ~dst ~seq payload
    end;
    schedule_rexmit t ch ~src ~dst ~seq ~rto
  end
  else begin
    let payload = Obj.repr msg in
    let rto = Channel.register ch ~src ~dst ~seq payload in
    transmit_data t ~kind:k_data ~src ~dst ~seq payload;
    (* at-least-once physical channels: the first copy may be duplicated;
       the receiver-side dedup absorbs it like any retransmission *)
    if t.duplication > 0.0 && Rng.float t.net_rng 1.0 < t.duplication then begin
      t.duplicated <- t.duplicated + 1;
      transmit_data t ~kind:k_data ~src ~dst ~seq payload
    end;
    schedule_rexmit t ch ~src ~dst ~seq ~rto
  end

let classify_send t msg =
  (match t.classify with
  | None -> ()
  | Some is_data ->
    if is_data msg then t.data_sent <- t.data_sent + 1
    else t.meta_sent <- t.meta_sent + 1);
  match t.weigh with
  | None -> ()
  | Some units -> t.payload_units <- t.payload_units + units msg

let send ctx ~dst msg =
  let t = ctx.engine in
  check_pid t dst ~where:"Engine.send";
  classify_send t msg;
  let src = ctx.ctx_self in
  match t.channel with
  | Some ch -> send_reliable t ch ~src ~dst msg
  | None ->
    if Link_faults.armed t.faults then send_raw_faulty t ~src ~dst msg
    else begin
      (* The transit sampling below is [Delay.draw] with bit-identical
         arithmetic, specialised on the pre-classified distribution so
         every intermediate float stays in a register (a [Delay.draw]
         call boxes each one: [Rng.float], the exponential's [u], its
         result, the draw). [dk_dynamic] keeps the general path. *)
      let transit =
        let k = t.delay_kind in
        if k = dk_constant then t.delay_a
        else if k = dk_exponential then begin
          let u =
            float_of_int (Rng.bits t.net_rng land 0x1FFFFFFFFFFFFF)
            /. 9007199254740992.0 *. 1.0
          in
          let u = if u <= 0. then 1e-300 else u in
          let d = -.t.delay_a *. log u in
          let d = if d > t.delay_b then t.delay_b else d in
          if d < Delay.epsilon then Delay.epsilon else d
        end
        else if k = dk_uniform then begin
          let d =
            t.delay_a
            +. float_of_int (Rng.bits t.net_rng land 0x1FFFFFFFFFFFFF)
               /. 9007199254740992.0
               *. (t.delay_b -. t.delay_a)
          in
          if d < Delay.epsilon then Delay.epsilon else d
        end
        else Delay.draw t.delay t.net_rng ~src ~dst
      in
      t.sent <- t.sent + 1;
      if t.trace_enabled then record t (Sent { time = t.clock.(0); src; dst });
      let tag = pack ~kind:k_deliver ~a:src ~b:dst in
      (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit;
      Event_queue.push_inbox t.queue ~tag (Obj.repr msg);
      (* at-least-once channels: optionally deliver a duplicate copy at an
         independent delay (counted as its own send so traces stay
         coherent) *)
      if t.duplication > 0.0 && Rng.float t.net_rng 1.0 < t.duplication then begin
        let transit' = Delay.draw t.delay t.net_rng ~src ~dst in
        t.sent <- t.sent + 1;
        t.duplicated <- t.duplicated + 1;
        if t.trace_enabled then
          record t (Sent { time = t.clock.(0); src; dst });
        (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit';
        Event_queue.push_inbox t.queue ~tag (Obj.repr msg)
      end
    end

let schedule_local ctx ~delay action =
  let t = ctx.engine in
  if delay < 0. then invalid_arg "Engine.schedule_local: negative delay";
  (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. delay;
  Event_queue.push_inbox t.queue
    ~tag:(pack ~kind:k_local ~a:ctx.ctx_self ~b:0)
    (Obj.repr action)

let inject t ~at pid action =
  check_pid t pid ~where:"Engine.inject";
  let time = Float.max at t.clock.(0) in
  Event_queue.push_tagged t.queue ~time
    ~tag:(pack ~kind:k_injected ~a:pid ~b:0)
    (Obj.repr action)

let crash_at t pid at =
  check_pid t pid ~where:"Engine.crash_at";
  Event_queue.push_tagged t.queue ~time:(Float.max at t.clock.(0))
    ~tag:(pack ~kind:k_crash ~a:pid ~b:0)
    obj_unit

let restore_at t pid at =
  check_pid t pid ~where:"Engine.restore_at";
  Event_queue.push_tagged t.queue ~time:(Float.max at t.clock.(0))
    ~tag:(pack ~kind:k_restore ~a:pid ~b:0)
    obj_unit

let is_crashed t pid =
  check_pid t pid ~where:"Engine.is_crashed";
  t.processes.(pid).crashed

let channel_exn t =
  match t.channel with Some ch -> ch | None -> assert false

let dispatch t tag payload =
  t.executed <- t.executed + 1;
  let kind = tag_kind tag in
  if kind = k_deliver then begin
    let src = tag_a tag and dst = tag_b tag in
    let slot = t.processes.(dst) in
    if slot.crashed then begin
      t.dropped <- t.dropped + 1;
      if t.trace_enabled then record t (Dropped { time = t.clock.(0); src; dst })
    end
    else
      match slot.handler with
      | None ->
        t.dropped <- t.dropped + 1;
        if t.trace_enabled then
          record t (Dropped { time = t.clock.(0); src; dst })
      | Some handler ->
        t.delivered <- t.delivered + 1;
        if t.trace_enabled then
          record t (Delivered { time = t.clock.(0); src; dst });
        (match t.tap with
        | Some tap ->
          tap.tap_deliver ~time:t.clock.(0) ~src ~dst (Obj.obj payload : _)
        | None -> ());
        handler (ctx_of slot) ~src (Obj.obj payload : _)
  end
  else if kind = k_local then begin
    let owner = tag_a tag in
    if not t.processes.(owner).crashed then
      (Obj.obj payload : unit -> unit) ()
  end
  else if kind = k_injected then begin
    let owner = tag_a tag in
    let slot = t.processes.(owner) in
    if not slot.crashed then
      (Obj.obj payload : _ context -> unit) (ctx_of slot)
  end
  else if kind = k_crash then begin
    let pid = tag_a tag in
    if not t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- true;
      record t (Crashed { time = t.clock.(0); pid })
    end
  end
  else if kind = k_restore then begin
    let pid = tag_a tag in
    if t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- false;
      record t (Restored { time = t.clock.(0); pid })
    end
  end
  else if kind = k_control then (Obj.obj payload : unit -> unit) ()
  else if kind = k_data then begin
    (* a reliable-channel data packet arrived at dst *)
    let src = tag_a tag and dst = tag_b tag and seq = tag_seq tag in
    let slot = t.processes.(dst) in
    match slot.handler with
    | Some handler when not slot.crashed ->
      if t.trace_enabled then
        record t (Delivered { time = t.clock.(0); src; dst });
      let ch = channel_exn t in
      (* ack before running the handler so the ack's delay draw is not
         interleaved with the handler's own sends *)
      transmit_ack t ~src ~dst ~seq;
      (match Channel.receive ch ~src ~dst ~seq with
      | `Duplicate -> ()
      | `Fresh ->
        t.delivered <- t.delivered + 1;
        (match t.tap with
        | Some tap ->
          tap.tap_deliver ~time:t.clock.(0) ~src ~dst (Obj.obj payload : _)
        | None -> ());
        handler (ctx_of slot) ~src (Obj.obj payload : _))
    | Some _ | None ->
      (* no ack: the sender's retransmissions keep probing, so a message
         in flight to a crashed-then-restored process is eventually
         delivered — the channel rides out the crash window *)
      t.dropped <- t.dropped + 1;
      if t.trace_enabled then record t (Dropped { time = t.clock.(0); src; dst })
  end
  else if kind = k_ack then begin
    (* tag holds the data direction: the ack physically arrives at src *)
    let src = tag_a tag and dst = tag_b tag and seq = tag_seq tag in
    if t.processes.(src).crashed then begin
      t.dropped <- t.dropped + 1;
      if t.trace_enabled then
        record t (Dropped { time = t.clock.(0); src = dst; dst = src })
    end
    else if t.trace_enabled then
      record t (Delivered { time = t.clock.(0); src = dst; dst = src });
    (* discharge the pending entry even if the sender is crashed: the
       channel state lives in the network interface, not in the
       process's volatile memory *)
    if t.ack_quiet >= 0.0 then
      (* cumulative ack: seq is the highest contiguous arrival *)
      Channel.ack_up_to (channel_exn t) ~src ~dst ~upto:seq
    else Channel.ack (channel_exn t) ~src ~dst ~seq
  end
  else if kind = k_data_cum then begin
    (* a cumulative-mode data packet arrived at dst *)
    let src = tag_a tag and dst = tag_b tag and seq = tag_seq tag in
    let ch = channel_exn t in
    let box = (Obj.obj payload : cum_box) in
    (* the piggybacked ack discharges the reverse link's pending sends
       even when dst is crashed — like k_ack, it is NIC-level state *)
    if box.bx_cum >= 0 then
      Channel.ack_up_to ch ~src:dst ~dst:src ~upto:box.bx_cum;
    let slot = t.processes.(dst) in
    match slot.handler with
    | Some handler when not slot.crashed ->
      if t.trace_enabled then
        record t (Delivered { time = t.clock.(0); src; dst });
      let verdict = Channel.receive_cum ch ~src ~dst ~seq in
      (* receive_cum marked the link ack-pending; make sure a quiet-window
         timer is ticking so the ack eventually leaves even if no reverse
         traffic picks it up *)
      if Channel.arm_ack_timer ch ~src ~dst then
        Event_queue.push_tagged t.queue
          ~time:(t.clock.(0) +. t.ack_quiet)
          ~tag:(pack ~kind:k_ack_timer ~a:src ~b:dst)
          obj_unit;
      (match verdict with
      | `Duplicate -> ()
      | `Fresh ->
        t.delivered <- t.delivered + 1;
        (match t.tap with
        | Some tap ->
          tap.tap_deliver ~time:t.clock.(0) ~src ~dst (Obj.obj box.bx_msg : _)
        | None -> ());
        handler (ctx_of slot) ~src (Obj.obj box.bx_msg : _))
    | Some _ | None ->
      (* no receive, no ack state: the sender's retransmissions keep
         probing through the crash window *)
      t.dropped <- t.dropped + 1;
      if t.trace_enabled then record t (Dropped { time = t.clock.(0); src; dst })
  end
  else if kind = k_ack_timer then begin
    (* quiet-window expiry for the directed data link src -> dst *)
    let src = tag_a tag and dst = tag_b tag in
    match Channel.take_ack (channel_exn t) ~src ~dst with
    | Some cum -> transmit_ack t ~src ~dst ~seq:cum
    | None -> ()
  end
  else begin
    (* k_rexmit: retransmission timer *)
    let src = tag_a tag and dst = tag_b tag and seq = tag_seq tag in
    let ch = channel_exn t in
    match Channel.on_timer ch ~src ~dst ~seq with
    | `Done | `Give_up -> ()
    | `Retransmit (payload, rto) ->
      if t.ack_quiet >= 0.0 then begin
        let box = (Obj.obj payload : cum_box) in
        box.bx_cum <- Channel.piggyback_ack ch ~src:dst ~dst:src;
        transmit_data t ~kind:k_data_cum ~src ~dst ~seq payload
      end
      else transmit_data t ~kind:k_data ~src ~dst ~seq payload;
      schedule_rexmit t ch ~src ~dst ~seq ~rto
  end

let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let time = (Event_queue.unsafe_times t.queue).(0) in
    let tag = Event_queue.next_tag t.queue in
    let payload = Event_queue.pop_exn t.queue in
    (* The clock never runs backwards even if events were pushed with
       stale timestamps. *)
    if time > t.clock.(0) then t.clock.(0) <- time;
    dispatch t tag payload;
    true
  end

let run ?until ?(max_events = 10_000_000) t =
  let executed = ref 0 in
  let continue = ref true in
  let queue = t.queue in
  let clock = t.clock in
  (* hoist the horizon out of the option so the per-event check is one
     float comparison instead of a pattern match *)
  let horizon = match until with Some h -> h | None -> Float.infinity in
  while !continue do
    (* [size]/[unsafe_times]/[unsafe_tags] are single-field reads; the
       arrays must be re-fetched every iteration because a push from a
       handler may have grown (replaced) them. *)
    let n = Event_queue.size queue in
    if n = 0 then continue := false
    else begin
      let times = Event_queue.unsafe_times queue in
      (* indices 0..2 are guarded by [n]; unsafe to keep the per-event
         path at one branch per load *)
      let time = (Array.unsafe_get
 [@lint.allow "U1: indices 0..2 are guarded by the n checks around them"]) times 0 in
      if time > horizon then continue := false
      else begin
        if
          n < 2
          || ((Array.unsafe_get
 [@lint.allow "U1: indices 0..2 are guarded by the n checks around them"]) times 1 <> time
             && (n < 3 || (Array.unsafe_get
 [@lint.allow "U1: indices 0..2 are guarded by the n checks around them"]) times 2 <> time))
        then begin
          (* Untied minimum (the common case under continuous random
             delays — in a heap the only candidates for a second copy
             of the minimum are the root's children): the plain pop
             path. The cohort machinery below would buffer and re-read
             a cohort of one — measurably slower without cross-module
             inlining. *)
          incr executed;
          if !executed > max_events then raise (Event_limit_exceeded max_events);
          let tag = (Event_queue.unsafe_tags queue).(0) in
          let payload = Event_queue.pop_exn queue in
          if time > clock.(0) then clock.(0) <- time;
          dispatch t tag payload
        end
        else begin
        (* Drain the whole cohort of events stamped [time] in one heap
           operation, then dispatch them in FIFO order. The clock moves
           once per cohort. Event order is identical to popping one at
           a time: events pushed during the cohort carry later sequence
           numbers than every drained member, and the guard below
           replays the one case where per-pop order would differ — a
           handler pushing an event timestamped {e earlier} than the
           cohort being dispatched. *)
        let cohort = Event_queue.drain_cohort t.queue in
        if time > t.clock.(0) then t.clock.(0) <- time;
        for i = 0 to cohort - 1 do
          while
            (not (Event_queue.is_empty t.queue))
            && (Event_queue.unsafe_times t.queue).(0) < time
          do
            incr executed;
            if !executed > max_events then
              raise (Event_limit_exceeded max_events);
            let tag = Event_queue.next_tag t.queue in
            let payload = Event_queue.pop_exn t.queue in
            dispatch t tag payload
          done;
          incr executed;
          if !executed > max_events then raise (Event_limit_exceeded max_events);
          dispatch t
            (Event_queue.cohort_tag t.queue i)
            (Event_queue.cohort_payload t.queue i)
        done
        end
      end
    end
  done;
  (* Simulated time covers the whole requested interval even when the
     queue ran dry (or the next event lies beyond the horizon) before
     reaching it — otherwise latency measurements against [now] would
     be skewed by however far the clock lagged behind [until]. *)
  match until with
  | Some horizon when horizon > t.clock.(0) -> t.clock.(0) <- horizon
  | Some _ | None -> ()

let pending_events t = Event_queue.size t.queue
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_lost t = t.lost
let messages_duplicated t = t.duplicated
let events_executed t = t.executed
let messages_data t = t.data_sent
let messages_meta t = t.meta_sent
let payload_units t = t.payload_units
let acks_sent t = t.acks_sent

let retransmissions t =
  match t.channel with Some ch -> Channel.retransmissions ch | None -> 0

let duplicates_suppressed t =
  match t.channel with Some ch -> Channel.duplicates_suppressed ch | None -> 0

let sends_abandoned t =
  match t.channel with Some ch -> Channel.abandoned ch | None -> 0

let channel_in_flight t =
  match t.channel with Some ch -> Channel.in_flight ch | None -> 0

let reliable_transport t = Option.is_some t.channel

let trace_events t = Array.to_list (Array.sub t.trace 0 t.trace_len)

let pp_links ~name ppf links =
  Format.fprintf ppf "[";
  List.iteri
    (fun i (a, b) ->
      if i > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "%s->%s" (name a) (name b))
    links;
  Format.fprintf ppf "]"

let pp_event ~name ppf = function
  | Sent { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  sent" time (name src) (name dst)
  | Delivered { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  delivered" time (name src) (name dst)
  | Dropped { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  dropped (dst crashed)" time (name src)
      (name dst)
  | Lost { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  lost (link fault)" time (name src)
      (name dst)
  | Crashed { time; pid } ->
    Format.fprintf ppf "%.3f  %s  CRASH" time (name pid)
  | Restored { time; pid } ->
    Format.fprintf ppf "%.3f  %s  RESTORED" time (name pid)
  | PartitionStart { time; links } ->
    Format.fprintf ppf "%.3f  PARTITION start (%d links) %a" time
      (List.length links) (pp_links ~name) links
  | PartitionHeal { time; links } ->
    Format.fprintf ppf "%.3f  PARTITION heal (%d links) %a" time
      (List.length links) (pp_links ~name) links
  | Suspect { time; by; target } ->
    Format.fprintf ppf "%.3f  %s  SUSPECTS %s" time (name by) (name target)
  | ScrubHit { time; pid } ->
    Format.fprintf ppf "%.3f  %s  SCRUB-HIT (checksum mismatch)" time
      (name pid)
  | AutoRepairStart { time; pid } ->
    Format.fprintf ppf "%.3f  %s  AUTO-REPAIR start" time (name pid)
  | Healed { time; pid } ->
    Format.fprintf ppf "%.3f  %s  HEALED" time (name pid)

type pid = int

(* ------------------------------------------------------------------ *)
(* Queue representation.

   The hot path of a simulation is send -> push -> pop -> dispatch, so
   queued events are not represented as a variant (the previous
   [Deliver of {src; dst; msg}] cost one 4-word block per send). The
   event kind and the endpoint pids are packed into the event queue's
   unboxed tag word, and the queue's payload slot carries the message
   (or the local action's closure) directly:

     bits 0-2   kind (k_* below)
     bits 3-22  src pid (deliver) / owner pid (local, injected, control)
     bits 23-42 dst pid (deliver only)

   The payload is an [Obj.t] whose real type is determined by the kind:

     k_deliver  -> 'msg
     k_local    -> unit -> unit
     k_injected -> 'msg context -> unit
     k_crash / k_restore -> unit (a dummy immediate)

   The packing caps pids at 2^20 - 1; [reserve] enforces it. Pushes and
   pops are consistent by construction ([dispatch] is the only reader),
   so the [Obj.obj] casts below never see a payload of the wrong type. *)

let k_deliver = 0
let k_local = 1
let k_injected = 2
let k_crash = 3
let k_restore = 4

let max_pid = 0xFFFFF

let pack ~kind ~a ~b = kind lor (a lsl 3) lor (b lsl 23)
let tag_kind tag = tag land 7
let tag_a tag = (tag lsr 3) land max_pid
let tag_b tag = (tag lsr 23) land max_pid

let obj_unit = Obj.repr 0

let dk_constant = 0
let dk_uniform = 1
let dk_exponential = 2
let dk_dynamic = 3

type 'msg process_slot = {
  name : string;
  mutable handler : ('msg context -> src:pid -> 'msg -> unit) option;
  mutable crashed : bool;
  (* one context per process, allocated at registration, so dispatch
     reuses it instead of allocating one per delivered event *)
  mutable ctx : 'msg context option
}

and 'msg t = {
  mutable processes : 'msg process_slot array;
  mutable nprocs : int;
  queue : Obj.t Event_queue.t;
  root_rng : Rng.t;
  net_rng : Rng.t;
  delay : Delay.t;
  (* the delay distribution, pre-classified so [send] can sample with
     local float arithmetic instead of calling [Delay.draw] (which,
     without flambda, boxes every intermediate float on the hottest
     path of the simulator) *)
  delay_kind : int;  (* dk_* below *)
  delay_a : float;  (* constant value / lo / mean *)
  delay_b : float;  (* hi / cap *)
  duplication : float;
  (* simulated time, in a one-slot float array so per-event clock
     updates store unboxed (a [mutable float] field of this mixed
     record would box on every store) *)
  clock : float array;
  mutable sent : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable duplicated : int;
  mutable executed : int;
  trace_enabled : bool;
  mutable trace : event array;
  mutable trace_len : int
}

and 'msg context = { engine : 'msg t; ctx_self : pid }

and event =
  | Sent of { time : float; src : pid; dst : pid }
  | Delivered of { time : float; src : pid; dst : pid }
  | Dropped of { time : float; src : pid; dst : pid }
  | Crashed of { time : float; pid : pid }
  | Restored of { time : float; pid : pid }

exception Event_limit_exceeded of int

let create ?(seed = 0) ?(trace = false) ?(duplication = 0.0) ~delay () =
  if duplication < 0.0 || duplication >= 1.0 then
    invalid_arg "Engine.create: duplication must be in [0, 1)";
  let root_rng = Rng.create seed in
  let delay_kind, delay_a, delay_b =
    match Delay.shape delay with
    | Delay.Constant_delay d -> (dk_constant, Float.max Delay.epsilon d, 0.0)
    | Delay.Uniform_delay { lo; hi } -> (dk_uniform, lo, hi)
    | Delay.Exponential_delay { mean; cap } -> (dk_exponential, mean, cap)
    | Delay.Dynamic_delay -> (dk_dynamic, 0.0, 0.0)
  in
  { processes = [||];
    nprocs = 0;
    queue = Event_queue.create ();
    net_rng = Rng.split root_rng;
    root_rng;
    delay;
    delay_kind;
    delay_a;
    delay_b;
    duplication;
    clock = [| 0.0 |];
    sent = 0;
    delivered = 0;
    dropped = 0;
    duplicated = 0;
    executed = 0;
    trace_enabled = trace;
    trace = [||];
    trace_len = 0
  }

let record t ev =
  if t.trace_enabled then begin
    if t.trace_len >= Array.length t.trace then begin
      let cap = max 256 (2 * Array.length t.trace) in
      let fresh = Array.make cap ev in
      Array.blit t.trace 0 fresh 0 t.trace_len;
      t.trace <- fresh
    end;
    t.trace.(t.trace_len) <- ev;
    t.trace_len <- t.trace_len + 1
  end

let check_pid t pid ~where =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "%s: unknown pid %d" where pid)

let reserve t ~name =
  if t.nprocs > max_pid then invalid_arg "Engine.reserve: too many processes";
  if t.nprocs >= Array.length t.processes then begin
    let cap = max 8 (2 * Array.length t.processes) in
    let slot = { name = ""; handler = None; crashed = false; ctx = None } in
    let fresh = Array.make cap slot in
    Array.blit t.processes 0 fresh 0 t.nprocs;
    t.processes <- fresh
  end;
  let pid = t.nprocs in
  let slot = { name; handler = None; crashed = false; ctx = None } in
  slot.ctx <- Some { engine = t; ctx_self = pid };
  t.processes.(pid) <- slot;
  t.nprocs <- t.nprocs + 1;
  pid

let ctx_of slot =
  match slot.ctx with Some ctx -> ctx | None -> assert false

let set_handler t pid handler =
  check_pid t pid ~where:"Engine.set_handler";
  match t.processes.(pid).handler with
  | Some _ -> invalid_arg "Engine.set_handler: handler already installed"
  | None -> t.processes.(pid).handler <- Some handler

let process_count t = t.nprocs

let name_of t pid =
  check_pid t pid ~where:"Engine.name_of";
  t.processes.(pid).name

let self ctx = ctx.ctx_self
let now t = t.clock.(0)
let now_ctx ctx = ctx.engine.clock.(0)
let rng t = t.root_rng
let rng_ctx ctx = ctx.engine.root_rng

let send ctx ~dst msg =
  let t = ctx.engine in
  check_pid t dst ~where:"Engine.send";
  let src = ctx.ctx_self in
  (* The transit sampling below is [Delay.draw] with bit-identical
     arithmetic, specialised on the pre-classified distribution so every
     intermediate float stays in a register (a [Delay.draw] call boxes
     each one: [Rng.float], the exponential's [u], its result, the
     draw). [dk_dynamic] keeps the general path. *)
  let transit =
    let k = t.delay_kind in
    if k = dk_constant then t.delay_a
    else if k = dk_exponential then begin
      let u =
        float_of_int (Rng.bits t.net_rng land 0x1FFFFFFFFFFFFF)
        /. 9007199254740992.0 *. 1.0
      in
      let u = if u <= 0. then 1e-300 else u in
      let d = -.t.delay_a *. log u in
      let d = if d > t.delay_b then t.delay_b else d in
      if d < Delay.epsilon then Delay.epsilon else d
    end
    else if k = dk_uniform then begin
      let d =
        t.delay_a
        +. float_of_int (Rng.bits t.net_rng land 0x1FFFFFFFFFFFFF)
           /. 9007199254740992.0
           *. (t.delay_b -. t.delay_a)
      in
      if d < Delay.epsilon then Delay.epsilon else d
    end
    else Delay.draw t.delay t.net_rng ~src ~dst
  in
  t.sent <- t.sent + 1;
  if t.trace_enabled then record t (Sent { time = t.clock.(0); src; dst });
  let tag = pack ~kind:k_deliver ~a:src ~b:dst in
  (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit;
  Event_queue.push_inbox t.queue ~tag (Obj.repr msg);
  (* at-least-once channels: optionally deliver a duplicate copy at an
     independent delay (counted as its own send so traces stay coherent) *)
  if t.duplication > 0.0 && Rng.float t.net_rng 1.0 < t.duplication then begin
    let transit' = Delay.draw t.delay t.net_rng ~src ~dst in
    t.sent <- t.sent + 1;
    t.duplicated <- t.duplicated + 1;
    if t.trace_enabled then record t (Sent { time = t.clock.(0); src; dst });
    (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. transit';
    Event_queue.push_inbox t.queue ~tag (Obj.repr msg)
  end

let schedule_local ctx ~delay action =
  let t = ctx.engine in
  if delay < 0. then invalid_arg "Engine.schedule_local: negative delay";
  (Event_queue.inbox t.queue).(0) <- t.clock.(0) +. delay;
  Event_queue.push_inbox t.queue
    ~tag:(pack ~kind:k_local ~a:ctx.ctx_self ~b:0)
    (Obj.repr action)

let inject t ~at pid action =
  check_pid t pid ~where:"Engine.inject";
  let time = Float.max at t.clock.(0) in
  Event_queue.push_tagged t.queue ~time
    ~tag:(pack ~kind:k_injected ~a:pid ~b:0)
    (Obj.repr action)

let crash_at t pid at =
  check_pid t pid ~where:"Engine.crash_at";
  Event_queue.push_tagged t.queue ~time:(Float.max at t.clock.(0))
    ~tag:(pack ~kind:k_crash ~a:pid ~b:0)
    obj_unit

let restore_at t pid at =
  check_pid t pid ~where:"Engine.restore_at";
  Event_queue.push_tagged t.queue ~time:(Float.max at t.clock.(0))
    ~tag:(pack ~kind:k_restore ~a:pid ~b:0)
    obj_unit

let is_crashed t pid =
  check_pid t pid ~where:"Engine.is_crashed";
  t.processes.(pid).crashed

let dispatch t tag payload =
  t.executed <- t.executed + 1;
  let kind = tag_kind tag in
  if kind = k_deliver then begin
    let src = tag_a tag and dst = tag_b tag in
    let slot = t.processes.(dst) in
    if slot.crashed then begin
      t.dropped <- t.dropped + 1;
      if t.trace_enabled then record t (Dropped { time = t.clock.(0); src; dst })
    end
    else
      match slot.handler with
      | None ->
        t.dropped <- t.dropped + 1;
        if t.trace_enabled then
          record t (Dropped { time = t.clock.(0); src; dst })
      | Some handler ->
        t.delivered <- t.delivered + 1;
        if t.trace_enabled then
          record t (Delivered { time = t.clock.(0); src; dst });
        handler (ctx_of slot) ~src (Obj.obj payload : _)
  end
  else if kind = k_local then begin
    let owner = tag_a tag in
    if not t.processes.(owner).crashed then
      (Obj.obj payload : unit -> unit) ()
  end
  else if kind = k_injected then begin
    let owner = tag_a tag in
    let slot = t.processes.(owner) in
    if not slot.crashed then
      (Obj.obj payload : _ context -> unit) (ctx_of slot)
  end
  else if kind = k_crash then begin
    let pid = tag_a tag in
    if not t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- true;
      record t (Crashed { time = t.clock.(0); pid })
    end
  end
  else begin
    let pid = tag_a tag in
    if t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- false;
      record t (Restored { time = t.clock.(0); pid })
    end
  end

let step t =
  if Event_queue.is_empty t.queue then false
  else begin
    let time = (Event_queue.unsafe_times t.queue).(0) in
    let tag = Event_queue.next_tag t.queue in
    let payload = Event_queue.pop_exn t.queue in
    (* The clock never runs backwards even if events were pushed with
       stale timestamps. *)
    if time > t.clock.(0) then t.clock.(0) <- time;
    dispatch t tag payload;
    true
  end

let run ?until ?(max_events = 10_000_000) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    if Event_queue.is_empty t.queue then continue := false
    else begin
      let time = (Event_queue.unsafe_times t.queue).(0) in
      match until with
      | Some horizon when time > horizon -> continue := false
      | Some _ | None ->
        incr executed;
        if !executed > max_events then raise (Event_limit_exceeded max_events);
        let tag = Event_queue.next_tag t.queue in
        let payload = Event_queue.pop_exn t.queue in
        if time > t.clock.(0) then t.clock.(0) <- time;
        dispatch t tag payload
    end
  done;
  (* Simulated time covers the whole requested interval even when the
     queue ran dry (or the next event lies beyond the horizon) before
     reaching it — otherwise latency measurements against [now] would
     be skewed by however far the clock lagged behind [until]. *)
  match until with
  | Some horizon when horizon > t.clock.(0) -> t.clock.(0) <- horizon
  | Some _ | None -> ()

let pending_events t = Event_queue.size t.queue
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let messages_dropped t = t.dropped
let messages_duplicated t = t.duplicated
let events_executed t = t.executed

let trace_events t = Array.to_list (Array.sub t.trace 0 t.trace_len)

let pp_event ~name ppf = function
  | Sent { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  sent" time (name src) (name dst)
  | Delivered { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  delivered" time (name src) (name dst)
  | Dropped { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  dropped (dst crashed)" time (name src)
      (name dst)
  | Crashed { time; pid } ->
    Format.fprintf ppf "%.3f  %s  CRASH" time (name pid)
  | Restored { time; pid } ->
    Format.fprintf ppf "%.3f  %s  RESTORED" time (name pid)

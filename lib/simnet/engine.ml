type pid = int

type 'msg queued =
  | Deliver of { src : pid; dst : pid; msg : 'msg }
  | Local of { owner : pid; action : unit -> unit }
  | Injected of { owner : pid; action : 'msg context -> unit }
  | Crash of pid
  | Restore of pid

and 'msg process_slot = {
  name : string;
  mutable handler : ('msg context -> src:pid -> 'msg -> unit) option;
  mutable crashed : bool
}

and 'msg t = {
  mutable processes : 'msg process_slot array;
  mutable nprocs : int;
  queue : 'msg queued Event_queue.t;
  root_rng : Rng.t;
  net_rng : Rng.t;
  delay : Delay.t;
  duplication : float;
  mutable clock : float;
  mutable sent : int;
  mutable delivered : int;
  trace_enabled : bool;
  mutable trace_rev : event list
}

and 'msg context = { engine : 'msg t; ctx_self : pid }

and event =
  | Sent of { time : float; src : pid; dst : pid }
  | Delivered of { time : float; src : pid; dst : pid }
  | Dropped of { time : float; src : pid; dst : pid }
  | Crashed of { time : float; pid : pid }
  | Restored of { time : float; pid : pid }

exception Event_limit_exceeded of int

let create ?(seed = 0) ?(trace = false) ?(duplication = 0.0) ~delay () =
  if duplication < 0.0 || duplication >= 1.0 then
    invalid_arg "Engine.create: duplication must be in [0, 1)";
  let root_rng = Rng.create seed in
  { processes = [||];
    nprocs = 0;
    queue = Event_queue.create ();
    net_rng = Rng.split root_rng;
    root_rng;
    delay;
    duplication;
    clock = 0.;
    sent = 0;
    delivered = 0;
    trace_enabled = trace;
    trace_rev = []
  }

let record t ev = if t.trace_enabled then t.trace_rev <- ev :: t.trace_rev

let check_pid t pid ~where =
  if pid < 0 || pid >= t.nprocs then
    invalid_arg (Printf.sprintf "%s: unknown pid %d" where pid)

let reserve t ~name =
  if t.nprocs >= Array.length t.processes then begin
    let cap = max 8 (2 * Array.length t.processes) in
    let slot = { name = ""; handler = None; crashed = false } in
    let fresh = Array.make cap slot in
    Array.blit t.processes 0 fresh 0 t.nprocs;
    t.processes <- fresh
  end;
  let pid = t.nprocs in
  t.processes.(pid) <- { name; handler = None; crashed = false };
  t.nprocs <- t.nprocs + 1;
  pid

let set_handler t pid handler =
  check_pid t pid ~where:"Engine.set_handler";
  match t.processes.(pid).handler with
  | Some _ -> invalid_arg "Engine.set_handler: handler already installed"
  | None -> t.processes.(pid).handler <- Some handler

let process_count t = t.nprocs

let name_of t pid =
  check_pid t pid ~where:"Engine.name_of";
  t.processes.(pid).name

let self ctx = ctx.ctx_self
let now t = t.clock
let now_ctx ctx = ctx.engine.clock
let rng t = t.root_rng
let rng_ctx ctx = ctx.engine.root_rng

let send ctx ~dst msg =
  let t = ctx.engine in
  check_pid t dst ~where:"Engine.send";
  let src = ctx.ctx_self in
  let transit = Delay.draw t.delay t.net_rng ~src ~dst in
  t.sent <- t.sent + 1;
  record t (Sent { time = t.clock; src; dst });
  Event_queue.push t.queue ~time:(t.clock +. transit)
    (Deliver { src; dst; msg });
  (* at-least-once channels: optionally deliver a duplicate copy at an
     independent delay (counted as its own send so traces stay coherent) *)
  if t.duplication > 0.0 && Rng.float t.net_rng 1.0 < t.duplication then begin
    let transit' = Delay.draw t.delay t.net_rng ~src ~dst in
    t.sent <- t.sent + 1;
    record t (Sent { time = t.clock; src; dst });
    Event_queue.push t.queue ~time:(t.clock +. transit')
      (Deliver { src; dst; msg })
  end

let schedule_local ctx ~delay action =
  let t = ctx.engine in
  if delay < 0. then invalid_arg "Engine.schedule_local: negative delay";
  Event_queue.push t.queue ~time:(t.clock +. delay)
    (Local { owner = ctx.ctx_self; action })

let inject t ~at pid action =
  check_pid t pid ~where:"Engine.inject";
  let time = Float.max at t.clock in
  Event_queue.push t.queue ~time (Injected { owner = pid; action })

let crash_at t pid at =
  check_pid t pid ~where:"Engine.crash_at";
  Event_queue.push t.queue ~time:(Float.max at t.clock) (Crash pid)

let restore_at t pid at =
  check_pid t pid ~where:"Engine.restore_at";
  Event_queue.push t.queue ~time:(Float.max at t.clock) (Restore pid)

let is_crashed t pid =
  check_pid t pid ~where:"Engine.is_crashed";
  t.processes.(pid).crashed

let dispatch t = function
  | Crash pid ->
    if not t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- true;
      record t (Crashed { time = t.clock; pid })
    end
  | Restore pid ->
    if t.processes.(pid).crashed then begin
      t.processes.(pid).crashed <- false;
      record t (Restored { time = t.clock; pid })
    end
  | Local { owner; action } ->
    if not t.processes.(owner).crashed then action ()
  | Injected { owner; action } ->
    if not t.processes.(owner).crashed then
      action { engine = t; ctx_self = owner }
  | Deliver { src; dst; msg } ->
    let slot = t.processes.(dst) in
    if slot.crashed then record t (Dropped { time = t.clock; src; dst })
    else begin
      match slot.handler with
      | None -> record t (Dropped { time = t.clock; src; dst })
      | Some handler ->
        t.delivered <- t.delivered + 1;
        record t (Delivered { time = t.clock; src; dst });
        handler { engine = t; ctx_self = dst } ~src msg
    end

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, payload) ->
    (* The clock never runs backwards even if events were pushed with
       stale timestamps. *)
    if time > t.clock then t.clock <- time;
    dispatch t payload;
    true

let run ?until ?(max_events = 10_000_000) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_queue.peek_time t.queue with
    | None -> continue := false
    | Some time ->
      (match until with
      | Some horizon when time > horizon -> continue := false
      | Some _ | None ->
        incr executed;
        if !executed > max_events then raise (Event_limit_exceeded max_events);
        ignore (step t))
  done

let pending_events t = Event_queue.size t.queue
let messages_sent t = t.sent
let messages_delivered t = t.delivered
let trace_events t = List.rev t.trace_rev

let pp_event ~name ppf = function
  | Sent { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  sent" time (name src) (name dst)
  | Delivered { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  delivered" time (name src) (name dst)
  | Dropped { time; src; dst } ->
    Format.fprintf ppf "%.3f  %s -> %s  dropped (dst crashed)" time (name src)
      (name dst)
  | Crashed { time; pid } ->
    Format.fprintf ppf "%.3f  %s  CRASH" time (name pid)
  | Restored { time; pid } ->
    Format.fprintf ppf "%.3f  %s  RESTORED" time (name pid)

(** Per-link adversarial fault plane.

    The paper's system model (Section II) assumes reliable point-to-point
    channels; real networks lose messages, partition, and slow down. This
    module holds the adversarial state the engine consults on every send:
    per-directed-link drop probability, blackholed links (partitions), and
    multiplicative delay spikes. The state is mutated only from inside the
    simulation (the engine schedules control events that call
    {!cut_links} / {!heal_links} at their activation times), so fault
    windows are seed-deterministic and totally ordered with every other
    event.

    A fresh fault plane is {e trivial}: no link ever drops, slows or
    blackholes, and the engine skips the plane entirely on its send hot
    path (one boolean load). Any configuration call arms it for the rest
    of the simulation, even if every fault is later healed. *)

type t

val create : unit -> t
(** A trivial fault plane. *)

val armed : t -> bool
(** Whether any fault was ever configured. While [false], sends behave
    bit-identically to an engine without a fault plane. *)

(** {1 Static loss configuration} *)

val set_default_drop : t -> float -> unit
(** Drop probability applied to every link without a per-link override.
    @raise Invalid_argument outside [0, 1]. *)

val set_drop : t -> src:int -> dst:int -> float -> unit
(** Per-directed-link override of the default drop probability.
    @raise Invalid_argument outside [0, 1]. *)

val drop_p : t -> src:int -> dst:int -> float

val lossy : t -> src:int -> dst:int -> bool
(** [drop_p t ~src ~dst > 0] — the predicate {!Trace_check.check} needs
    to justify a [Lost] trace event. *)

(** {1 Interval faults (driven by engine control events)} *)

val cut_links : t -> (int * int) list -> unit
(** Blackhole each [(src, dst)] link: every message entering it while cut
    is lost. Cuts nest — a link cut by two overlapping partitions heals
    only when both heal. *)

val heal_links : t -> (int * int) list -> unit
(** Undo one {!cut_links} layer per link. Healing a link that is not cut
    is ignored (a harness may heal a partition that was never armed). *)

val partitioned : t -> src:int -> dst:int -> bool

val spike_links : t -> (int * int) list -> factor:float -> unit
(** Multiply transit delays on each link by [factor] (> 0) until the
    matching {!unspike_links}. Overlapping spikes compound
    multiplicatively.
    @raise Invalid_argument on a non-positive factor. *)

val unspike_links : t -> (int * int) list -> factor:float -> unit
(** Remove one active spike of exactly [factor] per link; ignored if no
    such spike is active. *)

val delay_factor : t -> src:int -> dst:int -> float
(** Product of the active spike factors on the link; [1.0] when none. *)

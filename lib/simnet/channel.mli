(** Reliable-channel substrate: ack/retransmit bookkeeping.

    SODA's proofs (Thms 5.1–5.2) and the CAS/ABD baselines assume
    reliable point-to-point channels. Over the adversarial fault plane
    ({!Link_faults}) that axiom no longer holds, so the engine can mount
    this substrate under every process ([~transport:(`Reliable config)]):
    each logical send is assigned a per-link sequence number, transmitted,
    and retransmitted with exponential backoff (plus seeded jitter) until
    the destination's ack arrives or the retry cap is hit; the receiver
    side acknowledges every arrival and suppresses redelivery of
    sequence numbers it has already handed to the protocol. Protocols run
    unmodified — they keep calling [Engine.send] and receiving through
    their installed handlers — and regain exactly-once delivery over any
    loss schedule with drop probability < 1 and finite partitions (within
    the retry budget).

    This module owns the pure state machine — sequence allocation,
    pending-send table, receiver dedup, backoff arithmetic, counters —
    while {!Engine} owns scheduling, fault-plane checks and randomness.
    Payloads are stored as [Obj.t] because they live inside the engine's
    uniformly-typed queue; the engine is the only caller and casts them
    back under the same discipline it uses for queued events. *)

type config = {
  rto : float;  (** initial retransmission timeout, > 0 *)
  backoff : float;  (** timeout multiplier per retry, >= 1 *)
  max_rto : float;  (** timeout cap, >= rto *)
  jitter : float;
      (** each scheduled retransmission is delayed by an extra uniform
          draw in [0, jitter * timeout); >= 0. Jitter decorrelates the
          retry storms of messages lost in the same partition window. *)
  max_retries : int;
      (** retransmissions per message before the sender gives up, >= 0.
          A give-up breaks the reliable abstraction and is counted in
          {!abandoned}; size the cap so that the backoff schedule outlives
          the longest fault window the harness injects. *)
  ack : [ `Immediate | `Cumulative of float ]
      (** [`Immediate] (default): every data arrival is acknowledged with
          its own ack message. [`Cumulative quiet]: per directed link the
          receiver tracks the highest contiguous sequence number; acks are
          piggybacked on reverse data traffic, and a standalone ack is
          sent only if [quiet] time units pass with arrivals still
          unacknowledged. One cumulative ack discharges every pending
          send up to its sequence number. [quiet] must satisfy
          [0 <= quiet < rto] — an ack that cannot beat the retransmission
          timer defeats the aggregation. *)
}

val default : config
(** [{ rto = 5.0; backoff = 1.6; max_rto = 60.0; jitter = 0.1;
      max_retries = 50; ack = `Immediate }] — sized for the repo's delay
    models (transit <= 2–10 time units) and nemesis partition windows. *)

val validate : config -> unit
(** @raise Invalid_argument on any field outside its documented range. *)

val backoff_schedule : config -> retries:int -> float list
(** The jitter-free timeout sequence: element [i] is the delay between
    transmission [i] and [i+1]. Monotone non-decreasing, capped at
    [max_rto] (regression-tested). *)

type t

val create : config -> t
val config : t -> config

val max_seq : int
(** Sequence numbers are packed into the engine's event tag word; a link
    that exhausts them raises. *)

val alloc_seq : t -> src:int -> dst:int -> int
(** Next sequence number on the directed link, from 0.
    @raise Invalid_argument past {!max_seq}. *)

val register : t -> src:int -> dst:int -> seq:int -> Obj.t -> float
(** Record an unacked send and return the initial retransmission
    timeout. *)

val receive : t -> src:int -> dst:int -> seq:int -> [ `Fresh | `Duplicate ]
(** Receiver side: [`Fresh] exactly once per (link, seq) — the caller
    must deliver to the protocol handler on [`Fresh] and suppress on
    [`Duplicate] (acking in both cases). *)

val ack : t -> src:int -> dst:int -> seq:int -> unit
(** Sender side: the destination confirmed receipt; the pending entry is
    discharged and later retransmission timers become no-ops. Idempotent
    (acks themselves ride the lossy network and may be duplicated). *)

val on_timer : t -> src:int -> dst:int -> seq:int ->
  [ `Done | `Give_up | `Retransmit of Obj.t * float ]
(** Retransmission timer fired. [`Done]: already acked. [`Give_up]: the
    retry cap is exhausted; the entry is dropped and counted. Otherwise
    the payload to retransmit and the {e next} timeout (backed off,
    jitter-free — the engine adds its seeded jitter). *)

(** {1 Cumulative-ack mode}

    Used by the engine when [config.ack = `Cumulative quiet]. Receiver
    state lives per directed link, keyed by the {e data} direction
    ([src] = data sender) on both sides. *)

val receive_cum : t -> src:int -> dst:int -> seq:int -> [ `Fresh | `Duplicate ]
(** Cumulative-mode receiver dedup: [`Fresh] exactly once per (link,
    seq), tracked as highest-contiguous + out-of-order set instead of a
    per-message table. Marks the link ack-pending (duplicates included —
    a retransmission means the sender missed the last ack). *)

val arm_ack_timer : t -> src:int -> dst:int -> bool
(** [true] exactly when no quiet-window timer is currently armed for the
    link — the caller must then schedule one and report its expiry via
    {!take_ack}. *)

val take_ack : t -> src:int -> dst:int -> int option
(** Quiet-window timer expired. [Some cum]: send a standalone cumulative
    ack for sequence [cum] (the pending flag is consumed). [None]:
    everything was already covered by piggybacked acks (or nothing
    contiguous has arrived); the timer is disarmed either way. *)

val piggyback_ack : t -> src:int -> dst:int -> int
(** Highest contiguous sequence to piggyback on a reverse-direction
    transmission, consuming the pending flag; [-1] when the link owes no
    ack. Call at every physical transmission towards [src]. *)

val ack_up_to : t -> src:int -> dst:int -> upto:int -> unit
(** Sender side: discharge every pending send on the link with sequence
    [<= upto]. Idempotent and monotone — stale or duplicated cumulative
    acks are no-ops. *)

(** {1 Counters} *)

val in_flight : t -> int
(** Registered sends not yet acked or given up. *)

val retransmissions : t -> int
val duplicates_suppressed : t -> int

val abandoned : t -> int
(** Sends that hit the retry cap. *)

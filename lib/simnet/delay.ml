type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of { mean : float; cap : float }
  | Per_link of (src:int -> dst:int -> t)

let epsilon = 1e-9

let constant d =
  if d < 0. then invalid_arg "Delay.constant: negative delay";
  Constant d

let uniform ~lo ~hi =
  if lo < 0. || hi < lo then invalid_arg "Delay.uniform: bad range";
  Uniform (lo, hi)

let exponential ~mean ~cap =
  if mean <= 0. || cap < mean then invalid_arg "Delay.exponential: bad params";
  Exponential { mean; cap }

let per_link f = Per_link f

let rec draw t rng ~src ~dst =
  let d =
    match t with
    | Constant d -> d
    | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
    | Exponential { mean; cap } -> Float.min cap (Rng.exponential rng ~mean)
    | Per_link f -> draw (f ~src ~dst) rng ~src ~dst
  in
  Float.max epsilon d

let upper_bound = function
  | Constant d -> Some (Float.max epsilon d)
  | Uniform (_, hi) -> Some (Float.max epsilon hi)
  | Exponential { cap; _ } -> Some cap
  | Per_link _ -> None

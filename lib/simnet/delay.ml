type t =
  | Constant of float
  | Uniform of float * float
  | Exponential of { mean : float; cap : float }
  | Per_link of (src:int -> dst:int -> t)

let epsilon = 1e-9

let constant d =
  if d < 0. then invalid_arg "Delay.constant: negative delay";
  Constant d

let uniform ~lo ~hi =
  if lo < 0. || hi < lo then invalid_arg "Delay.uniform: bad range";
  Uniform (lo, hi)

let exponential ~mean ~cap =
  if mean <= 0. || cap < mean then invalid_arg "Delay.exponential: bad params";
  Exponential { mean; cap }

let per_link f = Per_link f

type shape =
  | Constant_delay of float
  | Uniform_delay of { lo : float; hi : float }
  | Exponential_delay of { mean : float; cap : float }
  | Dynamic_delay

let shape = function
  | Constant d -> Constant_delay d
  | Uniform (lo, hi) -> Uniform_delay { lo; hi }
  | Exponential { mean; cap } -> Exponential_delay { mean; cap }
  | Per_link _ -> Dynamic_delay

(* Peel [Per_link] wrappers down to a concrete distribution. *)
let rec resolve t ~src ~dst =
  match t with Per_link f -> resolve (f ~src ~dst) ~src ~dst | t -> t

(* [draw] is deliberately non-recursive (the [Per_link] indirection is
   peeled by [resolve] first) and avoids [Float.min]/[Float.max] so the
   whole sampling chain can inline into [Engine.send] even without
   flambda — otherwise every hop boxes a handful of intermediate floats
   on the simulator's hottest path. The comparisons are safe because no
   distribution can produce a NaN. *)
let[@inline] draw t rng ~src ~dst =
  let t = match t with Per_link _ -> resolve t ~src ~dst | t -> t in
  let d =
    match t with
    | Constant d -> d
    | Uniform (lo, hi) -> lo +. Rng.float rng (hi -. lo)
    | Exponential { mean; cap } ->
      let d = Rng.exponential rng ~mean in
      if d > cap then cap else d
    | Per_link _ -> assert false
  in
  if d < epsilon then epsilon else d

let upper_bound = function
  | Constant d -> Some (Float.max epsilon d)
  | Uniform (_, hi) -> Some (Float.max epsilon hi)
  | Exponential { cap; _ } -> Some cap
  | Per_link _ -> None

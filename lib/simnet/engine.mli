(** The discrete-event simulation engine.

    An engine hosts a set of {e processes} (servers and clients alike in
    the paper's model) exchanging messages of a single type ['msg] over
    point-to-point channels. Each send draws an independent transit delay
    from the engine's {!Delay.t} model, so messages on the same channel
    may be reordered — exactly the asynchronous model of the paper
    (Section II).

    Channels are reliable by default (the paper's axiom). An adversarial
    {e fault plane} ({!Link_faults}) can break that: per-directed-link
    drop probabilities, partitions (link sets blackholed over an
    interval), and delay spikes, all scheduled at absolute simulated
    times and applied to each physical transmission at its send instant.
    Mounting the reliable-channel substrate
    ([~transport:(`Reliable config)], see {!Channel}) restores
    exactly-once delivery on top of a lossy plane via acks,
    exponential-backoff retransmission and receiver-side dedup — without
    any change to the protocols, which keep using {!send} and their
    installed handlers.

    Crash failures: a crashed process stops receiving messages and its
    pending local actions are discarded; messages already in flight to it
    are silently dropped at delivery time. Senders are allowed to crash
    after a message is placed in the channel — delivery depends only on
    the destination being alive, matching the model in the paper. Under
    the reliable transport an unacked message keeps being retransmitted
    (the channel state lives in the network interface, not the process's
    volatile memory), so a message to a crashed-then-restored process is
    eventually delivered if the retry budget outlives the crash window.

    Determinism: executions are a pure function of the seed, including
    every fault-plane coin flip and retransmission timer. Event ties are
    broken by insertion order. *)

type pid = int
(** Process identifier, dense from 0 in registration order. *)

type 'msg t

type 'msg context
(** Capabilities handed to a process while it is handling an event. *)

val create :
  ?seed:int -> ?trace:bool -> ?duplication:float ->
  ?transport:[ `Raw | `Reliable of Channel.config ] ->
  ?classify:('msg -> bool) ->
  ?weigh:('msg -> int) ->
  delay:Delay.t -> unit -> 'msg t
(** [create ~delay ()] builds an empty simulation. [seed] defaults to 0;
    [trace] (default false) records an event log retrievable with
    {!trace_events}; [duplication] (default 0, must be < 1) is the
    probability that a message is transmitted twice at independent delays
    — an at-least-once channel model, stricter than the paper's, under
    which the protocols' deduplication must make every step idempotent
    (under [`Reliable] the duplicate carries the same sequence number and
    is absorbed by the channel's own dedup). [transport] (default
    [`Raw]) selects the channel substrate: [`Reliable config] mounts the
    ack/retransmit layer of {!Channel} under every process; a config with
    [ack = `Cumulative quiet] switches the whole engine to cumulative
    per-link acks (see {!Channel}). [classify] (optional) is a
    data-vs-metadata discriminator ([true] = data-bearing) applied to
    every protocol-level send and reported through {!messages_data} /
    {!messages_meta}; without it both counters stay 0. [weigh]
    (optional) counts the logical sub-messages one wire frame carries
    (a batch of [b] relays weighs [b], a plain message weighs 1) and
    accumulates into {!payload_units}; comparing it against
    {!messages_sent} measures how hard a batching plane coalesces.
    @raise Invalid_argument on an out-of-range [duplication] or an
    invalid channel config. *)

(** {1 Topology} *)

val reserve : 'msg t -> name:string -> pid
(** Allocate a process id. The process is inert until {!set_handler}.
    @raise Invalid_argument past 2{^20} - 1 processes (pids are packed
    into the event queue's tag word). *)

val set_handler :
  'msg t -> pid -> ('msg context -> src:pid -> 'msg -> unit) -> unit
(** Install the message handler. May be called once per pid.
    @raise Invalid_argument on a second call or an unknown pid. *)

val process_count : 'msg t -> int
val name_of : 'msg t -> pid -> string

(** Observation-only tap: [tap_deliver] fires at every protocol-level
    delivery (just before the handler), [tap_ack] at every ack
    transmission ([src]/[dst] name the {e data} direction; the ack
    physically travels [dst] to [src]; [cumulative] is true when the
    channel runs cumulative acks, and [seq] is then the highest
    contiguous sequence acknowledged). A tap draws no randomness and
    schedules nothing, so installing one cannot perturb the execution —
    payload-aware trace tooling (bin/replay) uses it to render messages
    the engine's own event log keeps opaque. *)
type 'msg tap = {
  tap_deliver : time:float -> src:pid -> dst:pid -> 'msg -> unit;
  tap_ack :
    time:float -> src:pid -> dst:pid -> cumulative:bool -> seq:int -> unit
}

val set_tap : 'msg t -> 'msg tap -> unit

(** {1 Context operations (valid only during a handler / local action)} *)

val self : 'msg context -> pid
val now_ctx : 'msg context -> float
val rng_ctx : 'msg context -> Rng.t

(** {2 Healing-plane trace marks}

    Pure observations for the self-healing plane: each appends one
    {!event} to the trace when tracing is on and does nothing otherwise —
    no event is scheduled, no RNG drawn, so calling them never perturbs
    the simulation. *)

val mark_suspect : 'msg context -> target:pid -> unit
(** Record that the calling server's detector suspects [target]. *)

val mark_scrub_hit : 'msg context -> unit
(** Record a checksum mismatch found on the calling server. *)

val mark_healed : 'msg context -> unit
(** Record that the calling server completed an autonomous recovery. *)

val mark_auto_repair : 'msg t -> pid -> unit
(** Record that the deployment is launching a detector-triggered repair
    of [pid] (called outside any handler, hence on the engine). *)

val send : 'msg context -> dst:pid -> 'msg -> unit
(** Place a message in the channel to [dst]. Raw transport: it is
    delivered after a model-drawn delay iff the link does not lose it
    and [dst] has not crashed by then. Reliable transport: it is
    assigned a sequence number and retransmitted until acked or the
    retry cap is hit, and delivered to the protocol handler at most
    once. Sending to self is allowed and also goes through the
    channel. *)

val schedule_local : 'msg context -> delay:float -> (unit -> unit) -> unit
(** Run a local action on this process after [delay] sim-time units,
    unless the process crashes first. *)

(** {1 External control (harness side)} *)

val now : 'msg t -> float

val rng : 'msg t -> Rng.t
(** The engine's root generator; harnesses may draw from it between
    runs. *)

val inject : 'msg t -> at:float -> pid -> ('msg context -> unit) -> unit
(** Schedule an action on a process at an absolute time (e.g. a client
    invoking an operation). Discarded if the process crashed. Accepts
    times in the past, which execute at the current time.
    @raise Invalid_argument on an unknown pid. *)

val crash_at : 'msg t -> pid -> float -> unit
(** Schedule a crash at an absolute simulated time. *)

val restore_at : 'msg t -> pid -> float -> unit
(** Schedule a restart of a crashed process: from that time on it
    receives messages again. The process's OCaml-side state is whatever
    the automaton object still holds — protocol layers model the loss of
    volatile state themselves (cf. [Soda.Server.begin_repair]). Local
    actions and deliveries scheduled while it was crashed stay lost
    (raw transport) or keep being retransmitted (reliable transport). *)

val is_crashed : 'msg t -> pid -> bool

(** {1 Fault plane}

    All fault scheduling is processed through the event queue, so fault
    windows are totally ordered with message events and executions stay
    a pure function of the seed. A never-configured fault plane costs
    the send hot path one boolean load. *)

val faults : 'msg t -> Link_faults.t
(** The engine's fault plane, for direct configuration and for building
    the [lossy] predicate of {!Trace_check.check}. *)

val set_loss : 'msg t -> float -> unit
(** Drop probability applied immediately to every link (overridable per
    link with {!set_link_loss}). Each physical transmission — including
    reliable-transport retransmissions and acks — is lost independently
    with this probability. @raise Invalid_argument outside [0, 1]. *)

val set_link_loss : 'msg t -> src:pid -> dst:pid -> float -> unit

val partition_at : 'msg t -> links:(pid * pid) list -> at:float -> unit
(** Blackhole the directed [links] from simulated time [at] until a
    matching {!heal_at}: every message entering a cut link is lost (and
    counted in {!messages_lost}). Overlapping partitions stack per link.
    Emits a [PartitionStart] trace event when it activates.
    @raise Invalid_argument on an unknown pid. *)

val heal_at : 'msg t -> links:(pid * pid) list -> at:float -> unit
(** Undo one partition layer on [links] at time [at]; emits
    [PartitionHeal]. Messages lost while the partition was up are gone
    (raw) or retransmitted (reliable transport). *)

val delay_spike : 'msg t ->
  links:(pid * pid) list -> factor:float -> from_:float -> until_:float -> unit
(** Multiply transit delays on [links] by [factor] during
    [[from_, until_]]. Overlapping spikes compound.
    @raise Invalid_argument on a non-positive factor or an inverted
    interval. *)

(** {1 Execution} *)

exception Event_limit_exceeded of int

val run : ?until:float -> ?max_events:int -> 'msg t -> unit
(** Process events in timestamp order until the queue drains, or until
    simulated time would exceed [until] (remaining events stay queued).
    When [until] is given, the clock advances to the horizon on return
    even if the queue ran dry (or the next event lies beyond it)
    earlier: [run ?until] simulates the {e whole} interval, so latency
    measurements against {!now} are not skewed by a lagging clock.
    [max_events] (default 10 million) guards against non-quiescent
    protocols.
    @raise Event_limit_exceeded when the guard trips. *)

val step : 'msg t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending_events : 'msg t -> int

(** {1 Statistics and traces} *)

val messages_sent : 'msg t -> int
(** Physical transmissions: protocol sends, duplicates, and — under the
    reliable transport — retransmissions and acks. *)

val messages_delivered : 'msg t -> int
(** Messages handed to a protocol handler. Excludes drops at a crashed
    destination, fault-plane losses, and (reliable transport) duplicate
    arrivals suppressed by the channel's dedup. *)

val messages_dropped : 'msg t -> int
(** Messages that reached a crashed (or handler-less) destination.
    Distinct from {!messages_lost}: a drop happens at delivery time
    because of the {e endpoint}'s state, a loss at send time because of
    the {e link}'s. *)

val messages_lost : 'msg t -> int
(** Physical transmissions eaten by the fault plane (drop probability or
    an active partition). *)

val messages_duplicated : 'msg t -> int
(** Extra copies injected by the [duplication] channel model (each is
    also counted in {!messages_sent}). *)

val events_executed : 'msg t -> int
(** Total events dispatched over the engine's lifetime — deliveries,
    drops, local actions, injections, crash/restore transitions,
    fault-plane control events and retransmission timers. *)

val messages_data : 'msg t -> int
(** Protocol-level sends the [classify] discriminator judged
    data-bearing. Counts logical sends (one per {!send} call, regardless
    of duplication or retransmission); 0 when [classify] was not given. *)

val messages_meta : 'msg t -> int
(** Protocol-level sends judged metadata-only by [classify]; 0 when
    [classify] was not given. *)

val payload_units : 'msg t -> int
(** Sum of [weigh] over every protocol-level send (counted once per
    {!send} call, like {!messages_data}); 0 when [weigh] was not given.
    [payload_units / messages_sent] is the mean coalescing factor of a
    batching plane. *)

val acks_sent : 'msg t -> int
(** Ack transmissions on the reliable transport: every per-message ack
    under [`Immediate], standalone quiet-window acks under
    [`Cumulative] (piggybacked cumulative acks ride data packets and are
    not counted here). Subset of {!messages_sent}. 0 on the raw
    transport. *)

(** {2 Reliable-transport counters (0 on the raw transport)} *)

val retransmissions : 'msg t -> int
val duplicates_suppressed : 'msg t -> int

val sends_abandoned : 'msg t -> int
(** Sends that hit the channel's retry cap — each is a breach of the
    reliable abstraction; a chaos harness should assert this stays 0. *)

val channel_in_flight : 'msg t -> int
(** Registered sends not yet acked or abandoned (e.g. messages destined
    to a process that stayed crashed). *)

val reliable_transport : 'msg t -> bool
(** [true] iff the engine was created with [~transport:(`Reliable _)].
    Protocol layers use this to arm recovery behaviour (e.g. client
    retries) that only makes sense when sends are retransmitted. *)

type event =
  | Sent of { time : float; src : pid; dst : pid }
      (** One physical transmission (including retransmissions and, on
          the reliable transport, acks — an ack from the data's receiver
          appears as a [Sent] in the reverse direction). *)
  | Delivered of { time : float; src : pid; dst : pid }
      (** Physical arrival at a live destination. On the reliable
          transport this includes duplicate data packets (suppressed
          before the handler) and acks. *)
  | Dropped of { time : float; src : pid; dst : pid }
  | Lost of { time : float; src : pid; dst : pid }
      (** The fault plane ate a transmission on this link. *)
  | Crashed of { time : float; pid : pid }
  | Restored of { time : float; pid : pid }
  | PartitionStart of { time : float; links : (pid * pid) list }
  | PartitionHeal of { time : float; links : (pid * pid) list }
  | Suspect of { time : float; by : pid; target : pid }
      (** [by]'s failure detector declared [target] silent past the
          suspicion timeout (see {!mark_suspect}). *)
  | ScrubHit of { time : float; pid : pid }
      (** [pid]'s scrubber (or read path) found a checksum mismatch in
          its local fragment store. *)
  | AutoRepairStart of { time : float; pid : pid }
      (** The deployment launched a detector-triggered crash-repair of
          [pid] (as opposed to a nemesis-scheduled one). *)
  | Healed of { time : float; pid : pid }
      (** [pid] finished an autonomous recovery: a detector-triggered
          crash-repair completed, or a quarantined fragment was restored
          from peers. *)

val trace_events : 'msg t -> event list
(** Chronological event log; empty unless [trace] was set. *)

val pp_event : name:(pid -> string) -> Format.formatter -> event -> unit

(** The discrete-event simulation engine.

    An engine hosts a set of {e processes} (servers and clients alike in
    the paper's model) exchanging messages of a single type ['msg] over
    reliable point-to-point channels. Each send draws an independent
    transit delay from the engine's {!Delay.t} model, so messages on the
    same channel may be reordered — exactly the asynchronous model of the
    paper (Section II).

    Crash failures: a crashed process stops receiving messages and its
    pending local actions are discarded; messages already in flight to it
    are silently dropped at delivery time. Senders are allowed to crash
    after a message is placed in the channel — delivery depends only on
    the destination being alive, matching the model in the paper.

    Determinism: executions are a pure function of the seed. Event ties
    are broken by insertion order. *)

type pid = int
(** Process identifier, dense from 0 in registration order. *)

type 'msg t

type 'msg context
(** Capabilities handed to a process while it is handling an event. *)

val create :
  ?seed:int -> ?trace:bool -> ?duplication:float -> delay:Delay.t -> unit ->
  'msg t
(** [create ~delay ()] builds an empty simulation. [seed] defaults to 0;
    [trace] (default false) records an event log retrievable with
    {!trace_events}; [duplication] (default 0, must be < 1) is the
    probability that a message is delivered twice at independent delays
    — an at-least-once channel model, stricter than the paper's, under
    which the protocols' deduplication must make every step idempotent.
    @raise Invalid_argument on an out-of-range [duplication]. *)

(** {1 Topology} *)

val reserve : 'msg t -> name:string -> pid
(** Allocate a process id. The process is inert until {!set_handler}.
    @raise Invalid_argument past 2{^20} - 1 processes (pids are packed
    into the event queue's tag word). *)

val set_handler :
  'msg t -> pid -> ('msg context -> src:pid -> 'msg -> unit) -> unit
(** Install the message handler. May be called once per pid.
    @raise Invalid_argument on a second call or an unknown pid. *)

val process_count : 'msg t -> int
val name_of : 'msg t -> pid -> string

(** {1 Context operations (valid only during a handler / local action)} *)

val self : 'msg context -> pid
val now_ctx : 'msg context -> float
val rng_ctx : 'msg context -> Rng.t

val send : 'msg context -> dst:pid -> 'msg -> unit
(** Place a message in the channel to [dst]; it will be delivered after a
    model-drawn delay iff [dst] has not crashed by then. Sending to self
    is allowed and also goes through the channel. *)

val schedule_local : 'msg context -> delay:float -> (unit -> unit) -> unit
(** Run a local action on this process after [delay] sim-time units,
    unless the process crashes first. *)

(** {1 External control (harness side)} *)

val now : 'msg t -> float

val rng : 'msg t -> Rng.t
(** The engine's root generator; harnesses may draw from it between
    runs. *)

val inject : 'msg t -> at:float -> pid -> ('msg context -> unit) -> unit
(** Schedule an action on a process at an absolute time (e.g. a client
    invoking an operation). Discarded if the process crashed. Accepts
    times in the past, which execute at the current time.
    @raise Invalid_argument on an unknown pid. *)

val crash_at : 'msg t -> pid -> float -> unit
(** Schedule a crash at an absolute simulated time. *)

val restore_at : 'msg t -> pid -> float -> unit
(** Schedule a restart of a crashed process: from that time on it
    receives messages again. The process's OCaml-side state is whatever
    the automaton object still holds — protocol layers model the loss of
    volatile state themselves (cf. [Soda.Server.begin_repair]). Local
    actions and deliveries scheduled while it was crashed stay lost. *)

val is_crashed : 'msg t -> pid -> bool

(** {1 Execution} *)

exception Event_limit_exceeded of int

val run : ?until:float -> ?max_events:int -> 'msg t -> unit
(** Process events in timestamp order until the queue drains, or until
    simulated time would exceed [until] (remaining events stay queued).
    When [until] is given, the clock advances to the horizon on return
    even if the queue ran dry (or the next event lies beyond it)
    earlier: [run ?until] simulates the {e whole} interval, so latency
    measurements against {!now} are not skewed by a lagging clock.
    [max_events] (default 10 million) guards against non-quiescent
    protocols.
    @raise Event_limit_exceeded when the guard trips. *)

val step : 'msg t -> bool
(** Process a single event; [false] when the queue is empty. *)

val pending_events : 'msg t -> int

(** {1 Statistics and traces} *)

val messages_sent : 'msg t -> int
val messages_delivered : 'msg t -> int
(** Delivered excludes messages dropped at a crashed destination. *)

val messages_dropped : 'msg t -> int
(** Messages that reached a crashed (or handler-less) destination. *)

val messages_duplicated : 'msg t -> int
(** Extra copies injected by the [duplication] channel model (each is
    also counted in {!messages_sent}). *)

val events_executed : 'msg t -> int
(** Total events dispatched over the engine's lifetime — deliveries,
    drops, local actions, injections and crash/restore transitions. *)

type event =
  | Sent of { time : float; src : pid; dst : pid }
  | Delivered of { time : float; src : pid; dst : pid }
  | Dropped of { time : float; src : pid; dst : pid }
  | Crashed of { time : float; pid : pid }
  | Restored of { time : float; pid : pid }

val trace_events : 'msg t -> event list
(** Chronological event log; empty unless [trace] was set. *)

val pp_event : name:(pid -> string) -> Format.formatter -> event -> unit

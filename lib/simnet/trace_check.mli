(** Validation of engine traces against the network model's axioms.

    Used as a meta-test of the simulator itself (and available to debug
    protocol runs): given the event log of a traced execution, verify
    that the engine really implemented the paper's channel and crash
    semantics — or, when a fault plane was configured, the lossy model's
    semantics. *)

type violation = {
  what : string;
  index : int  (** position of the offending event in the trace *)
}

val pp_violation : Format.formatter -> violation -> unit

val check :
  ?lossy:(src:int -> dst:int -> bool) ->
  Engine.event list -> (unit, violation) result
(** Verifies, over the whole trace:
    - timestamps are non-decreasing;
    - every delivery, drop or loss is matched to an earlier unconsumed
      send on the same (src, dst) channel, and each send is consumed at
      most once;
    - no process is delivered a message after it crashed (unless restored
      in between), and drops only happen at crashed destinations;
    - a process crashes (resp. is restored) only when alive (resp.
      crashed);
    - a [Lost] event has an active cause: either a partition covering
      its link at that point of the trace, or [lossy ~src ~dst] (the
      caller's knowledge of configured drop probabilities — build it
      from {!Link_faults.lossy}; defaults to "no link is lossy", which
      is exactly the old reliable-model check on fault-free traces);
    - partitions strictly alternate start/heal per canonical link-set,
      and a heal never underflows a link's active-partition count;
    - healing-plane marks are causally sane: suspicions and scrub hits
      come from live processes, a [Healed] is reported by a live process,
      and an [AutoRepairStart] targets a process that is currently
      crashed {e and} was suspected at least once since it crashed (the
      detector, not the nemesis, pulled the trigger). *)

val delivered_ratio : Engine.event list -> float
(** Fraction of sends that were eventually delivered (1.0 in crash-free
    executions once quiescent; lower under crashes or an armed fault
    plane). *)

val lost_count : Engine.event list -> int
(** Number of [Lost] events in the trace. *)

(** Validation of engine traces against the network model's axioms.

    Used as a meta-test of the simulator itself (and available to debug
    protocol runs): given the event log of a traced execution, verify
    that the engine really implemented the paper's channel and crash
    semantics. *)

type violation = {
  what : string;
  index : int  (** position of the offending event in the trace *)
}

val pp_violation : Format.formatter -> violation -> unit

val check : Engine.event list -> (unit, violation) result
(** Verifies, over the whole trace:
    - timestamps are non-decreasing;
    - every delivery or drop is matched to an earlier unconsumed send on
      the same (src, dst) channel, and each send is consumed at most
      once;
    - no process is delivered a message after it crashed (unless restored
      in between), and drops only happen at crashed destinations;
    - a process crashes (resp. is restored) only when alive (resp.
      crashed). *)

val delivered_ratio : Engine.event list -> float
(** Fraction of sends that were eventually delivered (1.0 in crash-free
    executions once quiescent). *)

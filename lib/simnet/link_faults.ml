(* Directed links are keyed by a packed int: (src lsl 20) lor dst. The
   engine caps pids at 2^20 - 1 (they share the event queue's tag word),
   so the packing is collision-free. All tables are lookup-only on the
   send path; iteration order never influences an execution, keeping
   runs a pure function of the seed. *)

type t = {
  mutable armed : bool;
  mutable default_drop : float;
  drop : (int, float) Hashtbl.t;
  cut : (int, int) Hashtbl.t;  (* link -> active blackhole count *)
  slow : (int, float list) Hashtbl.t  (* link -> active spike factors *)
}

let key ~src ~dst = (src lsl 20) lor dst

let create () =
  { armed = false;
    default_drop = 0.0;
    drop = Hashtbl.create 16;
    cut = Hashtbl.create 16;
    slow = Hashtbl.create 16
  }

let armed t = t.armed

let check_p p ~where =
  if not (p >= 0.0 && p <= 1.0) then
    invalid_arg (Printf.sprintf "%s: probability %g outside [0, 1]" where p)

let set_default_drop t p =
  check_p p ~where:"Link_faults.set_default_drop";
  t.armed <- true;
  t.default_drop <- p

let set_drop t ~src ~dst p =
  check_p p ~where:"Link_faults.set_drop";
  t.armed <- true;
  Hashtbl.replace t.drop (key ~src ~dst) p

let drop_p t ~src ~dst =
  match Hashtbl.find_opt t.drop (key ~src ~dst) with
  | Some p -> p
  | None -> t.default_drop

let lossy t ~src ~dst = drop_p t ~src ~dst > 0.0

let cut_links t links =
  t.armed <- true;
  List.iter
    (fun (src, dst) ->
      let k = key ~src ~dst in
      let n = match Hashtbl.find_opt t.cut k with Some n -> n | None -> 0 in
      Hashtbl.replace t.cut k (n + 1))
    links

let heal_links t links =
  List.iter
    (fun (src, dst) ->
      let k = key ~src ~dst in
      match Hashtbl.find_opt t.cut k with
      | Some n when n > 1 -> Hashtbl.replace t.cut k (n - 1)
      | Some _ -> Hashtbl.remove t.cut k
      | None -> ())
    links

let partitioned t ~src ~dst = Hashtbl.mem t.cut (key ~src ~dst)

let spike_links t links ~factor =
  if not (factor > 0.0) then
    invalid_arg "Link_faults.spike_links: non-positive factor";
  t.armed <- true;
  List.iter
    (fun (src, dst) ->
      let k = key ~src ~dst in
      let fs =
        match Hashtbl.find_opt t.slow k with Some fs -> fs | None -> []
      in
      Hashtbl.replace t.slow k (factor :: fs))
    links

let unspike_links t links ~factor =
  List.iter
    (fun (src, dst) ->
      let k = key ~src ~dst in
      match Hashtbl.find_opt t.slow k with
      | None -> ()
      | Some fs -> (
        let rec remove_one = function
          | [] -> []
          | f :: rest -> if f = factor then rest else f :: remove_one rest
        in
        match remove_one fs with
        | [] -> Hashtbl.remove t.slow k
        | fs -> Hashtbl.replace t.slow k fs))
    links

let delay_factor t ~src ~dst =
  match Hashtbl.find_opt t.slow (key ~src ~dst) with
  | None -> 1.0
  | Some fs -> List.fold_left ( *. ) 1.0 fs

type t = { mutable state : int64 }

let golden_gamma = 0x9e3779b97f4a7c15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Masking to 62 bits keeps the value non-negative; modulo bias is
     negligible for the bounds used in simulations (<< 2^62). *)
  let raw = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  raw mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let raw = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  (* 53 random bits scaled into [0, 1). *)
  raw /. 9007199254740992.0 *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~mean =
  let u = float t 1.0 in
  (* u = 0 would give infinity; nudge it. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

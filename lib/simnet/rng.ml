(* Splitmix-style generator on the native 63-bit int.

   The state lives in a mutable immediate field, so advancing the
   generator allocates nothing — unlike an [int64] state, where every
   arithmetic step and every state store boxes (this module sits on the
   per-send hot path of the simulator via [Delay.draw]). The mixing
   constants are the splitmix64 ones truncated to 63 bits; the weakened
   top bit costs a little avalanche quality at the high end, which the
   double mix round restores well enough for simulation workloads. *)

type t = { mutable state : int }

(* 0x9e3779b97f4a7c15 (the 64-bit golden gamma) mod 2^63. Addition
   wraps mod 2^63 on the native int, which is exactly the cyclic-group
   walk splitmix needs: the gamma is odd, so the state orbit still
   visits every residue. *)
let golden_gamma = 0x1e3779b97f4a7c15

let[@inline] mix z =
  let z = (z lxor (z lsr 30)) * 0x3f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let create seed = { state = mix seed }

(* Next raw 63-bit output (may be negative: the sign bit carries random
   bits too). *)
let[@inline] next t =
  let s = t.state + golden_gamma in
  t.state <- s;
  mix s

let bits t = next t
let int64 t = Int64.of_int (next t)

let split t = { state = next t }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: non-positive bound";
  (* Masking the sign bit keeps the value non-negative; modulo bias is
     negligible for the bounds used in simulations (<< 2^62). *)
  (next t land max_int) mod bound

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let[@inline] float t bound =
  (* 53 random bits scaled into [0, 1). *)
  float_of_int (next t land 0x1FFFFFFFFFFFFF) /. 9007199254740992.0 *. bound

let bool t = next t land 1 = 1

let[@inline] exponential t ~mean =
  let u = float t 1.0 in
  (* u = 0 would give infinity; nudge it. *)
  let u = if u <= 0. then 1e-300 else u in
  -.mean *. log u

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

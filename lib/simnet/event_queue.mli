(** A priority queue of timestamped events.

    Struct-of-arrays binary min-heap: times live in a flat unboxed
    [float array], so pushes and pops allocate nothing once the backing
    arrays have grown to the queue's high-water mark. Events with equal
    timestamps are delivered in insertion order (a monotonically
    increasing sequence number breaks ties), which makes simulations
    fully deterministic.

    Each event also carries an [int] {e tag} — a caller-owned word of
    payload that rides in an unboxed side array. {!Simnet.Engine} packs
    the event kind and the endpoint pids into it so that its per-send
    hot path allocates no wrapper records; callers that don't need it
    use {!push} and get tag [0]. *)

type 'a t

exception Empty
(** Raised by {!next_time}, {!next_tag} and {!pop_exn} on an empty
    queue. *)

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** [push q ~time payload] enqueues with tag [0].
    @raise Invalid_argument on a NaN timestamp. *)

val push_tagged : 'a t -> time:float -> tag:int -> 'a -> unit
(** As {!push}, also storing [tag] alongside the payload. *)

(** {1 Zero-boxing paths}

    Floats crossing a function boundary are boxed without flambda, so
    the engine's hot loop exchanges event times with the queue through
    flat float arrays instead of arguments and results. Ordinary
    callers should ignore this section. *)

val inbox : 'a t -> float array
(** A one-slot staging cell owned by the queue: store the event time
    into index 0 (an unboxed float-array write), then call
    {!push_inbox}. The array is stable across the queue's lifetime. *)

val push_inbox : 'a t -> tag:int -> 'a -> unit
(** As {!push_tagged}, taking the timestamp from [inbox q].(0).
    @raise Invalid_argument on a NaN timestamp. *)

val unsafe_times : 'a t -> float array
(** The backing timestamp array; index 0 is the earliest event's time
    while the queue is non-empty (check {!is_empty} first — the
    contents of unused slots are meaningless). The array is replaced
    when the queue grows: re-fetch after any push. *)

val unsafe_tags : 'a t -> int array
(** The backing tag array, parallel to {!unsafe_times}; index 0 is the
    earliest event's tag while the queue is non-empty. Same caveats as
    {!unsafe_times}: re-fetch after any push. *)

(** {1 Allocation-free access to the earliest event} *)

val next_time : 'a t -> float
(** Timestamp of the earliest event. @raise Empty when empty. *)

val next_tag : 'a t -> int
(** Tag of the earliest event. @raise Empty when empty. *)

val pop_exn : 'a t -> 'a
(** Remove the earliest event and return its payload. Read
    {!next_time} / {!next_tag} {e before} popping.
    @raise Empty when empty. *)

(** {1 Cohort draining}

    All events sharing the minimal timestamp form a subtree of the heap
    containing the root, so they can be removed together: one DFS plus
    one sift-down per vacated slot, instead of one full pop per event.
    {!Simnet.Engine.run} uses this to dispatch each timestamp's cohort
    without re-entering the heap per event. *)

val min_tied : 'a t -> bool
(** Whether the minimum timestamp is shared with at least one other
    pending event — i.e. whether {!drain_cohort} would return more than
    one. O(1); lets a dispatcher keep the plain {!pop_exn} path for
    untied minima and pay the cohort bookkeeping only on real ties. *)

val drain_cohort : 'a t -> int
(** [drain_cohort q] removes {e every} event whose timestamp equals
    [next_time q] and returns the cohort size (>= 1). Read the drained
    events — in insertion (FIFO) order — with {!cohort_tag} and
    {!cohort_payload}; the cohort buffer stays valid until the next
    [drain_cohort] call on [q]. Events pushed after the drain are not
    part of the cohort even if they carry the same timestamp.
    @raise Empty when empty. *)

val cohort_tag : 'a t -> int -> int
(** [cohort_tag q i] is the tag of the [i]-th drained event, [0 <= i <
    drain_cohort q]. *)

val cohort_payload : 'a t -> int -> 'a
(** [cohort_payload q i] is the payload of the [i]-th drained event. *)

(** {1 Option-returning conveniences} *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty.
    Allocates the returned tuple; the engine's hot path uses
    {!pop_exn} instead. *)

val peek_time : 'a t -> float option

val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit
(** Drop all pending events; the queue and its capacity remain usable.
    Sequence numbering continues from where it was. *)

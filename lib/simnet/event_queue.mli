(** A priority queue of timestamped events (binary min-heap).

    Events with equal timestamps are delivered in insertion order (a
    monotonically increasing sequence number breaks ties), which makes
    simulations fully deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> time:float -> 'a -> unit
(** @raise Invalid_argument on a NaN timestamp. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
val size : 'a t -> int
val is_empty : 'a t -> bool

val clear : 'a t -> unit

(* Struct-of-arrays binary min-heap. The keys live in a flat unboxed
   [float array] (times) plus an [int array] carrying the insertion
   sequence (the FIFO tie-break) packed with a payload handle, so sift
   operations compare and move immediates only — no boxed entry
   records, no per-push allocation once the arrays have grown to the
   high-water mark.

   (A 4-ary layout was tried and measured slower on the mesh benchmark:
   the bottom-up binary sift below does one highly predictable
   comparison per level, and halving the depth does not pay for the
   three-way min-child selection per level that arity 4 requires.)

   Payloads never move: each lives in a stable [slots] array cell whose
   index (the handle) rides in the low bits of the packed word. Sifting
   therefore touches only unboxed float and int arrays — if the boxed
   payload pointers sat in the heap order themselves, every level of
   every sift would pay a [caml_modify] write barrier (the arrays are
   long-lived, so each pointer store into them goes through the
   remembered set), which dominated pop cost in profiles.

   Sifts use the classic hole technique: the moving element is held in
   locals while parents/children shift by one slot, so each step is
   three array stores instead of a three-way swap. The sift loops use
   unchecked array access: every index is derived from the heap size,
   which [ensure_capacity] keeps within the length of all three key
   arrays (parents [p < i] and children [c < last <= size] included).

   Vacated slots are not cleared on pop (the generic interface has no
   dummy element to overwrite them with), so the queue can retain a
   reference to up to one popped payload per slot until the handle is
   reused — bounded by the heap's high-water mark, the same retention
   the previous boxed representation had. *)

(* Handles occupy the low [handle_bits] of the packed word, the
   insertion sequence the rest. Sequences are unique, so comparing
   packed words compares sequences; 2^24 events in flight (gigabytes of
   queue) and 2^38 pushes per queue are both far beyond any simulation
   this repo runs, and [ensure_capacity] checks the former. *)
(* U1 audit: every unchecked access in this file indexes [times],
   [packed] or [tags] with a position derived from [h.size], which
   [ensure_capacity] keeps within the length of all three parallel
   arrays (parents [p < i], children [c < last <= size], cohort holes
   [hole < bound <= size] included). [debug_checks] in Wops gates the
   equivalent dynamic assertions for the byte kernels; here the sift
   loops are bounds-audited by the invariant above. *)
[@@@lint.allow
  "U1: every index below is kept inside the parallel arrays by \
   ensure_capacity's invariant; Wops debug_checks gates the dynamic \
   assertions"]

let handle_bits = 24
let handle_mask = (1 lsl handle_bits) - 1

type 'a t = {
  mutable times : float array;
  mutable packed : int array;  (* seq lsl handle_bits lor handle *)
  mutable tags : int array;
  mutable slots : 'a array;  (* payload per handle; never moves *)
  mutable free : int array;  (* stack of unused handles *)
  mutable free_top : int;
  mutable size : int;
  mutable next_seq : int;
  (* one-slot staging cell for [push_inbox]: the caller stores the
     event time here with an unboxed float-array write, sidestepping
     the boxing a float argument would cost at the call boundary *)
  inbox : float array;
  (* cohort scratch for [drain_cohort]: the drained events in FIFO
     order, plus DFS work arrays. Like [slots], the payload buffer can
     retain references to already-dispatched events, bounded by the
     cohort high-water mark. *)
  mutable c_packed : int array;
  mutable c_tags : int array;
  mutable c_slots : 'a array;
  mutable c_stack : int array;  (* DFS to-visit stack *)
  mutable c_idx : int array  (* collected heap indices *)
}

exception Empty

let create () =
  { times = [||]; packed = [||]; tags = [||]; slots = [||]; free = [||];
    free_top = 0; size = 0; next_seq = 0; inbox = [| 0.0 |];
    c_packed = [||]; c_tags = [||]; c_slots = [||]; c_stack = [||];
    c_idx = [||] }

let size h = h.size
let is_empty h = h.size = 0

let clear h =
  (* return every handle to the free stack; payloads are retained until
     their slot is reused, as on pop *)
  h.size <- 0;
  h.free_top <- Array.length h.free;
  for i = 0 to h.free_top - 1 do
    h.free.(i) <- i
  done

let ensure_capacity h payload =
  if h.size >= Array.length h.times then begin
    let old_cap = Array.length h.times in
    let cap = max 16 (2 * old_cap) in
    if cap > handle_mask + 1 then
      invalid_arg "Event_queue: more than 2^24 events in flight";
    let times = Array.make cap 0.0 in
    let packed = Array.make cap 0 in
    let tags = Array.make cap 0 in
    let slots = Array.make cap payload in
    let free = Array.make cap 0 in
    Array.blit h.times 0 times 0 h.size;
    Array.blit h.packed 0 packed 0 h.size;
    Array.blit h.tags 0 tags 0 h.size;
    Array.blit h.slots 0 slots 0 old_cap;
    Array.blit h.free 0 free 0 h.free_top;
    (* the fresh handles join the free stack *)
    for i = old_cap to cap - 1 do
      free.(h.free_top + (i - old_cap)) <- i
    done;
    h.free_top <- h.free_top + (cap - old_cap);
    h.times <- times;
    h.packed <- packed;
    h.tags <- tags;
    h.slots <- slots;
    h.free <- free
  end

let inbox h = h.inbox
let unsafe_times h = h.times
let unsafe_tags h = h.tags

let push_inbox h ~tag payload =
  let time = h.inbox.(0) in
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  ensure_capacity h payload;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.free_top <- h.free_top - 1;
  let handle = h.free.(h.free_top) in
  h.slots.(handle) <- payload;
  let word = (seq lsl handle_bits) lor handle in
  let times = h.times and packed = h.packed and tags = h.tags in
  (* sift the hole up: a fresh seq is larger than every stored seq, so
     only strictly-earlier times move the hole *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < Array.unsafe_get times p then begin
      Array.unsafe_set times !i (Array.unsafe_get times p);
      Array.unsafe_set packed !i (Array.unsafe_get packed p);
      Array.unsafe_set tags !i (Array.unsafe_get tags p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set packed !i word;
  Array.unsafe_set tags !i tag

let push_tagged h ~time ~tag payload =
  h.inbox.(0) <- time;
  push_inbox h ~tag payload

let push h ~time payload = push_tagged h ~time ~tag:0 payload

let next_time h = if h.size = 0 then raise Empty else h.times.(0)
let next_tag h = if h.size = 0 then raise Empty else h.tags.(0)

let pop_exn h =
  if h.size = 0 then raise Empty;
  let handle = h.packed.(0) land handle_mask in
  let root = h.slots.(handle) in
  h.free.(h.free_top) <- handle;
  h.free_top <- h.free_top + 1;
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    let times = h.times and packed = h.packed and tags = h.tags in
    (* Re-insert the former last element bottom-up: the hole descends to
       a leaf along the min-child path (one comparison per level), then
       the element bubbles back up (usually not at all — a leaf element
       is among the largest). The resulting layout is identical to the
       textbook hole-stops-early sift, at roughly half the comparisons
       on the common path. *)
    let time = times.(last) and word = packed.(last) in
    let tag = tags.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (Array.unsafe_get times r < Array.unsafe_get times l
               || (Array.unsafe_get times r = Array.unsafe_get times l
                  && Array.unsafe_get packed r < Array.unsafe_get packed l))
          then r
          else l
        in
        Array.unsafe_set times !i (Array.unsafe_get times c);
        Array.unsafe_set packed !i (Array.unsafe_get packed c);
        Array.unsafe_set tags !i (Array.unsafe_get tags c);
        i := c
      end
    done;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if
        time < Array.unsafe_get times p
        || (time = Array.unsafe_get times p
           && word < Array.unsafe_get packed p)
      then begin
        Array.unsafe_set times !i (Array.unsafe_get times p);
        Array.unsafe_set packed !i (Array.unsafe_get packed p);
        Array.unsafe_set tags !i (Array.unsafe_get tags p);
        i := p
      end
      else continue := false
    done;
    Array.unsafe_set times !i time;
    Array.unsafe_set packed !i word;
    Array.unsafe_set tags !i tag
  end;
  root

let pop h =
  if h.size = 0 then None
  else begin
    let time = h.times.(0) in
    let payload = pop_exn h in
    Some (time, payload)
  end

let peek_time h = if h.size = 0 then None else Some h.times.(0)

(* ------------------------------------------------------------------ *)
(* Cohort draining.

   Every event whose time equals the minimum forms a subtree containing
   the root: a minimal element's ancestors all carry keys <= min, hence
   = min. [drain_cohort] DFS-collects that subtree, copies the events
   out (FIFO by sequence number), and refills the holes with elements
   taken from the heap's tail — one sift-down per hole instead of one
   full pop per event, and the engine's dispatch loop re-enters the
   heap once per timestamp instead of once per event. *)

let grow_int_array a n =
  if Array.length a >= n then a
  else begin
    let b = Array.make (max 16 (max n (2 * Array.length a))) 0 in
    Array.blit a 0 b 0 (Array.length a);
    b
  end

let ensure_cohort h n seed =
  h.c_packed <- grow_int_array h.c_packed n;
  h.c_tags <- grow_int_array h.c_tags n;
  if Array.length h.c_slots < n then begin
    let slots = Array.make (max 16 (max n (2 * Array.length h.c_slots))) seed in
    Array.blit h.c_slots 0 slots 0 (Array.length h.c_slots);
    h.c_slots <- slots
  end

(* Top-down sift of ([time], [word], [tag]) into the hole at [hole],
   staying within [bound]. Unlike [pop_exn]'s bottom-up variant this
   stops early — refill elements come from the tail (large keys), so
   they usually travel far, but holes start near the root and the
   bound is already reduced. Unsafe accesses: [hole < bound <= size]
   and child indices are checked against [bound]. *)
let sift_down h ~bound ~hole ~time ~word ~tag =
  let times = h.times and packed = h.packed and tags = h.tags in
  let i = ref hole in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 in
    if l >= bound then continue := false
    else begin
      let r = l + 1 in
      let c =
        if
          r < bound
          && (Array.unsafe_get times r < Array.unsafe_get times l
             || (Array.unsafe_get times r = Array.unsafe_get times l
                && Array.unsafe_get packed r < Array.unsafe_get packed l))
        then r
        else l
      in
      if
        Array.unsafe_get times c < time
        || (Array.unsafe_get times c = time && Array.unsafe_get packed c < word)
      then begin
        Array.unsafe_set times !i (Array.unsafe_get times c);
        Array.unsafe_set packed !i (Array.unsafe_get packed c);
        Array.unsafe_set tags !i (Array.unsafe_get tags c);
        i := c
      end
      else continue := false
    end
  done;
  Array.unsafe_set h.times !i time;
  Array.unsafe_set h.packed !i word;
  Array.unsafe_set h.tags !i tag

(* Whether the minimum timestamp is shared with at least one other
   pending event, i.e. [drain_cohort] would return a cohort larger than
   one. O(1): in a heap the only candidates for the second occurrence
   of the minimum are the root's children. *)
let min_tied h =
  h.size > 1
  && (h.times.(1) = h.times.(0) || (h.size > 2 && h.times.(2) = h.times.(0)))

let drain_cohort h =
  if h.size = 0 then raise Empty;
  let times = h.times and packed = h.packed and tags = h.tags in
  let t0 = times.(0) in
  if not (min_tied h) then begin
    (* singleton cohort: exactly a pop *)
    let tag = tags.(0) in
    let payload = pop_exn h in
    ensure_cohort h 1 payload;
    h.c_tags.(0) <- tag;
    h.c_slots.(0) <- payload;
    1
  end
  else begin
    (* collect the min-time subtree *)
    h.c_stack <- grow_int_array h.c_stack h.size;
    h.c_idx <- grow_int_array h.c_idx h.size;
    let stack = h.c_stack and idx = h.c_idx in
    let sp = ref 1 and count = ref 0 in
    stack.(0) <- 0;
    while !sp > 0 do
      decr sp;
      let i = stack.(!sp) in
      idx.(!count) <- i;
      incr count;
      let l = (2 * i) + 1 in
      if l < h.size && times.(l) = t0 then begin
        stack.(!sp) <- l;
        incr sp
      end;
      let r = l + 1 in
      if r < h.size && times.(r) = t0 then begin
        stack.(!sp) <- r;
        incr sp
      end
    done;
    let count = !count in
    (* copy the events out and free their handles; mark each vacated
       position with packed = -1 (real packed words are >= 0) so the
       tail scan below can recognize holes *)
    ensure_cohort h count h.slots.(packed.(0) land handle_mask);
    for j = 0 to count - 1 do
      let i = idx.(j) in
      let word = packed.(i) in
      let handle = word land handle_mask in
      h.c_packed.(j) <- word;
      h.c_tags.(j) <- tags.(i);
      h.c_slots.(j) <- h.slots.(handle);
      h.free.(h.free_top) <- handle;
      h.free_top <- h.free_top + 1;
      packed.(i) <- -1
    done;
    (* FIFO order: sequence numbers are the packed words' high bits and
       unique, so sorting by packed word sorts by arrival *)
    let c_packed = h.c_packed and c_tags = h.c_tags and c_slots = h.c_slots in
    for j = 1 to count - 1 do
      let w = c_packed.(j) and tg = c_tags.(j) in
      let pl = c_slots.(j) in
      let i = ref (j - 1) in
      while !i >= 0 && c_packed.(!i) > w do
        c_packed.(!i + 1) <- c_packed.(!i);
        c_tags.(!i + 1) <- c_tags.(!i);
        c_slots.(!i + 1) <- c_slots.(!i);
        decr i
      done;
      c_packed.(!i + 1) <- w;
      c_tags.(!i + 1) <- tg;
      c_slots.(!i + 1) <- pl
    done;
    (* refill the holes in decreasing index order with non-hole elements
       taken from the tail. Processing larger holes first means a
       sift-down (which only ever descends) never meets an unfilled
       hole: an unfilled hole's index is smaller than the current one,
       and children have larger indices. Holes at or beyond the new
       size fall off the end with the tail. *)
    let new_size = h.size - count in
    for j = 1 to count - 1 do
      (* sort idx descending (small cohorts: insertion sort) *)
      let v = idx.(j) in
      let i = ref (j - 1) in
      while !i >= 0 && idx.(!i) < v do
        idx.(!i + 1) <- idx.(!i);
        decr i
      done;
      idx.(!i + 1) <- v
    done;
    let tail = ref (h.size - 1) in
    h.size <- new_size;
    for j = 0 to count - 1 do
      let hole = idx.(j) in
      if hole < new_size then begin
        while packed.(!tail) < 0 do
          decr tail
        done;
        let time = times.(!tail) and word = packed.(!tail) in
        let tag = tags.(!tail) in
        decr tail;
        sift_down h ~bound:new_size ~hole ~time ~word ~tag
      end
    done;
    count
  end

let cohort_tag h i = h.c_tags.(i)
let cohort_payload h i = h.c_slots.(i)

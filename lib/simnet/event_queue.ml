type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* heap.(0 .. size-1) is a binary min-heap ordered by (time, seq). *)
  mutable size : int;
  mutable next_seq : int
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let earlier a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap h i j =
  let tmp = h.heap.(i) in
  h.heap.(i) <- h.heap.(j);
  h.heap.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier h.heap.(i) h.heap.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && earlier h.heap.(l) h.heap.(!smallest) then smallest := l;
  if r < h.size && earlier h.heap.(r) h.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let ensure_capacity h entry =
  if h.size >= Array.length h.heap then begin
    let cap = max 16 (2 * Array.length h.heap) in
    let fresh = Array.make cap entry in
    Array.blit h.heap 0 fresh 0 h.size;
    h.heap <- fresh
  end

let push h ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = h.next_seq; payload } in
  h.next_seq <- h.next_seq + 1;
  ensure_capacity h entry;
  h.heap.(h.size) <- entry;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.heap.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.heap.(0) <- h.heap.(h.size);
      sift_down h 0
    end;
    Some (top.time, top.payload)
  end

let peek_time h = if h.size = 0 then None else Some h.heap.(0).time
let size h = h.size
let is_empty h = h.size = 0
let clear h = h.size <- 0

(* Struct-of-arrays binary min-heap. The keys live in a flat unboxed
   [float array] (times) plus an [int array] carrying the insertion
   sequence (the FIFO tie-break) packed with a payload handle, so sift
   operations compare and move immediates only — no boxed entry
   records, no per-push allocation once the arrays have grown to the
   high-water mark.

   Payloads never move: each lives in a stable [slots] array cell whose
   index (the handle) rides in the low bits of the packed word. Sifting
   therefore touches only unboxed float and int arrays — if the boxed
   payload pointers sat in the heap order themselves, every level of
   every sift would pay a [caml_modify] write barrier (the arrays are
   long-lived, so each pointer store into them goes through the
   remembered set), which dominated pop cost in profiles.

   Sifts use the classic hole technique: the moving element is held in
   locals while parents/children shift by one slot, so each step is
   three array stores instead of a three-way swap. The sift loops use
   unchecked array access: every index is derived from the heap size,
   which [ensure_capacity] keeps within the length of all three key
   arrays (parents [p < i] and children [c < last <= size] included).

   Vacated slots are not cleared on pop (the generic interface has no
   dummy element to overwrite them with), so the queue can retain a
   reference to up to one popped payload per slot until the handle is
   reused — bounded by the heap's high-water mark, the same retention
   the previous boxed representation had. *)

(* Handles occupy the low [handle_bits] of the packed word, the
   insertion sequence the rest. Sequences are unique, so comparing
   packed words compares sequences; 2^24 events in flight (gigabytes of
   queue) and 2^38 pushes per queue are both far beyond any simulation
   this repo runs, and [ensure_capacity] checks the former. *)
let handle_bits = 24
let handle_mask = (1 lsl handle_bits) - 1

type 'a t = {
  mutable times : float array;
  mutable packed : int array;  (* seq lsl handle_bits lor handle *)
  mutable tags : int array;
  mutable slots : 'a array;  (* payload per handle; never moves *)
  mutable free : int array;  (* stack of unused handles *)
  mutable free_top : int;
  mutable size : int;
  mutable next_seq : int;
  (* one-slot staging cell for [push_inbox]: the caller stores the
     event time here with an unboxed float-array write, sidestepping
     the boxing a float argument would cost at the call boundary *)
  inbox : float array
}

exception Empty

let create () =
  { times = [||]; packed = [||]; tags = [||]; slots = [||]; free = [||];
    free_top = 0; size = 0; next_seq = 0; inbox = [| 0.0 |] }

let size h = h.size
let is_empty h = h.size = 0

let clear h =
  (* return every handle to the free stack; payloads are retained until
     their slot is reused, as on pop *)
  h.size <- 0;
  h.free_top <- Array.length h.free;
  for i = 0 to h.free_top - 1 do
    h.free.(i) <- i
  done

let ensure_capacity h payload =
  if h.size >= Array.length h.times then begin
    let old_cap = Array.length h.times in
    let cap = max 16 (2 * old_cap) in
    if cap > handle_mask + 1 then
      invalid_arg "Event_queue: more than 2^24 events in flight";
    let times = Array.make cap 0.0 in
    let packed = Array.make cap 0 in
    let tags = Array.make cap 0 in
    let slots = Array.make cap payload in
    let free = Array.make cap 0 in
    Array.blit h.times 0 times 0 h.size;
    Array.blit h.packed 0 packed 0 h.size;
    Array.blit h.tags 0 tags 0 h.size;
    Array.blit h.slots 0 slots 0 old_cap;
    Array.blit h.free 0 free 0 h.free_top;
    (* the fresh handles join the free stack *)
    for i = old_cap to cap - 1 do
      free.(h.free_top + (i - old_cap)) <- i
    done;
    h.free_top <- h.free_top + (cap - old_cap);
    h.times <- times;
    h.packed <- packed;
    h.tags <- tags;
    h.slots <- slots;
    h.free <- free
  end

let inbox h = h.inbox
let unsafe_times h = h.times

let push_inbox h ~tag payload =
  let time = h.inbox.(0) in
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  ensure_capacity h payload;
  let seq = h.next_seq in
  h.next_seq <- seq + 1;
  h.free_top <- h.free_top - 1;
  let handle = h.free.(h.free_top) in
  h.slots.(handle) <- payload;
  let word = (seq lsl handle_bits) lor handle in
  let times = h.times and packed = h.packed and tags = h.tags in
  (* sift the hole up: a fresh seq is larger than every stored seq, so
     only strictly-earlier times move the hole *)
  let i = ref h.size in
  h.size <- h.size + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 2 in
    if time < Array.unsafe_get times p then begin
      Array.unsafe_set times !i (Array.unsafe_get times p);
      Array.unsafe_set packed !i (Array.unsafe_get packed p);
      Array.unsafe_set tags !i (Array.unsafe_get tags p);
      i := p
    end
    else continue := false
  done;
  Array.unsafe_set times !i time;
  Array.unsafe_set packed !i word;
  Array.unsafe_set tags !i tag

let push_tagged h ~time ~tag payload =
  h.inbox.(0) <- time;
  push_inbox h ~tag payload

let push h ~time payload = push_tagged h ~time ~tag:0 payload

let next_time h = if h.size = 0 then raise Empty else h.times.(0)
let next_tag h = if h.size = 0 then raise Empty else h.tags.(0)

let pop_exn h =
  if h.size = 0 then raise Empty;
  let handle = h.packed.(0) land handle_mask in
  let root = h.slots.(handle) in
  h.free.(h.free_top) <- handle;
  h.free_top <- h.free_top + 1;
  let last = h.size - 1 in
  h.size <- last;
  if last > 0 then begin
    let times = h.times and packed = h.packed and tags = h.tags in
    (* Re-insert the former last element bottom-up: the hole descends to
       a leaf along the min-child path (one comparison per level), then
       the element bubbles back up (usually not at all — a leaf element
       is among the largest). The resulting layout is identical to the
       textbook hole-stops-early sift, at roughly half the comparisons
       on the common path. *)
    let time = times.(last) and word = packed.(last) in
    let tag = tags.(last) in
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 in
      if l >= last then continue := false
      else begin
        let r = l + 1 in
        let c =
          if
            r < last
            && (Array.unsafe_get times r < Array.unsafe_get times l
               || (Array.unsafe_get times r = Array.unsafe_get times l
                  && Array.unsafe_get packed r < Array.unsafe_get packed l))
          then r
          else l
        in
        Array.unsafe_set times !i (Array.unsafe_get times c);
        Array.unsafe_set packed !i (Array.unsafe_get packed c);
        Array.unsafe_set tags !i (Array.unsafe_get tags c);
        i := c
      end
    done;
    let continue = ref true in
    while !continue && !i > 0 do
      let p = (!i - 1) / 2 in
      if
        time < Array.unsafe_get times p
        || (time = Array.unsafe_get times p
           && word < Array.unsafe_get packed p)
      then begin
        Array.unsafe_set times !i (Array.unsafe_get times p);
        Array.unsafe_set packed !i (Array.unsafe_get packed p);
        Array.unsafe_set tags !i (Array.unsafe_get tags p);
        i := p
      end
      else continue := false
    done;
    Array.unsafe_set times !i time;
    Array.unsafe_set packed !i word;
    Array.unsafe_set tags !i tag
  end;
  root

let pop h =
  if h.size = 0 then None
  else begin
    let time = h.times.(0) in
    let payload = pop_exn h in
    Some (time, payload)
  end

let peek_time h = if h.size = 0 then None else Some h.times.(0)

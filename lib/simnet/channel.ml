type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  max_retries : int;
  ack : [ `Immediate | `Cumulative of float ]
}

let default =
  { rto = 5.0;
    backoff = 1.6;
    max_rto = 60.0;
    jitter = 0.1;
    max_retries = 50;
    ack = `Immediate
  }

let validate c =
  if not (c.rto > 0.0) then invalid_arg "Channel: rto must be > 0";
  if not (c.backoff >= 1.0) then invalid_arg "Channel: backoff must be >= 1";
  if not (c.max_rto >= c.rto) then invalid_arg "Channel: max_rto < rto";
  if not (c.jitter >= 0.0) then invalid_arg "Channel: negative jitter";
  if c.max_retries < 0 then invalid_arg "Channel: negative max_retries";
  match c.ack with
  | `Immediate -> ()
  | `Cumulative quiet ->
    if not (quiet >= 0.0) then invalid_arg "Channel: negative ack quiet window";
    if not (quiet < c.rto) then
      invalid_arg
        "Channel: ack quiet window must be < rto (acks must beat the \
         retransmission timer)"

let next_rto c rto = Float.min (rto *. c.backoff) c.max_rto

let backoff_schedule c ~retries =
  let rec go rto i acc =
    if i >= retries then List.rev acc else go (next_rto c rto) (i + 1) (rto :: acc)
  in
  go c.rto 0 []

(* Keys pack (src, dst, seq) into one int: pids are < 2^20 (the engine
   enforces this) and seqs < 2^19, so (((src << 20) | dst) << 19) | seq
   fits the 63-bit native int with a bit to spare. *)

let max_seq = 0x7FFFF

let link_key ~src ~dst = (src lsl 20) lor dst
let entry_key ~src ~dst ~seq = (link_key ~src ~dst lsl 19) lor seq

type entry = { payload : Obj.t; mutable tries : int; mutable rto : float }

(* Cumulative-mode receiver state, one per directed link (keyed by the
   data direction). [cum] is the highest seq below which everything has
   arrived; [ooo] holds the arrivals above the gap. *)
type rx = {
  mutable cum : int;  (* -1 until seq 0 arrives *)
  ooo : (int, unit) Hashtbl.t;
  mutable ack_pending : bool;  (* arrivals not yet covered by a sent ack *)
  mutable timer_armed : bool  (* a quiet-window ack timer is scheduled *)
}

type t = {
  config : config;
  pending : (int, entry) Hashtbl.t;  (* sender: entry_key -> unacked send *)
  seen : (int, unit) Hashtbl.t;  (* receiver: entry_key delivered already *)
  next_seq : (int, int) Hashtbl.t;  (* link_key -> next sequence number *)
  rx : (int, rx) Hashtbl.t;  (* cumulative receiver: link_key -> state *)
  floor : (int, int) Hashtbl.t;
      (* cumulative sender: link_key -> lowest seq a future ack could
         still discharge; lets ack_up_to remove a range in O(new) *)
  mutable retransmissions : int;
  mutable duplicates_suppressed : int;
  mutable abandoned : int
}

let create config =
  validate config;
  { config;
    pending = Hashtbl.create 256;
    seen = Hashtbl.create 256;
    next_seq = Hashtbl.create 64;
    rx = Hashtbl.create 64;
    floor = Hashtbl.create 64;
    retransmissions = 0;
    duplicates_suppressed = 0;
    abandoned = 0
  }

let config t = t.config

let alloc_seq t ~src ~dst =
  let k = link_key ~src ~dst in
  let seq = match Hashtbl.find_opt t.next_seq k with Some s -> s | None -> 0 in
  if seq > max_seq then
    invalid_arg
      (Printf.sprintf "Channel.alloc_seq: link %d->%d exhausted %d sequence numbers"
         src dst (max_seq + 1));
  Hashtbl.replace t.next_seq k (seq + 1);
  seq

let register t ~src ~dst ~seq payload =
  Hashtbl.replace t.pending (entry_key ~src ~dst ~seq)
    { payload; tries = 0; rto = t.config.rto };
  t.config.rto

let receive t ~src ~dst ~seq =
  let k = entry_key ~src ~dst ~seq in
  if Hashtbl.mem t.seen k then begin
    t.duplicates_suppressed <- t.duplicates_suppressed + 1;
    `Duplicate
  end
  else begin
    Hashtbl.add t.seen k ();
    `Fresh
  end

let ack t ~src ~dst ~seq = Hashtbl.remove t.pending (entry_key ~src ~dst ~seq)

(* ------------------------------------------------------------------ *)
(* Cumulative-ack mode *)

let rx_state t ~src ~dst =
  let k = link_key ~src ~dst in
  match Hashtbl.find_opt t.rx k with
  | Some r -> r
  | None ->
    let r =
      { cum = -1;
        ooo = Hashtbl.create 8;
        ack_pending = false;
        timer_armed = false
      }
    in
    Hashtbl.add t.rx k r;
    r

let receive_cum t ~src ~dst ~seq =
  let r = rx_state t ~src ~dst in
  if seq <= r.cum || Hashtbl.mem r.ooo seq then begin
    t.duplicates_suppressed <- t.duplicates_suppressed + 1;
    (* the retransmission means the sender missed our last ack: re-ack *)
    r.ack_pending <- true;
    `Duplicate
  end
  else begin
    if seq = r.cum + 1 then begin
      r.cum <- seq;
      while Hashtbl.mem r.ooo (r.cum + 1) do
        Hashtbl.remove r.ooo (r.cum + 1);
        r.cum <- r.cum + 1
      done
    end
    else Hashtbl.add r.ooo seq ();
    r.ack_pending <- true;
    `Fresh
  end

let arm_ack_timer t ~src ~dst =
  let r = rx_state t ~src ~dst in
  if r.timer_armed then false
  else begin
    r.timer_armed <- true;
    true
  end

let take_ack t ~src ~dst =
  let r = rx_state t ~src ~dst in
  r.timer_armed <- false;
  if r.ack_pending && r.cum >= 0 then begin
    r.ack_pending <- false;
    Some r.cum
  end
  else
    (* nothing contiguous to report yet (only out-of-order arrivals, an
       unencodable state): stay quiet, the next arrival re-arms *)
    None

let piggyback_ack t ~src ~dst =
  match Hashtbl.find_opt t.rx (link_key ~src ~dst) with
  | Some r when r.ack_pending && r.cum >= 0 ->
    (* the armed timer, if any, finds ack_pending = false and disarms *)
    r.ack_pending <- false;
    r.cum
  | Some _ | None -> -1

let ack_up_to t ~src ~dst ~upto =
  let lk = link_key ~src ~dst in
  let lo = match Hashtbl.find_opt t.floor lk with Some v -> v | None -> 0 in
  if upto >= lo then begin
    for seq = lo to upto do
      Hashtbl.remove t.pending ((lk lsl 19) lor seq)
    done;
    Hashtbl.replace t.floor lk (upto + 1)
  end

let on_timer t ~src ~dst ~seq =
  let k = entry_key ~src ~dst ~seq in
  match Hashtbl.find_opt t.pending k with
  | None -> `Done
  | Some entry ->
    if entry.tries >= t.config.max_retries then begin
      Hashtbl.remove t.pending k;
      t.abandoned <- t.abandoned + 1;
      `Give_up
    end
    else begin
      entry.tries <- entry.tries + 1;
      entry.rto <- next_rto t.config entry.rto;
      t.retransmissions <- t.retransmissions + 1;
      `Retransmit (entry.payload, entry.rto)
    end

let in_flight t = Hashtbl.length t.pending
let retransmissions t = t.retransmissions
let duplicates_suppressed t = t.duplicates_suppressed
let abandoned t = t.abandoned

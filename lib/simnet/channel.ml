type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  max_retries : int
}

let default =
  { rto = 5.0; backoff = 1.6; max_rto = 60.0; jitter = 0.1; max_retries = 50 }

let validate c =
  if not (c.rto > 0.0) then invalid_arg "Channel: rto must be > 0";
  if not (c.backoff >= 1.0) then invalid_arg "Channel: backoff must be >= 1";
  if not (c.max_rto >= c.rto) then invalid_arg "Channel: max_rto < rto";
  if not (c.jitter >= 0.0) then invalid_arg "Channel: negative jitter";
  if c.max_retries < 0 then invalid_arg "Channel: negative max_retries"

let next_rto c rto = Float.min (rto *. c.backoff) c.max_rto

let backoff_schedule c ~retries =
  let rec go rto i acc =
    if i >= retries then List.rev acc else go (next_rto c rto) (i + 1) (rto :: acc)
  in
  go c.rto 0 []

(* Keys pack (src, dst, seq) into one int: pids are < 2^20 (the engine
   enforces this) and seqs < 2^19, so (((src << 20) | dst) << 19) | seq
   fits the 63-bit native int with a bit to spare. *)

let max_seq = 0x7FFFF

let link_key ~src ~dst = (src lsl 20) lor dst
let entry_key ~src ~dst ~seq = (link_key ~src ~dst lsl 19) lor seq

type entry = { payload : Obj.t; mutable tries : int; mutable rto : float }

type t = {
  config : config;
  pending : (int, entry) Hashtbl.t;  (* sender: entry_key -> unacked send *)
  seen : (int, unit) Hashtbl.t;  (* receiver: entry_key delivered already *)
  next_seq : (int, int) Hashtbl.t;  (* link_key -> next sequence number *)
  mutable retransmissions : int;
  mutable duplicates_suppressed : int;
  mutable abandoned : int
}

let create config =
  validate config;
  { config;
    pending = Hashtbl.create 256;
    seen = Hashtbl.create 256;
    next_seq = Hashtbl.create 64;
    retransmissions = 0;
    duplicates_suppressed = 0;
    abandoned = 0
  }

let config t = t.config

let alloc_seq t ~src ~dst =
  let k = link_key ~src ~dst in
  let seq = match Hashtbl.find_opt t.next_seq k with Some s -> s | None -> 0 in
  if seq > max_seq then
    invalid_arg
      (Printf.sprintf "Channel.alloc_seq: link %d->%d exhausted %d sequence numbers"
         src dst (max_seq + 1));
  Hashtbl.replace t.next_seq k (seq + 1);
  seq

let register t ~src ~dst ~seq payload =
  Hashtbl.replace t.pending (entry_key ~src ~dst ~seq)
    { payload; tries = 0; rto = t.config.rto };
  t.config.rto

let receive t ~src ~dst ~seq =
  let k = entry_key ~src ~dst ~seq in
  if Hashtbl.mem t.seen k then begin
    t.duplicates_suppressed <- t.duplicates_suppressed + 1;
    `Duplicate
  end
  else begin
    Hashtbl.add t.seen k ();
    `Fresh
  end

let ack t ~src ~dst ~seq = Hashtbl.remove t.pending (entry_key ~src ~dst ~seq)

let on_timer t ~src ~dst ~seq =
  let k = entry_key ~src ~dst ~seq in
  match Hashtbl.find_opt t.pending k with
  | None -> `Done
  | Some entry ->
    if entry.tries >= t.config.max_retries then begin
      Hashtbl.remove t.pending k;
      t.abandoned <- t.abandoned + 1;
      `Give_up
    end
    else begin
      entry.tries <- entry.tries + 1;
      entry.rto <- next_rto t.config entry.rto;
      t.retransmissions <- t.retransmissions + 1;
      `Retransmit (entry.payload, entry.rto)
    end

let in_flight t = Hashtbl.length t.pending
let retransmissions t = t.retransmissions
let duplicates_suppressed t = t.duplicates_suppressed
let abandoned t = t.abandoned

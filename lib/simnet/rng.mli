(** Deterministic pseudo-random number generation.

    Every simulation draws all randomness from one of these generators so
    that an execution is a pure function of its seed: any failing test can
    be replayed exactly by re-running with the seed it printed. The
    generator is a splitmix mixer on the native 63-bit int — fast,
    allocation-free (the state is an immediate), and cheap to split into
    independent streams. *)

type t

val create : int -> t
(** [create seed] builds a generator; equal seeds yield equal streams. *)

val split : t -> t
(** A new generator statistically independent of the parent; both the
    parent and the child advance deterministically afterwards. *)

val bits : t -> int
(** Next raw 63-bit output word; the sign bit carries random bits, so
    the result may be negative. For callers that inline their own
    scaling arithmetic (the simulator's send path does, to keep floats
    unboxed); everyone else should use the typed draws below. *)

val int64 : t -> int64
(** Next raw output, widened to [int64] (63 significant bits). *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).
    @raise Invalid_argument if [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean (inverse-CDF method). *)

val shuffle_in_place : t -> 'a array -> unit
(** Fisher-Yates shuffle driven by this generator. *)

val pick : t -> 'a array -> 'a
(** Uniformly random element.
    @raise Invalid_argument on an empty array. *)

type violation = { what : string; index : int }

let pp_violation ppf v = Format.fprintf ppf "%s (event #%d)" v.what v.index

let time_of = function
  | Engine.Sent { time; _ }
  | Engine.Delivered { time; _ }
  | Engine.Dropped { time; _ }
  | Engine.Crashed { time; _ }
  | Engine.Restored { time; _ } ->
    time

let check events =
  let exception Bad of violation in
  (* outstanding sends per (src, dst) channel *)
  let in_flight : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let crashed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let last_time = ref neg_infinity in
  let fail what index = raise (Bad { what; index }) in
  let consume ~index ~src ~dst =
    match Hashtbl.find_opt in_flight (src, dst) with
    | Some r when !r > 0 -> decr r
    | Some _ | None ->
      fail
        (Printf.sprintf "delivery on %d->%d without a matching send" src dst)
        index
  in
  try
    List.iteri
      (fun index event ->
        let time = time_of event in
        if time < !last_time then fail "clock ran backwards" index;
        last_time := time;
        match event with
        | Engine.Sent { src; dst; _ } ->
          (match Hashtbl.find_opt in_flight (src, dst) with
          | Some r -> incr r
          | None -> Hashtbl.add in_flight (src, dst) (ref 1))
        | Engine.Delivered { src; dst; _ } ->
          consume ~index ~src ~dst;
          if Hashtbl.mem crashed dst then
            fail
              (Printf.sprintf "message delivered to crashed process %d" dst)
              index
        | Engine.Dropped { src; dst; _ } ->
          consume ~index ~src ~dst;
          (* drops may also occur at handler-less processes, but in
             protocol runs every process has a handler, so a drop implies
             a crashed destination; be permissive only about that case *)
          if not (Hashtbl.mem crashed dst) then
            fail
              (Printf.sprintf "message to live process %d dropped" dst)
              index
        | Engine.Crashed { pid; _ } ->
          if Hashtbl.mem crashed pid then
            fail (Printf.sprintf "process %d crashed twice" pid) index;
          Hashtbl.add crashed pid ()
        | Engine.Restored { pid; _ } ->
          if not (Hashtbl.mem crashed pid) then
            fail (Printf.sprintf "live process %d restored" pid) index;
          Hashtbl.remove crashed pid)
      events;
    Ok ()
  with Bad v -> Error v

let delivered_ratio events =
  let sent = ref 0 and delivered = ref 0 in
  List.iter
    (function
      | Engine.Sent _ -> incr sent
      | Engine.Delivered _ -> incr delivered
      | Engine.Dropped _ | Engine.Crashed _ | Engine.Restored _ -> ())
    events;
  if !sent = 0 then 1.0 else float_of_int !delivered /. float_of_int !sent

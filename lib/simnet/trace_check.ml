type violation = { what : string; index : int }

let pp_violation ppf v = Format.fprintf ppf "%s (event #%d)" v.what v.index

let time_of = function
  | Engine.Sent { time; _ }
  | Engine.Delivered { time; _ }
  | Engine.Dropped { time; _ }
  | Engine.Lost { time; _ }
  | Engine.Crashed { time; _ }
  | Engine.Restored { time; _ }
  | Engine.PartitionStart { time; _ }
  | Engine.PartitionHeal { time; _ }
  | Engine.Suspect { time; _ }
  | Engine.ScrubHit { time; _ }
  | Engine.AutoRepairStart { time; _ }
  | Engine.Healed { time; _ } ->
    time

let no_loss ~src:_ ~dst:_ = false

let check ?(lossy = no_loss) events =
  let exception Bad of violation in
  (* outstanding sends per (src, dst) channel *)
  let in_flight : (int * int, int ref) Hashtbl.t = Hashtbl.create 64 in
  let crashed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* lossy-model state: per-directed-link active partition layers, and
     per canonical link-set an up/down bit for the alternation axiom *)
  let cut : (int * int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let active_sets : ((int * int) list, unit) Hashtbl.t = Hashtbl.create 16 in
  (* healing axioms: suspicions voiced per target since its last
     crash/restore — an autonomous repair launch must be preceded by at
     least one (the detector, not the nemesis, is the trigger) *)
  let suspects : (int, int ref) Hashtbl.t = Hashtbl.create 16 in
  let suspects_of pid =
    match Hashtbl.find_opt suspects pid with
    | Some r -> r
    | None ->
      let r = ref 0 in
      Hashtbl.add suspects pid r;
      r
  in
  let canon links = List.sort_uniq compare links in
  let last_time = ref neg_infinity in
  let fail what index = raise (Bad { what; index }) in
  let consume ~index ~src ~dst =
    match Hashtbl.find_opt in_flight (src, dst) with
    | Some r when !r > 0 -> decr r
    | Some _ | None ->
      fail
        (Printf.sprintf "delivery on %d->%d without a matching send" src dst)
        index
  in
  try
    List.iteri
      (fun index event ->
        let time = time_of event in
        if time < !last_time then fail "clock ran backwards" index;
        last_time := time;
        match event with
        | Engine.Sent { src; dst; _ } ->
          (match Hashtbl.find_opt in_flight (src, dst) with
          | Some r -> incr r
          | None -> Hashtbl.add in_flight (src, dst) (ref 1))
        | Engine.Delivered { src; dst; _ } ->
          consume ~index ~src ~dst;
          if Hashtbl.mem crashed dst then
            fail
              (Printf.sprintf "message delivered to crashed process %d" dst)
              index
        | Engine.Dropped { src; dst; _ } ->
          consume ~index ~src ~dst;
          (* drops may also occur at handler-less processes, but in
             protocol runs every process has a handler, so a drop implies
             a crashed destination; be permissive only about that case *)
          if not (Hashtbl.mem crashed dst) then
            fail
              (Printf.sprintf "message to live process %d dropped" dst)
              index
        | Engine.Lost { src; dst; _ } ->
          consume ~index ~src ~dst;
          (* the lossy-model axiom: a loss needs an active cause on its
             link — a partition covering it, or a configured nonzero
             drop probability *)
          let partitioned =
            match Hashtbl.find_opt cut (src, dst) with
            | Some r -> !r > 0
            | None -> false
          in
          if not (partitioned || lossy ~src ~dst) then
            fail
              (Printf.sprintf
                 "message on %d->%d lost without an active link fault" src dst)
              index
        | Engine.Crashed { pid; _ } ->
          if Hashtbl.mem crashed pid then
            fail (Printf.sprintf "process %d crashed twice" pid) index;
          Hashtbl.add crashed pid ();
          suspects_of pid := 0
        | Engine.Restored { pid; _ } ->
          if not (Hashtbl.mem crashed pid) then
            fail (Printf.sprintf "live process %d restored" pid) index;
          Hashtbl.remove crashed pid;
          suspects_of pid := 0
        | Engine.Suspect { by; target; _ } ->
          if Hashtbl.mem crashed by then
            fail (Printf.sprintf "crashed process %d voiced a suspicion" by)
              index;
          incr (suspects_of target)
        | Engine.ScrubHit { pid; _ } ->
          if Hashtbl.mem crashed pid then
            fail (Printf.sprintf "crashed process %d ran a scrub" pid) index
        | Engine.AutoRepairStart { pid; _ } ->
          if not (Hashtbl.mem crashed pid) then
            fail
              (Printf.sprintf "auto-repair of live process %d launched" pid)
              index;
          if !(suspects_of pid) = 0 then
            fail
              (Printf.sprintf
                 "auto-repair of %d launched without a prior suspicion" pid)
              index
        | Engine.Healed { pid; _ } ->
          if Hashtbl.mem crashed pid then
            fail (Printf.sprintf "crashed process %d reported healed" pid)
              index
        | Engine.PartitionStart { links; _ } ->
          let key = canon links in
          if Hashtbl.mem active_sets key then
            fail "partition started twice without a heal" index;
          Hashtbl.add active_sets key ();
          List.iter
            (fun link ->
              match Hashtbl.find_opt cut link with
              | Some r -> incr r
              | None -> Hashtbl.add cut link (ref 1))
            links
        | Engine.PartitionHeal { links; _ } ->
          let key = canon links in
          if not (Hashtbl.mem active_sets key) then
            fail "heal of a partition that was not active" index;
          Hashtbl.remove active_sets key;
          List.iter
            (fun link ->
              match Hashtbl.find_opt cut link with
              | Some r when !r > 0 -> decr r
              | Some _ | None -> fail "partition link count underflow" index)
            links)
      events;
    Ok ()
  with Bad v -> Error v

let delivered_ratio events =
  let sent = ref 0 and delivered = ref 0 in
  List.iter
    (function
      | Engine.Sent _ -> incr sent
      | Engine.Delivered _ -> incr delivered
      | Engine.Dropped _ | Engine.Lost _ | Engine.Crashed _
      | Engine.Restored _ | Engine.PartitionStart _ | Engine.PartitionHeal _
      | Engine.Suspect _ | Engine.ScrubHit _ | Engine.AutoRepairStart _
      | Engine.Healed _ ->
        ())
    events;
  if !sent = 0 then 1.0 else float_of_int !delivered /. float_of_int !sent

let lost_count events =
  List.fold_left
    (fun acc -> function Engine.Lost _ -> acc + 1 | _ -> acc)
    0 events

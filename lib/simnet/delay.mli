(** Message-delay models for the simulated network.

    The paper's system model assumes reliable asynchronous channels:
    every message is eventually delivered, with no bound and no ordering
    guarantee. A delay model is a distribution from which each message's
    transit time is drawn independently; random delays exercise
    reordering, while {!constant} realizes the synchronous-bound model
    used by the latency analysis (Theorem 5.7). *)

type t

val constant : float -> t
(** Every message takes exactly the given time. Models the Δ-bounded
    network of the latency analysis. *)

val uniform : lo:float -> hi:float -> t
(** Uniform in [lo, hi].
    @raise Invalid_argument if [lo < 0] or [hi < lo]. *)

val exponential : mean:float -> cap:float -> t
(** Exponential with the given mean, truncated at [cap] (reliability of
    the channel requires finite delays). Heavy reordering. *)

val per_link : (src:int -> dst:int -> t) -> t
(** Delay chosen by a per-directed-link model, e.g. to simulate one slow
    server. The inner models are consulted on every message. *)

val draw : t -> Rng.t -> src:int -> dst:int -> float
(** Sample a transit time; always strictly positive so a message is never
    delivered at the instant it is sent. *)

val epsilon : float
(** The positive floor applied to every draw. *)

type shape =
  | Constant_delay of float
  | Uniform_delay of { lo : float; hi : float }
  | Exponential_delay of { mean : float; cap : float }
  | Dynamic_delay  (** [per_link]: parameters depend on the endpoints *)

val shape : t -> shape
(** The concrete distribution, for callers that specialise their
    sampling loop (the engine inlines the arithmetic on its send path;
    without flambda, going through {!draw} boxes every intermediate
    float). [Dynamic_delay] callers must fall back to {!draw}. *)

val upper_bound : t -> float option
(** A bound Δ such that every draw is <= Δ, when the model has one
    ([per_link] returns [None]). Used by latency assertions. *)

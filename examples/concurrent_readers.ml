(* Concurrency anatomy: several readers overlap a stream of writes.
   This example dissects what SODA's servers do under the hood — the
   registration windows, the relays of concurrently written coded
   elements, and the elastic read cost n/(n-f) * (delta_w + 1).

     dune exec examples/concurrent_readers.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Probe = Protocol.Probe
module History = Protocol.History
module Cost = Protocol.Cost

let () =
  let n = 10 and f = 3 in
  let params = Params.make ~n ~f () in
  let engine =
    Engine.create ~seed:4 ~delay:(Simnet.Delay.exponential ~mean:1.5 ~cap:10.0)
      ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value:(Bytes.make 2048 '0')
      ~num_writers:3 ~num_readers:3 ()
  in

  (* three writers fire continuously; three readers read in the thick of
     it *)
  for i = 0 to 2 do
    for j = 0 to 2 do
      Soda.Deployment.write d
        ~writer:i
        ~at:(5.0 +. (float_of_int j *. 70.0) +. (float_of_int i *. 4.0))
        (Bytes.make 2048 (Char.chr (Char.code 'a' + (3 * j) + i)))
    done;
    Soda.Deployment.read d ~reader:i ~at:(8.0 +. (float_of_int i *. 3.0)) ()
  done;
  Engine.run engine;

  let history = Soda.Deployment.history d in
  let probe = Soda.Deployment.probe d in
  let cost = Soda.Deployment.cost d in

  Printf.printf "history (%d operations, all complete: %b):\n"
    (History.size history)
    (History.all_complete history);
  Format.printf "%a@." History.pp history;

  print_endline "read anatomy:";
  List.iter
    (fun o ->
      if o.History.kind = History.Read then begin
        let rid = o.History.op in
        match Probe.registration_window probe ~rid with
        | Some (t1, t2) ->
          let relays = Probe.relays_of probe ~rid in
          Printf.printf
            "  read op%d: registered window [%.2f, %.2f] (%.2f units), %d \
             coded elements relayed, cost %.2f (quiescent would be %.2f)\n"
            rid t1 t2 (t2 -. t1) relays
            (Cost.comm_of_op cost ~op:rid)
            (float_of_int n /. float_of_int (n - f))
        | None -> Printf.printf "  read op%d: never registered?\n" rid
      end)
    (History.records history);

  (match
     Protocol.Atomicity.check_tagged ~initial_value:(Bytes.make 2048 '0')
       (History.records history)
   with
  | Ok () -> print_endline "\natomicity check: PASSED (Lemma 2.1 holds)"
  | Error v ->
    Format.printf "\natomicity check: FAILED: %a@."
      Protocol.Atomicity.pp_violation v)

(* SODAerr: commodity disks silently corrupt data. Two servers in this
   10-server cluster return garbage whenever they read their stored
   coded element from disk — and every read still returns the correct
   value, because SODAerr sizes its code as k = n - f - 2e and decodes
   through the errors (syndromes + Berlekamp/Sugiyama + Forney).

     dune exec examples/error_prone_disks.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Mds = Erasure.Mds
module Fragment = Erasure.Fragment

let () =
  (* First, the low-level picture: what silent corruption does to a
     plain erasures-only decoder. *)
  print_endline "-- codec level --";
  let value = Bytes.of_string "precious data that must not be mangled" in
  let vand = Mds.rs_vandermonde ~n:10 ~k:5 in
  let bch = Mds.rs_bch ~n:10 ~k:5 in
  let corrupt_two frags =
    List.mapi
      (fun i f -> if i < 2 then Fragment.corrupt f ~seed:99 else f)
      (Array.to_list frags)
  in
  (match Mds.decode vand (corrupt_two (Mds.encode vand value)) with
  | naive ->
    Printf.printf "erasures-only decoder on 2 corrupt fragments: %s\n"
      (if Bytes.equal naive value then "correct (lucky)"
       else "GARBAGE returned silently")
  | exception Invalid_argument _ ->
    (* corruption even mangled the length framing *)
    print_endline
      "erasures-only decoder on 2 corrupt fragments: GARBAGE (framing \
       destroyed)");
  let corrected = Mds.decode bch (corrupt_two (Mds.encode bch value)) in
  Printf.printf "errors-and-erasures decoder on the same input:  %s\n\n"
    (if Bytes.equal corrected value then "corrected, value intact"
     else "failed");

  (* Now the full protocol. e = 2 error-prone servers, f = 1 crash. *)
  print_endline "-- protocol level (SODAerr) --";
  let params = Params.make ~n:10 ~f:1 ~e:2 () in
  Printf.printf "n=10, f=1, e=2: code [10, k=n-f-2e=%d], readers wait for k+2e=%d elements\n"
    (Params.k_soda params)
    (Params.k_soda params + (2 * Params.e params));
  let engine =
    Engine.create ~seed:11 ~delay:(Simnet.Delay.uniform ~lo:0.3 ~hi:1.8) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params
      ~initial_value:(Bytes.make 256 '\000')
      ~error_prone:[ 2; 7 ] (* these two servers corrupt local reads *)
      ~num_writers:1 ~num_readers:2 ()
  in
  Printf.printf "servers 2 and 7 corrupt every coded element they read from disk\n";
  Soda.Deployment.crash_server d ~coordinate:4 ~at:30.0;

  let ok = ref 0 and total = ref 0 in
  for i = 0 to 4 do
    let payload = Bytes.make 256 (Char.chr (Char.code 'a' + i)) in
    let t = float_of_int i *. 60.0 in
    Soda.Deployment.write d ~writer:0 ~at:t payload;
    incr total;
    Soda.Deployment.read d ~reader:(i mod 2) ~at:(t +. 30.0)
      ~on_done:(fun v ->
        if Bytes.equal v payload then incr ok
        else
          Printf.printf "READ %d RETURNED A CORRUPTED VALUE — would be a bug\n" i)
      ()
  done;
  Engine.run engine;
  Printf.printf
    "%d/%d reads returned the exact written value, through 2 corrupting \
     disks and 1 crashed server\n"
    !ok !total;

  let cost = Soda.Deployment.cost d in
  Printf.printf
    "total storage: %.2f — the price of error tolerance: n/(n-f-2e) = %.2f \
     instead of n/(n-f) = %.2f\n"
    (Protocol.Cost.max_total_storage cost)
    (10.0 /. 5.0) (10.0 /. 9.0);

  (* doubles as a CI smoke test: every read must have decoded through
     the corruption — a single wrong or missing read fails the job *)
  if !ok <> !total then begin
    Printf.eprintf "FAIL: only %d/%d reads returned the written value\n" !ok
      !total;
    exit 1
  end

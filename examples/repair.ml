(* Repair: the paper's future-work item (ii), implemented. A server
   machine dies, its replacement comes up empty, rebuilds its coded
   element from k peers for about one value unit of traffic, and becomes
   load-bearing again.

     dune exec examples/repair.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Probe = Protocol.Probe
module Cost = Protocol.Cost
module Tag = Protocol.Tag

let () =
  let params = Params.make ~n:6 ~f:2 () in
  Printf.printf "n=6 servers, f=2, [6,4] MDS code\n\n";
  let engine =
    Engine.create ~seed:8 ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:1.5) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value:(Bytes.make 2048 '0')
      ~num_writers:1 ~num_readers:1 ()
  in

  (* life before the failure *)
  Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 2048 'A');

  (* server 4 dies; the system keeps going without it *)
  Soda.Deployment.crash_server d ~coordinate:4 ~at:20.0;
  print_endline "t=20: server 4 crashes";
  let v_latest = Bytes.make 2048 'B' in
  Soda.Deployment.write d ~writer:0 ~at:40.0 v_latest;
  print_endline "t=40: a write lands while server 4 is down";

  (* the replacement machine boots at t=100 and repairs *)
  let repair_op = Soda.Deployment.repair_server d ~coordinate:4 ~at:100.0 in
  print_endline "t=100: server 4 restored empty; repair protocol starts";

  (* after repair, two OTHER servers crash: f = 2 budget, and now the
     repaired server's coded element is needed for any read to decode *)
  Soda.Deployment.crash_server d ~coordinate:0 ~at:200.0;
  Soda.Deployment.crash_server d ~coordinate:1 ~at:200.0;
  print_endline "t=200: servers 0 and 1 crash — only 4 servers remain (= k)";

  let result = ref None in
  Soda.Deployment.read d ~reader:0 ~at:250.0
    ~on_done:(fun v -> result := Some v)
    ();
  Engine.run engine;

  List.iter
    (function
      | Probe.Repair_started { server; time } ->
        Printf.printf "t=%.1f: server %d began repair\n" time server
      | Probe.Repaired { server; tag; time } ->
        Printf.printf "t=%.1f: server %d repaired, now holds tag %s\n" time
          server (Tag.to_string tag)
      | _ -> ())
    (Probe.events (Soda.Deployment.probe d));

  Printf.printf "repair traffic: %.2f value units (one decode's worth)\n"
    (Cost.comm_of_op (Soda.Deployment.cost d) ~op:repair_op);

  match !result with
  | Some v ->
    Printf.printf
      "t=%.1f: read completed through the repaired server — latest value: %b\n"
      (Engine.now engine) (Bytes.equal v v_latest)
  | None ->
    print_endline
      "read did not complete — without repair this is exactly what would \
       have happened (3 crashes > f)"

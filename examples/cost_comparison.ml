(* Run the identical workload through ABD (replication), CAS, CASGC and
   SODA, and compare what each one paid — a miniature, measured version
   of the paper's Table I.

     dune exec examples/cost_comparison.exe
*)

module Params = Protocol.Params
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics
module Report = Harness.Report

let () =
  let n = 10 in
  let f = Params.fmax ~n in
  let params = Params.make ~n ~f () in
  Printf.printf
    "identical workload (3 writers, 3 readers, 4 ops each, value = 4 KiB) on \
     n=%d servers, f=%d\n"
    n f;

  let workload =
    Workload.concurrent ~params ~value_len:4096 ~seed:2026 ~num_writers:3
      ~num_readers:3 ~ops_per_client:4 ()
  in
  let algorithms =
    [ ("ABD", Runner.Abd);
      ("CAS", Runner.Cas { gc_depth = None });
      ("CASGC(2)", Runner.Cas { gc_depth = Some 2 });
      ("SODA", Runner.Soda)
    ]
  in
  let rows =
    List.map
      (fun (name, algo) ->
        let s = Metrics.summarize (Runner.run algo workload) in
        [ name;
          Report.f2 s.Metrics.write_cost.mean;
          Report.f2 s.Metrics.read_cost.mean;
          Report.f2 s.Metrics.storage_max;
          Report.f2 s.Metrics.write_latency.mean;
          Report.f2 s.Metrics.read_latency.mean;
          string_of_int s.Metrics.messages_sent;
          (if s.Metrics.liveness && s.Metrics.atomic then "yes" else "NO")
        ])
      algorithms
  in
  Report.table ~title:"measured costs (value units; latency in sim time)"
    ~header:
      [ "algorithm"; "write"; "read"; "storage"; "w-lat"; "r-lat"; "msgs";
        "atomic+live"
      ]
    rows;
  print_newline ();
  print_endline "the paper's trade-off, visible in the numbers:";
  print_endline "  - ABD pays n everywhere;";
  print_endline
    "  - CAS/CASGC pay n/(n-2f) per op, but store every version (CAS) or \
     delta+1 versions (CASGC);";
  print_endline
    "  - SODA stores the bare minimum n/(n-f) and its reads stay cheap, \
     paying O(f^2) only on writes."

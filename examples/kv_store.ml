(* A miniature key-value store: the paper's "shared atomic memory by
   composition" (Section II) in action. Several named SODA registers
   share one 8-machine fleet; clients hammer different keys
   concurrently; one machine dies and is replaced mid-run; every key
   stays atomic.

     dune exec examples/kv_store.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params

let () =
  let params = Params.make ~n:8 ~f:3 () in
  let engine =
    Engine.create ~seed:12 ~delay:(Simnet.Delay.uniform ~lo:0.3 ~hi:2.0) ()
  in
  let keys = [ "users/alice"; "users/bob"; "config/limits"; "jobs/queue" ] in
  let store =
    Soda.Store.create ~engine ~params ~objects:keys ~num_writers:2
      ~num_readers:2 ()
  in
  Printf.printf "8-machine fleet, f=3, %d keys, [8,5] MDS code per key\n\n"
    (List.length keys);

  (* a few rounds of writes and reads across the keys, from both client
     pairs; one client writes different keys back-to-back — legal,
     because well-formedness is per object *)
  let final = Hashtbl.create 8 in
  List.iteri
    (fun i key ->
      let base = float_of_int i *. 15.0 in
      Soda.Store.write store ~obj:key ~writer:(i mod 2) ~at:base
        (Bytes.of_string (key ^ "=v1"));
      Soda.Store.write store ~obj:key
        ~writer:((i + 1) mod 2)
        ~at:(base +. 120.0)
        (Bytes.of_string (key ^ "=v2")))
    keys;

  (* machine 5 dies at t=60 and is replaced at t=180: all four registers
     on it are rebuilt by the repair protocol *)
  Soda.Store.crash_server store ~coordinate:5 ~at:60.0;
  Soda.Store.repair_server store ~coordinate:5 ~at:180.0;
  print_endline "t=60: machine 5 crashes (all keys lose its coded elements)";
  print_endline "t=180: replacement machine rebuilds every key's element\n";

  List.iteri
    (fun i key ->
      Soda.Store.read store ~obj:key ~reader:(i mod 2) ~at:300.0
        ~on_done:(fun v -> Hashtbl.replace final key (Bytes.to_string v))
        ())
    keys;
  Engine.run engine;

  List.iter
    (fun key ->
      match Hashtbl.find_opt final key with
      | Some v -> Printf.printf "  %-15s -> %s\n" key v
      | None -> Printf.printf "  %-15s -> READ DID NOT COMPLETE\n" key)
    keys;

  (match Soda.Store.check_atomicity store with
  | Ok () -> print_endline "\nevery key's history is atomic"
  | Error (key, v) ->
    Format.printf "\nATOMICITY VIOLATION on %s: %a@." key
      Protocol.Atomicity.pp_violation v);
  Printf.printf
    "per-key storage: n/(n-f) = %.2f value units — replication (ABD) would \
     use %d, a %.1fx saving on every key\n"
    (8.0 /. 5.0) 8
    (8.0 /. (8.0 /. 5.0))

(* Quickstart: bring up a 7-server SODA cluster on the simulated
   network, write a value, read it back, and look at what it cost.

     dune exec examples/quickstart.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Cost = Protocol.Cost

let () =
  (* A system of n = 7 servers tolerating f = 2 crashes: SODA picks an
     [n, k] = [7, 5] MDS code and each server stores a single coded
     element of 1/5 the value size. *)
  let params = Params.make ~n:7 ~f:2 () in

  (* The engine simulates the asynchronous network: every message gets
     an independent random delay, so messages reorder freely. Fixing the
     seed makes the whole run reproducible. *)
  let engine =
    Engine.create ~seed:42 ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:3.0) ()
  in

  let deployment =
    Soda.Deployment.deploy ~engine ~params
      ~initial_value:(Bytes.make 4096 '\000')
      ~num_writers:1 ~num_readers:1 ()
  in

  (* a 4 KiB payload, matching the deployment's initial value size so
     the normalized cost figures line up with the formulas *)
  let value =
    let text = String.concat " " (List.init 700 string_of_int) in
    Bytes.of_string (String.sub (text ^ String.make 4096 '.') 0 4096)
  in
  Printf.printf "writing %d bytes through writer 0...\n" (Bytes.length value);

  Soda.Deployment.write deployment ~writer:0 ~at:0.0
    ~on_done:(fun () -> print_endline "write completed (k servers acked)")
    value;

  Soda.Deployment.read deployment ~reader:0 ~at:100.0
    ~on_done:(fun v ->
      Printf.printf "read returned %d bytes; matches written value: %b\n"
        (Bytes.length v) (Bytes.equal v value))
    ();

  (* Run the simulation to quiescence. *)
  Engine.run engine;

  let cost = Soda.Deployment.cost deployment in
  Printf.printf "\n-- costs (normalized to the value size) --\n";
  Printf.printf "write communication: %.2f   (bound 5f^2 = %.0f)\n"
    (Cost.comm_of_op cost ~op:0)
    (5.0 *. float_of_int (Params.f params * Params.f params));
  Printf.printf "read communication:  %.2f   (n/(n-f) = %.2f when quiescent)\n"
    (Cost.comm_of_op cost ~op:1)
    (float_of_int (Params.n params)
    /. float_of_int (Params.n params - Params.f params));
  Printf.printf "total storage:       %.2f   (n/(n-f) = %.2f; ABD would pay %d)\n"
    (Cost.max_total_storage cost)
    (float_of_int (Params.n params)
    /. float_of_int (Params.n params - Params.f params))
    (Params.n params);
  Printf.printf "messages exchanged:  %d in %.1f simulated time units\n"
    (Engine.messages_sent engine) (Engine.now engine)

(* The paper's motivating example (Section I): storing a large value on a
   100-server system. With replication (ABD), a 1 TB value costs 100 TB
   of storage and every operation moves up to 100 TB; with a [100, 50]
   MDS code the storage drops to 2 TB — "almost two orders of magnitude
   lower". SODA at f = 50-crash tolerance uses k = n - f = 50 and
   achieves exactly that 2x total storage, worst case, at all times.

   The simulation scales the terabyte down to 64 KiB — the *ratios* are
   what the paper talks about, and they are size-independent.

     dune exec examples/hundred_servers.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Cost = Protocol.Cost

let () =
  let n = 100 in
  let f = 49 in
  (* k = n - f = 51 ~ the paper's k = 50 example *)
  let params = Params.make ~n ~f () in
  let value_len = 65536 in
  Printf.printf
    "100-server system, tolerating f=%d crashes; SODA uses a [%d, %d] MDS \
     code\n"
    f n (Params.k_soda params);
  Printf.printf "value scaled to %d KiB (think: 1 TB)\n\n" (value_len / 1024);

  let engine =
    Engine.create ~seed:1 ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:2.0) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params
      ~initial_value:(Bytes.make value_len '\000')
      ~num_writers:1 ~num_readers:1 ()
  in
  let ok = ref false in
  let value = Bytes.init value_len (fun i -> Char.chr (i land 0xff)) in
  Soda.Deployment.write d ~writer:0 ~at:0.0 value;
  Soda.Deployment.read d ~reader:0 ~at:100.0
    ~on_done:(fun v -> ok := Bytes.equal v value)
    ();
  Engine.run engine;

  let cost = Soda.Deployment.cost d in
  let storage = Cost.max_total_storage cost in
  Printf.printf "read returned the full value intact: %b\n\n" !ok;
  Printf.printf "              total storage   (as terabytes, if the value were 1 TB)\n";
  Printf.printf "ABD           %7.2f          %7.2f TB\n" (float_of_int n)
    (float_of_int n);
  Printf.printf "SODA          %7.2f          %7.2f TB   <- the paper's ~2 TB\n"
    storage storage;
  Printf.printf "\nread cost: %.2f (vs ABD's %d), write cost: %.2f (bound 5f^2 = %d)\n"
    (Cost.comm_of_op cost ~op:1)
    n
    (Cost.comm_of_op cost ~op:0)
    (5 * f * f);
  Printf.printf "messages: %d across %d processes\n"
    (Engine.messages_sent engine)
    (Engine.process_count engine)

(* A sharded keyspace: many logical keys multiplexed over one shared
   fleet of 12 servers in 3 failure domains (racks). Each key is an
   independent [6,4] SODA instance placed by consistent hashing so
   that no rack holds more than f = 2 of its fragments — then a whole
   rack crashes and every key keeps serving.

     dune exec examples/keyspace.exe
*)

module Engine = Simnet.Engine
module Topology = Soda.Topology
module Placement = Soda.Placement
module Keyspace = Soda.Keyspace

let () =
  let engine =
    Engine.create ~seed:11 ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:2.0) ()
  in

  (* the fleet: 12 servers round-robined into 3 racks, each key a 4+2
     code spread by consistent hashing *)
  let topology = Topology.make ~servers:12 ~domains:3 () in
  let placement =
    Placement.create ~topology
      ~params:(Placement.preset_params `P4_2)
      ~policy:Placement.Consistent_hash ()
  in
  Printf.printf "placement is domain-safe: %b\n"
    (Placement.domain_safe placement);

  let ks =
    Soda.Deployment.create ~engine ~topology ~placement
      ~plane:Soda.Config.batched_plane ~num_writers:2 ~num_readers:2 ()
  in

  (* 16 keys, each written once; note where key 0 lives *)
  let keys = 16 in
  Printf.printf "key 0 is placed on servers [%s]\n\n"
    (String.concat "; "
       (Array.to_list
          (Array.map string_of_int (Keyspace.placement_of ks ~key:0))));
  for key = 0 to keys - 1 do
    Keyspace.write ks ~key ~writer:(key mod 2) ~at:(float_of_int (key * 3))
      (Bytes.of_string (Printf.sprintf "value-for-key-%d" key))
  done;

  (* rack 1 (servers 1, 4, 7, 10) dies wholesale at t=100 *)
  Keyspace.crash_domain ks ~domain:1 ~at:100.0;
  print_endline "rack 1 (servers 1, 4, 7, 10) crashes at t=100";

  (* every key is read after the rack loss; domain-safe placement
     means each instance lost at most f = 2 of its 6 fragments *)
  let completed = ref 0 in
  for key = 0 to keys - 1 do
    Keyspace.read ks ~key ~reader:(key mod 2)
      ~at:(150.0 +. float_of_int key)
      ~on_done:(fun v ->
        incr completed;
        assert (Bytes.to_string v = Printf.sprintf "value-for-key-%d" key))
      ()
  done;

  Engine.run engine;

  Printf.printf "\n%d/%d reads completed after losing a whole rack\n"
    !completed keys;
  (match Keyspace.check_atomicity ks with
  | Ok () -> print_endline "every key's history is atomic"
  | Error (key, _) -> Printf.printf "key %d violated atomicity — a bug!\n" key);
  Printf.printf "total messages: %d (%.1f per op)\n"
    (Engine.messages_sent engine)
    (float_of_int (Engine.messages_sent engine)
    /. float_of_int (2 * keys));
  if !completed <> keys then exit 1

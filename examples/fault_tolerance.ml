(* Fault tolerance: SODA keeps serving while f servers crash — one of
   them mid-write — and even a writer crash in the middle of its
   MD-VALUE dispersal leaves the system consistent (the first f+1
   servers finish the dispersal on the writer's behalf).

     dune exec examples/fault_tolerance.exe
*)

module Engine = Simnet.Engine
module Params = Protocol.Params
module Tag = Protocol.Tag

let () =
  let params = Params.make ~n:9 ~f:4 () in
  let engine =
    Engine.create ~seed:7 ~trace:true
      ~delay:(Simnet.Delay.uniform ~lo:0.5 ~hi:2.0) ()
  in
  let d =
    Soda.Deployment.deploy ~engine ~params ~initial_value:(Bytes.make 1024 '0')
      ~disperse_step:0.4 ~num_writers:2 ~num_readers:1 ()
  in

  Printf.printf "n=9 servers, tolerating f=4 crashes; [9,5] MDS code\n\n";

  (* First write completes cleanly. *)
  Soda.Deployment.write d ~writer:0 ~at:0.0
    ~on_done:(fun () -> print_endline "write #1 completed")
    (Bytes.make 1024 'A');

  (* Crash four servers at awkward moments, one right in the middle of
     the second write's dispersal. *)
  Soda.Deployment.crash_server d ~coordinate:0 ~at:20.0;
  Soda.Deployment.crash_server d ~coordinate:3 ~at:52.5;
  Soda.Deployment.crash_server d ~coordinate:6 ~at:53.0;
  Soda.Deployment.crash_server d ~coordinate:8 ~at:54.0;
  List.iter
    (fun (c, t) -> Printf.printf "scheduling crash of server %d at t=%.1f\n" c t)
    [ (0, 20.0); (3, 52.5); (6, 53.0); (8, 54.0) ];

  Soda.Deployment.write d ~writer:1 ~at:50.0
    ~on_done:(fun () ->
      print_endline "write #2 completed (despite three crashes mid-flight)")
    (Bytes.make 1024 'B');

  (* And the writer of a third write dies mid-dispersal. The MD-VALUE
     primitive guarantees all-or-nothing delivery at the surviving
     servers, so the system stays consistent either way. *)
  Soda.Deployment.write d ~writer:0 ~at:100.0 (Bytes.make 1024 'C');
  Soda.Deployment.crash_writer d ~writer:0 ~at:103.2;
  print_endline "writer 0 will crash at t=103.2, mid-dispersal of write #3";

  let read_result = ref None in
  Soda.Deployment.read d ~reader:0 ~at:150.0
    ~on_done:(fun v -> read_result := Some v)
    ();

  Engine.run engine;

  (match !read_result with
  | Some v ->
    Printf.printf
      "\nread completed after all failures; value starts with %C (written by \
       write #%s)\n"
      (Bytes.get v 0)
      (match Bytes.get v 0 with 'B' -> "2" | 'C' -> "3 (it survived!)" | _ -> "?")
  | None -> print_endline "\nREAD DID NOT COMPLETE — this would be a bug");

  (* Show that the survivors agree on a single tag. *)
  print_endline "\nsurviving servers and their stored tags:";
  List.iter
    (fun c ->
      let pid = Soda.Deployment.server_pid d ~coordinate:c in
      if not (Engine.is_crashed engine pid) then
        Printf.printf "  server %d: tag %s\n" c
          (Tag.to_string (Soda.Server.stored_tag (Soda.Deployment.server d ~coordinate:c))))
    (List.init 9 Fun.id);

  let crashes =
    List.length
      (List.filter
         (function Engine.Crashed _ -> true | _ -> false)
         (Engine.trace_events engine))
  in
  Printf.printf "\ntrace recorded %d crash events and %d messages total\n"
    crashes
    (Engine.messages_sent engine)

(* M-rules: protocol conformance against a declared spec table.

   The spec lives on the message type itself: a variant type marked
   [@@lint.protocol] is a protocol alphabet, and each constructor
   declares its routes with [@lint.msg "sender -> handler"] (multiple
   routes comma-separated; role names are source-file basenames in the
   declaring directory, e.g. "writer -> server"). A constructor kept
   deliberately outside the conformance check carries
   [@lint.ignore "why"] instead.

   Observed behavior is harvested from every unit: a [Texp_construct]
   of a protocol constructor in a role file is an emission; a
   [Tpat_construct] that binds at least one payload variable is a
   handling site (an or-arm that matches [C _] without touching the
   payload is an explicit ignore, not a handler — that distinction is
   what lets the big "stale traffic" arms in writer/reader stay silent).
   Only files in the declaring directory participate; the declaring
   file itself is exempt unless it is a role (messages.ml's [pp] and
   [data_bytes] are infrastructure, not handlers).

   Checks:
     M1  constructor with no [@lint.msg] and no [@lint.ignore]; or a
         role file emitting/handling a constructor its spec does not
         route through it (reported at the drifting site)
     M2  declared handler has no match arm binding the payload —
         sent-but-never-handled dead message
     M3  declared sender never constructs it — handled-but-never-sent
         dead handler
     M4  an [@lint.envelope] constructor nested directly inside another
         envelope construction (piggyback payloads must never nest)

   Known static limits, by design: a forward of an incoming message
   variable ([send_to_coordinate t ctx msg]) is not an emission, and
   M4 only sees syntactic nesting — both are documented in DESIGN.md. *)

type site = { s_file : string; s_scoped : bool; s_allowed : string list }

type cons = {
  c_name : string;
  c_loc : Location.t;
  c_senders : string list;
  c_handlers : string list;
  c_has_spec : bool;
  c_bad_spec : bool;
  c_ignored : bool; (* [@lint.ignore] present (reason or not) *)
  c_envelope : bool;
  c_allow : Lint_kb.Allows.entry list; (* decl-level [@lint.allow] *)
  c_bare : Location.t list; (* spec-ish attrs missing their reason *)
  mutable c_emitted : site list;
  mutable c_handled : site list
}

type proto = {
  p_tname : string; (* canonical type name *)
  p_dir : string; (* directory of the declaring source *)
  p_source : string;
  p_cons : (string, cons) Hashtbl.t
}

let protos : (string, proto) Hashtbl.t = Hashtbl.create 8

(* "a -> b, c -> d e" -> senders [a;c], handlers [b;d;e]; None on a
   malformed clause *)
let parse_routes payload : (string list * string list) option =
  let clauses = String.split_on_char ',' payload in
  let parse_clause acc clause =
    match acc with
    | None -> None
    | Some (senders, handlers) -> (
      let tokens =
        String.split_on_char ' ' clause |> List.filter (fun s -> s <> "")
      in
      let rec split lhs = function
        | "->" :: rhs -> Some (lhs, rhs)
        | tok :: rest -> split (tok :: lhs) rest
        | [] -> None
      in
      match split [] tokens with
      | Some ((_ :: _ as lhs), (_ :: _ as rhs)) ->
        Some (List.rev_append lhs senders, List.rev_append rhs handlers)
      | _ -> None)
  in
  List.fold_left parse_clause (Some ([], [])) clauses

let string_payload (p : Parsetree.payload) =
  match p with
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _
        }
      ] ->
    Some s
  | _ -> None

let classify_cons (cd : Typedtree.constructor_declaration) : cons =
  let senders = ref []
  and handlers = ref []
  and has_spec = ref false
  and bad_spec = ref false
  and ignored = ref false
  and envelope = ref false
  and bare = ref [] in
  List.iter
    (fun (a : Parsetree.attribute) ->
      match a.attr_name.txt with
      | "lint.msg" -> (
        has_spec := true;
        match Option.bind (string_payload a.attr_payload) parse_routes with
        | Some (s, h) ->
          senders := s @ !senders;
          handlers := h @ !handlers
        | None -> bad_spec := true)
      | "lint.ignore" -> (
        ignored := true;
        match string_payload a.attr_payload with
        | Some s when String.trim s <> "" -> ()
        | _ -> bare := a.attr_loc :: !bare)
      | "lint.envelope" -> envelope := true
      | _ -> ())
    cd.cd_attributes;
  let allow = Lint_kb.Allows.of_attributes cd.cd_attributes in
  List.iter
    (fun (e : Lint_kb.Allows.entry) ->
      if e.reason = None then bare := e.loc :: !bare)
    allow;
  { c_name = cd.cd_name.txt;
    c_loc = cd.cd_loc;
    c_senders = List.sort_uniq String.compare !senders;
    c_handlers = List.sort_uniq String.compare !handlers;
    c_has_spec = !has_spec;
    c_bad_spec = !bad_spec;
    c_ignored = !ignored;
    c_envelope = !envelope;
    c_allow = allow;
    c_bare = !bare;
    c_emitted = [];
    c_handled = []
  }

(* ------------------------------------------------------------------ *)
(* Declaration harvest (run on every unit before usage harvest) *)

let rec harvest_decls ~source ~stack (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      match item.str_desc with
      | Tstr_type (_, tds) ->
        List.iter
          (fun (td : Typedtree.type_declaration) ->
            if Lint_kb.has_attr [ "lint.protocol" ] td.typ_attributes then
              match td.typ_kind with
              | Ttype_variant cds ->
                let tname =
                  String.concat "." (List.rev (td.typ_name.txt :: stack))
                in
                let tbl = Hashtbl.create 32 in
                List.iter
                  (fun cd -> Hashtbl.replace tbl cd.Typedtree.cd_name.txt
                               (classify_cons cd))
                  cds;
                Hashtbl.replace protos tname
                  { p_tname = tname;
                    p_dir = Filename.dirname source;
                    p_source = source;
                    p_cons = tbl
                  }
              | _ -> ())
          tds
      | Tstr_module { mb_id = Some id; mb_expr; _ } -> (
        match mb_expr.mod_desc with
        | Tmod_structure inner ->
          harvest_decls ~source ~stack:(Ident.name id :: stack) inner
        | _ -> ())
      | _ -> ())
    str.str_items

(* ------------------------------------------------------------------ *)
(* Usage harvest *)

let proto_of_type ~stack (ty : Types.type_expr) : proto option =
  match Types.get_desc ty with
  | Tconstr (p, _, _) ->
    let rec first = function
      | [] -> None
      | c :: rest -> (
        match Hashtbl.find_opt protos c with
        | Some p -> Some p
        | None -> first rest)
    in
    first (Lint_kb.qualified_candidates ~stack (Path.name p))
  | _ -> None

let basename_role source =
  Filename.remove_extension (Filename.basename source)

(* does this pattern bind any payload variable? *)
let rec binds_payload : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_var _ | Tpat_alias _ -> true
  | Tpat_record (fields, _) ->
    List.exists (fun (_, _, p) -> binds_payload p) fields
  | Tpat_tuple ps | Tpat_array ps -> List.exists binds_payload ps
  | Tpat_construct (_, _, ps, _) -> List.exists binds_payload ps
  | Tpat_or (a, b, _) -> binds_payload a || binds_payload b
  | Tpat_lazy p -> binds_payload p
  | Tpat_variant (_, Some p, _) -> binds_payload p
  | Tpat_value v -> binds_payload (v :> Typedtree.pattern)
  | _ -> false

(* deep scan of an expression for a nested envelope construction of the
   same protocol *)
let contains_envelope ~stack (proto : proto) (e : Typedtree.expression) =
  let found = ref None in
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_construct (_, cstr, _) when !found = None -> (
      match proto_of_type ~stack cstr.cstr_res with
      | Some p when p.p_tname = proto.p_tname -> (
        match Hashtbl.find_opt p.p_cons cstr.cstr_name with
        | Some c when c.c_envelope -> found := Some e.exp_loc
        | _ -> ())
      | _ -> ())
    | _ -> ());
    super.expr sub e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  !found

let harvest_usage ~source ~modname ~scope (str : Typedtree.structure) =
  let role = basename_role source in
  let dir = Filename.dirname source in
  let scoped = scope <> [] in
  let allows = Lint_kb.Allows.create () in
  let stack = ref [ modname ] in
  let file_allows =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a -> Lint_kb.Allows.of_attributes [ a ]
        | _ -> [])
      str.str_items
  in
  Lint_kb.Allows.push allows file_allows;
  let snapshot () =
    List.filter
      (fun id -> Hashtbl.mem allows id)
      ("all" :: List.map Lint_kb.rule_id Lint_kb.all_rules)
  in
  let relevant (p : proto) =
    (* only role files of the declaring directory participate; the
       declaring file is infrastructure unless it is itself a role *)
    dir = p.p_dir
    && (source <> p.p_source
       || Hashtbl.fold
            (fun _ c acc ->
              acc
              || List.mem role c.c_senders
              || List.mem role c.c_handlers)
            p.p_cons false)
  in
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let ids = Lint_kb.Allows.of_attributes e.exp_attributes in
    Lint_kb.Allows.push allows ids;
    (match e.exp_desc with
    | Texp_construct (_, cstr, args) -> (
      match proto_of_type ~stack:!stack cstr.cstr_res with
      | Some p -> (
        match Hashtbl.find_opt p.p_cons cstr.cstr_name with
        | Some c ->
          if relevant p then
            c.c_emitted <-
              { s_file = role; s_scoped = scoped; s_allowed = snapshot () }
              :: c.c_emitted;
          (* M1 drift at the emitting site *)
          if
            relevant p && c.c_has_spec && (not c.c_ignored)
            && not (List.mem role c.c_senders)
          then
            Lint_kb.report ~active:scope ~allows M1 e.exp_loc
              "`%s` emits protocol message %s but its [@lint.msg] spec \
               routes it from %s"
              role c.c_name
              (String.concat "/" c.c_senders);
          (* M4: nested envelope *)
          if c.c_envelope then (
            match
              List.find_map (contains_envelope ~stack:!stack p) args
            with
            | Some inner_loc ->
              Lint_kb.report ~active:scope ~allows M4 inner_loc
                "envelope payload nests another %s — piggyback envelopes \
                 must never nest"
                c.c_name
            | None -> ())
        | None -> ())
      | None -> ());
      super.expr sub e
    | _ -> super.expr sub e);
    Lint_kb.Allows.pop allows ids
  in
  let pat : type k. Tast_iterator.iterator -> k Typedtree.general_pattern -> unit
      =
   fun sub p ->
    (match p.pat_desc with
    | Tpat_construct (_, cstr, args, _) -> (
      match proto_of_type ~stack:!stack cstr.cstr_res with
      | Some pr -> (
        match Hashtbl.find_opt pr.p_cons cstr.cstr_name with
        | Some c when List.exists binds_payload args || args = [] ->
          if relevant pr then
            c.c_handled <-
              { s_file = role; s_scoped = scoped; s_allowed = snapshot () }
              :: c.c_handled;
          if
            relevant pr && c.c_has_spec && (not c.c_ignored)
            && not (List.mem role c.c_handlers)
          then
            Lint_kb.report ~active:scope ~allows M1 p.pat_loc
              "`%s` handles protocol message %s but its [@lint.msg] spec \
               routes it to %s"
              role c.c_name
              (String.concat "/" c.c_handlers)
        | _ -> ())
      | None -> ())
    | _ -> ());
    super.pat sub p
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let ids = Lint_kb.Allows.of_attributes vb.vb_attributes in
    Lint_kb.Allows.push allows ids;
    super.value_binding sub vb;
    Lint_kb.Allows.pop allows ids
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    stack := name :: !stack;
    super.module_binding sub mb;
    stack := List.tl !stack
  in
  let iter = { super with expr; pat; value_binding; module_binding } in
  iter.structure iter str;
  Lint_kb.Allows.pop allows file_allows

(* ------------------------------------------------------------------ *)
(* Checks (after all units are harvested) *)

let decl_allowed (c : cons) rule =
  c.c_ignored
  || List.exists
       (fun (e : Lint_kb.Allows.entry) ->
         List.mem (Lint_kb.rule_id rule) e.ids || List.mem "all" e.ids)
       c.c_allow

let report_decl ~scope (c : cons) rule fmt =
  Format.kasprintf
    (fun msg ->
      if List.mem rule scope then
        if decl_allowed c rule then incr Lint_kb.suppressed
        else Lint_kb.add_diag rule c.c_loc msg)
    fmt

let check ~all () =
  Hashtbl.iter
    (fun _ (p : proto) ->
      let scope = Lint_kb.scope_of_source ~all p.p_source in
      if List.mem Lint_kb.M1 scope then
        Hashtbl.iter
          (fun _ (c : cons) ->
            List.iter
              (fun loc ->
                Lint_kb.add_diag S1 loc
                  (Printf.sprintf
                     "suppression on constructor %s without a reason — write \
                      [@lint.ignore \"why\"]"
                     c.c_name))
              c.c_bare;
            if not (c.c_has_spec || c.c_ignored) then
              report_decl ~scope c M1
                "protocol constructor %s has no [@lint.msg \"sender -> \
                 handler\"] route and no [@lint.ignore \"why\"]"
                c.c_name
            else if c.c_bad_spec then
              report_decl ~scope c M1
                "unparseable [@lint.msg] spec on %s — expected \"sender -> \
                 handler\" clauses"
                c.c_name
            else if c.c_has_spec && not c.c_ignored then begin
              List.iter
                (fun h ->
                  if
                    not
                      (List.exists (fun s -> s.s_file = h) c.c_handled)
                  then
                    report_decl ~scope c M2
                      "%s is sent but never handled: declared handler `%s` \
                       has no match arm binding its payload (dead message)"
                      c.c_name h)
                c.c_handlers;
              List.iter
                (fun s ->
                  if
                    not
                      (List.exists (fun site -> site.s_file = s) c.c_emitted)
                  then
                    report_decl ~scope c M3
                      "%s is handled but never sent: declared sender `%s` \
                       never constructs it (dead handler)"
                      c.c_name s)
                c.c_senders
            end)
          p.p_cons)
    protos

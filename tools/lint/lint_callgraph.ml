(* Cmt-derived call graph and transitive effect taint (the D-rules v2
   substrate, reported as T1/T2/T3 by Pass_local).

   Pass 1 walks every unit and records, per module-level value binding,
   the set of global identifiers its whole body references (local
   helpers collapse into their enclosing module-level binding). Seeds
   are the nondeterminism effects the local D-rules police — wall-clock
   reads, ambient Random / Domain state, unordered Hashtbl iteration —
   and [solve] closes them over the graph, so a helper two frames deep
   taints every caller that can reach it.

   An effect under an explicit [@lint.allow "D1: why"] (or the matching
   T-rule id) is an audited effect: it does not seed taint, and an
   allow at a call site stops propagation through that edge — the
   suppression is a reviewed claim that the nondeterminism does not
   escape, and the analysis honors it instead of double-reporting. *)

type kind = Clock | Rand | Order

let kind_rule = function
  | Clock -> Lint_kb.T1
  | Rand -> Lint_kb.T2
  | Order -> Lint_kb.T3

(* the local rule whose allow also audits the seed *)
let kind_direct_id = function Clock -> "D1" | Rand -> "D2" | Order -> "D3"
let kind_trans_id k = Lint_kb.rule_id (kind_rule k)

(* ------------------------------------------------------------------ *)
(* Seed classification (shared with Pass_local's direct rules) *)

let d1_idents = [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let d2_violation name =
  let prefixed p =
    String.length name >= String.length p
    && String.sub name 0 (String.length p) = p
  in
  name = "Stdlib.Random.State.make_self_init"
  || (prefixed "Stdlib.Random." && not (prefixed "Stdlib.Random.State."))

let d3_idents =
  [ "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold"; "Stdlib.Hashtbl.to_seq";
    "Stdlib.Hashtbl.to_seq_keys"; "Stdlib.Hashtbl.to_seq_values" ]

(* ambient Domain state: machine-dependent answers that vary run to run *)
let domain_idents =
  [ "Stdlib.Domain.self"; "Stdlib.Domain.recommended_domain_count" ]

let seed_of_ident name : (kind * string) option =
  if List.mem name d1_idents then Some (Clock, name)
  else if d2_violation name || List.mem name domain_idents then
    Some (Rand, name)
  else if List.mem name d3_idents then Some (Order, name)
  else None

(* ------------------------------------------------------------------ *)
(* Definition table *)

type ref_info = {
  ref_name : string; (* as spelled by the typechecker *)
  exempt : kind list (* kinds whose propagation an allow stops here *)
}

type def = {
  def_name : string; (* canonical dotted name *)
  def_stack : string list; (* enclosing module path, for resolution *)
  mutable refs : ref_info list;
  mutable direct : (kind * string) list (* unaudited seeds in the body *)
}

let defs : (string, def) Hashtbl.t = Hashtbl.create 1024

(* taint verdicts after [solve]: canonical def name -> per-kind chain of
   canonical names from the def down to the seed ident *)
let taints : (string, (kind * string list) list) Hashtbl.t = Hashtbl.create 256

(* ------------------------------------------------------------------ *)
(* Pass 1 harvest *)

type hctx = {
  allows : Lint_kb.Allows.t;
  mutable stack : string list;
  mutable current : def option;
  mutable depth : int
}

let exempt_kinds allows =
  List.filter
    (fun k ->
      Hashtbl.mem allows (kind_direct_id k)
      || Hashtbl.mem allows (kind_trans_id k)
      || Hashtbl.mem allows "all")
    [ Clock; Rand; Order ]

let record_ident ctx ~scope name =
  match ctx.current with
  | None -> ()
  | Some def -> (
    match seed_of_ident name with
    | Some (kind, seed) ->
      (* a seed only seeds taint where its own D-rule has teeth: a
         Hashtbl.fold in the numeric libraries is out of scope by
         design and must not taint its soda callers *)
      let in_scope =
        List.mem
          (match kind with
          | Clock -> Lint_kb.D1
          | Rand -> Lint_kb.D2
          | Order -> Lint_kb.D3)
          scope
      in
      if in_scope && not (List.mem kind (exempt_kinds ctx.allows)) then
        def.direct <- (kind, seed) :: def.direct
    | None ->
      (* only user code can be a taint carrier; stdlib values that are
         not seeds are effect-free for our purposes *)
      if not (String.length name >= 7 && String.sub name 0 7 = "Stdlib.") then
        def.refs <- { ref_name = name; exempt = exempt_kinds ctx.allows }
                    :: def.refs)

let binding_name (vb : Typedtree.value_binding) =
  (* name a module-level binding by its first bound variable; anonymous
     or unit bindings contribute no def *)
  let rec first : type k. k Typedtree.general_pattern -> string option =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> Some (Ident.name id)
    | Tpat_alias (_, id, _) -> Some (Ident.name id)
    | Tpat_tuple ps -> List.find_map first ps
    | Tpat_construct (_, _, ps, _) -> List.find_map first ps
    | Tpat_value v -> first (v :> Typedtree.pattern)
    | _ -> None
  in
  first vb.vb_pat

let harvest ~all ~source ~modname (str : Typedtree.structure) =
  let scope = Lint_kb.scope_of_source ~all source in
  let ctx =
    { allows = Lint_kb.Allows.create ();
      stack = [ modname ];
      current = None;
      depth = 0
    }
  in
  let file_allows =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a -> Lint_kb.Allows.of_attributes [ a ]
        | _ -> [])
      str.str_items
  in
  Lint_kb.Allows.push ctx.allows file_allows;
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let ids = Lint_kb.Allows.of_attributes e.exp_attributes in
    Lint_kb.Allows.push ctx.allows ids;
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> record_ident ctx ~scope (Path.name path)
    | _ -> ());
    super.expr sub e;
    Lint_kb.Allows.pop ctx.allows ids
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let ids = Lint_kb.Allows.of_attributes vb.vb_attributes in
    Lint_kb.Allows.push ctx.allows ids;
    (if ctx.depth = 0 then
       match binding_name vb with
       | Some name ->
         let def_name = String.concat "." (List.rev (name :: ctx.stack)) in
         let def =
           { def_name; def_stack = ctx.stack; refs = []; direct = [] }
         in
         Hashtbl.replace defs def_name def;
         ctx.current <- Some def;
         ctx.depth <- ctx.depth + 1;
         super.value_binding sub vb;
         ctx.depth <- ctx.depth - 1;
         ctx.current <- None
       | None ->
         ctx.depth <- ctx.depth + 1;
         super.value_binding sub vb;
         ctx.depth <- ctx.depth - 1
     else super.value_binding sub vb);
    Lint_kb.Allows.pop ctx.allows ids
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    let saved_current = ctx.current and saved_depth = ctx.depth in
    ctx.current <- None;
    ctx.depth <- 0;
    ctx.stack <- name :: ctx.stack;
    super.module_binding sub mb;
    ctx.stack <- List.tl ctx.stack;
    ctx.current <- saved_current;
    ctx.depth <- saved_depth
  in
  let iter = { super with expr; value_binding; module_binding } in
  iter.structure iter str;
  Lint_kb.Allows.pop ctx.allows file_allows

(* ------------------------------------------------------------------ *)
(* Fixpoint *)

let resolve ~stack name =
  let rec first = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt defs c with Some d -> Some d | None -> first rest)
  in
  first (Lint_kb.qualified_candidates ~stack name)

let solve () =
  (* reverse edges: callee canonical name -> (caller def, exempt kinds) *)
  let callers : (string, (def * kind list) list) Hashtbl.t =
    Hashtbl.create 1024
  in
  Hashtbl.iter
    (fun _ def ->
      List.iter
        (fun r ->
          match resolve ~stack:def.def_stack r.ref_name with
          | Some callee when callee.def_name <> def.def_name ->
            let prev =
              Option.value ~default:[] (Hashtbl.find_opt callers callee.def_name)
            in
            Hashtbl.replace callers callee.def_name ((def, r.exempt) :: prev)
          | _ -> ())
        def.refs)
    defs;
  let tainted (name : string) (k : kind) =
    match Hashtbl.find_opt taints name with
    | Some l -> List.mem_assoc k l
    | None -> false
  in
  let queue = Queue.create () in
  let set_taint name k chain =
    let prev = Option.value ~default:[] (Hashtbl.find_opt taints name) in
    Hashtbl.replace taints name ((k, chain) :: prev);
    Queue.add (name, k, chain) queue
  in
  Hashtbl.iter
    (fun _ def ->
      List.iter
        (fun (k, seed) ->
          if not (tainted def.def_name k) then
            set_taint def.def_name k [ Lint_kb.short_name seed ])
        def.direct)
    defs;
  while not (Queue.is_empty queue) do
    let name, k, chain = Queue.pop queue in
    List.iter
      (fun (caller, exempt) ->
        if (not (List.mem k exempt)) && not (tainted caller.def_name k) then
          set_taint caller.def_name k (Lint_kb.short_name name :: chain))
      (Option.value ~default:[] (Hashtbl.find_opt callers name))
  done

(* Taint of a use-site reference, resolved through the same candidate
   qualification as declarations. Returns the callee's canonical name
   so callers can skip self-references. *)
let taint_of ~stack name : (string * (kind * string list) list) option =
  match resolve ~stack name with
  | None -> None
  | Some def -> (
    match Hashtbl.find_opt taints def.def_name with
    | Some l -> Some (def.def_name, l)
    | None -> None)

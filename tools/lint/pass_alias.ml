(* A-rules: mutation-after-publish on the zero-copy fragment path.

   Since PR 5 a [Fragment.t] is a view — [len] bytes at [off] inside a
   shared backing buffer. The whole performance story depends on those
   views escaping into the network ([Engine.send]) and the server stores
   ([Disk.create]/[Disk.store]) WITHOUT a copy, which makes any later
   write through a reachable backing buffer a silent corruption of
   already-published state.

   Per module-level definition, pass 1 records an ordered event list:

     Bind    — a let-binding whose right-hand side ALIASES existing
               locals (plain ident, field access, tuple/record/
               constructor wrapping, or a known alias-producing call
               like [Fragment.view ~buf] / [Fragment.buf f]); any other
               right-hand side (e.g. [Bytes.sub], [Fragment.data] on a
               proper slice) makes a fresh class, so copies never
               false-positive
     Publish — a call into a publish sink; every local reachable from
               the sunk arguments is published (a fragment buried in a
               message record still escapes)
     Mutate  — a call to a known buffer mutator; the locals reachable
               from its target argument are written through
     Call    — a call to user code, linked to that definition's
               interprocedural summary (publishes/mutates parameter i)

   The analysis replays each definition's events over a union-find of
   its locals; a Mutate on a published class is A1. Summaries are
   closed by a fixpoint so a helper that flushes views through
   [Engine.send] publishes at its call sites, and one that scrubs a
   buffer mutates at its call sites. *)

type target = Pos of int | Lab of string

let publish_sinks =
  [ ("Engine.send", [ Pos 1 ]); (* context, msg — dst is labeled *)
    ("Disk.create", [ Lab "fragment" ]);
    ("Disk.store", [ Lab "fragment" ]) ]

(* known alias-producing calls: result aliases this argument *)
let alias_builtins =
  [ ("Fragment.view", Lab "buf"); ("Fragment.make", Lab "data");
    ("Fragment.buf", Pos 0) ]

let mutators =
  [ ("Bytes.set", Pos 0); ("Bytes.unsafe_set", Pos 0); ("Bytes.fill", Pos 0);
    ("Bytes.blit", Pos 2); ("Bytes.blit_string", Pos 2);
    ("BytesLabels.blit", Lab "dst");
    ("Wops.xor_into", Lab "dst"); ("Wops.muladd_chunks", Lab "dst");
    ("Wops.mul_chunks", Lab "dst");
    ("Kernel.split_cols_into", Lab "dst");
    ("Kernel.merge_cols_into", Lab "dst");
    ("Kernel.merge_cols_sub", Lab "dst") ]

let find_builtin table name =
  List.find_map
    (fun (suffix, v) ->
      if Lint_kb.path_has_suffix ~suffix name then Some v else None)
    table

(* ------------------------------------------------------------------ *)
(* Events *)

type event =
  | Bind of string * string list (* new local aliases these locals *)
  | Publish of string list
  | Mutate of string list * string * Location.t * string list
    (* locals written, mutator name, site, active allow-ids snapshot *)
  | Call of string * string list list * Location.t * string list
    (* callee (unresolved), per-positional-argument local sets,
       site, allow snapshot *)

type adef = {
  a_name : string; (* canonical dotted name *)
  a_stack : string list;
  a_source : string;
  a_params : string list; (* parameter local keys, in order *)
  mutable a_events : event list (* reverse order during harvest *)
}

let adefs : (string, adef) Hashtbl.t = Hashtbl.create 512

(* summaries: canonical def name -> (published params, mutated params) *)
let summaries : (string, int list * int list) Hashtbl.t = Hashtbl.create 512

(* ------------------------------------------------------------------ *)
(* Harvest *)

let local_key id = Ident.unique_name id

(* all local (Pident) idents mentioned anywhere in an expression *)
let locals_of (e : Typedtree.expression) : string list =
  let acc = ref [] in
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> acc := local_key id :: !acc
    | _ -> ());
    super.expr sub e
  in
  let iter = { super with expr } in
  iter.expr iter e;
  List.sort_uniq String.compare !acc

let arg_of_target args target =
  match target with
  | Lab l ->
    List.find_map
      (function
        | Asttypes.Labelled l', Some e when l' = l -> Some e | _ -> None)
      args
  | Pos i ->
    let positional =
      List.filter_map
        (function Asttypes.Nolabel, Some e -> Some e | _ -> None)
        args
    in
    List.nth_opt positional i

let rec pat_vars : type k. k Typedtree.general_pattern -> string list =
 fun p ->
  match p.pat_desc with
  | Tpat_var (id, _) -> [ local_key id ]
  | Tpat_alias (p, id, _) -> local_key id :: pat_vars p
  | Tpat_tuple ps | Tpat_array ps -> List.concat_map pat_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map pat_vars ps
  | Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, p) -> pat_vars p) fields
  | Tpat_or (a, _, _) -> pat_vars a
  | Tpat_lazy p -> pat_vars p
  | Tpat_variant (_, Some p, _) -> pat_vars p
  | Tpat_value v -> pat_vars (v :> Typedtree.pattern)
  | _ -> []

(* does this RHS alias existing locals (as opposed to allocating)?
   Returns the locals it aliases, or [] for a fresh class. *)
let rec alias_sources (e : Typedtree.expression) : string list =
  match e.exp_desc with
  | Texp_ident (Path.Pident id, _, _) -> [ local_key id ]
  | Texp_field (e, _, _) -> alias_sources e
  | Texp_construct (_, _, args) -> List.concat_map locals_of args
  | Texp_record { fields; extended_expression; _ } ->
    let base =
      match extended_expression with Some e -> locals_of e | None -> []
    in
    base
    @ (Array.to_list fields
      |> List.concat_map (fun (_, (ld : Typedtree.record_label_definition)) ->
             match ld with
             | Overridden (_, e) -> locals_of e
             | Kept _ -> []))
  | Texp_tuple es -> List.concat_map locals_of es
  | _ -> []

let texp_apply_alias (e : Typedtree.expression) : string list =
  match e.exp_desc with
  | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) -> (
    match find_builtin alias_builtins (Path.name p) with
    | Some target -> (
      match arg_of_target args target with
      | Some arg -> locals_of arg
      | None -> [])
    | None -> [])
  | _ -> []

let harvest ~source ~modname (str : Typedtree.structure) =
  let allows = Lint_kb.Allows.create () in
  let file_allows =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a -> Lint_kb.Allows.of_attributes [ a ]
        | _ -> [])
      str.str_items
  in
  Lint_kb.Allows.push allows file_allows;
  let snapshot () =
    List.filter
      (fun id -> Hashtbl.mem allows id)
      [ "A1"; "all" ]
  in
  let stack = ref [ modname ] in
  let current : adef option ref = ref None in
  let depth = ref 0 in
  let emit ev =
    match !current with
    | None -> ()
    | Some d -> d.a_events <- ev :: d.a_events
  in
  let super = Tast_iterator.default_iterator in
  let rec expr sub (e : Typedtree.expression) =
    let ids = Lint_kb.Allows.of_attributes e.exp_attributes in
    Lint_kb.Allows.push allows ids;
    (match e.exp_desc with
    | Texp_let (_, vbs, body) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          (* harvest the RHS first (nested publishes/mutations inside
             it must precede the binding), then record the alias edge *)
          expr sub vb.vb_expr;
          let srcs =
            match alias_sources vb.vb_expr with
            | [] -> texp_apply_alias vb.vb_expr
            | srcs -> srcs
          in
          match pat_vars vb.vb_pat with
          | [ v ] -> emit (Bind (v, srcs))
          | vs -> List.iter (fun v -> emit (Bind (v, srcs))) vs)
        vbs;
      expr sub body
    | Texp_apply ({ exp_desc = Texp_ident (p, _, _); _ }, args) ->
      let name = Path.name p in
      List.iter (function _, Some a -> expr sub a | _ -> ()) args;
      (match find_builtin publish_sinks name with
      | Some targets ->
        let published =
          List.concat_map
            (fun t ->
              match arg_of_target args t with
              | Some a -> locals_of a
              | None -> [])
            targets
        in
        if published <> [] then emit (Publish published)
      | None -> (
        match find_builtin mutators name with
        | Some target -> (
          match arg_of_target args target with
          | Some a ->
            let locals = locals_of a in
            if locals <> [] then
              emit
                (Mutate (locals, Lint_kb.short_name name, e.exp_loc,
                         snapshot ()))
          | None -> ())
        | None ->
          if not (String.length name >= 7 && String.sub name 0 7 = "Stdlib.")
          then
            let arg_locals =
              List.filter_map
                (function
                  | Asttypes.Nolabel, Some a | Asttypes.Labelled _, Some a ->
                    Some (locals_of a)
                  | _ -> None)
                args
            in
            emit (Call (name, arg_locals, e.exp_loc, snapshot ()))))
    | Texp_setfield (tgt, _, _, rhs) ->
      (* storing a tracked local into mutable state is an escape we
         cannot follow; treat as publish of the RHS locals only if the
         target is itself published is beyond this pass — skip *)
      expr sub tgt;
      expr sub rhs
    | _ -> super.expr sub e);
    Lint_kb.Allows.pop allows ids
  in
  (* collect curried parameters from the function spine of a binding *)
  let rec spine_params (e : Typedtree.expression) : string list =
    match e.exp_desc with
    | Texp_function { cases = [ c ]; _ } ->
      pat_vars c.c_lhs @
      (match c.c_guard with Some _ -> [] | None -> spine_params c.c_rhs)
    | _ -> []
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let ids = Lint_kb.Allows.of_attributes vb.vb_attributes in
    Lint_kb.Allows.push allows ids;
    (if !depth = 0 then begin
       let name =
         let rec first : type k. k Typedtree.general_pattern -> string option
             =
          fun p ->
           match p.pat_desc with
           | Tpat_var (id, _) -> Some (Ident.name id)
           | Tpat_alias (_, id, _) -> Some (Ident.name id)
           | Tpat_value v -> first (v :> Typedtree.pattern)
           | _ -> None
         in
         first vb.vb_pat
       in
       match name with
       | Some n ->
         let a_name = String.concat "." (List.rev (n :: !stack)) in
         let d =
           { a_name;
             a_stack = !stack;
             a_source = source;
             a_params = spine_params vb.vb_expr;
             a_events = []
           }
         in
         Hashtbl.replace adefs a_name d;
         current := Some d;
         incr depth;
         expr sub vb.vb_expr;
         decr depth;
         current := None
       | None ->
         incr depth;
         expr sub vb.vb_expr;
         decr depth
     end
     else expr sub vb.vb_expr);
    Lint_kb.Allows.pop allows ids
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    let saved_cur = !current and saved_depth = !depth in
    current := None;
    depth := 0;
    stack := name :: !stack;
    super.module_binding sub mb;
    stack := List.tl !stack;
    current := saved_cur;
    depth := saved_depth
  in
  let iter = { super with expr; value_binding; module_binding } in
  iter.structure iter str;
  Lint_kb.Allows.pop allows file_allows

(* ------------------------------------------------------------------ *)
(* Union-find replay *)

module Uf = struct
  type t = {
    parent : (string, string) Hashtbl.t;
    published : (string, unit) Hashtbl.t (* root -> published *)
  }

  let create () = { parent = Hashtbl.create 64; published = Hashtbl.create 8 }

  let rec find t x =
    match Hashtbl.find_opt t.parent x with
    | None | Some "" -> x
    | Some p when p = x -> x
    | Some p ->
      let r = find t p in
      Hashtbl.replace t.parent x r;
      r

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then begin
      Hashtbl.replace t.parent ra rb;
      if Hashtbl.mem t.published ra then Hashtbl.replace t.published rb ()
    end

  let publish t x = Hashtbl.replace t.published (find t x) ()
  let is_published t x = Hashtbl.mem t.published (find t x)
end

let resolve_callee ~stack name =
  let rec first = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt adefs c with
      | Some d -> Some d
      | None -> first rest)
  in
  first (Lint_kb.qualified_candidates ~stack name)

type finding = {
  f_loc : Location.t;
  f_msg : string;
  f_source : string;
  f_allowed : bool
}

(* replay one def; [report] accumulates findings when non-None *)
let replay (d : adef) ~(report : finding list ref option) :
    int list * int list =
  let uf = Uf.create () in
  let mutated_params = ref [] and published_params = ref [] in
  let param_index = List.mapi (fun i p -> (p, i)) d.a_params in
  let note_param_event locals store =
    List.iter
      (fun (p, i) ->
        if
          (not (List.mem i !store))
          && List.exists (fun l -> Uf.find uf l = Uf.find uf p) locals
        then store := i :: !store)
      param_index
  in
  List.iter
    (fun ev ->
      match ev with
      | Bind (v, srcs) -> List.iter (fun s -> Uf.union uf v s) srcs
      | Publish locals ->
        List.iter (Uf.publish uf) locals;
        note_param_event locals published_params
      | Mutate (locals, mname, loc, allowed) ->
        note_param_event locals mutated_params;
        let hit = List.exists (Uf.is_published uf) locals in
        (match report with
        | Some acc when hit ->
          acc :=
            { f_loc = loc;
              f_msg =
                Printf.sprintf
                  "%s writes through a buffer published earlier in `%s` — \
                   mutation after a zero-copy view escaped"
                  mname
                  (Lint_kb.short_name d.a_name);
              f_source = d.a_source;
              f_allowed = List.mem "A1" allowed || List.mem "all" allowed
            }
            :: !acc
        | _ -> ())
      | Call (name, arg_locals, loc, allowed) -> (
        match resolve_callee ~stack:d.a_stack name with
        | Some callee when callee.a_name <> d.a_name -> (
          match Hashtbl.find_opt summaries callee.a_name with
          | Some (pub, mut) ->
            List.iter
              (fun i ->
                match List.nth_opt arg_locals i with
                | Some locals -> List.iter (Uf.publish uf) locals
                | None -> ())
              pub;
            List.iter
              (fun i ->
                match List.nth_opt arg_locals i with
                | Some locals ->
                  note_param_event locals mutated_params;
                  let hit = List.exists (Uf.is_published uf) locals in
                  (match report with
                  | Some acc when hit ->
                    acc :=
                      { f_loc = loc;
                        f_msg =
                          Printf.sprintf
                            "call to `%s` writes through a buffer published \
                             earlier in `%s` — mutation after a zero-copy \
                             view escaped"
                            (Lint_kb.short_name callee.a_name)
                            (Lint_kb.short_name d.a_name);
                        f_source = d.a_source;
                        f_allowed =
                          List.mem "A1" allowed || List.mem "all" allowed
                      }
                      :: !acc
                  | _ -> ())
                | None -> ())
              mut
          | None -> ())
        | _ -> ()))
    (List.rev d.a_events);
  (List.sort_uniq Int.compare !published_params,
   List.sort_uniq Int.compare !mutated_params)

let solve () =
  (* close the interprocedural summaries; the event lists are fixed, so
     this converges (summary sets only grow) *)
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 16 do
    changed := false;
    incr rounds;
    Hashtbl.iter
      (fun name d ->
        let sum = replay d ~report:None in
        match Hashtbl.find_opt summaries name with
        | Some prev when prev = sum -> ()
        | _ ->
          Hashtbl.replace summaries name sum;
          changed := true)
      adefs
  done

let check ~all () =
  Hashtbl.iter
    (fun _ d ->
      let scope = Lint_kb.scope_of_source ~all d.a_source in
      if List.mem Lint_kb.A1 scope then begin
        let acc = ref [] in
        ignore (replay d ~report:(Some acc));
        List.iter
          (fun f ->
            if f.f_allowed then incr Lint_kb.suppressed
            else Lint_kb.add_diag A1 f.f_loc f.f_msg)
          !acc
      end)
    adefs

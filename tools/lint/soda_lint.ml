(* soda-lint v2 — determinism & protocol-hygiene linter over typed trees.

   Everything the repo claims (bit-identical chaos replay, linearizability
   verdicts, exact cost equalities) rests on the simulator being
   deterministic, the checker hot paths being domain-safe, and every
   role handling the full SODA message alphabet. This driver walks the
   .cmt files produced by dune's -bin-annot (compiler-libs Cmt_format +
   Tast_iterator) and enforces those invariants statically.

   v2 is multi-pass with whole-program analyses (see DESIGN.md, "Static
   analysis v2"):

     pass 1  harvest every unit: type/alias knowledge base (Lint_kb),
             call graph + effect seeds (Lint_callgraph), alias event
             lists (Pass_alias), protocol spec tables + usage
             (Pass_protocol)
     close   taint fixpoint over the call graph; interprocedural
             publish/mutate summaries for the alias pass
     pass 2  walk the scoped units reporting diagnostics (Pass_local),
             then the whole-program checks (Pass_protocol / Pass_alias)

   Rule families (suppress locally with [@lint.allow "ID: why"] — the
   reason is mandatory, a bare allow still suppresses but is itself an
   S1 diagnostic):

     D1–D3  direct nondeterminism: wall-clock, global Random, Hashtbl
            iteration order (lib scoping as in v1)
     P1/P2  polymorphic compare at non-immediate types; stdout in lib/
     R1     top-level mutable state
     E1     catch-all exception handlers
     U1     unchecked accesses / %caml_*u primitives
     S1     suppression without a reason string
     M1–M4  protocol conformance against the [@lint.msg] spec table on
            [@@lint.protocol] message types: undeclared/drifting
            constructors, sent-but-never-handled, handled-but-never-
            sent, nested envelopes
     A1     mutation of a backing buffer after a zero-copy view over it
            was published into Engine.send/Disk
     T1–T3  transitive (call-graph) reach of D1/D2+Domain/D3 effects

   Output: plain "<file>:<line>:<col>: [ID] msg" lines by default,
   --json for a machine-readable report, --github (auto-on when
   GITHUB_ACTIONS=true) adds ::error workflow annotations on stderr.

   Exit code: 0 clean, 1 violations found, 2 usage/IO error. *)

let usage = "soda_lint [--all-rules] [--json] [--github] <dir-or-cmt> ..."

let rec collect_cmts acc path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_DIR ->
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry -> collect_cmts acc (Filename.concat path entry))
      acc entries
  | Unix.S_REG when Filename.check_suffix path ".cmt" -> path :: acc
  | _ -> acc
  | exception Unix.Unix_error _ -> acc

let read_cmt path =
  match Cmt_format.read_cmt path with
  | infos -> Some infos
  | exception _ ->
    prerr_endline ("soda-lint: warning: unreadable cmt " ^ path);
    None

(* ------------------------------------------------------------------ *)
(* Output *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_json (ds : Lint_kb.diag list) ~suppressed ~units =
  print_string "{\n  \"violations\": [";
  List.iteri
    (fun i (d : Lint_kb.diag) ->
      Printf.printf "%s\n    { \"file\": \"%s\", \"line\": %d, \"col\": %d, \
                     \"rule\": \"%s\", \"msg\": \"%s\" }"
        (if i = 0 then "" else ",")
        (json_escape d.file) d.line d.col
        (Lint_kb.rule_id d.rule) (json_escape d.msg))
    ds;
  Printf.printf "%s],\n" (if ds = [] then "" else "\n  ");
  Printf.printf "  \"suppressed\": %d,\n  \"units\": %d\n}\n" suppressed units

(* GitHub workflow-command data escaping: %, CR, LF *)
let gh_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_github (ds : Lint_kb.diag list) =
  List.iter
    (fun (d : Lint_kb.diag) ->
      Printf.eprintf "::error file=%s,line=%d,col=%d,title=soda-lint %s::%s\n"
        (gh_escape d.file) d.line (d.col + 1)
        (Lint_kb.rule_id d.rule) (gh_escape d.msg))
    ds

(* ------------------------------------------------------------------ *)

let () =
  let all = ref false and json = ref false and github = ref false in
  let roots = ref [] in
  let spec =
    [ ("--all-rules", Arg.Set all,
       " apply every rule to every file (fixture/test mode)");
      ("--json", Arg.Set json, " print a JSON report on stdout");
      ("--github", Arg.Set github,
       " print ::error workflow annotations on stderr (auto when \
        GITHUB_ACTIONS=true)") ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if Sys.getenv_opt "GITHUB_ACTIONS" = Some "true" then github := true;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let cmts =
    List.fold_left collect_cmts [] (List.sort String.compare !roots)
    |> List.sort String.compare
  in
  if cmts = [] then begin
    prerr_endline "soda-lint: no .cmt files found (build @check first)";
    exit 2
  end;
  let units =
    List.filter_map
      (fun path ->
        match read_cmt path with
        | Some infos -> (
          match infos.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str -> Some (infos, str)
          | _ -> None)
        | None -> None)
      cmts
  in
  let source_of (infos : Cmt_format.cmt_infos) =
    Option.value ~default:"" infos.cmt_sourcefile
  in
  (* pass 1a: knowledge base from every unit, including dune's generated
     wrapper modules (their aliases canonicalize cross-library names),
     then the protocol spec tables (which resolve through the kb) *)
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      Lint_kb.harvest_structure ~stack:[ infos.cmt_modname ] str)
    units;
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      Pass_protocol.harvest_decls ~source:(source_of infos)
        ~stack:[ infos.cmt_modname ] str)
    units;
  (* pass 1b: per-unit harvests that need the kb — call graph refs and
     effect seeds, alias event lists, protocol usage *)
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      let source = source_of infos in
      if Filename.check_suffix source ".ml" then begin
        Lint_callgraph.harvest ~all:!all ~source ~modname:infos.cmt_modname
          str;
        Pass_alias.harvest ~source ~modname:infos.cmt_modname str;
        Pass_protocol.harvest_usage ~source ~modname:infos.cmt_modname
          ~scope:(Lint_kb.scope_of_source ~all:!all source)
          str
      end)
    units;
  (* close the whole-program analyses *)
  Lint_callgraph.solve ();
  Pass_alias.solve ();
  (* pass 2: local rules + taint reporting on scoped units *)
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      let source = source_of infos in
      if Filename.check_suffix source ".ml" then begin
        let active = Lint_kb.scope_of_source ~all:!all source in
        if active <> [] then
          Pass_local.lint ~active ~modname:infos.cmt_modname str
      end)
    units;
  Pass_protocol.check ~all:!all ();
  Pass_alias.check ~all:!all ();
  let ds = Lint_kb.sorted_diags () in
  if !github then print_github ds;
  if !json then print_json ds ~suppressed:!Lint_kb.suppressed
      ~units:(List.length units)
  else
    List.iter
      (fun (d : Lint_kb.diag) ->
        Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col
          (Lint_kb.rule_id d.rule) d.msg)
      ds;
  Printf.eprintf "soda-lint: %d violation(s), %d suppressed, %d unit(s)\n%!"
    (List.length ds) !Lint_kb.suppressed (List.length units);
  exit (if ds = [] then 0 else 1)

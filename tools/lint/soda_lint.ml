(* soda-lint — determinism & protocol-hygiene linter over typed trees.

   Everything the repo claims (bit-identical chaos replay, linearizability
   verdicts, exact cost equalities) rests on the simulator being
   deterministic and on the checker hot paths being domain-safe. This
   driver walks the .cmt files produced by dune's -bin-annot (via
   compiler-libs Cmt_format + Tast_iterator) and enforces that invariant
   statically. It is a typed-tree linter, not a ppx, because two of the
   rules (P1, R1) need instantiated types: [x = y] is only a violation
   when [x]'s *type* is non-immediate, and a top-level binding is only
   mutable state when its *type* is a mutable container — neither is
   visible in the parse tree.

   Rules (each can be suppressed locally with [@lint.allow "<id>"], at
   expression or let-binding granularity, or file-wide with
   [@@@lint.allow "<id>"]):

     D1  no wall-clock reads (Sys.time, Unix.gettimeofday) in lib/
     D2  no global Random state — only seeded Random.State / Simnet.Rng
     D3  no Hashtbl.iter/fold/to_seq in protocol-decision libraries
         (iteration order is nondeterministic); materialize + sort
     P1  no polymorphic =/compare/min/max/List.mem at non-immediate types
     P2  no stdout writes in lib/ — output goes through Probe/Report
     R1  no top-level mutable state (data race under OCaml 5 domains)
     E1  no catch-all exception handlers (swallow Out_of_memory/asserts)
     U1  no unchecked accesses (Array/Bytes/String unsafe_*, %caml_*u
         externals) without an audited [@lint.allow "U1"] — each
         allowed site must argue its bounds locally and carry an
         assertion compiled in under the soda-debug dune profile

   Exit code: 0 clean, 1 violations found, 2 usage/IO error. *)

let usage = "soda_lint [--all-rules] <dir-or-cmt> ..."

(* ------------------------------------------------------------------ *)
(* Rules *)

type rule = D1 | D2 | D3 | P1 | P2 | R1 | E1 | U1

let all_rules = [ D1; D2; D3; P1; P2; R1; E1; U1 ]
let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | P1 -> "P1"
  | P2 -> "P2"
  | R1 -> "R1"
  | E1 -> "E1"
  | U1 -> "U1"

(* D3 only has teeth where a fold/iter result can feed a protocol
   decision or a trace event; the numeric libraries iterate tables in
   ways that never escape into message ordering. *)
let d3_libs = [ "soda"; "simnet"; "baselines"; "harness" ]

let lib_of_source src =
  (* "lib/soda/server.ml" -> Some "soda" (also matches when the linter
     is invoked from inside lib/, where sources still read lib/...). *)
  let parts = String.split_on_char '/' src in
  let rec find = function
    | "lib" :: l :: _ :: _ -> Some l
    | _ :: rest -> find rest
    | [] -> None
  in
  find parts

let rules_for ~all source =
  if all then all_rules
  else
    match lib_of_source source with
    | None -> []
    | Some l ->
      let base = [ D1; D2; P1; P2; R1; E1; U1 ] in
      if List.mem l d3_libs then D3 :: base else base

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

type diag = { file : string; line : int; col : int; rule : rule; msg : string }

let diags : diag list ref = ref []
let suppressed = ref 0

let diag_compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> compare (rule_id a.rule) (rule_id b.rule)
      | c -> c)
    | c -> c)
  | c -> c

(* ------------------------------------------------------------------ *)
(* Pass 1 — knowledge base of type declarations and module aliases.

   Use sites name types through paths ("Tag.t", "Protocol__Tag.t",
   "Protocol.Tag.t" are all the same type depending on how the source
   spelled it and what the typechecker normalized), so the kb keys
   declarations by their canonical dotted name rooted at the compilation
   unit, and keeps a module-alias table (harvested from both user code
   and dune's generated wrapper modules) to canonicalize use-site
   names. *)

type decl =
  | Variant_const (* all constructors constant: immediate at runtime *)
  | Variant_boxed
  | Record of { mut : bool }
  | Alias of Types.type_expr
  | Opaque
  | Immediate_attr

let decls : (string, decl) Hashtbl.t = Hashtbl.create 512
let mod_aliases : (string, string) Hashtbl.t = Hashtbl.create 128

let has_attr names attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> List.mem a.attr_name.txt names)
    attrs

let classify_type_decl (td : Typedtree.type_declaration) : decl =
  if has_attr [ "immediate"; "ocaml.immediate" ] td.typ_attributes then
    Immediate_attr
  else
    match td.typ_kind with
    | Ttype_variant cds ->
      let constant (cd : Typedtree.constructor_declaration) =
        match cd.cd_args with Cstr_tuple [] -> true | _ -> false
      in
      if List.for_all constant cds then Variant_const else Variant_boxed
    | Ttype_record lds ->
      let mut =
        List.exists
          (fun (ld : Typedtree.label_declaration) ->
            ld.ld_mutable = Asttypes.Mutable)
          lds
      in
      Record { mut }
    | Ttype_open -> Variant_boxed
    | Ttype_abstract -> (
      match td.typ_manifest with
      | Some ct -> Alias ct.Typedtree.ctyp_type
      | None -> Opaque)

let rec harvest_structure ~stack (str : Typedtree.structure) =
  List.iter (harvest_item ~stack) str.str_items

and harvest_item ~stack (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_type (_, tds) ->
    List.iter
      (fun (td : Typedtree.type_declaration) ->
        let name =
          String.concat "." (List.rev (td.typ_name.txt :: stack))
        in
        Hashtbl.replace decls name (classify_type_decl td))
      tds
  | Tstr_module mb -> harvest_module ~stack mb
  | Tstr_recmodule mbs -> List.iter (harvest_module ~stack) mbs
  | _ -> ()

and harvest_module ~stack (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id ->
    let name = Ident.name id in
    harvest_module_expr ~stack ~name mb.mb_expr

and harvest_module_expr ~stack ~name (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_ident (p, _) ->
    let key = String.concat "." (List.rev (name :: stack)) in
    Hashtbl.replace mod_aliases key (Path.name p)
  | Tmod_structure str -> harvest_structure ~stack:(name :: stack) str
  | Tmod_constraint (me, _, _, _) -> harvest_module_expr ~stack ~name me
  | Tmod_functor (_, me) ->
    (* functor bodies are harvested under the functor's own name; good
       enough for types referenced from within the same body *)
    harvest_module_expr ~stack ~name me
  | Tmod_apply _ | Tmod_apply_unit _ | Tmod_unpack _ -> ()

(* Longest-prefix canonicalization through the alias table: resolves
   "Tag.t" (via a local [module Tag = Protocol.Tag]) and "Protocol.Tag.t"
   (via the generated wrapper) down to "Protocol__Tag.t". *)
let canonicalize name =
  let rec go fuel name =
    if fuel = 0 then name
    else
      let parts = String.split_on_char '.' name in
      let n = List.length parts in
      let rec try_prefix i =
        if i <= 0 then None
        else
          let prefix = String.concat "." (List.filteri (fun j _ -> j < i) parts)
          and rest = List.filteri (fun j _ -> j >= i) parts in
          match Hashtbl.find_opt mod_aliases prefix with
          | Some repl -> Some (String.concat "." (repl :: rest))
          | None -> try_prefix (i - 1)
      in
      match try_prefix (n - 1) with
      | Some name' when name' <> name -> go (fuel - 1) name'
      | _ -> name
  in
  go 8 name

(* Look a use-site type name up in the kb, qualifying bare/partial names
   with the enclosing module stack (a local type [t] inside module [X]
   of unit [M] is registered as "M.X.t" but referenced as "t"). *)
let lookup_decl ~stack name =
  let candidates =
    let rec prefixes acc = function
      | [] -> List.rev (name :: acc)
      | _ :: _ as stack ->
        let q = String.concat "." (List.rev stack) ^ "." ^ name in
        prefixes (q :: acc) (List.tl stack)
    in
    (* innermost qualification first, bare name last *)
    prefixes [] stack
  in
  let rec first = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt decls (canonicalize c) with
      | Some d -> Some d
      | None -> first rest)
  in
  first candidates

(* ------------------------------------------------------------------ *)
(* Type classification *)

type imm = Imm | NonImm | Unknown

let predef_imm = [ Predef.path_int; Predef.path_char; Predef.path_bool;
                   Predef.path_unit ]

let predef_nonimm =
  [ Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_array; Predef.path_list; Predef.path_option;
    Predef.path_nativeint; Predef.path_int32; Predef.path_int64;
    Predef.path_lazy_t; Predef.path_floatarray; Predef.path_exn ]

let nonimm_names =
  [ "Stdlib.ref"; "ref"; "Stdlib.Hashtbl.t"; "Hashtbl.t"; "Stdlib.Buffer.t";
    "Stdlib.Queue.t"; "Stdlib.Stack.t"; "Stdlib.Atomic.t"; "Stdlib.result";
    "result"; "Stdlib.Either.t"; "Stdlib.Seq.t" ]

let rec imm_of ~stack ~fuel (ty : Types.type_expr) : imm =
  if fuel = 0 then Unknown
  else
    match Types.get_desc ty with
    | Tconstr (p, _, _) ->
      if List.exists (Path.same p) predef_imm then Imm
      else if List.exists (Path.same p) predef_nonimm then NonImm
      else
        let name = Path.name p in
        if List.mem name nonimm_names then NonImm
        else (
          match lookup_decl ~stack name with
          | Some d -> imm_of_decl ~stack ~fuel:(fuel - 1) d
          | None -> Unknown)
    | Ttuple _ | Tarrow _ | Tobject _ | Tfield _ | Tnil | Tpackage _ -> NonImm
    | Tvariant _ | Tvar _ | Tunivar _ -> Unknown
    | Tpoly (t, _) -> imm_of ~stack ~fuel:(fuel - 1) t
    | Tlink t | Tsubst (t, _) -> imm_of ~stack ~fuel:(fuel - 1) t

and imm_of_decl ~stack ~fuel = function
  | Variant_const | Immediate_attr -> Imm
  | Variant_boxed | Record _ -> NonImm
  | Alias ty -> imm_of ~stack ~fuel ty
  | Opaque -> Unknown

let mutable_container_names =
  [ "Stdlib.ref"; "ref"; "Stdlib.Hashtbl.t"; "Hashtbl.t"; "Stdlib.Buffer.t";
    "Stdlib.Queue.t"; "Stdlib.Stack.t"; "Stdlib.Atomic.t"; "Stdlib.Weak.t";
    "Stdlib.Lazy.t"; "lazy_t" ]

let mutable_predefs =
  [ Predef.path_array; Predef.path_bytes; Predef.path_floatarray;
    Predef.path_lazy_t ]

(* Is a value of this type mutable state (so that sharing it across
   domains is a data race)? [false] on Unknown: R1 is a high-signal rule
   and opaque types get the benefit of the doubt. *)
let rec is_mutable ~stack ~fuel (ty : Types.type_expr) : bool =
  if fuel = 0 then false
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) ->
      if List.exists (Path.same p) mutable_predefs then true
      else if
        Path.same p Predef.path_list || Path.same p Predef.path_option
      then List.exists (is_mutable ~stack ~fuel:(fuel - 1)) args
      else
        let name = Path.name p in
        if List.mem name mutable_container_names then true
        else (
          match lookup_decl ~stack name with
          | Some (Record { mut }) -> mut
          | Some (Alias ty) -> is_mutable ~stack ~fuel:(fuel - 1) ty
          | Some (Variant_const | Variant_boxed | Opaque | Immediate_attr) ->
            false
          | None -> false)
    | Ttuple tys -> List.exists (is_mutable ~stack ~fuel:(fuel - 1)) tys
    | Tlink t | Tsubst (t, _) | Tpoly (t, _) ->
      is_mutable ~stack ~fuel:(fuel - 1) t
    | _ -> false

let type_to_string ty =
  (* best-effort pretty type for messages; internal ids are fine *)
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Banned / checked identifier sets *)

let d1_idents = [ "Stdlib.Sys.time"; "Unix.gettimeofday"; "Unix.time" ]

let d2_violation name =
  let prefixed p = String.length name >= String.length p
                   && String.sub name 0 (String.length p) = p in
  name = "Stdlib.Random.State.make_self_init"
  || (prefixed "Stdlib.Random." && not (prefixed "Stdlib.Random.State."))

let d3_idents =
  [ "Stdlib.Hashtbl.iter"; "Stdlib.Hashtbl.fold"; "Stdlib.Hashtbl.to_seq";
    "Stdlib.Hashtbl.to_seq_keys"; "Stdlib.Hashtbl.to_seq_values" ]

(* U1: unchecked accesses. Matched by full path so a repo module
   exporting an [unsafe_times]-style accessor (safe, just raw) is not
   flagged — only the stdlib accessors that actually skip bounds
   checks. *)
let u1_modules =
  [ "Stdlib.Array"; "Stdlib.Bytes"; "Stdlib.String"; "Stdlib.Float.Array";
    "Stdlib.Bigarray.Array1"; "Stdlib.Bigarray.Array2" ]

let u1_violation name =
  match String.rindex_opt name '.' with
  | None -> false
  | Some i ->
    let m = String.sub name 0 i in
    let f = String.sub name (i + 1) (String.length name - i - 1) in
    String.length f > 7
    && String.sub f 0 7 = "unsafe_"
    && List.mem m u1_modules

(* U1 at external declarations: the unchecked compiler builtins are the
   %caml_* accessors with a trailing 'u' (get64u, set16u, ...) plus
   anything spelling "unsafe" outright. *)
let u1_unchecked_primitive prims =
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  List.exists
    (fun p ->
      String.length p > 1
      && p.[0] = '%'
      && (contains_sub p "unsafe"
         || (p.[String.length p - 1] = 'u'
            &&
            match p.[String.length p - 2] with '0' .. '9' -> true | _ -> false)))
    prims

let p2_idents =
  [ "Stdlib.print_endline"; "Stdlib.print_string"; "Stdlib.print_newline";
    "Stdlib.print_int"; "Stdlib.print_char"; "Stdlib.print_float";
    "Stdlib.print_bytes"; "Stdlib.Printf.printf"; "Stdlib.Format.printf";
    "Stdlib.Format.print_string"; "Stdlib.Format.print_newline";
    "Stdlib.Format.print_int"; "Stdlib.Format.print_flush";
    "Stdlib.Format.std_formatter"; "Stdlib.stdout" ]

(* polymorphic comparison family: name -> index of the argument whose
   instantiated type decides the verdict *)
let p1_idents =
  [ ("Stdlib.=", 0); ("Stdlib.<>", 0); ("Stdlib.==", 0); ("Stdlib.!=", 0);
    ("Stdlib.compare", 0); ("Stdlib.<", 0); ("Stdlib.>", 0);
    ("Stdlib.<=", 0); ("Stdlib.>=", 0); ("Stdlib.min", 0); ("Stdlib.max", 0);
    ("Stdlib.List.mem", 0); ("Stdlib.List.assoc", 0);
    ("Stdlib.List.mem_assoc", 0); ("Stdlib.List.sort_uniq", 1);
    ("Stdlib.Hashtbl.hash", 0) ]

(* The comparison *operators* (and [compare] itself) are specialized by
   the compiler to direct primitives when the argument type is statically
   a base type — [a < b] at [float] compiles to an unboxed float compare,
   not a call to the generic structural walker — so at those types they
   are neither a determinism nor a performance hazard. [Stdlib.min]/
   [max]/[List.mem]/... are ordinary polymorphic functions and get no
   such specialization, so they stay flagged even at [float]. *)
let p1_specialized_ops =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>=" ]

let specializable_base =
  [ Predef.path_float; Predef.path_string; Predef.path_char;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint ]

let compiler_specializes name (ty : Types.type_expr) =
  List.mem name p1_specialized_ops
  &&
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> List.exists (Path.same p) specializable_base
  | _ -> false

(* nth arrow argument of an (instantiated) function type *)
let rec nth_arrow_arg ~fuel n ty =
  if fuel = 0 then None
  else
    match Types.get_desc ty with
    | Tarrow (_, a, b, _) ->
      if n = 0 then Some a else nth_arrow_arg ~fuel:(fuel - 1) (n - 1) b
    | Tlink t | Tsubst (t, _) | Tpoly (t, _) ->
      nth_arrow_arg ~fuel:(fuel - 1) n t
    | _ -> None

(* For List.sort_uniq the decisive argument is the comparator's own
   first argument. *)
let p1_subject_type name fn_ty =
  match List.assoc_opt name p1_idents with
  | None -> None
  | Some 1 ->
    Option.bind (nth_arrow_arg ~fuel:8 0 fn_ty) (nth_arrow_arg ~fuel:8 0)
  | Some n -> nth_arrow_arg ~fuel:8 n fn_ty

(* ------------------------------------------------------------------ *)
(* The [@lint.allow "..."] opt-out *)

let parse_allow_payload (p : Parsetree.payload) : string list =
  match p with
  | PStr
      [ { pstr_desc =
            Pstr_eval ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _
        }
      ] ->
    String.split_on_char ' ' s
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> s <> "")
  | _ -> []

let allow_ids (attrs : Typedtree.attributes) : string list =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if a.attr_name.txt = "lint.allow" then parse_allow_payload a.attr_payload
      else [])
    attrs

(* ------------------------------------------------------------------ *)
(* Pass 2 — lint one typed tree *)

type ctx = {
  active : rule list; (* rules in scope for this source file *)
  allows : (string, int) Hashtbl.t; (* rule id -> nesting count *)
  mutable stack : string list; (* enclosing module path, innermost first *)
  mutable expr_depth : int
}

let push_allows ctx ids =
  List.iter
    (fun id ->
      let n = Option.value ~default:0 (Hashtbl.find_opt ctx.allows id) in
      Hashtbl.replace ctx.allows id (n + 1))
    ids

let pop_allows ctx ids =
  List.iter
    (fun id ->
      match Hashtbl.find_opt ctx.allows id with
      | Some 1 -> Hashtbl.remove ctx.allows id
      | Some n -> Hashtbl.replace ctx.allows id (n - 1)
      | None -> ())
    ids

let allowed ctx rule =
  Hashtbl.mem ctx.allows (rule_id rule) || Hashtbl.mem ctx.allows "all"

let report ctx rule (loc : Location.t) fmt =
  Format.kasprintf
    (fun msg ->
      if List.mem rule ctx.active then
        if allowed ctx rule then incr suppressed
        else
          let p = loc.loc_start in
          diags :=
            { file = p.pos_fname;
              line = p.pos_lnum;
              col = p.pos_cnum - p.pos_bol;
              rule;
              msg
            }
            :: !diags)
    fmt

(* catch-all patterns for E1 *)
let rec pat_is_catch_all : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> pat_is_catch_all p
  | Tpat_or (a, b, _) -> pat_is_catch_all a || pat_is_catch_all b
  | Tpat_value v -> pat_is_catch_all (v :> Typedtree.pattern)
  | _ -> false

let rec pat_catches_all_exceptions : type k. k Typedtree.general_pattern -> bool
    =
 fun p ->
  match p.pat_desc with
  | Tpat_exception inner -> pat_is_catch_all inner
  | Tpat_or (a, b, _) ->
    pat_catches_all_exceptions a || pat_catches_all_exceptions b
  | Tpat_alias (p, _, _) -> pat_catches_all_exceptions p
  | Tpat_value v -> pat_catches_all_exceptions (v :> Typedtree.pattern)
  | _ -> false

let check_ident ctx (path : Path.t) (e : Typedtree.expression) =
  let name = Path.name path in
  let loc = e.exp_loc in
  if List.mem name d1_idents then
    report ctx D1 loc
      "wall-clock read `%s` — simulated time must come from the engine clock"
      name;
  if d2_violation name then
    report ctx D2 loc
      "global Random state `%s` — thread a seeded Random.State/Simnet.Rng \
       from the runner instead"
      name;
  if List.mem name d3_idents then
    report ctx D3 loc
      "`%s`: Hashtbl iteration order is nondeterministic — materialize and \
       sort before the result can reach a protocol decision or trace event"
      name;
  if List.mem name p2_idents then
    report ctx P2 loc
      "stdout write `%s` — library output goes through Probe/Report" name;
  if u1_violation name then
    report ctx U1 loc
      "unchecked access `%s` — prove the bounds locally, assert them under \
       the soda-debug profile, and [@lint.allow \"U1\"] with a justification"
      name;
  (match p1_subject_type name e.exp_type with
  | None -> ()
  | Some subject when compiler_specializes name subject -> ()
  | Some subject -> (
    match imm_of ~stack:ctx.stack ~fuel:16 subject with
    | NonImm ->
      report ctx P1 loc
        "polymorphic `%s` at non-immediate type %s — use a dedicated \
         comparator (Tag.compare, Float.compare, String.equal, ...)"
        name (type_to_string subject)
    | Imm | Unknown -> ()))

let check_top_level_binding ctx (vb : Typedtree.value_binding) =
  let rec vars_of : type k. k Typedtree.general_pattern -> (string * Types.type_expr * Location.t) list =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> [ (Ident.name id, p.pat_type, p.pat_loc) ]
    | Tpat_alias (inner, id, _) ->
      (Ident.name id, p.pat_type, p.pat_loc) :: vars_of inner
    | Tpat_tuple ps -> List.concat_map vars_of ps
    | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> vars_of p) fields
    | Tpat_construct (_, _, ps, _) -> List.concat_map vars_of ps
    | Tpat_array ps -> List.concat_map vars_of ps
    | Tpat_or (a, _, _) -> vars_of a
    | Tpat_lazy p -> vars_of p
    | Tpat_value v -> vars_of (v :> Typedtree.pattern)
    | _ -> []
  in
  List.iter
    (fun (name, ty, loc) ->
      if is_mutable ~stack:ctx.stack ~fuel:16 ty then
        report ctx R1 loc
          "top-level mutable state `%s : %s` — shared across domains this is \
           a data race; allocate it per run/per domain, or [@lint.allow \
           \"R1\"] with a justification"
          name (type_to_string ty))
    (vars_of vb.vb_pat)

let lint_structure ctx (str : Typedtree.structure) =
  (* file-wide [@@@lint.allow "..."] floating attributes *)
  let file_allows =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a -> allow_ids [ a ]
        | _ -> [])
      str.str_items
  in
  push_allows ctx file_allows;
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let ids = allow_ids e.exp_attributes in
    push_allows ctx ids;
    ctx.expr_depth <- ctx.expr_depth + 1;
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> check_ident ctx path e
    | Texp_try (_, cases) ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          if c.c_guard = None && pat_is_catch_all c.c_lhs then
            report ctx E1 c.c_lhs.pat_loc
              "catch-all exception handler — swallows Out_of_memory and \
               Assert_failure; match the specific exceptions instead")
        cases
    | Texp_match (_, cases, _) ->
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          if c.c_guard = None && pat_catches_all_exceptions c.c_lhs then
            report ctx E1 c.c_lhs.pat_loc
              "catch-all `exception _` case — swallows Out_of_memory and \
               Assert_failure; match the specific exceptions instead")
        cases
    | _ -> ());
    super.expr sub e;
    ctx.expr_depth <- ctx.expr_depth - 1;
    pop_allows ctx ids
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let ids = allow_ids vb.vb_attributes in
    push_allows ctx ids;
    super.value_binding sub vb;
    pop_allows ctx ids
  in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.str_desc with
    | Tstr_primitive vd ->
      let ids = allow_ids vd.val_attributes in
      push_allows ctx ids;
      if u1_unchecked_primitive vd.val_prim then
        report ctx U1 vd.val_loc
          "unchecked primitive external `%s` (%s) — document the bounds \
           argument, assert it under the soda-debug profile, and \
           [@@lint.allow \"U1\"]"
          vd.val_name.txt
          (String.concat ", " vd.val_prim);
      pop_allows ctx ids
    | Tstr_value (_, vbs) when ctx.expr_depth = 0 ->
      (* module-initialization-time bindings: R1 *)
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let ids = allow_ids vb.vb_attributes in
          push_allows ctx ids;
          check_top_level_binding ctx vb;
          pop_allows ctx ids)
        vbs
    | _ -> ());
    super.structure_item sub item
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    let name =
      match mb.mb_id with Some id -> Ident.name id | None -> "_"
    in
    ctx.stack <- name :: ctx.stack;
    super.module_binding sub mb;
    ctx.stack <- List.tl ctx.stack
  in
  let iter =
    { super with expr; value_binding; structure_item; module_binding }
  in
  iter.structure iter str;
  pop_allows ctx file_allows

(* ------------------------------------------------------------------ *)
(* Driver *)

let rec collect_cmts acc path =
  match (Unix.stat path).Unix.st_kind with
  | Unix.S_DIR ->
    let entries = Sys.readdir path in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry -> collect_cmts acc (Filename.concat path entry))
      acc entries
  | Unix.S_REG when Filename.check_suffix path ".cmt" -> path :: acc
  | _ -> acc
  | exception Unix.Unix_error _ -> acc

let read_cmt path =
  match Cmt_format.read_cmt path with
  | infos -> Some infos
  | exception _ ->
    prerr_endline ("soda-lint: warning: unreadable cmt " ^ path);
    None

let () =
  let all = ref false in
  let roots = ref [] in
  let spec =
    [ ("--all-rules",
       Arg.Set all,
       " apply every rule to every file (fixture/test mode)") ]
  in
  Arg.parse spec (fun p -> roots := p :: !roots) usage;
  if !roots = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let cmts =
    List.fold_left collect_cmts [] (List.sort String.compare !roots)
    |> List.sort String.compare
  in
  if cmts = [] then begin
    prerr_endline "soda-lint: no .cmt files found (build @check first)";
    exit 2
  end;
  let units =
    List.filter_map
      (fun path ->
        match read_cmt path with
        | Some infos -> (
          match infos.Cmt_format.cmt_annots with
          | Cmt_format.Implementation str -> Some (infos, str)
          | _ -> None)
        | None -> None)
      cmts
  in
  (* pass 1: harvest every unit, including dune's generated wrapper
     modules (their module aliases canonicalize cross-library names) *)
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      harvest_structure ~stack:[ infos.cmt_modname ] str)
    units;
  (* pass 2: lint real sources only *)
  List.iter
    (fun ((infos : Cmt_format.cmt_infos), str) ->
      let source = Option.value ~default:"" infos.cmt_sourcefile in
      if Filename.check_suffix source ".ml" then begin
        let active = rules_for ~all:!all source in
        if active <> [] then
          let ctx =
            { active;
              allows = Hashtbl.create 8;
              stack = [ infos.cmt_modname ];
              expr_depth = 0
            }
          in
          lint_structure ctx str
      end)
    units;
  let ds = List.sort_uniq diag_compare !diags in
  List.iter
    (fun d ->
      Printf.printf "%s:%d:%d: [%s] %s\n" d.file d.line d.col (rule_id d.rule)
        d.msg)
    ds;
  Printf.eprintf "soda-lint: %d violation(s), %d suppressed, %d unit(s)\n%!"
    (List.length ds) !suppressed (List.length units);
  exit (if ds = [] then 0 else 1)

(* soda-lint shared substrate: the rule table and per-directory scoping,
   the diagnostics store, the [@lint.allow "RULE: why"] machinery, and
   the cross-unit knowledge base of type declarations and module aliases
   that every pass resolves names through.

   The linter is multi-pass (see soda_lint.ml for the driver): pass 1
   harvests this knowledge base plus the call graph and protocol tables
   from every unit, the analysis passes close them (taint fixpoint,
   alias summaries), and pass 2 walks the scoped units reporting
   diagnostics. This module is the part every pass shares. *)

(* ------------------------------------------------------------------ *)
(* Rules *)

type rule =
  | D1 (* wall-clock read *)
  | D2 (* global Random state *)
  | D3 (* Hashtbl iteration order feeding decisions *)
  | P1 (* polymorphic compare at non-immediate type *)
  | P2 (* stdout write in library code *)
  | R1 (* top-level mutable state *)
  | E1 (* catch-all exception handler *)
  | U1 (* unchecked access / primitive *)
  | S1 (* suppression without a reason string *)
  | M1 (* protocol constructor without / violating its route spec *)
  | M2 (* sent-but-never-handled dead message *)
  | M3 (* handled-but-never-sent dead handler *)
  | M4 (* nested envelope payload *)
  | A1 (* buffer mutated after a view over it was published *)
  | T1 (* transitively reaches a wall-clock read *)
  | T2 (* transitively reaches ambient random / domain state *)
  | T3 (* transitively reaches unordered Hashtbl iteration *)

let all_rules =
  [ D1; D2; D3; P1; P2; R1; E1; U1; S1; M1; M2; M3; M4; A1; T1; T2; T3 ]

let rule_id = function
  | D1 -> "D1"
  | D2 -> "D2"
  | D3 -> "D3"
  | P1 -> "P1"
  | P2 -> "P2"
  | R1 -> "R1"
  | E1 -> "E1"
  | U1 -> "U1"
  | S1 -> "S1"
  | M1 -> "M1"
  | M2 -> "M2"
  | M3 -> "M3"
  | M4 -> "M4"
  | A1 -> "A1"
  | T1 -> "T1"
  | T2 -> "T2"
  | T3 -> "T3"

(* ------------------------------------------------------------------ *)
(* Scoping: which rules apply to a source file, by directory.

   D3/T3 only have teeth where a fold/iter result can feed a protocol
   decision or a trace event; the numeric libraries iterate tables in
   ways that never escape into message ordering. Executables own their
   stdout (no P2) and their Arg/Cmdliner refs (no R1 in bin/), and the
   benches' whole job is wall-clock timing (no D1/T1 in bench/). *)

let d3_libs = [ "soda"; "simnet"; "baselines"; "harness" ]

let protocol_rules = [ M1; M2; M3; M4 ]

let lib_rules l =
  let base = [ D1; D2; P1; P2; R1; E1; U1; S1; T1; T2; A1 ] @ protocol_rules in
  if List.mem l d3_libs then D3 :: T3 :: base else base

let scope_of_source ~all source =
  if all then all_rules
  else
    let parts = String.split_on_char '/' source in
    let rec find = function
      | "lib" :: l :: _ :: _ -> lib_rules l
      | "bin" :: _ :: _ -> [ D1; D2; D3; P1; E1; U1; S1; T1; T2; T3; M4 ]
      | "bench" :: _ :: _ -> [ D2; D3; P1; E1; U1; S1; T2; T3; M4 ]
      | "tools" :: "bench_diff" :: _ :: _ ->
        [ D1; D2; D3; P1; E1; U1; S1; T1; T2; T3 ]
      | _ :: rest -> find rest
      | [] -> []
    in
    find parts

(* ------------------------------------------------------------------ *)
(* Diagnostics *)

type diag = { file : string; line : int; col : int; rule : rule; msg : string }

let diags : diag list ref = ref []
let suppressed = ref 0

let diag_compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match compare (rule_id a.rule) (rule_id b.rule) with
        | 0 -> String.compare a.msg b.msg
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let add_diag rule (loc : Location.t) msg =
  let p = loc.loc_start in
  diags :=
    { file = p.pos_fname;
      line = p.pos_lnum;
      col = p.pos_cnum - p.pos_bol;
      rule;
      msg
    }
    :: !diags

let sorted_diags () =
  (* the same site can be rediscovered by the harvest and report passes;
     dedup on the full tuple *)
  List.sort_uniq diag_compare !diags

(* ------------------------------------------------------------------ *)
(* The [@lint.allow "RULE ...: why"] opt-out.

   The payload is "<ids>: <reason>": one or more rule ids (space or
   comma separated, or "all"), a colon, and a human reason. A payload
   with no reason still suppresses (so a bad annotation cannot unmask a
   known, audited site) but is itself an S1 diagnostic — suppressions
   must say why. *)

module Allows = struct
  type entry = {
    ids : string list;
    reason : string option;
    loc : Location.t;
    attr_name : string (* "lint.allow" or "lint.ignore" *)
  }

  let parse_payload (p : Parsetree.payload) : (string list * string option) option =
    match p with
    | PStr
        [ { pstr_desc =
              Pstr_eval
                ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
            _
          }
        ] ->
      let ids_part, reason =
        match String.index_opt s ':' with
        | Some i ->
          let r = String.sub s (i + 1) (String.length s - i - 1) in
          let r = String.trim r in
          (String.sub s 0 i, if r = "" then None else Some r)
        | None -> (s, None)
      in
      let ids =
        String.split_on_char ' ' ids_part
        |> List.concat_map (String.split_on_char ',')
        |> List.filter (fun s -> s <> "")
      in
      Some (ids, reason)
    | _ -> Some ([], None)

  let of_attributes ?(names = [ "lint.allow" ]) (attrs : Typedtree.attributes) :
      entry list =
    List.filter_map
      (fun (a : Parsetree.attribute) ->
        if List.mem a.attr_name.txt names then
          match parse_payload a.attr_payload with
          | Some (ids, reason) ->
            Some { ids; reason; loc = a.attr_loc; attr_name = a.attr_name.txt }
          | None -> None
        else None)
      attrs

  (* nesting-counted active-suppression table *)
  type t = (string, int) Hashtbl.t

  let create () : t = Hashtbl.create 8

  let push (t : t) (entries : entry list) =
    List.iter
      (fun e ->
        List.iter
          (fun id ->
            let n = Option.value ~default:0 (Hashtbl.find_opt t id) in
            Hashtbl.replace t id (n + 1))
          e.ids)
      entries

  let pop (t : t) (entries : entry list) =
    List.iter
      (fun e ->
        List.iter
          (fun id ->
            match Hashtbl.find_opt t id with
            | Some 1 -> Hashtbl.remove t id
            | Some n -> Hashtbl.replace t id (n - 1)
            | None -> ())
          e.ids)
      entries

  let active (t : t) rule =
    Hashtbl.mem t (rule_id rule) || Hashtbl.mem t "all"
end

(* Report a diagnostic, honoring the rule scope and any suppression in
   force. *)
let report ~(active : rule list) ~(allows : Allows.t) rule (loc : Location.t)
    fmt =
  Format.kasprintf
    (fun msg ->
      if List.mem rule active then
        if Allows.active allows rule then incr suppressed
        else add_diag rule loc msg)
    fmt

(* ------------------------------------------------------------------ *)
(* Knowledge base of type declarations and module aliases.

   Use sites name types through paths ("Tag.t", "Protocol__Tag.t",
   "Protocol.Tag.t" are all the same type depending on how the source
   spelled it and what the typechecker normalized), so the kb keys
   declarations by their canonical dotted name rooted at the compilation
   unit, and keeps a module-alias table (harvested from both user code
   and dune's generated wrapper modules) to canonicalize use-site
   names. *)

type decl =
  | Variant_const (* all constructors constant: immediate at runtime *)
  | Variant_boxed
  | Record of { mut : bool }
  | Alias of Types.type_expr
  | Opaque
  | Immediate_attr

let decls : (string, decl) Hashtbl.t = Hashtbl.create 512
let mod_aliases : (string, string) Hashtbl.t = Hashtbl.create 128

let has_attr names attrs =
  List.exists
    (fun (a : Parsetree.attribute) -> List.mem a.attr_name.txt names)
    attrs

let classify_type_decl (td : Typedtree.type_declaration) : decl =
  if has_attr [ "immediate"; "ocaml.immediate" ] td.typ_attributes then
    Immediate_attr
  else
    match td.typ_kind with
    | Ttype_variant cds ->
      let constant (cd : Typedtree.constructor_declaration) =
        match cd.cd_args with Cstr_tuple [] -> true | _ -> false
      in
      if List.for_all constant cds then Variant_const else Variant_boxed
    | Ttype_record lds ->
      let mut =
        List.exists
          (fun (ld : Typedtree.label_declaration) ->
            ld.ld_mutable = Asttypes.Mutable)
          lds
      in
      Record { mut }
    | Ttype_open -> Variant_boxed
    | Ttype_abstract -> (
      match td.typ_manifest with
      | Some ct -> Alias ct.Typedtree.ctyp_type
      | None -> Opaque)

let rec harvest_structure ~stack (str : Typedtree.structure) =
  List.iter (harvest_item ~stack) str.str_items

and harvest_item ~stack (item : Typedtree.structure_item) =
  match item.str_desc with
  | Tstr_type (_, tds) ->
    List.iter
      (fun (td : Typedtree.type_declaration) ->
        let name = String.concat "." (List.rev (td.typ_name.txt :: stack)) in
        Hashtbl.replace decls name (classify_type_decl td))
      tds
  | Tstr_module mb -> harvest_module ~stack mb
  | Tstr_recmodule mbs -> List.iter (harvest_module ~stack) mbs
  | _ -> ()

and harvest_module ~stack (mb : Typedtree.module_binding) =
  match mb.mb_id with
  | None -> ()
  | Some id ->
    let name = Ident.name id in
    harvest_module_expr ~stack ~name mb.mb_expr

and harvest_module_expr ~stack ~name (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_ident (p, _) ->
    let key = String.concat "." (List.rev (name :: stack)) in
    Hashtbl.replace mod_aliases key (Path.name p)
  | Tmod_structure str -> harvest_structure ~stack:(name :: stack) str
  | Tmod_constraint (me, _, _, _) -> harvest_module_expr ~stack ~name me
  | Tmod_functor (_, me) ->
    (* functor bodies are harvested under the functor's own name; good
       enough for types referenced from within the same body *)
    harvest_module_expr ~stack ~name me
  | Tmod_apply _ | Tmod_apply_unit _ | Tmod_unpack _ -> ()

(* Longest-prefix canonicalization through the alias table: resolves
   "Tag.t" (via a local [module Tag = Protocol.Tag]) and "Protocol.Tag.t"
   (via the generated wrapper) down to "Protocol__Tag.t". *)
let canonicalize name =
  let rec go fuel name =
    if fuel = 0 then name
    else
      let parts = String.split_on_char '.' name in
      let n = List.length parts in
      let rec try_prefix i =
        if i <= 0 then None
        else
          let prefix =
            String.concat "." (List.filteri (fun j _ -> j < i) parts)
          and rest = List.filteri (fun j _ -> j >= i) parts in
          match Hashtbl.find_opt mod_aliases prefix with
          | Some repl -> Some (String.concat "." (repl :: rest))
          | None -> try_prefix (i - 1)
      in
      match try_prefix (n - 1) with
      | Some name' when name' <> name -> go (fuel - 1) name'
      | _ -> name
  in
  go 8 name

(* Candidate canonical names of a use-site name, qualified with the
   enclosing module stack, innermost qualification first and the bare
   name last (a local [t] inside module [X] of unit [M] is registered as
   "M.X.t" but referenced as "t"). *)
let qualified_candidates ~stack name =
  let rec prefixes acc = function
    | [] -> List.rev (name :: acc)
    | _ :: _ as stack ->
      let q = String.concat "." (List.rev stack) ^ "." ^ name in
      prefixes (q :: acc) (List.tl stack)
  in
  List.map canonicalize (prefixes [] stack)

let lookup_decl ~stack name =
  let rec first = function
    | [] -> None
    | c :: rest -> (
      match Hashtbl.find_opt decls c with Some d -> Some d | None -> first rest)
  in
  first (qualified_candidates ~stack name)

(* ------------------------------------------------------------------ *)
(* Type classification *)

type imm = Imm | NonImm | Unknown

let predef_imm =
  [ Predef.path_int; Predef.path_char; Predef.path_bool; Predef.path_unit ]

let predef_nonimm =
  [ Predef.path_float; Predef.path_string; Predef.path_bytes;
    Predef.path_array; Predef.path_list; Predef.path_option;
    Predef.path_nativeint; Predef.path_int32; Predef.path_int64;
    Predef.path_lazy_t; Predef.path_floatarray; Predef.path_exn ]

let nonimm_names =
  [ "Stdlib.ref"; "ref"; "Stdlib.Hashtbl.t"; "Hashtbl.t"; "Stdlib.Buffer.t";
    "Stdlib.Queue.t"; "Stdlib.Stack.t"; "Stdlib.Atomic.t"; "Stdlib.result";
    "result"; "Stdlib.Either.t"; "Stdlib.Seq.t" ]

let rec imm_of ~stack ~fuel (ty : Types.type_expr) : imm =
  if fuel = 0 then Unknown
  else
    match Types.get_desc ty with
    | Tconstr (p, _, _) ->
      if List.exists (Path.same p) predef_imm then Imm
      else if List.exists (Path.same p) predef_nonimm then NonImm
      else
        let name = Path.name p in
        if List.mem name nonimm_names then NonImm
        else (
          match lookup_decl ~stack name with
          | Some d -> imm_of_decl ~stack ~fuel:(fuel - 1) d
          | None -> Unknown)
    | Ttuple _ | Tarrow _ | Tobject _ | Tfield _ | Tnil | Tpackage _ -> NonImm
    | Tvariant _ | Tvar _ | Tunivar _ -> Unknown
    | Tpoly (t, _) -> imm_of ~stack ~fuel:(fuel - 1) t
    | Tlink t | Tsubst (t, _) -> imm_of ~stack ~fuel:(fuel - 1) t

and imm_of_decl ~stack ~fuel = function
  | Variant_const | Immediate_attr -> Imm
  | Variant_boxed | Record _ -> NonImm
  | Alias ty -> imm_of ~stack ~fuel ty
  | Opaque -> Unknown

let mutable_container_names =
  [ "Stdlib.ref"; "ref"; "Stdlib.Hashtbl.t"; "Hashtbl.t"; "Stdlib.Buffer.t";
    "Stdlib.Queue.t"; "Stdlib.Stack.t"; "Stdlib.Atomic.t"; "Stdlib.Weak.t";
    "Stdlib.Lazy.t"; "lazy_t" ]

let mutable_predefs =
  [ Predef.path_array; Predef.path_bytes; Predef.path_floatarray;
    Predef.path_lazy_t ]

(* Is a value of this type mutable state (so that sharing it across
   domains is a data race)? [false] on Unknown: R1 is a high-signal rule
   and opaque types get the benefit of the doubt. *)
let rec is_mutable ~stack ~fuel (ty : Types.type_expr) : bool =
  if fuel = 0 then false
  else
    match Types.get_desc ty with
    | Tconstr (p, args, _) ->
      if List.exists (Path.same p) mutable_predefs then true
      else if Path.same p Predef.path_list || Path.same p Predef.path_option
      then List.exists (is_mutable ~stack ~fuel:(fuel - 1)) args
      else
        let name = Path.name p in
        if List.mem name mutable_container_names then true
        else (
          match lookup_decl ~stack name with
          | Some (Record { mut }) -> mut
          | Some (Alias ty) -> is_mutable ~stack ~fuel:(fuel - 1) ty
          | Some (Variant_const | Variant_boxed | Opaque | Immediate_attr) ->
            false
          | None -> false)
    | Ttuple tys -> List.exists (is_mutable ~stack ~fuel:(fuel - 1)) tys
    | Tlink t | Tsubst (t, _) | Tpoly (t, _) ->
      is_mutable ~stack ~fuel:(fuel - 1) t
    | _ -> false

let type_to_string ty =
  (* best-effort pretty type for messages; internal ids are fine *)
  try Format.asprintf "%a" Printtyp.type_expr ty with _ -> "<type>"

(* ------------------------------------------------------------------ *)
(* Path-suffix matching, dune-wrapper aware: "Fragment.view" matches
   "Erasure__Fragment.view", "Fragment.view" and "Stdlib.Bytes.set"
   matches suffix "Bytes.set". *)

let component_matches ~want got =
  got = want
  ||
  let wn = String.length want and gn = String.length got in
  gn > wn + 2
  && String.sub got (gn - wn) wn = want
  && String.sub got (gn - wn - 2) 2 = "__"

let path_has_suffix ~suffix name =
  let sp = List.rev (String.split_on_char '.' suffix) in
  let np = List.rev (String.split_on_char '.' name) in
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | [ want ], got :: _ -> component_matches ~want got
    | want :: ws, got :: gs -> want = got && go (ws, gs)
  in
  go (sp, np)

(* Last two components of a dotted path, for short display. *)
let short_name name =
  match List.rev (String.split_on_char '.' name) with
  | f :: m :: _ -> m ^ "." ^ f
  | _ -> name

(* P1 fixture: polymorphic compare at a non-immediate (record) type. *)
type pair = { left : int; right : int }

let same (x : pair) (y : pair) = x = y

(* M1 fixture: a [@@lint.protocol] constructor with no declared route.
   [Quiet] has the same defect under a reasoned allow, so it only
   counts as a suppression. *)
type t =
  | Ping of { seq : int } [@lint.msg "bad_m1 -> bad_m1"]
  | Pong of { seq : int }
  | Quiet of { seq : int }
      [@lint.allow "M1: fixture — spec intentionally omitted"]
[@@lint.protocol]

let emit f = f (Ping { seq = 0 })

let handle = function
  | Ping { seq } -> seq
  | Pong { seq } -> seq
  | Quiet { seq } -> seq

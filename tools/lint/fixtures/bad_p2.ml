(* P2 fixture: stdout write from a library. *)
let hello () = print_endline "hello"

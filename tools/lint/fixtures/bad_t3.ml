(* T3 fixture: Hashtbl iteration order reaches a caller through a
   helper — D3 fires at the seed, T3 at the caller's reference. *)
let sum_all tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let total tbl = sum_all tbl

let total_commutative tbl =
  (sum_all [@lint.allow "T3: fixture — addition is order-insensitive"]) tbl

(* M4 fixture: an [@lint.envelope] constructor nested directly inside
   another envelope construction. *)
type t =
  | Data of { seq : int } [@lint.msg "bad_m4 -> bad_m4"]
  | Wrap of { msg : t } [@lint.msg "bad_m4 -> bad_m4"] [@lint.envelope]
[@@lint.protocol]

let emit f = f (Wrap { msg = Wrap { msg = Data { seq = 0 } } })

let emit_allowed f =
  f
    (Wrap
       { msg = Wrap { msg = Data { seq = 1 } } }
    [@lint.allow "M4: fixture — deliberate nesting for the suppression path"])

let handle = function
  | Data { seq } -> seq
  | Wrap { msg } ->
    ignore msg;
    1

(* A1 fixture: a zero-copy buffer escapes into the send path and is
   then written through. The local [Engine] mirrors the simnet sink's
   shape; the pass matches sinks by path suffix. *)
module Engine = struct
  let send _ctx ~dst:_ _payload = ()
end

let publish ctx buf =
  Engine.send ctx ~dst:1 buf;
  Bytes.set buf 0 'x'

let[@lint.allow
     "A1: fixture — the engine copies this payload before delivery"] recycle
    ctx buf =
  Engine.send ctx ~dst:1 buf;
  Bytes.set buf 0 'x'

(* S1 fixture: a suppression without a reason is itself a diagnostic
   (the bare allow still silences its rule — no D2 fires here). *)
let[@lint.allow "D2"] roll () = Random.int 6

let[@lint.allow "D1: fixture — frozen timestamp for the suppression path"] now
    () =
  Unix.gettimeofday ()

(* D3 fixture: Hashtbl iteration order reaching a result. *)
let keys (tbl : (int, int) Hashtbl.t) =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

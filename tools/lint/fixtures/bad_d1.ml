(* D1 fixture: wall-clock read. *)
let now () = Unix.gettimeofday ()

(* M3 fixture: a declared sender that never constructs the message —
   a dead handler. [Legacy] is the suppressed twin. *)
type t =
  | Phantom of { seq : int } [@lint.msg "bad_m3 -> bad_m3"]
  | Legacy of { seq : int }
      [@lint.msg "bad_m3 -> bad_m3"]
      [@lint.allow
        "M3: fixture — emission happens through a forwarded variable"]
[@@lint.protocol]

let handle = function
  | Phantom { seq } -> seq
  | Legacy { seq } -> seq

(* T2 fixture: ambient Random state reaches a caller through a
   helper — D2 fires at the seed, T2 at the caller's reference. *)
let jitter () = Random.int 10

let delay base = base + jitter ()

let seeded base =
  base + (jitter [@lint.allow "T2: fixture — jitter is reseeded per run"]) ()

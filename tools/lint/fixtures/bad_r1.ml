(* R1 fixture: top-level mutable state. *)
let counter = ref 0

let bump () = incr counter

(* Suppression fixture: [@lint.allow] must silence the rule, so this
   file contributes zero diagnostics (and one suppression). *)
let[@lint.allow "D2"] roll () = Random.int 6

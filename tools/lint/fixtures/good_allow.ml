(* Suppression fixture: a reasoned [@lint.allow "ID: why"] must silence
   the rule, so this file contributes zero diagnostics (and counts as
   suppressions). *)
let[@lint.allow "D2: fixture — deliberately audited randomness"] roll () =
  Random.int 6

(* U1 both ways: an allowed unchecked external and an allowed unsafe
   accessor use (the length check is this fixture's "audit"). *)
external first16 : Bytes.t -> int -> int = "%caml_bytes_get16u"
  [@@lint.allow "U1: fixture — callers check a 2-byte bound"]

let head a =
  if Array.length a = 0 then invalid_arg "head";
  (Array.unsafe_get [@lint.allow "U1: fixture — emptiness checked above"]) a 0

(* D2 fixture: global Random state. *)
let roll () = Random.int 6

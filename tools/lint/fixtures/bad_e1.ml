(* E1 fixture: catch-all exception handler. *)
let swallow f = try f () with _ -> ()

(* U1 fixture: unchecked access and unchecked primitive external. *)
let first a = Array.unsafe_get a 0

external peek16 : Bytes.t -> int -> int = "%caml_bytes_get16u"

let _ = peek16

(* M2 fixture: a declared handler with no match arm binding the
   payload — [Drop _] is an explicit ignore, not a handler. [Audit]
   has the same defect under a reasoned allow. *)
type t =
  | Drop of { seq : int } [@lint.msg "bad_m2 -> bad_m2"]
  | Audit of { seq : int }
      [@lint.msg "bad_m2 -> bad_m2"]
      [@lint.allow "M2: fixture — handler arrives in a later change"]
[@@lint.protocol]

let emit f =
  f (Drop { seq = 0 });
  f (Audit { seq = 1 })

let sink = function Drop _ -> 0 | Audit _ -> 1

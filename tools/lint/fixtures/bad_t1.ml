(* T1 fixture: a wall-clock read reaches a caller through a helper —
   D1 fires at the seed, T1 at the caller's reference. *)
let stamp () = Unix.gettimeofday ()

let label x = Printf.sprintf "%s@%f" x (stamp ())

let quiet x =
  ignore x;
  int_of_float
    ((stamp [@lint.allow "T1: fixture — callers tolerate wall-clock skew"]) ())

(* The local (single-expression) rules, ported from soda-lint v1, plus
   the two rule families that report at use sites of cross-unit results:
   S1 (suppressions must carry a reason) and T1–T3 (references to
   definitions the call-graph fixpoint proved to reach a nondeterminism
   effect — see Lint_callgraph).

   Local rules: D1 wall-clock, D2 global Random, D3 Hashtbl iteration,
   P1 polymorphic compare at non-immediate type, P2 stdout writes,
   R1 top-level mutable state, E1 catch-all handlers, U1 unchecked
   accesses/primitives. Semantics are unchanged from v1; the banned-
   identifier tables for D1–D3 now live in Lint_callgraph so direct
   checks and taint seeds can never drift apart. *)

open Lint_kb

(* U1: unchecked accesses. Matched by full path so a repo module
   exporting an [unsafe_times]-style accessor (safe, just raw) is not
   flagged — only the stdlib accessors that actually skip bounds
   checks. *)
let u1_modules =
  [ "Stdlib.Array"; "Stdlib.Bytes"; "Stdlib.String"; "Stdlib.Float.Array";
    "Stdlib.Bigarray.Array1"; "Stdlib.Bigarray.Array2" ]

let u1_violation name =
  match String.rindex_opt name '.' with
  | None -> false
  | Some i ->
    let m = String.sub name 0 i in
    let f = String.sub name (i + 1) (String.length name - i - 1) in
    String.length f > 7
    && String.sub f 0 7 = "unsafe_"
    && List.mem m u1_modules

(* U1 at external declarations: the unchecked compiler builtins are the
   %caml_* accessors with a trailing 'u' (get64u, set16u, ...) plus
   anything spelling "unsafe" outright. *)
let u1_unchecked_primitive prims =
  let contains_sub s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  List.exists
    (fun p ->
      String.length p > 1
      && p.[0] = '%'
      && (contains_sub p "unsafe"
         || (p.[String.length p - 1] = 'u'
            &&
            match p.[String.length p - 2] with '0' .. '9' -> true | _ -> false)))
    prims

let p2_idents =
  [ "Stdlib.print_endline"; "Stdlib.print_string"; "Stdlib.print_newline";
    "Stdlib.print_int"; "Stdlib.print_char"; "Stdlib.print_float";
    "Stdlib.print_bytes"; "Stdlib.Printf.printf"; "Stdlib.Format.printf";
    "Stdlib.Format.print_string"; "Stdlib.Format.print_newline";
    "Stdlib.Format.print_int"; "Stdlib.Format.print_flush";
    "Stdlib.Format.std_formatter"; "Stdlib.stdout" ]

(* polymorphic comparison family: name -> index of the argument whose
   instantiated type decides the verdict *)
let p1_idents =
  [ ("Stdlib.=", 0); ("Stdlib.<>", 0); ("Stdlib.==", 0); ("Stdlib.!=", 0);
    ("Stdlib.compare", 0); ("Stdlib.<", 0); ("Stdlib.>", 0);
    ("Stdlib.<=", 0); ("Stdlib.>=", 0); ("Stdlib.min", 0); ("Stdlib.max", 0);
    ("Stdlib.List.mem", 0); ("Stdlib.List.assoc", 0);
    ("Stdlib.List.mem_assoc", 0); ("Stdlib.List.sort_uniq", 1);
    ("Stdlib.Hashtbl.hash", 0) ]

(* The comparison *operators* (and [compare] itself) are specialized by
   the compiler to direct primitives when the argument type is statically
   a base type — [a < b] at [float] compiles to an unboxed float compare,
   not a call to the generic structural walker — so at those types they
   are neither a determinism nor a performance hazard. [Stdlib.min]/
   [max]/[List.mem]/... are ordinary polymorphic functions and get no
   such specialization, so they stay flagged even at [float]. *)
let p1_specialized_ops =
  [ "Stdlib.="; "Stdlib.<>"; "Stdlib.compare"; "Stdlib.<"; "Stdlib.>";
    "Stdlib.<="; "Stdlib.>=" ]

let specializable_base =
  [ Predef.path_float; Predef.path_string; Predef.path_char;
    Predef.path_int32; Predef.path_int64; Predef.path_nativeint ]

let compiler_specializes name (ty : Types.type_expr) =
  List.mem name p1_specialized_ops
  &&
  match Types.get_desc ty with
  | Tconstr (p, _, _) -> List.exists (Path.same p) specializable_base
  | _ -> false

(* nth arrow argument of an (instantiated) function type *)
let rec nth_arrow_arg ~fuel n ty =
  if fuel = 0 then None
  else
    match Types.get_desc ty with
    | Tarrow (_, a, b, _) ->
      if n = 0 then Some a else nth_arrow_arg ~fuel:(fuel - 1) (n - 1) b
    | Tlink t | Tsubst (t, _) | Tpoly (t, _) ->
      nth_arrow_arg ~fuel:(fuel - 1) n t
    | _ -> None

(* For List.sort_uniq the decisive argument is the comparator's own
   first argument. *)
let p1_subject_type name fn_ty =
  match List.assoc_opt name p1_idents with
  | None -> None
  | Some 1 ->
    Option.bind (nth_arrow_arg ~fuel:8 0 fn_ty) (nth_arrow_arg ~fuel:8 0)
  | Some n -> nth_arrow_arg ~fuel:8 n fn_ty

(* ------------------------------------------------------------------ *)

type ctx = {
  active : rule list;
  allows : Allows.t;
  mutable stack : string list; (* enclosing module path, innermost first *)
  mutable expr_depth : int;
  mutable current_def : string option (* canonical name of enclosing
                                         module-level binding, to skip
                                         self-referential taint *)
}

(* S1: every suppression must say why. Checked BEFORE the entries are
   pushed, so a bare [@lint.allow "all"] cannot mask its own S1. *)
let s1_check ctx (entries : Allows.entry list) =
  List.iter
    (fun (e : Allows.entry) ->
      if e.reason = None then
        report ~active:ctx.active ~allows:ctx.allows S1 e.loc
          "suppression [@%s \"%s\"] without a reason — write [@%s \"%s: \
           why\"]"
          e.attr_name
          (String.concat " " e.ids)
          e.attr_name
          (String.concat " " e.ids))
    entries

let push ctx entries =
  s1_check ctx entries;
  Allows.push ctx.allows entries

let pop ctx entries = Allows.pop ctx.allows entries

(* catch-all patterns for E1 *)
let rec pat_is_catch_all : type k. k Typedtree.general_pattern -> bool =
 fun p ->
  match p.pat_desc with
  | Tpat_any -> true
  | Tpat_var _ -> true
  | Tpat_alias (p, _, _) -> pat_is_catch_all p
  | Tpat_or (a, b, _) -> pat_is_catch_all a || pat_is_catch_all b
  | Tpat_value v -> pat_is_catch_all (v :> Typedtree.pattern)
  | _ -> false

let rec pat_catches_all_exceptions : type k. k Typedtree.general_pattern -> bool
    =
 fun p ->
  match p.pat_desc with
  | Tpat_exception inner -> pat_is_catch_all inner
  | Tpat_or (a, b, _) ->
    pat_catches_all_exceptions a || pat_catches_all_exceptions b
  | Tpat_alias (p, _, _) -> pat_catches_all_exceptions p
  | Tpat_value v -> pat_catches_all_exceptions (v :> Typedtree.pattern)
  | _ -> false

let kind_noun = function
  | Lint_callgraph.Clock -> "a wall-clock read"
  | Lint_callgraph.Rand -> "ambient random/domain state"
  | Lint_callgraph.Order -> "unordered Hashtbl iteration"

let check_ident ctx (path : Path.t) (e : Typedtree.expression) =
  let name = Path.name path in
  let loc = e.exp_loc in
  let report rule fmt = report ~active:ctx.active ~allows:ctx.allows rule loc fmt in
  if List.mem name Lint_callgraph.d1_idents then
    report D1
      "wall-clock read `%s` — simulated time must come from the engine clock"
      name;
  if Lint_callgraph.d2_violation name then
    report D2
      "global Random state `%s` — thread a seeded Random.State/Simnet.Rng \
       from the runner instead"
      name;
  if List.mem name Lint_callgraph.d3_idents then
    report D3
      "`%s`: Hashtbl iteration order is nondeterministic — materialize and \
       sort before the result can reach a protocol decision or trace event"
      name;
  if List.mem name p2_idents then
    report P2 "stdout write `%s` — library output goes through Probe/Report"
      name;
  if u1_violation name then
    report U1
      "unchecked access `%s` — prove the bounds locally, assert them under \
       the soda-debug profile, and [@lint.allow \"U1: why\"]"
      name;
  (match p1_subject_type name e.exp_type with
  | None -> ()
  | Some subject when compiler_specializes name subject -> ()
  | Some subject -> (
    match imm_of ~stack:ctx.stack ~fuel:16 subject with
    | NonImm ->
      report P1
        "polymorphic `%s` at non-immediate type %s — use a dedicated \
         comparator (Tag.compare, Float.compare, String.equal, ...)"
        name (type_to_string subject)
    | Imm | Unknown -> ()));
  (* T-rules: a reference to a definition the fixpoint proved reaches a
     nondeterminism effect. Self-references (recursion, the def's own
     body) are skipped: the D-rule already fired at the seed. *)
  if Lint_callgraph.seed_of_ident name = None then
    match Lint_callgraph.taint_of ~stack:ctx.stack name with
    | Some (canon, taints) when ctx.current_def <> Some canon ->
      List.iter
        (fun (kind, chain) ->
          report
            (Lint_callgraph.kind_rule kind)
            "`%s` transitively reaches %s (%s) — hoist the effect to the \
             caller or audit the callee with [@lint.allow \"%s: why\"]"
            (short_name canon) (kind_noun kind)
            (String.concat " -> " (short_name canon :: chain))
            (Lint_callgraph.kind_direct_id kind))
        taints
    | _ -> ()

let check_top_level_binding ctx (vb : Typedtree.value_binding) =
  let rec vars_of :
      type k.
      k Typedtree.general_pattern -> (string * Types.type_expr * Location.t) list
      =
   fun p ->
    match p.pat_desc with
    | Tpat_var (id, _) -> [ (Ident.name id, p.pat_type, p.pat_loc) ]
    | Tpat_alias (inner, id, _) ->
      (Ident.name id, p.pat_type, p.pat_loc) :: vars_of inner
    | Tpat_tuple ps -> List.concat_map vars_of ps
    | Tpat_record (fields, _) ->
      List.concat_map (fun (_, _, p) -> vars_of p) fields
    | Tpat_construct (_, _, ps, _) -> List.concat_map vars_of ps
    | Tpat_array ps -> List.concat_map vars_of ps
    | Tpat_or (a, _, _) -> vars_of a
    | Tpat_lazy p -> vars_of p
    | Tpat_value v -> vars_of (v :> Typedtree.pattern)
    | _ -> []
  in
  List.iter
    (fun (name, ty, loc) ->
      if is_mutable ~stack:ctx.stack ~fuel:16 ty then
        report ~active:ctx.active ~allows:ctx.allows R1 loc
          "top-level mutable state `%s : %s` — shared across domains this is \
           a data race; allocate it per run/per domain, or [@lint.allow \
           \"R1: why\"]"
          name (type_to_string ty))
    (vars_of vb.vb_pat)

let lint ~active ~modname (str : Typedtree.structure) =
  let ctx =
    { active;
      allows = Allows.create ();
      stack = [ modname ];
      expr_depth = 0;
      current_def = None
    }
  in
  (* file-wide [@@@lint.allow "..."] floating attributes *)
  let file_allows =
    List.concat_map
      (fun (item : Typedtree.structure_item) ->
        match item.str_desc with
        | Tstr_attribute a -> Allows.of_attributes [ a ]
        | _ -> [])
      str.str_items
  in
  push ctx file_allows;
  let super = Tast_iterator.default_iterator in
  let expr sub (e : Typedtree.expression) =
    let ids = Allows.of_attributes e.exp_attributes in
    push ctx ids;
    ctx.expr_depth <- ctx.expr_depth + 1;
    (match e.exp_desc with
    | Texp_ident (path, _, _) -> check_ident ctx path e
    | Texp_try (_, cases) ->
      List.iter
        (fun (c : Typedtree.value Typedtree.case) ->
          if c.c_guard = None && pat_is_catch_all c.c_lhs then
            report ~active:ctx.active ~allows:ctx.allows E1 c.c_lhs.pat_loc
              "catch-all exception handler — swallows Out_of_memory and \
               Assert_failure; match the specific exceptions instead")
        cases
    | Texp_match (_, cases, _) ->
      List.iter
        (fun (c : Typedtree.computation Typedtree.case) ->
          if c.c_guard = None && pat_catches_all_exceptions c.c_lhs then
            report ~active:ctx.active ~allows:ctx.allows E1 c.c_lhs.pat_loc
              "catch-all `exception _` case — swallows Out_of_memory and \
               Assert_failure; match the specific exceptions instead")
        cases
    | _ -> ());
    super.expr sub e;
    ctx.expr_depth <- ctx.expr_depth - 1;
    pop ctx ids
  in
  let value_binding sub (vb : Typedtree.value_binding) =
    let ids = Allows.of_attributes vb.vb_attributes in
    push ctx ids;
    (* track the enclosing module-level def so T-rules can skip
       self-references; mirrors Lint_callgraph.binding_name *)
    let saved = ctx.current_def in
    (if ctx.expr_depth = 0 then
       match Lint_callgraph.binding_name vb with
       | Some n ->
         ctx.current_def <-
           Some (String.concat "." (List.rev (n :: ctx.stack)))
       | None -> ());
    super.value_binding sub vb;
    ctx.current_def <- saved;
    pop ctx ids
  in
  let structure_item sub (item : Typedtree.structure_item) =
    (match item.str_desc with
    | Tstr_primitive vd ->
      let ids = Allows.of_attributes vd.val_attributes in
      push ctx ids;
      if u1_unchecked_primitive vd.val_prim then
        report ~active:ctx.active ~allows:ctx.allows U1 vd.val_loc
          "unchecked primitive external `%s` (%s) — document the bounds \
           argument, assert it under the soda-debug profile, and \
           [@@lint.allow \"U1: why\"]"
          vd.val_name.txt
          (String.concat ", " vd.val_prim);
      pop ctx ids
    | Tstr_value (_, vbs) when ctx.expr_depth = 0 ->
      (* module-initialization-time bindings: R1 *)
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let ids = Allows.of_attributes vb.vb_attributes in
          Allows.push ctx.allows ids;
          check_top_level_binding ctx vb;
          Allows.pop ctx.allows ids)
        vbs
    | _ -> ());
    super.structure_item sub item
  in
  let module_binding sub (mb : Typedtree.module_binding) =
    let name = match mb.mb_id with Some id -> Ident.name id | None -> "_" in
    ctx.stack <- name :: ctx.stack;
    super.module_binding sub mb;
    ctx.stack <- List.tl ctx.stack
  in
  let iter =
    { super with expr; value_binding; structure_item; module_binding }
  in
  iter.structure iter str;
  pop ctx file_allows

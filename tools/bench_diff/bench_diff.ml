(* bench_diff: compare a fresh bench run against a committed baseline
   and fail on regressions.

     bench_diff.exe BASELINE.json FRESH.json [--threshold 0.25]

   Both files are the flat JSON emitted by `bench/main.exe codec|sim`
   (optionally with --smoke / --out). Points are matched by key:

     codec points: (codec, op, size, domains)  -> mb_per_s
     sim points:   (probe)                     -> events_per_s

   CI machines are not the machine the baseline was recorded on, so
   absolute throughput is meaningless. Instead we self-calibrate: for
   every matched key compute ratio = fresh / baseline, take the median
   ratio as the machine-speed factor, and flag keys whose
   ratio / median falls below 1 - threshold. A uniform slowdown (slow
   runner) moves the median, not the flags; a single kernel or probe
   regressing moves its own ratio against the median and fails the
   build.

   The parser below is a minimal scanner for the schema our own bench
   emitters produce — flat objects inside one "results" array, string
   and number fields only, no nesting, no escapes beyond what %S
   writes. It is not a general JSON parser and does not try to be. *)

let threshold = ref 0.25

(* ------------------------------------------------------------------ *)
(* scanning *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let read_file path =
  let ic = try open_in_bin path with Sys_error e -> fail "%s" e in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

type scanner = { s : string; mutable pos : int }

let peek sc = if sc.pos < String.length sc.s then Some sc.s.[sc.pos] else None

let peek_is sc c =
  match peek sc with Some c' -> Char.equal c c' | None -> false

let skip_ws sc =
  while
    sc.pos < String.length sc.s
    && match sc.s.[sc.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    sc.pos <- sc.pos + 1
  done

let expect sc c =
  skip_ws sc;
  match peek sc with
  | Some c' when c' = c -> sc.pos <- sc.pos + 1
  | Some c' -> fail "expected %C at offset %d, found %C" c sc.pos c'
  | None -> fail "expected %C at offset %d, found end of input" c sc.pos

(* OCaml's %S escapes are a subset of JSON's except for unprintable
   bytes, which our emitters never produce in key fields. *)
let scan_string sc =
  expect sc '"';
  let b = Buffer.create 16 in
  let rec go () =
    if sc.pos >= String.length sc.s then fail "unterminated string"
    else
      match sc.s.[sc.pos] with
      | '"' -> sc.pos <- sc.pos + 1
      | '\\' ->
        if sc.pos + 1 >= String.length sc.s then fail "unterminated escape";
        (match sc.s.[sc.pos + 1] with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | c -> fail "unsupported escape \\%C" c);
        sc.pos <- sc.pos + 2;
        go ()
      | c ->
        Buffer.add_char b c;
        sc.pos <- sc.pos + 1;
        go ()
  in
  go ();
  Buffer.contents b

let scan_number sc =
  skip_ws sc;
  let start = sc.pos in
  while
    sc.pos < String.length sc.s
    &&
    match sc.s.[sc.pos] with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  do
    sc.pos <- sc.pos + 1
  done;
  if sc.pos = start then fail "expected a number at offset %d" start;
  let lit = String.sub sc.s start (sc.pos - start) in
  match float_of_string_opt lit with
  | Some f -> f
  | None -> fail "bad number %S at offset %d" lit start

type value = Str of string | Num of float | Bool of bool

let scan_scalar sc =
  skip_ws sc;
  match peek sc with
  | Some '"' -> Str (scan_string sc)
  | Some 't' when sc.pos + 4 <= String.length sc.s
                  && String.sub sc.s sc.pos 4 = "true" ->
    sc.pos <- sc.pos + 4;
    Bool true
  | Some 'f' when sc.pos + 5 <= String.length sc.s
                  && String.sub sc.s sc.pos 5 = "false" ->
    sc.pos <- sc.pos + 5;
    Bool false
  | _ -> Num (scan_number sc)

(* a flat object: { "key": scalar, ... } *)
let scan_object sc =
  expect sc '{';
  let fields = ref [] in
  skip_ws sc;
  (if peek_is sc '}' then sc.pos <- sc.pos + 1
   else
     let rec go () =
       skip_ws sc;
       let key = scan_string sc in
       expect sc ':';
       let v = scan_scalar sc in
       fields := (key, v) :: !fields;
       skip_ws sc;
       match peek sc with
       | Some ',' ->
         sc.pos <- sc.pos + 1;
         go ()
       | Some '}' -> sc.pos <- sc.pos + 1
       | _ -> fail "expected ',' or '}' at offset %d" sc.pos
     in
     go ());
  List.rev !fields

(* ------------------------------------------------------------------ *)
(* bench files *)

type bench = { kind : string; points : (string * float) list }

let get fields key =
  match List.assoc_opt key fields with
  | Some v -> v
  | None -> fail "point is missing field %S" key

let str = function Str s -> s | _ -> fail "expected a string field"
let num = function Num f -> f | _ -> fail "expected a numeric field"

(* key + metric for one results[] entry, depending on bench kind *)
let point_of_fields kind fields =
  match kind with
  | "codec" ->
    ( Printf.sprintf "%s/%s/%d/%d"
        (str (get fields "codec"))
        (str (get fields "op"))
        (int_of_float (num (get fields "size")))
        (int_of_float (num (get fields "domains"))),
      num (get fields "mb_per_s") )
  | "sim" -> (str (get fields "probe"), num (get fields "events_per_s"))
  | "msgs" -> (str (get fields "algo"), num (get fields "msgs_per_op"))
  | "sharded" -> (str (get fields "case"), num (get fields "msgs_per_op"))
  | k -> fail "unknown bench kind %S" k

(* codec/sim measure throughput (higher is better); msgs/sharded
   measure messages per operation (deterministic counts, lower is
   better) *)
let lower_is_better = function "msgs" | "sharded" -> true | _ -> false

let parse_bench path =
  let sc = { s = read_file path; pos = 0 } in
  expect sc '{';
  let kind = ref None in
  let points = ref [] in
  let rec go () =
    skip_ws sc;
    let key = scan_string sc in
    expect sc ':';
    (match key with
    | "bench" -> kind := Some (str (scan_scalar sc))
    | "results" -> begin
      expect sc '[';
      skip_ws sc;
      if peek_is sc ']' then sc.pos <- sc.pos + 1
      else
        let rec items () =
          let fields = scan_object sc in
          points := fields :: !points;
          skip_ws sc;
          match peek sc with
          | Some ',' ->
            sc.pos <- sc.pos + 1;
            items ()
          | Some ']' -> sc.pos <- sc.pos + 1
          | _ -> fail "expected ',' or ']' at offset %d" sc.pos
        in
        items ()
    end
    | _ -> ignore (scan_scalar sc));
    skip_ws sc;
    match peek sc with
    | Some ',' ->
      sc.pos <- sc.pos + 1;
      go ()
    | Some '}' -> sc.pos <- sc.pos + 1
    | _ -> fail "expected ',' or '}' at offset %d" sc.pos
  in
  go ();
  let kind =
    match !kind with Some k -> k | None -> fail "missing \"bench\" field"
  in
  let pts = List.rev_map (point_of_fields kind) !points in
  { kind; points = pts }

(* ------------------------------------------------------------------ *)
(* comparison *)

let median xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 1.0
  else if n mod 2 = 1 then a.(n / 2)
  else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let compare_benches ~baseline ~fresh =
  if baseline.kind <> fresh.kind then
    fail "bench kinds differ: baseline is %S, fresh is %S" baseline.kind
      fresh.kind;
  let matched, unmatched_fresh =
    List.partition_map
      (fun (key, fv) ->
        match List.assoc_opt key baseline.points with
        | Some bv when bv > 0.0 -> Left (key, fv /. bv)
        | Some _ | None -> Right key)
      fresh.points
  in
  let unmatched_base =
    List.filter_map
      (fun (key, _) ->
        if List.exists (fun (k, _) -> String.equal k key) fresh.points then
          None
        else Some key)
      baseline.points
  in
  List.iter
    (Printf.eprintf "bench_diff: warning: no baseline for %s, skipped\n%!")
    unmatched_fresh;
  List.iter
    (Printf.eprintf
       "bench_diff: warning: baseline key %s absent from fresh run\n%!")
    unmatched_base;
  if List.is_empty matched then
    fail "no keys in common between baseline and fresh run";
  let m = median (List.map snd matched) in
  Printf.printf
    "bench_diff: %s, %d matched keys, machine-speed factor (median \
     fresh/baseline) %.2fx, threshold %.0f%%\n"
    fresh.kind (List.length matched) m (100.0 *. !threshold);
  let failures =
    List.filter_map
      (fun (key, ratio) ->
        let rel = ratio /. m in
        let flagged =
          if lower_is_better fresh.kind then rel > 1.0 +. !threshold
          else rel < 1.0 -. !threshold
        in
        Printf.printf "  %-44s %6.2fx raw, %6.2fx vs median%s\n" key ratio rel
          (if flagged then "  << REGRESSION" else "");
        if flagged then Some key else None)
      matched
  in
  failures

let usage () =
  prerr_endline
    "usage: bench_diff.exe BASELINE.json FRESH.json [--threshold FRAC]";
  exit 2

let () =
  let rec parse_args files = function
    | [] -> List.rev files
    | "--threshold" :: v :: rest -> begin
      match float_of_string_opt v with
      | Some f when f > 0.0 && f < 1.0 ->
        threshold := f;
        parse_args files rest
      | _ ->
        prerr_endline "bench_diff: --threshold wants a fraction in (0, 1)";
        usage ()
    end
    | "--help" :: _ | "-h" :: _ -> usage ()
    | f :: rest -> parse_args (f :: files) rest
  in
  let args =
    match Array.to_list Sys.argv with _ :: rest -> rest | [] -> []
  in
  match parse_args [] args with
  | [ base_path; fresh_path ] -> begin
    try
      let baseline = parse_bench base_path in
      let fresh = parse_bench fresh_path in
      match compare_benches ~baseline ~fresh with
      | [] -> print_endline "bench_diff: OK"
      | failures ->
        Printf.eprintf "bench_diff: %d regression(s) beyond %.0f%%:\n"
          (List.length failures)
          (100.0 *. !threshold);
        List.iter (Printf.eprintf "  %s\n") failures;
        exit 1
    with Parse_error e ->
      Printf.eprintf "bench_diff: %s\n" e;
      exit 2
  end
  | _ -> usage ()

(* Tests for the self-healing plane: the checksummed fragment store
   (Soda.Disk), the heartbeat failure detector with autonomous
   crash-repair, the anti-entropy scrubber's targeted fragment repair,
   and the MTTD/MTTR episode extraction in Harness.Metrics. *)

module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Params = Protocol.Params
module Probe = Protocol.Probe
module Tag = Protocol.Tag
module Fragment = Erasure.Fragment
module Disk = Soda.Disk
module Workload = Harness.Workload
module Metrics = Harness.Metrics

let qtest ?(count = 50) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ------------------------------------------------------------------ *)
(* Disk: checksummed store round-trips *)

let fragment_of ?(index = 2) s = Fragment.make ~index ~data:(Bytes.of_string s)

let disk_tests =
  [ Alcotest.test_case "store/read round-trips and verifies" `Quick (fun () ->
        let f = fragment_of "healthy payload" in
        let d = Disk.create ~tag:Tag.initial ~fragment:f in
        Alcotest.(check bool) "verify" true (Disk.verify d);
        Alcotest.(check bool) "not quarantined" false (Disk.quarantined d);
        match Disk.read d with
        | `Ok g -> Alcotest.(check bool) "same bytes" true (Fragment.equal f g)
        | `Corrupt -> Alcotest.fail "clean store read as corrupt");
    Alcotest.test_case "rot is detected and the quarantine is sticky" `Quick
      (fun () ->
        let d = Disk.create ~tag:Tag.initial ~fragment:(fragment_of "data") in
        Disk.rot d ~seed:7;
        Alcotest.(check bool) "verify fails" false (Disk.verify d);
        Alcotest.(check bool) "read corrupt" true (Disk.read d = `Corrupt);
        Alcotest.(check bool) "quarantined" true (Disk.quarantined d);
        (* sticky: a second read still refuses *)
        Alcotest.(check bool) "still corrupt" true (Disk.read d = `Corrupt));
    Alcotest.test_case "tags survive rot (metadata is not checksummed)"
      `Quick (fun () ->
        let tag = Tag.next Tag.initial ~w:3 in
        let d = Disk.create ~tag ~fragment:(fragment_of "data") in
        Disk.rot d ~seed:11;
        Alcotest.(check bool) "tag intact" true (Tag.equal tag (Disk.tag d)));
    qtest ~count:100 "corrupt -> detect -> quarantine -> store restores"
      QCheck2.Gen.(
        pair (string_size (int_range 1 200) >|= Bytes.of_string)
          (int_range 0 10_000))
      (fun (data, seed) ->
        let f = Fragment.make ~index:1 ~data in
        let d = Disk.create ~tag:Tag.initial ~fragment:f in
        Disk.rot d ~seed;
        let detected = Disk.read d = `Corrupt && Disk.quarantined d in
        (* the repair path: fresh bytes through store lift quarantine *)
        Disk.store d ~tag:(Tag.next Tag.initial ~w:0) ~fragment:f;
        detected
        && (not (Disk.quarantined d))
        && Disk.verify d
        &&
        match Disk.read d with
        | `Ok g -> Fragment.equal f g (* byte-identical restoration *)
        | `Corrupt -> false);
    qtest ~count:100 "checksum is a pure function of the payload + index"
      QCheck2.Gen.(
        pair (string_size (int_range 0 200) >|= Bytes.of_string)
          (int_range 0 100))
      (fun (data, index) ->
        let f = Fragment.make ~index ~data in
        Disk.checksum f = Disk.checksum f
        && (Bytes.length data = 0
           || Disk.checksum f <> Disk.checksum (Fragment.corrupt f ~seed:3)))
  ]

(* ------------------------------------------------------------------ *)
(* End to end: the scrubber finds injected rot and restores the exact
   fragment from peers; the failure detector repairs an unannounced
   crash on its own. *)

let deploy_healed ~seed =
  let params = Params.make ~n:5 ~f:1 () in
  let engine = Engine.create ~seed ~delay:(Delay.constant 1.0) () in
  let d =
    Soda.Deployment.deploy ~engine ~params
      ~initial_value:(Bytes.make 64 'i')
      ~healing:Soda.Config.default_healing ~num_writers:1 ~num_readers:1 ()
  in
  (engine, d)

let heal_stats d =
  (Soda.Deployment.config d).Soda.Config.heal_stats

let plane_tests =
  [ Alcotest.test_case
      "scrub detects rot and restores the byte-identical fragment" `Quick
      (fun () ->
        let engine, d = deploy_healed ~seed:21 in
        Soda.Deployment.write d ~writer:0 ~at:5.0
          (Bytes.of_string "survives silent bit-rot");
        (* pause after the write has quiesced, snapshot the victim *)
        Engine.run engine ~until:90.0;
        let victim = Soda.Deployment.server d ~coordinate:2 in
        let before = Soda.Server.stored_fragment victim in
        let tag_before = Soda.Server.stored_tag victim in
        Soda.Deployment.corrupt_server d ~coordinate:2 ~at:100.0;
        Engine.run engine ~until:400.0;
        Alcotest.(check bool) "all disks clean" true
          (Soda.Deployment.scrub_clean d);
        Alcotest.(check bool) "byte-identical restoration" true
          (Fragment.equal before (Soda.Server.stored_fragment victim));
        Alcotest.(check bool) "tag not regressed" true
          (Tag.equal tag_before (Soda.Server.stored_tag victim));
        let hs = heal_stats d in
        Alcotest.(check bool) "scrub hit counted" true
          (hs.Soda.Config.scrub_hits >= 1);
        Alcotest.(check bool) "scrub repair counted" true
          (hs.Soda.Config.scrub_repairs >= 1);
        (* the probe stream tells the whole story *)
        let events = Probe.events (Soda.Deployment.probe d) in
        let has p = List.exists p events in
        Alcotest.(check bool) "rot injected" true
          (has (function Probe.Rot_injected { server = 2; _ } -> true | _ -> false));
        Alcotest.(check bool) "rot detected" true
          (has (function Probe.Rot_detected { server = 2; _ } -> true | _ -> false));
        Alcotest.(check bool) "scrub repaired" true
          (has (function Probe.Scrub_repaired { server = 2; _ } -> true | _ -> false)));
    Alcotest.test_case
      "failure detector repairs an unannounced crash autonomously" `Quick
      (fun () ->
        let engine, d = deploy_healed ~seed:22 in
        Soda.Deployment.write d ~writer:0 ~at:5.0
          (Bytes.of_string "outlives the crash");
        (* a Crash with no scheduled Repair anywhere *)
        Soda.Deployment.crash_server d ~coordinate:1 ~at:50.0;
        Engine.run engine ~until:600.0;
        Alcotest.(check bool) "all servers live again" true
          (Soda.Deployment.all_live d);
        let hs = heal_stats d in
        Alcotest.(check bool) "suspicion raised" true
          (hs.Soda.Config.suspicions >= 1);
        Alcotest.(check bool) "exactly one autonomous repair" true
          (hs.Soda.Config.auto_repairs = 1);
        (* the victim holds the written tag again after the repair *)
        let healthy = Soda.Deployment.server d ~coordinate:0 in
        let victim = Soda.Deployment.server d ~coordinate:1 in
        Alcotest.(check bool) "element recovered" true
          (Tag.equal
             (Soda.Server.stored_tag healthy)
             (Soda.Server.stored_tag victim));
        (* MTTD/MTTR: detection needs at most suspicion_timeout + one
           heartbeat period; the repair itself is fast on a quiet net *)
        let eps = Metrics.heal_episodes (Soda.Deployment.probe d) in
        (match Metrics.heal_mttd eps with
        | [ mttd ] ->
          Alcotest.(check bool)
            (Printf.sprintf "mttd %.1f bounded" mttd)
            true (mttd <= 50.0)
        | _ -> Alcotest.fail "expected exactly one detected episode");
        match Metrics.heal_mttr eps with
        | [ mttr ] ->
          Alcotest.(check bool)
            (Printf.sprintf "mttr %.1f bounded" mttr)
            true (mttr <= 100.0)
        | _ -> Alcotest.fail "expected exactly one healed episode");
    Alcotest.test_case "a merely partitioned server is never wiped" `Quick
      (fun () ->
        let engine, d = deploy_healed ~seed:23 in
        Soda.Deployment.write d ~writer:0 ~at:5.0 (Bytes.of_string "keep me");
        Soda.Deployment.partition_servers d ~coordinates:[ 3 ] ~at:50.0;
        Soda.Deployment.heal_servers d ~coordinates:[ 3 ] ~at:200.0;
        Engine.run engine ~until:500.0;
        let hs = heal_stats d in
        (* the survivors do suspect the silent server... *)
        Alcotest.(check bool) "suspicion raised" true
          (hs.Soda.Config.suspicions >= 1);
        (* ...but the auto-repair hook sees it is not crashed and holds
           fire: no wipe, no repair round *)
        Alcotest.(check int) "no autonomous repair" 0
          hs.Soda.Config.auto_repairs;
        Alcotest.(check bool) "all live" true (Soda.Deployment.all_live d))
  ]

(* ------------------------------------------------------------------ *)
(* Overhead posture: healing traffic is metadata only, and with healing
   off the plane leaves no trace at all. *)

let overhead_tests =
  [ Alcotest.test_case "heartbeat/scrub traffic is meta, never data" `Quick
      (fun () ->
        let run ~healing =
          let params = Params.make ~n:5 ~f:1 () in
          let engine =
            Engine.create ~seed:31
              ~classify:(fun m -> Soda.Messages.data_bytes m > 0)
              ~delay:(Delay.constant 1.0) ()
          in
          let d =
            Soda.Deployment.deploy ~engine ~params ?healing ~num_writers:1
              ~num_readers:1 ()
          in
          Soda.Deployment.write d ~writer:0 ~at:5.0 (Bytes.make 64 'x');
          Soda.Deployment.read d ~reader:0 ~at:40.0 ();
          Engine.run engine ~until:200.0;
          (Engine.messages_data engine, Engine.messages_meta engine, d)
        in
        let data_off, meta_off, d_off = run ~healing:None in
        let data_on, meta_on, d_on =
          run ~healing:(Some Soda.Config.default_healing)
        in
        (* the plane adds meta traffic but not one data message *)
        Alcotest.(check int) "messages_data unchanged" data_off data_on;
        Alcotest.(check bool) "meta strictly grows" true (meta_on > meta_off);
        let hs_on = heal_stats d_on in
        Alcotest.(check bool) "heartbeats flowed" true
          (hs_on.Soda.Config.heartbeats_sent > 0);
        Alcotest.(check bool) "sweeps ran" true
          (hs_on.Soda.Config.scrub_sweeps > 0);
        (* healing=None: all plane counters stay zero *)
        let hs_off = heal_stats d_off in
        Alcotest.(check int) "no heartbeats" 0 hs_off.Soda.Config.heartbeats_sent;
        Alcotest.(check int) "no sweeps" 0 hs_off.Soda.Config.scrub_sweeps;
        Alcotest.(check int) "no suspicions" 0 hs_off.Soda.Config.suspicions)
  ]

(* ------------------------------------------------------------------ *)
(* Metrics.heal_episodes on a hand-built probe stream *)

let episode_tests =
  [ Alcotest.test_case "episodes reconstruct MTTD and MTTR" `Quick (fun () ->
        let probe = Probe.create () in
        List.iter (Probe.emit probe)
          [ Probe.Crash_injected { server = 1; time = 10.0 };
            Probe.Suspected { target = 1; by = 0; time = 45.0 };
            Probe.Suspected { target = 1; by = 3; time = 46.0 };
            Probe.Repaired { server = 1; tag = Tag.initial; time = 80.0 };
            Probe.Rot_injected { server = 3; time = 100.0 };
            Probe.Rot_detected { server = 3; time = 150.0 };
            Probe.Scrub_repaired { server = 3; tag = Tag.initial; time = 170.0 }
          ];
        let eps = Metrics.heal_episodes probe in
        Alcotest.(check int) "two episodes" 2 (List.length eps);
        Alcotest.(check (list (float 1e-9))) "mttd" [ 35.0; 50.0 ]
          (Metrics.heal_mttd eps);
        Alcotest.(check (list (float 1e-9))) "mttr" [ 70.0; 70.0 ]
          (Metrics.heal_mttr eps));
    Alcotest.test_case "rot healed by an overwriting write" `Quick (fun () ->
        let probe = Probe.create () in
        List.iter (Probe.emit probe)
          [ Probe.Rot_injected { server = 2; time = 20.0 };
            (* no scrub ever saw it: a newer write landed first *)
            Probe.Stored { server = 2; tag = Tag.initial; time = 32.0 }
          ];
        let eps = Metrics.heal_episodes probe in
        Alcotest.(check int) "one episode" 1 (List.length eps);
        Alcotest.(check (list (float 1e-9))) "no detection" []
          (Metrics.heal_mttd eps);
        Alcotest.(check (list (float 1e-9))) "healed in 12" [ 12.0 ]
          (Metrics.heal_mttr eps));
    Alcotest.test_case "an unhealed fault stays an open episode" `Quick
      (fun () ->
        let probe = Probe.create () in
        List.iter (Probe.emit probe)
          [ Probe.Crash_injected { server = 0; time = 5.0 };
            Probe.Suspected { target = 0; by = 4; time = 44.0 }
          ];
        let eps = Metrics.heal_episodes probe in
        Alcotest.(check int) "one episode" 1 (List.length eps);
        Alcotest.(check (list (float 1e-9))) "detected" [ 39.0 ]
          (Metrics.heal_mttd eps);
        Alcotest.(check (list (float 1e-9))) "never healed" []
          (Metrics.heal_mttr eps))
  ]

let () =
  Alcotest.run "healing"
    [ ("disk", disk_tests);
      ("plane", plane_tests);
      ("overhead", overhead_tests);
      ("episodes", episode_tests)
    ]

(* Observable equivalence of the batched message plane: on the same
   seeded workload, SODA on Config.batched_plane (coalesced gossip
   envelopes, relay batching, staggered metadata forwards) must return
   the same reads, produce the same relay contents, and converge to the
   same final registration state as the broadcast plane — only the
   message count may change. Complements the chaos cell
   "batched20+part", which checks the same plane under loss and
   partitions. *)

module Params = Protocol.Params
module Tag = Protocol.Tag
module History = Protocol.History
module Probe = Protocol.Probe
module Engine = Simnet.Engine
module Delay = Simnet.Delay
module Workload = Harness.Workload
module Runner = Harness.Runner
module Metrics = Harness.Metrics

(* ------------------------------------------------------------------ *)
(* observables *)

let read_outcomes (r : Runner.result) =
  History.records r.Runner.history
  |> List.filter_map (fun o ->
         if o.History.kind = History.Read then
           Some (o.History.op, Option.map Bytes.to_string o.History.value)
         else None)
  |> List.sort compare

let relay_multiset (r : Runner.result) =
  match r.Runner.probe with
  | None -> []
  | Some p ->
    Probe.events p
    |> List.filter_map (function
         | Probe.Relayed { rid; server; tag; _ } ->
           Some (rid, server, tag.Tag.z, tag.Tag.w)
         | _ -> None)
    |> List.sort compare

(* final registered-reader set from the probe stream: last
   Registered/Unregistered event per (rid, server) wins *)
let final_registered_of_events events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Probe.Registered { rid; server; _ } ->
        Hashtbl.replace tbl (rid, server) true
      | Probe.Unregistered { rid; server; _ } ->
        Hashtbl.replace tbl (rid, server) false
      | _ -> ())
    events;
  Hashtbl.fold (fun k live acc -> if live then k :: acc else acc) tbl []
  |> List.sort compare

let final_registered (r : Runner.result) =
  match r.Runner.probe with
  | None -> []
  | Some p -> final_registered_of_events (Probe.events p)

(* ------------------------------------------------------------------ *)
(* QCheck: equivalence over seeded workloads *)

let check_equiv ~msg a b =
  Alcotest.(check (list (pair int (option string))))
    (msg ^ ": read outcomes") (read_outcomes a) (read_outcomes b);
  Alcotest.(check bool)
    (msg ^ ": relay multisets") true
    (relay_multiset a = relay_multiset b);
  Alcotest.(check bool)
    (msg ^ ": final registrations") true
    (final_registered a = final_registered b)

let equiv_sequential =
  QCheck.Test.make ~count:12
    ~name:
      "sequential workloads: batched plane returns the same reads, relays \
       and registrations"
    QCheck.(tup2 (int_range 0 10_000) (int_range 1 3))
    (fun (seed, rounds) ->
      let params = Params.make ~n:5 ~f:1 () in
      let w = Workload.sequential ~params ~value_len:64 ~seed ~rounds () in
      let a = Runner.run Runner.Soda w in
      let b = Runner.run ~plane:Soda.Config.batched_plane Runner.Soda w in
      let sa = Metrics.summarize a and sb = Metrics.summarize b in
      sa.Metrics.liveness && sa.Metrics.atomic && sb.Metrics.liveness
      && sb.Metrics.atomic
      && read_outcomes a = read_outcomes b
      && relay_multiset a = relay_multiset b
      (* quiescent runs leave no registration on either plane: coalesced
         READ-DISPERSE and tombstone pruning must not strand readers *)
      && final_registered a = []
      && final_registered b = [])

let equiv_concurrent =
  QCheck.Test.make ~count:8
    ~name:
      "concurrent workloads: batched plane stays live, atomic and fully \
       unregistered"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let params = Params.make ~n:5 ~f:1 () in
      let w =
        Workload.concurrent ~params ~value_len:64 ~seed ~num_writers:2
          ~num_readers:2 ~ops_per_client:3 ()
      in
      let b = Runner.run ~plane:Soda.Config.batched_plane Runner.Soda w in
      let sb = Metrics.summarize b in
      (* overlapping operations can legitimately read different (atomic)
         values under the two planes' timings, so the cross-plane check
         is the invariant part: liveness, atomicity, and convergence of
         the registration protocol *)
      sb.Metrics.liveness && sb.Metrics.atomic && final_registered b = [])

(* ------------------------------------------------------------------ *)
(* deterministic corner cases *)

let deploy_both ~n ~f ~seed drive =
  let observe plane =
    let params = Params.make ~n ~f () in
    let engine = Engine.create ~seed ~delay:(Delay.constant 1.0) () in
    let d =
      Soda.Deployment.deploy ~engine ~params
        ~initial_value:(Bytes.make 48 'i')
        ?plane ~num_writers:1 ~num_readers:1 ()
    in
    drive d;
    Engine.run engine;
    d
  in
  (observe None, observe (Some Soda.Config.batched_plane))

let registered_sets d ~n =
  List.init n (fun c ->
      Soda.Deployment.server d ~coordinate:c |> Soda.Server.registered_reads)

let corner_tests =
  [ Alcotest.test_case
      "crashed reader: servers converge to empty registration via gossip on \
       both planes"
      `Quick (fun () ->
        let n = 5 and f = 1 in
        let a, b =
          deploy_both ~n ~f ~seed:3 (fun d ->
              Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 48 'w');
              Soda.Deployment.read d ~reader:0 ~at:50.0 ();
              (* the reader dies after its READ-VALUE is in flight but
                 before any relay can reach it: no READ-COMPLETE, so
                 unregistration must come from the k-threshold gossip *)
              Soda.Deployment.crash_reader d ~reader:0 ~at:51.5)
        in
        Alcotest.(check (list (list int)))
          "both planes fully unregistered"
          (List.init n (fun _ -> []))
          (registered_sets a ~n);
        Alcotest.(check (list (list int)))
          "batched matches broadcast" (registered_sets a ~n)
          (registered_sets b ~n));
    Alcotest.test_case
      "below-threshold gossip: surviving servers stay registered identically"
      `Quick (fun () ->
        let n = 5 and f = 1 in
        let a, b =
          deploy_both ~n ~f ~seed:4 (fun d ->
              Soda.Deployment.write d ~writer:0 ~at:0.0 (Bytes.make 48 'w');
              (* two servers down leaves 3 < k = 4 announcers, and the
                 starved reader never completes: the registration must
                 persist — equally — on both planes *)
              Soda.Deployment.crash_server d ~coordinate:3 ~at:40.0;
              Soda.Deployment.crash_server d ~coordinate:4 ~at:40.0;
              Soda.Deployment.read d ~reader:0 ~at:50.0 ())
        in
        let alive_sets d =
          List.init 3 (fun c ->
              Soda.Deployment.server d ~coordinate:c
              |> Soda.Server.registered_reads)
        in
        List.iter
          (fun s -> Alcotest.(check bool) "still registered" false (s = []))
          (alive_sets a);
        Alcotest.(check (list (list int)))
          "batched matches broadcast" (alive_sets a) (alive_sets b));
    Alcotest.test_case
      "same-seed equivalence on one mixed workload (n=7, f=2)" `Quick
      (fun () ->
        let params = Params.make ~n:7 ~f:2 () in
        let w = Workload.sequential ~params ~value_len:96 ~seed:11 ~rounds:3 () in
        let a = Runner.run Runner.Soda w in
        let b = Runner.run ~plane:Soda.Config.batched_plane Runner.Soda w in
        check_equiv ~msg:"n=7" a b;
        (* and the point of the whole exercise: fewer messages *)
        Alcotest.(check bool) "batched sends fewer messages" true
          (b.Runner.messages_sent < a.Runner.messages_sent))
  ]

let () =
  Alcotest.run "batched-plane"
    [ ( "equivalence",
        List.map QCheck_alcotest.to_alcotest [ equiv_sequential; equiv_concurrent ]
      );
      ("corners", corner_tests)
    ]
